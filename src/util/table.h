// ASCII table printer used by the benchmark harness to emit the
// paper-style result rows (EXPERIMENTS.md records these outputs).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace nlss::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; cells are printed as-is.  Convenience Cell() formats numbers.
  void AddRow(std::vector<std::string> cells);

  static std::string Cell(double v, int precision = 2);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string Cell(T v) {
    return std::to_string(v);
  }

  /// Render with column alignment and a header separator.
  std::string ToString() const;

  /// Print to stdout with an optional caption line.
  void Print(const std::string& caption = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nlss::util
