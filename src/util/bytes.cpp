#include "util/bytes.h"

namespace nlss::util {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void FillPattern(std::span<std::uint8_t> out, std::uint64_t seed) {
  std::uint64_t state = Mix(seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    state = Mix(state + 1);
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(state >> (b * 8));
    }
  }
  state = Mix(state + 1);
  for (int b = 0; i < out.size(); ++b) {
    out[i++] = static_cast<std::uint8_t>(state >> (b * 8));
  }
}

bool CheckPattern(std::span<const std::uint8_t> data, std::uint64_t seed) {
  Bytes expected(data.size());
  FillPattern(expected, seed);
  return std::equal(data.begin(), data.end(), expected.begin());
}

void ByteWriter::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::U32(std::uint32_t v) {
  U16(static_cast<std::uint16_t>(v));
  U16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v));
  U32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::Raw(std::span<const std::uint8_t> d) {
  buf_.insert(buf_.end(), d.begin(), d.end());
}

std::uint8_t ByteReader::U8() {
  Need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::U16() {
  const std::uint16_t lo = U8();
  return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(U8()) << 8));
}

std::uint32_t ByteReader::U32() {
  const std::uint32_t lo = U16();
  return lo | (static_cast<std::uint32_t>(U16()) << 16);
}

std::uint64_t ByteReader::U64() {
  const std::uint64_t lo = U32();
  return lo | (static_cast<std::uint64_t>(U32()) << 32);
}

std::string ByteReader::Str() {
  const std::uint32_t n = U32();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes ByteReader::Raw(std::size_t n) {
  Need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace nlss::util
