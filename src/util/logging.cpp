#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace nlss::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void Log(LogLevel level, const char* component, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %-10s %s\n", LevelName(level), component, msg);
}

}  // namespace nlss::util
