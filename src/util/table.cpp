#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nlss::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print(const std::string& caption) const {
  if (!caption.empty()) std::printf("\n%s\n", caption.c_str());
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace nlss::util
