// CRC32C (Castagnoli polynomial, as used by iSCSI) — software slice-by-8.
// Used for end-to-end data integrity checks on block payloads and for the
// iSCSI-style protocol export's data digests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace nlss::util {

/// Incrementally extend a CRC32C over `data`.  Start with crc = 0.
std::uint32_t Crc32c(std::uint32_t crc, std::span<const std::uint8_t> data);

/// One-shot CRC32C of a buffer.
inline std::uint32_t Crc32c(std::span<const std::uint8_t> data) {
  return Crc32c(0, data);
}

}  // namespace nlss::util
