#include "util/rng.h"

#include <cmath>
#include <algorithm>
#include <cassert>

namespace nlss::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
  // Avoid the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation (biased variant is fine
  // for simulation workloads; the bias is < 2^-64 * bound).
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

std::uint64_t Rng::Range(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + Below(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace nlss::util
