// Byte-buffer helpers and a tiny binary serialization reader/writer used by
// the protocol layer and the management plane's persistence.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nlss::util {

using Bytes = std::vector<std::uint8_t>;

/// Fill `out` with a deterministic pattern derived from `seed`; used by tests
/// and workload generators to produce verifiable payloads.
void FillPattern(std::span<std::uint8_t> out, std::uint64_t seed);

/// Check that `data` matches the pattern produced by FillPattern(seed).
bool CheckPattern(std::span<const std::uint8_t> data, std::uint64_t seed);

/// Little-endian binary writer.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void Str(std::string_view s);                // length-prefixed
  void Raw(std::span<const std::uint8_t> d);   // unprefixed

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Little-endian binary reader; throws std::out_of_range on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::string Str();
  Bytes Raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  void Need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: buffer underrun");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace nlss::util
