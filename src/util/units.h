// Common unit constants and conversions used across the storage stack.
//
// Simulated time throughout the system is measured in integer nanoseconds
// (see sim::Tick).  Link speeds are expressed in the marketing units the
// paper uses (Gb/s) and converted here to bytes-per-nanosecond for the
// simulation's bandwidth math.
#pragma once

#include <cstdint>

namespace nlss::util {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;
inline constexpr std::uint64_t TiB = 1024ULL * GiB;

inline constexpr std::uint64_t kNsPerUs = 1000ULL;
inline constexpr std::uint64_t kNsPerMs = 1000ULL * kNsPerUs;
inline constexpr std::uint64_t kNsPerSec = 1000ULL * kNsPerMs;

/// Convert a link speed in gigabits/second to bytes/nanosecond.
/// 1 Gb/s = 1e9 bits/s = 0.125e9 bytes/s = 0.125 bytes/ns.
constexpr double GbpsToBytesPerNs(double gbps) { return gbps * 0.125; }

/// Convert bytes moved over a nanosecond interval to gigabits/second.
constexpr double BytesPerNsToGbps(double bytes_per_ns) {
  return bytes_per_ns * 8.0;
}

/// Convert megabytes/second (disk media rates) to bytes/nanosecond.
constexpr double MBpsToBytesPerNs(double mbps) { return mbps * 1e6 / 1e9; }

/// Throughput in MB/s given bytes moved and elapsed nanoseconds.
constexpr double ThroughputMBps(std::uint64_t bytes, std::uint64_t elapsed_ns) {
  return elapsed_ns == 0 ? 0.0
                         : static_cast<double>(bytes) / 1e6 /
                               (static_cast<double>(elapsed_ns) / 1e9);
}

/// Throughput in Gb/s given bytes moved and elapsed nanoseconds.
constexpr double ThroughputGbps(std::uint64_t bytes, std::uint64_t elapsed_ns) {
  return elapsed_ns == 0 ? 0.0
                         : BytesPerNsToGbps(static_cast<double>(bytes) /
                                            static_cast<double>(elapsed_ns));
}

}  // namespace nlss::util
