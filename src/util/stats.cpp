#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace nlss::util {

Histogram::Histogram(int sub_bucket_bits) : bits_(sub_bucket_bits) {
  assert(bits_ >= 0 && bits_ <= 8);
  // 64 powers of two, each with 2^bits sub-buckets, plus a zero bucket.
  buckets_.assign(static_cast<std::size_t>(64) << bits_, 0);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) const {
  if (value < (1ULL << bits_)) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - bits_;
  const std::uint64_t sub = (value >> shift) & ((1ULL << bits_) - 1);
  return (static_cast<std::size_t>(msb - bits_ + 1) << bits_) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) const {
  if (index < (1ULL << bits_)) return index;
  const std::size_t exp = (index >> bits_) - 1;
  const std::uint64_t sub = index & ((1ULL << bits_) - 1);
  const int shift = static_cast<int>(exp);
  return ((1ULL << bits_) + sub + 1) << shift;
}

void Histogram::Record(std::uint64_t value) { Record(value, 1); }

void Histogram::Record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  std::size_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx] += count;
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (bits_ == other.bits_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  } else {
    // Renormalize: re-bucket each source bucket at a representative value
    // (its upper bound, clamped to the observed max so a finer-grained
    // destination never reports a percentile above the true maximum).
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      if (other.buckets_[i] == 0) continue;
      const std::uint64_t rep =
          std::min(other.BucketUpperBound(i), other.max_);
      std::size_t idx = BucketIndex(rep);
      if (idx >= buckets_.size()) idx = buckets_.size() - 1;
      buckets_[idx] += other.buckets_[i];
    }
  }
  // Aggregates merge exactly regardless of bucket geometry.
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min<std::uint64_t>(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::Summary(const std::string& unit) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%llu%s p99=%llu%s max=%llu%s",
                static_cast<unsigned long long>(count_), Mean(), unit.c_str(),
                static_cast<unsigned long long>(Percentile(0.5)), unit.c_str(),
                static_cast<unsigned long long>(Percentile(0.99)), unit.c_str(),
                static_cast<unsigned long long>(max()), unit.c_str());
  return buf;
}

void RunningStat::Record(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::Variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

Imbalance ComputeImbalance(const std::vector<double>& loads) {
  Imbalance r;
  if (loads.empty()) return r;
  RunningStat s;
  for (double v : loads) s.Record(v);
  r.mean = s.Mean();
  r.max = s.max();
  r.peak_to_mean = r.mean > 0.0 ? r.max / r.mean : 0.0;
  r.coeff_of_variation = r.mean > 0.0 ? s.StdDev() / r.mean : 0.0;
  return r;
}

}  // namespace nlss::util
