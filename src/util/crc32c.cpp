#include "util/crc32c.h"

#include <array>

namespace nlss::util {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC32C polynomial

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t Crc32c(std::uint32_t crc, std::span<const std::uint8_t> data) {
  crc = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  // Process 8 bytes at a time with slice-by-8.
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][(lo >> 24) & 0xFF] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace nlss::util
