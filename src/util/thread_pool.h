// A fixed-size worker pool for CPU-bound kernels (RAID parity, rebuild
// reconstruction, encryption).  The discrete-event simulation itself is
// single-threaded and deterministic; the pool exists for real-time compute
// paths and the real-time benchmarks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nlss::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Safe from any thread, including workers.
  void Submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Chunked statically; the calling thread participates.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Block until all queued and running tasks are finished.
  void Wait();

  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes Wait()
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace nlss::util
