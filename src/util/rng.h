// Deterministic pseudo-random number generation for simulations and tests.
//
// The whole system must be reproducible from a single seed, so every
// stochastic component takes an explicit Rng (or a seed) instead of touching
// global state.  The generator is xoshiro256++ (Blackman & Vigna), which is
// fast, high quality, and trivially seedable via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nlss::util {

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p);

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Fork an independent child stream (for per-component determinism).
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Zipf-distributed generator over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^theta.  theta = 0 is uniform; ~0.99 matches the
/// classic "hot data" skew the paper's Section 2 describes.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t Next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  // Cumulative distribution, used with binary search.  Kept exact (O(n)
  // setup) because simulated working sets are modest.
  std::vector<double> cdf_;
};

}  // namespace nlss::util
