// Lightweight statistics collection: latency histograms with percentile
// queries, running means, and imbalance metrics used by the experiments.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nlss::util {

/// Log-bucketed histogram for non-negative values (latencies in ns, sizes in
/// bytes).  Buckets are <mantissa bits> sub-buckets per power of two, giving
/// bounded relative error (~3% with 5 bits) at tiny memory cost.
class Histogram {
 public:
  explicit Histogram(int sub_bucket_bits = 5);

  void Record(std::uint64_t value);
  void Record(std::uint64_t value, std::uint64_t count);

  /// Merge another histogram into this one.  Differing sub_bucket_bits are
  /// renormalized: each source bucket is re-recorded at its upper bound
  /// (clamped to the source max), so bucket placement coarsens to this
  /// histogram's resolution while count/min/max/sum stay exact.
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0,1] (e.g. 0.5, 0.99).  Returns an upper bound
  /// of the containing bucket.
  std::uint64_t Percentile(double q) const;

  void Reset();

  /// Human-readable one-line summary: count/mean/p50/p99/max.
  std::string Summary(const std::string& unit = "ns") const;

 private:
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketUpperBound(std::size_t index) const;

  int bits_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Incremental mean/variance (Welford).
class RunningStat {
 public:
  void Record(double x);
  std::uint64_t count() const { return n_; }
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double StdDev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double Sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Load-imbalance metrics over a vector of per-server loads.  Used by the
/// hot-spot experiments (E3): a "hot spot" shows up as max/mean >> 1.
struct Imbalance {
  double mean = 0.0;
  double max = 0.0;
  double peak_to_mean = 0.0;        // max / mean; 1.0 == perfectly balanced
  double coeff_of_variation = 0.0;  // stddev / mean
};

Imbalance ComputeImbalance(const std::vector<double>& loads);

}  // namespace nlss::util
