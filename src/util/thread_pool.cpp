#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace nlss::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  for (std::size_t c = 0; c * per < n; ++c) ++launched;
  remaining.store(launched, std::memory_order_relaxed);

  for (std::size_t c = 0; c * per < n; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    Submit([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

}  // namespace nlss::util
