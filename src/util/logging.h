// Minimal leveled logger.  Simulation components log with the simulated
// timestamp attached by the caller; the default sink is stderr.  Logging is
// off by default so benchmarks stay quiet.
#pragma once

#include <cstdarg>
#include <string>

namespace nlss::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level (default: kOff).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style log.  `component` tags the subsystem ("cache", "raid", ...).
void Log(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define NLSS_LOG_DEBUG(component, ...) \
  ::nlss::util::Log(::nlss::util::LogLevel::kDebug, component, __VA_ARGS__)
#define NLSS_LOG_INFO(component, ...) \
  ::nlss::util::Log(::nlss::util::LogLevel::kInfo, component, __VA_ARGS__)
#define NLSS_LOG_WARN(component, ...) \
  ::nlss::util::Log(::nlss::util::LogLevel::kWarn, component, __VA_ARGS__)
#define NLSS_LOG_ERROR(component, ...) \
  ::nlss::util::Log(::nlss::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace nlss::util
