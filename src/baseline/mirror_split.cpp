#include "baseline/mirror_split.h"

#include <algorithm>

namespace nlss::baseline {

MirrorSplitReplicator::MirrorSplitReplicator(
    sim::Engine& engine, net::Fabric& fabric, net::NodeId src_gateway,
    net::NodeId dst_gateway, std::function<std::uint64_t()> volume_bytes,
    Config config)
    : engine_(engine),
      fabric_(fabric),
      src_(src_gateway),
      dst_(dst_gateway),
      volume_bytes_(std::move(volume_bytes)),
      config_(config) {}

void MirrorSplitReplicator::Start() {
  if (running_) return;
  running_ = true;
  RunCycle();
}

void MirrorSplitReplicator::RunCycle() {
  if (!running_) return;
  const std::uint64_t total = volume_bytes_();
  if (total == 0) {
    engine_.Schedule(config_.interval_ns, [this] { RunCycle(); });
    return;
  }
  ShipChunks(total);
}

void MirrorSplitReplicator::ShipChunks(std::uint64_t remaining) {
  if (!running_) return;
  if (remaining == 0) {
    last_completed_ = engine_.now();
    ++copies_;
    engine_.Schedule(config_.interval_ns, [this] { RunCycle(); });
    return;
  }
  const std::uint64_t n = std::min(remaining, config_.chunk_bytes);
  fabric_.Send(src_, dst_, n,
               [this, remaining, n] {
                 shipped_ += n;
                 ShipChunks(remaining - n);
               },
               [this] {
                 // WAN down or source dead: the cycle never completes.
                 running_ = false;
               });
}

sim::Tick MirrorSplitReplicator::RecoveryPointAge() const {
  if (copies_ == 0) return engine_.now();
  return engine_.now() - last_completed_;
}

}  // namespace nlss::baseline
