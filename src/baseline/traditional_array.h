// The traditional storage array the paper argues against: one or two
// controllers, each *statically owning* a set of LUNs with a private,
// non-pooled cache.  Requests for a LUN always land on its owning
// controller — so a hot LUN saturates one controller while its partner
// idles (the §2.2 "hot spot" pathology) — and write-back dirty data is
// mirrored only to the single partner (active-passive; at most one failure
// survivable, §6.1).
//
// Used as the comparison system in experiments E1 (aggregate scaling),
// E3 (hot spots) and E6 (failure survival).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/backing.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "util/units.h"

namespace nlss::baseline {

class TraditionalArray {
 public:
  struct Config {
    std::uint32_t controllers = 2;  // classic dual-controller
    std::uint32_t page_bytes = 64 * util::KiB;
    std::uint64_t cache_pages_per_controller = 1024;
    double serve_ns_per_byte = 0.2;  // same engine speed as the new system
    sim::Tick local_access_ns = 2000;
    net::LinkProfile host_link = net::LinkProfile::FibreChannel2G();
  };

  using ReadCallback = std::function<void(bool, util::Bytes)>;
  using WriteCallback = std::function<void(bool)>;

  TraditionalArray(sim::Engine& engine, net::Fabric& fabric, Config config);

  net::NodeId AttachHost(const std::string& name);

  /// Register a LUN; ownership is static: lun % controllers.
  std::uint32_t AddLun(cache::BackingStore* backing);

  void Read(net::NodeId host, std::uint32_t lun, std::uint64_t offset,
            std::uint32_t length, ReadCallback cb);
  void Write(net::NodeId host, std::uint32_t lun, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb);

  /// Active-passive failover: the partner takes over the dead controller's
  /// LUNs with a cold cache (only mirrored dirty pages survive).
  void FailController(std::uint32_t c);

  void FlushAll(WriteCallback cb);

  std::uint32_t OwnerOf(std::uint32_t lun) const;
  std::vector<double> LoadByController() const;
  sim::Resource& compute(std::uint32_t c) { return ctrls_[c]->compute; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Page {
    util::Bytes data;
    bool dirty = false;
  };
  struct Controller {
    net::NodeId node;
    sim::Resource compute;
    bool alive = true;
    std::uint64_t bytes_served = 0;
    // Private cache: (lun, page) -> Page, with LRU list.
    std::unordered_map<std::uint64_t, Page> cache;
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        lru_pos;
    // Mirrored dirty pages held for the partner (active-passive safety).
    std::unordered_map<std::uint64_t, util::Bytes> partner_mirror;

    Controller(net::NodeId n, sim::Engine& e) : node(n), compute(e) {}
  };

  static std::uint64_t Key(std::uint32_t lun, std::uint64_t page) {
    return (static_cast<std::uint64_t>(lun) << 40) | page;
  }
  std::uint32_t partner(std::uint32_t c) const {
    return config_.controllers == 1 ? c : (c + 1) % config_.controllers;
  }

  void Touch(Controller& ctrl, std::uint64_t key);
  void EvictIfNeeded(std::uint32_t c);
  void ReadPage(std::uint32_t c, std::uint32_t lun, std::uint64_t page,
                std::function<void(bool, util::Bytes)> cb);
  void WritePage(std::uint32_t c, std::uint32_t lun, std::uint64_t page,
                 std::uint32_t off, util::Bytes data, WriteCallback cb);
  void FlushKey(std::uint32_t c, std::uint32_t lun, std::uint64_t page,
                WriteCallback cb);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  Config config_;
  net::NodeId switch_node_;
  std::vector<std::unique_ptr<Controller>> ctrls_;
  std::vector<cache::BackingStore*> luns_;
  std::vector<std::uint32_t> owner_;  // current owner (failover changes it)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nlss::baseline
