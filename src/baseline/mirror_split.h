// The legacy remote-replication scheme the paper criticizes (§7.2):
// periodically freeze a local mirror, copy the *entire volume* to the
// remote site, and resume.  Recovery point = the last completed copy, so
// the RPO is up to a full cycle; every cycle ships every allocated byte
// whether it changed or not.
//
// Compared against file-granular continuous replication in E9 and E12.
#pragma once

#include <cstdint>
#include <functional>

#include "net/fabric.h"
#include "sim/engine.h"

namespace nlss::baseline {

class MirrorSplitReplicator {
 public:
  struct Config {
    sim::Tick interval_ns = 3600ull * 1000000000;  // hourly copies
    std::uint64_t chunk_bytes = 4 * 1024 * 1024;   // WAN send granularity
  };

  /// `volume_bytes` is polled at the start of each cycle (the whole
  /// allocated image is shipped each time).
  MirrorSplitReplicator(sim::Engine& engine, net::Fabric& fabric,
                        net::NodeId src_gateway, net::NodeId dst_gateway,
                        std::function<std::uint64_t()> volume_bytes,
                        Config config);

  void Start();
  void Stop() { running_ = false; }

  /// Simulated time of the last *completed* full copy (0 if none); the
  /// recovery point after a disaster.
  sim::Tick last_copy_completed() const { return last_completed_; }
  std::uint64_t copies_completed() const { return copies_; }
  std::uint64_t wan_bytes_shipped() const { return shipped_; }

  /// RPO if the source died right now: the data written since the last
  /// completed copy is gone — callers convert this age to lost bytes.
  sim::Tick RecoveryPointAge() const;

 private:
  void RunCycle();
  void ShipChunks(std::uint64_t remaining);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  net::NodeId src_;
  net::NodeId dst_;
  std::function<std::uint64_t()> volume_bytes_;
  Config config_;
  bool running_ = false;
  sim::Tick last_completed_ = 0;
  std::uint64_t copies_ = 0;
  std::uint64_t shipped_ = 0;
};

}  // namespace nlss::baseline
