#include "baseline/traditional_array.h"

#include <cassert>
#include <cstring>
#include <memory>

namespace nlss::baseline {
namespace {

struct Join {
  Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;
  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

TraditionalArray::TraditionalArray(sim::Engine& engine, net::Fabric& fabric,
                                   Config config)
    : engine_(engine), fabric_(fabric), config_(config) {
  switch_node_ = fabric_.AddNode("array-switch");
  for (std::uint32_t c = 0; c < config_.controllers; ++c) {
    const net::NodeId n = fabric_.AddNode("array-ctrl" + std::to_string(c));
    fabric_.Connect(switch_node_, n, config_.host_link);
    ctrls_.push_back(std::make_unique<Controller>(n, engine_));
  }
  // Partner interconnect for dirty mirroring.
  for (std::uint32_t c = 0; c + 1 < config_.controllers; ++c) {
    fabric_.Connect(ctrls_[c]->node, ctrls_[c + 1]->node,
                    net::LinkProfile::Backplane());
  }
}

net::NodeId TraditionalArray::AttachHost(const std::string& name) {
  const net::NodeId host = fabric_.AddNode(name);
  fabric_.Connect(host, switch_node_, config_.host_link);
  return host;
}

std::uint32_t TraditionalArray::AddLun(cache::BackingStore* backing) {
  luns_.push_back(backing);
  const std::uint32_t lun = static_cast<std::uint32_t>(luns_.size() - 1);
  owner_.push_back(lun % config_.controllers);
  return lun;
}

std::uint32_t TraditionalArray::OwnerOf(std::uint32_t lun) const {
  return owner_[lun];
}

void TraditionalArray::Touch(Controller& ctrl, std::uint64_t key) {
  auto it = ctrl.lru_pos.find(key);
  if (it != ctrl.lru_pos.end()) {
    ctrl.lru.erase(it->second);
  }
  ctrl.lru.push_back(key);
  ctrl.lru_pos[key] = std::prev(ctrl.lru.end());
}

void TraditionalArray::EvictIfNeeded(std::uint32_t c) {
  Controller& ctrl = *ctrls_[c];
  while (ctrl.cache.size() > config_.cache_pages_per_controller &&
         !ctrl.lru.empty()) {
    // Evict the LRU clean page; dirty pages get a write-back kick and a
    // temporary overcommit, like a real array under pressure.
    bool evicted = false;
    for (auto it = ctrl.lru.begin(); it != ctrl.lru.end(); ++it) {
      const std::uint64_t key = *it;
      Page& p = ctrl.cache[key];
      if (p.dirty) continue;
      ctrl.cache.erase(key);
      ctrl.lru_pos.erase(key);
      ctrl.lru.erase(it);
      evicted = true;
      break;
    }
    if (!evicted) {
      const std::uint64_t key = ctrl.lru.front();
      const std::uint32_t lun = static_cast<std::uint32_t>(key >> 40);
      const std::uint64_t page = key & ((1ULL << 40) - 1);
      FlushKey(c, lun, page, [](bool) {});
      break;
    }
  }
}

void TraditionalArray::FlushKey(std::uint32_t c, std::uint32_t lun,
                                std::uint64_t page, WriteCallback cb) {
  Controller& ctrl = *ctrls_[c];
  const std::uint64_t key = Key(lun, page);
  auto it = ctrl.cache.find(key);
  if (it == ctrl.cache.end() || !it->second.dirty) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(true); });
    return;
  }
  const std::uint32_t bs = luns_[lun]->block_size();
  const std::uint64_t block =
      page * (config_.page_bytes / bs);
  util::Bytes snapshot = it->second.data;
  luns_[lun]->WriteBlocks(
      block, snapshot,
      [this, c, lun, page, key, cb = std::move(cb)](bool ok) mutable {
        Controller& ctrl = *ctrls_[c];
        auto it = ctrl.cache.find(key);
        if (ok && it != ctrl.cache.end()) {
          it->second.dirty = false;
          // Release the partner's mirror copy.
          const std::uint32_t p = partner(c);
          if (p != c) {
            fabric_.Send(ctrl.node, ctrls_[p]->node, 64,
                         [this, p, key] {
                           ctrls_[p]->partner_mirror.erase(key);
                         },
                         nullptr);
          }
        }
        cb(ok);
      });
}

void TraditionalArray::ReadPage(std::uint32_t c, std::uint32_t lun,
                                std::uint64_t page,
                                std::function<void(bool, util::Bytes)> cb) {
  Controller& ctrl = *ctrls_[c];
  const std::uint64_t key = Key(lun, page);
  auto it = ctrl.cache.find(key);
  if (it != ctrl.cache.end()) {
    ++hits_;
    ctrl.bytes_served += config_.page_bytes;
    Touch(ctrl, key);
    util::Bytes copy = it->second.data;
    const sim::Tick done = ctrl.compute.AcquireBytes(
        config_.page_bytes, config_.serve_ns_per_byte);
    engine_.ScheduleAt(std::max(done, engine_.now() + config_.local_access_ns),
                       [cb = std::move(cb), copy = std::move(copy)]() mutable {
                         cb(true, std::move(copy));
                       });
    return;
  }
  ++misses_;
  const std::uint32_t bs = luns_[lun]->block_size();
  const std::uint32_t pb = config_.page_bytes / bs;
  const std::uint64_t block = page * pb;
  if (block >= luns_[lun]->CapacityBlocks()) {
    engine_.Schedule(0, [this, cb = std::move(cb)]() mutable {
      cb(true, util::Bytes(config_.page_bytes, 0));
    });
    return;
  }
  const std::uint32_t count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      pb, luns_[lun]->CapacityBlocks() - block));
  luns_[lun]->ReadBlocks(
      block, count,
      [this, c, lun, page, key, cb = std::move(cb)](bool ok,
                                                    util::Bytes data) mutable {
        if (!ok) {
          cb(false, {});
          return;
        }
        if (data.size() < config_.page_bytes) {
          data.resize(config_.page_bytes, 0);
        }
        Controller& ctrl = *ctrls_[c];
        ctrl.bytes_served += config_.page_bytes;
        ctrl.cache[key] = Page{data, false};
        Touch(ctrl, key);
        EvictIfNeeded(c);
        (void)lun;
        (void)page;
        const sim::Tick done = ctrl.compute.AcquireBytes(
            config_.page_bytes, config_.serve_ns_per_byte);
        engine_.ScheduleAt(done, [cb = std::move(cb),
                                  data = std::move(data)]() mutable {
          cb(true, std::move(data));
        });
      });
}

void TraditionalArray::WritePage(std::uint32_t c, std::uint32_t lun,
                                 std::uint64_t page, std::uint32_t off,
                                 util::Bytes data, WriteCallback cb) {
  Controller& ctrl = *ctrls_[c];
  const std::uint64_t key = Key(lun, page);
  // Evaluate before `data` is moved into the continuation.
  const bool full = off == 0 && data.size() == config_.page_bytes;
  auto apply = [this, c, lun, page, key, off,
                data = std::move(data),
                cb = std::move(cb)](bool ok, util::Bytes base) mutable {
    if (!ok) {
      cb(false);
      return;
    }
    Controller& ctrl = *ctrls_[c];
    std::memcpy(base.data() + off, data.data(), data.size());
    ctrl.cache[key] = Page{base, true};
    Touch(ctrl, key);
    EvictIfNeeded(c);
    ctrl.bytes_served += data.size();
    const sim::Tick done =
        ctrl.compute.AcquireBytes(data.size(), config_.serve_ns_per_byte);
    // Mirror the dirty page to the partner before acking (active-passive).
    const std::uint32_t p = partner(c);
    auto shared_cb = std::make_shared<WriteCallback>(std::move(cb));
    engine_.ScheduleAt(done, [this, c, p, key, base = std::move(base),
                              lun, page, shared_cb]() mutable {
      if (p == c || !ctrls_[p]->alive) {
        (*shared_cb)(true);
        FlushKey(c, lun, page, [](bool) {});
        return;
      }
      auto shared = std::make_shared<util::Bytes>(std::move(base));
      fabric_.Send(ctrls_[c]->node, ctrls_[p]->node, config_.page_bytes,
                   [this, c, p, key, lun, page, shared, shared_cb] {
                     ctrls_[p]->partner_mirror[key] = std::move(*shared);
                     (*shared_cb)(true);
                     FlushKey(c, lun, page, [](bool) {});
                   },
                   [shared_cb] { (*shared_cb)(false); });
    });
  };

  auto it = ctrl.cache.find(key);
  if (it != ctrl.cache.end()) {
    apply(true, it->second.data);
  } else if (full) {
    apply(true, util::Bytes(config_.page_bytes, 0));
  } else {
    ReadPage(c, lun, page, [apply = std::move(apply)](
                               bool ok, util::Bytes base) mutable {
      apply(ok, std::move(base));
    });
  }
}

void TraditionalArray::Read(net::NodeId host, std::uint32_t lun,
                            std::uint64_t offset, std::uint32_t length,
                            ReadCallback cb) {
  const std::uint32_t c = owner_[lun];
  if (!ctrls_[c]->alive) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false, {}); });
    return;
  }
  const std::uint32_t pb = config_.page_bytes;
  auto result = std::make_shared<util::Bytes>(length, 0);
  struct Piece {
    std::uint64_t page;
    std::uint32_t in_page;
    std::uint32_t len;
    std::size_t out;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = offset;
  std::uint32_t left = length;
  std::size_t out = 0;
  while (left > 0) {
    const std::uint64_t page = cur / pb;
    const std::uint32_t in_page = static_cast<std::uint32_t>(cur % pb);
    const std::uint32_t n = std::min(left, pb - in_page);
    pieces.push_back({page, in_page, n, out});
    cur += n;
    left -= n;
    out += n;
  }
  auto shared_cb = std::make_shared<ReadCallback>(std::move(cb));
  fabric_.Send(host, ctrls_[c]->node, 128, [this, c, lun, host, pieces, result,
                                            shared_cb, length] {
    auto join = std::make_shared<Join>(
        static_cast<int>(pieces.size()),
        [this, c, host, result, shared_cb, length](bool ok) {
          if (!ok) {
            (*shared_cb)(false, {});
            return;
          }
          fabric_.Send(ctrls_[c]->node, host, length,
                       [result, shared_cb] {
                         (*shared_cb)(true, std::move(*result));
                       },
                       [shared_cb] { (*shared_cb)(false, {}); });
        });
    for (const Piece& p : pieces) {
      ReadPage(c, lun, p.page,
               [p, result, join](bool ok, util::Bytes page_data) {
                 if (ok) {
                   std::memcpy(result->data() + p.out,
                               page_data.data() + p.in_page, p.len);
                 }
                 join->Arrive(ok);
               });
    }
  }, [shared_cb] { (*shared_cb)(false, {}); });
}

void TraditionalArray::Write(net::NodeId host, std::uint32_t lun,
                             std::uint64_t offset,
                             std::span<const std::uint8_t> data,
                             WriteCallback cb) {
  const std::uint32_t c = owner_[lun];
  if (!ctrls_[c]->alive) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false); });
    return;
  }
  const std::uint32_t pb = config_.page_bytes;
  auto src = std::make_shared<util::Bytes>(data.begin(), data.end());
  auto shared_cb = std::make_shared<WriteCallback>(std::move(cb));
  fabric_.Send(host, ctrls_[c]->node, src->size(), [this, c, lun, offset, src,
                                                    pb, shared_cb] {
    struct Piece {
      std::uint64_t page;
      std::uint32_t in_page;
      std::size_t off;
      std::uint32_t len;
    };
    std::vector<Piece> pieces;
    std::uint64_t cur = offset;
    std::size_t soff = 0;
    std::size_t left = src->size();
    while (left > 0) {
      const std::uint64_t page = cur / pb;
      const std::uint32_t in_page = static_cast<std::uint32_t>(cur % pb);
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::size_t>(left, pb - in_page));
      pieces.push_back({page, in_page, soff, n});
      cur += n;
      soff += n;
      left -= n;
    }
    auto join = std::make_shared<Join>(
        static_cast<int>(pieces.size()),
        [shared_cb](bool ok) { (*shared_cb)(ok); });
    for (const Piece& p : pieces) {
      util::Bytes chunk(src->begin() + static_cast<std::ptrdiff_t>(p.off),
                        src->begin() +
                            static_cast<std::ptrdiff_t>(p.off + p.len));
      WritePage(c, lun, p.page, p.in_page, std::move(chunk),
                [join](bool ok) { join->Arrive(ok); });
    }
  }, [shared_cb] { (*shared_cb)(false); });
}

void TraditionalArray::FailController(std::uint32_t c) {
  Controller& dead = *ctrls_[c];
  dead.alive = false;
  fabric_.SetNodeUp(dead.node, false);
  const std::uint32_t p = partner(c);
  // Reassign LUNs to the partner.
  for (std::uint32_t lun = 0; lun < owner_.size(); ++lun) {
    if (owner_[lun] == c && p != c && ctrls_[p]->alive) {
      owner_[lun] = p;
    }
  }
  dead.cache.clear();
  dead.lru.clear();
  dead.lru_pos.clear();
  // The partner recovers the mirrored dirty pages into its own cache and
  // flushes them.
  if (p != c && ctrls_[p]->alive) {
    Controller& part = *ctrls_[p];
    for (auto& [key, data] : part.partner_mirror) {
      part.cache[key] = Page{std::move(data), true};
      Touch(part, key);
      const std::uint32_t lun = static_cast<std::uint32_t>(key >> 40);
      const std::uint64_t page = key & ((1ULL << 40) - 1);
      FlushKey(p, lun, page, [](bool) {});
    }
    part.partner_mirror.clear();
  }
}

void TraditionalArray::FlushAll(WriteCallback cb) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> dirty;
  for (std::uint32_t c = 0; c < ctrls_.size(); ++c) {
    if (!ctrls_[c]->alive) continue;
    for (const auto& [key, page] : ctrls_[c]->cache) {
      if (page.dirty) {
        dirty.emplace_back(c, static_cast<std::uint32_t>(key >> 40),
                           key & ((1ULL << 40) - 1));
      }
    }
  }
  if (dirty.empty()) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(true); });
    return;
  }
  auto join = std::make_shared<Join>(static_cast<int>(dirty.size()),
                                     std::move(cb));
  for (const auto& [c, lun, page] : dirty) {
    FlushKey(c, lun, page, [join](bool ok) { join->Arrive(ok); });
  }
}

std::vector<double> TraditionalArray::LoadByController() const {
  std::vector<double> loads;
  for (const auto& c : ctrls_) {
    loads.push_back(static_cast<double>(c->bytes_served));
  }
  return loads;
}

}  // namespace nlss::baseline
