#include "mgmt/manager.h"

#include <memory>

#include "mgmt/json.h"
#include "raid/layout.h"

namespace nlss::mgmt {

// --- AlertManager --------------------------------------------------------------

void AlertManager::Raise(AlertSeverity severity, const std::string& source,
                         const std::string& message) {
  alerts_.push_back(Alert{engine_.now(), severity, source, message});
}

std::size_t AlertManager::CountAtLeast(AlertSeverity severity) const {
  std::size_t n = 0;
  for (const Alert& a : alerts_) {
    if (a.severity >= severity) ++n;
  }
  return n;
}

// --- StatusReporter --------------------------------------------------------------

std::string StatusReporter::Report() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("site", system_.config().name);
  w.Field("time_ns", system_.engine().now());

  w.Key("controllers").BeginArray();
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    const auto& stats = system_.cache().stats(c);
    w.BeginObject();
    w.Field("id", static_cast<std::uint64_t>(c));
    w.Field("alive", system_.cache().IsAlive(c));
    w.Field("ops", stats.ops);
    w.Field("local_hits", stats.local_hits);
    w.Field("remote_hits", stats.remote_hits);
    w.Field("misses", stats.misses);
    w.Field("bytes_served", stats.bytes_served);
    w.Field("utilization", system_.cache().compute(c).Utilization());
    w.EndObject();
  }
  w.EndArray();

  w.Key("pool").BeginObject();
  w.Field("total_extents", system_.pool().TotalExtents());
  w.Field("allocated_extents", system_.pool().AllocatedExtents());
  w.Field("extent_bytes", system_.pool().extent_bytes());
  w.Field("occupancy",
          system_.pool().TotalExtents() == 0
              ? 0.0
              : static_cast<double>(system_.pool().AllocatedExtents()) /
                    static_cast<double>(system_.pool().TotalExtents()));
  w.EndObject();

  w.Key("raid_groups").BeginArray();
  for (std::uint32_t g = 0; g < system_.group_count(); ++g) {
    auto& group = system_.group(g);
    group.RefreshMemberStates();
    w.BeginObject();
    w.Field("id", static_cast<std::uint64_t>(g));
    w.Field("level", raid::RaidLevelName(group.layout().level()));
    w.Field("width", static_cast<std::uint64_t>(group.width()));
    w.Field("unreadable_members",
            static_cast<std::uint64_t>(group.UnreadableCount()));
    w.Field("operational", group.Operational());
    w.EndObject();
  }
  w.EndArray();

  w.Key("volumes").BeginArray();
  for (std::uint32_t v = 0; v < system_.volume_count(); ++v) {
    auto& vol = system_.volume(v);
    w.BeginObject();
    w.Field("id", static_cast<std::uint64_t>(v));
    w.Field("tenant", vol.tenant());
    w.Field("virtual_bytes", vol.VirtualBytes());
    w.Field("allocated_bytes", vol.AllocatedBytes());
    w.EndObject();
  }
  w.EndArray();

  w.Field("dirty_pages", system_.cache().DirtyPages());
  w.EndObject();
  return w.str();
}

void StatusReporter::CheckHealth(AlertManager& alerts) const {
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    if (!system_.cache().IsAlive(c)) {
      alerts.Raise(AlertSeverity::kCritical,
                   "controller" + std::to_string(c), "controller down");
    }
  }
  for (std::uint32_t g = 0; g < system_.group_count(); ++g) {
    auto& group = system_.group(g);
    group.RefreshMemberStates();
    if (!group.Operational()) {
      alerts.Raise(AlertSeverity::kCritical, "raid" + std::to_string(g),
                   "group not operational: data loss risk");
    } else if (group.UnreadableCount() > 0) {
      alerts.Raise(AlertSeverity::kWarning, "raid" + std::to_string(g),
                   "group degraded: rebuild required");
    }
  }
}

// --- PolicyEngine ------------------------------------------------------------------

PolicyEngine::PolicyEngine(controller::StorageSystem& system,
                           AlertManager& alerts)
    : PolicyEngine(system, alerts, Config()) {}

PolicyEngine::PolicyEngine(controller::StorageSystem& system,
                           AlertManager& alerts, Config config)
    : system_(system), alerts_(alerts), config_(config) {}

std::vector<std::string> PolicyEngine::RunOnce() {
  std::vector<std::string> actions;
  const auto total = system_.pool().TotalExtents();
  const auto used = system_.pool().AllocatedExtents();
  const double occupancy =
      total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
  if (occupancy >= config_.pool_critical_fraction) {
    alerts_.Raise(AlertSeverity::kCritical, "pool",
                  "pool occupancy critical: add capacity now");
  } else if (occupancy >= config_.pool_warning_fraction) {
    alerts_.Raise(AlertSeverity::kWarning, "pool",
                  "pool occupancy high: plan capacity expansion");
  }

  // Auto-grow thin volumes approaching their advertised size — the DMSD
  // promise that "host applications never have to deal with volume
  // resizing" (paper §3).
  for (std::uint32_t v = 0; v < system_.volume_count(); ++v) {
    auto& vol = system_.volume(v);
    const double fill =
        vol.VirtualBytes() == 0
            ? 0.0
            : static_cast<double>(vol.AllocatedBytes()) /
                  static_cast<double>(vol.VirtualBytes());
    if (fill >= config_.volume_autogrow_fraction) {
      const std::uint64_t new_blocks = static_cast<std::uint64_t>(
          static_cast<double>(vol.CapacityBlocks()) *
          config_.volume_autogrow_factor);
      vol.Resize(new_blocks);
      actions.push_back("auto-grew volume " + std::to_string(v) +
                        " (tenant " + vol.tenant() + ")");
    }
  }
  return actions;
}

// --- RollingUpgrade -----------------------------------------------------------------

void RollingUpgrade::Run(sim::Tick per_controller_ns,
                         std::function<void(Result)> done) {
  auto shared_done =
      std::make_shared<std::function<void(Result)>>(std::move(done));
  UpgradeNext(0, per_controller_ns, system_.engine().now(), shared_done);
}

void RollingUpgrade::UpgradeNext(
    std::uint32_t index, sim::Tick per_controller_ns, sim::Tick started,
    std::shared_ptr<std::function<void(Result)>> done) {
  if (index >= system_.controller_count()) {
    Result r;
    r.completed = true;
    r.controllers_upgraded = system_.controller_count();
    r.elapsed_ns = system_.engine().now() - started;
    (*done)(r);
    return;
  }
  // Drain the blade: flush its dirty data via the cluster-wide flush, then
  // take it out, "flash" it, and bring it back.
  system_.cache().FlushAll([this, index, per_controller_ns, started,
                            done](bool) {
    alerts_.Raise(AlertSeverity::kInfo, "upgrade",
                  "upgrading controller " + std::to_string(index));
    system_.FailController(index);
    system_.RecoverCluster();
    system_.engine().Schedule(per_controller_ns, [this, index,
                                                  per_controller_ns, started,
                                                  done] {
      system_.ReviveController(index);
      system_.RecoverCluster();
      UpgradeNext(index + 1, per_controller_ns, started, done);
    });
  });
}

// --- Geo status --------------------------------------------------------------------

std::string GeoStatusReport(geo::GeoCluster& cluster) {
  JsonWriter w;
  w.BeginObject();
  w.Key("sites").BeginArray();
  for (geo::SiteId s = 0; s < cluster.site_count(); ++s) {
    auto& site = cluster.site(s);
    w.BeginObject();
    w.Field("name", site.name());
    w.Field("alive", site.alive());
    w.Field("files", site.filesystem().TotalFiles());
    w.Field("pool_allocated_extents",
            site.system().pool().AllocatedExtents());
    w.EndObject();
  }
  w.EndArray();
  w.Field("pending_async_bytes", cluster.PendingAsyncBytes());
  w.Field("lost_async_bytes", cluster.losses().lost_async_bytes);
  w.Field("unavailable_files", cluster.losses().unavailable_files);
  w.EndObject();
  return w.str();
}

}  // namespace nlss::mgmt
