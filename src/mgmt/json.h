// Minimal JSON writer for the management plane's web-style status API
// (paper §7.3: "management could be performed from Web-based interfaces").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nlss::mgmt {

/// Streaming JSON builder.  Keys/values are escaped; nesting is tracked so
/// commas land where they should.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);

  /// Convenience: Key(k) + Value(v).
  template <typename T>
  JsonWriter& Field(const std::string& k, T&& v) {
    Key(k);
    return Value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  static std::string Escape(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // per nesting level
  bool after_key_ = false;
};

}  // namespace nlss::mgmt
