#include "mgmt/mgmt_network.h"

namespace nlss::mgmt {

ManagementNetwork::ManagementNetwork(controller::StorageSystem& system,
                                     AdminHttp& admin, Config config)
    : system_(system), admin_(admin) {
  net::Fabric& fabric = system_.fabric();
  switch_node_ = fabric.AddNode(system_.config().name + "-mgmt-switch");
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    // A dedicated management Ethernet port per blade.  It is a distinct
    // fabric node: taking the blade's host-side presence down does not
    // take the management port down, and vice versa.
    const net::NodeId port = fabric.AddNode(
        system_.config().name + "-mgmt" + std::to_string(c));
    fabric.Connect(port, switch_node_, config.link);
    ports_.push_back(port);
  }
}

net::NodeId ManagementNetwork::AddStation(const std::string& name) {
  const net::NodeId station = system_.fabric().AddNode(name);
  system_.fabric().Connect(station, switch_node_, net::LinkProfile::GigE());
  return station;
}

void ManagementNetwork::Request(net::NodeId station,
                                const std::string& raw_request, Callback cb) {
  // Route to the first live blade's management port.
  std::uint32_t blade = ~0u;
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    if (system_.cache().IsAlive(c)) {
      blade = c;
      break;
    }
  }
  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  if (blade == ~0u) {
    system_.engine().Schedule(0, [shared_cb] {
      proto::HttpResponse r;
      r.status = 503;
      r.reason = "Service Unavailable";
      (*shared_cb)(std::move(r));
    });
    return;
  }
  const net::NodeId port = ports_[blade];
  system_.fabric().Send(
      station, port, raw_request.size() + 64,
      [this, station, port, raw_request, shared_cb] {
        proto::HttpResponse resp = admin_.Handle(raw_request);
        auto shared_resp =
            std::make_shared<proto::HttpResponse>(std::move(resp));
        system_.fabric().Send(
            port, station,
            shared_resp->body.size() + 128,
            [shared_cb, shared_resp] { (*shared_cb)(std::move(*shared_resp)); },
            [shared_cb] {
              proto::HttpResponse r;
              r.status = 503;
              r.reason = "Service Unavailable";
              (*shared_cb)(std::move(r));
            });
      },
      [shared_cb] {
        proto::HttpResponse r;
        r.status = 503;
        r.reason = "Service Unavailable";
        (*shared_cb)(std::move(r));
      });
}

}  // namespace nlss::mgmt
