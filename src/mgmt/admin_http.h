// Web-based management endpoint (paper §7.3: "actual management could be
// performed from Web-based interfaces, allowing even a distributed IT team
// to interact with the single system image").
//
// Reuses the blade HTTP parser; serves JSON status documents over
// authenticated admin sessions.  Routes:
//   GET /status          single-site snapshot (StatusReporter)
//   GET /geo             geo-cluster snapshot (when attached)
//   GET /alerts          alert log
//   GET /audit           audit chain (verifies integrity before serving)
//   GET /qos             per-tenant SLO snapshot + class specs (attached)
//   GET /qos/weight?class=<gold|silver|bronze>&weight=<n>
//                        runtime WFQ weight reconfiguration
//   GET /meta            sharded metadata service: shard map (per-shard
//                        blade, directory + op counts, busy/queue time),
//                        service stats, host dentry-cache hit rate
//   GET /tier            flash tier: per-blade occupancy (total/dirty
//                        pages), heat histogram, eviction/promotion/
//                        demotion counters, flash hit rate
//   GET /metrics         Prometheus text exposition (obs hub attached)
//   GET /traces?tenant=<t>&name=<substr>&min_us=<n>&view=<slowest|recent>
//                        retained traces with per-layer breakdowns:
//                        view=slowest (default) is the top-K retained set,
//                        view=recent the ring buffer of latest finished
//                        traces; name= filters on the root span name
#pragma once

#include <optional>
#include <string>

#include "controller/system.h"
#include "geo/geo.h"
#include "meta/service.h"
#include "mgmt/manager.h"
#include "proto/http_server.h"
#include "qos/scheduler.h"
#include "security/audit.h"
#include "security/auth.h"

namespace nlss::mgmt {

class AdminHttp {
 public:
  AdminHttp(controller::StorageSystem& system, security::AuthService& auth,
            AlertManager& alerts, security::AuditLog& audit)
      : system_(system), auth_(auth), alerts_(alerts), audit_(audit) {}

  void AttachGeo(geo::GeoCluster* geo) { geo_ = geo; }
  void AttachQos(qos::Scheduler* qos) { qos_ = qos; }
  void AttachObs(obs::Hub* hub) { hub_ = hub; }
  void AttachMeta(meta::MetaService* meta) { meta_ = meta; }

  /// Handle "GET <path> HTTP/1.0" with an auth token header line
  /// "Authorization: <token>".  Admin role required.
  proto::HttpResponse Handle(const std::string& raw_request);

 private:
  proto::HttpResponse Json(int status, const std::string& body) const;
  std::optional<std::string> Authenticate(const std::string& raw) const;
  proto::HttpResponse QosReport() const;
  proto::HttpResponse QosSetWeight(const std::string& query);
  proto::HttpResponse Traces(const std::string& query) const;
  proto::HttpResponse MetaReport() const;
  proto::HttpResponse TierReport() const;

  controller::StorageSystem& system_;
  security::AuthService& auth_;
  AlertManager& alerts_;
  security::AuditLog& audit_;
  geo::GeoCluster* geo_ = nullptr;
  qos::Scheduler* qos_ = nullptr;
  obs::Hub* hub_ = nullptr;
  meta::MetaService* meta_ = nullptr;
};

}  // namespace nlss::mgmt
