// Management plane (paper §3 "policy and administration must be automated",
// §6.3 incremental upgrades, §7.3 single-system-image management):
//   * StatusReport: a web-style JSON snapshot of the whole deployment.
//   * AlertManager: threshold alerts (pool nearly full, controller down,
//     degraded RAID group).
//   * PolicyEngine: automated pool management — auto-extends thin volumes'
//     advertised size and raises alerts instead of failing tenants.
//   * RollingUpgrade: upgrades controllers one at a time, never taking the
//     system down; I/O continues throughout.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "controller/system.h"
#include "geo/geo.h"

namespace nlss::mgmt {

// --- Alerts ---------------------------------------------------------------

enum class AlertSeverity : std::uint8_t { kInfo, kWarning, kCritical };

struct Alert {
  sim::Tick when;
  AlertSeverity severity;
  std::string source;
  std::string message;
};

class AlertManager {
 public:
  explicit AlertManager(sim::Engine& engine) : engine_(engine) {}

  void Raise(AlertSeverity severity, const std::string& source,
             const std::string& message);

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::size_t CountAtLeast(AlertSeverity severity) const;

 private:
  sim::Engine& engine_;
  std::vector<Alert> alerts_;
};

// --- Health / status ---------------------------------------------------------

class StatusReporter {
 public:
  explicit StatusReporter(controller::StorageSystem& system)
      : system_(system) {}

  /// JSON snapshot: controllers, cache stats, pool occupancy, RAID health,
  /// per-volume allocation.
  std::string Report() const;

  /// Scan for unhealthy conditions and push them to the alert manager.
  void CheckHealth(AlertManager& alerts) const;

 private:
  controller::StorageSystem& system_;
};

// --- Policy automation ----------------------------------------------------------

class PolicyEngine {
 public:
  struct Config {
    double pool_warning_fraction = 0.80;   // alert above this occupancy
    double pool_critical_fraction = 0.95;
    double volume_autogrow_fraction = 0.85;  // grow virtual size above this
    double volume_autogrow_factor = 1.5;
  };

  PolicyEngine(controller::StorageSystem& system, AlertManager& alerts);
  PolicyEngine(controller::StorageSystem& system, AlertManager& alerts,
               Config config);

  /// One automation sweep; call periodically.  Returns actions taken.
  std::vector<std::string> RunOnce();

 private:
  controller::StorageSystem& system_;
  AlertManager& alerts_;
  Config config_;
};

// --- Rolling upgrade ----------------------------------------------------------

class RollingUpgrade {
 public:
  struct Result {
    bool completed = false;
    std::uint32_t controllers_upgraded = 0;
    sim::Tick elapsed_ns = 0;
  };

  RollingUpgrade(controller::StorageSystem& system, AlertManager& alerts)
      : system_(system), alerts_(alerts) {}

  /// Upgrade every controller one at a time: fail it out of the cluster,
  /// "flash" it for `per_controller_ns`, then return it to service and
  /// recover coherence before moving on.  The system stays up throughout.
  void Run(sim::Tick per_controller_ns, std::function<void(Result)> done);

 private:
  void UpgradeNext(std::uint32_t index, sim::Tick per_controller_ns,
                   sim::Tick started,
                   std::shared_ptr<std::function<void(Result)>> done);

  controller::StorageSystem& system_;
  AlertManager& alerts_;
};

/// Geo-wide status (single system image across sites, §7.3).
std::string GeoStatusReport(geo::GeoCluster& cluster);

}  // namespace nlss::mgmt
