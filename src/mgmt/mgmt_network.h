// Out-of-band management network (paper §5.2 and Figure 2): "controller
// blades could have built-in Ethernet ports that are used to create a
// separate, secure network for out-of-band control commands", with
// "redundant storage management servers" behind it.
//
// ManagementNetwork builds that second network on the shared fabric: a
// management switch, one management port per blade, and management
// stations.  Admin HTTP requests travel station -> mgmt switch -> blade and
// back, fully independent of the host-side Fibre Channel fabric — a
// host-fabric outage or a compromised host port cannot touch it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/system.h"
#include "mgmt/admin_http.h"

namespace nlss::mgmt {

class ManagementNetwork {
 public:
  struct Config {
    net::LinkProfile link = net::LinkProfile::GigE();
  };

  ManagementNetwork(controller::StorageSystem& system, AdminHttp& admin)
      : ManagementNetwork(system, admin, Config()) {}
  ManagementNetwork(controller::StorageSystem& system, AdminHttp& admin,
                    Config config);

  /// Add a management station (an operator console / web browser).
  net::NodeId AddStation(const std::string& name);

  using Callback = std::function<void(proto::HttpResponse)>;

  /// Issue a raw admin HTTP request from a station.  The request rides the
  /// management network to a live blade's management port, is handled
  /// there, and the response rides back.  Fails with status 503 only if no
  /// blade is reachable over the management network.
  void Request(net::NodeId station, const std::string& raw_request,
               Callback cb);

  net::NodeId mgmt_switch() const { return switch_node_; }
  net::NodeId mgmt_port(std::uint32_t blade) const {
    return ports_[blade];
  }

 private:
  controller::StorageSystem& system_;
  AdminHttp& admin_;
  net::NodeId switch_node_;
  std::vector<net::NodeId> ports_;  // per-blade management Ethernet ports
};

}  // namespace nlss::mgmt
