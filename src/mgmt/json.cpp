#include "mgmt/json.h"

#include <cstdio>

namespace nlss::mgmt {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace nlss::mgmt
