#include "mgmt/admin_http.h"

#include <sstream>

#include "mgmt/json.h"

namespace nlss::mgmt {

proto::HttpResponse AdminHttp::Json(int status,
                                    const std::string& body) const {
  proto::HttpResponse r;
  r.status = status;
  r.reason = status == 200   ? "OK"
             : status == 401 ? "Unauthorized"
             : status == 404 ? "Not Found"
                             : "Bad Request";
  r.body.assign(body.begin(), body.end());
  r.content_length = r.body.size();
  r.headers = "Content-Type: application/json\r\n";
  return r;
}

std::optional<std::string> AdminHttp::Authenticate(
    const std::string& raw) const {
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("Authorization:", 0) == 0) {
      std::string token = line.substr(14);
      while (!token.empty() && token.front() == ' ') token.erase(token.begin());
      const auto user = auth_.Verify(token);
      if (user.has_value() && auth_.HasRole(*user, "admin")) return user;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

proto::HttpResponse AdminHttp::Handle(const std::string& raw_request) {
  const auto request = proto::ParseHttpRequest(raw_request);
  if (!request.has_value()) {
    return Json(400, "{\"error\":\"bad request\"}");
  }
  const auto admin = Authenticate(raw_request);
  if (!admin.has_value()) {
    audit_.Record("?", "admin-http-denied", request->path);
    return Json(401, "{\"error\":\"admin authentication required\"}");
  }
  audit_.Record(*admin, "admin-http", request->path);

  if (request->path == "/status") {
    StatusReporter reporter(system_);
    return Json(200, reporter.Report());
  }
  if (request->path == "/geo") {
    if (geo_ == nullptr) return Json(404, "{\"error\":\"no geo cluster\"}");
    return Json(200, GeoStatusReport(*geo_));
  }
  if (request->path == "/alerts") {
    JsonWriter w;
    w.BeginArray();
    for (const Alert& a : alerts_.alerts()) {
      w.BeginObject();
      w.Field("when_ns", a.when);
      w.Field("severity", a.severity == AlertSeverity::kCritical ? "critical"
                          : a.severity == AlertSeverity::kWarning
                              ? "warning"
                              : "info");
      w.Field("source", a.source);
      w.Field("message", a.message);
      w.EndObject();
    }
    w.EndArray();
    return Json(200, w.str());
  }
  if (request->path == "/audit") {
    JsonWriter w;
    w.BeginObject();
    w.Field("chain_intact", audit_.VerifyChain());
    w.Key("entries").BeginArray();
    for (const auto& e : audit_.entries()) {
      w.BeginObject();
      w.Field("when_ns", e.when);
      w.Field("actor", e.actor);
      w.Field("action", e.action);
      w.Field("detail", e.detail);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return Json(200, w.str());
  }
  return Json(404, "{\"error\":\"unknown route\"}");
}

}  // namespace nlss::mgmt
