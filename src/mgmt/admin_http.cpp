#include "mgmt/admin_http.h"

#include <charconv>
#include <map>
#include <sstream>

#include "meta/client.h"
#include "mgmt/json.h"

namespace nlss::mgmt {
namespace {

/// Split "k1=v1&k2=v2" into a map (no URL decoding: admin values are
/// simple identifiers/numbers).
std::map<std::string, std::string> ParseQuery(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return out;
}

}  // namespace

proto::HttpResponse AdminHttp::Json(int status,
                                    const std::string& body) const {
  proto::HttpResponse r;
  r.status = status;
  r.reason = status == 200   ? "OK"
             : status == 401 ? "Unauthorized"
             : status == 404 ? "Not Found"
                             : "Bad Request";
  r.body.assign(body.begin(), body.end());
  r.content_length = r.body.size();
  r.headers = "Content-Type: application/json\r\n";
  return r;
}

std::optional<std::string> AdminHttp::Authenticate(
    const std::string& raw) const {
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("Authorization:", 0) == 0) {
      std::string token = line.substr(14);
      while (!token.empty() && token.front() == ' ') token.erase(token.begin());
      const auto user = auth_.Verify(token);
      if (user.has_value() && auth_.HasRole(*user, "admin")) return user;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

proto::HttpResponse AdminHttp::Handle(const std::string& raw_request) {
  const auto request = proto::ParseHttpRequest(raw_request);
  if (!request.has_value()) {
    return Json(400, "{\"error\":\"bad request\"}");
  }
  const auto admin = Authenticate(raw_request);
  if (!admin.has_value()) {
    audit_.Record("?", "admin-http-denied", request->path);
    return Json(401, "{\"error\":\"admin authentication required\"}");
  }
  audit_.Record(*admin, "admin-http", request->path);

  // Routes may carry a query string ("/qos/weight?class=gold&weight=8").
  std::string path = request->path;
  std::string query;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path = path.substr(0, q);
  }
  if (path == "/qos") {
    if (qos_ == nullptr) return Json(404, "{\"error\":\"no qos scheduler\"}");
    return QosReport();
  }
  if (path == "/qos/weight") {
    if (qos_ == nullptr) return Json(404, "{\"error\":\"no qos scheduler\"}");
    return QosSetWeight(query);
  }
  if (path == "/status") {
    StatusReporter reporter(system_);
    return Json(200, reporter.Report());
  }
  if (path == "/geo") {
    if (geo_ == nullptr) return Json(404, "{\"error\":\"no geo cluster\"}");
    return Json(200, GeoStatusReport(*geo_));
  }
  if (path == "/alerts") {
    JsonWriter w;
    w.BeginArray();
    for (const Alert& a : alerts_.alerts()) {
      w.BeginObject();
      w.Field("when_ns", a.when);
      w.Field("severity", a.severity == AlertSeverity::kCritical ? "critical"
                          : a.severity == AlertSeverity::kWarning
                              ? "warning"
                              : "info");
      w.Field("source", a.source);
      w.Field("message", a.message);
      w.EndObject();
    }
    w.EndArray();
    return Json(200, w.str());
  }
  if (path == "/meta") {
    if (meta_ == nullptr) return Json(404, "{\"error\":\"no meta service\"}");
    return MetaReport();
  }
  if (path == "/tier") {
    if (system_.tier() == nullptr) {
      return Json(404, "{\"error\":\"no flash tier\"}");
    }
    return TierReport();
  }
  if (path == "/metrics") {
    if (hub_ == nullptr) return Json(404, "{\"error\":\"no obs hub\"}");
    // Prometheus text exposition format, not JSON.
    proto::HttpResponse r;
    r.status = 200;
    r.reason = "OK";
    const std::string text = hub_->metrics().PrometheusText();
    r.body.assign(text.begin(), text.end());
    r.content_length = r.body.size();
    r.headers = "Content-Type: text/plain; version=0.0.4\r\n";
    return r;
  }
  if (path == "/traces") {
    if (hub_ == nullptr) return Json(404, "{\"error\":\"no obs hub\"}");
    return Traces(query);
  }
  if (path == "/audit") {
    JsonWriter w;
    w.BeginObject();
    w.Field("chain_intact", audit_.VerifyChain());
    w.Key("entries").BeginArray();
    for (const auto& e : audit_.entries()) {
      w.BeginObject();
      w.Field("when_ns", e.when);
      w.Field("actor", e.actor);
      w.Field("action", e.action);
      w.Field("detail", e.detail);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return Json(200, w.str());
  }
  return Json(404, "{\"error\":\"unknown route\"}");
}

proto::HttpResponse AdminHttp::QosReport() const {
  const qos::TenantRegistry& registry = qos_->registry();
  const qos::SloTracker& slo = qos_->slo();
  JsonWriter w;
  w.BeginObject();
  w.Key("classes").BeginArray();
  for (int c = 0; c < qos::kServiceClasses; ++c) {
    const auto cls = static_cast<qos::ServiceClass>(c);
    const qos::ClassSpec& spec = registry.spec(cls);
    w.BeginObject();
    w.Field("name", qos::ServiceClassName(cls));
    w.Field("weight", static_cast<std::uint64_t>(spec.weight));
    w.Field("rate_bytes_per_sec", spec.rate_bytes_per_sec);
    w.Field("burst_bytes", spec.burst_bytes);
    w.Field("max_queue_depth", static_cast<std::uint64_t>(spec.max_queue_depth));
    w.EndObject();
  }
  w.EndArray();
  w.Key("tenants").BeginArray();
  for (const qos::Tenant& t : registry.tenants()) {
    const auto& s = slo.stats(t.id);
    w.BeginObject();
    w.Field("id", static_cast<std::uint64_t>(t.id));
    w.Field("name", t.name);
    w.Field("class", qos::ServiceClassName(t.cls));
    w.Field("ops", s.ops);
    w.Field("errors", s.errors);
    w.Field("rejected", s.rejected);
    w.Field("bytes", s.bytes);
    w.Field("delivered_mbps", slo.DeliveredMBps(t.id));
    w.Field("latency_p50_ns", s.latency.Percentile(0.5));
    w.Field("latency_p99_ns", s.latency.Percentile(0.99));
    w.Field("latency_mean_ns", s.latency.Mean());
    w.Field("queue_wait_p99_ns", s.queue_wait.Percentile(0.99));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Json(200, w.str());
}

proto::HttpResponse AdminHttp::QosSetWeight(const std::string& query) {
  const auto params = ParseQuery(query);
  const auto cls_it = params.find("class");
  const auto weight_it = params.find("weight");
  if (cls_it == params.end() || weight_it == params.end()) {
    return Json(400, "{\"error\":\"class and weight required\"}");
  }
  const auto cls = qos::ServiceClassFromName(cls_it->second);
  if (!cls.has_value()) {
    return Json(400, "{\"error\":\"unknown class\"}");
  }
  std::uint32_t weight = 0;
  const auto& ws = weight_it->second;
  const auto [ptr, ec] =
      std::from_chars(ws.data(), ws.data() + ws.size(), weight);
  if (ec != std::errc() || ptr != ws.data() + ws.size() ||
      !qos_->registry().SetClassWeight(*cls, weight)) {
    return Json(400, "{\"error\":\"invalid weight\"}");
  }
  audit_.Record("admin", "qos-set-weight",
                cls_it->second + "=" + ws);
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("class", cls_it->second);
  w.Field("weight", static_cast<std::uint64_t>(weight));
  w.EndObject();
  return Json(200, w.str());
}

proto::HttpResponse AdminHttp::TierReport() const {
  const tier::TierManager& tier = *system_.tier();
  const tier::Stats& s = tier.stats();
  JsonWriter w;
  w.BeginObject();
  w.Field("flash_capacity_pages", tier.config().flash_capacity_pages);
  w.Field("flash_pages", tier.TotalFlashPages());
  const std::uint64_t lookups = s.flash_hits + s.flash_misses;
  w.Field("flash_hit_rate",
          lookups == 0 ? 0.0
                       : static_cast<double>(s.flash_hits) /
                             static_cast<double>(lookups));
  w.Field("flash_hits", s.flash_hits);
  w.Field("flash_misses", s.flash_misses);
  w.Field("remote_reads", s.remote_reads);
  w.Field("joins", s.joins);
  w.Field("spills", s.spills);
  w.Field("admits", s.admits);
  w.Field("writeback_absorbs", s.writeback_absorbs);
  w.Field("promotions", s.promotions);
  w.Field("demotions", s.demotions);
  w.Field("stale_demotes", s.stale_demotes);
  w.Field("drops", s.drops);
  w.Field("cool_scans", s.cool_scans);
  w.Field("cool_spills", s.cool_spills);
  w.Field("cool_drops", s.cool_drops);
  w.Field("qos_rejects", s.qos_rejects);
  w.Key("blades").BeginArray();
  for (cache::ControllerId c = 0; c < tier.lanes(); ++c) {
    w.BeginObject();
    w.Field("blade", static_cast<std::uint64_t>(c));
    w.Field("flash_pages", tier.FlashPages(c));
    w.Field("dirty_pages", tier.FlashDirtyPages(c));
    w.EndObject();
  }
  w.EndArray();
  w.Key("heat_histogram").BeginArray();
  for (const std::uint64_t bucket : tier.heat().Histogram()) {
    w.Value(bucket);
  }
  w.EndArray();
  w.EndObject();
  return Json(200, w.str());
}

proto::HttpResponse AdminHttp::MetaReport() const {
  const meta::ServiceStats& s = meta_->stats();
  const std::uint64_t cache_resolves = meta_->SumClientStat(
      [](const meta::Client& c) { return c.stats().resolves; });
  const std::uint64_t cache_hits = meta_->SumClientStat(
      [](const meta::Client& c) { return c.stats().full_hits; });
  JsonWriter w;
  w.BeginObject();
  w.Field("map_epoch", meta_->map_epoch());
  w.Field("resolves", s.resolves);
  w.Field("lookup_steps", s.lookup_steps);
  w.Field("mutations", s.mutations);
  w.Field("scans", s.scans);
  w.Field("invalidations", s.invalidations);
  w.Field("qos_rejects", s.qos_rejects);
  w.Field("remaps", s.remaps);
  w.Field("moved_dirs", s.moved_dirs);
  w.Key("shards").BeginArray();
  for (meta::ShardId sh = 0; sh < meta_->shard_count(); ++sh) {
    const meta::MetaShard& shard = meta_->shard(sh);
    w.BeginObject();
    w.Field("id", static_cast<std::uint64_t>(sh));
    w.Field("blade", static_cast<std::uint64_t>(meta_->BladeOf(sh)));
    w.Field("dirs", static_cast<std::uint64_t>(shard.dir_count()));
    w.Field("lookups", shard.stats().lookups);
    w.Field("mutations", shard.stats().mutations);
    w.Field("scans", shard.stats().scans);
    w.Field("busy_ns", shard.stats().busy_ns);
    w.Field("queue_ns", shard.stats().queue_ns);
    w.EndObject();
  }
  w.EndArray();
  w.Key("dentry_cache").BeginObject();
  w.Field("clients", static_cast<std::uint64_t>(meta_->client_count()));
  w.Field("resolves", cache_resolves);
  w.Field("hits", cache_hits);
  w.Field("hit_rate", cache_resolves == 0
                          ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(cache_resolves));
  w.Field("invalidations_applied",
          meta_->SumClientStat([](const meta::Client& c) {
            return c.stats().invalidations;
          }));
  w.Field("dropped_entries", meta_->SumClientStat([](const meta::Client& c) {
            return c.stats().dropped_entries;
          }));
  w.EndObject();
  w.EndObject();
  return Json(200, w.str());
}

proto::HttpResponse AdminHttp::Traces(const std::string& query) const {
  const auto params = ParseQuery(query);
  std::string tenant;
  if (const auto it = params.find("tenant"); it != params.end()) {
    tenant = it->second;
  }
  std::string name;  // substring match on the root span name
  if (const auto it = params.find("name"); it != params.end()) {
    name = it->second;
  }
  // view=slowest (default) serves the top-K retained traces; view=recent
  // serves the ring buffer of the latest finished traces, oldest first.
  std::string view = "slowest";
  if (const auto it = params.find("view"); it != params.end()) {
    view = it->second;
  }
  if (view != "slowest" && view != "recent") {
    return Json(400, "{\"error\":\"invalid view\"}");
  }
  std::uint64_t min_us = 0;
  if (const auto it = params.find("min_us"); it != params.end()) {
    const auto& v = it->second;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), min_us);
    if (ec != std::errc() || ptr != v.data() + v.size()) {
      return Json(400, "{\"error\":\"invalid min_us\"}");
    }
  }

  const obs::Tracer& tracer = hub_->tracer();
  std::vector<const obs::FinishedTrace*> selected;
  if (view == "recent") {
    for (const obs::FinishedTrace& t : tracer.recent()) selected.push_back(&t);
  } else {
    for (const obs::FinishedTrace& t : tracer.slowest()) {
      selected.push_back(&t);
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("started", tracer.started());
  w.Field("sampled", tracer.sampled());
  w.Field("finished", tracer.finished());
  w.Field("view", view);
  w.Key("traces").BeginArray();
  for (const obs::FinishedTrace* tp : selected) {
    const obs::FinishedTrace& t = *tp;
    if (!tenant.empty() && t.tenant != tenant) continue;
    if (!name.empty() && t.name.find(name) == std::string::npos) continue;
    if (t.duration() < min_us * 1000) continue;
    w.BeginObject();
    w.Field("id", t.id);
    w.Field("name", t.name);
    w.Field("tenant", t.tenant);
    w.Field("ok", t.ok);
    w.Field("start_ns", t.start);
    w.Field("duration_ns", t.duration());
    w.Key("breakdown_ns").BeginObject();
    for (int l = 0; l < obs::kLayerCount; ++l) {
      const auto layer = static_cast<obs::Layer>(l);
      w.Field(obs::LayerName(layer), t.breakdown.of(layer));
    }
    w.EndObject();
    w.Key("spans").BeginArray();
    for (const obs::Span& s : t.spans) {
      w.BeginObject();
      w.Field("id", s.id);
      w.Field("parent", s.parent);
      w.Field("layer", obs::LayerName(s.layer));
      w.Field("name", s.name);
      if (!s.note.empty()) w.Field("note", s.note);
      w.Field("start_ns", s.start);
      w.Field("end_ns", s.end);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Json(200, w.str());
}

}  // namespace nlss::mgmt
