#include "obs/trace.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

namespace nlss::obs {
namespace {

// Sentinel end-tick for a span that has not been closed yet; EndTrace
// clamps any still-open span to the trace end.
constexpr sim::Tick kOpen = std::numeric_limits<sim::Tick>::max();

}  // namespace

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kHost:
      return "host";
    case Layer::kProto:
      return "proto";
    case Layer::kController:
      return "controller";
    case Layer::kQos:
      return "qos";
    case Layer::kCache:
      return "cache";
    case Layer::kNet:
      return "net";
    case Layer::kRaid:
      return "raid";
    case Layer::kDisk:
      return "disk";
    case Layer::kGeo:
      return "geo";
    case Layer::kMeta:
      return "meta";
    case Layer::kTier:
      return "tier";
    case Layer::kOther:
      return "other";
  }
  return "?";
}

void Breakdown::Add(const Breakdown& other) {
  total += other.total;
  for (int i = 0; i < kLayerCount; ++i) self[i] += other.self[i];
}

Breakdown AnalyzeCriticalPath(const std::vector<Span>& spans) {
  Breakdown b;
  if (spans.empty()) return b;

  // Attribute every tick of the root interval to the deepest span covering
  // it (ties: the newest span).  Each span's effective interval is its own
  // clamped to its ancestors', so self times sum exactly to the root
  // duration even with concurrent (overlapping) children or sloppy child
  // bounds.
  std::unordered_map<SpanId, std::size_t> by_id;
  by_id.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].id, i);

  struct Eff {
    sim::Tick lo = 0, hi = 0;
    int depth = 0;
  };
  const Span& root = spans[0];
  std::vector<Eff> eff(spans.size());
  eff[0] = {root.start, root.end, 0};
  // Spans are appended in creation order, so a parent always precedes its
  // children and one forward pass resolves every effective interval.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const auto it = by_id.find(spans[i].parent);
    const Eff& p = it != by_id.end() ? eff[it->second] : eff[0];
    eff[i] = {std::max(spans[i].start, p.lo), std::min(spans[i].end, p.hi),
              p.depth + 1};
  }

  std::vector<sim::Tick> bounds;
  bounds.reserve(2 * spans.size());
  for (const Eff& e : eff) {
    if (e.hi <= e.lo) continue;
    bounds.push_back(e.lo);
    bounds.push_back(e.hi);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const sim::Tick lo = bounds[k];
    const sim::Tick hi = bounds[k + 1];
    if (lo < root.start || hi > root.end) continue;
    int best = -1;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (eff[i].lo <= lo && eff[i].hi >= hi && eff[i].hi > eff[i].lo &&
          (best < 0 || eff[i].depth >= eff[best].depth)) {
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) b.self[static_cast<int>(spans[best].layer)] += hi - lo;
  }
  b.total = root.duration();
  return b;
}

Tracer::Tracer(sim::Engine& engine, Config config)
    : engine_(engine), config_(config), rng_(config.seed) {}

TraceContext Tracer::StartTrace(Layer layer, std::string name,
                                std::string tenant) {
  ++started_;
  // Always draw, so the sampling decision for trace N depends only on the
  // seed and N — not on the rate used for earlier traces.
  const double draw = rng_.NextDouble();
  if (draw >= config_.sample_rate) return {};
  ++sampled_;

  const TraceId id = next_trace_++;
  Active& a = active_[id];
  a.trace.id = id;
  a.trace.name = name;
  a.trace.tenant = std::move(tenant);
  a.trace.start = engine_.now();
  Span root;
  root.id = a.next_span++;
  root.parent = 0;
  root.layer = layer;
  root.name = std::move(name);
  root.start = engine_.now();
  root.end = kOpen;
  a.trace.spans.push_back(std::move(root));
  return {this, id, 1};
}

TraceContext Tracer::StartSpan(const TraceContext& parent, Layer layer,
                               std::string name) {
  if (parent.tracer != this) return {};
  const auto it = active_.find(parent.trace);
  if (it == active_.end()) return {};  // trace already finished
  Active& a = it->second;
  Span s;
  const SpanId id = a.next_span++;
  s.id = id;
  s.parent = parent.span;
  s.layer = layer;
  s.name = std::move(name);
  s.start = engine_.now();
  s.end = kOpen;
  a.trace.spans.push_back(std::move(s));
  return {this, parent.trace, id};
}

Span* Tracer::FindSpan(const TraceContext& ctx) {
  if (ctx.tracer != this) return nullptr;
  const auto it = active_.find(ctx.trace);
  if (it == active_.end()) return nullptr;
  for (Span& s : it->second.trace.spans) {
    if (s.id == ctx.span) return &s;
  }
  return nullptr;
}

void Tracer::EndSpan(const TraceContext& ctx) {
  if (Span* s = FindSpan(ctx)) s->end = engine_.now();
}

void Tracer::Annotate(const TraceContext& ctx, const std::string& note) {
  if (Span* s = FindSpan(ctx)) {
    if (!s->note.empty()) s->note += ',';
    s->note += note;
  }
}

void Tracer::SetTenant(const TraceContext& ctx, const std::string& tenant) {
  if (ctx.tracer != this) return;
  const auto it = active_.find(ctx.trace);
  if (it != active_.end()) it->second.trace.tenant = tenant;
}

void Tracer::EndTrace(const TraceContext& root, bool ok) {
  if (root.tracer != this) return;
  const auto it = active_.find(root.trace);
  if (it == active_.end()) return;
  FinishedTrace trace = std::move(it->second.trace);
  active_.erase(it);

  trace.ok = ok;
  trace.end = engine_.now();
  if (!trace.spans.empty()) trace.spans[0].end = trace.end;
  // Spans left open (e.g. a fabric message dropped with no drop handler)
  // are clamped to the trace end so the analyzer sees a closed tree.
  for (Span& s : trace.spans) {
    if (s.end == kOpen) s.end = trace.end;
  }
  trace.breakdown = AnalyzeCriticalPath(trace.spans);
  aggregate_.Add(trace.breakdown);
  ++finished_;

  if (config_.keep_recent > 0) {
    recent_.push_back(trace);
    if (recent_.size() > config_.keep_recent) recent_.pop_front();
  }
  slowest_.push_back(std::move(trace));
  std::sort(slowest_.begin(), slowest_.end(),
            [](const FinishedTrace& x, const FinishedTrace& y) {
              if (x.duration() != y.duration())
                return x.duration() > y.duration();
              return x.id < y.id;
            });
  if (slowest_.size() > config_.keep_slowest) {
    slowest_.resize(config_.keep_slowest);
  }
}

std::string Tracer::Dump() const {
  std::ostringstream out;
  out << "tracer: started=" << started_ << " sampled=" << sampled_
      << " finished=" << finished_ << "\n";
  out << "aggregate: total=" << aggregate_.total;
  for (int i = 0; i < kLayerCount; ++i) {
    out << ' ' << LayerName(static_cast<Layer>(i)) << '='
        << aggregate_.self[i];
  }
  out << "\n";
  const auto dump_trace = [&out](const FinishedTrace& t) {
    out << "trace id=" << t.id << " name=" << t.name << " tenant=" << t.tenant
        << " ok=" << (t.ok ? 1 : 0) << " start=" << t.start
        << " end=" << t.end << " dur=" << t.duration() << "\n";
    for (const Span& s : t.spans) {
      out << "  span id=" << s.id << " parent=" << s.parent
          << " layer=" << LayerName(s.layer) << " name=" << s.name
          << " note=" << s.note << " start=" << s.start << " end=" << s.end
          << "\n";
    }
  };
  for (const FinishedTrace& t : slowest_) dump_trace(t);
  out << "recent:\n";
  for (const FinishedTrace& t : recent_) dump_trace(t);
  return out.str();
}

}  // namespace nlss::obs
