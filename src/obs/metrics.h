// Named metrics registry with Prometheus text exposition.
//
// Modules register counters, gauges, and histograms by name; mgmt's
// GET /metrics renders every entry in sorted order.  Callback gauges pull
// their value at render time, which lets existing per-module Stats structs
// feed the registry without duplicating bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/stats.h"

namespace nlss::obs {

class Counter {
 public:
  void Increment(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  /// Look up or create; the returned reference is stable for the
  /// registry's lifetime.  Re-registering an existing name returns the
  /// existing instrument (help text from the first registration wins).
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  util::Histogram& histogram(const std::string& name, const std::string& help);

  /// Gauge whose value is pulled from `fn` at render time.
  void AddCallback(const std::string& name, const std::string& help,
                   std::function<double()> fn);

  std::size_t size() const { return entries_.size(); }

  /// Prometheus text exposition: counters and gauges verbatim, histograms
  /// as summaries (p50/p99 quantiles + _count + _sum).  Deterministic:
  /// entries render in name order.
  std::string PrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<util::Histogram> histogram;
    std::function<double()> callback;
  };

  Entry& Ensure(const std::string& name, const std::string& help, Kind kind);

  std::map<std::string, Entry> entries_;  // sorted => deterministic render
};

}  // namespace nlss::obs
