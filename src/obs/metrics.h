// Named metrics registry with Prometheus text exposition.
//
// Modules register counters, gauges, and histograms by name; mgmt's
// GET /metrics renders every entry in sorted order.  Callback gauges pull
// their value at render time, which lets existing per-module Stats structs
// feed the registry without duplicating bookkeeping.
//
// Instruments may carry a label set (`nlss_qos_ops_total{tenant="lab-a"}`):
// the same family name can hold one flat series plus any number of
// labelled series, each an independent instrument.  Labels are sorted by
// key at registration so the rendered identity is canonical, and the whole
// family shares one HELP/TYPE header in the exposition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace nlss::obs {

/// Label set for one series, e.g. {{"tenant","lab-a"},{"path","0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  /// Look up or create; the returned reference is stable for the
  /// registry's lifetime.  Re-registering an existing (name, labels) pair
  /// returns the existing instrument (help from the first registration
  /// wins).  An empty label set is the flat series of the family.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  util::Histogram& histogram(const std::string& name, const std::string& help,
                             const Labels& labels = {});

  /// Gauge whose value is pulled from `fn` at render time.
  void AddCallback(const std::string& name, const std::string& help,
                   std::function<double()> fn, const Labels& labels = {});

  std::size_t size() const { return entries_.size(); }

  /// Prometheus text exposition: counters and gauges verbatim, histograms
  /// as summaries (p50/p99 quantiles + _count + _sum).  Deterministic:
  /// families render in name order, series in label order, and each family
  /// gets exactly one HELP/TYPE header.
  std::string PrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<util::Histogram> histogram;
    std::function<double()> callback;
  };
  /// Map key: (family name, canonical rendered label block).  The label
  /// block is "" for the flat series or `{k="v",...}` sorted by key, so
  /// series of one family are adjacent and deterministically ordered.
  using Key = std::pair<std::string, std::string>;

  Entry& Ensure(const std::string& name, const Labels& labels,
                const std::string& help, Kind kind);

  std::map<Key, Entry> entries_;  // sorted => deterministic render
};

}  // namespace nlss::obs
