// Span-based request tracing over the deterministic simulation clock.
//
// A TraceContext is a 3-word handle threaded through the request path:
// proto -> controller -> qos -> cache -> raid -> disk, and across fabric
// messages and WAN hops.  Every span is stamped from the DES clock
// (sim::Engine::now), so a trace is bit-reproducible from the workload
// seed.  Sampling is decided per trace from a dedicated seeded RNG stream,
// independent of the workload RNGs: changing the sample rate never
// perturbs simulated timing, and an unsampled context costs one branch at
// each instrumentation point.
//
// Finished traces are folded by the critical-path analyzer into a
// per-layer latency breakdown (queue wait vs service vs network vs disk)
// and the top-K slowest traces are retained for GET /traces.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace nlss::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Stack layer a span is attributed to by the critical-path analyzer.
enum class Layer : std::uint8_t {
  kHost,        // host initiator (path selection, hedges, retries, backoff)
  kProto,       // protocol export (block target / file server)
  kController,  // StorageSystem entry + blade logic
  kQos,         // admission queue wait
  kCache,       // coherent cache cluster
  kNet,         // fabric transfers (host links, backplane, WAN)
  kRaid,        // RAID group stripe operations
  kDisk,        // disk mechanics
  kGeo,         // cross-site replication hops
  kMeta,        // sharded metadata service (namespace ops, dentry cache)
  kTier,        // flash tier (spills, promotions, demotions, flash reads)
  kOther,
};
inline constexpr int kLayerCount = 12;
const char* LayerName(Layer layer);

class Tracer;

/// Lightweight handle identifying one span of one active trace.  A
/// default-constructed (or unsampled) context is inert: every operation on
/// it is a no-op, so instrumentation points pay a single branch.
struct TraceContext {
  Tracer* tracer = nullptr;
  TraceId trace = 0;
  SpanId span = 0;

  bool sampled() const { return tracer != nullptr; }
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = trace root
  Layer layer = Layer::kOther;
  std::string name;
  std::string note;  // annotation, e.g. "local_hit" / "miss" / "forward"
  sim::Tick start = 0;
  sim::Tick end = 0;

  sim::Tick duration() const { return end > start ? end - start : 0; }
};

/// Per-layer exclusive-time decomposition of one trace (or an aggregate
/// over many).  Each simulated nanosecond of the root span is attributed
/// to exactly one layer: the deepest span covering it (children clamp to
/// their parent, so the per-layer self times sum to the end-to-end
/// latency).
struct Breakdown {
  sim::Tick total = 0;  // root span duration (summed when aggregated)
  std::array<sim::Tick, kLayerCount> self{};

  sim::Tick of(Layer l) const { return self[static_cast<int>(l)]; }
  sim::Tick queue_wait() const { return of(Layer::kQos); }
  sim::Tick network() const { return of(Layer::kNet); }
  sim::Tick disk() const { return of(Layer::kDisk); }
  /// Everything that is not queueing, network, or disk mechanics.
  sim::Tick service() const {
    return of(Layer::kHost) + of(Layer::kProto) + of(Layer::kController) +
           of(Layer::kCache) + of(Layer::kRaid) + of(Layer::kGeo) +
           of(Layer::kMeta) + of(Layer::kTier) + of(Layer::kOther);
  }
  sim::Tick SelfSum() const {
    sim::Tick s = 0;
    for (const sim::Tick v : self) s += v;
    return s;
  }
  void Add(const Breakdown& other);
};

struct FinishedTrace {
  TraceId id = 0;
  std::string name;    // root span name
  std::string tenant;  // set by whichever layer resolves it
  bool ok = true;
  sim::Tick start = 0;
  sim::Tick end = 0;
  std::vector<Span> spans;  // creation order; spans[0] is the root
  Breakdown breakdown;

  sim::Tick duration() const { return end > start ? end - start : 0; }
};

/// Critical-path analysis: fold a span tree into a per-layer breakdown.
/// Exposed for tests; Tracer runs it automatically on EndTrace.
Breakdown AnalyzeCriticalPath(const std::vector<Span>& spans);

class Tracer {
 public:
  struct Config {
    /// Fraction of traces sampled in [0,1].  The decision stream is
    /// deterministic in `seed` and the number of StartTrace calls.
    double sample_rate = 1.0;
    std::uint64_t seed = 0x0b5e7ace;
    /// Top-K slowest finished traces retained for export.
    std::size_t keep_slowest = 16;
    /// Ring buffer of the most recent finished traces (workload-mix
    /// debugging: the slowest-K view hides the common case).
    std::size_t keep_recent = 32;
  };

  explicit Tracer(sim::Engine& engine) : Tracer(engine, Config()) {}
  Tracer(sim::Engine& engine, Config config);

  /// Begin a trace; returns an inert context when the sampler says no.
  TraceContext StartTrace(Layer layer, std::string name,
                          std::string tenant = "");
  /// Begin a child span; inert in, inert out.
  TraceContext StartSpan(const TraceContext& parent, Layer layer,
                         std::string name);
  /// Stamp the span's end from the DES clock.
  void EndSpan(const TraceContext& ctx);
  /// Attach a note to the span ("local_hit", "miss", "forward", ...).
  void Annotate(const TraceContext& ctx, const std::string& note);
  /// Record the trace's tenant (any layer that can resolve it may call).
  void SetTenant(const TraceContext& ctx, const std::string& tenant);
  /// Finish the trace rooted at `root`: closes dangling spans, runs the
  /// critical-path analyzer, and retains it if among the slowest K.
  void EndTrace(const TraceContext& root, bool ok);

  // --- Introspection ------------------------------------------------------
  std::uint64_t started() const { return started_; }
  std::uint64_t sampled() const { return sampled_; }
  std::uint64_t finished() const { return finished_; }
  std::size_t active() const { return active_.size(); }
  /// Sum of breakdowns over every finished trace (mean = aggregate/finished).
  const Breakdown& aggregate() const { return aggregate_; }
  /// Slowest finished traces, duration-descending (ties: lower id first).
  const std::vector<FinishedTrace>& slowest() const { return slowest_; }
  /// Most recent finished traces, oldest first (ring of keep_recent).
  const std::deque<FinishedTrace>& recent() const { return recent_; }
  const Config& config() const { return config_; }

  /// Deterministic text dump of the retained traces (digest input for the
  /// determinism regression test; also human-readable).
  std::string Dump() const;

 private:
  struct Active {
    FinishedTrace trace;
    SpanId next_span = 1;
  };

  Span* FindSpan(const TraceContext& ctx);

  sim::Engine& engine_;
  Config config_;
  util::Rng rng_;
  std::unordered_map<TraceId, Active> active_;
  std::vector<FinishedTrace> slowest_;
  std::deque<FinishedTrace> recent_;
  Breakdown aggregate_;
  std::uint64_t started_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t finished_ = 0;
  TraceId next_trace_ = 1;
};

// --- Inert-safe helpers (the instrumentation-point API) ----------------------

inline TraceContext StartSpan(const TraceContext& parent, Layer layer,
                              const char* name) {
  if (parent.tracer == nullptr) return {};
  return parent.tracer->StartSpan(parent, layer, name);
}

inline void EndSpan(const TraceContext& ctx) {
  if (ctx.tracer != nullptr) ctx.tracer->EndSpan(ctx);
}

inline void Annotate(const TraceContext& ctx, const char* note) {
  if (ctx.tracer != nullptr) ctx.tracer->Annotate(ctx, note);
}

}  // namespace nlss::obs
