// Observability hub: one Tracer + one Registry, attached to the system
// wherever instrumentation is wanted.  Modules take an `obs::Hub*` (null =
// observability off) so the subsystem stays optional and zero-cost when
// absent.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "check/invariant.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"

namespace nlss::obs {

class Hub {
 public:
  explicit Hub(sim::Engine& engine, Tracer::Config trace_config = {})
      : tracer_(engine, trace_config) {
    metrics_.AddCallback(
        "nlss_traces_started_total", "Traces considered by the sampler",
        [this] { return static_cast<double>(tracer_.started()); });
    metrics_.AddCallback(
        "nlss_traces_sampled_total", "Traces the sampler admitted",
        [this] { return static_cast<double>(tracer_.sampled()); });
    metrics_.AddCallback(
        "nlss_traces_finished_total", "Traces finished and analyzed",
        [this] { return static_cast<double>(tracer_.finished()); });
    // Invariant-check accounting (src/check).  The check Registry is
    // process-global and only grows, so export deltas against a baseline
    // snapshotted here: two same-seed runs in one process then report
    // identical values and the digest stays stable.
    for (int i = 0; i < check::kSubsystemCount; ++i) {
      const auto s = static_cast<check::Subsystem>(i);
      check_eval_base_[i] = check::Registry::Instance().evaluations(s);
      check_viol_base_[i] = check::Registry::Instance().violations(s);
      const Labels labels = {{"subsystem", check::SubsystemName(s)}};
      metrics_.AddCallback(
          "nlss_check_evaluations_total",
          "NLSS_INVARIANT evaluations since hub creation",
          [this, s, i] {
            return static_cast<double>(
                check::Registry::Instance().evaluations(s) -
                check_eval_base_[i]);
          },
          labels);
      metrics_.AddCallback(
          "nlss_check_violations_total",
          "NLSS_INVARIANT violations since hub creation",
          [this, s, i] {
            return static_cast<double>(
                check::Registry::Instance().violations(s) -
                check_viol_base_[i]);
          },
          labels);
    }
  }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }

  /// CRC32C over the full trace dump + metrics exposition.  Two runs of the
  /// same seeded workload must produce the same digest — the determinism
  /// regression tests compare exactly this.
  std::uint32_t Digest() const {
    const std::string text = tracer_.Dump() + metrics_.PrometheusText();
    return util::Crc32c(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

 private:
  Tracer tracer_;
  Registry metrics_;
  std::uint64_t check_eval_base_[check::kSubsystemCount] = {};
  std::uint64_t check_viol_base_[check::kSubsystemCount] = {};
};

}  // namespace nlss::obs
