#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace nlss::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

Registry::Entry& Registry::Ensure(const std::string& name,
                                  const std::string& help, Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<util::Histogram>();
        break;
      case Kind::kCallback:
        break;
    }
  }
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  Entry& e = Ensure(name, help, Kind::kCounter);
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  Entry& e = Ensure(name, help, Kind::kGauge);
  return *e.gauge;
}

util::Histogram& Registry::histogram(const std::string& name,
                                     const std::string& help) {
  Entry& e = Ensure(name, help, Kind::kHistogram);
  return *e.histogram;
}

void Registry::AddCallback(const std::string& name, const std::string& help,
                           std::function<double()> fn) {
  Entry& e = Ensure(name, help, Kind::kCallback);
  e.callback = std::move(fn);
}

std::string Registry::PrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, e] : entries_) {
    out << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << ' ' << FormatDouble(e.gauge->value()) << '\n';
        break;
      case Kind::kCallback:
        out << "# TYPE " << name << " gauge\n";
        out << name << ' '
            << FormatDouble(e.callback ? e.callback() : 0.0) << '\n';
        break;
      case Kind::kHistogram: {
        const util::Histogram& h = *e.histogram;
        out << "# TYPE " << name << " summary\n";
        out << name << "{quantile=\"0.5\"} " << h.Percentile(0.5) << '\n';
        out << name << "{quantile=\"0.99\"} " << h.Percentile(0.99) << '\n';
        out << name << "_sum "
            << FormatDouble(h.Mean() * static_cast<double>(h.count())) << '\n';
        out << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace nlss::obs
