#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nlss::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Canonical label block: keys sorted, `{k="v",k2="v2"}`; "" when empty.
std::string RenderLabels(Labels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

/// Sample line name: base + labels with `extra` (e.g. quantile="0.5")
/// merged into the label block.
std::string SampleName(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  if (extra.empty()) return base + labels;
  if (labels.empty()) return base + '{' + extra + '}';
  // Insert before the closing brace.
  return base + labels.substr(0, labels.size() - 1) + ',' + extra + '}';
}

}  // namespace

Registry::Entry& Registry::Ensure(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help, Kind kind) {
  auto [it, inserted] = entries_.try_emplace(Key{name, RenderLabels(labels)});
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<util::Histogram>();
        break;
      case Kind::kCallback:
        break;
    }
  }
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  Entry& e = Ensure(name, labels, help, Kind::kCounter);
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  Entry& e = Ensure(name, labels, help, Kind::kGauge);
  return *e.gauge;
}

util::Histogram& Registry::histogram(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  Entry& e = Ensure(name, labels, help, Kind::kHistogram);
  return *e.histogram;
}

void Registry::AddCallback(const std::string& name, const std::string& help,
                           std::function<double()> fn, const Labels& labels) {
  Entry& e = Ensure(name, labels, help, Kind::kCallback);
  e.callback = std::move(fn);
}

std::string Registry::PrometheusText() const {
  std::ostringstream out;
  const std::string* prev_family = nullptr;
  for (const auto& [key, e] : entries_) {
    const auto& [name, labels] = key;
    if (prev_family == nullptr || *prev_family != name) {
      out << "# HELP " << name << ' ' << e.help << '\n';
      const char* type = e.kind == Kind::kCounter     ? "counter"
                         : e.kind == Kind::kHistogram ? "summary"
                                                      : "gauge";
      out << "# TYPE " << name << ' ' << type << '\n';
      prev_family = &name;
    }
    switch (e.kind) {
      case Kind::kCounter:
        out << SampleName(name, labels) << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << SampleName(name, labels) << ' '
            << FormatDouble(e.gauge->value()) << '\n';
        break;
      case Kind::kCallback:
        out << SampleName(name, labels) << ' '
            << FormatDouble(e.callback ? e.callback() : 0.0) << '\n';
        break;
      case Kind::kHistogram: {
        const util::Histogram& h = *e.histogram;
        out << SampleName(name, labels, "quantile=\"0.5\"") << ' '
            << h.Percentile(0.5) << '\n';
        out << SampleName(name, labels, "quantile=\"0.99\"") << ' '
            << h.Percentile(0.99) << '\n';
        out << SampleName(name + "_sum", labels) << ' '
            << FormatDouble(h.Mean() * static_cast<double>(h.count())) << '\n';
        out << SampleName(name + "_count", labels) << ' ' << h.count() << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace nlss::obs
