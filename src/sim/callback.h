// Small-buffer-optimized event callback for the DES kernel.
//
// Every timed action in the system is a `void()` closure pushed through the
// engine; with std::function the common capture sizes (two or three ids plus
// a pointer or a wrapped continuation — up to ~48 bytes across the sim, net,
// cache, and raid call sites) exceed libstdc++'s 16-byte inline buffer and
// heap-allocate on every Schedule.  sim::Callback is a move-only `void()`
// type with 48 bytes of inline storage, so those captures never touch the
// heap; larger closures fall back to a single heap cell, which is still no
// worse than std::function.
//
// Intentional differences from std::function<void()>:
//   - move-only (events are scheduled exactly once; copyability is what
//     forces std::function to heap-allocate non-copyable-unfriendly captures)
//   - wrapping an *empty* std::function or a null function pointer yields an
//     empty Callback, so `if (cb)` tests keep their meaning across the
//     conversion boundary
//   - invoking an empty Callback is undefined (the engine never does).
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace nlss::sim {

namespace detail {
template <typename T>
struct IsStdFunction : std::false_type {};
template <typename Sig>
struct IsStdFunction<std::function<Sig>> : std::true_type {};
}  // namespace detail

class Callback {
 public:
  /// Largest capture stored inline (no heap).  Measured over the hot
  /// schedulers: cache flush/waiter wakeups, net transit hops, raid stripe
  /// completions all fit.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, Callback> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    // An empty std::function or null function pointer converts to an empty
    // Callback, not a callable that throws/crashes when invoked.
    if constexpr (detail::IsStdFunction<Fn>::value) {
      if (!f) return;
    } else if constexpr (std::is_pointer_v<Fn> || std::is_member_pointer_v<Fn>) {
      if (f == nullptr) return;
    }
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { MoveFrom(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  Callback& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() const { ops_->invoke(const_cast<unsigned char*>(buf_)); }

  /// True when the wrapped callable lives in the inline buffer (empty
  /// callbacks count as inline).  Exposed for tests and allocation audits.
  bool is_inline() const noexcept { return ops_ == nullptr || ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*relocate)(unsigned char* from, unsigned char* to);  // destructive
    void (*destroy)(unsigned char*);
    bool inline_storage;
  };

  template <typename Fn>
  static Fn* Inline(unsigned char* b) {
    return std::launder(reinterpret_cast<Fn*>(b));
  }
  template <typename Fn>
  static Fn*& HeapPtr(unsigned char* b) {
    return *std::launder(reinterpret_cast<Fn**>(b));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* b) { (*Inline<Fn>(b))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn(std::move(*Inline<Fn>(from)));
        Inline<Fn>(from)->~Fn();
      },
      [](unsigned char* b) { Inline<Fn>(b)->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* b) { (*HeapPtr<Fn>(b))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn*(HeapPtr<Fn>(from));
      },
      [](unsigned char* b) { delete HeapPtr<Fn>(b); },
      /*inline_storage=*/false,
  };

  void MoveFrom(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // Pointer-aligned, not max_align_t: closure captures are ids, pointers,
  // and nested Callbacks, and 8-byte alignment keeps sizeof(Callback) at 56
  // so Event can fit it plus a link in one cache line.  An over-aligned
  // capture (none exist today) would fall back to the heap cell.
  alignas(void*) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};
static_assert(sizeof(Callback) == 56, "one cache line minus a link pointer");

}  // namespace nlss::sim
