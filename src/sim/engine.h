// Deterministic discrete-event simulation kernel.
//
// Everything timed in the storage system — link transfers, disk mechanics,
// controller compute, WAN latency — runs as events on one Engine.  Events at
// the same tick execute in scheduling order (FIFO), which makes every run
// bit-reproducible from the workload seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace nlss::sim {

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  Tick now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void Schedule(Tick delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at an absolute tick (must be >= now).
  void ScheduleAt(Tick when, Callback cb);

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= t, then set now to t.
  /// Returns the number of events executed.
  std::size_t RunUntil(Tick t);

  /// Convenience: RunUntil(now + d).
  std::size_t RunFor(Tick d) { return RunUntil(now_ + d); }

  /// Execute at most `max_events` events; returns how many ran.
  std::size_t Step(std::size_t max_events = 1);

  /// Ask Run()/RunUntil() to return after the current event.
  void Stop() { stopped_ = true; }

  bool Empty() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Item {
    Tick when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-tick events
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void Execute(Item& item);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace nlss::sim
