// Deterministic discrete-event simulation kernel.
//
// Everything timed in the storage system — link transfers, disk mechanics,
// controller compute, WAN latency — runs as events on one Engine.  Events at
// the same tick execute in scheduling order (FIFO), which makes every run
// bit-reproducible from the workload seed.
//
// Hot path (the kernel rewrite): events live in a slab-allocated arena
// (sim/event_pool.h) and are ordered by a two-tier ladder/calendar queue
// (sim/ladder_queue.h) instead of a binary heap, with callbacks held in a
// 48-byte small-buffer Callback (sim/callback.h) so common captures never
// heap-allocate.  None of this changes observable semantics: the queue
// preserves the exact (when, pri, seq) total order, so digests are
// bit-identical to the heap kernel under FIFO and any perturbation seed.
//
// Two determinism-checking hooks (ISSUE 9):
//
//   Schedule perturbation.  FIFO order among same-tick events is an
//   arbitrary tie-break; correct code must not depend on it (same-tick
//   events from different causal chains must commute).  With a nonzero
//   perturbation seed (SetPerturbation / the NLSS_PERTURB env var) the
//   tie-break becomes a seeded permutation of the FIFO order: each event's
//   sequence number is passed through a splitmix64 keyed by the seed, so
//   two runs with the same seed are still bit-identical, while two runs
//   with different seeds execute same-tick events in different orders.
//   A digest that changes across perturbation seeds is a determinism bug.
//   Causal order is preserved by construction: a child event is inserted
//   only while its parent executes, so it can never run before the parent.
//
//   Race detection.  When compiled with invariants (Debug, or
//   -DNLSS_INVARIANTS=ON) the engine threads per-event causal ids
//   (parent event -> scheduled child) into an attached check::RaceDetector,
//   which flags same-tick accesses to the same state key from causally
//   unrelated events (see src/check/race.h).  Attach explicitly with
//   AttachRaceDetector, or export NLSS_RACE=1 to have every engine carry
//   its own detector.  Compiles out entirely under NDEBUG.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/invariant.h"
#include "sim/callback.h"
#include "sim/event_pool.h"
#include "sim/ladder_queue.h"

namespace nlss::check {
class RaceDetector;
}  // namespace nlss::check

namespace nlss::sim {

class Engine {
 public:
  using Callback = ::nlss::sim::Callback;

  /// Reads NLSS_PERTURB (same-tick permutation seed, 0/unset = FIFO) and —
  /// with invariants compiled in — NLSS_RACE (attach an owned detector).
  Engine();
  ~Engine();

  Tick now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void Schedule(Tick delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at an absolute tick (must be >= now).
  void ScheduleAt(Tick when, Callback cb) { queue_.Push(MakeEvent(when, std::move(cb))); }

  /// Batched insertion for high-fan-out producers (fabric fan-outs, flush
  /// waiter wakeups, demote pipelines).  Each Add assigns the event's FIFO
  /// sequence number immediately — so a Batch is observably identical to
  /// the equivalent loop of Schedule calls — but queue insertion is
  /// deferred to Commit (or the destructor), which pushes the whole group
  /// in one pass.
  class Batch {
   public:
    explicit Batch(Engine& engine) : engine_(engine) {}
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;
    ~Batch() { Commit(); }

    void Add(Tick delay, Callback cb) {
      AddAt(engine_.now_ + delay, std::move(cb));
    }
    void AddAt(Tick when, Callback cb) {
      staged_.push_back(engine_.MakeEvent(when, std::move(cb)));
    }
    void Commit() {
      for (Event* e : staged_) engine_.queue_.Push(e);
      staged_.clear();
    }
    std::size_t staged() const { return staged_.size(); }

   private:
    Engine& engine_;
    std::vector<Event*> staged_;
  };

  /// Schedule every element of `cbs` (anything convertible to Callback)
  /// `delay` ns from now, preserving container order.  The container's
  /// callbacks are consumed.
  template <typename Container>
  void ScheduleBatch(Tick delay, Container&& cbs) {
    Batch batch(*this);
    for (auto& cb : cbs) batch.Add(delay, std::move(cb));
  }

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= t, then set now to t.
  /// Returns the number of events executed.
  std::size_t RunUntil(Tick t);

  /// Convenience: RunUntil(now + d).
  std::size_t RunFor(Tick d) { return RunUntil(now_ + d); }

  /// Execute at most `max_events` events; returns how many ran.  Like
  /// Run/RunUntil, clears any prior Stop() on entry and returns early if a
  /// callback calls Stop().
  std::size_t Step(std::size_t max_events = 1);

  /// Ask Run()/RunUntil()/Step() to return after the current event.
  void Stop() { stopped_ = true; }

  bool Empty() const { return queue_.Empty(); }
  std::size_t PendingEvents() const { return queue_.Size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Event arena occupancy, for tests and allocation audits: slab count
  /// never shrinks, so a drain/refill cycle that reuses nodes keeps `slabs`
  /// flat while `free_events` returns to capacity - pending.
  struct ArenaStats {
    std::size_t slabs;
    std::size_t capacity;
    std::size_t free_events;
  };
  ArenaStats arena_stats() const {
    return {pool_.slabs(), pool_.capacity(), pool_.free_events()};
  }

  /// Same-tick schedule perturbation: 0 restores FIFO, any other value
  /// permutes the same-tick tie-break with that seed.  Applies to events
  /// scheduled after the call; existing queue entries keep their keys.
  void SetPerturbation(std::uint64_t seed) { perturb_seed_ = seed; }
  std::uint64_t perturbation() const { return perturb_seed_; }

  /// Attach a race detector (not owned).  Null reverts to the NLSS_RACE
  /// env-attached detector when one exists, else detaches.  No-op (and
  /// never fires) when invariants are compiled out.
  void AttachRaceDetector(check::RaceDetector* d);
  check::RaceDetector* race_detector() const { return race_; }

 private:
  Event* MakeEvent(Tick when, Callback cb);
  // `when` is the queue's copy of the event's timestamp (LadderQueue::Ref),
  // passed in so dispatch never reads the event's second cache line.
  void Execute(Event* e, Tick when);

  EventPool pool_;
  LadderQueue queue_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::uint64_t perturb_seed_ = 0;
  check::RaceDetector* race_ = nullptr;
  std::unique_ptr<check::RaceDetector> owned_race_;
#if NLSS_INVARIANTS_ENABLED
  std::uint64_t current_event_ = 0;  // causal id of the executing event
#endif
};

}  // namespace nlss::sim
