// Deterministic discrete-event simulation kernel.
//
// Everything timed in the storage system — link transfers, disk mechanics,
// controller compute, WAN latency — runs as events on one Engine.  Events at
// the same tick execute in scheduling order (FIFO), which makes every run
// bit-reproducible from the workload seed.
//
// Two determinism-checking hooks (ISSUE 9):
//
//   Schedule perturbation.  FIFO order among same-tick events is an
//   arbitrary tie-break; correct code must not depend on it (same-tick
//   events from different causal chains must commute).  With a nonzero
//   perturbation seed (SetPerturbation / the NLSS_PERTURB env var) the
//   tie-break becomes a seeded permutation of the FIFO order: each event's
//   sequence number is passed through a splitmix64 keyed by the seed, so
//   two runs with the same seed are still bit-identical, while two runs
//   with different seeds execute same-tick events in different orders.
//   A digest that changes across perturbation seeds is a determinism bug.
//   Causal order is preserved by construction: a child event is inserted
//   only while its parent executes, so it can never run before the parent.
//
//   Race detection.  When compiled with invariants (Debug, or
//   -DNLSS_INVARIANTS=ON) the engine threads per-event causal ids
//   (parent event -> scheduled child) into an attached check::RaceDetector,
//   which flags same-tick accesses to the same state key from causally
//   unrelated events (see src/check/race.h).  Attach explicitly with
//   AttachRaceDetector, or export NLSS_RACE=1 to have every engine carry
//   its own detector.  Compiles out entirely under NDEBUG.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "check/invariant.h"

namespace nlss::check {
class RaceDetector;
}  // namespace nlss::check

namespace nlss::sim {

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Reads NLSS_PERTURB (same-tick permutation seed, 0/unset = FIFO) and —
  /// with invariants compiled in — NLSS_RACE (attach an owned detector).
  Engine();
  ~Engine();

  Tick now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  void Schedule(Tick delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at an absolute tick (must be >= now).
  void ScheduleAt(Tick when, Callback cb);

  /// Run until the event queue drains (or Stop() is called).
  void Run();

  /// Run events with timestamp <= t, then set now to t.
  /// Returns the number of events executed.
  std::size_t RunUntil(Tick t);

  /// Convenience: RunUntil(now + d).
  std::size_t RunFor(Tick d) { return RunUntil(now_ + d); }

  /// Execute at most `max_events` events; returns how many ran.
  std::size_t Step(std::size_t max_events = 1);

  /// Ask Run()/RunUntil() to return after the current event.
  void Stop() { stopped_ = true; }

  bool Empty() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Same-tick schedule perturbation: 0 restores FIFO, any other value
  /// permutes the same-tick tie-break with that seed.  Applies to events
  /// scheduled after the call; existing queue entries keep their keys.
  void SetPerturbation(std::uint64_t seed) { perturb_seed_ = seed; }
  std::uint64_t perturbation() const { return perturb_seed_; }

  /// Attach a race detector (not owned).  Null reverts to the NLSS_RACE
  /// env-attached detector when one exists, else detaches.  No-op (and
  /// never fires) when invariants are compiled out.
  void AttachRaceDetector(check::RaceDetector* d);
  check::RaceDetector* race_detector() const { return race_; }

 private:
  struct Item {
    Tick when;
    std::uint64_t seq;  // FIFO tie-breaker and stable id of insertion order
    std::uint64_t pri;  // same-tick order key: seq, or its seeded mix
    Callback cb;
#if NLSS_INVARIANTS_ENABLED
    std::uint64_t id = 0;      // causal id (1-based; 0 = external context)
    std::uint64_t parent = 0;  // causal id of the scheduling event
#endif
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.pri != b.pri) return a.pri > b.pri;
      return a.seq > b.seq;
    }
  };

  void Execute(Item& item);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::uint64_t perturb_seed_ = 0;
  check::RaceDetector* race_ = nullptr;
  std::unique_ptr<check::RaceDetector> owned_race_;
#if NLSS_INVARIANTS_ENABLED
  std::uint64_t current_event_ = 0;  // causal id of the executing event
#endif
};

}  // namespace nlss::sim
