// A FIFO-served resource with a service-time horizon: models controller CPU,
// XOR/encryption engines, and any other serially-shared capacity.  Callers
// ask "when would work of this size finish if enqueued now?" and schedule
// their completion events at the returned tick.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/engine.h"

namespace nlss::sim {

class Resource {
 public:
  explicit Resource(Engine& engine) : engine_(engine) {}

  /// Enqueue `service_ns` of work; returns the simulated completion tick.
  Tick Acquire(Tick service_ns) {
    const Tick start = std::max(engine_.now(), busy_until_);
    busy_until_ = start + service_ns;
    busy_total_ += service_ns;
    return busy_until_;
  }

  /// Convenience: work proportional to bytes at a ns-per-byte rate.
  Tick AcquireBytes(std::uint64_t bytes, double ns_per_byte) {
    return Acquire(static_cast<Tick>(
        std::llround(static_cast<double>(bytes) * ns_per_byte)));
  }

  /// Fraction of [0, now] this resource spent busy.  Acquire accrues the
  /// whole service time up front, so the backlog past `now` — service the
  /// clock has not reached yet — must be excluded here; otherwise a deep
  /// queue reports >100% (which a min-clamp would then silently hide).
  double Utilization() const {
    const Tick now = engine_.now();
    if (now == 0) return 0.0;
    const Tick unserved = busy_until_ > now ? busy_until_ - now : 0;
    return static_cast<double>(busy_total_ - unserved) /
           static_cast<double>(now);
  }

  Tick busy_total() const { return busy_total_; }
  Tick busy_until() const { return busy_until_; }

  /// Drop queued work (used when a component fails).  The unserved span
  /// [now, busy_until) was accrued at Acquire but will never be served, so
  /// it is rolled back — otherwise Utilization overreports after a failure.
  void Reset() {
    const Tick now = engine_.now();
    if (busy_until_ > now) busy_total_ -= busy_until_ - now;
    busy_until_ = now;
  }

 private:
  Engine& engine_;
  Tick busy_until_ = 0;
  Tick busy_total_ = 0;
};

}  // namespace nlss::sim
