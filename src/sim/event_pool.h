// Slab-allocated event arena for the DES kernel.
//
// Events are the highest-churn objects in the whole simulator — every
// message hop, block touch, and timer is one — so they are never allocated
// individually.  The pool carves fixed-size slabs and threads spare nodes on
// an intrusive LIFO free list (the `cluster_cache` free-list pattern): a
// drain/refill cycle reuses the same cache-hot nodes instead of hitting the
// allocator, and steady-state scheduling allocates nothing at all.
//
// Nodes stay constructed for the pool's whole lifetime; Alloc/Free only
// assign fields.  Free() clears the callback so captured state (continuation
// chains, shared join counters, payload buffers) is released as soon as the
// event has run, not when the slab dies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "check/invariant.h"
#include "sim/callback.h"

namespace nlss::sim {

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

/// One scheduled event, cache-line aligned with the dispatch-hot fields
/// first: `cb` (56 bytes) plus the free-list link `next` fill the first 64
/// bytes exactly, so Execute/Free touch one line — the one PopMin's
/// prefetch warmed.  The ordering keys live in the second line; the queue
/// carries its own copy of them (LadderQueue::Ref) and never reads back,
/// so after MakeEvent they are only looked at by tests and invariants.
struct alignas(64) Event {
  Callback cb;
  Event* next = nullptr;  // intrusive free-list link while unallocated
  Tick when = 0;
  std::uint64_t seq = 0;  // FIFO tie-breaker and stable id of insertion order
  std::uint64_t pri = 0;  // same-tick order key: seq, or its seeded mix
#if NLSS_INVARIANTS_ENABLED
  std::uint64_t id = 0;      // causal id (1-based; 0 = external context)
  std::uint64_t parent = 0;  // causal id of the scheduling event
#endif
};
static_assert(alignof(Event) == 64 && sizeof(Event) == 128,
              "dispatch-hot fields must fill the first cache line");

/// Process-wide parking lot for retired slabs.  Engines are built and torn
/// down in loops (per-scenario tests, benchmark iterations); handing each
/// pool's slabs back to the allocator lets glibc trim the heap top, and the
/// next engine then soft-faults the whole arena back in page by page — that
/// round trip costs more than the events themselves.  Retired slabs are
/// parked here (callbacks cleared, nodes still constructed) and handed to
/// the next pool that grows, capped so a one-off giant run cannot pin
/// memory forever.
class SlabCache {
 public:
  static constexpr std::size_t kMaxSlabs = 256;  // 256 * 128 KiB = 32 MiB

  static std::unique_ptr<Event[]> Get() {
    SlabCache& c = Instance();
    std::lock_guard<std::mutex> lock(c.mu_);
    if (c.slabs_.empty()) return nullptr;
    std::unique_ptr<Event[]> s = std::move(c.slabs_.back());
    c.slabs_.pop_back();
    return s;
  }

  static void Put(std::unique_ptr<Event[]> slab, std::size_t events) {
    // Release captured state (continuations, buffers) now — a parked slab
    // must not keep the dead engine's world alive until reuse.
    for (std::size_t i = 0; i < events; ++i) slab[i].cb = nullptr;
    SlabCache& c = Instance();
    std::lock_guard<std::mutex> lock(c.mu_);
    if (c.slabs_.size() >= kMaxSlabs) return;  // cache full: let it free
    c.slabs_.push_back(std::move(slab));
  }

 private:
  static SlabCache& Instance() {
    static SlabCache c;
    return c;
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<Event[]>> slabs_;
};

class EventPool {
 public:
  static constexpr std::size_t kSlabEvents = 1024;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  ~EventPool() {
    for (auto& s : slabs_) SlabCache::Put(std::move(s), kSlabEvents);
  }

  Event* Alloc() {
    if (free_ == nullptr) Grow();
    Event* e = free_;
    free_ = e->next;
    --free_count_;
    return e;
  }

  void Free(Event* e) {
    e->cb = nullptr;  // release captured state now, not at slab teardown
    e->next = free_;
    free_ = e;
    ++free_count_;
  }

  std::size_t slabs() const { return slabs_.size(); }
  std::size_t capacity() const { return slabs_.size() * kSlabEvents; }
  std::size_t free_events() const { return free_count_; }

 private:
  void Grow() {
    std::unique_ptr<Event[]> s = SlabCache::Get();
    if (s == nullptr) s = std::make_unique<Event[]>(kSlabEvents);
    slabs_.push_back(std::move(s));
    Event* slab = slabs_.back().get();
    // Push in reverse so allocation walks the slab front-to-back.
    for (std::size_t i = kSlabEvents; i-- > 0;) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    free_count_ += kSlabEvents;
  }

  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* free_ = nullptr;
  std::size_t free_count_ = 0;
};

}  // namespace nlss::sim
