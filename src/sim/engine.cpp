#include "sim/engine.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "check/race.h"

namespace nlss::sim {
namespace {

/// splitmix64 finalizer: a bijection of seq for any fixed seed, so same-tick
/// priorities stay distinct and a given seed yields one fixed permutation.
std::uint64_t PerturbKey(std::uint64_t seed, std::uint64_t seq) {
  std::uint64_t x = seq + seed * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Unset/empty -> 0; anything that is not a full unsigned decimal aborts.
/// NLSS_PERTURB=oops silently meaning "plain FIFO" would let CI believe it
/// is perturbation-testing while it is not.
std::uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "nlss: %s=\"%s\" is not an unsigned integer\n", name,
                 v);
    std::abort();
  }
  return x;
}

}  // namespace

Engine::Engine() {
  perturb_seed_ = EnvU64("NLSS_PERTURB");
#if NLSS_INVARIANTS_ENABLED
  if (EnvU64("NLSS_RACE") != 0) {
    owned_race_ = std::make_unique<check::RaceDetector>();
    race_ = owned_race_.get();
  }
#else
  // Parse (and so validate) the knob even when the detector compiles out.
  (void)EnvU64("NLSS_RACE");
#endif
}

Engine::~Engine() = default;

void Engine::AttachRaceDetector(check::RaceDetector* d) {
#if NLSS_INVARIANTS_ENABLED
  race_ = d != nullptr ? d : owned_race_.get();
#else
  (void)d;
#endif
}

Event* Engine::MakeEvent(Tick when, Callback cb) {
  NLSS_INVARIANT(kSim, when >= now_,
                 "scheduling into the past: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
  Event* e = pool_.Alloc();
  const std::uint64_t seq = next_seq_++;
  e->when = when;
  e->seq = seq;
  e->pri = perturb_seed_ != 0 ? PerturbKey(perturb_seed_, seq) : seq;
  e->cb = std::move(cb);
#if NLSS_INVARIANTS_ENABLED
  e->id = seq + 1;  // 1-based: 0 is the external (non-event) context
  e->parent = current_event_;
#endif
  return e;
}

void Engine::Execute(Event* e, Tick when) {
  NLSS_INVARIANT(kSim, when >= now_ && when == e->when,
                 "event pop went backwards: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
  now_ = when;
  ++executed_;
  // Free the node before running the callback: children it schedules reuse
  // the still-hot slot, and a drain/refill cycle never grows the arena.
  Callback cb = std::move(e->cb);
#if NLSS_INVARIANTS_ENABLED
  const std::uint64_t id = e->id;
  const std::uint64_t parent = e->parent;
  pool_.Free(e);
  current_event_ = id;
  check::RaceDetector* prev = nullptr;
  if (race_ != nullptr) {
    race_->BeginEvent(id, parent, now_);
    prev = check::RaceDetector::SetCurrent(race_);
  }
  cb();
  if (race_ != nullptr) {
    race_->EndEvent();
    check::RaceDetector::SetCurrent(prev);
  }
  current_event_ = 0;
#else
  pool_.Free(e);
  cb();
#endif
}

void Engine::Run() {
  stopped_ = false;
  while (!stopped_) {
    Tick when = 0;
    Event* e = queue_.PopMin(&when);
    if (e == nullptr) break;
    Execute(e, when);
  }
}

std::size_t Engine::RunUntil(Tick t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    // PeekMinWhen reads the queue's own key record; an empty queue reports
    // Tick max, which only passes the bound when a real event sits there.
    if (queue_.Empty() || queue_.PeekMinWhen() > t) break;
    Tick when = 0;
    Event* e = queue_.PopMin(&when);
    Execute(e, when);
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_) {
    Tick when = 0;
    Event* e = queue_.PopMin(&when);
    if (e == nullptr) break;
    Execute(e, when);
    ++n;
  }
  return n;
}

}  // namespace nlss::sim
