#include "sim/engine.h"

#include <cassert>
#include <utility>

#include "check/invariant.h"

namespace nlss::sim {

void Engine::ScheduleAt(Tick when, Callback cb) {
  NLSS_INVARIANT(kSim, when >= now_,
                 "scheduling into the past: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
  queue_.push(Item{when, next_seq_++, std::move(cb)});
}

void Engine::Execute(Item& item) {
  NLSS_INVARIANT(kSim, item.when >= now_,
                 "event pop went backwards: when=%llu now=%llu",
                 static_cast<unsigned long long>(item.when),
                 static_cast<unsigned long long>(now_));
  now_ = item.when;
  ++executed_;
  item.cb();
}

void Engine::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; the callback is moved out via
    // const_cast, which is safe because pop() immediately follows.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
  }
}

std::size_t Engine::RunUntil(Tick t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= t) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
    ++n;
  }
  return n;
}

}  // namespace nlss::sim
