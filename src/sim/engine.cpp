#include "sim/engine.h"

#include <cassert>
#include <cstdlib>
#include <utility>

#include "check/race.h"

namespace nlss::sim {
namespace {

/// splitmix64 finalizer: a bijection of seq for any fixed seed, so same-tick
/// priorities stay distinct and a given seed yields one fixed permutation.
std::uint64_t PerturbKey(std::uint64_t seed, std::uint64_t seq) {
  std::uint64_t x = seq + seed * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t EnvU64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

Engine::Engine() {
  perturb_seed_ = EnvU64("NLSS_PERTURB");
#if NLSS_INVARIANTS_ENABLED
  if (EnvU64("NLSS_RACE") != 0) {
    owned_race_ = std::make_unique<check::RaceDetector>();
    race_ = owned_race_.get();
  }
#endif
}

Engine::~Engine() = default;

void Engine::AttachRaceDetector(check::RaceDetector* d) {
#if NLSS_INVARIANTS_ENABLED
  race_ = d != nullptr ? d : owned_race_.get();
#else
  (void)d;
#endif
}

void Engine::ScheduleAt(Tick when, Callback cb) {
  NLSS_INVARIANT(kSim, when >= now_,
                 "scheduling into the past: when=%llu now=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t pri =
      perturb_seed_ != 0 ? PerturbKey(perturb_seed_, seq) : seq;
  Item item{when, seq, pri, std::move(cb)};
#if NLSS_INVARIANTS_ENABLED
  item.id = seq + 1;  // 1-based: 0 is the external (non-event) context
  item.parent = current_event_;
#endif
  queue_.push(std::move(item));
}

void Engine::Execute(Item& item) {
  NLSS_INVARIANT(kSim, item.when >= now_,
                 "event pop went backwards: when=%llu now=%llu",
                 static_cast<unsigned long long>(item.when),
                 static_cast<unsigned long long>(now_));
  now_ = item.when;
  ++executed_;
#if NLSS_INVARIANTS_ENABLED
  current_event_ = item.id;
  check::RaceDetector* prev = nullptr;
  if (race_ != nullptr) {
    race_->BeginEvent(item.id, item.parent, item.when);
    prev = check::RaceDetector::SetCurrent(race_);
  }
  item.cb();
  if (race_ != nullptr) {
    race_->EndEvent();
    check::RaceDetector::SetCurrent(prev);
  }
  current_event_ = 0;
#else
  item.cb();
#endif
}

void Engine::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; the callback is moved out via
    // const_cast, which is safe because pop() immediately follows.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
  }
}

std::size_t Engine::RunUntil(Tick t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= t) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    Execute(item);
    ++n;
  }
  return n;
}

}  // namespace nlss::sim
