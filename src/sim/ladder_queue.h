// Multi-rung ladder/calendar queue for the DES kernel.
//
// The binary heap the engine used to run put every pending event through
// O(log n) comparisons and moved whole Item structs during sifts.  This
// queue exploits what a storage simulation actually schedules — almost
// everything lands within a short horizon of `now` — to make both insert and
// pop amortized O(1) while preserving the EXACT (when, pri, seq) total order
// the heap produced.  The keys are unique — pri is seq itself under FIFO and
// a seeded bijection of seq under perturbation — so (when, pri) alone is a
// total order and any correct priority queue yields a bit-identical
// execution order: FIFO, perturbation permutations, and causal
// parent->child order all come out unchanged.
//
// Storage tiers, nearest first:
//
//   front   sorted ascending vector of events with when < front_end_,
//           drained through a cursor (no pop-side memmove).  Same-tick
//           children scheduled while the front drains binary-search-insert
//           into the undrained tail.
//   rungs   a path of ring structures.  Each rung splits its span into
//           kBuckets unsorted buckets of equal width; rung k+1 subdivides
//           the bucket rung k is currently draining with kBuckets-times
//           finer width.  Insert appends to a bucket of the deepest rung
//           that covers `when` — O(depth), and depth is bounded by
//           log_kBuckets(span) <= 8.  When a bucket reaches the head of the
//           deepest rung it either becomes the front (small buckets: one
//           sort) or is spread one level down (large buckets), so no event
//           is ever sorted in a run longer than kSpreadThreshold.
//   spill   unsorted vector for events past the bottom rung's span.  Rung
//           coverage is FIXED at creation, so every queued event in the
//           rungs orders before every spilled event and the spill only
//           needs integrating when the rungs drain: ReAnchor re-derives the
//           bottom rung's width from the spill population's span and
//           redistributes it in one pass.  (An earlier draft slid a single
//           ring window forward as buckets drained; the window could slide
//           past an old spilled event while newer ring events kept arriving,
//           which reordered execution — fixed coverage removes that hazard
//           structurally.)
//
// Every tier holds Ref entries — the (when, pri) key copied next to the
// Event* — rather than raw pointers or intrusive lists.  The key fields are
// immutable once scheduled, so the copies can never go stale, and the
// sorts, binary searches, and spreads all run over contiguous 24-byte
// records without touching the arena.  The front sort itself is an LSD
// radix sort over (when - min): events that share a bucket share their high
// when-bits, so one or two branch-free counting passes replace the
// mispredict-heavy comparison sort, and equal-when runs get a tiny
// insertion/std::sort fix-up by pri (under FIFO those runs arrive already
// pri-ordered).  The only arena dereference left on the pop path is the one
// Execute needs anyway, and PopMin prefetches it a few events ahead.
//
// The queue stores Event* nodes owned by the engine's EventPool and never
// allocates per event: tier vectors keep their capacity across drain/refill
// cycles (front and bucket storage circulate by swap) and retired rungs go
// to a pool for reuse.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/event_pool.h"

namespace nlss::sim {

class LadderQueue {
 public:
  static constexpr std::size_t kBuckets = 256;  // per rung; power of two
  /// Buckets at most this long become the front with one direct sort;
  /// longer ones are spread into a finer rung first.  Radix sorting keeps
  /// direct sorts linear, so this mainly bounds front working-set size.
  static constexpr std::size_t kSpreadThreshold = 2048;

  // Like SlabCache for the event arena, the queue's scratch buffers (front,
  // spill, radix ping-pong, retired rungs with their 256 bucket vectors) are
  // parked process-wide across queue lifetimes: engines are built and torn
  // down in loops, and re-growing megabytes of vector capacity from zero
  // each time costs more in realloc copies and page faults than the queue
  // operations themselves.
  LadderQueue() {
    ScratchCache& c = ScratchCache::Instance();
    std::lock_guard<std::mutex> lock(c.mu);
    if (!c.items.empty()) {
      Scratch s = std::move(c.items.back());
      c.items.pop_back();
      front_ = std::move(s.front);
      spill_ = std::move(s.spill);
      radix_tmp_ = std::move(s.radix);
      rung_pool_ = std::move(s.rung_pool);
    }
  }

  LadderQueue(const LadderQueue&) = delete;
  LadderQueue& operator=(const LadderQueue&) = delete;

  ~LadderQueue() {
    for (Rung& g : rungs_) {
      for (std::vector<Ref>& b : g.buckets) b.clear();
      RetireRung(std::move(g));
    }
    front_.clear();
    spill_.clear();
    radix_tmp_.clear();
    Scratch s{std::move(front_), std::move(spill_), std::move(radix_tmp_),
              std::move(rung_pool_)};
    ScratchCache& c = ScratchCache::Instance();
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.items.size() < ScratchCache::kMaxItems) {
      c.items.push_back(std::move(s));
    }
  }

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  void Push(Event* e) {
    ++size_;
    Insert(Ref{e->when, e->pri, e});
  }

  /// Minimum event by (when, pri, seq), or nullptr when empty.  Stays valid
  /// until the next Push/PopMin.
  const Event* PeekMin() {
    if (size_ == 0) return nullptr;
    if (front_pos_ >= front_.size()) Refill();
    return front_[front_pos_].e;
  }

  /// Timestamp of the minimum event, or Tick max when empty.  Served from
  /// the contiguous front record — no arena dereference.
  Tick PeekMinWhen() {
    if (size_ == 0) return kMaxTick;
    if (front_pos_ >= front_.size()) Refill();
    return front_[front_pos_].when;
  }

  /// Pop the minimum event; its timestamp is written to *when_out (again
  /// from the front record, sparing the caller a read of the event's cold
  /// second cache line).
  Event* PopMin(Tick* when_out = nullptr) {
    if (size_ == 0) return nullptr;
    if (front_pos_ >= front_.size()) Refill();
    if (when_out != nullptr) *when_out = front_[front_pos_].when;
    Event* e = front_[front_pos_++].e;
    // Warm the node the engine will execute a few pops from now; arena slots
    // are scattered relative to sorted order, so without this every Execute
    // opens with a cold load of the callback.
    if (front_pos_ + 4 <= front_.size())
      __builtin_prefetch(front_[front_pos_ + 3].e);
    --size_;
    if (size_ == 0) {
      // Fully drained: drop the anchor so the next population re-derives
      // its geometry from scratch (also exits saturation fold mode).  Any
      // rungs still standing are exhausted shells — retire them, or new
      // pushes would route into buckets their base already drained past.
      front_.clear();
      front_pos_ = 0;
      front_end_ = 0;
      folded_ = false;
      for (Rung& g : rungs_) RetireRung(std::move(g));
      rungs_.clear();
    }
    return e;
  }

 private:
  static constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

  /// Ordering key copied out of the event plus the node it belongs to.
  /// seq is deliberately absent: pri is a bijection of seq, so (when, pri)
  /// already decides every comparison and the record stays at 24 bytes.
  struct Ref {
    Tick when;
    std::uint64_t pri;
    Event* e;
  };

  struct Rung {
    Tick start = 0;  // left edge of bucket 0
    Tick width = 1;
    Tick last = 0;         // inclusive upper bound of this rung's coverage
    std::size_t base = 0;  // next bucket to drain
    std::size_t count = 0;
    std::vector<std::vector<Ref>> buckets;
  };

  /// One retired queue's worth of reusable buffer capacity.
  struct Scratch {
    std::vector<Ref> front;
    std::vector<Ref> spill;
    std::vector<Ref> radix;
    std::vector<Rung> rung_pool;
  };

  struct ScratchCache {
    static constexpr std::size_t kMaxItems = 8;
    std::mutex mu;
    std::vector<Scratch> items;
    static ScratchCache& Instance() {
      static ScratchCache c;
      return c;
    }
  };

  static bool EarlierFirst(const Ref& a, const Ref& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.pri < b.pri;
  }

  void InsertFront(const Ref& r) {
    // Only the undrained tail [front_pos_, end) is live; `when >= now`
    // guarantees the insertion point is inside it.  It is almost always at
    // the very end (the event runs soon), so the memmove is short.
    front_.insert(std::upper_bound(front_.begin() + front_pos_, front_.end(),
                                   r, EarlierFirst),
                  r);
  }

  void Insert(const Ref& r) {
    if (folded_ || r.when < front_end_) {
      InsertFront(r);
      return;
    }
    // Deepest rung first: child coverage nests inside the parent bucket the
    // child subdivides, so the first rung that covers `when` is the right
    // one.  `when >= front_end_` guarantees the target bucket is at or
    // after the rung's base, so it has not been drained past.
    for (std::size_t k = rungs_.size(); k-- > 0;) {
      Rung& g = rungs_[k];
      if (r.when <= g.last) {
        g.buckets[(r.when - g.start) / g.width].push_back(r);
        ++g.count;
        return;
      }
    }
    if (spill_.empty()) {
      spill_lo_ = spill_hi_ = r.when;
    } else {
      spill_lo_ = std::min(spill_lo_, r.when);
      spill_hi_ = std::max(spill_hi_, r.when);
    }
    // Grow in 4x strides from a slab-sized floor: schedule-heavy setups park
    // tens of thousands of events here before the first pop, and the
    // default doubling spends more time in realloc copies and fresh page
    // faults than in the pushes themselves.
    if (spill_.size() == spill_.capacity()) {
      spill_.reserve(std::max<std::size_t>(4096, spill_.capacity() * 4));
    }
    spill_.push_back(r);
  }

  /// Inclusive coverage bound for a rung at `start` with kBuckets buckets
  /// of `width`, saturating at the tick horizon.
  static Tick RungLast(Tick start, Tick width) {
    return width > (kMaxTick - start) / kBuckets ? kMaxTick
                                                 : start + kBuckets * width - 1;
  }

  Rung TakeRung() {
    if (rung_pool_.empty()) {
      Rung r;
      r.buckets.resize(kBuckets);
      return r;
    }
    Rung r = std::move(rung_pool_.back());
    rung_pool_.pop_back();
    return r;
  }

  void RetireRung(Rung&& r) {
    r.base = 0;
    r.count = 0;
    rung_pool_.push_back(std::move(r));  // buckets keep their capacity
  }

  /// Called with the front drained and size_ > 0: walk the deepest rung to
  /// the next non-empty bucket and either sort it into the front (small) or
  /// spread it one level down (large); re-anchor from the spill when the
  /// rungs drain entirely.
  void Refill() {
    front_.clear();
    front_pos_ = 0;
    while (front_.empty()) {
      if (rungs_.empty()) {
        if (spill_.empty()) return;  // size_ > 0 rules this out; defensive
        ReAnchor();
        continue;
      }
      Rung& g = rungs_.back();
      if (g.count == 0) {
        RetireRung(std::move(g));
        rungs_.pop_back();
        continue;
      }
      while (g.base < kBuckets && g.buckets[g.base].empty()) ++g.base;
#ifdef NLSS_LQ_DEBUG
      if (g.base >= kBuckets) {
        std::fprintf(stderr,
                     "LQ BUG: rung depth=%zu start=%llu width=%llu last=%llu "
                     "base=%zu count=%zu front_end=%llu size=%zu\n",
                     rungs_.size(), (unsigned long long)g.start,
                     (unsigned long long)g.width, (unsigned long long)g.last,
                     g.base, g.count, (unsigned long long)front_end_, size_);
        std::abort();
      }
#endif
      std::vector<Ref>& b = g.buckets[g.base];
      if (g.width == 1 || b.size() <= kSpreadThreshold) {
        front_.swap(b);  // front_ is empty: capacities circulate, no copy
        g.count -= front_.size();
        ++g.base;
        // Advance the front bound to the drained bucket's right edge, but
        // never past the rung's own coverage: a child whose width does not
        // divide the parent bucket evenly has buckets sticking out past its
        // last, and letting front_end_ follow them would route events that
        // belong to the parent's NEXT bucket into the front ahead of
        // earlier events still waiting in that bucket.
        const Tick adv =
            g.base > (kMaxTick - g.start) / g.width
                ? kMaxTick
                : g.start + static_cast<Tick>(g.base) * g.width;
        front_end_ = std::min(adv, SatAddOne(g.last));
        if (front_end_ == kMaxTick) {
          // Saturated horizon (coverage touching Tick max): an exclusive
          // front bound can no longer be represented, so fold everything
          // into the front and run as one sorted vector from here on.
          FoldAll();
        }
      } else {
        Spread(g, b);
      }
    }
    SortFront();
  }

  static Tick SatAddOne(Tick t) { return t == kMaxTick ? kMaxTick : t + 1; }

  /// Subdivide the bucket at g.base into a new deepest rung with
  /// kBuckets-times finer width.  The child covers exactly the parent
  /// bucket's window, so deepest-first insertion keeps routing correct.
  void Spread(Rung& g, std::vector<Ref>& b) {
    Rung c = TakeRung();
    c.start = g.start + g.base * g.width;
    c.width = (g.width + kBuckets - 1) / kBuckets;  // ceil; >= 1
    const Tick parent_last =
        g.width - 1 > kMaxTick - c.start ? kMaxTick : c.start + g.width - 1;
    c.last = std::min(RungLast(c.start, c.width), parent_last);
    for (const Ref& r : b) {
      c.buckets[(r.when - c.start) / c.width].push_back(r);
    }
    c.count = b.size();
    g.count -= b.size();
    b.clear();
    ++g.base;
    rungs_.push_back(std::move(c));
  }

  void FoldAll() {
    for (Rung& g : rungs_) {
      for (std::vector<Ref>& b : g.buckets) {
        front_.insert(front_.end(), b.begin(), b.end());
        b.clear();
      }
      RetireRung(std::move(g));
    }
    rungs_.clear();
    front_.insert(front_.end(), spill_.begin(), spill_.end());
    spill_.clear();
    folded_ = true;
  }

  /// Front and rungs are empty but the spill is not: build a fresh bottom
  /// rung whose width is derived from the spill population's span and
  /// redistribute the spill into it.  The new rung always covers the whole
  /// span, so the spill empties completely.
  void ReAnchor() {
    Rung g = TakeRung();
    g.start = spill_lo_;
    g.width = (spill_hi_ - spill_lo_) / kBuckets + 1;
    g.last = RungLast(g.start, g.width);
    for (const Ref& r : spill_) {
      g.buckets[(r.when - g.start) / g.width].push_back(r);
    }
    g.count = spill_.size();
    spill_.clear();
    front_end_ = g.start;  // nothing redistributes into the front
    rungs_.push_back(std::move(g));
  }

  /// Sort front_ ascending by (when, pri).  Comparison sorting pays an
  /// unpredictable branch per comparison, which dominates bucket-sized
  /// sorts; instead run a branch-free LSD radix sort on (when - min) — one
  /// counting pass per significant byte, and bucket residents share their
  /// high when-bits so one or two passes are typical — then repair
  /// equal-when runs by pri (already in pri order under FIFO, tiny
  /// shuffles under perturbation).
  void SortFront() {
    const std::size_t n = front_.size();
    if (n < 2) return;
    if (n <= 48) {
      std::sort(front_.begin(), front_.end(), EarlierFirst);
      return;
    }
    Tick lo = front_[0].when;
    Tick hi = front_[0].when;
    for (const Ref& r : front_) {
      lo = std::min(lo, r.when);
      hi = std::max(hi, r.when);
    }
    if (lo != hi) {
      const Tick span = hi - lo;
      int passes = 0;
      while ((span >> (8 * passes)) != 0) ++passes;
      std::array<std::array<std::uint32_t, 256>, sizeof(Tick)> cnt{};
      for (const Ref& r : front_) {
        const Tick d = r.when - lo;
        for (int p = 0; p < passes; ++p) ++cnt[p][(d >> (8 * p)) & 255];
      }
      radix_tmp_.resize(n);
      std::vector<Ref>* src = &front_;
      std::vector<Ref>* dst = &radix_tmp_;
      for (int p = 0; p < passes; ++p) {
        std::uint32_t sum = 0;
        for (std::uint32_t& c : cnt[p]) {
          const std::uint32_t was = c;
          c = sum;
          sum += was;
        }
        for (const Ref& r : *src) {
          (*dst)[cnt[p][((r.when - lo) >> (8 * p)) & 255]++] = r;
        }
        std::swap(src, dst);
      }
      if (src != &front_) front_.swap(radix_tmp_);
    }
    // Equal-when runs are in insertion order; order them by pri.
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && front_[j].when == front_[i].when) ++j;
      if (j - i > 1) {
        std::sort(front_.begin() + i, front_.begin() + j,
                  [](const Ref& a, const Ref& b) { return a.pri < b.pri; });
      }
      i = j;
    }
  }

  // front_end_ starts at 0 so that *pre-run* pushes always take the O(1)
  // bucket path; the sorted front is populated only by Refill's
  // once-per-event linear sorts (plus the rare same-tick child).
  std::vector<Ref> front_;      // ascending; [front_pos_, end) undrained
  std::size_t front_pos_ = 0;   // cursor into front_
  Tick front_end_ = 0;    // exclusive: every event < front_end_ is in front_
  bool folded_ = false;   // saturation mode: everything lives in front_
  std::vector<Rung> rungs_;      // rungs_[k+1] subdivides rungs_[k]'s bucket
  std::vector<Rung> rung_pool_;  // retired rungs, bucket capacity kept warm
  std::vector<Ref> spill_;       // unsorted beyond-the-bottom-rung overflow
  Tick spill_lo_ = 0;            // min/max when across spill_ (valid when
  Tick spill_hi_ = 0;            // spill_ is non-empty)
  std::vector<Ref> radix_tmp_;   // radix ping-pong buffer, capacity reused
  std::size_t size_ = 0;
};

}  // namespace nlss::sim
