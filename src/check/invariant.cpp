#include "check/invariant.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace nlss::check {

const char* SubsystemName(Subsystem s) {
  switch (s) {
    case Subsystem::kSim:
      return "sim";
    case Subsystem::kCache:
      return "cache";
    case Subsystem::kQos:
      return "qos";
    case Subsystem::kHost:
      return "host";
    case Subsystem::kRaid:
      return "raid";
    case Subsystem::kMeta:
      return "meta";
    case Subsystem::kTier:
      return "tier";
    case Subsystem::kRace:
      return "race";
    case Subsystem::kOther:
      return "other";
  }
  return "?";
}

Registry& Registry::Instance() {
  static Registry instance;
  return instance;
}

std::uint64_t Registry::TotalEvaluations() const {
  std::uint64_t n = 0;
  for (int i = 0; i < kSubsystemCount; ++i) {
    n += evaluations_[i].load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Registry::TotalViolations() const {
  std::uint64_t n = 0;
  for (int i = 0; i < kSubsystemCount; ++i) {
    n += violations_[i].load(std::memory_order_relaxed);
  }
  return n;
}

void Registry::Report(const Violation& v) {
  violations_[static_cast<int>(v.subsystem)].fetch_add(
      1, std::memory_order_relaxed);
  if (handler_) {
    handler_(v);
    return;
  }
  std::fprintf(stderr, "NLSS_INVARIANT violation [%s] %s:%d: (%s)%s%s\n",
               SubsystemName(v.subsystem), v.file, v.line, v.expr,
               v.message.empty() ? "" : " — ", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

Registry::Handler Registry::SetHandler(Handler h) {
  Handler prev = std::move(handler_);
  handler_ = std::move(h);
  return prev;
}

namespace detail {

void Fail(Subsystem s, const char* file, int line, const char* expr,
          const char* fmt, ...) {
  Violation v;
  v.subsystem = s;
  v.file = file;
  v.line = line;
  v.expr = expr;
  if (fmt != nullptr) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    v.message = buf;
  }
  Registry::Instance().Report(v);
}

}  // namespace detail

}  // namespace nlss::check
