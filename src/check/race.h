// Dynamic same-tick race detection for the deterministic DES.
//
// Every digest gate in this repo (two-run digest tests, the E-series bench
// digests) rests on one property: the observable outcome of a run must not
// depend on the FIFO insertion order of events scheduled at the same
// simulated tick.  Events that are causally ordered (event A scheduled
// event B, directly or transitively) can never be reordered by the queue —
// a child is created only while its ancestor executes.  Everything else
// that lands on the same tick is ordered purely by the scheduler's
// tie-break, which is exactly the order a calendar-queue / arena rewrite of
// the DES kernel (ROADMAP) will change.
//
// The RaceDetector makes that property checkable:
//
//   - sim::Engine assigns every event a causal id and reports
//     (id, parent id, tick) when the event starts executing.
//   - Instrumented subsystems tag shared-state accesses with
//     NLSS_ACCESS(subsystem, key, mode) — compiled out under NDEBUG,
//     exactly like NLSS_INVARIANT.
//   - Two same-tick accesses to the same (subsystem, key) from events where
//     NEITHER is an ancestor of the other conflict when their modes do:
//
//         kRead    observes the state; order vs any mutation matters.
//         kWrite   order-sensitive mutation (assignment, FIFO push, ...).
//         kCommute order-INsensitive mutation: the final state and every
//                  observable side effect are identical under any
//                  interleaving of same-tick kCommute updates (counter
//                  increments, inserts keyed by stable ids, idempotent
//                  absorb of a duplicate write).  A kCommute still
//                  conflicts with a kRead (the read would observe an
//                  intermediate state) and with a kWrite.
//
//     conflict matrix:      Read   Write  Commute
//              Read          -      X       X
//              Write         X      X       X
//              Commute       X      X       -
//
// A conflict is precisely the condition under which the schedule
// perturbation mode (sim::Engine, NLSS_PERTURB) can flip a digest, so the
// detector and the perturbation harness validate each other: a clean
// detector run predicts digest stability, and a flipped digest implies a
// missed tag.
//
// Accesses made outside any event (test set-up code between Run() calls)
// are ignored: their order relative to the event stream is fixed by program
// text, not by the queue.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/invariant.h"

namespace nlss::check {

enum class AccessMode : std::uint8_t { kRead, kWrite, kCommute };
const char* AccessModeName(AccessMode m);

class RaceDetector {
 public:
  /// One side of a recorded access (site + event attribution).
  struct Access {
    std::uint64_t event = 0;
    AccessMode mode = AccessMode::kRead;
    const char* file = "";
    int line = 0;
  };

  /// A same-tick pair of conflicting accesses from causally unrelated
  /// events.  `prior` executed (or at least accessed) first in this run's
  /// order; under another same-tick permutation `later` could precede it.
  struct Conflict {
    Subsystem subsystem = Subsystem::kOther;
    std::uint64_t key = 0;
    std::uint64_t tick = 0;
    Access prior;
    Access later;
  };

  /// When true (default), each new conflict is also reported through
  /// check::Registry as a kRace violation — aborting the process unless a
  /// handler is installed, which is how the CI suite fails on any race.
  /// Tests that enumerate conflicts() can turn it off.
  void set_report_violations(bool on) { report_violations_ = on; }

  // --- Engine-side hooks ----------------------------------------------------
  /// `id` starts executing at `tick`; it was scheduled by event `parent`
  /// (0 = scheduled from outside any event).
  void BeginEvent(std::uint64_t id, std::uint64_t parent, std::uint64_t tick);
  void EndEvent() { current_ = 0; }

  /// Detector the currently executing engine exposes to NLSS_ACCESS (null
  /// when detection is off).  Managed by sim::Engine around each event.
  static RaceDetector* Current() { return current_detector_; }
  static RaceDetector* SetCurrent(RaceDetector* d) {
    RaceDetector* prev = current_detector_;
    current_detector_ = d;
    return prev;
  }

  /// NLSS_ACCESS entry point: attribute an access to the currently
  /// executing event of the current detector (no-op outside events or when
  /// no detector is attached).
  static void Record(Subsystem s, std::uint64_t key, AccessMode mode,
                     const char* file, int line);

  // --- Results --------------------------------------------------------------
  const std::vector<Conflict>& conflicts() const { return conflicts_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t events() const { return events_; }
  /// Drop all recorded state (conflicts, per-tick tables, counters).
  void Reset();

  static std::string Describe(const Conflict& c);

 private:
  void RecordImpl(Subsystem s, std::uint64_t key, AccessMode mode,
                  const char* file, int line);
  bool IsAncestor(std::uint64_t a, std::uint64_t e) const;

  struct KeyState {
    // All distinct (event, mode) access records for this key at this tick
    // (bounded; duplicates of an already-recorded pair are dropped).
    std::vector<Access> accs;
  };

  static RaceDetector* current_detector_;

  std::uint64_t current_ = 0;  // executing event id (0 = none)
  std::uint64_t tick_ = 0;     // tick the per-tick tables describe
  bool tick_valid_ = false;
  // parent chain of every event that has executed at tick_ (id -> parent).
  std::unordered_map<std::uint64_t, std::uint64_t> parents_;
  // (subsystem, key) -> accesses at tick_.  Key mixes the subsystem in.
  std::unordered_map<std::uint64_t, KeyState> table_;
  std::vector<Conflict> conflicts_;
  std::uint64_t accesses_ = 0;
  std::uint64_t events_ = 0;
  bool report_violations_ = true;
};

}  // namespace nlss::check

#if NLSS_INVARIANTS_ENABLED
/// NLSS_ACCESS(kCache, key, kWrite) — tag an access to shared mutable
/// state with the page/queue/entry it touches.  `subsystem` is a bare
/// check::Subsystem enumerator, `key` anything convertible to uint64 (hash
/// composite keys with check::AccessKey), `mode` a bare AccessMode
/// enumerator.  Compiles out under NDEBUG.
#define NLSS_ACCESS(subsystem, key, mode)                                   \
  ::nlss::check::RaceDetector::Record(                                      \
      ::nlss::check::Subsystem::subsystem,                                  \
      static_cast<std::uint64_t>(key), ::nlss::check::AccessMode::mode,     \
      __FILE__, __LINE__)
#else
#define NLSS_ACCESS(subsystem, key, mode) \
  do {                                    \
  } while (0)
#endif

namespace nlss::check {
/// Mix two id components into one access key (order-sensitive mix, so
/// AccessKey(a, b) != AccessKey(b, a) in general).
inline constexpr std::uint64_t AccessKey(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b;
  x ^= x >> 32;
  x *= 0xD6E8FEB86659FD93ULL;
  x ^= x >> 32;
  return x;
}

/// Race domain for epoch/sequence-GUARDED transitions on an object whose
/// content accesses are tracked under the plain key.  A guarded transition
/// (flush settle checking `dirty_epoch`, demote completion checking
/// `seq`) re-validates its snapshot before acting, so it converges to the
/// same final state whether it runs before or after a same-tick content
/// write — the guard IS the adjudication.  Keying it separately keeps
/// guarded-vs-guarded conflicts detectable (two settles releasing the same
/// replicas would be a real bug) without flagging the proven-tolerant
/// guarded-vs-content pair.  Use ONLY where the guard check is in the same
/// event as the access; see DESIGN.md "Determinism model".
inline constexpr std::uint64_t EpochGuardedKey(std::uint64_t key) {
  return AccessKey(key, 0xE90C46A2DULL);  // 'epoch-guard' domain salt
}
}  // namespace nlss::check
