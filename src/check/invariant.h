// Runtime invariant checking for the deterministic storage stack.
//
// NLSS_INVARIANT(subsystem, cond, fmt, ...) asserts a protocol/state-machine
// invariant and attributes it to a subsystem family.  In Debug (or when the
// build defines NLSS_INVARIANTS_ENABLED=1, which CI's correctness job does)
// every evaluation is counted in the process-wide Registry and a violation
// formats its context (file:line, stringified condition, printf-style
// message) and aborts.  In Release the macro expands to nothing — zero
// instructions on the hot path — so E1/E13 throughput is untouched.
//
// The per-subsystem evaluation counters are exported through the obs
// registry as `nlss_check_evaluations_total{subsystem="..."}` (obs::Hub
// snapshots a baseline at construction so two same-seed runs in one process
// export identical deltas and stay digest-stable).
//
// The sim is single-threaded, but bench harnesses use a thread pool, so the
// counters are relaxed atomics — counting stays exact either way.
#pragma once

#include <cstdint>
#include <atomic>
#include <functional>
#include <string>

#if !defined(NLSS_INVARIANTS_ENABLED)
#if defined(NDEBUG)
#define NLSS_INVARIANTS_ENABLED 0
#else
#define NLSS_INVARIANTS_ENABLED 1
#endif
#endif

namespace nlss::check {

/// True when NLSS_INVARIANT is compiled in (Debug, or forced via the
/// NLSS_INVARIANTS CMake option).
inline constexpr bool kEnabled = NLSS_INVARIANTS_ENABLED != 0;

/// Invariant family an evaluation is attributed to.  One value per
/// instrumented state machine.
enum class Subsystem : std::uint8_t {
  kSim,    // event queue: monotone pops, no scheduling into the past
  kCache,  // coherence: single dirty owner, monotone ownership transfer
  kQos,    // WFQ tag monotonicity, token-bucket balance bounds
  kHost,   // exactly-once completion, breaker transition legality
  kRaid,   // rebuild: no chunk rebuilt or re-queued after completion
  kMeta,   // dentry coherence: no resolve served against a stale version
  kTier,   // tier placement: single location, in-flight moves, demote order
  kRace,   // same-tick determinism races (check::RaceDetector conflicts)
  kOther,  // uncategorized (tests, one-off checks)
};
inline constexpr int kSubsystemCount = 9;
const char* SubsystemName(Subsystem s);

/// Context handed to the violation handler.
struct Violation {
  Subsystem subsystem = Subsystem::kOther;
  const char* file = "";
  int line = 0;
  const char* expr = "";
  std::string message;  // formatted printf-style context ("" when none)
};

/// Process-wide evaluation/violation accounting.  Counters only grow;
/// consumers that need per-run deltas (obs::Hub) snapshot a baseline.
class Registry {
 public:
  static Registry& Instance();

  void Record(Subsystem s) {
    evaluations_[static_cast<int>(s)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t evaluations(Subsystem s) const {
    return evaluations_[static_cast<int>(s)].load(std::memory_order_relaxed);
  }
  std::uint64_t violations(Subsystem s) const {
    return violations_[static_cast<int>(s)].load(std::memory_order_relaxed);
  }
  std::uint64_t TotalEvaluations() const;
  std::uint64_t TotalViolations() const;

  /// Count + dispatch a violation to the handler (default: log to stderr
  /// and abort).  Called by the macro via detail::Fail.
  void Report(const Violation& v);

  using Handler = std::function<void(const Violation&)>;
  /// Install a handler (tests capture the violation instead of dying).
  /// Returns the previous handler; pass nullptr to restore the default.
  Handler SetHandler(Handler h);

 private:
  Registry() = default;
  std::atomic<std::uint64_t> evaluations_[kSubsystemCount] = {};
  std::atomic<std::uint64_t> violations_[kSubsystemCount] = {};
  Handler handler_;  // empty = default log + abort
};

namespace detail {
/// Formats the optional printf-style context and reports through the
/// Registry.  Kept out-of-line so the macro's failure arm is one call.
[[gnu::format(printf, 5, 6)]]
void Fail(Subsystem s, const char* file, int line, const char* expr,
          const char* fmt = nullptr, ...);
}  // namespace detail

}  // namespace nlss::check

#if NLSS_INVARIANTS_ENABLED
/// NLSS_INVARIANT(kCache, cond, "context %llu", value)
/// `subsystem` is a bare Subsystem enumerator (kCache, kSim, ...).
/// The format arguments are evaluated only on failure.
#define NLSS_INVARIANT(subsystem, cond, ...)                                 \
  do {                                                                       \
    ::nlss::check::Registry::Instance().Record(                              \
        ::nlss::check::Subsystem::subsystem);                                \
    if (!(cond)) [[unlikely]] {                                              \
      ::nlss::check::detail::Fail(::nlss::check::Subsystem::subsystem,       \
                                  __FILE__, __LINE__,                        \
                                  #cond __VA_OPT__(, ) __VA_ARGS__);         \
    }                                                                        \
  } while (0)
#else
// Release: no evaluation of the condition or the format arguments, so
// debug-only bookkeeping referenced here is dead-stripped with it.
#define NLSS_INVARIANT(subsystem, cond, ...) \
  do {                                       \
  } while (0)
#endif
