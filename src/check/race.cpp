#include "check/race.h"

#include <utility>

namespace nlss::check {
namespace {

/// (R,R) and (C,C) are the only order-insensitive same-tick pairs.
bool ModesConflict(AccessMode a, AccessMode b) {
  if (a == AccessMode::kRead && b == AccessMode::kRead) return false;
  if (a == AccessMode::kCommute && b == AccessMode::kCommute) return false;
  return true;
}

// Bounds: distinct (event, mode) records kept per key per tick, and total
// conflicts retained.  Both exist only to bound memory under a pathological
// run; the default violation report aborts on the first conflict anyway.
constexpr std::size_t kMaxAccessesPerKey = 32;
constexpr std::size_t kMaxConflicts = 256;

}  // namespace

RaceDetector* RaceDetector::current_detector_ = nullptr;

const char* AccessModeName(AccessMode m) {
  switch (m) {
    case AccessMode::kRead:
      return "read";
    case AccessMode::kWrite:
      return "write";
    case AccessMode::kCommute:
      return "commute";
  }
  return "?";
}

void RaceDetector::BeginEvent(std::uint64_t id, std::uint64_t parent,
                              std::uint64_t tick) {
  ++events_;
  if (!tick_valid_ || tick != tick_) {
    // New tick: same-tick ordering questions reset wholesale.
    tick_ = tick;
    tick_valid_ = true;
    parents_.clear();
    table_.clear();
  }
  parents_.emplace(id, parent);
  current_ = id;
}

void RaceDetector::Record(Subsystem s, std::uint64_t key, AccessMode mode,
                          const char* file, int line) {
  RaceDetector* d = current_detector_;
  // Outside any event the access order is fixed by program text (set-up
  // code between Run() calls), so only event-context accesses matter.
  if (d == nullptr || d->current_ == 0) return;
  d->RecordImpl(s, key, mode, file, line);
}

bool RaceDetector::IsAncestor(std::uint64_t a, std::uint64_t e) const {
  // Walk e's parent chain while it stays within the current tick.  An
  // ancestor that executed at an earlier tick is not in parents_ — but then
  // it cannot have a same-tick access record either, so stopping is sound.
  std::uint64_t cur = e;
  while (true) {
    const auto it = parents_.find(cur);
    if (it == parents_.end()) return false;
    cur = it->second;
    if (cur == a) return true;
    if (cur == 0) return false;  // reached the external (non-event) root
  }
}

void RaceDetector::RecordImpl(Subsystem s, std::uint64_t key, AccessMode mode,
                              const char* file, int line) {
  ++accesses_;
  const std::uint64_t combined =
      AccessKey(static_cast<std::uint64_t>(s) + 1, key);
  KeyState& ks = table_[combined];
  for (const Access& a : ks.accs) {
    if (a.event == current_ && a.mode == mode) return;  // duplicate record
  }
  const Access me{current_, mode, file, line};
  for (const Access& a : ks.accs) {
    if (a.event == current_) continue;  // one callback is internally ordered
    if (!ModesConflict(a.mode, mode)) continue;
    if (IsAncestor(a.event, current_)) continue;  // causally ordered pair
    // `a.event` finished before `current_` began (events never nest), so
    // `current_` cannot be its ancestor: this pair is causally unrelated.
    if (conflicts_.size() < kMaxConflicts) {
      conflicts_.push_back(Conflict{s, key, tick_, a, me});
    }
    if (report_violations_) {
      Violation v;
      v.subsystem = Subsystem::kRace;
      v.file = file;
      v.line = line;
      v.expr = "NLSS_ACCESS same-tick conflict";
      v.message = Describe(Conflict{s, key, tick_, a, me});
      Registry::Instance().Report(v);
    }
  }
  if (ks.accs.size() < kMaxAccessesPerKey) ks.accs.push_back(me);
}

void RaceDetector::Reset() {
  current_ = 0;
  tick_ = 0;
  tick_valid_ = false;
  parents_.clear();
  table_.clear();
  conflicts_.clear();
  accesses_ = 0;
  events_ = 0;
}

std::string RaceDetector::Describe(const Conflict& c) {
  std::string out = "same-tick race [";
  out += SubsystemName(c.subsystem);
  out += "] key=";
  out += std::to_string(c.key);
  out += " tick=";
  out += std::to_string(c.tick);
  out += ": event ";
  out += std::to_string(c.prior.event);
  out += " ";
  out += AccessModeName(c.prior.mode);
  out += " at ";
  out += c.prior.file;
  out += ":";
  out += std::to_string(c.prior.line);
  out += " vs event ";
  out += std::to_string(c.later.event);
  out += " ";
  out += AccessModeName(c.later.mode);
  out += " at ";
  out += c.later.file;
  out += ":";
  out += std::to_string(c.later.line);
  out += " (causally unrelated; queue order decides)";
  return out;
}

}  // namespace nlss::check
