// TierManager: workload-adaptive DRAM -> flash -> disk placement (E19).
//
// Each controller blade gains an NVMe-class flash lane between its DRAM
// cache and the RAID backing store.  The manager implements the cluster's
// TierHook:
//
//   demand miss  -> flash lookup before disk (local or one fabric hop),
//   write-back   -> absorbed into flash (durable there, demoted to disk
//                   later by the async pipeline),
//   clean evict  -> warm pages spill to flash, cold pages fall to disk,
//   disk read    -> heat-gated admission copies re-read pages into flash,
//   cooling      -> paced scans steal cold clean DRAM frames early
//                   (ScaleStore-style cooling phase) so eviction never
//                   stalls a foreground miss.
//
// Placement decisions come from the epoch-decayed HeatTracker, never from
// wall-clock or RNG state, and every map is ordered, so two same-seed runs
// make identical placement decisions.  The pipeline is demand-driven: the
// only self-scheduled event is the one-shot staging age-out timer, armed
// only while a spill batch is buffered, so an idle tier never keeps the
// DES queue alive.
//
// Durability rules (checked under check::Subsystem::kTier):
//   - a page has at most one flash location cluster-wide (loc_ index);
//   - a clean flash entry always equals the disk copy (freely droppable);
//   - dirty data leaves flash only via demotion, and a demotion completion
//     never marks an entry clean if a newer write-back landed meanwhile
//     (per-entry sequence numbers order demote-vs-rewrite);
//   - absorbed write-backs carry their WriteId and are audited against the
//     exactly-once dedup index exactly like direct disk flushes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cluster.h"
#include "cache/dedup.h"
#include "cache/tierhook.h"
#include "cache/types.h"
#include "obs/hub.h"
#include "obs/trace.h"
#include "qos/scheduler.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "tier/heat.h"
#include "util/bytes.h"

namespace nlss::tier {

struct Config {
  /// Master switch: SystemConfig leaves it false so every existing bench
  /// and test keeps bit-identical digests.
  bool enabled = false;

  // --- Flash device model (per blade) ------------------------------------
  std::uint64_t flash_capacity_pages = 8192;
  sim::Tick flash_read_ns = 25 * 1000;   // NVMe read access
  sim::Tick flash_write_ns = 30 * 1000;  // NVMe program
  double flash_ns_per_byte = 0.5;        // ~2 GB/s per-blade flash feed
  /// One-way fabric hop charged when a blade reads a peer's flash.
  sim::Tick remote_hop_ns = 10 * 1000;

  // --- Admission / spill policy -------------------------------------------
  /// Decayed heat a clean DRAM eviction needs to spill to flash.
  std::uint32_t spill_min_heat = 4;
  /// Decayed heat a disk read needs for flash admission.
  std::uint32_t admit_min_heat = 8;
  /// Clean spills are batched into one flash write of up to this many pages.
  std::uint32_t spill_batch_pages = 8;
  /// Age-out for a partial spill batch (one-shot timer, armed on demand).
  sim::Tick spill_flush_delay_ns = 200 * 1000;

  // --- Demotion (flash -> disk) pipeline ----------------------------------
  /// Occupancy fraction that starts demotion / clean trimming.
  double demote_watermark = 0.90;
  /// Occupancy fraction demotion drives the lane back down to.
  double demote_target = 0.75;
  std::uint32_t demote_batch_pages = 8;
  /// Retry delay when QoS admission bounces a demotion batch.
  sim::Tick qos_retry_delay_ns = 500 * 1000;

  // --- Cooling (DRAM pre-eviction) ----------------------------------------
  /// Minimum simulated time between cooling scans per blade.
  sim::Tick cool_interval_ns = 1 * 1000 * 1000;
  /// DRAM occupancy fraction that makes a cooling scan worthwhile.
  double cool_watermark = 0.95;
  /// Max frames stolen per cooling scan.
  std::uint32_t cool_batch_pages = 16;
  /// LRU-front window examined by cooling scans and PickVictim.
  std::uint32_t victim_scan_frames = 64;

  HeatTracker::Config heat;
};

struct Stats {
  std::uint64_t flash_hits = 0;        // demand reads served from flash
  std::uint64_t flash_misses = 0;      // demand reads that fell to disk
  std::uint64_t remote_reads = 0;      // flash hits that crossed blades
  std::uint64_t joins = 0;             // reads that joined an in-flight fill
  std::uint64_t unreachable = 0;       // flash entries behind a dead blade
  std::uint64_t spills = 0;            // clean evictions written to flash
  std::uint64_t admits = 0;            // disk reads admitted to flash
  std::uint64_t writeback_absorbs = 0; // dirty pages absorbed from flushes
  std::uint64_t promotions = 0;        // clean flash hits moved up to DRAM
  std::uint64_t demotions = 0;         // dirty pages written down to disk
  std::uint64_t stale_demotes = 0;     // demote raced a newer write-back
  std::uint64_t drops = 0;             // clean entries evicted from flash
  std::uint64_t spill_skips = 0;       // evictions too cold for flash
  std::uint64_t cool_scans = 0;
  std::uint64_t cool_spills = 0;       // cooling steals spilled to flash
  std::uint64_t cool_drops = 0;        // cooling steals discarded (cold)
  std::uint64_t declines = 0;          // write-back runs the tier refused
  std::uint64_t qos_rejects = 0;       // demotion batches bounced (retried)
};

class TierManager final : public cache::TierHook {
 public:
  TierManager(sim::Engine& engine, cache::CacheCluster& cluster,
              Config config);

  /// Route demotion batches through QoS admission as `tenant` (background
  /// class).  Pass nullptr to detach.
  void AttachQos(qos::Scheduler* qos, qos::TenantId tenant);
  /// Export nlss_tier_* metrics.  Pass nullptr to detach.
  void AttachObs(obs::Hub* hub);
  /// Root background demotion traces ("tier.demote").  Nullable.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Audit-only view of the write idempotency index (nullable).
  void SetDedupIndex(const cache::WriteDedupIndex* dedup) { dedup_ = dedup; }

  // --- TierHook -----------------------------------------------------------
  bool TierRead(cache::ControllerId ctrl, const cache::PageKey& key,
                cache::BackingStore::ReadCallback cb,
                obs::TraceContext ctx) override;
  bool TierWriteBack(cache::ControllerId ctrl,
                     const std::vector<cache::TierPageSnap>& pages,
                     const util::Bytes& data,
                     cache::BackingStore::WriteCallback cb,
                     obs::TraceContext ctx) override;
  void OnCleanEvict(cache::ControllerId ctrl, const cache::PageKey& key,
                    const util::Bytes& data) override;
  void OnDiskRead(cache::ControllerId ctrl, const cache::PageKey& key,
                  const util::Bytes& data) override;
  void OnAccess(cache::ControllerId ctrl, const cache::PageKey& key,
                bool write) override;
  std::optional<cache::PageKey> PickVictim(cache::ControllerId ctrl,
                                           const cache::CacheNode& node)
      override;
  void DrainDirty(std::function<void(bool)> cb) override;

  // --- Introspection ------------------------------------------------------
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  const HeatTracker& heat() const { return heat_; }
  std::size_t lanes() const { return lanes_.size(); }
  std::uint64_t FlashPages(cache::ControllerId ctrl) const;
  std::uint64_t FlashDirtyPages(cache::ControllerId ctrl) const;
  std::uint64_t TotalFlashPages() const { return loc_.size(); }
  /// True when some flash entry is the only durable copy of its page.
  bool HasDirty() const;

 private:
  enum class EntryState : std::uint8_t {
    kReady,     // data durable in flash
    kStaging,   // flash write in flight (reads join via waiters)
    kDemoting,  // disk write in flight (reads still served from flash)
  };

  struct Entry {
    util::Bytes data;
    bool dirty = false;
    EntryState state = EntryState::kReady;
    /// Bumped on every absorb; demote completions compare against their
    /// captured value so a raced rewrite never gets marked clean.
    std::uint64_t seq = 0;
    std::uint64_t dirty_epoch = 0;
    cache::WriteId wid;
    std::vector<cache::BackingStore::ReadCallback> waiters;
  };

  struct Lane {
    // Ordered: scans feed placement decisions and therefore the digest.
    std::map<cache::PageKey, Entry> flash;
    sim::Resource nvme;
    std::vector<cache::PageKey> staging;  // spill batch awaiting its write
    std::uint64_t staging_gen = 0;        // invalidates stale age-out timers
    std::uint64_t dirty_pages = 0;
    bool demote_inflight = false;
    sim::Tick next_cool = 0;
    explicit Lane(sim::Engine& e) : nvme(e) {}
  };

  Lane& LaneOf(cache::ControllerId ctrl) { return *lanes_[ctrl]; }
  bool LaneHasRoom(cache::ControllerId ctrl) {
    return LaneOf(ctrl).flash.size() < config_.flash_capacity_pages;
  }
  Entry* FindEntry(const cache::PageKey& key, cache::ControllerId* holder);

  void SetDirty(Lane& lane, Entry& e, bool dirty);
  /// Erase `key` from its lane, serving any staged read joiners first.
  void EraseEntry(cache::ControllerId holder, const cache::PageKey& key);
  /// Evict up to `need` cold clean kReady entries; true if room was made.
  bool MakeRoom(cache::ControllerId ctrl, std::uint64_t need);

  /// Buffer one clean page into the lane's spill batch (installs the entry
  /// as kStaging immediately so concurrent reads can join).
  void StageSpill(cache::ControllerId ctrl, const cache::PageKey& key,
                  util::Bytes data, bool admission);
  void FlushStaging(cache::ControllerId ctrl);

  void MaybeCool(cache::ControllerId ctrl, const cache::PageKey& skip);
  void MaybeDemote(cache::ControllerId ctrl, bool force);
  void IssueDemote(cache::ControllerId ctrl,
                   std::vector<cache::PageKey> batch,
                   std::function<void(bool)> done);
  /// Drop clean cold entries until the lane is at/below `target_pages`.
  void TrimClean(cache::ControllerId ctrl, std::uint64_t target_pages);

  void BeginOp() { ++pending_ops_; }
  void EndOp();
  void CheckDrain();

  sim::Engine& engine_;
  cache::CacheCluster& cluster_;
  Config config_;
  HeatTracker heat_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Cluster-wide single-location index: page -> holding blade.
  std::map<cache::PageKey, cache::ControllerId> loc_;
  qos::Scheduler* qos_ = nullptr;
  qos::TenantId qos_tenant_ = qos::kDefaultTenant;
  obs::Tracer* tracer_ = nullptr;
  const cache::WriteDedupIndex* dedup_ = nullptr;
  Stats stats_;
  std::uint64_t pending_ops_ = 0;  // in-flight flash writes + demote batches
  std::vector<std::function<void(bool)>> drain_waiters_;
};

}  // namespace nlss::tier
