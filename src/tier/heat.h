// HeatTracker: deterministic per-page access-temperature accounting for
// the tier placement engine (E19).
//
// Pure LRU cannot distinguish "touched once, never again" from "touched
// every few milliseconds" — exactly the distinction a DRAM -> flash ->
// disk placement needs.  The tracker keeps a small saturating counter per
// page, decayed by epoch: heat is halved (shifted) once per elapsed
// `epoch_ns` of *simulated* time, computed lazily from sim::Engine::now()
// at touch/query time.  No wall clock, no timers, no background events —
// two same-seed runs decay identically, and an idle tracker schedules
// nothing (the DES event queue still drains).
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "cache/types.h"
#include "sim/engine.h"

namespace nlss::tier {

class HeatTracker {
 public:
  struct Config {
    /// Simulated time per decay epoch; each elapsed epoch halves heat.
    /// 20 ms spans a few closed-loop disk round-trips, so a page must be
    /// re-touched on that timescale to stay warm.
    sim::Tick epoch_ns = 20 * 1000 * 1000;
    /// Right-shift applied per elapsed epoch (1 = halve).
    std::uint32_t decay_shift = 1;
    /// Heat added per touch.
    std::uint32_t touch_weight = 4;
    /// Saturation ceiling (keeps decay arithmetic in 32 bits).
    std::uint32_t max_heat = 1u << 20;
  };

  HeatTracker(sim::Engine& engine, Config config)
      : engine_(engine), config_(config) {}

  /// Record one access to `key` at the current simulated time.
  void Touch(const cache::PageKey& key);

  /// Decayed heat of `key` as of now (0 when untracked).
  std::uint32_t HeatOf(const cache::PageKey& key) const;

  /// Drop `key`'s cell (page left every tier).
  void Forget(const cache::PageKey& key) { cells_.erase(key); }

  /// Drop every cell (bench reset between phases).
  void Clear() { cells_.clear(); }

  std::size_t tracked() const { return cells_.size(); }

  /// Population histogram over log2(heat) buckets: bucket 0 counts pages
  /// with decayed heat 0, bucket i counts heat in [2^(i-1), 2^i).  The
  /// mgmt `GET /tier` report exposes this.
  static constexpr int kHistogramBuckets = 16;
  std::array<std::uint64_t, kHistogramBuckets> Histogram() const;

 private:
  struct Cell {
    std::uint32_t heat = 0;
    std::uint64_t epoch = 0;  // epoch index the stored heat is valid at
  };

  std::uint64_t EpochNow() const {
    return static_cast<std::uint64_t>(engine_.now()) / config_.epoch_ns;
  }
  std::uint32_t Decayed(const Cell& cell) const;

  sim::Engine& engine_;
  Config config_;
  // Ordered map: the histogram and any future scan feed digests.
  std::map<cache::PageKey, Cell> cells_;
};

}  // namespace nlss::tier
