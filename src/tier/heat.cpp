#include "tier/heat.h"

namespace nlss::tier {

std::uint32_t HeatTracker::Decayed(const Cell& cell) const {
  const std::uint64_t elapsed = EpochNow() - cell.epoch;
  const std::uint64_t shift =
      elapsed * static_cast<std::uint64_t>(config_.decay_shift);
  if (shift >= 32) return 0;
  return cell.heat >> shift;
}

void HeatTracker::Touch(const cache::PageKey& key) {
  Cell& cell = cells_[key];
  const std::uint32_t decayed = Decayed(cell);
  cell.heat = decayed + config_.touch_weight;
  if (cell.heat > config_.max_heat) cell.heat = config_.max_heat;
  cell.epoch = EpochNow();
}

std::uint32_t HeatTracker::HeatOf(const cache::PageKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return 0;
  return Decayed(it->second);
}

std::array<std::uint64_t, HeatTracker::kHistogramBuckets>
HeatTracker::Histogram() const {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  for (const auto& [key, cell] : cells_) {
    const std::uint32_t h = Decayed(cell);
    int b = 0;
    while ((1u << b) <= h && b + 1 < kHistogramBuckets) ++b;
    ++buckets[b];
  }
  return buckets;
}

}  // namespace nlss::tier
