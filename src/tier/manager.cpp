#include "tier/manager.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::tier {

namespace {

/// Race-detector key for a page's tier placement (flash entry, loc index,
/// tracked heat) — one key per page, same unit EraseEntry/StageSpill move.
inline std::uint64_t RaceKey(const cache::PageKey& key) {
  return check::AccessKey(0x71E4ull, cache::PageKeyHash{}(key));
}

/// Join: fires `done(all_ok)` once `expect` arrivals land.
struct Join {
  int remaining;
  bool ok = true;
  std::function<void(bool)> done;
  Join(int expect, std::function<void(bool)> d)
      : remaining(expect), done(std::move(d)) {}
  void Arrive(bool r) {
    ok = ok && r;
    if (--remaining == 0 && done) done(ok);
  }
};

}  // namespace

TierManager::TierManager(sim::Engine& engine, cache::CacheCluster& cluster,
                         Config config)
    : engine_(engine),
      cluster_(cluster),
      config_(config),
      heat_(engine, config.heat) {
  lanes_.reserve(cluster_.controller_count());
  for (std::size_t i = 0; i < cluster_.controller_count(); ++i) {
    lanes_.push_back(std::make_unique<Lane>(engine_));
  }
}

void TierManager::AttachQos(qos::Scheduler* qos, qos::TenantId tenant) {
  qos_ = qos;
  qos_tenant_ = tenant;
}

// --- Entry plumbing -----------------------------------------------------------

TierManager::Entry* TierManager::FindEntry(const cache::PageKey& key,
                                           cache::ControllerId* holder) {
  const auto it = loc_.find(key);
  if (it == loc_.end()) return nullptr;
  Lane& lane = LaneOf(it->second);
  const auto eit = lane.flash.find(key);
  NLSS_INVARIANT(kTier, eit != lane.flash.end(),
                 "loc index points at blade %u but the lane has no entry",
                 it->second);
  if (eit == lane.flash.end()) return nullptr;
  if (holder != nullptr) *holder = it->second;
  return &eit->second;
}

void TierManager::SetDirty(Lane& lane, Entry& e, bool dirty) {
  if (e.dirty == dirty) return;
  e.dirty = dirty;
  if (dirty) {
    ++lane.dirty_pages;
  } else {
    NLSS_INVARIANT(kTier, lane.dirty_pages > 0,
                   "dirty page count underflow on clean transition");
    --lane.dirty_pages;
  }
}

void TierManager::EraseEntry(cache::ControllerId holder,
                             const cache::PageKey& key) {
  Lane& lane = LaneOf(holder);
  const auto eit = lane.flash.find(key);
  if (eit == lane.flash.end()) return;
  NLSS_ACCESS(kTier, RaceKey(key), kWrite);
  Entry& e = eit->second;
  // Joined readers must not be dropped with the entry: serve them with the
  // data that was current when the entry went away.
  if (!e.waiters.empty()) {
    sim::Engine::Batch wake(engine_);
    for (auto& w : e.waiters) {
      wake.Add(0, [w = std::move(w), data = e.data]() mutable {
        w(true, std::move(data));
      });
    }
    e.waiters.clear();
  }
  SetDirty(lane, e, false);
  lane.flash.erase(eit);
  loc_.erase(key);
}

bool TierManager::MakeRoom(cache::ControllerId ctrl, std::uint64_t need) {
  Lane& lane = LaneOf(ctrl);
  if (need == 0) return true;
  // Coldest clean settled entries go first; key order breaks heat ties so
  // the choice is deterministic.
  std::vector<std::pair<std::uint32_t, cache::PageKey>> candidates;
  for (const auto& [key, e] : lane.flash) {
    if (e.dirty || e.state != EntryState::kReady) continue;
    // Victim ranking reads each candidate's heat: a same-tick unrelated
    // heat bump would change the sort, and with it which page is dropped.
    NLSS_ACCESS(kTier, RaceKey(key), kRead);
    candidates.emplace_back(heat_.HeatOf(key), key);
  }
  if (candidates.size() < need) return false;
  std::sort(candidates.begin(), candidates.end());
  for (std::uint64_t i = 0; i < need; ++i) {
    EraseEntry(ctrl, candidates[i].second);
    ++stats_.drops;
  }
  return true;
}

// --- Demand reads -------------------------------------------------------------

bool TierManager::TierRead(cache::ControllerId ctrl, const cache::PageKey& key,
                           cache::BackingStore::ReadCallback cb,
                           obs::TraceContext ctx) {
  cache::ControllerId holder = cache::kNoController;
  Entry* e = FindEntry(key, &holder);
  if (e == nullptr) {
    ++stats_.flash_misses;
    return false;
  }
  if (!cluster_.IsAlive(holder)) {
    ++stats_.unreachable;
    if (!e->dirty) {
      // Clean entry == disk copy: fall through and read it from disk.
      ++stats_.flash_misses;
      return false;
    }
    // The only current copy sits behind a dead blade.  Serving the stale
    // disk version would be silent corruption — fail the read honestly.
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false, {}); });
    return true;
  }
  NLSS_ACCESS(kTier, RaceKey(key), kRead);     // entry state drives the serve
  NLSS_ACCESS(kTier, RaceKey(key), kCommute);  // heat bump commutes
  heat_.Touch(key);
  ++stats_.flash_hits;
  if (e->state == EntryState::kStaging) {
    // The flash fill is still in flight: join it instead of re-fetching.
    ++stats_.joins;
    e->waiters.push_back(std::move(cb));
    return true;
  }
  Lane& lane = LaneOf(holder);
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kTier, "tier.flash_read");
  util::Bytes data = e->data;  // copy now: the entry may move underneath us
  const std::uint64_t bytes = data.size();
  if (!e->dirty) {
    // Promotion: the page is about to live in DRAM and the disk copy is
    // current, so the flash slot is redundant — move, don't replicate
    // (keeps the one-location invariant and frees flash for colder data).
    ++stats_.promotions;
    EraseEntry(holder, key);
  }
  sim::Tick hop = 0;
  if (ctrl != holder) {
    ++stats_.remote_reads;
    hop = 2 * config_.remote_hop_ns;
  }
  const sim::Tick done = lane.nvme.Acquire(
      config_.flash_read_ns +
      static_cast<sim::Tick>(static_cast<double>(bytes) *
                             config_.flash_ns_per_byte));
  engine_.ScheduleAt(done + hop,
                     [cb = std::move(cb), data = std::move(data), span] {
                       obs::EndSpan(span);
                       cb(true, data);
                     });
  return true;
}

// --- Write-back absorption ----------------------------------------------------

bool TierManager::TierWriteBack(cache::ControllerId ctrl,
                                const std::vector<cache::TierPageSnap>& pages,
                                const util::Bytes& data,
                                cache::BackingStore::WriteCallback cb,
                                obs::TraceContext ctx) {
  Lane& lane = LaneOf(ctrl);
  const std::uint32_t page_bytes = cluster_.config().page_bytes;
  assert(data.size() == pages.size() * static_cast<std::size_t>(page_bytes));

  // A page flash-resident on another blade moves here: the write-back's
  // blade is the page's current owner, and two flash copies would break
  // the single-location invariant.
  std::uint64_t need = 0;
  bool resident_dirty = false;
  for (const cache::TierPageSnap& s : pages) {
    const auto it = loc_.find(s.key);
    if (it == loc_.end()) {
      ++need;
      continue;
    }
    if (it->second != ctrl) {
      EraseEntry(it->second, s.key);
      ++need;
      continue;
    }
    if (lane.flash.find(s.key)->second.dirty) resident_dirty = true;
  }
  const std::uint64_t occupied = lane.flash.size();
  const std::uint64_t free = config_.flash_capacity_pages > occupied
                                 ? config_.flash_capacity_pages - occupied
                                 : 0;
  if (free < need && !MakeRoom(ctrl, need - free) && !resident_dirty) {
    // Can't place the run and no page forces us to take it.  Drop any
    // resident clean copies first: after the caller's disk write they
    // would be stale, and a stale clean entry is exactly what the
    // "clean == disk" rule forbids.
    for (const cache::TierPageSnap& s : pages) {
      const auto it = loc_.find(s.key);
      if (it != loc_.end() && it->second == ctrl) {
        EraseEntry(ctrl, s.key);
        ++stats_.drops;
      }
    }
    ++stats_.declines;
    return false;
  }
  // If a run page is already dirty in flash we must absorb even when it
  // overshoots capacity: letting the caller write disk directly would race
  // our pending demotion of the older flash data.  The demotion pipeline
  // drains the overshoot.

  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kTier, "tier.absorb");
  std::vector<std::pair<cache::PageKey, std::uint64_t>> absorbed;
  absorbed.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const cache::TierPageSnap& s = pages[i];
    // Same ghost-write audit the direct flush path runs: a cancelled write
    // id may only still own a dirty page when the cancel demonstrably
    // raced the application.
    if (dedup_ != nullptr && s.wid.valid()) {
      NLSS_INVARIANT(kTier,
                     dedup_->Lookup(s.wid) != cache::WriteState::kCancelled ||
                         dedup_->stats().late_cancels > 0,
                     "absorbing write-back of cancelled write id "
                     "(writer=%llu seq=%llu)",
                     static_cast<unsigned long long>(s.wid.writer),
                     static_cast<unsigned long long>(s.wid.seq));
    }
    NLSS_ACCESS(kTier, RaceKey(s.key), kWrite);
    Entry& e = lane.flash[s.key];
    loc_[s.key] = ctrl;
    e.data.assign(data.begin() + i * page_bytes,
                  data.begin() + (i + 1) * page_bytes);
    SetDirty(lane, e, true);
    e.dirty_epoch = s.dirty_epoch;
    e.wid = s.wid;
    ++e.seq;
    // The NVMe program is in flight until the batched write below lands;
    // reads meanwhile join the entry instead of hitting disk.
    if (e.state == EntryState::kReady) e.state = EntryState::kStaging;
    absorbed.emplace_back(s.key, e.seq);
    heat_.Touch(s.key);
    ++stats_.writeback_absorbs;
  }
  BeginOp();
  const sim::Tick done = lane.nvme.Acquire(
      config_.flash_write_ns +
      static_cast<sim::Tick>(static_cast<double>(data.size()) *
                             config_.flash_ns_per_byte));
  engine_.ScheduleAt(done, [this, ctrl, absorbed = std::move(absorbed), span,
                            cb = std::move(cb)] {
    Lane& l = LaneOf(ctrl);
    // One batched insertion wakes every waiter across the absorbed run.
    sim::Engine::Batch wake(engine_);
    for (const auto& [key, seq] : absorbed) {
      const auto eit = l.flash.find(key);
      if (eit == l.flash.end()) continue;  // moved/erased while in flight
      NLSS_ACCESS(kTier, RaceKey(key), kWrite);
      Entry& e = eit->second;
      NLSS_INVARIANT(kTier, e.seq >= seq,
                     "entry sequence ran backwards during absorb");
      if (e.state == EntryState::kStaging) {
        e.state = EntryState::kReady;
        for (auto& w : e.waiters) {
          wake.Add(0, [w = std::move(w), data = e.data]() mutable {
            w(true, std::move(data));
          });
        }
        e.waiters.clear();
      }
    }
    wake.Commit();
    obs::EndSpan(span);
    cb(true);  // durable in flash: the flush settles now
    MaybeDemote(ctrl, /*force=*/false);
    EndOp();
  });
  return true;
}

// --- Clean spills & admission -------------------------------------------------

void TierManager::OnCleanEvict(cache::ControllerId ctrl,
                               const cache::PageKey& key,
                               const util::Bytes& data) {
  // Opportunistic while the lane has free capacity (the whole point of a
  // flash tier is to capture what DRAM cannot hold); heat-gated only once
  // admitting means evicting something else.
  if (!LaneHasRoom(ctrl) && heat_.HeatOf(key) < config_.spill_min_heat) {
    ++stats_.spill_skips;
    return;
  }
  StageSpill(ctrl, key, data, /*admission=*/false);
}

void TierManager::OnDiskRead(cache::ControllerId ctrl,
                             const cache::PageKey& key,
                             const util::Bytes& data) {
  if (!LaneHasRoom(ctrl) && heat_.HeatOf(key) < config_.admit_min_heat) {
    return;
  }
  StageSpill(ctrl, key, data, /*admission=*/true);
}

void TierManager::StageSpill(cache::ControllerId ctrl,
                             const cache::PageKey& key, util::Bytes data,
                             bool admission) {
  if (loc_.find(key) != loc_.end()) return;  // already flash-resident
  Lane& lane = LaneOf(ctrl);
  if (lane.flash.size() >= config_.flash_capacity_pages &&
      !MakeRoom(ctrl, 1)) {
    return;  // flash full of dirty/in-flight data: let the page fall to disk
  }
  NLSS_ACCESS(kTier, RaceKey(key), kWrite);
  Entry& e = lane.flash[key];
  loc_[key] = ctrl;
  e.data = std::move(data);
  e.state = EntryState::kStaging;  // clean: disk already holds this data
  lane.staging.push_back(key);
  if (admission) {
    ++stats_.admits;
  } else {
    ++stats_.spills;
  }
  if (lane.staging.size() >= config_.spill_batch_pages) {
    FlushStaging(ctrl);
  } else if (lane.staging.size() == 1) {
    // Arm the one-shot age-out for this batch generation.  FlushStaging
    // bumps the generation, so a timer for an already-flushed batch is a
    // no-op and the DES queue never holds a standing timer.
    const std::uint64_t gen = lane.staging_gen;
    engine_.Schedule(config_.spill_flush_delay_ns, [this, ctrl, gen] {
      if (LaneOf(ctrl).staging_gen == gen) FlushStaging(ctrl);
    });
  }
}

void TierManager::FlushStaging(cache::ControllerId ctrl) {
  Lane& lane = LaneOf(ctrl);
  ++lane.staging_gen;
  if (lane.staging.empty()) return;
  std::vector<cache::PageKey> batch = std::move(lane.staging);
  lane.staging.clear();
  std::uint64_t bytes = 0;
  for (const cache::PageKey& key : batch) {
    const auto eit = lane.flash.find(key);
    if (eit != lane.flash.end()) bytes += eit->second.data.size();
  }
  BeginOp();
  const sim::Tick done = lane.nvme.Acquire(
      config_.flash_write_ns +
      static_cast<sim::Tick>(static_cast<double>(bytes) *
                             config_.flash_ns_per_byte));
  engine_.ScheduleAt(done, [this, ctrl, batch = std::move(batch)] {
    Lane& l = LaneOf(ctrl);
    // As in the absorb path: stage every waiter wakeup, push once.
    sim::Engine::Batch wake(engine_);
    for (const cache::PageKey& key : batch) {
      const auto eit = l.flash.find(key);
      if (eit == l.flash.end()) continue;
      Entry& e = eit->second;
      if (e.state != EntryState::kStaging) continue;
      NLSS_ACCESS(kTier, RaceKey(key), kWrite);
      e.state = EntryState::kReady;
      for (auto& w : e.waiters) {
        wake.Add(0, [w = std::move(w), data = e.data]() mutable {
          w(true, std::move(data));
        });
      }
      e.waiters.clear();
    }
    wake.Commit();
    MaybeDemote(ctrl, /*force=*/false);
    EndOp();
  });
}

// --- Heat & cooling -----------------------------------------------------------

void TierManager::OnAccess(cache::ControllerId ctrl, const cache::PageKey& key,
                           bool /*write*/) {
  // Heat bumps commute with each other but not with a same-tick victim
  // ranking that reads this page's heat (kRead in the scan loops).
  NLSS_ACCESS(kTier, RaceKey(key), kCommute);
  heat_.Touch(key);
  MaybeCool(ctrl, key);
}

void TierManager::MaybeCool(cache::ControllerId ctrl,
                            const cache::PageKey& skip) {
  Lane& lane = LaneOf(ctrl);
  if (engine_.now() < lane.next_cool) return;
  cache::CacheNode& node = cluster_.node(ctrl);
  const double occ = node.capacity_pages() == 0
                         ? 0.0
                         : static_cast<double>(node.size()) /
                               static_cast<double>(node.capacity_pages());
  if (occ < config_.cool_watermark) return;
  lane.next_cool = engine_.now() + config_.cool_interval_ns;
  ++stats_.cool_scans;
  // Collect steal candidates from the LRU front first — ForEach walks the
  // node in LRU order and we must not mutate the node mid-walk.
  std::vector<cache::PageKey> victims;
  std::uint32_t seen = 0;
  node.ForEach([&](const cache::PageKey& key, const cache::CacheNode::Frame& f) {
    if (seen >= config_.victim_scan_frames ||
        victims.size() >= config_.cool_batch_pages) {
      return;
    }
    ++seen;
    if (f.dirty || f.busy || f.is_replica || key == skip) return;
    // Cooling reads DRAM frame flags — cache-domain state, keyed like the
    // cluster's own tags so a same-tick frame mutation conflicts here.
    NLSS_ACCESS(kCache, cache::PageKeyHash{}(key), kRead);
    victims.push_back(key);
  });
  for (const cache::PageKey& key : victims) {
    util::Bytes data;
    if (!cluster_.StealCleanFrame(ctrl, key, &data)) continue;
    if (loc_.find(key) == loc_.end() &&
        (LaneHasRoom(ctrl) ||
         heat_.HeatOf(key) >= config_.spill_min_heat)) {
      ++stats_.cool_spills;
      StageSpill(ctrl, key, std::move(data), /*admission=*/false);
    } else {
      // Flash already holds it, or it is stone cold: the clean data is on
      // disk (or in flash) — discard the DRAM copy.
      ++stats_.cool_drops;
    }
  }
}

std::optional<cache::PageKey> TierManager::PickVictim(
    cache::ControllerId /*ctrl*/, const cache::CacheNode& node) {
  std::optional<cache::PageKey> best;
  std::uint32_t best_heat = 0;
  std::uint32_t seen = 0;
  node.ForEach([&](const cache::PageKey& key, const cache::CacheNode::Frame& f) {
    if (seen >= config_.victim_scan_frames) return;
    ++seen;
    if (f.dirty || f.busy || f.is_replica) return;
    NLSS_ACCESS(kTier, RaceKey(key), kRead);
    const std::uint32_t h = heat_.HeatOf(key);
    if (!best || h < best_heat) {
      best = key;
      best_heat = h;
    }
  });
  return best;
}

// --- Demotion pipeline --------------------------------------------------------

void TierManager::MaybeDemote(cache::ControllerId ctrl, bool force) {
  Lane& lane = LaneOf(ctrl);
  if (lane.demote_inflight) return;
  if (!cluster_.IsAlive(ctrl)) return;  // resumes after revival
  const std::uint64_t high = static_cast<std::uint64_t>(
      config_.demote_watermark *
      static_cast<double>(config_.flash_capacity_pages));
  if (!force && lane.flash.size() < high) return;
  const std::uint64_t target = force
                                   ? 0
                                   : static_cast<std::uint64_t>(
                                         config_.demote_target *
                                         static_cast<double>(
                                             config_.flash_capacity_pages));
  // Coldest settled dirty entries first (key order on ties).
  std::vector<std::pair<std::uint32_t, cache::PageKey>> dirty;
  for (const auto& [key, e] : lane.flash) {
    if (!e.dirty || e.state != EntryState::kReady) continue;
    NLSS_ACCESS(kTier, RaceKey(key), kRead);
    dirty.emplace_back(heat_.HeatOf(key), key);
  }
  if (dirty.empty()) {
    if (!force) TrimClean(ctrl, target);
    return;
  }
  std::sort(dirty.begin(), dirty.end());
  std::vector<cache::PageKey> batch;
  const std::size_t n = std::min<std::size_t>(
      dirty.size(), force ? dirty.size() : config_.demote_batch_pages);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(dirty[i].second);

  lane.demote_inflight = true;
  BeginOp();
  obs::TraceContext root;
  if (tracer_ != nullptr) {
    root = tracer_->StartTrace(obs::Layer::kTier, "tier.demote", "tier");
  }
  auto finish = [this, ctrl, force, target, root](bool ok) {
    Lane& l = LaneOf(ctrl);
    l.demote_inflight = false;
    if (root.sampled()) root.tracer->EndTrace(root, ok);
    if (!force && l.flash.size() > target) TrimClean(ctrl, target);
    MaybeDemote(ctrl, force);
    EndOp();
  };
  const std::uint64_t cost_bytes =
      static_cast<std::uint64_t>(batch.size()) * cluster_.config().page_bytes;
  auto launch = std::make_shared<std::function<void(std::function<void(bool)>)>>(
      [this, ctrl, batch = std::move(batch)](
          std::function<void(bool)> done) mutable {
        IssueDemote(ctrl, std::move(batch), std::move(done));
      });
  // The whole batch is one QoS admission: demotion is background traffic
  // and must queue behind foreground tenants' tokens.  Rejections retry
  // after a deterministic backoff (the MetaService pattern).
  auto submit = [this, ctrl, launch, finish, cost_bytes](auto&& self) -> void {
    if (qos_ == nullptr) {
      (*launch)(finish);
      return;
    }
    const std::uint32_t blade = ctrl % qos_->blades();
    qos::Scheduler::Launch qlaunch = [launch,
                                      finish](std::function<void(bool)> done) {
      (*launch)([finish, done = std::move(done)](bool ok) {
        if (done) done(ok);
        finish(ok);
      });
    };
    if (!qos_->Submit(blade, qos_tenant_, cost_bytes, std::move(qlaunch),
                      {})) {
      ++stats_.qos_rejects;
      engine_.Schedule(config_.qos_retry_delay_ns,
                       [self]() mutable { self(self); });
    }
  };
  submit(submit);
}

void TierManager::IssueDemote(cache::ControllerId ctrl,
                              std::vector<cache::PageKey> batch,
                              std::function<void(bool)> done) {
  Lane& lane = LaneOf(ctrl);
  // Flash read of the batch, then one backing write per page (pages in a
  // demote batch are rarely disk-contiguous, unlike a flush run).
  std::uint64_t bytes = 0;
  std::vector<std::tuple<cache::PageKey, std::uint64_t, util::Bytes>> work;
  work.reserve(batch.size());
  for (const cache::PageKey& key : batch) {
    const auto eit = lane.flash.find(key);
    if (eit == lane.flash.end() || !eit->second.dirty ||
        eit->second.state != EntryState::kReady) {
      continue;  // raced an erase/absorb since selection
    }
    Entry& e = eit->second;
    NLSS_ACCESS(kTier, RaceKey(key), kWrite);
    e.state = EntryState::kDemoting;
    bytes += e.data.size();
    work.emplace_back(key, e.seq, e.data);
  }
  if (work.empty()) {
    engine_.Schedule(0, [done = std::move(done)] {
      if (done) done(true);
    });
    return;
  }
  const sim::Tick read_done = lane.nvme.Acquire(
      config_.flash_read_ns +
      static_cast<sim::Tick>(static_cast<double>(bytes) *
                             config_.flash_ns_per_byte));
  engine_.ScheduleAt(read_done, [this, ctrl, work = std::move(work),
                                 done = std::move(done)]() mutable {
    auto join = std::make_shared<Join>(static_cast<int>(work.size()),
                                       std::move(done));
    for (auto& [key, seq, data] : work) {
      cluster_.TierBackingWrite(
          ctrl, key, data,
          [this, ctrl, key, seq, join](bool ok) {
            Lane& l = LaneOf(ctrl);
            const auto eit = l.flash.find(key);
            if (eit != l.flash.end()) {
              Entry& e = eit->second;
              // Sequence-guarded: the e.seq == seq check re-validates the
              // demote snapshot (stale_demotes path otherwise), so this
              // completion converges against any same-tick content access.
              NLSS_ACCESS(kTier, check::EpochGuardedKey(RaceKey(key)),
                          kWrite);
              if (e.state == EntryState::kDemoting) e.state = EntryState::kReady;
              NLSS_INVARIANT(kTier, e.seq >= seq,
                             "entry sequence ran backwards during demote");
              if (ok && e.seq == seq && e.dirty) {
                // Disk now holds exactly what we read: the entry is clean.
                SetDirty(l, e, false);
                ++stats_.demotions;
              } else if (ok) {
                // A newer write-back absorbed meanwhile; its data is still
                // only in flash, so the entry must stay dirty.
                ++stats_.stale_demotes;
              }
            }
            join->Arrive(ok);
          });
    }
  });
}

void TierManager::TrimClean(cache::ControllerId ctrl,
                            std::uint64_t target_pages) {
  Lane& lane = LaneOf(ctrl);
  if (lane.flash.size() <= target_pages) return;
  const std::uint64_t excess = lane.flash.size() - target_pages;
  std::vector<std::pair<std::uint32_t, cache::PageKey>> candidates;
  for (const auto& [key, e] : lane.flash) {
    if (e.dirty || e.state != EntryState::kReady) continue;
    // Victim ranking reads each candidate's heat: a same-tick unrelated
    // heat bump would change the sort, and with it which page is dropped.
    NLSS_ACCESS(kTier, RaceKey(key), kRead);
    candidates.emplace_back(heat_.HeatOf(key), key);
  }
  std::sort(candidates.begin(), candidates.end());
  const std::uint64_t n =
      std::min<std::uint64_t>(excess, candidates.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    EraseEntry(ctrl, candidates[i].second);
    ++stats_.drops;
  }
}

// --- Drain (FlushAll durability) ----------------------------------------------

bool TierManager::HasDirty() const {
  for (const auto& lane : lanes_) {
    if (lane->dirty_pages > 0) return true;
  }
  return false;
}

void TierManager::DrainDirty(std::function<void(bool)> cb) {
  drain_waiters_.push_back(std::move(cb));
  for (cache::ControllerId c = 0; c < lanes_.size(); ++c) {
    FlushStaging(c);
  }
  CheckDrain();
}

void TierManager::EndOp() {
  NLSS_INVARIANT(kTier, pending_ops_ > 0, "pending op count underflow");
  --pending_ops_;
  CheckDrain();
}

void TierManager::CheckDrain() {
  if (drain_waiters_.empty()) return;
  bool dirty_reachable = false;
  for (cache::ControllerId c = 0; c < lanes_.size(); ++c) {
    Lane& lane = *lanes_[c];
    if (lane.dirty_pages == 0 || !cluster_.IsAlive(c)) continue;
    dirty_reachable = true;
    if (!lane.demote_inflight) MaybeDemote(c, /*force=*/true);
  }
  if (dirty_reachable || pending_ops_ > 0) return;
  // Dirty entries behind dead blades stay in (persistent) flash and resume
  // demotion after revival; they cannot block a drain forever.
  std::vector<std::function<void(bool)>> waiters = std::move(drain_waiters_);
  drain_waiters_.clear();
  for (auto& w : waiters) {
    engine_.Schedule(0, [w = std::move(w)] { w(true); });
  }
}

// --- Introspection & metrics --------------------------------------------------

std::uint64_t TierManager::FlashPages(cache::ControllerId ctrl) const {
  return lanes_[ctrl]->flash.size();
}

std::uint64_t TierManager::FlashDirtyPages(cache::ControllerId ctrl) const {
  return lanes_[ctrl]->dirty_pages;
}

void TierManager::AttachObs(obs::Hub* hub) {
  if (hub == nullptr) return;
  auto& m = hub->metrics();
  m.AddCallback("nlss_tier_flash_hits_total",
                "Demand reads served from the flash tier",
                [this] { return static_cast<double>(stats_.flash_hits); });
  m.AddCallback("nlss_tier_flash_misses_total",
                "Demand reads that fell through to disk",
                [this] { return static_cast<double>(stats_.flash_misses); });
  m.AddCallback("nlss_tier_spills_total",
                "Clean DRAM evictions written to flash",
                [this] { return static_cast<double>(stats_.spills); });
  m.AddCallback("nlss_tier_admits_total",
                "Disk reads admitted into flash by heat",
                [this] { return static_cast<double>(stats_.admits); });
  m.AddCallback(
      "nlss_tier_absorbs_total", "Dirty write-back pages absorbed into flash",
      [this] { return static_cast<double>(stats_.writeback_absorbs); });
  m.AddCallback("nlss_tier_demotions_total",
                "Dirty flash pages demoted to disk",
                [this] { return static_cast<double>(stats_.demotions); });
  m.AddCallback("nlss_tier_promotions_total",
                "Clean flash hits promoted up to DRAM",
                [this] { return static_cast<double>(stats_.promotions); });
  m.AddCallback("nlss_tier_drops_total",
                "Clean flash entries evicted to make room",
                [this] { return static_cast<double>(stats_.drops); });
  m.AddCallback("nlss_tier_joins_total",
                "Reads that joined an in-flight flash fill",
                [this] { return static_cast<double>(stats_.joins); });
  m.AddCallback("nlss_tier_stale_demotes_total",
                "Demotions that raced a newer write-back (stayed dirty)",
                [this] { return static_cast<double>(stats_.stale_demotes); });
  m.AddCallback("nlss_tier_heat_tracked",
                "Pages with a live heat cell",
                [this] { return static_cast<double>(heat_.tracked()); });
  for (cache::ControllerId c = 0; c < lanes_.size(); ++c) {
    const obs::Labels labels = {{"blade", std::to_string(c)}};
    m.AddCallback(
        "nlss_tier_flash_pages", "Flash-resident pages on this blade",
        [this, c] { return static_cast<double>(lanes_[c]->flash.size()); },
        labels);
    m.AddCallback(
        "nlss_tier_flash_dirty_pages",
        "Flash pages holding the only durable copy",
        [this, c] { return static_cast<double>(lanes_[c]->dirty_pages); },
        labels);
  }
}

}  // namespace nlss::tier
