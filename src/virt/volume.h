// DemandMappedVolume — the paper's DMSD (§3): a virtual disk whose blocks
// are mapped to pool extents only when first written.  Host applications
// see a fixed-size device (possibly far larger than physical storage);
// physical consumption tracks actual data.  Freeing (trim) returns extents
// to the shared pool.
//
// Also provides point-in-time snapshots (§7.2) via extent-granular
// copy-on-write: a snapshot freezes the current mapping; writes to shared
// extents allocate a private copy first.
//
// Implements cache::BackingStore, so volumes slot directly beneath the
// coherent cache cluster.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/backing.h"
#include "virt/pool.h"

namespace nlss::virt {

using SnapshotId = std::uint32_t;

class DemandMappedVolume final : public cache::BackingStore {
 public:
  /// `virtual_blocks` is the advertised device size; nothing is allocated
  /// until written.
  DemandMappedVolume(sim::Engine& engine, StoragePool& pool,
                     std::uint64_t virtual_blocks, std::string tenant,
                     std::uint64_t volume_id);
  ~DemandMappedVolume() override;

  // --- BackingStore -------------------------------------------------------
  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {}) override;
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext ctx = {}) override;
  std::uint64_t CapacityBlocks() const override { return virtual_blocks_; }
  std::uint32_t block_size() const override { return pool_.block_size(); }

  // --- DMSD operations ------------------------------------------------------
  /// Discard a block range.  Fully covered extents are unmapped and
  /// returned to the pool; partially covered ranges are zeroed.
  void Trim(std::uint64_t block, std::uint64_t count, WriteCallback cb);

  /// Eagerly map the whole device (traditional fully-provisioned volume).
  /// Returns false if the pool lacks space.
  bool Preallocate();

  /// Grow the advertised size (always succeeds: no physical cost).
  void Resize(std::uint64_t new_virtual_blocks);

  // --- Snapshots -------------------------------------------------------------
  SnapshotId CreateSnapshot();
  void DeleteSnapshot(SnapshotId id);
  bool HasSnapshot(SnapshotId id) const { return snapshots_.count(id) > 0; }
  /// Read from a snapshot's frozen image.
  void ReadSnapshotBlocks(SnapshotId id, std::uint64_t block,
                          std::uint32_t count, ReadCallback cb);

  // --- Accounting -------------------------------------------------------------
  std::uint64_t MappedExtents() const { return mapped_extents_; }
  std::uint64_t AllocatedBytes() const {
    return mapped_extents_ * pool_.extent_bytes();
  }
  std::uint64_t VirtualBytes() const {
    return virtual_blocks_ * block_size();
  }
  std::uint64_t cow_copies() const { return cow_copies_; }
  const std::string& tenant() const { return tenant_; }
  std::uint64_t volume_id() const { return volume_id_; }

 private:
  using ExtentMap = std::vector<std::optional<PhysExtent>>;

  std::uint64_t ExtentCount() const;
  static std::uint64_t RefKey(const PhysExtent& e) {
    return (static_cast<std::uint64_t>(e.group) << 48) | e.extent;
  }
  void Ref(const PhysExtent& e) { ++refs_[RefKey(e)]; }
  /// Decrement; frees the extent when the count reaches zero.
  void Unref(const PhysExtent& e);
  std::uint32_t RefCount(const PhysExtent& e) const;

  // Per-virtual-extent write serialization (allocation / COW transitions).
  void LockExtent(std::uint64_t vext, std::function<void()> grant);
  void UnlockExtent(std::uint64_t vext);

  /// Write one in-extent range, handling allocate-on-write and COW.
  /// Assumes the extent lock is held; releases it before cb.
  void WriteWithinExtent(std::uint64_t vext, std::uint32_t offset_blocks,
                         std::span<const std::uint8_t> data, WriteCallback cb,
                         obs::TraceContext ctx = {});

  /// Read via an arbitrary mapping (current or snapshot).
  void ReadVia(const ExtentMap& map, std::uint64_t block, std::uint32_t count,
               ReadCallback cb, obs::TraceContext ctx = {});

  sim::Engine& engine_;
  StoragePool& pool_;
  std::uint64_t virtual_blocks_;
  std::string tenant_;
  std::uint64_t volume_id_;
  ExtentMap map_;
  std::unordered_map<std::uint64_t, std::uint32_t> refs_;
  std::map<SnapshotId, ExtentMap> snapshots_;
  SnapshotId next_snapshot_ = 1;
  std::uint64_t mapped_extents_ = 0;  // current map only (excl. snapshots)
  std::uint64_t cow_copies_ = 0;
  std::map<std::uint64_t, std::deque<std::function<void()>>> extent_locks_;
};

}  // namespace nlss::virt
