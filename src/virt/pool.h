// StoragePool: aggregates RAID groups into one physical extent space with a
// free-extent allocator.  Virtual volumes (virt/volume.h) map their address
// space onto pool extents; the pool routes I/O to the owning RAID group.
//
// This is the substrate for the paper's §3 virtualization story: one pool,
// many volumes, slack space amortized across all of them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "raid/group.h"
#include "util/bytes.h"

namespace nlss::virt {

/// Physical extent handle: (group index, extent index within group).
struct PhysExtent {
  std::uint32_t group = 0;
  std::uint64_t extent = 0;
  friend bool operator==(const PhysExtent&, const PhysExtent&) = default;
};

class StoragePool {
 public:
  /// All groups must share a block size.  `extent_blocks` is the allocation
  /// granule (e.g. 1024 blocks = 4 MiB at 4 KiB blocks).
  StoragePool(std::vector<raid::RaidGroup*> groups,
              std::uint32_t extent_blocks);

  /// Allocate a free extent; nullopt when the pool is exhausted.
  std::optional<PhysExtent> Allocate();
  void Free(const PhysExtent& e);

  std::uint64_t TotalExtents() const { return total_extents_; }
  std::uint64_t FreeExtents() const { return free_.size(); }
  std::uint64_t AllocatedExtents() const {
    return total_extents_ - free_.size();
  }
  std::uint32_t extent_blocks() const { return extent_blocks_; }
  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t extent_bytes() const {
    return static_cast<std::uint64_t>(extent_blocks_) * block_size_;
  }

  using ReadCallback = std::function<void(bool, util::Bytes)>;
  using WriteCallback = std::function<void(bool)>;

  /// I/O within one extent (offset/count must not cross the extent end).
  void ReadBlocks(const PhysExtent& e, std::uint32_t offset_blocks,
                  std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {});
  void WriteBlocks(const PhysExtent& e, std::uint32_t offset_blocks,
                   std::span<const std::uint8_t> data, WriteCallback cb,
                   obs::TraceContext ctx = {});

  raid::RaidGroup& group(std::uint32_t i) { return *groups_[i]; }
  std::size_t group_count() const { return groups_.size(); }

 private:
  std::uint64_t BaseBlock(const PhysExtent& e) const {
    return e.extent * extent_blocks_;
  }

  std::vector<raid::RaidGroup*> groups_;
  std::uint32_t extent_blocks_;
  std::uint32_t block_size_;
  std::uint64_t total_extents_ = 0;
  std::deque<PhysExtent> free_;
};

}  // namespace nlss::virt
