#include "virt/volume.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

namespace nlss::virt {
namespace {

struct Join {
  Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;
  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

DemandMappedVolume::DemandMappedVolume(sim::Engine& engine, StoragePool& pool,
                                       std::uint64_t virtual_blocks,
                                       std::string tenant,
                                       std::uint64_t volume_id)
    : engine_(engine),
      pool_(pool),
      virtual_blocks_(virtual_blocks),
      tenant_(std::move(tenant)),
      volume_id_(volume_id) {
  map_.resize(ExtentCount());
}

DemandMappedVolume::~DemandMappedVolume() {
  // Return all extents (current map + snapshots) to the pool.
  for (auto& [id, snap] : snapshots_) {
    for (auto& e : snap) {
      if (e) Unref(*e);
    }
  }
  for (auto& e : map_) {
    if (e) Unref(*e);
  }
}

std::uint64_t DemandMappedVolume::ExtentCount() const {
  const std::uint32_t eb = pool_.extent_blocks();
  return (virtual_blocks_ + eb - 1) / eb;
}

void DemandMappedVolume::Unref(const PhysExtent& e) {
  auto it = refs_.find(RefKey(e));
  assert(it != refs_.end() && it->second > 0);
  if (--it->second == 0) {
    refs_.erase(it);
    pool_.Free(e);
  }
}

std::uint32_t DemandMappedVolume::RefCount(const PhysExtent& e) const {
  auto it = refs_.find(RefKey(e));
  return it == refs_.end() ? 0 : it->second;
}

void DemandMappedVolume::LockExtent(std::uint64_t vext,
                                    std::function<void()> grant) {
  auto [it, inserted] = extent_locks_.try_emplace(vext);
  if (inserted) {
    engine_.Schedule(0, std::move(grant));
  } else {
    it->second.push_back(std::move(grant));
  }
}

void DemandMappedVolume::UnlockExtent(std::uint64_t vext) {
  auto it = extent_locks_.find(vext);
  assert(it != extent_locks_.end());
  if (it->second.empty()) {
    extent_locks_.erase(it);
  } else {
    auto next = std::move(it->second.front());
    it->second.pop_front();
    engine_.Schedule(0, std::move(next));
  }
}

void DemandMappedVolume::ReadVia(const ExtentMap& map, std::uint64_t block,
                                 std::uint32_t count, ReadCallback cb,
                                 obs::TraceContext ctx) {
  assert(block + count <= virtual_blocks_);
  const std::uint32_t eb = pool_.extent_blocks();
  const std::uint32_t bs = block_size();
  auto result = std::make_shared<util::Bytes>(
      static_cast<std::size_t>(count) * bs, 0);

  struct Piece {
    std::uint64_t vext;
    std::uint32_t off;
    std::uint32_t n;
    std::size_t out;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = block;
  std::uint32_t left = count;
  std::size_t out = 0;
  while (left > 0) {
    const std::uint64_t vext = cur / eb;
    const std::uint32_t off = static_cast<std::uint32_t>(cur % eb);
    const std::uint32_t n = std::min(left, eb - off);
    pieces.push_back(Piece{vext, off, n, out});
    cur += n;
    left -= n;
    out += static_cast<std::size_t>(n) * bs;
  }
  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [result, cb = std::move(cb)](bool ok) {
        cb(ok, ok ? std::move(*result) : util::Bytes{});
      });
  for (const Piece& p : pieces) {
    const auto& phys = map[p.vext];
    if (!phys) {
      // Unmapped: reads as zeros (the buffer is pre-zeroed).
      engine_.Schedule(0, [join] { join->Arrive(true); });
      continue;
    }
    pool_.ReadBlocks(
        *phys, p.off, p.n,
        [result, p, bs, join](bool ok, util::Bytes data) {
          if (ok) {
            std::memcpy(result->data() + p.out, data.data(), data.size());
          }
          join->Arrive(ok);
        },
        ctx);
  }
}

void DemandMappedVolume::ReadBlocks(std::uint64_t block, std::uint32_t count,
                                    ReadCallback cb, obs::TraceContext ctx) {
  ReadVia(map_, block, count, std::move(cb), ctx);
}

void DemandMappedVolume::ReadSnapshotBlocks(SnapshotId id, std::uint64_t block,
                                            std::uint32_t count,
                                            ReadCallback cb) {
  auto it = snapshots_.find(id);
  assert(it != snapshots_.end());
  ReadVia(it->second, block, count, std::move(cb));
}

void DemandMappedVolume::WriteWithinExtent(std::uint64_t vext,
                                           std::uint32_t offset_blocks,
                                           std::span<const std::uint8_t> data,
                                           WriteCallback cb,
                                           obs::TraceContext ctx) {
  const std::uint32_t eb = pool_.extent_blocks();
  const std::uint32_t bs = block_size();
  auto finish = [this, vext, cb = std::move(cb)](bool ok) {
    UnlockExtent(vext);
    cb(ok);
  };

  auto& slot = map_[vext];
  const bool needs_alloc = !slot.has_value();
  const bool needs_cow = slot.has_value() && RefCount(*slot) > 1;

  if (!needs_alloc && !needs_cow) {
    pool_.WriteBlocks(*slot, offset_blocks, data, std::move(finish), ctx);
    return;
  }

  const auto fresh = pool_.Allocate();
  if (!fresh) {
    // Out of physical space: the paper's DMSD would alert and expand; we
    // fail the write.
    engine_.Schedule(0, [finish = std::move(finish)]() mutable {
      finish(false);
    });
    return;
  }

  if (needs_alloc) {
    // First touch: initialize the whole extent (zeros merged with the new
    // data) so stale pool content never leaks into the volume.
    util::Bytes init(pool_.extent_bytes(), 0);
    std::memcpy(init.data() + static_cast<std::size_t>(offset_blocks) * bs,
                data.data(), data.size());
    slot = *fresh;
    Ref(*fresh);
    ++mapped_extents_;
    pool_.WriteBlocks(*fresh, 0, init, std::move(finish), ctx);
    return;
  }

  // Copy-on-write: read the shared extent, merge, write the private copy.
  const PhysExtent old = *slot;
  ++cow_copies_;
  util::Bytes patch(data.begin(), data.end());
  pool_.ReadBlocks(
      old, 0, eb,
      [this, vext, old, fresh = *fresh, offset_blocks, bs, ctx,
       patch = std::move(patch),
       finish = std::move(finish)](bool ok, util::Bytes content) mutable {
        if (!ok) {
          finish(false);
          return;
        }
        std::memcpy(content.data() +
                        static_cast<std::size_t>(offset_blocks) * bs,
                    patch.data(), patch.size());
        pool_.WriteBlocks(
            fresh, 0, content,
            [this, vext, old, fresh, finish = std::move(finish)](bool ok2) mutable {
              if (ok2) {
                map_[vext] = fresh;
                Ref(fresh);
                Unref(old);
              } else {
                pool_.Free(fresh);
              }
              finish(ok2);
            },
            ctx);
      },
      ctx);
}

void DemandMappedVolume::WriteBlocks(std::uint64_t block,
                                     std::span<const std::uint8_t> data,
                                     WriteCallback cb, obs::TraceContext ctx) {
  assert(data.size() % block_size() == 0);
  const std::uint32_t count =
      static_cast<std::uint32_t>(data.size() / block_size());
  assert(block + count <= virtual_blocks_);
  const std::uint32_t eb = pool_.extent_blocks();
  const std::uint32_t bs = block_size();

  // Copy once; simulated I/O outlives the caller's buffer.
  auto src = std::make_shared<util::Bytes>(data.begin(), data.end());

  struct Piece {
    std::uint64_t vext;
    std::uint32_t off;
    std::uint32_t n;
    std::size_t src_off;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = block;
  std::uint32_t left = count;
  std::size_t soff = 0;
  while (left > 0) {
    const std::uint64_t vext = cur / eb;
    const std::uint32_t off = static_cast<std::uint32_t>(cur % eb);
    const std::uint32_t n = std::min(left, eb - off);
    pieces.push_back(Piece{vext, off, n, soff});
    cur += n;
    left -= n;
    soff += static_cast<std::size_t>(n) * bs;
  }
  auto join = std::make_shared<Join>(static_cast<int>(pieces.size()),
                                     [src, cb = std::move(cb)](bool ok) {
                                       cb(ok);
                                     });
  for (const Piece& p : pieces) {
    LockExtent(p.vext, [this, p, src, bs, join, ctx] {
      WriteWithinExtent(
          p.vext, p.off,
          std::span<const std::uint8_t>(src->data() + p.src_off,
                                        static_cast<std::size_t>(p.n) * bs),
          [join](bool ok) { join->Arrive(ok); }, ctx);
    });
  }
}

void DemandMappedVolume::Trim(std::uint64_t block, std::uint64_t count,
                              WriteCallback cb) {
  assert(block + count <= virtual_blocks_);
  const std::uint32_t eb = pool_.extent_blocks();
  const std::uint32_t bs = block_size();

  struct Action {
    std::uint64_t vext;
    bool full;
    std::uint32_t off;
    std::uint32_t n;
  };
  std::vector<Action> actions;
  std::uint64_t cur = block;
  std::uint64_t left = count;
  while (left > 0) {
    const std::uint64_t vext = cur / eb;
    const std::uint32_t off = static_cast<std::uint32_t>(cur % eb);
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(left, eb - off));
    actions.push_back(Action{vext, off == 0 && n == eb, off, n});
    cur += n;
    left -= n;
  }
  auto join = std::make_shared<Join>(static_cast<int>(actions.size()),
                                     std::move(cb));
  for (const Action& a : actions) {
    LockExtent(a.vext, [this, a, bs, join] {
      auto& slot = map_[a.vext];
      if (!slot) {
        UnlockExtent(a.vext);
        join->Arrive(true);
        return;
      }
      if (a.full) {
        Unref(*slot);
        slot.reset();
        --mapped_extents_;
        UnlockExtent(a.vext);
        join->Arrive(true);
        return;
      }
      // Partial trim: zero the range (keeps the extent mapped); shared
      // extents get a COW first via the normal write path.
      const util::Bytes zeros(static_cast<std::size_t>(a.n) * bs, 0);
      WriteWithinExtent(a.vext, a.off, zeros,
                        [join](bool ok) { join->Arrive(ok); });
    });
  }
}

bool DemandMappedVolume::Preallocate() {
  if (pool_.FreeExtents() + mapped_extents_ < ExtentCount()) return false;
  for (auto& slot : map_) {
    if (slot) continue;
    const auto fresh = pool_.Allocate();
    if (!fresh) return false;  // raced; should not happen single-threaded
    slot = *fresh;
    Ref(*fresh);
    ++mapped_extents_;
  }
  return true;
}

void DemandMappedVolume::Resize(std::uint64_t new_virtual_blocks) {
  assert(new_virtual_blocks >= virtual_blocks_);
  virtual_blocks_ = new_virtual_blocks;
  map_.resize(ExtentCount());
}

SnapshotId DemandMappedVolume::CreateSnapshot() {
  const SnapshotId id = next_snapshot_++;
  ExtentMap copy = map_;
  for (const auto& e : copy) {
    if (e) Ref(*e);
  }
  snapshots_.emplace(id, std::move(copy));
  return id;
}

void DemandMappedVolume::DeleteSnapshot(SnapshotId id) {
  auto it = snapshots_.find(id);
  assert(it != snapshots_.end());
  for (const auto& e : it->second) {
    if (e) Unref(*e);
  }
  snapshots_.erase(it);
}

}  // namespace nlss::virt
