#include "virt/chargeback.h"

#include "util/units.h"

namespace nlss::virt {

void ChargeBack::Sample() {
  const sim::Tick now = engine_.now();
  const double dt_seconds =
      static_cast<double>(now - last_sample_) / util::kNsPerSec;
  if (dt_seconds > 0) {
    for (const auto* v : volumes_) {
      byte_seconds_[v->tenant()] +=
          static_cast<double>(v->AllocatedBytes()) * dt_seconds;
    }
  }
  last_sample_ = now;
}

std::vector<ChargeBack::Bill> ChargeBack::Report() const {
  std::map<std::string, Bill> by_tenant;
  for (const auto& [tenant, bs] : byte_seconds_) {
    by_tenant[tenant].tenant = tenant;
    by_tenant[tenant].byte_seconds = bs;
  }
  for (const auto* v : volumes_) {
    Bill& b = by_tenant[v->tenant()];
    b.tenant = v->tenant();
    b.current_allocated += v->AllocatedBytes();
    b.current_virtual += v->VirtualBytes();
  }
  std::vector<Bill> out;
  out.reserve(by_tenant.size());
  for (auto& [tenant, bill] : by_tenant) out.push_back(bill);
  return out;
}

double ChargeBack::ByteSeconds(const std::string& tenant) const {
  auto it = byte_seconds_.find(tenant);
  return it == byte_seconds_.end() ? 0.0 : it->second;
}

}  // namespace nlss::virt
