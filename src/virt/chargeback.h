// Charge-back accounting (paper §3: "charge back can reflect actual storage
// usage").  Tenants are billed for byte-hours of *allocated* physical
// storage, sampled against the simulated clock — with demand mapping this
// tracks real consumption instead of provisioned capacity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "virt/volume.h"

namespace nlss::virt {

class ChargeBack {
 public:
  explicit ChargeBack(sim::Engine& engine) : engine_(engine) {}

  void Track(DemandMappedVolume* volume) { volumes_.push_back(volume); }

  /// Accumulate byte-time for each tenant since the previous sample.
  void Sample();

  struct Bill {
    std::string tenant;
    double byte_seconds = 0;       // integral of allocated bytes over time
    std::uint64_t current_allocated = 0;
    std::uint64_t current_virtual = 0;
  };
  std::vector<Bill> Report() const;

  /// Convenience: a tenant's byte-seconds so far.
  double ByteSeconds(const std::string& tenant) const;

 private:
  sim::Engine& engine_;
  std::vector<DemandMappedVolume*> volumes_;
  std::map<std::string, double> byte_seconds_;
  sim::Tick last_sample_ = 0;
};

}  // namespace nlss::virt
