#include "virt/pool.h"

#include <algorithm>
#include <cassert>

namespace nlss::virt {

StoragePool::StoragePool(std::vector<raid::RaidGroup*> groups,
                         std::uint32_t extent_blocks)
    : groups_(std::move(groups)),
      extent_blocks_(extent_blocks),
      block_size_(groups_.empty() ? 4096 : groups_[0]->block_size()) {
  assert(!groups_.empty());
  assert(extent_blocks_ > 0);
  // Interleave the free list across groups so that consecutively allocated
  // extents land on different groups: sequential volume traffic then
  // stripes over every group's disks instead of filling one group first.
  std::uint64_t max_extents = 0;
  std::vector<std::uint64_t> extents_per_group;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    assert(groups_[g]->block_size() == block_size_);
    extents_per_group.push_back(groups_[g]->DataCapacityBlocks() /
                                extent_blocks_);
    max_extents = std::max(max_extents, extents_per_group.back());
    total_extents_ += extents_per_group.back();
  }
  for (std::uint64_t e = 0; e < max_extents; ++e) {
    for (std::uint32_t g = 0; g < groups_.size(); ++g) {
      if (e < extents_per_group[g]) free_.push_back(PhysExtent{g, e});
    }
  }
}

std::optional<PhysExtent> StoragePool::Allocate() {
  if (free_.empty()) return std::nullopt;
  const PhysExtent e = free_.front();
  free_.pop_front();
  return e;
}

void StoragePool::Free(const PhysExtent& e) {
  // Recycle at the back: fresh allocations prefer long-idle extents, which
  // spreads wear and load over the groups.
  free_.push_back(e);
}

void StoragePool::ReadBlocks(const PhysExtent& e, std::uint32_t offset_blocks,
                             std::uint32_t count, ReadCallback cb,
                             obs::TraceContext ctx) {
  assert(offset_blocks + count <= extent_blocks_);
  groups_[e.group]->ReadBlocks(BaseBlock(e) + offset_blocks, count,
                               std::move(cb), ctx);
}

void StoragePool::WriteBlocks(const PhysExtent& e, std::uint32_t offset_blocks,
                              std::span<const std::uint8_t> data,
                              WriteCallback cb, obs::TraceContext ctx) {
  assert(offset_blocks + data.size() / block_size_ <= extent_blocks_);
  groups_[e.group]->WriteBlocks(BaseBlock(e) + offset_blocks, data,
                                std::move(cb), ctx);
}

}  // namespace nlss::virt
