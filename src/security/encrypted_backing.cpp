#include "security/encrypted_backing.h"

namespace nlss::security {

EncryptedBacking::EncryptedBacking(sim::Engine& engine,
                                   cache::BackingStore& inner,
                                   const crypto::VolumeKeys& keys,
                                   Config config)
    : engine_(engine),
      inner_(inner),
      data_key_(keys.data_key),
      tweak_key_(keys.tweak_key),
      config_(config) {}

void EncryptedBacking::Charge(std::uint64_t bytes, std::function<void()> next) {
  if (config_.engine_resource == nullptr) {
    next();
    return;
  }
  const sim::Tick done = config_.engine_resource->AcquireBytes(
      bytes, config_.crypt_ns_per_byte);
  engine_.ScheduleAt(done, std::move(next));
}

void EncryptedBacking::ReadBlocks(std::uint64_t block, std::uint32_t count,
                                  ReadCallback cb, obs::TraceContext ctx) {
  inner_.ReadBlocks(
      block, count,
      [this, block, cb = std::move(cb)](bool ok, util::Bytes data) mutable {
        if (!ok) {
          cb(false, {});
          return;
        }
        const std::uint32_t bs = block_size();
        for (std::uint32_t i = 0; i * bs < data.size(); ++i) {
          crypto::XtsDecrypt(data_key_, tweak_key_, block + i,
                             std::span<std::uint8_t>(data.data() +
                                                         static_cast<std::size_t>(i) * bs,
                                                     bs));
        }
        bytes_decrypted_ += data.size();
        const std::uint64_t n = data.size();
        auto shared = std::make_shared<util::Bytes>(std::move(data));
        Charge(n, [shared, cb = std::move(cb)]() mutable {
          cb(true, std::move(*shared));
        });
      },
      ctx);
}

void EncryptedBacking::WriteBlocks(std::uint64_t block,
                                   std::span<const std::uint8_t> data,
                                   WriteCallback cb, obs::TraceContext ctx) {
  util::Bytes ciphertext(data.begin(), data.end());
  const std::uint32_t bs = block_size();
  for (std::uint32_t i = 0; i * bs < ciphertext.size(); ++i) {
    crypto::XtsEncrypt(data_key_, tweak_key_, block + i,
                       std::span<std::uint8_t>(
                           ciphertext.data() + static_cast<std::size_t>(i) * bs,
                           bs));
  }
  bytes_encrypted_ += ciphertext.size();
  auto shared = std::make_shared<util::Bytes>(std::move(ciphertext));
  Charge(shared->size(),
         [this, block, shared, ctx, cb = std::move(cb)]() mutable {
           inner_.WriteBlocks(
               block, *shared,
               [shared, cb = std::move(cb)](bool ok) { cb(ok); }, ctx);
         });
}

}  // namespace nlss::security
