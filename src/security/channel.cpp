#include "security/channel.h"

#include <cstring>

namespace nlss::security {
namespace {

void PutSeq(std::uint8_t out[8], std::uint64_t seq) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

std::uint64_t GetSeq(const std::uint8_t in[8]) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return seq;
}

void MakeIv(std::uint8_t iv[16], std::uint64_t seq) {
  std::memset(iv, 0, 16);
  // Sequence in the high half; the low 64 bits are the CTR counter.
  for (int i = 0; i < 8; ++i) {
    iv[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

}  // namespace

SecureChannel::SecureChannel(std::span<const std::uint8_t, 32> key)
    : aes_(key) {
  // Derive an independent MAC key so AES and HMAC never share key material.
  crypto::Sha256 h;
  h.Update("nlss-channel-mac/");
  h.Update(key);
  const crypto::Digest256 d = h.Finish();
  std::memcpy(mac_key_.data(), d.data(), d.size());
}

util::Bytes SecureChannel::Seal(std::span<const std::uint8_t> plaintext) {
  const std::uint64_t seq = send_seq_++;
  util::Bytes frame(kOverhead + plaintext.size());
  PutSeq(frame.data(), seq);
  std::memcpy(frame.data() + 8, plaintext.data(), plaintext.size());
  std::uint8_t iv[16];
  MakeIv(iv, seq);
  crypto::CtrCrypt(aes_, iv,
                   std::span<std::uint8_t>(frame.data() + 8, plaintext.size()));
  const crypto::Digest256 mac = crypto::HmacSha256(
      std::span<const std::uint8_t>(mac_key_),
      std::span<const std::uint8_t>(frame.data(), 8 + plaintext.size()));
  std::memcpy(frame.data() + 8 + plaintext.size(), mac.data(), mac.size());
  return frame;
}

std::optional<util::Bytes> SecureChannel::Open(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kOverhead) {
    ++rejected_;
    return std::nullopt;
  }
  const std::size_t body = frame.size() - kOverhead;
  const crypto::Digest256 expect = crypto::HmacSha256(
      std::span<const std::uint8_t>(mac_key_),
      std::span<const std::uint8_t>(frame.data(), 8 + body));
  if (std::memcmp(expect.data(), frame.data() + 8 + body, 32) != 0) {
    ++rejected_;
    return std::nullopt;
  }
  const std::uint64_t seq = GetSeq(frame.data());
  if (seq < recv_seq_) {  // replay or reorder
    ++rejected_;
    return std::nullopt;
  }
  recv_seq_ = seq + 1;
  util::Bytes plaintext(frame.begin() + 8,
                        frame.begin() + 8 + static_cast<std::ptrdiff_t>(body));
  std::uint8_t iv[16];
  MakeIv(iv, seq);
  crypto::CtrCrypt(aes_, iv, plaintext);
  return plaintext;
}

}  // namespace nlss::security
