#include "security/auth.h"

#include <charconv>

namespace nlss::security {

AuthService::AuthService(sim::Engine& engine, const crypto::KeyStore& keys)
    : engine_(engine), token_key_(keys.DeriveTransportKey("auth", "tokens")) {}

crypto::Digest256 AuthService::HashSecret(const std::string& name,
                                          const std::string& passphrase) const {
  crypto::Sha256 h;
  h.Update("nlss-user-secret/");
  h.Update(name);
  h.Update("/");
  h.Update(passphrase);
  return h.Finish();
}

void AuthService::AddUser(const std::string& name,
                          const std::string& passphrase,
                          std::set<std::string> roles) {
  User u;
  u.secret = HashSecret(name, passphrase);
  u.roles = std::move(roles);
  users_[name] = std::move(u);
}

void AuthService::RemoveUser(const std::string& name) { users_.erase(name); }

std::string AuthService::Sign(const std::string& payload) const {
  const crypto::Digest256 mac = crypto::HmacSha256(
      std::span<const std::uint8_t>(token_key_),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size()));
  return crypto::ToHex(mac);
}

std::optional<std::string> AuthService::Login(const std::string& name,
                                              const std::string& passphrase,
                                              sim::Tick ttl_ns) {
  auto it = users_.find(name);
  if (it == users_.end()) return std::nullopt;
  if (it->second.secret != HashSecret(name, passphrase)) return std::nullopt;
  const sim::Tick expiry = engine_.now() + ttl_ns;
  const std::string payload = name + ":" + std::to_string(expiry) + ":" +
                              std::to_string(it->second.session_epoch);
  return payload + ":" + Sign(payload);
}

std::optional<std::string> AuthService::Verify(const std::string& token) const {
  // token = name:expiry:epoch:mac
  const std::size_t mac_pos = token.rfind(':');
  if (mac_pos == std::string::npos) return std::nullopt;
  const std::string payload = token.substr(0, mac_pos);
  const std::string mac = token.substr(mac_pos + 1);
  if (Sign(payload) != mac) return std::nullopt;

  const std::size_t p1 = payload.find(':');
  const std::size_t p2 = payload.rfind(':');
  if (p1 == std::string::npos || p2 == p1) return std::nullopt;
  const std::string name = payload.substr(0, p1);

  std::uint64_t expiry = 0;
  const auto expiry_str = payload.substr(p1 + 1, p2 - p1 - 1);
  std::from_chars(expiry_str.data(), expiry_str.data() + expiry_str.size(),
                  expiry);
  if (engine_.now() > expiry) return std::nullopt;

  std::uint32_t epoch = 0;
  const auto epoch_str = payload.substr(p2 + 1);
  std::from_chars(epoch_str.data(), epoch_str.data() + epoch_str.size(),
                  epoch);
  auto it = users_.find(name);
  if (it == users_.end()) return std::nullopt;
  if (it->second.session_epoch != epoch) return std::nullopt;
  return name;
}

bool AuthService::HasRole(const std::string& user,
                          const std::string& role) const {
  auto it = users_.find(user);
  return it != users_.end() && it->second.roles.count(role) > 0;
}

void AuthService::RevokeSessions(const std::string& name) {
  auto it = users_.find(name);
  if (it != users_.end()) ++it->second.session_epoch;
}

}  // namespace nlss::security
