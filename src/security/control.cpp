#include "security/control.h"

namespace nlss::security {

const char* CommandName(Command c) {
  switch (c) {
    case Command::kReadData: return "read-data";
    case Command::kWriteData: return "write-data";
    case Command::kCreateVolume: return "create-volume";
    case Command::kDeleteVolume: return "delete-volume";
    case Command::kResizeVolume: return "resize-volume";
    case Command::kSnapshot: return "snapshot";
    case Command::kChangeMasking: return "change-masking";
    case Command::kChangePolicy: return "change-policy";
    case Command::kFailover: return "failover";
    case Command::kFirmwareUpgrade: return "firmware-upgrade";
  }
  return "?";
}

CommandPolicy::CommandPolicy() {
  inband_default_allowed_ = {Command::kReadData, Command::kWriteData,
                             Command::kSnapshot};
}

void CommandPolicy::DisableInBand(const std::string& port, Command c) {
  port_overrides_[port][c] = false;
}

void CommandPolicy::EnableInBand(const std::string& port, Command c) {
  port_overrides_[port][c] = true;
}

bool CommandPolicy::AllowedInBand(const std::string& port, Command c) const {
  auto pit = port_overrides_.find(port);
  if (pit != port_overrides_.end()) {
    auto cit = pit->second.find(c);
    if (cit != pit->second.end()) return cit->second;
  }
  return inband_default_allowed_.count(c) > 0;
}

bool CommandPolicy::AllowedOutOfBand(Command c, bool is_admin) const {
  (void)c;
  return is_admin;
}

}  // namespace nlss::security
