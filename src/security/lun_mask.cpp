#include "security/lun_mask.h"

namespace nlss::security {

void LunMasking::Allow(const std::string& initiator, std::uint32_t volume) {
  grants_[initiator].insert(volume);
}

void LunMasking::Revoke(const std::string& initiator, std::uint32_t volume) {
  auto it = grants_.find(initiator);
  if (it == grants_.end()) return;
  it->second.erase(volume);
  if (it->second.empty()) grants_.erase(it);
}

void LunMasking::RevokeAll(const std::string& initiator) {
  grants_.erase(initiator);
}

bool LunMasking::Visible(const std::string& initiator,
                         std::uint32_t volume) const {
  auto it = grants_.find(initiator);
  if (it == grants_.end()) return !default_deny_;
  return it->second.count(volume) > 0;
}

std::vector<std::uint32_t> LunMasking::VisibleTo(
    const std::string& initiator) const {
  std::vector<std::uint32_t> out;
  auto it = grants_.find(initiator);
  if (it == grants_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

}  // namespace nlss::security
