// Authentication and policy (paper §5: "ensuring proper user authentication
// and policy application before allowing access to data or control paths").
//
// Users authenticate with a passphrase; the service issues HMAC-signed,
// expiring tokens bound to the user's roles.  Secrets are stored only as
// salted SHA-256 digests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "sim/engine.h"

namespace nlss::security {

class AuthService {
 public:
  AuthService(sim::Engine& engine, const crypto::KeyStore& keys);

  void AddUser(const std::string& name, const std::string& passphrase,
               std::set<std::string> roles);
  void RemoveUser(const std::string& name);

  /// Returns a signed token valid for `ttl_ns`, or nullopt on bad login.
  std::optional<std::string> Login(const std::string& name,
                                   const std::string& passphrase,
                                   sim::Tick ttl_ns = 3600ull * 1000000000);

  /// Validates signature and expiry; returns the user name if valid.
  std::optional<std::string> Verify(const std::string& token) const;

  bool HasRole(const std::string& user, const std::string& role) const;

  /// Invalidate all outstanding tokens for a user.
  void RevokeSessions(const std::string& name);

 private:
  struct User {
    crypto::Digest256 secret;
    std::set<std::string> roles;
    std::uint32_t session_epoch = 0;  // bumping invalidates old tokens
  };

  crypto::Digest256 HashSecret(const std::string& name,
                               const std::string& passphrase) const;
  std::string Sign(const std::string& payload) const;

  sim::Engine& engine_;
  std::array<std::uint8_t, 32> token_key_;
  std::map<std::string, User> users_;
};

}  // namespace nlss::security
