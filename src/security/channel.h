// Secure transport channel (paper §5.1): AES-CTR encryption plus
// HMAC-SHA-256 authentication of message payloads for delivery over
// non-secure media (host links, inter-site WANs).  Real cryptography on
// real bytes; the simulated wire cost is charged separately by the caller.
//
// Frame layout: [8-byte seq][ciphertext][32-byte HMAC over seq||ciphertext].
// The sequence number feeds the CTR IV, so reusing a channel never reuses
// keystream, and replayed or reordered frames fail authentication.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nlss::security {

class SecureChannel {
 public:
  /// Both endpoints construct with the same 32-byte key (from the
  /// KeyStore's DeriveTransportKey).
  explicit SecureChannel(std::span<const std::uint8_t, 32> key);

  /// Encrypt + authenticate.  Consumes the next send sequence number.
  util::Bytes Seal(std::span<const std::uint8_t> plaintext);

  /// Verify + decrypt.  Enforces strictly increasing sequence numbers
  /// (anti-replay).  nullopt on any failure.
  std::optional<util::Bytes> Open(std::span<const std::uint8_t> frame);

  std::uint64_t sent() const { return send_seq_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Frame overhead in bytes (for wire-cost accounting).
  static constexpr std::size_t kOverhead = 8 + 32;

 private:
  crypto::Aes aes_;
  std::array<std::uint8_t, 32> mac_key_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;  // highest accepted + 1
  std::uint64_t rejected_ = 0;
};

}  // namespace nlss::security
