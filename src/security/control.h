// Architectural security controls (paper §5.2):
//   * In-band control commands can be selectively disabled per port and per
//     command — a compromised host fabric cannot reconfigure the array.
//   * Out-of-band management rides a separate secure network; management
//     commands require an authenticated admin role.
//   * Controllers execute no user code; this layer only gates *which*
//     predefined commands each path may invoke.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace nlss::security {

enum class Command : std::uint8_t {
  kReadData,
  kWriteData,
  kCreateVolume,
  kDeleteVolume,
  kResizeVolume,
  kSnapshot,
  kChangeMasking,
  kChangePolicy,
  kFailover,
  kFirmwareUpgrade,
};

const char* CommandName(Command c);

class CommandPolicy {
 public:
  /// In-band defaults: data path allowed, management commands denied.
  CommandPolicy();

  /// Per-port overrides ("on a command-by-command, port-by-port basis").
  void DisableInBand(const std::string& port, Command c);
  void EnableInBand(const std::string& port, Command c);

  bool AllowedInBand(const std::string& port, Command c) const;

  /// Out-of-band commands are always permitted for admin-role callers —
  /// the caller supplies the role check result from AuthService.
  bool AllowedOutOfBand(Command c, bool is_admin) const;

 private:
  std::set<Command> inband_default_allowed_;
  // Port-specific overrides: present -> explicit allow/deny.
  std::map<std::string, std::map<Command, bool>> port_overrides_;
};

}  // namespace nlss::security
