// Tamper-evident audit log: every security-relevant event (login, masking
// change, volume create/delete, failover) is appended with a hash chained
// over the previous entry, so any mutation of history is detectable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "sim/engine.h"

namespace nlss::security {

class AuditLog {
 public:
  explicit AuditLog(sim::Engine& engine) : engine_(engine) {}

  struct Entry {
    sim::Tick when;
    std::string actor;
    std::string action;
    std::string detail;
    crypto::Digest256 chain;  // SHA-256(prev.chain || fields)
  };

  void Record(const std::string& actor, const std::string& action,
              const std::string& detail);

  /// Re-walk the chain; false if any entry was altered.
  bool VerifyChain() const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  crypto::Digest256 ChainHash(const crypto::Digest256& prev,
                              const Entry& e) const;

  sim::Engine& engine_;
  std::vector<Entry> entries_;
};

}  // namespace nlss::security
