// At-rest encryption layer (paper §5.1): an "in-stream" engine that
// transparently XTS-encrypts every block on its way to the backing store
// and decrypts on the way back, tweaked by block address.  Slots between
// the cache cluster and a volume, so neither layer knows it is there.
//
// If every other mechanism is bypassed — or a disk leaves the building on a
// warranty return — the platters hold only ciphertext.
//
// An optional sim::Resource models the hardware crypto engine's throughput.
#pragma once

#include <cstdint>

#include "cache/backing.h"
#include "crypto/aes.h"
#include "crypto/keystore.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace nlss::security {

class EncryptedBacking final : public cache::BackingStore {
 public:
  struct Config {
    sim::Resource* engine_resource = nullptr;  // hardware crypto engine
    double crypt_ns_per_byte = 0.1;            // ~10 GB/s when modelled
  };

  EncryptedBacking(sim::Engine& engine, cache::BackingStore& inner,
                   const crypto::VolumeKeys& keys)
      : EncryptedBacking(engine, inner, keys, Config()) {}
  EncryptedBacking(sim::Engine& engine, cache::BackingStore& inner,
                   const crypto::VolumeKeys& keys, Config config);

  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {}) override;
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext ctx = {}) override;
  std::uint64_t CapacityBlocks() const override {
    return inner_.CapacityBlocks();
  }
  std::uint32_t block_size() const override { return inner_.block_size(); }

  std::uint64_t bytes_encrypted() const { return bytes_encrypted_; }
  std::uint64_t bytes_decrypted() const { return bytes_decrypted_; }

 private:
  /// Charge the crypto engine, then run `next`.
  void Charge(std::uint64_t bytes, std::function<void()> next);

  sim::Engine& engine_;
  cache::BackingStore& inner_;
  crypto::Aes data_key_;
  crypto::Aes tweak_key_;
  Config config_;
  std::uint64_t bytes_encrypted_ = 0;
  std::uint64_t bytes_decrypted_ = 0;
};

}  // namespace nlss::security
