// LUN masking (paper §5): each initiator (host/server) privately owns a
// subset of the pool's volumes; everything else is concealed.  The block
// and file protocol servers consult this before touching a volume.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nlss::security {

class LunMasking {
 public:
  void Allow(const std::string& initiator, std::uint32_t volume);
  void Revoke(const std::string& initiator, std::uint32_t volume);
  void RevokeAll(const std::string& initiator);

  bool Visible(const std::string& initiator, std::uint32_t volume) const;
  std::vector<std::uint32_t> VisibleTo(const std::string& initiator) const;

  /// Default-deny switch: when false, unlisted initiators see everything
  /// (legacy open mode).  Defaults to true (deny).
  void set_default_deny(bool deny) { default_deny_ = deny; }
  bool default_deny() const { return default_deny_; }

 private:
  std::map<std::string, std::set<std::uint32_t>> grants_;
  bool default_deny_ = true;
};

}  // namespace nlss::security
