#include "security/audit.h"

namespace nlss::security {

crypto::Digest256 AuditLog::ChainHash(const crypto::Digest256& prev,
                                      const Entry& e) const {
  crypto::Sha256 h;
  h.Update(prev);
  h.Update(std::to_string(e.when));
  h.Update("|");
  h.Update(e.actor);
  h.Update("|");
  h.Update(e.action);
  h.Update("|");
  h.Update(e.detail);
  return h.Finish();
}

void AuditLog::Record(const std::string& actor, const std::string& action,
                      const std::string& detail) {
  Entry e;
  e.when = engine_.now();
  e.actor = actor;
  e.action = action;
  e.detail = detail;
  const crypto::Digest256 prev =
      entries_.empty() ? crypto::Digest256{} : entries_.back().chain;
  e.chain = ChainHash(prev, e);
  entries_.push_back(std::move(e));
}

bool AuditLog::VerifyChain() const {
  crypto::Digest256 prev{};
  for (const Entry& e : entries_) {
    if (ChainHash(prev, e) != e.chain) return false;
    prev = e.chain;
  }
  return true;
}

}  // namespace nlss::security
