// Simulated disk drives: a mechanical service-time model (seek + rotation +
// media transfer) over a sparse in-memory block store holding real bytes.
// Requests are serviced FIFO, one at a time, like a single-actuator drive.
//
// Failure injection: Fail() makes every outstanding and subsequent request
// complete unsuccessfully until Replace() installs a fresh (zeroed) drive,
// which is how the RAID rebuild experiments (E4) kill and replace disks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/units.h"

namespace nlss::disk {

/// Mechanical parameters.  Defaults approximate a 2002-era 10k RPM FC
/// drive.  Positioning cost scales with seek distance: short strides pay
/// roughly the track-to-track time, a full-stroke seek pays ~2x the
/// average, following the classic a + b*sqrt(distance) seek curve.
struct DiskProfile {
  sim::Tick track_to_track_ns = 800 * util::kNsPerUs;
  sim::Tick avg_seek_ns = 4 * util::kNsPerMs;
  sim::Tick half_rotation_ns = 3 * util::kNsPerMs;
  double media_bytes_per_ns = util::MBpsToBytesPerNs(60.0);
  std::uint32_t block_size = 4096;
  std::uint64_t capacity_blocks = 256 * 1024;  // 1 GiB at 4 KiB blocks

  std::uint64_t capacity_bytes() const {
    return capacity_blocks * block_size;
  }
};

/// Sparse block store: unwritten blocks read back as zeros.
class BlockStore {
 public:
  explicit BlockStore(std::uint32_t block_size) : block_size_(block_size) {}

  /// Read `count` blocks starting at `lba` into a contiguous buffer.
  util::Bytes Read(std::uint64_t lba, std::uint32_t count) const;

  /// Write contiguous data (must be count*block_size bytes) at `lba`.
  void Write(std::uint64_t lba, std::span<const std::uint8_t> data);

  /// Discard blocks (read back as zeros afterwards).
  void Trim(std::uint64_t lba, std::uint32_t count);

  void Clear() { blocks_.clear(); }

  std::uint32_t block_size() const { return block_size_; }
  std::size_t allocated_blocks() const { return blocks_.size(); }

 private:
  std::uint32_t block_size_;
  std::unordered_map<std::uint64_t, util::Bytes> blocks_;
};

struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  sim::Tick busy_ns = 0;
};

class Disk {
 public:
  using ReadCallback = std::function<void(bool ok, util::Bytes data)>;
  using WriteCallback = std::function<void(bool ok)>;

  Disk(sim::Engine& engine, DiskProfile profile, std::string name);

  /// Asynchronous block read; callback fires at simulated completion time.
  /// A sampled `ctx` gets a disk-layer span covering FIFO queueing plus
  /// mechanical service.
  void Read(std::uint64_t lba, std::uint32_t count, ReadCallback cb,
            obs::TraceContext ctx = {});

  /// Asynchronous block write.
  void Write(std::uint64_t lba, std::span<const std::uint8_t> data,
             WriteCallback cb, obs::TraceContext ctx = {});

  /// Discard blocks; immediate (metadata-only) in this model.
  void Trim(std::uint64_t lba, std::uint32_t count);

  /// Inject a total drive failure.
  void Fail() { failed_ = true; }

  /// Swap in a fresh zeroed drive (keeps profile and identity).
  void Replace();

  bool failed() const { return failed_; }
  const DiskProfile& profile() const { return profile_; }
  const std::string& name() const { return name_; }
  const DiskStats& stats() const { return stats_; }

  /// Direct (zero-time) store access for verification in tests.
  const BlockStore& store() const { return store_; }
  BlockStore& store() { return store_; }

 private:
  /// Compute service time for an access and advance the FIFO horizon.
  sim::Tick ScheduleService(std::uint64_t lba, std::uint64_t bytes);

  sim::Engine& engine_;
  DiskProfile profile_;
  std::string name_;
  BlockStore store_;
  bool failed_ = false;
  sim::Tick busy_until_ = 0;
  std::uint64_t next_sequential_lba_ = 0;  // heads position for seek model
  DiskStats stats_;
};

/// A shelf of identical disks.
class DiskFarm {
 public:
  DiskFarm(sim::Engine& engine, const DiskProfile& profile, std::size_t count,
           const std::string& name_prefix = "disk");

  Disk& at(std::size_t i) { return *disks_[i]; }
  const Disk& at(std::size_t i) const { return *disks_[i]; }
  std::size_t size() const { return disks_.size(); }

  std::uint64_t TotalCapacityBytes() const;

 private:
  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace nlss::disk
