#include "disk/disk.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace nlss::disk {

util::Bytes BlockStore::Read(std::uint64_t lba, std::uint32_t count) const {
  util::Bytes out(static_cast<std::size_t>(count) * block_size_, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(lba + i);
    if (it != blocks_.end()) {
      std::memcpy(out.data() + static_cast<std::size_t>(i) * block_size_,
                  it->second.data(), block_size_);
    }
  }
  return out;
}

void BlockStore::Write(std::uint64_t lba, std::span<const std::uint8_t> data) {
  assert(data.size() % block_size_ == 0);
  const std::uint32_t count = static_cast<std::uint32_t>(data.size() / block_size_);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto& blk = blocks_[lba + i];
    blk.assign(data.begin() + static_cast<std::ptrdiff_t>(i) * block_size_,
               data.begin() + static_cast<std::ptrdiff_t>(i + 1) * block_size_);
  }
}

void BlockStore::Trim(std::uint64_t lba, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) blocks_.erase(lba + i);
}

Disk::Disk(sim::Engine& engine, DiskProfile profile, std::string name)
    : engine_(engine),
      profile_(profile),
      name_(std::move(name)),
      store_(profile.block_size) {}

sim::Tick Disk::ScheduleService(std::uint64_t lba, std::uint64_t bytes) {
  // Sequential accesses skip the positioning penalty entirely.  Otherwise
  // the seek follows a + b*sqrt(distance): short strides (slightly
  // out-of-order streaming) pay about the track-to-track time plus a
  // distance-scaled share of the rotation; a full-stroke seek pays ~2x the
  // average seek plus half a rotation.
  sim::Tick positioning = 0;
  if (lba != next_sequential_lba_) {
    const std::uint64_t distance = lba > next_sequential_lba_
                                       ? lba - next_sequential_lba_
                                       : next_sequential_lba_ - lba;
    const double frac = std::min(
        1.0, static_cast<double>(distance) /
                 static_cast<double>(profile_.capacity_blocks));
    // E[sqrt(U)] = 2/3, so b = 1.5*(avg - t2t) makes the uniform-random
    // expectation equal avg_seek_ns.
    const double seek =
        static_cast<double>(profile_.track_to_track_ns) +
        1.5 *
            static_cast<double>(profile_.avg_seek_ns -
                                profile_.track_to_track_ns) *
            std::sqrt(frac);
    const double rotation =
        static_cast<double>(profile_.half_rotation_ns) *
        std::min(1.0, 0.15 + std::sqrt(frac));
    positioning = static_cast<sim::Tick>(std::llround(seek + rotation));
  }
  const auto transfer = static_cast<sim::Tick>(std::llround(
      static_cast<double>(bytes) / profile_.media_bytes_per_ns));
  const sim::Tick start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + positioning + transfer;
  stats_.busy_ns += positioning + transfer;
  next_sequential_lba_ = lba + bytes / profile_.block_size;
  return busy_until_;
}

void Disk::Read(std::uint64_t lba, std::uint32_t count, ReadCallback cb,
                obs::TraceContext ctx) {
  assert(lba + count <= profile_.capacity_blocks);
  if (failed_) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false, {}); });
    return;
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * profile_.block_size;
  const sim::Tick done = ScheduleService(lba, bytes);
  stats_.reads += 1;
  stats_.bytes_read += bytes;
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kDisk, "disk.read");
  engine_.ScheduleAt(done, [this, lba, count, span, cb = std::move(cb)] {
    obs::EndSpan(span);
    if (failed_) {
      cb(false, {});
    } else {
      cb(true, store_.Read(lba, count));
    }
  });
}

void Disk::Write(std::uint64_t lba, std::span<const std::uint8_t> data,
                 WriteCallback cb, obs::TraceContext ctx) {
  assert(data.size() % profile_.block_size == 0);
  assert(lba + data.size() / profile_.block_size <= profile_.capacity_blocks);
  if (failed_) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false); });
    return;
  }
  const sim::Tick done = ScheduleService(lba, data.size());
  stats_.writes += 1;
  stats_.bytes_written += data.size();
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kDisk, "disk.write");
  // Data is captured by value: the caller's buffer may be reused before the
  // simulated write completes.
  util::Bytes copy(data.begin(), data.end());
  engine_.ScheduleAt(done, [this, lba, copy = std::move(copy), span,
                            cb = std::move(cb)] {
    obs::EndSpan(span);
    if (failed_) {
      cb(false);
    } else {
      store_.Write(lba, copy);
      cb(true);
    }
  });
}

void Disk::Trim(std::uint64_t lba, std::uint32_t count) {
  if (!failed_) store_.Trim(lba, count);
}

void Disk::Replace() {
  store_.Clear();
  failed_ = false;
  busy_until_ = engine_.now();
  next_sequential_lba_ = 0;
}

DiskFarm::DiskFarm(sim::Engine& engine, const DiskProfile& profile,
                   std::size_t count, const std::string& name_prefix) {
  disks_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        engine, profile, name_prefix + std::to_string(i)));
  }
}

std::uint64_t DiskFarm::TotalCapacityBytes() const {
  std::uint64_t total = 0;
  for (const auto& d : disks_) total += d->profile().capacity_bytes();
  return total;
}

}  // namespace nlss::disk
