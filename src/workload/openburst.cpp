#include "workload/openburst.h"

#include <algorithm>
#include <utility>

#include "check/invariant.h"

namespace nlss::workload {

OpenBurstPrefetcher::OpenBurstPrefetcher(sim::Engine& engine,
                                         host::Initiator& initiator,
                                         controller::VolumeId vol,
                                         FileSet files,
                                         OpenBurstConfig config,
                                         qos::TenantId tenant)
    : initiator_(initiator),
      engine_(engine),
      vol_(vol),
      files_(files),
      config_(config),
      tenant_(tenant),
      state_(files.count, FileState::kCold) {}

void OpenBurstPrefetcher::Open(std::uint32_t file, std::uint32_t length,
                               std::function<void(bool)> cb) {
  ++stats_.opens;
  if (!config_.enabled || file >= files_.count) {
    ++stats_.misses;
    initiator_.Read(vol_, files_.OffsetOf(file), length,
                    [cb = std::move(cb)](bool ok, util::Bytes) { cb(ok); },
                    /*priority=*/0, tenant_);
    return;
  }

  // Slide the detector window.
  const sim::Tick now = engine_.now();
  recent_opens_.push_back(now);
  while (!recent_opens_.empty() &&
         now - recent_opens_.front() > config_.window_ns) {
    recent_opens_.pop_front();
  }
  if (!burst_armed_ && recent_opens_.size() >= config_.threshold) {
    burst_armed_ = true;
    ++stats_.bursts;
    frontier_ = std::max(frontier_, file + 1);
  }
  if (burst_armed_) PrefetchAhead(file);

  switch (state_[file]) {
    case FileState::kReady:
      ++stats_.hits;
      engine_.Schedule(config_.local_hit_ns,
                       [cb = std::move(cb)] { cb(true); });
      return;
    case FileState::kFetching:
      ++stats_.joined;
      waiters_[file].push_back(std::move(cb));
      return;
    case FileState::kCold:
    case FileState::kFailed:
      ++stats_.misses;
      initiator_.Read(vol_, files_.OffsetOf(file), length,
                      [cb = std::move(cb)](bool ok, util::Bytes) { cb(ok); },
                      /*priority=*/0, tenant_);
      return;
  }
}

void OpenBurstPrefetcher::PrefetchAhead(std::uint32_t file) {
  // Stage FULL batches while the consumer is within `lookahead_files` of
  // the frontier.  The batch fill is deliberately not clipped to the
  // lookahead horizon: clipping would degrade into one-file "batches"
  // that creep along one open ahead of the consumer — the exact tiny-read
  // pattern the prefetcher exists to eliminate.
  while (frontier_ < files_.count &&
         frontier_ < static_cast<std::uint64_t>(file) +
                         config_.lookahead_files) {
    // Skip files already staged or in flight so a batch covers cold span.
    while (frontier_ < files_.count &&
           state_[frontier_] != FileState::kCold) {
      ++frontier_;
    }
    if (frontier_ >= files_.count) return;
    const std::uint32_t first = frontier_;
    std::uint32_t n = 0;
    while (frontier_ < files_.count && n < config_.batch_files &&
           state_[frontier_] == FileState::kCold) {
      state_[frontier_] = FileState::kFetching;
      ++frontier_;
      ++n;
    }
    const std::uint64_t batch_bytes =
        static_cast<std::uint64_t>(n) * files_.file_bytes;
    ++stats_.batched_reads;
    stats_.prefetched_files += n;
    stats_.prefetch_bytes += batch_bytes;
    // One large read for the whole contiguous span — this is the point:
    // n files for one fabric round trip instead of n.
    initiator_.Read(
        vol_, files_.OffsetOf(first), static_cast<std::uint32_t>(batch_bytes),
        [this, first, n](bool ok, util::Bytes) {
          if (!ok) ++stats_.failed_batches;
          for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t f = first + i;
            state_[f] = ok ? FileState::kReady : FileState::kFailed;
            const auto it = waiters_.find(f);
            if (it == waiters_.end()) continue;
            auto waiters = std::move(it->second);
            waiters_.erase(it);
            for (auto& w : waiters) {
              if (w) w(ok);
            }
          }
        },
        /*priority=*/0, tenant_);
  }
}

}  // namespace nlss::workload
