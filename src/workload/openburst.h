// Batched multi-file prefetch: the host-side countermeasure to the
// metadata storm.
//
// A storm host opens thousands of small files in a predictable shared
// order, paying a full fabric round trip per open.  The prefetcher watches
// the open stream; once `threshold` opens land inside `window_ns` it
// declares a burst and starts reading AHEAD of the consumer — one large
// batched read covering the next `batch_files` contiguous files instead of
// one tiny read per file.  Subsequent opens of prefetched files are served
// from the host-local staging buffer at `local_hit_ns`; opens that catch a
// batch in flight join its waiter list and complete when it lands.
//
// Everything is driven by the DES clock through the owning initiator, so
// prefetch reads inherit multipath, hedging, and QoS accounting (the
// batch is tenant-billed like any read), and two same-seed runs are
// bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "host/initiator.h"

namespace nlss::workload {

/// Contiguous file layout on one volume: file i occupies
/// [base + i * file_bytes, base + (i + 1) * file_bytes).
struct FileSet {
  std::uint64_t base = 0;
  std::uint32_t count = 0;
  std::uint32_t file_bytes = 64 * 1024;

  std::uint64_t OffsetOf(std::uint32_t file) const {
    return base + static_cast<std::uint64_t>(file) * file_bytes;
  }
  std::uint64_t TotalBytes() const {
    return static_cast<std::uint64_t>(count) * file_bytes;
  }
};

struct OpenBurstConfig {
  bool enabled = false;
  /// Opens inside `window_ns` that arm the burst detector.
  std::uint32_t threshold = 8;
  sim::Tick window_ns = 2 * util::kNsPerMs;
  /// Files fetched per batched read (one initiator read of
  /// batch_files * file_bytes bytes).
  std::uint32_t batch_files = 64;
  /// How far ahead of the consumer's highest-opened file to stage.
  std::uint32_t lookahead_files = 128;
  /// Service time for an open satisfied from the staging buffer.
  sim::Tick local_hit_ns = 2 * util::kNsPerUs;
};

class OpenBurstPrefetcher {
 public:
  struct Stats {
    std::uint64_t opens = 0;
    std::uint64_t hits = 0;     // served from staged data
    std::uint64_t joined = 0;   // caught a batch in flight, waited for it
    std::uint64_t misses = 0;   // direct per-file read
    std::uint64_t bursts = 0;   // detector armed
    std::uint64_t batched_reads = 0;
    std::uint64_t prefetched_files = 0;
    std::uint64_t prefetch_bytes = 0;
    std::uint64_t failed_batches = 0;  // batch read failed; files demoted

    void Add(const Stats& o) {
      opens += o.opens;
      hits += o.hits;
      joined += o.joined;
      misses += o.misses;
      bursts += o.bursts;
      batched_reads += o.batched_reads;
      prefetched_files += o.prefetched_files;
      prefetch_bytes += o.prefetch_bytes;
      failed_batches += o.failed_batches;
    }
  };

  OpenBurstPrefetcher(sim::Engine& engine, host::Initiator& initiator,
                      controller::VolumeId vol, FileSet files,
                      OpenBurstConfig config,
                      qos::TenantId tenant = qos::kAutoTenant);

  /// Open `file` and read its first `length` bytes; `cb(ok)` exactly once.
  void Open(std::uint32_t file, std::uint32_t length,
            std::function<void(bool)> cb);

  const Stats& stats() const { return stats_; }

 private:
  /// kFailed: the covering batch read failed — opens of the file fall back
  /// to direct reads and the prefetcher never re-fetches it (a failing
  /// fabric must not turn the prefetcher into a retry storm).
  enum class FileState : std::uint8_t { kCold, kFetching, kReady, kFailed };

  /// Stage batches up to `lookahead_files` past `file` once burst-armed.
  void PrefetchAhead(std::uint32_t file);

  host::Initiator& initiator_;
  sim::Engine& engine_;
  controller::VolumeId vol_;
  FileSet files_;
  OpenBurstConfig config_;
  qos::TenantId tenant_;
  std::vector<FileState> state_;
  /// Waiters per in-flight file; std::map for deterministic flush order.
  std::map<std::uint32_t, std::vector<std::function<void(bool)>>> waiters_;
  std::deque<sim::Tick> recent_opens_;  // open timestamps inside the window
  std::uint32_t frontier_ = 0;          // first file never staged
  bool burst_armed_ = false;
  Stats stats_;
};

}  // namespace nlss::workload
