// Trace-shaped workload subsystem (E17): deterministic generators for the
// four traffic shapes a national-lab shared pool actually sees, replayed
// through the full host initiator stack so QoS, multipath, hedging, and
// exactly-once writes all apply to every generated op.
//
// Shapes (paper §2's observed traffic, grown into seeded generators):
//
//   metadata storm      N processes each open ~thousands of small files in
//                       near-identical order (python imports, shared-module
//                       loads) — tiny header reads, open-dominated latency
//   small-file ingest   many hosts append small records sequentially — the
//                       back end wants large writes, the workload sends 4 KiB
//   shared-lib broadcast a read-mostly hot set (Zipf) every host re-reads
//   checkpoint burst    all hosts write large sequential checkpoints at
//                       once, synchronized to within jitter
//
// A generator is a pure function (spec, seed) -> Trace; two calls with the
// same arguments produce bit-identical op streams.  The Runner replays a
// Trace closed-loop per host (one outstanding op per host, honoring each
// op's earliest-issue time) and returns per-phase results, optionally
// wiring phase metrics and a root span through obs.
//
// The open-burst countermeasure (batched multi-file prefetch) lives in
// workload/openburst.h and is engaged per-host via RunnerConfig.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/initiator.h"
#include "meta/client.h"
#include "obs/hub.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/openburst.h"

namespace nlss::workload {

enum class Shape : std::uint8_t {
  kMetadataStorm,
  kSmallFileIngest,
  kSharedLibBroadcast,
  kCheckpointBurst,
};
const char* ShapeName(Shape shape);

/// One op of a generated trace.  `at` is the earliest issue time relative
/// to phase start; the per-host closed loop never reorders ops, so `at`
/// shapes ramp-in (storm stagger, checkpoint synchronization) while the
/// loop provides the natural think-time-free pacing.
struct TraceOp {
  enum class Kind : std::uint8_t { kOpen, kRead, kWrite };
  sim::Tick at = 0;
  std::uint32_t host = 0;
  Kind kind = Kind::kRead;
  std::uint32_t file = 0;
  std::uint64_t offset = 0;  // within the file
  std::uint32_t length = 0;
};

struct Trace {
  Shape shape = Shape::kMetadataStorm;
  FileSet files;
  std::uint32_t hosts = 0;
  std::vector<TraceOp> ops;  // grouped per host, issue order within a host
};

// --- Generators --------------------------------------------------------------

/// Metadata storm: every host opens `opens_per_host` files in the shared
/// file-set order (the same list every process loads), reading the first
/// `read_bytes` of each.  Hosts ramp in `host_stagger_ns` apart.
struct StormSpec {
  FileSet files;
  std::uint32_t hosts = 4;
  std::uint32_t opens_per_host = 3000;
  std::uint32_t read_bytes = 4 * 1024;
  sim::Tick host_stagger_ns = 100 * util::kNsPerUs;
  /// Inter-open pacing: a real process parses/executes between opens, so
  /// the storm is an open-RATE problem, not a closed-loop saturation one.
  sim::Tick open_gap_ns = 25 * util::kNsPerUs;
  /// false (default): every host opens the same files in the same order —
  /// the python-import pattern, a dentry cache's best case.  true: host h
  /// opens its own slice of the file set — the per-job-scratch pattern,
  /// all cold lookups, which is what exercises metadata-shard scaling.
  bool partition_files = false;
};
Trace MetadataStorm(const StormSpec& spec, std::uint64_t seed);

/// Small-file ingest: the file set is partitioned across hosts; each host
/// appends `write_bytes` records sequentially through its partition —
/// exactly the small-write stream the flush coalescer exists to batch.
struct IngestSpec {
  FileSet files;
  std::uint32_t hosts = 4;
  std::uint32_t writes_per_host = 2000;
  std::uint32_t write_bytes = 4 * 1024;
  sim::Tick host_stagger_ns = 50 * util::kNsPerUs;
};
Trace SmallFileIngest(const IngestSpec& spec, std::uint64_t seed);

/// Shared-library broadcast: every host draws `reads_per_host` whole-file
/// reads from one Zipf-skewed hot set (rank r ~ 1/(r+1)^theta), so the
/// popular files are popular on every host at once.
struct BroadcastSpec {
  FileSet files;
  std::uint32_t hosts = 4;
  std::uint32_t reads_per_host = 1000;
  double zipf_theta = 0.9;
  sim::Tick host_stagger_ns = 50 * util::kNsPerUs;
};
Trace SharedLibBroadcast(const BroadcastSpec& spec, std::uint64_t seed);

/// Checkpoint burst: host h streams `files.file_bytes` of sequential
/// `chunk_bytes` writes into its own file (file index == host), all hosts
/// starting within `sync_jitter_ns` of phase start.
struct BurstSpec {
  FileSet files;  // count must equal hosts; file_bytes = checkpoint size
  std::uint32_t hosts = 4;
  std::uint32_t chunk_bytes = 1024 * 1024;
  sim::Tick sync_jitter_ns = 20 * util::kNsPerUs;
};
Trace CheckpointBurst(const BurstSpec& spec, std::uint64_t seed);

// --- Runner ------------------------------------------------------------------

struct RunnerConfig {
  /// Open-burst detector + batched multi-file prefetch (one per host).
  OpenBurstConfig prefetch;
  /// Tenant stamped on every op (kAutoTenant: resolve from the volume).
  qos::TenantId tenant = qos::kAutoTenant;
  /// When > 0 and the op's initiator has a meta::Client attached, every
  /// kOpen first resolves the file's namespace path (contiguous runs of
  /// `meta_files_per_dir` files share a directory — see MetaPathOf)
  /// through the host dentry cache before issuing the data read.  An op
  /// length of 0 makes the open a pure metadata operation.
  std::uint32_t meta_files_per_dir = 0;
};

struct PhaseResult {
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t bytes = 0;
  util::Histogram latency;       // every op
  util::Histogram open_latency;  // kOpen ops only (the storm metric)
  sim::Tick elapsed = 0;
  OpenBurstPrefetcher::Stats prefetch;  // summed over hosts
  // Host dentry-cache deltas over this phase (summed across the distinct
  // meta::Clients behind the initiators; zero when meta is not wired).
  std::uint64_t meta_resolves = 0;
  std::uint64_t meta_hits = 0;       // full-path cache hits
  std::uint64_t meta_fallbacks = 0;  // hit-to-serve races re-walked
};

/// Canonical namespace path of a trace file: contiguous runs of
/// `files_per_dir` files share a directory, "/d<file / files_per_dir>/
/// f<file>" — the per-job layout real scratch trees have, so a host
/// working its own slice of the file set stays inside its own
/// directories (and a partitioned storm exercises shard scaling instead
/// of serializing every open on the root's shard).
std::string MetaPathOf(std::uint32_t file, std::uint32_t files_per_dir);

/// Bootstrap the storm namespace (directories + one file each) into the
/// sharded metadata service; zero simulated time.
void PopulateMetaNamespace(meta::MetaService& service, const FileSet& files,
                           std::uint32_t files_per_dir);

/// Replays traces against a set of initiators.  Trace host h maps to
/// initiator h % initiators.size().  Play() runs the engine to completion,
/// so phases execute back to back deterministically.
class Runner {
 public:
  Runner(sim::Engine& engine, std::vector<host::Initiator*> initiators,
         controller::VolumeId vol, RunnerConfig config = {},
         obs::Hub* hub = nullptr);

  PhaseResult Play(const Trace& trace);

 private:
  sim::Engine& engine_;
  std::vector<host::Initiator*> initiators_;
  controller::VolumeId vol_;
  RunnerConfig config_;
  obs::Hub* hub_;
};

}  // namespace nlss::workload
