#include "workload/workload.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "check/invariant.h"
#include "util/bytes.h"

namespace nlss::workload {

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kMetadataStorm:
      return "metadata_storm";
    case Shape::kSmallFileIngest:
      return "small_file_ingest";
    case Shape::kSharedLibBroadcast:
      return "shared_lib_broadcast";
    case Shape::kCheckpointBurst:
      return "checkpoint_burst";
  }
  return "unknown";
}

// --- Generators --------------------------------------------------------------

Trace MetadataStorm(const StormSpec& spec, std::uint64_t seed) {
  Trace trace;
  trace.shape = Shape::kMetadataStorm;
  trace.files = spec.files;
  trace.hosts = spec.hosts;
  util::Rng rng(seed);
  for (std::uint32_t h = 0; h < spec.hosts; ++h) {
    util::Rng host_rng = rng.Fork();
    // Hosts ramp in staggered with a little jitter — processes launched by
    // a scheduler, not a metronome.
    const sim::Tick start =
        h * spec.host_stagger_ns +
        host_rng.Below(spec.host_stagger_ns / 2 + 1);
    for (std::uint32_t i = 0; i < spec.opens_per_host; ++i) {
      TraceOp op;
      op.at = start + static_cast<sim::Tick>(i) * spec.open_gap_ns;
      op.host = h;
      op.kind = TraceOp::Kind::kOpen;
      // Shared order (every process loads the same file list — the
      // python-import pattern) unless partitioned (each host works its own
      // slice — the per-job-scratch pattern).
      op.file = spec.partition_files
                    ? (h * spec.opens_per_host + i) % spec.files.count
                    : i % spec.files.count;
      op.offset = 0;
      op.length = std::min(spec.read_bytes, spec.files.file_bytes);
      trace.ops.push_back(op);
    }
  }
  return trace;
}

Trace SmallFileIngest(const IngestSpec& spec, std::uint64_t seed) {
  Trace trace;
  trace.shape = Shape::kSmallFileIngest;
  trace.files = spec.files;
  trace.hosts = spec.hosts;
  util::Rng rng(seed);
  const std::uint64_t partition_files = spec.files.count / spec.hosts;
  for (std::uint32_t h = 0; h < spec.hosts; ++h) {
    util::Rng host_rng = rng.Fork();
    const sim::Tick start =
        h * spec.host_stagger_ns +
        host_rng.Below(spec.host_stagger_ns / 2 + 1);
    const std::uint64_t partition_base =
        h * partition_files * spec.files.file_bytes;
    const std::uint64_t partition_bytes =
        partition_files * spec.files.file_bytes;
    for (std::uint32_t i = 0; i < spec.writes_per_host; ++i) {
      // Sequential small appends striding through the host's partition:
      // adjacent records land on adjacent pages, which is exactly the
      // stream the flush coalescer turns into large back-end writes.
      const std::uint64_t pos =
          partition_base + (static_cast<std::uint64_t>(i) * spec.write_bytes) %
                               std::max<std::uint64_t>(partition_bytes, 1);
      TraceOp op;
      op.at = start;
      op.host = h;
      op.kind = TraceOp::Kind::kWrite;
      op.file = static_cast<std::uint32_t>(pos / spec.files.file_bytes);
      op.offset = pos % spec.files.file_bytes;
      op.length = spec.write_bytes;
      trace.ops.push_back(op);
    }
  }
  return trace;
}

Trace SharedLibBroadcast(const BroadcastSpec& spec, std::uint64_t seed) {
  Trace trace;
  trace.shape = Shape::kSharedLibBroadcast;
  trace.files = spec.files;
  trace.hosts = spec.hosts;
  util::Rng rng(seed);
  // One shared popularity ranking: rank r maps straight to file index r,
  // so the hot files are hot on every host simultaneously.
  const util::ZipfGenerator zipf(spec.files.count, spec.zipf_theta);
  for (std::uint32_t h = 0; h < spec.hosts; ++h) {
    util::Rng host_rng = rng.Fork();
    const sim::Tick start =
        h * spec.host_stagger_ns +
        host_rng.Below(spec.host_stagger_ns / 2 + 1);
    for (std::uint32_t i = 0; i < spec.reads_per_host; ++i) {
      TraceOp op;
      op.at = start;
      op.host = h;
      op.kind = TraceOp::Kind::kRead;
      op.file = static_cast<std::uint32_t>(zipf.Next(host_rng));
      op.offset = 0;
      op.length = spec.files.file_bytes;  // whole-file read
      trace.ops.push_back(op);
    }
  }
  return trace;
}

Trace CheckpointBurst(const BurstSpec& spec, std::uint64_t seed) {
  Trace trace;
  trace.shape = Shape::kCheckpointBurst;
  trace.files = spec.files;
  trace.hosts = spec.hosts;
  NLSS_INVARIANT(kOther, spec.files.count >= spec.hosts,
                 "checkpoint burst needs one file per host (%u < %u)",
                 spec.files.count, spec.hosts);
  util::Rng rng(seed);
  for (std::uint32_t h = 0; h < spec.hosts; ++h) {
    util::Rng host_rng = rng.Fork();
    // Synchronized start: every host kicks off within the jitter window —
    // the burst is the point.
    const sim::Tick start = host_rng.Below(spec.sync_jitter_ns + 1);
    const std::uint32_t chunks =
        (spec.files.file_bytes + spec.chunk_bytes - 1) / spec.chunk_bytes;
    for (std::uint32_t c = 0; c < chunks; ++c) {
      TraceOp op;
      op.at = start;
      op.host = h;
      op.kind = TraceOp::Kind::kWrite;
      op.file = h;
      op.offset = static_cast<std::uint64_t>(c) * spec.chunk_bytes;
      op.length = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          spec.chunk_bytes, spec.files.file_bytes - op.offset));
      trace.ops.push_back(op);
    }
  }
  return trace;
}

// --- Metadata namespace ------------------------------------------------------

std::string MetaPathOf(std::uint32_t file, std::uint32_t files_per_dir) {
  if (files_per_dir == 0) files_per_dir = 1;
  return "/d" + std::to_string(file / files_per_dir) + "/f" +
         std::to_string(file);
}

void PopulateMetaNamespace(meta::MetaService& service, const FileSet& files,
                           std::uint32_t files_per_dir) {
  if (files_per_dir == 0) files_per_dir = 1;
  const std::uint32_t dirs =
      (files.count + files_per_dir - 1) / files_per_dir;
  for (std::uint32_t d = 0; d < dirs; ++d) {
    const meta::Status st = service.BootstrapMkdir("/d" + std::to_string(d));
    NLSS_INVARIANT(kMeta,
                   st == meta::Status::kOk || st == meta::Status::kExists,
                   "meta population mkdir /d%u failed: %s", d,
                   meta::StatusName(st));
    (void)st;
  }
  for (std::uint32_t f = 0; f < files.count; ++f) {
    const meta::Status st =
        service.BootstrapCreate(MetaPathOf(f, files_per_dir));
    NLSS_INVARIANT(kMeta,
                   st == meta::Status::kOk || st == meta::Status::kExists,
                   "meta population create %u failed: %s", f,
                   meta::StatusName(st));
    (void)st;
  }
}

// --- Runner ------------------------------------------------------------------

Runner::Runner(sim::Engine& engine, std::vector<host::Initiator*> initiators,
               controller::VolumeId vol, RunnerConfig config, obs::Hub* hub)
    : engine_(engine),
      initiators_(std::move(initiators)),
      vol_(vol),
      config_(config),
      hub_(hub) {}

PhaseResult Runner::Play(const Trace& trace) {
  PhaseResult result;
  const sim::Tick phase_start = engine_.now();

  // Per-host op queues (trace order preserved within a host).
  std::vector<std::vector<const TraceOp*>> host_ops(trace.hosts);
  for (const TraceOp& op : trace.ops) {
    if (op.host < trace.hosts) host_ops[op.host].push_back(&op);
  }

  // Phase instrumentation: a root span plus per-shape counters.
  obs::TraceContext root;
  obs::Counter* ops_counter = nullptr;
  obs::Counter* bytes_counter = nullptr;
  obs::Counter* prefetch_hits = nullptr;
  if (hub_ != nullptr) {
    root = hub_->tracer().StartTrace(
        obs::Layer::kHost, std::string("workload.") + ShapeName(trace.shape));
    const obs::Labels labels = {{"shape", ShapeName(trace.shape)}};
    ops_counter = &hub_->metrics().counter(
        "nlss_workload_ops_total", "Workload ops completed per shape",
        labels);
    bytes_counter = &hub_->metrics().counter(
        "nlss_workload_bytes_total", "Workload bytes transferred per shape",
        labels);
    prefetch_hits = &hub_->metrics().counter(
        "nlss_workload_prefetch_hits_total",
        "Opens served from the batched-prefetch staging buffer", labels);
  }

  // Distinct dentry-cache clients behind the initiator fleet (several
  // trace hosts can share one initiator); snapshot their stats so the
  // phase reports deltas.
  std::vector<meta::Client*> meta_clients;
  for (host::Initiator* init : initiators_) {
    meta::Client* c = init->meta();
    if (c == nullptr) continue;
    if (std::find(meta_clients.begin(), meta_clients.end(), c) ==
        meta_clients.end()) {
      meta_clients.push_back(c);
    }
  }
  std::uint64_t meta_resolves0 = 0, meta_hits0 = 0, meta_fallbacks0 = 0;
  for (const meta::Client* c : meta_clients) {
    meta_resolves0 += c->stats().resolves;
    meta_hits0 += c->stats().full_hits;
    meta_fallbacks0 += c->stats().revalidation_fallbacks;
  }

  // One prefetcher per trace host when the countermeasure is on.
  std::vector<std::unique_ptr<OpenBurstPrefetcher>> prefetchers;
  if (config_.prefetch.enabled) {
    prefetchers.reserve(trace.hosts);
    for (std::uint32_t h = 0; h < trace.hosts; ++h) {
      prefetchers.push_back(std::make_unique<OpenBurstPrefetcher>(
          engine_, *initiators_[h % initiators_.size()], vol_, trace.files,
          config_.prefetch, config_.tenant));
    }
  }

  // Closed loop per host: one outstanding op, honoring earliest-issue
  // times.  Locals live through the engine_.Run() below, so reference
  // captures are safe.
  std::vector<std::size_t> cursor(trace.hosts, 0);
  std::function<void(std::uint32_t)> pump = [&](std::uint32_t h) {
    if (cursor[h] >= host_ops[h].size()) return;
    const TraceOp* op = host_ops[h][cursor[h]++];
    const sim::Tick due = phase_start + op->at;
    auto issue = [&, h, op] {
      host::Initiator& init = *initiators_[h % initiators_.size()];
      const sim::Tick t0 = engine_.now();
      const bool is_open = op->kind == TraceOp::Kind::kOpen;
      auto done = [&, h, t0, is_open, length = op->length](bool ok) {
        ++result.ops;
        if (ok) {
          ++result.ok;
          result.bytes += length;
          const sim::Tick lat = engine_.now() - t0;
          result.latency.Record(lat);
          if (is_open) result.open_latency.Record(lat);
        } else {
          ++result.failed;
        }
        pump(h);
      };
      switch (op->kind) {
        case TraceOp::Kind::kOpen:
          if (config_.meta_files_per_dir > 0 && init.meta() != nullptr) {
            // Open = namespace resolve through the host dentry cache,
            // then the data read (none when the op carries no bytes).
            init.meta()->Resolve(
                MetaPathOf(op->file, config_.meta_files_per_dir),
                [&, h, op, init_ptr = &init, done = std::move(done)](
                    meta::Status st, meta::Dentry) {
                  if (st != meta::Status::kOk) {
                    done(false);
                    return;
                  }
                  if (op->length == 0) {
                    done(true);
                    return;
                  }
                  if (config_.prefetch.enabled) {
                    prefetchers[h]->Open(op->file, op->length, done);
                    return;
                  }
                  init_ptr->Read(vol_, trace.files.OffsetOf(op->file),
                                 op->length,
                                 [done](bool ok, util::Bytes) { done(ok); },
                                 /*priority=*/0, config_.tenant);
                });
          } else if (config_.prefetch.enabled) {
            prefetchers[h]->Open(op->file, op->length, std::move(done));
          } else if (op->length == 0) {
            engine_.Schedule(0, [done = std::move(done)]() { done(true); });
          } else {
            init.Read(vol_, trace.files.OffsetOf(op->file), op->length,
                      [done = std::move(done)](bool ok, util::Bytes) {
                        done(ok);
                      },
                      /*priority=*/0, config_.tenant);
          }
          break;
        case TraceOp::Kind::kRead:
          init.Read(vol_, trace.files.OffsetOf(op->file) + op->offset,
                    op->length,
                    [done = std::move(done)](bool ok, util::Bytes) {
                      done(ok);
                    },
                    /*priority=*/0, config_.tenant);
          break;
        case TraceOp::Kind::kWrite: {
          util::Bytes buf(op->length);
          util::FillPattern(buf, trace.files.OffsetOf(op->file) + op->offset);
          init.Write(vol_, trace.files.OffsetOf(op->file) + op->offset, buf,
                     std::move(done), config_.tenant);
          break;
        }
      }
    };
    if (engine_.now() < due) {
      engine_.Schedule(due - engine_.now(), std::move(issue));
    } else {
      issue();
    }
  };
  for (std::uint32_t h = 0; h < trace.hosts; ++h) pump(h);
  engine_.Run();

  result.elapsed = engine_.now() - phase_start;
  for (const auto& pf : prefetchers) result.prefetch.Add(pf->stats());
  for (const meta::Client* c : meta_clients) {
    result.meta_resolves += c->stats().resolves;
    result.meta_hits += c->stats().full_hits;
    result.meta_fallbacks += c->stats().revalidation_fallbacks;
  }
  result.meta_resolves -= meta_resolves0;
  result.meta_hits -= meta_hits0;
  result.meta_fallbacks -= meta_fallbacks0;
  if (hub_ != nullptr) {
    if (ops_counter != nullptr) ops_counter->Increment(result.ops);
    if (bytes_counter != nullptr) bytes_counter->Increment(result.bytes);
    if (prefetch_hits != nullptr) {
      prefetch_hits->Increment(result.prefetch.hits);
    }
    hub_->tracer().Annotate(
        root, std::string(ShapeName(trace.shape)) + " hosts=" +
                  std::to_string(trace.hosts) + " ops=" +
                  std::to_string(result.ops));
    hub_->tracer().EndTrace(root, result.failed == 0);
  }
  return result;
}

}  // namespace nlss::workload
