// Simulated network fabric: named nodes joined by duplex links, each link
// modelled with propagation latency + serialization bandwidth + FIFO
// queueing.  This is the "network as backplane" of the paper: hosts,
// controller blades, switches, disks, high-speed ports and remote sites are
// all nodes on one fabric, and every byte the system moves is charged here.
//
// Payloads do not travel through the fabric — data lives in the block store
// and caches; the fabric computes *when* a transfer of a given size
// completes and then runs the sender's completion callback.  That keeps the
// timing model honest while letting the storage logic operate on real bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/engine.h"

namespace nlss::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Latency/bandwidth description of one direction of a link.
struct LinkProfile {
  sim::Tick latency_ns = 1000;     // propagation delay
  double bytes_per_ns = 0.25;      // serialization bandwidth (2 Gb/s default)

  /// Standard profiles used throughout the experiments.
  static LinkProfile FibreChannel1G();
  static LinkProfile FibreChannel2G();
  static LinkProfile GigE();                // IP host attach (NFS/iSCSI)
  static LinkProfile TenGbE();
  static LinkProfile Infiniband4x();        // 10 Gb/s, very low latency
  static LinkProfile Backplane();           // intra-cluster controller mesh
  static LinkProfile Wan(sim::Tick one_way_latency_ns, double gbps);
};

struct LinkStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  sim::Tick busy_ns = 0;  // total serialization time
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine) : engine_(engine) {}

  /// Add a node; `name` is for diagnostics only.
  NodeId AddNode(std::string name);

  /// Connect two nodes with a duplex link (one profile per direction).
  void Connect(NodeId a, NodeId b, const LinkProfile& profile);
  void Connect(NodeId a, NodeId b, const LinkProfile& ab,
               const LinkProfile& ba);

  /// Send `bytes` from src to dst along the precomputed shortest path.
  /// `on_delivered` runs at the simulated delivery time.  If no route
  /// exists (node/link down), `on_dropped` runs immediately if provided,
  /// otherwise the message is counted in dropped().
  void Send(NodeId src, NodeId dst, std::uint64_t bytes,
            sim::Engine::Callback on_delivered,
            sim::Engine::Callback on_dropped = nullptr,
            obs::TraceContext ctx = {});

  /// One message of a batched fan-out (see SendBatch).
  struct Outbound {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint64_t bytes = 0;
    sim::Engine::Callback on_delivered;
    sim::Engine::Callback on_dropped;
    obs::TraceContext ctx;
  };

  /// Send a group of messages.  Observably identical to calling Send once
  /// per element in order — link accounting and event sequence numbers are
  /// assigned message-by-message — but the first-hop (and loopback) events
  /// enter the queue through one Engine::Batch insertion, which is what the
  /// replica/flush fan-outs want.  The vector's callbacks are consumed.
  void SendBatch(std::vector<Outbound> msgs);

  /// Mark a node up/down.  Down nodes route nothing.
  void SetNodeUp(NodeId n, bool up);
  bool IsNodeUp(NodeId n) const { return nodes_[n].up; }

  /// Mark the link between a and b up/down (both directions).
  void SetLinkUp(NodeId a, NodeId b, bool up);

  /// Degrade the link between a and b (both directions): every message
  /// pays `extra_ns` additional latency, and — when `stall_every` > 0 —
  /// every stall_every-th message on each direction additionally stalls
  /// `stall_ns` (a deterministic model of periodic firmware pauses or
  /// congestion bursts; the count is per direction, seeded at 0).  Pass
  /// all-zeros to clear.  Used for degraded-path fault injection.
  void SetLinkDegraded(NodeId a, NodeId b, sim::Tick extra_ns,
                       std::uint32_t stall_every = 0, sim::Tick stall_ns = 0);

  std::size_t NodeCount() const { return nodes_.size(); }
  const std::string& NodeName(NodeId n) const { return nodes_[n].name; }
  std::uint64_t dropped() const { return dropped_; }

  /// Aggregate stats over the directed link a->b; zeros if absent.
  LinkStats StatsFor(NodeId a, NodeId b) const;

  /// Total bytes carried over all links (each hop counted).
  std::uint64_t TotalBytesCarried() const;

  /// Number of hops between two nodes, or SIZE_MAX if unreachable.
  std::size_t HopCount(NodeId src, NodeId dst);

  sim::Engine& engine() { return engine_; }

 private:
  struct Link {
    NodeId to = kInvalidNode;
    LinkProfile profile;
    sim::Tick busy_until = 0;  // FIFO serialization horizon
    bool up = true;
    LinkStats stats;
    // Degradation injection (SetLinkDegraded).
    sim::Tick extra_ns = 0;
    std::uint32_t stall_every = 0;
    sim::Tick stall_ns = 0;
  };
  struct Node {
    std::string name;
    bool up = true;
    std::vector<std::size_t> out;  // indices into links_
  };

  /// BFS next-hop table computation (invalidated by topology changes).
  void EnsureRoutes();
  std::size_t FindLinkIndex(NodeId a, NodeId b) const;
  /// Shared body of Send/SendBatch; `batch` (when non-null) stages the
  /// first-hop event instead of pushing it immediately.
  void SendImpl(NodeId src, NodeId dst, std::uint64_t bytes,
                sim::Engine::Callback on_delivered,
                sim::Engine::Callback on_dropped, obs::TraceContext ctx,
                sim::Engine::Batch* batch);

  sim::Engine& engine_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  // routes_[src * N + dst] = link index of first hop, or SIZE_MAX.
  std::vector<std::size_t> routes_;
  bool routes_valid_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace nlss::net
