#include "net/fabric.h"

#include <cassert>
#include <cmath>
#include <deque>

#include "util/units.h"

namespace nlss::net {

using util::GbpsToBytesPerNs;

LinkProfile LinkProfile::FibreChannel1G() {
  return LinkProfile{.latency_ns = 1000, .bytes_per_ns = GbpsToBytesPerNs(1.0)};
}
LinkProfile LinkProfile::FibreChannel2G() {
  return LinkProfile{.latency_ns = 1000, .bytes_per_ns = GbpsToBytesPerNs(2.0)};
}
LinkProfile LinkProfile::GigE() {
  // IP attach: higher latency (software stack), 1 Gb/s.
  return LinkProfile{.latency_ns = 50000, .bytes_per_ns = GbpsToBytesPerNs(1.0)};
}
LinkProfile LinkProfile::TenGbE() {
  return LinkProfile{.latency_ns = 1500, .bytes_per_ns = GbpsToBytesPerNs(10.0)};
}
LinkProfile LinkProfile::Infiniband4x() {
  return LinkProfile{.latency_ns = 200, .bytes_per_ns = GbpsToBytesPerNs(10.0)};
}
LinkProfile LinkProfile::Backplane() {
  // Intra-cluster controller mesh: short, fat pipes (the paper's
  // "network as backplane").
  return LinkProfile{.latency_ns = 500, .bytes_per_ns = GbpsToBytesPerNs(8.0)};
}
LinkProfile LinkProfile::Wan(sim::Tick one_way_latency_ns, double gbps) {
  return LinkProfile{.latency_ns = one_way_latency_ns,
                     .bytes_per_ns = GbpsToBytesPerNs(gbps)};
}

NodeId Fabric::AddNode(std::string name) {
  nodes_.push_back(Node{.name = std::move(name), .up = true, .out = {}});
  routes_valid_ = false;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Fabric::Connect(NodeId a, NodeId b, const LinkProfile& profile) {
  Connect(a, b, profile, profile);
}

void Fabric::Connect(NodeId a, NodeId b, const LinkProfile& ab,
                     const LinkProfile& ba) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  links_.push_back(Link{.to = b, .profile = ab, .busy_until = 0, .up = true,
                        .stats = {}});
  nodes_[a].out.push_back(links_.size() - 1);
  links_.push_back(Link{.to = a, .profile = ba, .busy_until = 0, .up = true,
                        .stats = {}});
  nodes_[b].out.push_back(links_.size() - 1);
  routes_valid_ = false;
}

void Fabric::SetNodeUp(NodeId n, bool up) {
  assert(n < nodes_.size());
  nodes_[n].up = up;
  routes_valid_ = false;
}

std::size_t Fabric::FindLinkIndex(NodeId a, NodeId b) const {
  for (std::size_t li : nodes_[a].out) {
    if (links_[li].to == b) return li;
  }
  return static_cast<std::size_t>(-1);
}

void Fabric::SetLinkUp(NodeId a, NodeId b, bool up) {
  const std::size_t ab = FindLinkIndex(a, b);
  const std::size_t ba = FindLinkIndex(b, a);
  if (ab != static_cast<std::size_t>(-1)) links_[ab].up = up;
  if (ba != static_cast<std::size_t>(-1)) links_[ba].up = up;
  routes_valid_ = false;
}

void Fabric::SetLinkDegraded(NodeId a, NodeId b, sim::Tick extra_ns,
                             std::uint32_t stall_every, sim::Tick stall_ns) {
  for (const std::size_t li : {FindLinkIndex(a, b), FindLinkIndex(b, a)}) {
    if (li == static_cast<std::size_t>(-1)) continue;
    links_[li].extra_ns = extra_ns;
    links_[li].stall_every = stall_every;
    links_[li].stall_ns = stall_ns;
  }
}

void Fabric::EnsureRoutes() {
  if (routes_valid_) return;
  const std::size_t n = nodes_.size();
  routes_.assign(n * n, static_cast<std::size_t>(-1));
  // BFS from every source over up nodes/links; first hop recorded per dst.
  std::deque<NodeId> q;
  std::vector<std::size_t> first_hop(n);
  std::vector<bool> visited(n);
  for (NodeId src = 0; src < n; ++src) {
    if (!nodes_[src].up) continue;
    std::fill(visited.begin(), visited.end(), false);
    std::fill(first_hop.begin(), first_hop.end(), static_cast<std::size_t>(-1));
    visited[src] = true;
    q.clear();
    q.push_back(src);
    while (!q.empty()) {
      const NodeId cur = q.front();
      q.pop_front();
      for (std::size_t li : nodes_[cur].out) {
        const Link& l = links_[li];
        if (!l.up || !nodes_[l.to].up || visited[l.to]) continue;
        visited[l.to] = true;
        first_hop[l.to] = (cur == src) ? li : first_hop[cur];
        routes_[src * n + l.to] = first_hop[l.to];
        q.push_back(l.to);
      }
    }
  }
  routes_valid_ = true;
}

std::size_t Fabric::HopCount(NodeId src, NodeId dst) {
  if (src == dst) return 0;
  EnsureRoutes();
  const std::size_t n = nodes_.size();
  std::size_t hops = 0;
  NodeId cur = src;
  while (cur != dst) {
    const std::size_t li = routes_[cur * n + dst];
    if (li == static_cast<std::size_t>(-1)) {
      return static_cast<std::size_t>(-1);
    }
    cur = links_[li].to;
    ++hops;
    if (hops > n) return static_cast<std::size_t>(-1);  // defensive
  }
  return hops;
}

void Fabric::Send(NodeId src, NodeId dst, std::uint64_t bytes,
                  sim::Engine::Callback on_delivered,
                  sim::Engine::Callback on_dropped, obs::TraceContext ctx) {
  SendImpl(src, dst, bytes, std::move(on_delivered), std::move(on_dropped),
           ctx, nullptr);
}

void Fabric::SendBatch(std::vector<Outbound> msgs) {
  sim::Engine::Batch batch(engine_);
  for (Outbound& m : msgs) {
    SendImpl(m.src, m.dst, m.bytes, std::move(m.on_delivered),
             std::move(m.on_dropped), m.ctx, &batch);
  }
}

void Fabric::SendImpl(NodeId src, NodeId dst, std::uint64_t bytes,
                      sim::Engine::Callback on_delivered,
                      sim::Engine::Callback on_dropped, obs::TraceContext ctx,
                      sim::Engine::Batch* batch) {
  assert(src < nodes_.size() && dst < nodes_.size());
  if (src == dst) {
    // Loopback: no fabric cost beyond a scheduling point.
    if (batch != nullptr) {
      batch->Add(0, std::move(on_delivered));
    } else {
      engine_.Schedule(0, std::move(on_delivered));
    }
    return;
  }
  if (ctx.sampled()) {
    // One network span covers the whole multi-hop transfer.  If the message
    // is dropped with no drop handler the span stays open and is clamped at
    // trace end.
    const obs::TraceContext span =
        obs::StartSpan(ctx, obs::Layer::kNet, "net.send");
    on_delivered = [span, cb = std::move(on_delivered)] {
      obs::EndSpan(span);
      cb();
    };
    if (on_dropped) {
      on_dropped = [span, cb = std::move(on_dropped)] {
        obs::EndSpan(span);
        cb();
      };
    }
  }
  // The per-hop walk re-resolves the route at each hop so that topology
  // changes mid-flight behave like a real fabric (packet follows current
  // tables; drops if the path disappears).
  struct Transit {
    Fabric* fabric;
    NodeId dst;
    std::uint64_t bytes;
    sim::Engine::Callback delivered;
    sim::Engine::Callback dropped;

    // `batch` is only non-null for the first hop (SendBatch staging); later
    // hops run from inside events and push directly.
    void Hop(NodeId cur, sim::Engine::Batch* batch = nullptr) {
      Fabric& f = *fabric;
      auto fail = [this] {
        ++fabric->dropped_;
        if (dropped) dropped();
      };
      if (!f.nodes_[cur].up || !f.nodes_[dst].up) {
        fail();
        return;
      }
      f.EnsureRoutes();
      const std::size_t li = f.routes_[cur * f.nodes_.size() + dst];
      if (li == static_cast<std::size_t>(-1)) {
        fail();
        return;
      }
      Link& l = f.links_[li];
      const sim::Tick now = f.engine_.now();
      const sim::Tick start = std::max(now, l.busy_until);
      const auto ser = static_cast<sim::Tick>(
          std::llround(static_cast<double>(bytes) / l.profile.bytes_per_ns));
      l.busy_until = start + ser;
      l.stats.bytes += bytes;
      l.stats.messages += 1;
      l.stats.busy_ns += ser;
      sim::Tick degrade = l.extra_ns;
      if (l.stall_every > 0 && l.stats.messages % l.stall_every == 0) {
        degrade += l.stall_ns;
      }
      const sim::Tick arrival = start + ser + l.profile.latency_ns + degrade;
      const NodeId next = l.to;
      // Copy the Transit by value into the event so it survives this frame.
      Transit self = std::move(*this);
      auto deliver = [self = std::move(self), next]() mutable {
        if (next == self.dst) {
          self.delivered();
        } else {
          self.Hop(next);
        }
      };
      if (batch != nullptr) {
        batch->AddAt(arrival, std::move(deliver));
      } else {
        f.engine_.ScheduleAt(arrival, std::move(deliver));
      }
    }
  };
  Transit t{this, dst, bytes, std::move(on_delivered), std::move(on_dropped)};
  t.Hop(src, batch);
}

LinkStats Fabric::StatsFor(NodeId a, NodeId b) const {
  const std::size_t li = FindLinkIndex(a, b);
  return li == static_cast<std::size_t>(-1) ? LinkStats{} : links_[li].stats;
}

std::uint64_t Fabric::TotalBytesCarried() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l.stats.bytes;
  return total;
}

}  // namespace nlss::net
