#include "fs/filesystem.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "util/bytes.h"

namespace nlss::fs {
namespace {

struct Join {
  Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;
  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not found";
    case Status::kExists: return "already exists";
    case Status::kNotDirectory: return "not a directory";
    case Status::kIsDirectory: return "is a directory";
    case Status::kNotEmpty: return "directory not empty";
    case Status::kInvalidArgument: return "invalid argument";
    case Status::kNoSpace: return "no space";
    case Status::kIoError: return "I/O error";
  }
  return "?";
}

FileSystem::FileSystem(controller::StorageSystem& system, Config config)
    : system_(system), config_(config) {
  volume_ = system_.CreateVolume(config_.tenant, config_.volume_bytes);
  writer_id_ = system_.AllocWriterId();
  max_chunks_ = config_.volume_bytes / config_.chunk_bytes;
  Inode root;
  root.ino = kRootIno;
  root.type = FileType::kDirectory;
  inodes_[kRootIno] = std::move(root);
}

std::vector<std::string> FileSystem::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(std::move(cur));
  return parts;
}

FileSystem::Resolved FileSystem::Resolve(const std::string& path) {
  Resolved r;
  const auto parts = SplitPath(path);
  Inode* cur = &inodes_[kRootIno];
  if (parts.empty()) {
    r.parent = nullptr;
    r.node = cur;
    return r;
  }
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (cur->type != FileType::kDirectory) return {};
    const meta::Dentry* e = cur->entries.Find(parts[i]);
    if (e == nullptr) return {};
    cur = &inodes_[e->ino];
  }
  if (cur->type != FileType::kDirectory) return {};
  r.parent = cur;
  r.leaf = parts.back();
  const meta::Dentry* e = cur->entries.Find(r.leaf);
  r.node = e == nullptr ? nullptr : &inodes_[e->ino];
  return r;
}

const Inode* FileSystem::ResolveConst(const std::string& path) const {
  return const_cast<FileSystem*>(this)->Resolve(path).node;
}

Status FileSystem::Mkdir(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent == nullptr) return Status::kNotFound;
  if (r.node != nullptr) return Status::kExists;
  if (r.leaf.empty()) return Status::kInvalidArgument;
  Inode dir;
  dir.ino = next_ino_++;
  dir.type = FileType::kDirectory;
  const InodeNum ino = dir.ino;
  inodes_[ino] = std::move(dir);
  r.parent->entries.Insert(r.leaf, meta::Dentry{ino, true});
  return Status::kOk;
}

Status FileSystem::Create(const std::string& path, const FilePolicy& policy) {
  Resolved r = Resolve(path);
  if (r.parent == nullptr) return Status::kNotFound;
  if (r.node != nullptr) return Status::kExists;
  if (r.leaf.empty()) return Status::kInvalidArgument;
  Inode file;
  file.ino = next_ino_++;
  file.type = FileType::kFile;
  file.policy = policy;
  const InodeNum ino = file.ino;
  inodes_[ino] = std::move(file);
  r.parent->entries.Insert(r.leaf, meta::Dentry{ino, false});
  return Status::kOk;
}

Status FileSystem::Unlink(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent == nullptr || r.node == nullptr) return Status::kNotFound;
  if (r.node->type == FileType::kDirectory) return Status::kIsDirectory;
  // Release the file's chunks (physical space returns to the pool).
  for (const std::uint64_t chunk : r.node->chunks) FreeChunk(chunk);
  const InodeNum ino = r.node->ino;
  r.parent->entries.Erase(r.leaf);
  inodes_.erase(ino);
  return Status::kOk;
}

Status FileSystem::Rmdir(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent == nullptr || r.node == nullptr) return Status::kNotFound;
  if (r.node->type != FileType::kDirectory) return Status::kNotDirectory;
  if (!r.node->entries.empty()) return Status::kNotEmpty;
  const InodeNum ino = r.node->ino;
  r.parent->entries.Erase(r.leaf);
  inodes_.erase(ino);
  return Status::kOk;
}

Status FileSystem::Rename(const std::string& from, const std::string& to) {
  Resolved src = Resolve(from);
  if (src.parent == nullptr || src.node == nullptr) return Status::kNotFound;
  Resolved dst = Resolve(to);
  if (dst.parent == nullptr) return Status::kNotFound;
  if (dst.node != nullptr) return Status::kExists;
  if (dst.leaf.empty()) return Status::kInvalidArgument;
  const InodeNum ino = src.node->ino;
  const bool is_dir = src.node->type == FileType::kDirectory;
  // Note: Resolve() returned stable pointers into inodes_ (std::map).
  src.parent->entries.Erase(src.leaf);
  dst.parent->entries.Insert(dst.leaf, meta::Dentry{ino, is_dir});
  return Status::kOk;
}

bool FileSystem::Exists(const std::string& path) const {
  return ResolveConst(path) != nullptr;
}

const Inode* FileSystem::Stat(const std::string& path) const {
  return ResolveConst(path);
}

std::vector<std::string> FileSystem::List(const std::string& path) const {
  const Inode* dir = ResolveConst(path);
  std::vector<std::string> out;
  if (dir == nullptr || dir->type != FileType::kDirectory) return out;
  out.reserve(dir->entries.size());
  dir->entries.ForEach(
      [&out](const std::string& name, const meta::Dentry&) {
        out.push_back(name);
      });
  return out;
}

Status FileSystem::SetPolicy(const std::string& path,
                             const FilePolicy& policy) {
  Resolved r = Resolve(path);
  if (r.node == nullptr) return Status::kNotFound;
  r.node->policy = policy;
  return Status::kOk;
}

std::uint64_t FileSystem::AllocateChunk() {
  if (!free_chunks_.empty()) {
    const std::uint64_t c = free_chunks_.back();
    free_chunks_.pop_back();
    return c;
  }
  if (next_chunk_ >= max_chunks_) return ~0ull;
  return next_chunk_++;
}

void FileSystem::FreeChunk(std::uint64_t chunk) {
  free_chunks_.push_back(chunk);
  // Return the physical extents beneath the chunk to the pool.
  const std::uint32_t bs = system_.pool().block_size();
  system_.volume(volume_).Trim(ChunkBase(chunk) / bs,
                               config_.chunk_bytes / bs, [](bool) {});
}

Status FileSystem::EnsureChunks(Inode& inode, std::uint64_t end_offset) {
  const std::uint64_t needed =
      (end_offset + config_.chunk_bytes - 1) / config_.chunk_bytes;
  while (inode.chunks.size() < needed) {
    if (config_.quota_bytes > 0 &&
        UsedBytes() + config_.chunk_bytes > config_.quota_bytes) {
      return Status::kNoSpace;  // hard quota (paper §3 automated admin)
    }
    const std::uint64_t c = AllocateChunk();
    if (c == ~0ull) return Status::kNoSpace;
    inode.chunks.push_back(c);
  }
  return Status::kOk;
}

void FileSystem::Write(const std::string& path, std::uint64_t offset,
                       std::span<const std::uint8_t> data, WriteCallback cb,
                       obs::TraceContext ctx) {
  Resolved r = Resolve(path);
  if (r.node == nullptr) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kNotFound);
    });
    return;
  }
  if (r.node->type != FileType::kFile) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kIsDirectory);
    });
    return;
  }
  Inode& inode = *r.node;
  const Status st = EnsureChunks(inode, offset + data.size());
  if (st != Status::kOk) {
    system_.engine().Schedule(0, [cb = std::move(cb), st] { cb(st); });
    return;
  }
  inode.size = std::max(inode.size, offset + data.size());

  // Split across chunks; each piece rides the cache cluster with the
  // file's replication policy, entering at a balanced blade.
  const std::uint32_t cb_bytes = config_.chunk_bytes;
  struct Piece {
    std::uint64_t vol_offset;
    std::size_t src;
    std::uint32_t len;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = offset;
  std::size_t src = 0;
  std::size_t left = data.size();
  while (left > 0) {
    const std::uint64_t ci = cur / cb_bytes;
    const std::uint32_t in_chunk = static_cast<std::uint32_t>(cur % cb_bytes);
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(left, cb_bytes - in_chunk));
    pieces.push_back(
        Piece{ChunkBase(inode.chunks[ci]) + in_chunk, src, n});
    cur += n;
    src += n;
    left -= n;
  }
  const std::uint32_t replication = inode.policy.cache_replication;
  const std::uint8_t priority = inode.policy.cache_priority;
  const qos::TenantId tenant = inode.policy.qos_tenant;
  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [cb = std::move(cb)](bool ok) {
        cb(ok ? Status::kOk : Status::kIoError);
      });
  for (const Piece& p : pieces) {
    const cache::ControllerId via = system_.PickController(volume_);
    const cache::WriteId wid = NextWriteId();
    system_.BladeWrite(
        via, volume_, p.vol_offset,
        std::span<const std::uint8_t>(data.data() + p.src, p.len), replication,
        priority, tenant, wid,
        [this, join, wid](bool ok) {
          unsettled_writes_.erase(wid.seq);
          join->Arrive(ok);
        },
        ctx);
  }
}

cache::WriteId FileSystem::NextWriteId() {
  const std::uint64_t settled = unsettled_writes_.empty()
                                    ? next_write_seq_
                                    : *unsettled_writes_.begin();
  const cache::WriteId wid{writer_id_, next_write_seq_, settled};
  unsettled_writes_.insert(next_write_seq_);
  ++next_write_seq_;
  return wid;
}

void FileSystem::Read(const std::string& path, std::uint64_t offset,
                      std::uint64_t length, ReadCallback cb,
                      obs::TraceContext ctx) {
  Resolved r = Resolve(path);
  if (r.node == nullptr) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kNotFound, {});
    });
    return;
  }
  if (r.node->type != FileType::kFile) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kIsDirectory, {});
    });
    return;
  }
  Inode& inode = *r.node;
  if (offset >= inode.size || length == 0) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kOk, {});
    });
    return;
  }
  length = std::min(length, inode.size - offset);

  const std::uint32_t cb_bytes = config_.chunk_bytes;
  auto result = std::make_shared<util::Bytes>(length, 0);
  struct Piece {
    std::uint64_t vol_offset;
    std::size_t out;
    std::uint32_t len;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = offset;
  std::size_t out = 0;
  std::uint64_t left = length;
  while (left > 0) {
    const std::uint64_t ci = cur / cb_bytes;
    const std::uint32_t in_chunk = static_cast<std::uint32_t>(cur % cb_bytes);
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, cb_bytes - in_chunk));
    pieces.push_back(Piece{ChunkBase(inode.chunks[ci]) + in_chunk, out, n});
    cur += n;
    out += n;
    left -= n;
  }
  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [result, cb = std::move(cb)](bool ok) {
        cb(ok ? Status::kOk : Status::kIoError,
           ok ? std::move(*result) : util::Bytes{});
      });
  for (const Piece& p : pieces) {
    const cache::ControllerId via = system_.PickController(volume_);
    system_.BladeRead(
        via, volume_, p.vol_offset, p.len, inode.policy.cache_priority,
        inode.policy.qos_tenant,
        [result, p, join](bool ok, util::Bytes data) {
          if (ok) {
            std::copy(data.begin(), data.end(),
                      result->begin() + static_cast<std::ptrdiff_t>(p.out));
          }
          join->Arrive(ok);
        },
        ctx);
  }
}

void FileSystem::Truncate(const std::string& path, std::uint64_t new_size,
                          WriteCallback cb) {
  Resolved r = Resolve(path);
  if (r.node == nullptr || r.node->type != FileType::kFile) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(Status::kNotFound);
    });
    return;
  }
  Inode& inode = *r.node;
  if (new_size >= inode.size) {
    // Extension: chunks are allocated lazily on the next write.
    inode.size = new_size;
    system_.engine().Schedule(0, [cb = std::move(cb)] { cb(Status::kOk); });
    return;
  }
  const std::uint64_t keep =
      (new_size + config_.chunk_bytes - 1) / config_.chunk_bytes;
  while (inode.chunks.size() > keep) {
    FreeChunk(inode.chunks.back());
    inode.chunks.pop_back();
  }
  inode.size = new_size;
  system_.engine().Schedule(0, [cb = std::move(cb)] { cb(Status::kOk); });
}

// --- Persistence --------------------------------------------------------------

util::Bytes FileSystem::SerializeMetadata() const {
  util::ByteWriter w;
  w.U32(0x4E4C4653);  // "NLFS"
  w.U64(next_ino_);
  w.U64(next_chunk_);
  w.U64(inodes_.size());
  for (const auto& [ino, node] : inodes_) {
    w.U64(ino);
    w.U8(static_cast<std::uint8_t>(node.type));
    w.U64(node.size);
    w.U8(node.policy.cache_priority);
    w.U32(node.policy.cache_replication);
    w.U8(node.policy.geo_replicate ? 1 : 0);
    w.U8(node.policy.geo_sync ? 1 : 0);
    w.U32(node.policy.geo_sites);
    w.U64(node.policy.geo_min_distance_km);
    w.U8(node.policy.raid_override
             ? static_cast<std::uint8_t>(*node.policy.raid_override) + 1
             : 0);
    w.U32(node.policy.qos_tenant);
    w.U64(node.chunks.size());
    for (const auto c : node.chunks) w.U64(c);
    w.U64(node.entries.size());
    // ForEach visits lexicographically — byte-identical to the old
    // std::map iteration, so existing checkpoints stay compatible.
    node.entries.ForEach(
        [&w](const std::string& name, const meta::Dentry& d) {
          w.Str(name);
          w.U64(d.ino);
        });
  }
  w.U64(free_chunks_.size());
  for (const auto c : free_chunks_) w.U64(c);
  return w.Take();
}

Status FileSystem::LoadMetadata(std::span<const std::uint8_t> blob) {
  try {
    util::ByteReader r(blob);
    if (r.U32() != 0x4E4C4653) return Status::kInvalidArgument;
    next_ino_ = r.U64();
    next_chunk_ = r.U64();
    const std::uint64_t count = r.U64();
    std::map<InodeNum, Inode> inodes;
    for (std::uint64_t i = 0; i < count; ++i) {
      Inode node;
      node.ino = r.U64();
      node.type = static_cast<FileType>(r.U8());
      node.size = r.U64();
      node.policy.cache_priority = r.U8();
      node.policy.cache_replication = r.U32();
      node.policy.geo_replicate = r.U8() != 0;
      node.policy.geo_sync = r.U8() != 0;
      node.policy.geo_sites = r.U32();
      node.policy.geo_min_distance_km = r.U64();
      const std::uint8_t raid = r.U8();
      if (raid != 0) {
        node.policy.raid_override = static_cast<raid::RaidLevel>(raid - 1);
      }
      node.policy.qos_tenant = r.U32();
      const std::uint64_t nchunks = r.U64();
      node.chunks.reserve(nchunks);
      for (std::uint64_t c = 0; c < nchunks; ++c) node.chunks.push_back(r.U64());
      const std::uint64_t nentries = r.U64();
      for (std::uint64_t e = 0; e < nentries; ++e) {
        const std::string name = r.Str();
        const InodeNum child = r.U64();
        // Child types are unknown until every inode is loaded; is_dir is
        // fixed up below.
        node.entries.Insert(name, meta::Dentry{child, false});
      }
      inodes[node.ino] = std::move(node);
    }
    std::vector<std::uint64_t> free_chunks;
    const std::uint64_t nfree = r.U64();
    for (std::uint64_t i = 0; i < nfree; ++i) free_chunks.push_back(r.U64());
    if (inodes.find(kRootIno) == inodes.end()) return Status::kInvalidArgument;
    for (auto& [ino, node] : inodes) {
      if (node.type != FileType::kDirectory) continue;
      std::vector<std::pair<std::string, InodeNum>> kids;
      node.entries.ForEach(
          [&kids](const std::string& name, const meta::Dentry& d) {
            kids.emplace_back(name, d.ino);
          });
      for (const auto& [name, child] : kids) {
        const auto cit = inodes.find(child);
        if (cit != inodes.end() &&
            cit->second.type == FileType::kDirectory) {
          node.entries.FindMutable(name)->is_dir = true;
        }
      }
    }
    inodes_ = std::move(inodes);
    free_chunks_ = std::move(free_chunks);
    return Status::kOk;
  } catch (const std::out_of_range&) {
    return Status::kInvalidArgument;
  }
}

// --- Introspection ------------------------------------------------------------

std::uint64_t FileSystem::TotalFiles() const {
  std::uint64_t n = 0;
  for (const auto& [ino, node] : inodes_) {
    if (node.type == FileType::kFile) ++n;
  }
  return n;
}

std::uint64_t FileSystem::AllocatedChunks() const {
  std::uint64_t n = 0;
  for (const auto& [ino, node] : inodes_) n += node.chunks.size();
  return n;
}

void FileSystem::WalkFiles(
    const Inode& dir, const std::string& prefix,
    const std::function<void(const std::string&, const Inode&)>& fn) const {
  dir.entries.ForEach([&](const std::string& name, const meta::Dentry& d) {
    const Inode& node = inodes_.at(d.ino);
    const std::string path = prefix + "/" + name;
    if (node.type == FileType::kFile) {
      fn(path, node);
    } else {
      WalkFiles(node, path, fn);
    }
  });
}

void FileSystem::ForEachFile(
    const std::function<void(const std::string&, const Inode&)>& fn) const {
  WalkFiles(inodes_.at(kRootIno), "", fn);
}

}  // namespace nlss::fs
