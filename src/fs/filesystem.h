// Parallel file system integrated on the controller blades (paper §4).
//
// The namespace and inode table are controller-resident metadata; file data
// lives in chunks allocated from a demand-mapped volume and is accessed
// through the coherent cache cluster, so any blade can serve any file.
//
// The paper's "extended metadata" is the FilePolicy: per-file (not
// per-volume) knobs for cache retention, write-back fault tolerance
// (N-way cache replication), geographic replication mode/extent, and RAID
// preference.  The geo layer (src/geo) consumes the geo fields; the data
// path here consumes the cache replication field on every write.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "controller/system.h"
#include "meta/btree.h"
#include "qos/tenant.h"
#include "raid/layout.h"
#include "util/bytes.h"

namespace nlss::fs {

using InodeNum = std::uint64_t;
inline constexpr InodeNum kRootIno = 1;

enum class Status {
  kOk,
  kNotFound,
  kExists,
  kNotDirectory,
  kIsDirectory,
  kNotEmpty,
  kInvalidArgument,
  kNoSpace,
  kIoError,
};

const char* StatusName(Status s);

/// Per-file extended metadata (paper §4).
struct FilePolicy {
  std::uint8_t cache_priority = 0;      // higher = retained longer (advisory)
  std::uint32_t cache_replication = 2;  // N-way write-back fault tolerance
  bool geo_replicate = false;           // replicate across sites at all?
  bool geo_sync = false;                // synchronous vs asynchronous
  std::uint32_t geo_sites = 2;          // copies across sites (incl. home)
  std::uint64_t geo_min_distance_km = 0;
  std::optional<raid::RaidLevel> raid_override;  // placement preference
  // QoS tenant this file's I/O is billed to (kAutoTenant = resolve from
  // the FS volume's tenant binding).  Lets one namespace serve several
  // labs with per-file service classes.
  qos::TenantId qos_tenant = qos::kAutoTenant;
};

enum class FileType : std::uint8_t { kFile, kDirectory };

struct Inode {
  InodeNum ino = 0;
  FileType type = FileType::kFile;
  std::uint64_t size = 0;
  FilePolicy policy;
  std::vector<std::uint64_t> chunks;  // volume chunk indices
  /// Directories only: ordered B-tree dentry index (lexicographic listing,
  /// range scans).  The is_dir flag in each dentry is advisory here — the
  /// inode table stays authoritative for types.
  meta::DentryIndex entries;
};

class FileSystem {
 public:
  struct Config {
    std::uint64_t volume_bytes = 4ull * util::GiB;  // thin: costs nothing
    std::uint32_t chunk_bytes = 1 * util::MiB;      // file allocation granule
    std::string tenant = "fs";
    std::uint64_t quota_bytes = 0;  // 0 = unlimited; else hard FS quota
  };

  /// Creates the FS backing volume on the given system.
  explicit FileSystem(controller::StorageSystem& system)
      : FileSystem(system, Config()) {}
  FileSystem(controller::StorageSystem& system, Config config);

  // --- Namespace (metadata ops are controller-local, hence synchronous) ----
  Status Mkdir(const std::string& path);
  Status Create(const std::string& path, const FilePolicy& policy = {});
  Status Unlink(const std::string& path);
  Status Rmdir(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  bool Exists(const std::string& path) const;
  const Inode* Stat(const std::string& path) const;
  std::vector<std::string> List(const std::string& path) const;

  /// Paper §4: behaviors are "dynamically set on a file by file basis".
  Status SetPolicy(const std::string& path, const FilePolicy& policy);

  // --- Data ------------------------------------------------------------------
  using ReadCallback = std::function<void(Status, util::Bytes)>;
  using WriteCallback = std::function<void(Status)>;

  /// Write (extending the file as needed).  Replication factor comes from
  /// the file's policy.
  void Write(const std::string& path, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb,
             obs::TraceContext ctx = {});
  void Read(const std::string& path, std::uint64_t offset,
            std::uint64_t length, ReadCallback cb,
            obs::TraceContext ctx = {});
  void Truncate(const std::string& path, std::uint64_t new_size,
                WriteCallback cb);

  // --- Persistence --------------------------------------------------------------
  /// Serialize the namespace + inode table (for metadata checkpoints and
  /// the geo layer's catch-up shipping).
  util::Bytes SerializeMetadata() const;
  Status LoadMetadata(std::span<const std::uint8_t> blob);

  // --- Quota (automated resource administration, paper §3) -----------------
  /// Change the hard quota; shrinking below current usage is allowed — it
  /// just blocks further growth.
  void SetQuota(std::uint64_t bytes) { config_.quota_bytes = bytes; }
  std::uint64_t QuotaBytes() const { return config_.quota_bytes; }
  std::uint64_t UsedBytes() const {
    return AllocatedChunks() * config_.chunk_bytes;
  }

  // --- Introspection --------------------------------------------------------------
  std::uint64_t TotalFiles() const;
  std::uint64_t AllocatedChunks() const;
  controller::VolumeId volume_id() const { return volume_; }
  const Config& config() const { return config_; }
  controller::StorageSystem& system() { return system_; }

  /// Iterate over all files (path, inode); used by the geo replicator.
  void ForEachFile(
      const std::function<void(const std::string&, const Inode&)>& fn) const;

 private:
  struct Resolved {
    Inode* parent = nullptr;
    Inode* node = nullptr;   // nullptr if the leaf does not exist
    std::string leaf;
  };

  static std::vector<std::string> SplitPath(const std::string& path);
  Resolved Resolve(const std::string& path);
  const Inode* ResolveConst(const std::string& path) const;

  std::uint64_t AllocateChunk();
  void FreeChunk(std::uint64_t chunk);
  /// Ensure the file has chunks covering [0, end_offset).
  Status EnsureChunks(Inode& inode, std::uint64_t end_offset);
  std::uint64_t ChunkBase(std::uint64_t chunk) const {
    return chunk * config_.chunk_bytes;
  }

  void WalkFiles(const Inode& dir, const std::string& prefix,
                 const std::function<void(const std::string&, const Inode&)>&
                     fn) const;

  /// Stamp the next write id (blade-side dedup token) with the current
  /// settled cursor; the seq joins the unsettled set until its BladeWrite
  /// completes (single attempt, so completion == fully resolved).
  cache::WriteId NextWriteId();

  controller::StorageSystem& system_;
  Config config_;
  controller::VolumeId volume_;
  std::map<InodeNum, Inode> inodes_;
  InodeNum next_ino_ = kRootIno + 1;
  std::uint64_t next_chunk_ = 0;
  std::vector<std::uint64_t> free_chunks_;
  std::uint64_t max_chunks_;
  std::uint32_t writer_id_ = 0;
  std::uint64_t next_write_seq_ = 1;
  std::set<std::uint64_t> unsettled_writes_;
};

}  // namespace nlss::fs
