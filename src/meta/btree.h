// Ordered dentry index: an in-memory B-tree over directory entries.
//
// Directories in the original seed were flat hash-ish maps; a metadata
// storm wants ordered listing, cheap range scans ("give me the next 1000
// entries after X" for paginated readdir), and cache-friendly nodes.  This
// is a ScaleStore-BTree-inspired ordered index specialised for dentries:
// string keys, small fixed-fanout nodes, split-on-insert, and
// collapse-empty-nodes-on-erase (directory churn is insert/erase heavy but
// rarely leaves a node exactly half-full for long, so classic borrow/merge
// rebalancing buys little here — Validate() checks ordering and uniform
// depth, not minimum occupancy).
//
// Separator invariant (looser than the textbook, simpler to maintain, and
// exactly as correct): for an inner node, keys[i] with i >= 1 satisfies
//   max(subtree i-1) < keys[i] <= min(subtree i)
// keys[0] is only a routing hint (descents clamp to child 0), so erasing a
// subtree minimum never has to rewrite ancestors.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace nlss::meta {

/// Inode number in the sharded namespace (directories' ino is their DirId).
using Ino = std::uint64_t;

struct Dentry {
  Ino ino = 0;
  bool is_dir = false;
};

class DentryIndex {
 public:
  DentryIndex();
  ~DentryIndex();
  DentryIndex(DentryIndex&&) noexcept;
  DentryIndex& operator=(DentryIndex&&) noexcept;
  DentryIndex(const DentryIndex&) = delete;
  DentryIndex& operator=(const DentryIndex&) = delete;

  /// Insert `name` -> `dentry`; false (and no change) when the name exists.
  bool Insert(const std::string& name, const Dentry& dentry);
  /// Remove `name`; false when absent.
  bool Erase(const std::string& name);
  const Dentry* Find(const std::string& name) const;
  /// Mutable lookup (fs uses it to fix up advisory is_dir after a load).
  Dentry* FindMutable(const std::string& name);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order visit of every entry (lexicographic by name).
  void ForEach(
      const std::function<void(const std::string&, const Dentry&)>& fn) const;

  /// Ordered range scan: up to `limit` entries with name >= `from`
  /// (lexicographic).  limit == 0 means no bound.
  std::vector<std::pair<std::string, Dentry>> Scan(const std::string& from,
                                                   std::size_t limit) const;

  /// Structural check for tests: sorted keys, separator invariant, uniform
  /// leaf depth, size consistency.
  bool Validate() const;

 private:
  struct Node;
  /// Result of a recursive insert: the right sibling produced by a split
  /// (null when no split happened at this level).
  struct SplitResult {
    std::unique_ptr<Node> right;
    std::string right_min;
    bool inserted = false;
  };

  SplitResult InsertRec(Node* node, const std::string& name,
                        const Dentry& dentry);
  /// Returns true when the entry was erased; `*now_empty` reports whether
  /// `node` emptied out (caller unlinks it).
  bool EraseRec(Node* node, const std::string& name, bool* now_empty);

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace nlss::meta
