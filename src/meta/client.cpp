#include "meta/client.h"

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::meta {

namespace {
std::string JoinPath(const std::vector<std::string>& parts, std::size_t n) {
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out += '/';
    out += parts[i];
  }
  return out;
}
}  // namespace

Client::Client(MetaService& service, std::string name, ClientConfig config)
    : service_(service), name_(std::move(name)), config_(config) {
  service_.RegisterClient(this);
}

Client::~Client() { service_.UnregisterClient(this); }

std::uint64_t Client::RaceKey(DirId dir) const {
  // FNV-1a of the client name: a stable per-client salt with no pointer
  // identity in it (pointer-derived keys would not be run-reproducible).
  std::uint64_t salt = 0xcbf29ce484222325ull;
  for (const char c : name_) {
    salt ^= static_cast<unsigned char>(c);
    salt *= 0x100000001b3ull;
  }
  return check::AccessKey(salt, dir);
}

void Client::Resolve(const std::string& path, MetaService::ResolveCallback cb,
                     obs::TraceContext ctx) {
  ++stats_.resolves;
  // Workloads usually resolve through the cache with no trace of their
  // own; start a kMeta root here so cached hits and client-driven walks
  // both land in per-layer breakdowns.
  if (!ctx.sampled()) {
    if (obs::Hub* hub = service_.hub(); hub != nullptr) {
      ctx = hub->tracer().StartTrace(obs::Layer::kMeta, "meta.client.resolve");
      if (ctx.sampled()) {
        cb = [cb = std::move(cb), ctx](Status st, Dentry d) {
          ctx.tracer->EndTrace(ctx, st == Status::kOk);
          cb(st, d);
        };
      }
    }
  }
  auto parts = std::make_shared<std::vector<std::string>>(
      MetaService::SplitPath(path));
  if (parts->empty()) {
    // The root needs no walk; serve it like a local hit.
    ++stats_.full_hits;
    service_.engine().Schedule(config_.local_hit_ns, [cb = std::move(cb)]() {
      cb(Status::kOk, Dentry{kRootDir, true});
    });
    return;
  }
  if (config_.capacity == 0) {
    ++stats_.misses;
    service_.Resolve(path, std::move(cb), ctx);
    return;
  }
  const std::string key = JoinPath(*parts, parts->size());
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    BeginWalk(parts, std::move(cb), ctx);
    return;
  }
  ++stats_.full_hits;
  TouchLru(key, it->second);
  // The hit is *served* local_hit_ns from now; a mutation can land in the
  // window, so re-validate at fire time and fall back to a walk if the
  // entry was invalidated under us — never serve the stale copy.
  service_.engine().Schedule(
      config_.local_hit_ns,
      [this, key, parts, cb = std::move(cb), ctx]() {
        const auto it2 = cache_.find(key);
        if (it2 == cache_.end()) {
          ++stats_.revalidation_fallbacks;
          BeginWalk(parts, cb, ctx);
          return;
        }
        for (const auto& [dir, ver] : it2->second.chain) {
          NLSS_ACCESS(kMeta, RaceKey(dir), kRead);
          const std::uint64_t now_ver = service_.DirVersion(dir);
          NLSS_INVARIANT(kMeta, now_ver == ver,
                         "stale dentry served for %s: dir %llu at v%llu, "
                         "cached v%llu",
                         key.c_str(), static_cast<unsigned long long>(dir),
                         static_cast<unsigned long long>(now_ver),
                         static_cast<unsigned long long>(ver));
          (void)now_ver;
          (void)ver;
        }
        cb(Status::kOk, it2->second.dentry);
      });
}

void Client::BeginWalk(std::shared_ptr<std::vector<std::string>> parts,
                       MetaService::ResolveCallback cb,
                       obs::TraceContext ctx) {
  std::size_t start = 0;
  DirId dir = kRootDir;
  auto chain = std::make_shared<
      std::vector<std::pair<DirId, std::uint64_t>>>();
  for (std::size_t n = parts->size() - 1; n >= 1; --n) {
    const std::string prefix = JoinPath(*parts, n);
    const auto it = cache_.find(prefix);
    if (it != cache_.end() && it->second.dentry.is_dir) {
#if NLSS_INVARIANTS_ENABLED
      for (const auto& [d, ver] : it->second.chain) {
        NLSS_ACCESS(kMeta, RaceKey(d), kRead);
      }
#endif
      start = n;
      dir = it->second.dentry.ino;
      *chain = it->second.chain;  // ancestor's chain prefixes ours
      TouchLru(prefix, it->second);
      break;
    }
  }
  if (start > 0) {
    ++stats_.partial_hits;
  } else {
    ++stats_.misses;
  }
  WalkFrom(parts, start, dir, chain, std::move(cb), ctx);
}

void Client::WalkFrom(
    std::shared_ptr<std::vector<std::string>> parts, std::size_t next,
    DirId dir,
    std::shared_ptr<std::vector<std::pair<DirId, std::uint64_t>>> chain,
    MetaService::ResolveCallback cb, obs::TraceContext ctx) {
  // E18a hot-root fix: a cold walk's first step always lands on the root
  // directory's shard, so 32 hosts missing on distinct "/dN" paths still
  // serialize there.  Serve that step from a version-stamped root copy
  // instead of a shard visit whenever the delegation grant is usable.
  if (dir == kRootDir && config_.root_delegation && config_.capacity != 0 &&
      !root_grant_broken_ &&
      TryRootDelegation(parts, next, chain, cb, ctx)) {
    return;
  }
  ++stats_.steps;
  service_.LookupStep(
      dir, (*parts)[next],
      [this, parts, next, dir, chain, cb = std::move(cb), ctx](
          Status st, Dentry d, std::uint64_t ver) {
        if (st != Status::kOk) {
          cb(st, {});
          return;
        }
        chain->emplace_back(dir, ver);
        Entry e;
        e.dentry = d;
        e.chain = *chain;
        InsertEntry(JoinPath(*parts, next + 1), std::move(e));
        if (next + 1 == parts->size()) {
          cb(Status::kOk, d);
          return;
        }
        if (!d.is_dir) {
          cb(Status::kNotDirectory, {});
          return;
        }
        WalkFrom(parts, next + 1, d.ino, chain, cb, ctx);
      },
      ctx);
}

bool Client::TryRootDelegation(
    std::shared_ptr<std::vector<std::string>> parts, std::size_t next,
    std::shared_ptr<std::vector<std::pair<DirId, std::uint64_t>>> chain,
    MetaService::ResolveCallback cb, obs::TraceContext ctx) {
  if (root_grant_pending_) {
    // A grant fetch is already in flight; join it instead of issuing a
    // second shard visit, and re-enter the walk once the copy lands.
    ++stats_.delegation_joins;
    root_grant_waiters_.push_back(
        [this, parts, next, chain, cb = std::move(cb), ctx]() {
          WalkFrom(parts, next, kRootDir, chain, cb, ctx);
        });
    return true;
  }
  if (!root_grant_valid_) {
    // No usable copy: fetch one.  The requester becomes the first waiter
    // so it pays exactly one delegation round-trip, same as a LookupStep.
    ++stats_.delegation_grants;
    root_grant_pending_ = true;
    root_grant_waiters_.push_back(
        [this, parts, next, chain, cb = std::move(cb), ctx]() {
          WalkFrom(parts, next, kRootDir, chain, cb, ctx);
        });
    service_.DelegateDirectory(
        kRootDir,
        [this](Status st, std::map<std::string, Dentry> copy,
               std::uint64_t version) {
          root_grant_pending_ = false;
          if (st == Status::kOk) {
            root_copy_ = std::move(copy);
            root_version_ = version;
            root_grant_valid_ = true;
          } else {
            // The root cannot vanish, so this never fires in practice —
            // but if it did, re-entering waiters would re-fetch forever.
            root_grant_broken_ = true;
          }
          std::vector<std::function<void()>> waiters;
          waiters.swap(root_grant_waiters_);
          for (auto& w : waiters) w();
        },
        ctx);
    return true;
  }
  // Usable copy: serve the root step locally after local_hit_ns.  Same
  // hit-to-serve race as a full-path hit: re-validate against the
  // authoritative root version at fire time, never serve a stale copy.
  ++stats_.delegation_hits;
  service_.engine().Schedule(
      config_.local_hit_ns,
      [this, parts, next, chain, cb = std::move(cb), ctx]() {
        if (!root_grant_valid_ ||
            service_.DirVersion(kRootDir) != root_version_) {
          DropRootGrant();
          ++stats_.revalidation_fallbacks;
          WalkFrom(parts, next, kRootDir, chain, cb, ctx);
          return;
        }
        const auto it = root_copy_.find((*parts)[next]);
        if (it == root_copy_.end()) {
          // The copy is complete at root_version_, so a miss in it is an
          // authoritative negative — no shard visit to confirm.
          cb(Status::kNotFound, {});
          return;
        }
        const Dentry d = it->second;
        chain->emplace_back(kRootDir, root_version_);
        Entry e;
        e.dentry = d;
        e.chain = *chain;
        InsertEntry(JoinPath(*parts, next + 1), std::move(e));
        if (next + 1 == parts->size()) {
          cb(Status::kOk, d);
          return;
        }
        if (!d.is_dir) {
          cb(Status::kNotDirectory, {});
          return;
        }
        WalkFrom(parts, next + 1, d.ino, chain, cb, ctx);
      });
  return true;
}

void Client::DropRootGrant() {
  if (!root_grant_valid_) return;
  root_grant_valid_ = false;
  root_copy_.clear();
  root_version_ = 0;
  ++stats_.delegation_drops;
}

void Client::InsertEntry(const std::string& path, Entry entry) {
  if (config_.capacity == 0) return;
  // A walk overlapping a mutation can deliver a result whose prefix went
  // stale before the reply landed; the result itself is a legal lookup
  // race, but caching it would be exactly the stale positive coherence
  // forbids.  Only cache chains that are still current.
  for (const auto& [dir, ver] : entry.chain) {
    if (service_.DirVersion(dir) != ver) return;
  }
  // Validated insert commutes with same-tick peers (distinct paths, stable
  // LRU stamps) but not with an invalidation of any chain directory: that
  // pair settles to the same cache state either way, yet the drop counters
  // — and so the digest — depend on which ran first.
#if NLSS_INVARIANTS_ENABLED
  for (const auto& [dir, ver] : entry.chain) {
    NLSS_ACCESS(kMeta, RaceKey(dir), kCommute);
  }
#endif
  RemoveEntry(path, nullptr);
  entry.lru = ++lru_clock_;
  lru_order_[entry.lru] = path;
  for (const auto& [dir, ver] : entry.chain) by_dir_[dir].insert(path);
  cache_.emplace(path, std::move(entry));
  while (cache_.size() > config_.capacity) {
    const std::string victim = lru_order_.begin()->second;
    RemoveEntry(victim, &stats_.evictions);
  }
}

void Client::RemoveEntry(const std::string& path, std::uint64_t* counter) {
  const auto it = cache_.find(path);
  if (it == cache_.end()) return;
  for (const auto& [dir, ver] : it->second.chain) {
    const auto b = by_dir_.find(dir);
    if (b != by_dir_.end()) {
      b->second.erase(path);
      if (b->second.empty()) by_dir_.erase(b);
    }
  }
  lru_order_.erase(it->second.lru);
  cache_.erase(it);
  if (counter != nullptr) ++(*counter);
}

void Client::TouchLru(const std::string& path, Entry& entry) {
  lru_order_.erase(entry.lru);
  entry.lru = ++lru_clock_;
  lru_order_[entry.lru] = path;
}

void Client::OnDirectoryInvalidate(DirId dir, std::uint64_t /*version*/) {
  NLSS_ACCESS(kMeta, RaceKey(dir), kWrite);
  ++stats_.invalidations;
  // The root copy mirrors "/" in full; any root mutation stales it.  (A
  // pending fetch is left alone — its version stamp is re-validated at
  // every use, so a copy read before the mutation can never be served.)
  if (dir == kRootDir) DropRootGrant();
  const auto it = by_dir_.find(dir);
  if (it == by_dir_.end()) return;
  const std::vector<std::string> paths(it->second.begin(), it->second.end());
  for (const std::string& p : paths) {
    RemoveEntry(p, &stats_.dropped_entries);
  }
}

}  // namespace nlss::meta
