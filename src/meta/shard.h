// One shard of the sharded namespace service: owns the directories the
// shard map assigns to it and serializes their metadata operations through
// a DES service queue (one op in service at a time, FIFO), which is what
// makes shard count a real throughput axis — a single shard is the
// single-metadata-server baseline, sixteen shards are sixteen independent
// queues.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "meta/btree.h"
#include "sim/engine.h"

namespace nlss::meta {

using DirId = std::uint64_t;
using ShardId = std::uint32_t;
inline constexpr DirId kRootDir = 1;

/// A directory: ordered dentry index + a version stamp bumped on every
/// entry mutation.  The version is the coherence token host dentry caches
/// validate against — a cached entry is valid iff its recorded parent
/// version still matches.
struct Directory {
  DirId id = 0;
  DirId parent = 0;
  std::uint64_t version = 1;
  DentryIndex entries;
};

class MetaShard {
 public:
  struct Stats {
    std::uint64_t lookups = 0;    // single-dentry reads
    std::uint64_t mutations = 0;  // create/unlink/mkdir/rmdir/rename applies
    std::uint64_t scans = 0;      // ordered listings / range scans
    sim::Tick busy_ns = 0;        // total service time charged
    sim::Tick queue_ns = 0;       // total time ops waited for the shard
  };

  MetaShard(sim::Engine& engine, ShardId id) : engine_(engine), id_(id) {}

  // --- Directory table -------------------------------------------------------
  Directory* Find(DirId id) {
    const auto it = dirs_.find(id);
    return it == dirs_.end() ? nullptr : &it->second;
  }
  const Directory* Find(DirId id) const {
    const auto it = dirs_.find(id);
    return it == dirs_.end() ? nullptr : &it->second;
  }
  Directory& Create(DirId id, DirId parent) {
    Directory& d = dirs_[id];
    d.id = id;
    d.parent = parent;
    return d;
  }
  void Erase(DirId id) { dirs_.erase(id); }
  std::size_t dir_count() const { return dirs_.size(); }

  /// Migrate a directory record out of this shard (controller-driven
  /// rebalance); returns false when the shard does not own it.
  bool MoveOut(DirId id, MetaShard& to) {
    const auto it = dirs_.find(id);
    if (it == dirs_.end()) return false;
    to.dirs_[id] = std::move(it->second);
    dirs_.erase(it);
    return true;
  }

  // --- DES service queue -----------------------------------------------------
  enum class OpClass : std::uint8_t { kLookup, kMutation, kScan };

  /// Run `fn` after this shard has a free service slot plus `cost_ns` of
  /// service time; ops execute strictly in arrival order.
  void Execute(OpClass klass, sim::Tick cost_ns, std::function<void()> fn) {
    switch (klass) {
      case OpClass::kLookup: ++stats_.lookups; break;
      case OpClass::kMutation: ++stats_.mutations; break;
      case OpClass::kScan: ++stats_.scans; break;
    }
    const sim::Tick now = engine_.now();
    const sim::Tick start = busy_until_ > now ? busy_until_ : now;
    stats_.queue_ns += start - now;
    stats_.busy_ns += cost_ns;
    busy_until_ = start + cost_ns;
    engine_.ScheduleAt(busy_until_, std::move(fn));
  }

  ShardId id() const { return id_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t ops() const {
    return stats_.lookups + stats_.mutations + stats_.scans;
  }

 private:
  sim::Engine& engine_;
  ShardId id_;
  std::map<DirId, Directory> dirs_;  // ordered: deterministic iteration
  sim::Tick busy_until_ = 0;
  Stats stats_;
};

}  // namespace nlss::meta
