#include "meta/service.h"

#include <algorithm>
#include <tuple>

#include "check/invariant.h"
#include "check/race.h"
#include "meta/client.h"

namespace nlss::meta {

namespace {
/// QoS byte cost of one metadata shard visit — small next to data I/O, but
/// nonzero so a metadata storm draws down the tenant's token bucket and
/// queue-depth budget like any other traffic.
constexpr std::uint64_t kMetaOpCostBytes = 4096;

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kExists: return "exists";
    case Status::kNotDirectory: return "not_directory";
    case Status::kIsDirectory: return "is_directory";
    case Status::kNotEmpty: return "not_empty";
    case Status::kInvalidArgument: return "invalid_argument";
  }
  return "?";
}

MetaService::MetaService(sim::Engine& engine, ServiceConfig config)
    : engine_(engine), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.blades == 0) config_.blades = 1;
  shards_.reserve(config_.shards);
  for (ShardId s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<MetaShard>(engine_, s));
  }
  blade_up_.assign(config_.blades, true);
  shards_[ShardOf(kRootDir)]->Create(kRootDir, 0);
}

MetaService::~MetaService() = default;

std::vector<std::string> MetaService::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

// --- Shard map ----------------------------------------------------------------

ShardId MetaService::ShardOf(DirId dir) const {
  const auto it = shard_overrides_.find(dir);
  if (it != shard_overrides_.end()) return it->second;
  return static_cast<ShardId>(Mix64(dir ^ config_.map_seed) % shards_.size());
}

std::uint32_t MetaService::BladeOf(ShardId shard) const {
  const std::uint32_t blades = static_cast<std::uint32_t>(blade_up_.size());
  const std::uint32_t base = shard % blades;
  for (std::uint32_t i = 0; i < blades; ++i) {
    const std::uint32_t b = (base + i) % blades;
    if (blade_up_[b]) return b;
  }
  return base;  // every blade down: route to the home blade regardless
}

Status MetaService::MoveDirectory(DirId dir, ShardId to) {
  if (to >= shards_.size()) return Status::kInvalidArgument;
  const ShardId cur = ShardOf(dir);
  if (shards_[cur]->Find(dir) == nullptr) return Status::kNotFound;
  if (cur == to) return Status::kOk;
  shards_[cur]->MoveOut(dir, *shards_[to]);
  shard_overrides_[dir] = to;
  ++map_epoch_;
  ++stats_.moved_dirs;
  return Status::kOk;
}

void MetaService::OnBladeDown(std::uint32_t blade) {
  if (blade >= blade_up_.size() || !blade_up_[blade]) return;
  blade_up_[blade] = false;
  ++map_epoch_;
  for (ShardId s = 0; s < shards_.size(); ++s) {
    if (s % blade_up_.size() == blade) ++stats_.remaps;
  }
}

void MetaService::OnBladeUp(std::uint32_t blade) {
  if (blade >= blade_up_.size() || blade_up_[blade]) return;
  blade_up_[blade] = true;
  ++map_epoch_;
  for (ShardId s = 0; s < shards_.size(); ++s) {
    if (s % blade_up_.size() == blade) ++stats_.remaps;
  }
}

// --- Directory table ----------------------------------------------------------

Directory* MetaService::FindDir(DirId dir) {
  return shards_[ShardOf(dir)]->Find(dir);
}
const Directory* MetaService::FindDir(DirId dir) const {
  return shards_[ShardOf(dir)]->Find(dir);
}

std::uint64_t MetaService::DirVersion(DirId dir) const {
  const Directory* d = FindDir(dir);
  return d == nullptr ? 0 : d->version;
}

// --- Coherence ----------------------------------------------------------------

void MetaService::RegisterClient(Client* client) {
  clients_.push_back(client);
}

void MetaService::UnregisterClient(Client* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
}

void MetaService::TouchDirectory(Directory& dir) {
  const std::uint64_t old = dir.version;
  ++dir.version;
  NLSS_INVARIANT(kMeta, dir.version > old,
                 "directory %llu version wrapped",
                 static_cast<unsigned long long>(dir.id));
  for (Client* c : clients_) c->OnDirectoryInvalidate(dir.id, dir.version);
  stats_.invalidations += clients_.size();
}

void MetaService::InvalidateGone(DirId dir) {
  for (Client* c : clients_) c->OnDirectoryInvalidate(dir, 0);
  stats_.invalidations += clients_.size();
}

// --- Shard visits -------------------------------------------------------------

void MetaService::Visit(DirId dir, MetaShard::OpClass klass,
                        sim::Tick cost_ns, std::function<void()> apply,
                        std::function<void()> reply, obs::TraceContext parent) {
  const ShardId shard = ShardOf(dir);
  obs::TraceContext span =
      obs::StartSpan(parent, obs::Layer::kMeta, "meta.shard");
  if (span.sampled()) {
    span.tracer->Annotate(span, "shard=" + std::to_string(shard));
  }
  auto serve = [this, shard, klass, cost_ns, apply = std::move(apply),
                reply = std::move(reply),
                span](std::function<void(bool)> done) {
    shards_[shard]->Execute(klass, cost_ns, [this, apply, reply, span,
                                             done = std::move(done)]() {
      apply();
      if (done) done(true);  // blade work finished; reply hop is network
      engine_.Schedule(config_.hop_ns, [reply, span]() {
        obs::EndSpan(span);
        reply();
      });
    });
  };
  // One fabric hop to reach the shard's blade, then admission.  Arrival
  // order here is what the shard's strict FIFO service preserves, so this
  // event carries the access tag: a same-tick unrelated mutation and
  // lookup of one directory would resolve before- or after-image by queue
  // order alone.
  const bool mutation = klass == MetaShard::OpClass::kMutation;
  engine_.Schedule(config_.hop_ns,
                   [this, shard, dir, mutation, serve = std::move(serve),
                    span]() {
                     if (mutation) {
                       NLSS_ACCESS(kMeta, check::AccessKey(0xD1Eull, dir),
                                   kWrite);
                     } else {
                       NLSS_ACCESS(kMeta, check::AccessKey(0xD1Eull, dir),
                                   kRead);
                     }
                     SubmitToBlade(shard, std::move(serve), span);
                   });
}

void MetaService::SubmitToBlade(
    ShardId shard, std::function<void(std::function<void(bool)>)> serve,
    obs::TraceContext span) {
  if (qos_ == nullptr) {
    serve(nullptr);
    return;
  }
  const std::uint32_t blade = BladeOf(shard) % qos_->blades();
  if (!qos_->Submit(blade, qos_tenant_, kMetaOpCostBytes, serve, span)) {
    ++stats_.qos_rejects;
    engine_.Schedule(config_.qos_retry_delay_ns,
                     [this, shard, serve = std::move(serve), span]() mutable {
                       SubmitToBlade(shard, std::move(serve), span);
                     });
  }
}

// --- Lookup / resolve ---------------------------------------------------------

void MetaService::LookupStep(DirId dir, const std::string& name,
                             LookupCallback cb, obs::TraceContext ctx) {
  ++stats_.lookup_steps;
  auto result = std::make_shared<std::tuple<Status, Dentry, std::uint64_t>>(
      Status::kNotFound, Dentry{}, 0);
  Visit(
      dir, MetaShard::OpClass::kLookup, config_.lookup_cost_ns,
      [this, dir, name, result]() {
        Directory* d = FindDir(dir);
        if (d == nullptr) return;  // stays kNotFound, version 0
        const Dentry* e = d->entries.Find(name);
        std::get<2>(*result) = d->version;
        if (e == nullptr) return;
        std::get<0>(*result) = Status::kOk;
        std::get<1>(*result) = *e;
      },
      [cb = std::move(cb), result]() {
        cb(std::get<0>(*result), std::get<1>(*result), std::get<2>(*result));
      },
      ctx);
}

void MetaService::DelegateDirectory(DirId dir, DelegateCallback cb,
                                    obs::TraceContext ctx) {
  ++stats_.delegations;
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.delegate", &root);
  // Billed like a full listing: base scan cost plus every entry copied.
  const Directory* d = FindDir(dir);
  const std::size_t approx = d == nullptr ? 0 : d->entries.size();
  auto result =
      std::make_shared<std::tuple<Status, std::map<std::string, Dentry>,
                                  std::uint64_t>>(
          Status::kNotFound, std::map<std::string, Dentry>{}, 0);
  Visit(
      dir, MetaShard::OpClass::kScan,
      config_.scan_cost_ns +
          config_.scan_entry_cost_ns * static_cast<sim::Tick>(approx),
      [this, dir, result]() {
        Directory* d2 = FindDir(dir);
        if (d2 == nullptr) return;  // stays kNotFound
        std::get<0>(*result) = Status::kOk;
        d2->entries.ForEach([&](const std::string& name, const Dentry& de) {
          std::get<1>(*result).emplace(name, de);
        });
        std::get<2>(*result) = d2->version;
      },
      [this, cb = std::move(cb), result, op, root]() {
        FinishOp(op, root, std::get<0>(*result) == Status::kOk);
        cb(std::get<0>(*result), std::move(std::get<1>(*result)),
           std::get<2>(*result));
      },
      op);
}

void MetaService::ResolveStep(std::shared_ptr<std::vector<std::string>> parts,
                              std::size_t i, DirId dir, ResolveCallback done,
                              obs::TraceContext ctx) {
  LookupStep(
      dir, (*parts)[i],
      [this, parts, i, done = std::move(done), ctx](Status st, Dentry d,
                                                    std::uint64_t) {
        if (st != Status::kOk) {
          done(st, {});
          return;
        }
        if (i + 1 == parts->size()) {
          done(Status::kOk, d);
          return;
        }
        if (!d.is_dir) {
          done(Status::kNotDirectory, {});
          return;
        }
        ResolveStep(parts, i + 1, d.ino, done, ctx);
      },
      ctx);
}

void MetaService::Resolve(const std::string& path, ResolveCallback cb,
                          obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.resolve", &root);
  ++stats_.resolves;
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](Status st, Dentry d) {
    FinishOp(op, root, st == Status::kOk);
    cb(st, d);
  };
  if (parts->empty()) {
    engine_.Schedule(0, [done = std::move(done)]() {
      done(Status::kOk, Dentry{kRootDir, true});
    });
    return;
  }
  ResolveStep(parts, 0, kRootDir, std::move(done), op);
}

void MetaService::WalkToParent(
    std::shared_ptr<std::vector<std::string>> parts, std::size_t next,
    DirId dir, std::function<void(Status, DirId)> cb, obs::TraceContext ctx) {
  if (next + 1 >= parts->size()) {
    cb(Status::kOk, dir);
    return;
  }
  LookupStep(
      dir, (*parts)[next],
      [this, parts, next, cb = std::move(cb), ctx](Status st, Dentry d,
                                                   std::uint64_t) {
        if (st != Status::kOk) {
          cb(st, 0);
          return;
        }
        if (!d.is_dir) {
          cb(Status::kNotDirectory, 0);
          return;
        }
        WalkToParent(parts, next + 1, d.ino, cb, ctx);
      },
      ctx);
}

// --- Mutations ----------------------------------------------------------------

void MetaService::Mkdir(const std::string& path, StatusCallback cb,
                        obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.mkdir", &root);
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](Status st) {
    FinishOp(op, root, st == Status::kOk);
    cb(st);
  };
  if (parts->empty()) {
    engine_.Schedule(
        0, [done = std::move(done)]() { done(Status::kInvalidArgument); });
    return;
  }
  WalkToParent(
      parts, 0, kRootDir,
      [this, parts, done = std::move(done), op](Status st, DirId parent) {
        if (st != Status::kOk) {
          done(st);
          return;
        }
        auto result = std::make_shared<Status>(Status::kNotFound);
        Visit(
            parent, MetaShard::OpClass::kMutation,
            config_.mutate_cost_ns,
            [this, parent, leaf = parts->back(), result]() {
              Directory* p = FindDir(parent);
              if (p == nullptr) return;
              if (p->entries.Find(leaf) != nullptr) {
                *result = Status::kExists;
                return;
              }
              const Ino ino = AllocIno();
              p->entries.Insert(leaf, Dentry{ino, true});
              shards_[ShardOf(ino)]->Create(ino, parent);
              ++stats_.mutations;
              TouchDirectory(*p);
              *result = Status::kOk;
            },
            [done, result]() { done(*result); }, op);
      },
      op);
}

void MetaService::Create(const std::string& path, CreateCallback cb,
                         obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.create", &root);
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](Status st, Ino ino) {
    FinishOp(op, root, st == Status::kOk);
    cb(st, ino);
  };
  if (parts->empty()) {
    engine_.Schedule(0, [done = std::move(done)]() {
      done(Status::kInvalidArgument, 0);
    });
    return;
  }
  WalkToParent(
      parts, 0, kRootDir,
      [this, parts, done = std::move(done), op](Status st, DirId parent) {
        if (st != Status::kOk) {
          done(st, 0);
          return;
        }
        auto result = std::make_shared<std::pair<Status, Ino>>(
            Status::kNotFound, 0);
        Visit(
            parent, MetaShard::OpClass::kMutation,
            config_.mutate_cost_ns,
            [this, parent, leaf = parts->back(), result]() {
              Directory* p = FindDir(parent);
              if (p == nullptr) return;
              if (p->entries.Find(leaf) != nullptr) {
                result->first = Status::kExists;
                return;
              }
              const Ino ino = AllocIno();
              p->entries.Insert(leaf, Dentry{ino, false});
              ++stats_.mutations;
              TouchDirectory(*p);
              *result = {Status::kOk, ino};
            },
            [done, result]() { done(result->first, result->second); }, op);
      },
      op);
}

void MetaService::Unlink(const std::string& path, StatusCallback cb,
                         obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.unlink", &root);
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](Status st) {
    FinishOp(op, root, st == Status::kOk);
    cb(st);
  };
  if (parts->empty()) {
    engine_.Schedule(
        0, [done = std::move(done)]() { done(Status::kInvalidArgument); });
    return;
  }
  WalkToParent(
      parts, 0, kRootDir,
      [this, parts, done = std::move(done), op](Status st, DirId parent) {
        if (st != Status::kOk) {
          done(st);
          return;
        }
        auto result = std::make_shared<Status>(Status::kNotFound);
        Visit(
            parent, MetaShard::OpClass::kMutation,
            config_.mutate_cost_ns,
            [this, parent, leaf = parts->back(), result]() {
              Directory* p = FindDir(parent);
              if (p == nullptr) return;
              const Dentry* e = p->entries.Find(leaf);
              if (e == nullptr) return;
              if (e->is_dir) {
                *result = Status::kIsDirectory;
                return;
              }
              p->entries.Erase(leaf);
              ++stats_.mutations;
              TouchDirectory(*p);
              *result = Status::kOk;
            },
            [done, result]() { done(*result); }, op);
      },
      op);
}

void MetaService::Rmdir(const std::string& path, StatusCallback cb,
                        obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.rmdir", &root);
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](Status st) {
    FinishOp(op, root, st == Status::kOk);
    cb(st);
  };
  if (parts->empty()) {
    engine_.Schedule(
        0, [done = std::move(done)]() { done(Status::kInvalidArgument); });
    return;
  }
  WalkToParent(
      parts, 0, kRootDir,
      [this, parts, done = std::move(done), op](Status st, DirId parent) {
        if (st != Status::kOk) {
          done(st);
          return;
        }
        auto result = std::make_shared<Status>(Status::kNotFound);
        Visit(
            parent, MetaShard::OpClass::kMutation,
            config_.mutate_cost_ns,
            [this, parent, leaf = parts->back(), result]() {
              Directory* p = FindDir(parent);
              if (p == nullptr) return;
              const Dentry* e = p->entries.Find(leaf);
              if (e == nullptr) return;
              if (!e->is_dir) {
                *result = Status::kNotDirectory;
                return;
              }
              const DirId victim = e->ino;
              Directory* v = FindDir(victim);
              if (v != nullptr && !v->entries.empty()) {
                *result = Status::kNotEmpty;
                return;
              }
              p->entries.Erase(leaf);
              shards_[ShardOf(victim)]->Erase(victim);
              shard_overrides_.erase(victim);
              ++stats_.mutations;
              TouchDirectory(*p);
              InvalidateGone(victim);
              *result = Status::kOk;
            },
            [done, result]() { done(*result); }, op);
      },
      op);
}

void MetaService::Rename(const std::string& from, const std::string& to,
                         StatusCallback cb, obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.rename", &root);
  auto from_parts = std::make_shared<std::vector<std::string>>(SplitPath(from));
  auto to_parts = std::make_shared<std::vector<std::string>>(SplitPath(to));
  auto done = [this, cb = std::move(cb), op, root](Status st) {
    FinishOp(op, root, st == Status::kOk);
    cb(st);
  };
  if (from_parts->empty() || to_parts->empty()) {
    engine_.Schedule(
        0, [done = std::move(done)]() { done(Status::kInvalidArgument); });
    return;
  }
  WalkToParent(
      from_parts, 0, kRootDir,
      [this, from_parts, to_parts, done = std::move(done), op](
          Status st, DirId from_parent) {
        if (st != Status::kOk) {
          done(st);
          return;
        }
        WalkToParent(
            to_parts, 0, kRootDir,
            [this, from_parts, to_parts, from_parent, done, op](
                Status st2, DirId to_parent) {
              if (st2 != Status::kOk) {
                done(st2);
                return;
              }
              // Validate + apply both edits atomically at the source
              // parent's shard; the destination shard is charged its own
              // mutation service time to keep both queues honest.
              if (ShardOf(to_parent) != ShardOf(from_parent)) {
                shards_[ShardOf(to_parent)]->Execute(
                    MetaShard::OpClass::kMutation, config_.mutate_cost_ns,
                    []() {});
              }
              auto result = std::make_shared<Status>(Status::kNotFound);
              Visit(
                  from_parent, MetaShard::OpClass::kMutation,
                  config_.mutate_cost_ns,
                  [this, from_parent, to_parent,
                   from_leaf = from_parts->back(),
                   to_leaf = to_parts->back(), result]() {
                    Directory* fp = FindDir(from_parent);
                    Directory* tp = FindDir(to_parent);
                    if (fp == nullptr || tp == nullptr) return;
                    const Dentry* e = fp->entries.Find(from_leaf);
                    if (e == nullptr) return;
                    if (from_parent == to_parent && from_leaf == to_leaf) {
                      *result = Status::kOk;  // no-op self rename
                      return;
                    }
                    if (tp->entries.Find(to_leaf) != nullptr) {
                      *result = Status::kExists;
                      return;
                    }
                    const Dentry moved = *e;
                    fp->entries.Erase(from_leaf);
                    tp->entries.Insert(to_leaf, moved);
                    if (moved.is_dir) {
                      if (Directory* md = FindDir(moved.ino)) {
                        md->parent = to_parent;
                      }
                    }
                    ++stats_.mutations;
                    TouchDirectory(*fp);
                    if (tp != fp) TouchDirectory(*tp);
                    *result = Status::kOk;
                  },
                  [done, result]() { done(*result); }, op);
            },
            op);
      },
      op);
}

// --- Ordered listing ----------------------------------------------------------

void MetaService::List(const std::string& path, ListCallback cb,
                       obs::TraceContext ctx) {
  RangeScan(path, "", 0,
            [cb = std::move(cb)](
                Status st, std::vector<std::pair<std::string, Dentry>> rows) {
              std::vector<std::string> names;
              names.reserve(rows.size());
              for (auto& r : rows) names.push_back(std::move(r.first));
              cb(st, std::move(names));
            },
            ctx);
}

void MetaService::RangeScan(const std::string& path, const std::string& from,
                            std::size_t limit, ScanCallback cb,
                            obs::TraceContext ctx) {
  bool root = false;
  obs::TraceContext op = StartOp(ctx, "meta.scan", &root);
  ++stats_.scans;
  auto parts = std::make_shared<std::vector<std::string>>(SplitPath(path));
  auto done = [this, cb = std::move(cb), op, root](
                  Status st, std::vector<std::pair<std::string, Dentry>> rows) {
    FinishOp(op, root, st == Status::kOk);
    cb(st, std::move(rows));
  };
  auto scan_dir = [this, from, limit, done, op](DirId dir) {
    const Directory* d = FindDir(dir);
    const std::size_t approx = d == nullptr ? 0 : d->entries.size();
    const std::size_t billed =
        limit == 0 ? approx : std::min(limit, approx);
    auto result = std::make_shared<
        std::pair<Status, std::vector<std::pair<std::string, Dentry>>>>();
    result->first = Status::kNotFound;
    Visit(
        dir, MetaShard::OpClass::kScan,
        config_.scan_cost_ns +
            config_.scan_entry_cost_ns * static_cast<sim::Tick>(billed),
        [this, dir, from, limit, result]() {
          Directory* d2 = FindDir(dir);
          if (d2 == nullptr) return;
          result->first = Status::kOk;
          result->second = d2->entries.Scan(from, limit);
        },
        [done, result]() { done(result->first, std::move(result->second)); },
        op);
  };
  if (parts->empty()) {
    scan_dir(kRootDir);
    return;
  }
  ResolveStep(parts, 0, kRootDir,
              [scan_dir = std::move(scan_dir), done](Status st, Dentry d) {
                if (st != Status::kOk) {
                  done(st, {});
                  return;
                }
                if (!d.is_dir) {
                  done(Status::kNotDirectory, {});
                  return;
                }
                scan_dir(d.ino);
              },
              op);
}

// --- Bootstrap ----------------------------------------------------------------

Status MetaService::BootstrapMkdir(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) return Status::kInvalidArgument;
  DirId dir = kRootDir;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const Directory* d = FindDir(dir);
    if (d == nullptr) return Status::kNotFound;
    const Dentry* e = d->entries.Find(parts[i]);
    if (e == nullptr) return Status::kNotFound;
    if (!e->is_dir) return Status::kNotDirectory;
    dir = e->ino;
  }
  Directory* p = FindDir(dir);
  if (p == nullptr) return Status::kNotFound;
  if (p->entries.Find(parts.back()) != nullptr) return Status::kExists;
  const Ino ino = AllocIno();
  p->entries.Insert(parts.back(), Dentry{ino, true});
  shards_[ShardOf(ino)]->Create(ino, dir);
  return Status::kOk;
}

Status MetaService::BootstrapCreate(const std::string& path, Ino* out_ino) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) return Status::kInvalidArgument;
  DirId dir = kRootDir;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const Directory* d = FindDir(dir);
    if (d == nullptr) return Status::kNotFound;
    const Dentry* e = d->entries.Find(parts[i]);
    if (e == nullptr) return Status::kNotFound;
    if (!e->is_dir) return Status::kNotDirectory;
    dir = e->ino;
  }
  Directory* p = FindDir(dir);
  if (p == nullptr) return Status::kNotFound;
  if (p->entries.Find(parts.back()) != nullptr) return Status::kExists;
  const Ino ino = AllocIno();
  p->entries.Insert(parts.back(), Dentry{ino, false});
  if (out_ino != nullptr) *out_ino = ino;
  return Status::kOk;
}

// --- Wiring -------------------------------------------------------------------

void MetaService::AttachQos(qos::Scheduler* qos, qos::TenantId tenant) {
  qos_ = qos;
  qos_tenant_ = tenant;
}

std::uint64_t MetaService::SumClientStat(
    const std::function<std::uint64_t(const Client&)>& fn) const {
  std::uint64_t sum = 0;
  for (const Client* c : clients_) sum += fn(*c);
  return sum;
}

void MetaService::AttachObs(obs::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) return;
  obs::Registry& m = hub_->metrics();
  m.AddCallback("nlss_meta_resolves_total", "Service-side path resolves",
                [this] { return static_cast<double>(stats_.resolves); });
  m.AddCallback("nlss_meta_lookup_steps_total",
                "Single-component lookups served by shards",
                [this] { return static_cast<double>(stats_.lookup_steps); });
  m.AddCallback("nlss_meta_mutations_total",
                "Applied namespace mutations (mkdir/create/unlink/rmdir/rename)",
                [this] { return static_cast<double>(stats_.mutations); });
  m.AddCallback("nlss_meta_scans_total", "Ordered listings and range scans",
                [this] { return static_cast<double>(stats_.scans); });
  m.AddCallback("nlss_meta_invalidations_total",
                "Dentry-cache invalidation callbacks delivered",
                [this] { return static_cast<double>(stats_.invalidations); });
  m.AddCallback("nlss_meta_qos_rejects_total",
                "Metadata ops bounced by QoS admission (retried)",
                [this] { return static_cast<double>(stats_.qos_rejects); });
  m.AddCallback("nlss_meta_delegations_total",
                "Directory-copy delegation grants served (E18a)",
                [this] { return static_cast<double>(stats_.delegations); });
  m.AddCallback("nlss_meta_map_epoch", "Shard-map epoch (bumped on remaps)",
                [this] { return static_cast<double>(map_epoch_); });
  for (ShardId s = 0; s < shards_.size(); ++s) {
    const obs::Labels labels = {{"shard", std::to_string(s)}};
    m.AddCallback(
        "nlss_meta_shard_ops_total", "Metadata ops served by this shard",
        [this, s] { return static_cast<double>(shards_[s]->ops()); }, labels);
    m.AddCallback(
        "nlss_meta_shard_busy_ns", "Service time accumulated by this shard",
        [this, s] { return static_cast<double>(shards_[s]->stats().busy_ns); },
        labels);
    m.AddCallback(
        "nlss_meta_shard_dirs", "Directories currently homed on this shard",
        [this, s] { return static_cast<double>(shards_[s]->dir_count()); },
        labels);
  }
  m.AddCallback("nlss_meta_cache_resolves_total",
                "Host dentry-cache resolves (all clients)", [this] {
                  return static_cast<double>(SumClientStat(
                      [](const Client& c) { return c.stats().resolves; }));
                });
  m.AddCallback("nlss_meta_cache_hits_total",
                "Host dentry-cache full-path hits (all clients)", [this] {
                  return static_cast<double>(SumClientStat(
                      [](const Client& c) { return c.stats().full_hits; }));
                });
}

// --- Spans --------------------------------------------------------------------

obs::TraceContext MetaService::StartOp(obs::TraceContext ctx, const char* name,
                                       bool* root) {
  *root = false;
  if (ctx.sampled()) return obs::StartSpan(ctx, obs::Layer::kMeta, name);
  if (hub_ == nullptr) return {};
  *root = true;
  return hub_->tracer().StartTrace(obs::Layer::kMeta, name);
}

void MetaService::FinishOp(obs::TraceContext op, bool root, bool ok) {
  if (!op.sampled()) return;
  if (root) {
    op.tracer->EndTrace(op, ok);
  } else {
    op.tracer->EndSpan(op);
  }
}

}  // namespace nlss::meta
