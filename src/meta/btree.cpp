#include "meta/btree.h"

#include <algorithm>

namespace nlss::meta {

namespace {
/// Small fanout keeps nodes around a cache line's worth of string headers;
/// the DES model doesn't simulate memory, so the value mostly shapes split
/// frequency exercised by the tests.
constexpr std::size_t kLeafCap = 16;
constexpr std::size_t kInnerCap = 16;
}  // namespace

struct DentryIndex::Node {
  bool leaf = true;
  /// Leaf: keys[i] pairs with vals[i].
  /// Inner: keys[i] is the separator for kids[i] (see header invariant).
  std::vector<std::string> keys;
  std::vector<Dentry> vals;                 // leaf only
  std::vector<std::unique_ptr<Node>> kids;  // inner only

  /// Child index a key routes to: last i with keys[i] <= name, clamped to 0.
  std::size_t RouteTo(const std::string& name) const {
    const auto it = std::upper_bound(keys.begin(), keys.end(), name);
    if (it == keys.begin()) return 0;
    return static_cast<std::size_t>(it - keys.begin()) - 1;
  }
};

DentryIndex::DentryIndex() : root_(std::make_unique<Node>()) {}
DentryIndex::~DentryIndex() = default;
DentryIndex::DentryIndex(DentryIndex&&) noexcept = default;
DentryIndex& DentryIndex::operator=(DentryIndex&&) noexcept = default;

const Dentry* DentryIndex::Find(const std::string& name) const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->kids[node->RouteTo(name)].get();
  const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), name);
  if (it == node->keys.end() || *it != name) return nullptr;
  return &node->vals[static_cast<std::size_t>(it - node->keys.begin())];
}

Dentry* DentryIndex::FindMutable(const std::string& name) {
  return const_cast<Dentry*>(
      static_cast<const DentryIndex*>(this)->Find(name));
}

DentryIndex::SplitResult DentryIndex::InsertRec(Node* node,
                                                const std::string& name,
                                                const Dentry& dentry) {
  SplitResult out;
  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), name);
    const std::size_t at = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == name) return out;  // exists
    node->keys.insert(it, name);
    node->vals.insert(node->vals.begin() + static_cast<std::ptrdiff_t>(at),
                      dentry);
    out.inserted = true;
    if (node->keys.size() > kLeafCap) {
      const std::size_t half = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = true;
      right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(half),
                         node->keys.end());
      right->vals.assign(node->vals.begin() + static_cast<std::ptrdiff_t>(half),
                         node->vals.end());
      node->keys.resize(half);
      node->vals.resize(half);
      out.right_min = right->keys.front();
      out.right = std::move(right);
    }
    return out;
  }

  const std::size_t idx = node->RouteTo(name);
  SplitResult child = InsertRec(node->kids[idx].get(), name, dentry);
  out.inserted = child.inserted;
  if (child.right != nullptr) {
    node->keys.insert(node->keys.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                      child.right_min);
    node->kids.insert(node->kids.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                      std::move(child.right));
    if (node->kids.size() > kInnerCap) {
      const std::size_t half = node->kids.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = false;
      right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(half),
                         node->keys.end());
      for (std::size_t i = half; i < node->kids.size(); ++i) {
        right->kids.push_back(std::move(node->kids[i]));
      }
      node->keys.resize(half);
      node->kids.resize(half);
      out.right_min = right->keys.front();
      out.right = std::move(right);
    }
  }
  return out;
}

bool DentryIndex::Insert(const std::string& name, const Dentry& dentry) {
  SplitResult r = InsertRec(root_.get(), name, dentry);
  if (r.right != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    // keys[0] is a routing hint only; the old root's first key serves.
    new_root->keys.push_back(root_->keys.front());
    new_root->keys.push_back(r.right_min);
    new_root->kids.push_back(std::move(root_));
    new_root->kids.push_back(std::move(r.right));
    root_ = std::move(new_root);
  }
  if (r.inserted) ++size_;
  return r.inserted;
}

bool DentryIndex::EraseRec(Node* node, const std::string& name,
                           bool* now_empty) {
  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), name);
    if (it == node->keys.end() || *it != name) {
      *now_empty = false;
      return false;
    }
    const std::size_t at = static_cast<std::size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->vals.erase(node->vals.begin() + static_cast<std::ptrdiff_t>(at));
    *now_empty = node->keys.empty();
    return true;
  }
  const std::size_t idx = node->RouteTo(name);
  bool child_empty = false;
  const bool erased = EraseRec(node->kids[idx].get(), name, &child_empty);
  if (child_empty) {
    node->keys.erase(node->keys.begin() + static_cast<std::ptrdiff_t>(idx));
    node->kids.erase(node->kids.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  *now_empty = node->kids.empty();
  return erased;
}

bool DentryIndex::Erase(const std::string& name) {
  bool root_empty = false;
  const bool erased = EraseRec(root_.get(), name, &root_empty);
  if (erased) --size_;
  if (root_empty && !root_->leaf) {
    root_ = std::make_unique<Node>();
  } else {
    // Collapse a single-child inner root so depth tracks occupancy.
    while (!root_->leaf && root_->kids.size() == 1) {
      root_ = std::move(root_->kids.front());
    }
  }
  return erased;
}

void DentryIndex::ForEach(
    const std::function<void(const std::string&, const Dentry&)>& fn) const {
  const std::function<void(const Node*)> walk = [&](const Node* node) {
    if (node->leaf) {
      for (std::size_t i = 0; i < node->keys.size(); ++i) {
        fn(node->keys[i], node->vals[i]);
      }
      return;
    }
    for (const auto& kid : node->kids) walk(kid.get());
  };
  walk(root_.get());
}

std::vector<std::pair<std::string, Dentry>> DentryIndex::Scan(
    const std::string& from, std::size_t limit) const {
  std::vector<std::pair<std::string, Dentry>> out;
  const std::function<bool(const Node*)> walk = [&](const Node* node) -> bool {
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), from);
      for (; it != node->keys.end(); ++it) {
        if (limit != 0 && out.size() >= limit) return false;
        out.emplace_back(
            *it, node->vals[static_cast<std::size_t>(it - node->keys.begin())]);
      }
      return true;
    }
    for (std::size_t i = node->RouteTo(from); i < node->kids.size(); ++i) {
      if (!walk(node->kids[i].get())) return false;
    }
    return true;
  };
  walk(root_.get());
  return out;
}

bool DentryIndex::Validate() const {
  std::size_t counted = 0;
  int leaf_depth = -1;
  std::string prev;
  bool have_prev = false;
  bool ok = true;
  const std::function<void(const Node*, int)> walk = [&](const Node* node,
                                                         int depth) {
    if (!ok) return;
    if (node->leaf) {
      if (leaf_depth < 0) leaf_depth = depth;
      if (depth != leaf_depth) ok = false;  // non-uniform depth
      if (node->keys.size() != node->vals.size()) ok = false;
      for (const std::string& k : node->keys) {
        if (have_prev && !(prev < k)) ok = false;  // global order
        prev = k;
        have_prev = true;
        ++counted;
      }
      return;
    }
    if (node->kids.size() != node->keys.size() || node->kids.empty()) {
      ok = false;
      return;
    }
    for (std::size_t i = 0; i < node->kids.size(); ++i) {
      // Separator invariant for i >= 1: everything emitted so far (subtree
      // i-1's max) must be < keys[i], and the subtree visited next must not
      // go below keys[i].
      if (i >= 1 && have_prev && !(prev < node->keys[i])) ok = false;
      walk(node->kids[i].get(), depth + 1);
      if (i + 1 < node->keys.size() && have_prev &&
          !(prev < node->keys[i + 1])) {
        ok = false;
      }
    }
  };
  walk(root_.get(), 0);
  return ok && counted == size_;
}

}  // namespace nlss::meta
