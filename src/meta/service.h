// Sharded metadata service: the namespace as a scale-out service instead
// of a single controller-resident table.
//
// Directories are partitioned across shards at directory granularity — a
// directory's dentry index and version stamp live entirely on one shard,
// chosen by a seeded hash of its DirId with an explicit override map on
// top (the controller can rebalance by moving directories, and remaps
// shards off failed blades).  Every metadata op is DES-timed: a hop to the
// owning shard, FIFO service on that shard's queue, and a hop back, so
// shard count is a real throughput axis (one shard == the single-service
// baseline E18 compares against).
//
// Path resolution walks component by component, each step served by the
// shard owning the parent directory.  Mutations (mkdir/create/unlink/
// rmdir/rename) apply on the parent's shard, bump the directory's version,
// and synchronously push an invalidation to every registered host dentry
// cache (meta::Client) — the coherent-backplane model the cache cluster
// already uses — so no cached positive entry can outlive the entry it
// mirrors.
//
// QoS: when a scheduler is attached, every shard visit is classed like a
// data op — submitted to the shard's blade with a fixed byte cost, riding
// the same WFQ/token-bucket admission path; rejected ops retry after a
// deterministic backoff (metadata storms are exactly the thing admission
// control must be able to shed).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "meta/shard.h"
#include "obs/hub.h"
#include "qos/scheduler.h"
#include "sim/engine.h"

namespace nlss::meta {

class Client;

enum class Status : std::uint8_t {
  kOk,
  kNotFound,
  kExists,
  kNotDirectory,
  kIsDirectory,
  kNotEmpty,
  kInvalidArgument,
};
const char* StatusName(Status s);

struct ServiceConfig {
  std::uint32_t shards = 4;
  /// Blade domain for shard placement + QoS classing (shard s lives on
  /// blade s % blades, skipping blades marked down).
  std::uint32_t blades = 4;
  sim::Tick lookup_cost_ns = 1500;  // one dentry lookup on a shard
  sim::Tick mutate_cost_ns = 4000;  // one entry mutation on a shard
  sim::Tick scan_cost_ns = 2500;    // ordered listing / range scan base
  sim::Tick scan_entry_cost_ns = 50;  // per returned entry
  sim::Tick hop_ns = 3000;            // one-way host<->shard fabric hop
  /// Deterministic backoff before re-submitting a QoS-rejected op.
  sim::Tick qos_retry_delay_ns = 500 * 1000;
  std::uint64_t map_seed = 0x6d657461;  // shard-map hash seed ("meta")
};

struct ServiceStats {
  std::uint64_t resolves = 0;
  std::uint64_t lookup_steps = 0;
  std::uint64_t mutations = 0;
  std::uint64_t scans = 0;
  /// Client invalidation callbacks delivered (mutations x registered
  /// clients at delivery time).
  std::uint64_t invalidations = 0;
  std::uint64_t qos_rejects = 0;  // admission rejections (op retried)
  std::uint64_t delegations = 0;  // directory-copy grants served
  std::uint64_t remaps = 0;       // shard->blade remaps (blade down/up)
  std::uint64_t moved_dirs = 0;   // explicit rebalance moves
};

class MetaService {
 public:
  using StatusCallback = std::function<void(Status)>;
  using ResolveCallback = std::function<void(Status, Dentry)>;
  /// Single-step lookup result: the dentry plus the parent directory's
  /// version at read time (the coherence stamp host caches record).
  using LookupCallback =
      std::function<void(Status, Dentry, std::uint64_t dir_version)>;
  using CreateCallback = std::function<void(Status, Ino)>;
  using ListCallback =
      std::function<void(Status, std::vector<std::string>)>;
  using ScanCallback = std::function<void(
      Status, std::vector<std::pair<std::string, Dentry>>)>;

  MetaService(sim::Engine& engine, ServiceConfig config = {});
  ~MetaService();

  MetaService(const MetaService&) = delete;
  MetaService& operator=(const MetaService&) = delete;

  // --- Namespace ops (DES-timed, shard-queued) ------------------------------
  void Resolve(const std::string& path, ResolveCallback cb,
               obs::TraceContext ctx = {});
  void Mkdir(const std::string& path, StatusCallback cb,
             obs::TraceContext ctx = {});
  void Create(const std::string& path, CreateCallback cb,
              obs::TraceContext ctx = {});
  void Unlink(const std::string& path, StatusCallback cb,
              obs::TraceContext ctx = {});
  void Rmdir(const std::string& path, StatusCallback cb,
             obs::TraceContext ctx = {});
  void Rename(const std::string& from, const std::string& to,
              StatusCallback cb, obs::TraceContext ctx = {});
  /// Ordered listing of every entry name (B-tree order).
  void List(const std::string& path, ListCallback cb,
            obs::TraceContext ctx = {});
  /// Ordered range scan: up to `limit` entries with name >= `from`
  /// (paginated readdir; limit == 0 means all).
  void RangeScan(const std::string& path, const std::string& from,
                 std::size_t limit, ScanCallback cb,
                 obs::TraceContext ctx = {});

  /// One lookup of `name` in `dir`, served by the owning shard — the
  /// primitive host dentry caches walk with when they hold a cached
  /// ancestor and only need the tail of the path.
  void LookupStep(DirId dir, const std::string& name, LookupCallback cb,
                  obs::TraceContext ctx = {});

  /// Directory delegation (E18a hot-root fix): one scan-class visit to
  /// `dir`'s shard returns a full copy of its dentries plus the version
  /// the copy is valid at.  A client holding the copy serves lookups in
  /// `dir` locally — including authoritative negatives — until the
  /// version moves, instead of serializing every cold walk's first step
  /// on the root directory's shard.
  using DelegateCallback = std::function<void(
      Status, std::map<std::string, Dentry>, std::uint64_t version)>;
  void DelegateDirectory(DirId dir, DelegateCallback cb,
                         obs::TraceContext ctx = {});

  // --- Bootstrap (zero simulated time; namespace population) ----------------
  Status BootstrapMkdir(const std::string& path);
  Status BootstrapCreate(const std::string& path, Ino* out_ino = nullptr);

  // --- Shard map (controller-owned routing, rebalance-ready) ----------------
  ShardId ShardOf(DirId dir) const;
  /// Blade a shard is placed on (skips blades marked down).
  std::uint32_t BladeOf(ShardId shard) const;
  /// Rebalance: move one directory's record + routing to another shard.
  Status MoveDirectory(DirId dir, ShardId to);
  /// Controller notifications: remap shards off a failed blade / rebalance
  /// back when it returns.  Bumps the map epoch.
  void OnBladeDown(std::uint32_t blade);
  void OnBladeUp(std::uint32_t blade);
  std::uint64_t map_epoch() const { return map_epoch_; }

  // --- Coherence / clients ---------------------------------------------------
  void RegisterClient(Client* client);
  void UnregisterClient(Client* client);
  /// Authoritative version of a directory (0 when it no longer exists) —
  /// what the dentry-coherence invariant checks served entries against.
  std::uint64_t DirVersion(DirId dir) const;

  // --- Wiring ----------------------------------------------------------------
  /// Class metadata ops like data ops: every shard visit is submitted to
  /// the shard's blade under `tenant` with a fixed byte cost.
  void AttachQos(qos::Scheduler* qos, qos::TenantId tenant);
  void AttachObs(obs::Hub* hub);
  obs::Hub* hub() const { return hub_; }

  // --- Introspection ---------------------------------------------------------
  sim::Engine& engine() { return engine_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const MetaShard& shard(ShardId s) const { return *shards_[s]; }
  const ServiceStats& stats() const { return stats_; }
  const ServiceConfig& config() const { return config_; }
  std::size_t client_count() const { return clients_.size(); }
  /// Sum a per-client statistic over every registered client (mgmt's
  /// dentry-cache hit-rate report).
  std::uint64_t SumClientStat(
      const std::function<std::uint64_t(const Client&)>& fn) const;

  static std::vector<std::string> SplitPath(const std::string& path);

 private:
  friend class Client;

  /// Find the directory record wherever its shard map entry points.
  Directory* FindDir(DirId dir);
  const Directory* FindDir(DirId dir) const;

  /// Charge one shard visit against `dir`'s shard: hop out, queue +
  /// service on the shard (through QoS admission when attached), run
  /// `apply` at service time (shard state is only read/written here), hop
  /// back, then `reply`.  The hop-arrival event is the contention point —
  /// the shard executes ops strictly in arrival order — so it carries the
  /// race-detector access tag, keyed by directory.
  void Visit(DirId dir, MetaShard::OpClass klass, sim::Tick cost_ns,
             std::function<void()> apply, std::function<void()> reply,
             obs::TraceContext span);

  /// Pass one shard visit through QoS admission when a scheduler is
  /// attached (deterministic backoff retry on reject); direct dispatch
  /// otherwise.
  void SubmitToBlade(ShardId shard,
                     std::function<void(std::function<void(bool)>)> serve,
                     obs::TraceContext span);

  /// Walk all but the last component; cb(status, parent_dir).
  void WalkToParent(std::shared_ptr<std::vector<std::string>> parts,
                    std::size_t next, DirId dir,
                    std::function<void(Status, DirId)> cb,
                    obs::TraceContext ctx);

  /// Walk component `i` onward from `dir`, delivering the final dentry.
  void ResolveStep(std::shared_ptr<std::vector<std::string>> parts,
                   std::size_t i, DirId dir, ResolveCallback done,
                   obs::TraceContext ctx);

  /// Bump `dir`'s version and push the invalidation to every client.
  void TouchDirectory(Directory& dir);
  /// Push a "directory gone" invalidation (version 0) to every client.
  void InvalidateGone(DirId dir);

  /// Root-or-child span helper (inert ctx + attached hub => root trace).
  obs::TraceContext StartOp(obs::TraceContext ctx, const char* name,
                            bool* root);
  void FinishOp(obs::TraceContext op, bool root, bool ok);

  Ino AllocIno() { return next_ino_++; }

  sim::Engine& engine_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<MetaShard>> shards_;
  std::map<DirId, ShardId> shard_overrides_;  // rebalance moves
  std::vector<bool> blade_up_;
  std::uint64_t map_epoch_ = 1;
  Ino next_ino_ = kRootDir + 1;
  std::vector<Client*> clients_;  // registration order: deterministic
  ServiceStats stats_;
  qos::Scheduler* qos_ = nullptr;
  qos::TenantId qos_tenant_ = qos::kAutoTenant;
  obs::Hub* hub_ = nullptr;
};

}  // namespace nlss::meta
