// Host-side dentry / path-resolution cache with version-stamped coherence.
//
// Each host::Initiator owns one Client.  A resolve first consults the
// local cache: a full-path hit is served after `local_hit_ns` (no shard
// visit at all — this is what lets a 32-host storm keep hammering "/dN"
// components without serializing on the root directory's shard); a miss
// walks from the deepest cached ancestor, one MetaService::LookupStep per
// remaining component, caching every component it learns.
//
// Coherence: a cached path records the full chain of (directory, version)
// pairs its resolution read through — not just the leaf's parent — because
// renaming a directory invalidates every path beneath it, and those deeper
// paths never touched the renamed entry's own parent twice.  Mutations
// push OnDirectoryInvalidate(dir, version) synchronously at apply time,
// dropping every cached path whose chain includes `dir`.  Because a cache
// hit is *scheduled* (served local_hit_ns later), a mutation can land
// between hit and serve — so the entry is re-validated when the hit timer
// fires and falls back to a fresh walk if it was dropped in the window.
// Net effect: no stale positive entry is ever served, cross-checked by an
// NLSS_INVARIANT(kMeta, ...) against the authoritative directory versions
// on every served hit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "meta/service.h"

namespace nlss::meta {

struct ClientConfig {
  /// Max cached entries (deterministic LRU eviction).  0 disables the
  /// cache entirely: every resolve walks the service from the root.
  std::size_t capacity = 4096;
  /// Service time of a full-path cache hit (host-local lookup).
  sim::Tick local_hit_ns = 400;
  /// Root delegation (E18a): hold a version-stamped full copy of "/" and
  /// serve cold walks' first component locally instead of serializing
  /// every walk on the root directory's shard.  The copy is re-validated
  /// against the authoritative root version on every use and dropped on
  /// root invalidation, so it can never serve a stale entry.
  bool root_delegation = true;
};

struct ClientStats {
  std::uint64_t resolves = 0;
  std::uint64_t full_hits = 0;     // whole path served from cache
  std::uint64_t partial_hits = 0;  // walk started from a cached ancestor
  std::uint64_t misses = 0;        // walk started from the root
  std::uint64_t steps = 0;         // LookupSteps issued to the service
  std::uint64_t invalidations = 0;     // OnDirectoryInvalidate deliveries
  std::uint64_t dropped_entries = 0;   // entries removed by invalidation
  std::uint64_t evictions = 0;         // entries removed by LRU pressure
  /// Hits that lost the hit-to-serve race against a mutation and fell
  /// back to a service walk (counted in addition to the full_hit).
  std::uint64_t revalidation_fallbacks = 0;
  // --- Root delegation (E18a) ---------------------------------------------
  std::uint64_t delegation_grants = 0;  // root copies fetched
  std::uint64_t delegation_hits = 0;    // root steps served from the copy
  std::uint64_t delegation_joins = 0;   // walks that joined a grant fetch
  std::uint64_t delegation_drops = 0;   // copies dropped (root changed)
};

class Client {
 public:
  Client(MetaService& service, std::string name, ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Resolve `path` to its dentry, through the cache.
  void Resolve(const std::string& path, MetaService::ResolveCallback cb,
               obs::TraceContext ctx = {});

  /// Coherence push from the service: `dir`'s contents changed (its
  /// version is now `version`; 0 = directory removed).  Drops every
  /// cached path whose resolution read through `dir`.
  void OnDirectoryInvalidate(DirId dir, std::uint64_t version);

  const std::string& name() const { return name_; }
  const ClientStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }
  std::size_t cached_entries() const { return cache_.size(); }
  /// Fraction of resolves served entirely from cache.
  double HitRate() const {
    return stats_.resolves == 0
               ? 0.0
               : static_cast<double>(stats_.full_hits) /
                     static_cast<double>(stats_.resolves);
  }

 private:
  struct Entry {
    Dentry dentry;
    /// Every (directory, version) the resolution read through, root-first;
    /// chain.back().first is the leaf's parent directory.
    std::vector<std::pair<DirId, std::uint64_t>> chain;
    std::uint64_t lru = 0;  // last-touch stamp (deterministic)
  };

  /// Start a service walk: from the deepest cached ancestor when one
  /// exists, from the root otherwise.
  void BeginWalk(std::shared_ptr<std::vector<std::string>> parts,
                 MetaService::ResolveCallback cb, obs::TraceContext ctx);
  /// Walk components [next, end) from `dir`, prefix = cached chain so far.
  void WalkFrom(std::shared_ptr<std::vector<std::string>> parts,
                std::size_t next, DirId dir,
                std::shared_ptr<std::vector<std::pair<DirId, std::uint64_t>>>
                    chain,
                MetaService::ResolveCallback cb, obs::TraceContext ctx);
  /// Serve a root-directory step from the delegation copy (fetching or
  /// joining a grant first when needed).  Returns false when delegation is
  /// off/unavailable and the caller should issue a plain LookupStep.
  bool TryRootDelegation(
      std::shared_ptr<std::vector<std::string>> parts, std::size_t next,
      std::shared_ptr<std::vector<std::pair<DirId, std::uint64_t>>> chain,
      MetaService::ResolveCallback cb, obs::TraceContext ctx);
  void DropRootGrant();
  void InsertEntry(const std::string& path, Entry entry);
  void RemoveEntry(const std::string& path, std::uint64_t* counter);
  void TouchLru(const std::string& path, Entry& entry);
  /// Race-detector key for this client's cached state about `dir`: each
  /// host cache is independent state, so the key is salted per client
  /// (deterministically, from the client's name).
  std::uint64_t RaceKey(DirId dir) const;

  MetaService& service_;
  std::string name_;
  ClientConfig config_;
  std::map<std::string, Entry> cache_;             // normalized path -> entry
  std::map<DirId, std::set<std::string>> by_dir_;  // chain dir -> paths
  std::map<std::uint64_t, std::string> lru_order_;  // stamp -> path
  std::uint64_t lru_clock_ = 0;
  // Root delegation state: a full, version-stamped copy of "/".
  bool root_grant_valid_ = false;
  bool root_grant_pending_ = false;
  bool root_grant_broken_ = false;  // fetch failed: stop re-trying forever
  std::map<std::string, Dentry> root_copy_;
  std::uint64_t root_version_ = 0;
  std::vector<std::function<void()>> root_grant_waiters_;
  ClientStats stats_;
};

}  // namespace nlss::meta
