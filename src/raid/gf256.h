// GF(2^8) arithmetic for RAID-6 Reed-Solomon (P+Q) coding, with the
// x^8+x^4+x^3+x^2+1 (0x11D) polynomial conventionally used by RAID-6.
// Includes the bulk buffer kernels the parity paths and benchmarks use.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace nlss::raid {

class Gf256 {
 public:
  static std::uint8_t Mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t Div(std::uint8_t a, std::uint8_t b);  // b != 0
  static std::uint8_t Inv(std::uint8_t a);                  // a != 0
  static std::uint8_t Exp(unsigned power);                  // generator 2
  static std::uint8_t Pow(std::uint8_t base, unsigned power);
};

/// dst ^= src, element-wise.  Sizes must match.
void XorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// dst ^= coeff * src in GF(2^8), element-wise.  Sizes must match.
void GfMulInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
               std::uint8_t coeff);

/// dst = coeff * dst in GF(2^8).
void GfScale(std::span<std::uint8_t> dst, std::uint8_t coeff);

}  // namespace nlss::raid
