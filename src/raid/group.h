// A RAID group: asynchronous block I/O over member disks with parity
// protection, degraded-mode reconstruction, and rebuild support.
//
// Request path per stripe:
//   * healthy reads touch only the disks holding the requested data units;
//   * degraded reads fetch the surviving units and reconstruct via P (XOR)
//     or Q (Reed-Solomon) as available;
//   * full-stripe writes compute parity directly; partial writes use a
//     fetch-merge-recompute path (reconstruct-write);
//   * every stripe-level operation holds a per-stripe lock, so foreground
//     I/O and rebuild never interleave within one stripe.
//
// Parity computation can be charged to a sim::Resource (the owning
// controller's compute engine), which is how the rebuild-distribution
// experiments observe controller load.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "disk/disk.h"
#include "obs/trace.h"
#include "raid/layout.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "util/bytes.h"

namespace nlss::raid {

class RaidGroup {
 public:
  struct Config {
    RaidLevel level = RaidLevel::kRaid5;
    std::uint32_t unit_blocks = 16;          // 64 KiB units at 4 KiB blocks
    sim::Resource* compute = nullptr;        // optional parity-compute engine
    double parity_ns_per_byte = 0.5;         // ~2 GB/s XOR engine
  };

  using ReadCallback = std::function<void(bool ok, util::Bytes data)>;
  using WriteCallback = std::function<void(bool ok)>;

  RaidGroup(sim::Engine& engine, std::vector<disk::Disk*> disks,
            const Config& config);

  /// Linear data-block address space of the group.
  std::uint64_t DataCapacityBlocks() const;
  std::uint32_t block_size() const { return block_size_; }
  const Layout& layout() const { return layout_; }

  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {});
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext ctx = {});

  // --- Health and rebuild ------------------------------------------------

  /// Member states as the group currently believes them.
  enum class MemberState : std::uint8_t { kLive, kFailed, kRebuilding };

  /// Re-examine disks and mark newly failed members.  Called internally on
  /// every operation; exposed for tests and the rebuild engine.
  void RefreshMemberStates();

  MemberState member_state(std::uint32_t i) const { return members_[i]; }
  unsigned UnreadableCount() const;
  bool Operational() const {
    return UnreadableCount() <= FaultTolerance(layout_.level(),
                                               layout_.width());
  }

  /// Transition a failed member (whose Disk was Replace()d) to rebuilding.
  void BeginRebuild(std::uint32_t disk_index);

  /// Reconstruct the unit of `stripe` living on `disk_index` (which must be
  /// kRebuilding) and write it there.
  void RebuildStripe(std::uint64_t stripe, std::uint32_t disk_index,
                     WriteCallback cb);

  /// Mark a rebuilding member live again (all stripes rebuilt).
  void FinishRebuild(std::uint32_t disk_index);

  std::uint64_t StripeCount() const;
  disk::Disk& disk(std::uint32_t i) { return *disks_[i]; }
  std::uint32_t width() const { return layout_.width(); }

  /// Bytes of parity/reconstruction compute charged so far.
  std::uint64_t compute_bytes() const { return compute_bytes_; }

 private:
  struct StripeData {
    bool ok = false;
    std::vector<util::Bytes> units;  // one per data unit, full-size
  };
  using FetchCallback = std::function<void(StripeData)>;

  /// True if the member can be read from (live only).
  bool Readable(std::uint32_t i) const {
    return members_[i] == MemberState::kLive;
  }
  /// True if the member should receive writes (live or rebuilding).
  bool Writable(std::uint32_t i) const {
    return members_[i] != MemberState::kFailed;
  }

  // Per-stripe lock manager.
  void LockStripe(std::uint64_t stripe, std::function<void()> grant);
  void UnlockStripe(std::uint64_t stripe);

  /// Charge parity compute and run `next` when the engine frees up.
  void Compute(std::uint64_t bytes, std::function<void()> next);

  /// Obtain all data units of a stripe, reconstructing as needed.
  /// Caller must hold the stripe lock.
  void FetchAllData(std::uint64_t stripe, FetchCallback cb,
                    obs::TraceContext ctx = {});

  /// Reconstruct missing data units in-place given surviving raw units.
  /// raw[i] holds disk i's unit (empty if unreadable).  Returns false if
  /// too many members are missing.
  bool Reconstruct(std::uint64_t stripe, std::vector<util::Bytes>& raw,
                   std::vector<util::Bytes>& data_out);

  // Stripe-granular operations (assume lock held; release it on completion).
  void StripeRead(std::uint64_t stripe, std::uint32_t first_block,
                  std::uint32_t block_count, std::uint8_t* out,
                  std::function<void(bool)> done, obs::TraceContext ctx = {});
  void StripeWrite(std::uint64_t stripe, std::uint32_t first_block,
                   std::uint32_t block_count, const std::uint8_t* src,
                   std::function<void(bool)> done, obs::TraceContext ctx = {});
  void StripeWriteRaid01(std::uint64_t stripe, std::uint32_t first_block,
                         std::uint32_t block_count, const std::uint8_t* src,
                         std::function<void(bool)> done,
                         obs::TraceContext ctx = {});
  void StripeWriteParity(std::uint64_t stripe, std::uint32_t first_block,
                         std::uint32_t block_count, const std::uint8_t* src,
                         std::function<void(bool)> done,
                         obs::TraceContext ctx = {});

  /// Compute P (and Q for RAID-6) over full data units.
  void ComputeParity(const std::vector<util::Bytes>& data, util::Bytes& p,
                     util::Bytes& q) const;

  std::uint32_t unit_bytes() const {
    return layout_.unit_blocks() * block_size_;
  }

  sim::Engine& engine_;
  std::vector<disk::Disk*> disks_;
  Layout layout_;
  Config config_;
  std::uint32_t block_size_;
  std::vector<MemberState> members_;
  std::map<std::uint64_t, std::deque<std::function<void()>>> stripe_locks_;
  std::uint64_t compute_bytes_ = 0;
};

}  // namespace nlss::raid
