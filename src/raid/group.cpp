#include "raid/group.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

#include "raid/gf256.h"

namespace nlss::raid {
namespace {

/// Shared completion join for fan-out operations.
struct Join {
  explicit Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;

  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

RaidGroup::RaidGroup(sim::Engine& engine, std::vector<disk::Disk*> disks,
                     const Config& config)
    : engine_(engine),
      disks_(std::move(disks)),
      layout_(config.level, static_cast<std::uint32_t>(disks_.size()),
              config.unit_blocks),
      config_(config),
      block_size_(disks_.empty() ? 4096 : disks_[0]->profile().block_size),
      members_(disks_.size(), MemberState::kLive) {
  assert(!disks_.empty());
  for ([[maybe_unused]] const auto* d : disks_) {
    assert(d->profile().block_size == block_size_);
  }
}

std::uint64_t RaidGroup::DataCapacityBlocks() const {
  return layout_.DataCapacityBlocks(disks_[0]->profile().capacity_blocks);
}

std::uint64_t RaidGroup::StripeCount() const {
  return disks_[0]->profile().capacity_blocks / layout_.unit_blocks();
}

void RaidGroup::RefreshMemberStates() {
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i]->failed() && members_[i] != MemberState::kFailed) {
      members_[i] = MemberState::kFailed;
    }
  }
}

unsigned RaidGroup::UnreadableCount() const {
  unsigned n = 0;
  for (const auto m : members_) {
    if (m != MemberState::kLive) ++n;
  }
  return n;
}

void RaidGroup::BeginRebuild(std::uint32_t disk_index) {
  assert(members_[disk_index] == MemberState::kFailed);
  assert(!disks_[disk_index]->failed() && "Replace() the disk first");
  members_[disk_index] = MemberState::kRebuilding;
}

void RaidGroup::FinishRebuild(std::uint32_t disk_index) {
  assert(members_[disk_index] == MemberState::kRebuilding);
  members_[disk_index] = MemberState::kLive;
}

// --- Stripe locks ---------------------------------------------------------

void RaidGroup::LockStripe(std::uint64_t stripe, std::function<void()> grant) {
  auto [it, inserted] = stripe_locks_.try_emplace(stripe);
  if (inserted) {
    // Uncontended: run the grant on the event loop to keep call depth flat.
    engine_.Schedule(0, std::move(grant));
  } else {
    it->second.push_back(std::move(grant));
  }
}

void RaidGroup::UnlockStripe(std::uint64_t stripe) {
  auto it = stripe_locks_.find(stripe);
  assert(it != stripe_locks_.end());
  if (it->second.empty()) {
    stripe_locks_.erase(it);
  } else {
    auto next = std::move(it->second.front());
    it->second.pop_front();
    engine_.Schedule(0, std::move(next));
  }
}

void RaidGroup::Compute(std::uint64_t bytes, std::function<void()> next) {
  compute_bytes_ += bytes;
  if (config_.compute == nullptr) {
    engine_.Schedule(0, std::move(next));
    return;
  }
  const sim::Tick done =
      config_.compute->AcquireBytes(bytes, config_.parity_ns_per_byte);
  engine_.ScheduleAt(done, std::move(next));
}

// --- Parity math -----------------------------------------------------------

void RaidGroup::ComputeParity(const std::vector<util::Bytes>& data,
                              util::Bytes& p, util::Bytes& q) const {
  const std::uint32_t ub = unit_bytes();
  p.assign(ub, 0);
  for (const auto& unit : data) XorInto(p, unit);
  if (layout_.level() == RaidLevel::kRaid6) {
    q.assign(ub, 0);
    for (std::uint32_t u = 0; u < data.size(); ++u) {
      GfMulInto(q, data[u], Gf256::Exp(u));
    }
  }
}

bool RaidGroup::Reconstruct(std::uint64_t stripe,
                            std::vector<util::Bytes>& raw,
                            std::vector<util::Bytes>& data_out) {
  const std::uint32_t du = layout_.DataUnitsPerStripe();
  const std::uint32_t ub = unit_bytes();
  data_out.assign(du, {});
  util::Bytes* p = nullptr;
  util::Bytes* q = nullptr;
  std::vector<std::uint32_t> missing;

  for (std::uint32_t d = 0; d < layout_.width(); ++d) {
    const UnitRole role = layout_.RoleOf(stripe, d);
    if (role.kind == UnitRole::kData) {
      if (!raw[d].empty()) {
        data_out[role.data_index] = std::move(raw[d]);
      } else {
        missing.push_back(role.data_index);
      }
    } else if (role.kind == UnitRole::kParityP) {
      if (!raw[d].empty()) p = &raw[d];
    } else {
      if (!raw[d].empty()) q = &raw[d];
    }
  }

  if (missing.empty()) return true;

  // S = xor of surviving data; T = sum of g^u * surviving data.
  auto xor_of_surviving = [&]() {
    util::Bytes s(ub, 0);
    for (std::uint32_t u = 0; u < du; ++u) {
      if (!data_out[u].empty()) XorInto(s, data_out[u]);
    }
    return s;
  };
  auto rs_of_surviving = [&]() {
    util::Bytes t(ub, 0);
    for (std::uint32_t u = 0; u < du; ++u) {
      if (!data_out[u].empty()) GfMulInto(t, data_out[u], Gf256::Exp(u));
    }
    return t;
  };

  if (missing.size() == 1) {
    const std::uint32_t u = missing[0];
    if (p != nullptr) {
      util::Bytes d = *p;
      XorInto(d, xor_of_surviving());
      data_out[u] = std::move(d);
      return true;
    }
    if (q != nullptr && layout_.level() == RaidLevel::kRaid6) {
      util::Bytes d = *q;
      XorInto(d, rs_of_surviving());
      GfScale(d, Gf256::Inv(Gf256::Exp(u)));
      data_out[u] = std::move(d);
      return true;
    }
    return false;
  }

  if (missing.size() == 2 && layout_.level() == RaidLevel::kRaid6 &&
      p != nullptr && q != nullptr) {
    const std::uint32_t u1 = missing[0];
    const std::uint32_t u2 = missing[1];
    util::Bytes a = *p;  // A = P ^ S = D1 ^ D2
    XorInto(a, xor_of_surviving());
    util::Bytes b = *q;  // B = Q ^ T = g^u1 D1 ^ g^u2 D2
    XorInto(b, rs_of_surviving());
    // D1 = (g^u2 * A ^ B) / (g^u1 ^ g^u2)
    util::Bytes d1 = b;
    GfMulInto(d1, a, Gf256::Exp(u2));
    const std::uint8_t denom =
        static_cast<std::uint8_t>(Gf256::Exp(u1) ^ Gf256::Exp(u2));
    GfScale(d1, Gf256::Inv(denom));
    util::Bytes d2 = a;
    XorInto(d2, d1);
    data_out[u1] = std::move(d1);
    data_out[u2] = std::move(d2);
    return true;
  }

  return false;
}

// --- Fetch -----------------------------------------------------------------

void RaidGroup::FetchAllData(std::uint64_t stripe, FetchCallback cb,
                             obs::TraceContext ctx) {
  RefreshMemberStates();
  const std::uint32_t du = layout_.DataUnitsPerStripe();
  const std::uint32_t width = layout_.width();
  const std::uint64_t lba = layout_.StripeLba(stripe);
  const std::uint32_t ublocks = layout_.unit_blocks();

  if (layout_.level() == RaidLevel::kRaid1) {
    // Read the whole unit from one live mirror, rotating by stripe.
    for (std::uint32_t k = 0; k < width; ++k) {
      const std::uint32_t m = (static_cast<std::uint32_t>(stripe) + k) % width;
      if (!Readable(m)) continue;
      disks_[m]->Read(
          lba, ublocks,
          [cb = std::move(cb)](bool ok, util::Bytes data) {
            StripeData sd;
            sd.ok = ok;
            if (ok) sd.units.push_back(std::move(data));
            cb(std::move(sd));
          },
          ctx);
      return;
    }
    engine_.Schedule(0, [cb = std::move(cb)] { cb(StripeData{}); });
    return;
  }

  // Decide whether any data-role member is unreadable.
  bool degraded = false;
  for (std::uint32_t u = 0; u < du; ++u) {
    if (!Readable(layout_.DiskForData(stripe, u))) {
      degraded = true;
      break;
    }
  }

  if (layout_.level() == RaidLevel::kRaid0 && degraded) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(StripeData{}); });
    return;
  }

  struct FetchState {
    std::vector<util::Bytes> raw;  // per disk; empty if not read/failed
    FetchCallback cb;
  };
  auto state = std::make_shared<FetchState>();
  state->raw.assign(width, {});
  state->cb = std::move(cb);

  // Healthy: read just the data units.  Degraded: read every readable
  // member (parity included) and reconstruct.
  std::vector<std::uint32_t> targets;
  if (!degraded) {
    for (std::uint32_t u = 0; u < du; ++u) {
      targets.push_back(layout_.DiskForData(stripe, u));
    }
  } else {
    for (std::uint32_t d = 0; d < width; ++d) {
      if (Readable(d)) targets.push_back(d);
    }
  }

  auto finish = [this, stripe, state, degraded, ctx](bool ok) {
    StripeData sd;
    // Even if some reads failed mid-flight, attempt reconstruction from
    // what arrived.
    std::vector<util::Bytes> data;
    if (Reconstruct(stripe, state->raw, data)) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(data.size()) * unit_bytes();
      sd.ok = true;
      sd.units = std::move(data);
      Compute(degraded ? bytes : 0, [state, sd = std::move(sd)]() mutable {
        state->cb(std::move(sd));
      });
      return;
    }
    if (!ok && !degraded) {
      // A member died mid-flight on the healthy path; retry once — the
      // refreshed member states route the retry through reconstruction.
      FetchAllData(stripe, std::move(state->cb), ctx);
      return;
    }
    state->cb(StripeData{});
  };
  auto join = std::make_shared<Join>(static_cast<int>(targets.size()),
                                     std::move(finish));
  for (const std::uint32_t d : targets) {
    disks_[d]->Read(
        lba, ublocks,
        [state, join, d](bool ok, util::Bytes data) {
          if (ok) state->raw[d] = std::move(data);
          join->Arrive(ok);
        },
        ctx);
  }
}

// --- Reads -----------------------------------------------------------------

void RaidGroup::StripeRead(std::uint64_t stripe, std::uint32_t first_block,
                           std::uint32_t block_count, std::uint8_t* out,
                           std::function<void(bool)> done,
                           obs::TraceContext ctx) {
  RefreshMemberStates();
  const std::uint32_t ublocks = layout_.unit_blocks();
  const std::uint32_t bs = block_size_;
  const std::uint64_t lba0 = layout_.StripeLba(stripe);

  // Fallback path used when a member is unreadable (or a read fails
  // mid-flight): fetch all data, slice the requested range.
  auto degraded_read = [this, stripe, first_block, block_count, out, ctx,
                        done](auto&&) mutable {
    FetchAllData(
        stripe,
        [this, first_block, block_count, out,
         done = std::move(done)](StripeData sd) mutable {
          if (!sd.ok) {
            done(false);
            return;
          }
          const std::uint32_t ub = layout_.unit_blocks();
          for (std::uint32_t i = 0; i < block_count; ++i) {
            const std::uint32_t blk = first_block + i;
            const std::uint32_t u = blk / ub;
            const std::uint32_t off = blk % ub;
            std::memcpy(out + static_cast<std::size_t>(i) * block_size_,
                        sd.units[u].data() +
                            static_cast<std::size_t>(off) * block_size_,
                        block_size_);
          }
          done(true);
        },
        ctx);
  };

  if (layout_.level() == RaidLevel::kRaid1) {
    for (std::uint32_t k = 0; k < layout_.width(); ++k) {
      const std::uint32_t m =
          (static_cast<std::uint32_t>(stripe) + k) % layout_.width();
      if (!Readable(m)) continue;
      disks_[m]->Read(
          lba0 + first_block, block_count,
          [out, bs, block_count, done = std::move(done), degraded_read](
              bool ok, util::Bytes data) mutable {
            if (!ok) {
              degraded_read(0);
              return;
            }
            std::memcpy(out, data.data(),
                        static_cast<std::size_t>(block_count) * bs);
            done(true);
          },
          ctx);
      return;
    }
    done(false);
    return;
  }

  // Check whether all touched units are on readable disks.
  const std::uint32_t u_first = first_block / ublocks;
  const std::uint32_t u_last = (first_block + block_count - 1) / ublocks;
  bool healthy = true;
  for (std::uint32_t u = u_first; u <= u_last; ++u) {
    if (!Readable(layout_.DiskForData(stripe, u))) {
      healthy = false;
      break;
    }
  }
  if (!healthy) {
    degraded_read(0);
    return;
  }

  // Healthy fast path: one disk read per touched unit sub-range.
  struct ReadState {
    bool any_failed = false;
  };
  auto state = std::make_shared<ReadState>();
  auto finish = [state, done = std::move(done), degraded_read](bool ok) mutable {
    if (ok && !state->any_failed) {
      done(true);
    } else {
      // A member died mid-operation; retry once via reconstruction.
      degraded_read(0);
    }
  };
  auto join =
      std::make_shared<Join>(static_cast<int>(u_last - u_first + 1),
                             std::move(finish));
  for (std::uint32_t u = u_first; u <= u_last; ++u) {
    const std::uint32_t a = std::max(first_block, u * ublocks) - u * ublocks;
    const std::uint32_t b =
        std::min(first_block + block_count, (u + 1) * ublocks) - u * ublocks;
    const std::uint32_t d = layout_.DiskForData(stripe, u);
    std::uint8_t* dst =
        out + (static_cast<std::size_t>(u) * ublocks + a - first_block) * bs;
    disks_[d]->Read(
        lba0 + a, b - a,
        [state, join, dst, bs](bool ok, util::Bytes data) {
          if (ok) {
            std::memcpy(dst, data.data(), data.size());
          } else {
            state->any_failed = true;
          }
          join->Arrive(true);  // degraded retry handled in finish
        },
        ctx);
  }
}

void RaidGroup::ReadBlocks(std::uint64_t block, std::uint32_t count,
                           ReadCallback cb, obs::TraceContext ctx) {
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kRaid, "raid.read");
  assert(count > 0);
  assert(block + count <= DataCapacityBlocks());
  const std::uint32_t dbs = layout_.DataBlocksPerStripe();
  auto buffer = std::make_shared<util::Bytes>(
      static_cast<std::size_t>(count) * block_size_, 0);

  // Split into per-stripe sub-operations.
  struct Piece {
    std::uint64_t stripe;
    std::uint32_t first;  // data-block offset within stripe
    std::uint32_t count;
    std::size_t out_offset;  // bytes into the result buffer
  };
  std::vector<Piece> pieces;
  std::uint64_t blk = block;
  std::uint32_t left = count;
  std::size_t out_off = 0;
  while (left > 0) {
    const std::uint64_t stripe = blk / dbs;
    const std::uint32_t first = static_cast<std::uint32_t>(blk % dbs);
    const std::uint32_t n = std::min(left, dbs - first);
    pieces.push_back(Piece{stripe, first, n, out_off});
    blk += n;
    left -= n;
    out_off += static_cast<std::size_t>(n) * block_size_;
  }

  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [buffer, span, cb = std::move(cb)](bool ok) {
        obs::EndSpan(span);
        cb(ok, ok ? std::move(*buffer) : util::Bytes{});
      });
  for (const Piece& p : pieces) {
    LockStripe(p.stripe, [this, p, buffer, join, span] {
      StripeRead(
          p.stripe, p.first, p.count, buffer->data() + p.out_offset,
          [this, p, join](bool ok) {
            UnlockStripe(p.stripe);
            join->Arrive(ok);
          },
          span);
    });
  }
}

// --- Writes ----------------------------------------------------------------

void RaidGroup::StripeWriteRaid01(std::uint64_t stripe,
                                  std::uint32_t first_block,
                                  std::uint32_t block_count,
                                  const std::uint8_t* src,
                                  std::function<void(bool)> done,
                                  obs::TraceContext ctx) {
  const std::uint64_t lba0 = layout_.StripeLba(stripe);
  const std::uint32_t bs = block_size_;

  if (layout_.level() == RaidLevel::kRaid1) {
    std::vector<std::uint32_t> targets;
    for (std::uint32_t m = 0; m < layout_.width(); ++m) {
      if (Writable(m)) targets.push_back(m);
    }
    if (targets.empty()) {
      done(false);
      return;
    }
    auto join = std::make_shared<Join>(
        static_cast<int>(targets.size()),
        [this, done = std::move(done)](bool) {
          RefreshMemberStates();
          // RAID-1 data survives while at least one mirror is writable.
          done(UnreadableCount() < layout_.width());
        });
    const std::span<const std::uint8_t> data(
        src, static_cast<std::size_t>(block_count) * bs);
    for (const std::uint32_t m : targets) {
      disks_[m]->Write(
          lba0 + first_block, data, [join](bool ok) { join->Arrive(ok); },
          ctx);
    }
    return;
  }

  // RAID-0: write through to the touched units; any failure is fatal.
  const std::uint32_t ublocks = layout_.unit_blocks();
  const std::uint32_t u_first = first_block / ublocks;
  const std::uint32_t u_last = (first_block + block_count - 1) / ublocks;
  auto join = std::make_shared<Join>(static_cast<int>(u_last - u_first + 1),
                                     std::move(done));
  for (std::uint32_t u = u_first; u <= u_last; ++u) {
    const std::uint32_t a = std::max(first_block, u * ublocks) - u * ublocks;
    const std::uint32_t b =
        std::min(first_block + block_count, (u + 1) * ublocks) - u * ublocks;
    const std::uint32_t d = layout_.DiskForData(stripe, u);
    if (!Writable(d)) {
      join->Arrive(false);
      continue;
    }
    const std::uint8_t* p =
        src + (static_cast<std::size_t>(u) * ublocks + a - first_block) * bs;
    disks_[d]->Write(
        lba0 + a,
        std::span<const std::uint8_t>(p, static_cast<std::size_t>(b - a) * bs),
        [join](bool ok) { join->Arrive(ok); }, ctx);
  }
}

void RaidGroup::StripeWriteParity(std::uint64_t stripe,
                                  std::uint32_t first_block,
                                  std::uint32_t block_count,
                                  const std::uint8_t* src,
                                  std::function<void(bool)> done,
                                  obs::TraceContext ctx) {
  const std::uint32_t du = layout_.DataUnitsPerStripe();
  const std::uint32_t dbs = layout_.DataBlocksPerStripe();
  const std::uint32_t ub = unit_bytes();
  const std::uint32_t ublocks = layout_.unit_blocks();
  const std::uint32_t bs = block_size_;
  const std::uint64_t lba0 = layout_.StripeLba(stripe);

  // The write-back phase common to the full-stripe and partial paths.
  auto write_phase = [this, stripe, first_block, block_count, lba0, du,
                      ublocks, ctx, done = std::move(done)](
                         std::vector<util::Bytes> data) mutable {
    if (data.empty()) {
      done(false);
      return;
    }
    util::Bytes p, q;
    ComputeParity(data, p, q);
    const std::uint64_t parity_bytes =
        static_cast<std::uint64_t>(data.size()) * unit_bytes();
    Compute(parity_bytes, [this, stripe, first_block, block_count, lba0, du,
                           ublocks, ctx, data = std::move(data),
                           p = std::move(p), q = std::move(q),
                           done = std::move(done)]() mutable {
      const std::uint32_t u_first = first_block / ublocks;
      const std::uint32_t u_last = (first_block + block_count - 1) / ublocks;

      struct Target {
        std::uint32_t disk;
        const util::Bytes* content;
      };
      std::vector<Target> targets;
      for (std::uint32_t u = u_first; u <= u_last && u < du; ++u) {
        const std::uint32_t d = layout_.DiskForData(stripe, u);
        if (Writable(d)) targets.push_back({d, &data[u]});
      }
      const std::uint32_t pd = layout_.PDisk(stripe);
      if (Writable(pd)) targets.push_back({pd, &p});
      if (layout_.level() == RaidLevel::kRaid6) {
        const std::uint32_t qd = layout_.QDisk(stripe);
        if (Writable(qd)) targets.push_back({qd, &q});
      }
      if (targets.empty()) {
        done(false);
        return;
      }
      // Keep the buffers alive until all writes are issued+copied: the Disk
      // copies data synchronously inside Write(), so moving them into the
      // join closure is sufficient.
      auto join = std::make_shared<Join>(
          static_cast<int>(targets.size()),
          [this, done = std::move(done), data = std::move(data)](bool) mutable {
            RefreshMemberStates();
            done(Operational());
          });
      for (const Target& t : targets) {
        disks_[t.disk]->Write(
            lba0, *t.content, [join](bool ok) { join->Arrive(ok); }, ctx);
      }
    });
  };

  if (first_block == 0 && block_count == dbs) {
    // Full-stripe write: parity from new data, no reads.
    std::vector<util::Bytes> data(du);
    for (std::uint32_t u = 0; u < du; ++u) {
      data[u].assign(src + static_cast<std::size_t>(u) * ub,
                     src + static_cast<std::size_t>(u + 1) * ub);
    }
    write_phase(std::move(data));
    return;
  }

  // Partial write: fetch-merge-recompute (reconstruct-write).
  FetchAllData(
      stripe,
      [this, first_block, block_count, src, bs, ublocks,
       write_phase = std::move(write_phase)](StripeData sd) mutable {
        if (!sd.ok) {
          // Cannot reconstruct the stripe's current contents: the group has
          // lost data; fail the write.
          write_phase({});  // no targets -> reports failure
          return;
        }
        for (std::uint32_t i = 0; i < block_count; ++i) {
          const std::uint32_t blk = first_block + i;
          const std::uint32_t u = blk / ublocks;
          const std::uint32_t off = blk % ublocks;
          std::memcpy(sd.units[u].data() + static_cast<std::size_t>(off) * bs,
                      src + static_cast<std::size_t>(i) * bs, bs);
        }
        write_phase(std::move(sd.units));
      },
      ctx);
}

void RaidGroup::StripeWrite(std::uint64_t stripe, std::uint32_t first_block,
                            std::uint32_t block_count, const std::uint8_t* src,
                            std::function<void(bool)> done,
                            obs::TraceContext ctx) {
  RefreshMemberStates();
  if (layout_.level() == RaidLevel::kRaid0 ||
      layout_.level() == RaidLevel::kRaid1) {
    StripeWriteRaid01(stripe, first_block, block_count, src, std::move(done),
                      ctx);
  } else {
    StripeWriteParity(stripe, first_block, block_count, src, std::move(done),
                      ctx);
  }
}

void RaidGroup::WriteBlocks(std::uint64_t block,
                            std::span<const std::uint8_t> data,
                            WriteCallback cb, obs::TraceContext ctx) {
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kRaid, "raid.write");
  assert(!data.empty());
  assert(data.size() % block_size_ == 0);
  const std::uint32_t count = static_cast<std::uint32_t>(data.size() / block_size_);
  assert(block + count <= DataCapacityBlocks());
  const std::uint32_t dbs = layout_.DataBlocksPerStripe();

  // Copy once: the caller's buffer may not outlive the simulated I/O.
  auto src = std::make_shared<util::Bytes>(data.begin(), data.end());

  struct Piece {
    std::uint64_t stripe;
    std::uint32_t first;
    std::uint32_t count;
    std::size_t src_offset;
  };
  std::vector<Piece> pieces;
  std::uint64_t blk = block;
  std::uint32_t left = count;
  std::size_t off = 0;
  while (left > 0) {
    const std::uint64_t stripe = blk / dbs;
    const std::uint32_t first = static_cast<std::uint32_t>(blk % dbs);
    const std::uint32_t n = std::min(left, dbs - first);
    pieces.push_back(Piece{stripe, first, n, off});
    blk += n;
    left -= n;
    off += static_cast<std::size_t>(n) * block_size_;
  }

  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()), [src, span, cb = std::move(cb)](bool ok) {
        obs::EndSpan(span);
        cb(ok);
      });
  for (const Piece& p : pieces) {
    LockStripe(p.stripe, [this, p, src, join, span] {
      StripeWrite(
          p.stripe, p.first, p.count, src->data() + p.src_offset,
          [this, p, join](bool ok) {
            UnlockStripe(p.stripe);
            join->Arrive(ok);
          },
          span);
    });
  }
}

// --- Rebuild ---------------------------------------------------------------

void RaidGroup::RebuildStripe(std::uint64_t stripe, std::uint32_t disk_index,
                              WriteCallback cb) {
  assert(members_[disk_index] == MemberState::kRebuilding);
  LockStripe(stripe, [this, stripe, disk_index, cb = std::move(cb)]() mutable {
    FetchAllData(stripe, [this, stripe, disk_index, cb = std::move(cb)](
                             StripeData sd) mutable {
      if (!sd.ok) {
        UnlockStripe(stripe);
        cb(false);
        return;
      }
      const UnitRole role = layout_.RoleOf(stripe, disk_index);
      util::Bytes content;
      std::uint64_t extra_compute = 0;
      switch (role.kind) {
        case UnitRole::kData:
          content = std::move(sd.units[role.data_index]);
          break;
        case UnitRole::kParityP: {
          util::Bytes q;
          std::vector<util::Bytes> data = std::move(sd.units);
          util::Bytes p;
          ComputeParity(data, p, q);
          content = std::move(p);
          extra_compute = static_cast<std::uint64_t>(data.size()) * unit_bytes();
          break;
        }
        case UnitRole::kParityQ: {
          util::Bytes p;
          std::vector<util::Bytes> data = std::move(sd.units);
          util::Bytes q;
          ComputeParity(data, p, q);
          content = std::move(q);
          extra_compute = static_cast<std::uint64_t>(data.size()) * unit_bytes();
          break;
        }
      }
      Compute(extra_compute, [this, stripe, disk_index,
                              content = std::move(content),
                              cb = std::move(cb)]() mutable {
        disks_[disk_index]->Write(
            layout_.StripeLba(stripe), content,
            [this, stripe, cb = std::move(cb)](bool ok) {
              UnlockStripe(stripe);
              cb(ok);
            });
      });
    });
  });
}

}  // namespace nlss::raid
