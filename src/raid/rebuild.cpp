#include "raid/rebuild.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "check/invariant.h"

namespace nlss::raid {

RebuildEngine::RebuildEngine(sim::Engine& engine, RebuildConfig config)
    : engine_(engine), config_(config) {}

int RebuildEngine::AddWorker(sim::Resource* compute) {
  workers_.push_back(Worker{.compute = compute, .alive = true, .busy = false,
                            .chunks_done = 0});
  return static_cast<int>(workers_.size() - 1);
}

void RebuildEngine::SetWorkerAlive(int worker, bool alive) {
  workers_[worker].alive = alive;
  if (alive) {
    Dispatch();
  }
  // If killed while busy, the in-flight chunk notices on its next step and
  // re-queues itself (see RunStripe / ChunkFinished).
}

void RebuildEngine::Rebuild(RaidGroup& group, std::uint32_t disk_index,
                            std::function<void(bool)> on_done) {
  group.BeginRebuild(disk_index);
  auto job = std::make_shared<Job>();
  job->group = &group;
  job->disk_index = disk_index;
  job->on_done = std::move(on_done);
  const std::uint64_t stripes = group.StripeCount();
  for (std::uint64_t s = 0; s < stripes; s += config_.chunk_stripes) {
    job->pending_chunks.push_back(s);
  }
  job->chunks_total = job->pending_chunks.size();
  if (tracer_ != nullptr) {
    job->root = tracer_->StartTrace(obs::Layer::kOther, "raid.rebuild");
    if (job->root.sampled()) {
      tracer_->Annotate(job->root,
                        "disk=" + std::to_string(disk_index) + " chunks=" +
                            std::to_string(job->chunks_total));
    }
  }
  jobs_.push_back(job);
  Dispatch();
}

void RebuildEngine::Dispatch() {
  // Defer to the event loop so that jobs registered in the same tick are
  // all visible before workers pick — otherwise every free worker piles
  // onto the first job submitted.
  if (dispatch_pending_) return;
  dispatch_pending_ = true;
  // Order-tolerant coalescer: a same-tick Dispatch() either sees the flag
  // and folds into this pass, or re-arms a second pass in the same tick;
  // DoDispatch assigns from full jobs_/workers_ state either way, so every
  // interleaving converges to the same placement.
  // nlss-lint: allow(same-tick-chain)
  engine_.Schedule(0, [this] {
    dispatch_pending_ = false;
    DoDispatch();
  });
}

void RebuildEngine::DoDispatch() {
  if (jobs_.empty()) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    if (!worker.alive || worker.busy) continue;
    // Job selection: keep the worker on its previous job when possible
    // (sequential disk access within a group), otherwise pick the pending
    // job with the fewest active workers.  Interleaving several workers in
    // one group thrashes the member disks with seeks, so affinity matters.
    std::shared_ptr<Job> job;
    if (worker.last_job != nullptr) {
      for (auto& candidate : jobs_) {
        if (candidate.get() == worker.last_job &&
            !candidate->pending_chunks.empty()) {
          job = candidate;
          break;
        }
      }
    }
    if (!job) {
      std::uint64_t best_load = ~0ULL;
      for (std::size_t k = 0; k < jobs_.size(); ++k) {
        auto& candidate = jobs_[(next_job_rr_ + k) % jobs_.size()];
        if (candidate->pending_chunks.empty()) continue;
        if (candidate->chunks_outstanding < best_load) {
          best_load = candidate->chunks_outstanding;
          job = candidate;
        }
      }
      next_job_rr_ = (next_job_rr_ + 1) % std::max<std::size_t>(1, jobs_.size());
    }
    if (!job) return;  // nothing left to hand out
    worker.last_job = job.get();
    const std::uint64_t first = job->pending_chunks.front();
    job->pending_chunks.pop_front();
    ++job->chunks_outstanding;
    worker.busy = true;
    RunChunk(static_cast<int>(w), job, first);
  }
}

void RebuildEngine::RunChunk(int worker, const std::shared_ptr<Job>& job,
                             std::uint64_t first_stripe) {
  const std::uint64_t end =
      std::min<std::uint64_t>(first_stripe + config_.chunk_stripes,
                              job->group->StripeCount());
  RunStripe(worker, job, first_stripe, first_stripe, end);
}

void RebuildEngine::RunStripe(int worker, const std::shared_ptr<Job>& job,
                              std::uint64_t first_stripe, std::uint64_t stripe,
                              std::uint64_t end_stripe) {
  Worker& w = workers_[worker];
  if (!w.alive) {
    ChunkFinished(worker, job, /*completed=*/false, first_stripe);
    return;
  }
  if (stripe >= end_stripe) {
    ChunkFinished(worker, job, /*completed=*/true, first_stripe);
    return;
  }
  NLSS_INVARIANT(kRaid, end_stripe <= job->group->StripeCount(),
                 "chunk end %llu past group stripe count %llu",
                 static_cast<unsigned long long>(end_stripe),
                 static_cast<unsigned long long>(job->group->StripeCount()));
  // Charge the worker's reconstruction compute: it reads width-1 surviving
  // units and produces one unit.
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(job->group->width()) *
      job->group->layout().unit_blocks() * job->group->block_size();
  auto proceed = [this, worker, job, first_stripe, stripe, end_stripe] {
    job->group->RebuildStripe(
        stripe, job->disk_index,
        [this, worker, job, first_stripe, stripe, end_stripe](bool ok) {
          if (!ok) {
            // Unrecoverable stripe (too many failures): the whole job fails.
            job->failed = true;
            ChunkFinished(worker, job, /*completed=*/true, first_stripe);
            return;
          }
          RunStripe(worker, job, first_stripe, stripe + 1, end_stripe);
        });
  };
  if (w.compute != nullptr) {
    engine_.ScheduleAt(w.compute->AcquireBytes(bytes, config_.xor_ns_per_byte),
                       std::move(proceed));
  } else {
    engine_.Schedule(0, std::move(proceed));
  }
}

void RebuildEngine::ChunkFinished(int worker, const std::shared_ptr<Job>& job,
                                  bool completed, std::uint64_t first_stripe) {
  Worker& w = workers_[worker];
  w.busy = false;
  --job->chunks_outstanding;
  if (completed) {
    // Rebuild never re-does written work: each chunk completes once.
    NLSS_INVARIANT(kRaid, job->completed_chunks.count(first_stripe) == 0,
                   "chunk at stripe %llu completed twice",
                   static_cast<unsigned long long>(first_stripe));
    if constexpr (check::kEnabled) {
      job->completed_chunks.insert(first_stripe);
    }
    ++job->chunks_done;
    ++w.chunks_done;
  } else {
    // Worker died: hand the chunk back for another controller.  A chunk
    // already written must never be queued for re-rebuild.
    NLSS_INVARIANT(kRaid, job->completed_chunks.count(first_stripe) == 0,
                   "completed chunk at stripe %llu re-queued",
                   static_cast<unsigned long long>(first_stripe));
    job->pending_chunks.push_front(first_stripe);
  }
  MaybeCompleteJob(job);
  Dispatch();
}

void RebuildEngine::MaybeCompleteJob(const std::shared_ptr<Job>& job) {
  if (job->chunks_outstanding > 0 || !job->pending_chunks.empty()) return;
  if (job->chunks_done < job->chunks_total && !job->failed) return;
  // Remove from the active list.
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  if (job->root.sampled()) {
    job->root.tracer->EndTrace(job->root, !job->failed);
    job->root = {};
  }
  if (!job->failed) {
    job->group->FinishRebuild(job->disk_index);
    if (job->on_done) job->on_done(true);
  } else {
    if (job->on_done) job->on_done(false);
  }
}

std::vector<std::uint64_t> RebuildEngine::ChunksByWorker() const {
  std::vector<std::uint64_t> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w.chunks_done);
  return out;
}

}  // namespace nlss::raid
