// RAID geometry: how a group's linear data-block space maps onto member
// disks, with rotating parity for RAID-5 (left-symmetric) and rotating P+Q
// for RAID-6.  Pure address math — no I/O — so it is exhaustively testable.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace nlss::raid {

enum class RaidLevel : std::uint8_t { kRaid0, kRaid1, kRaid5, kRaid6 };

const char* RaidLevelName(RaidLevel level);

/// How many disk failures the level tolerates.
constexpr unsigned FaultTolerance(RaidLevel level, std::uint32_t width) {
  switch (level) {
    case RaidLevel::kRaid0: return 0;
    case RaidLevel::kRaid1: return width - 1;
    case RaidLevel::kRaid5: return 1;
    case RaidLevel::kRaid6: return 2;
  }
  return 0;
}

/// Role of one disk's unit within a stripe.
struct UnitRole {
  enum Kind : std::uint8_t { kData, kParityP, kParityQ } kind = kData;
  std::uint32_t data_index = 0;  // valid when kind == kData
};

class Layout {
 public:
  /// width = member disks; unit_blocks = stripe-unit size in disk blocks.
  Layout(RaidLevel level, std::uint32_t width, std::uint32_t unit_blocks);

  RaidLevel level() const { return level_; }
  std::uint32_t width() const { return width_; }
  std::uint32_t unit_blocks() const { return unit_blocks_; }

  /// Number of data units per stripe (RAID-1 counts as one).
  std::uint32_t DataUnitsPerStripe() const;

  /// Number of data blocks per stripe.
  std::uint32_t DataBlocksPerStripe() const {
    return DataUnitsPerStripe() * unit_blocks_;
  }

  /// Total data blocks given per-disk capacity in blocks.
  std::uint64_t DataCapacityBlocks(std::uint64_t disk_capacity_blocks) const;

  /// Which disk holds data unit `u` of stripe `s`.
  std::uint32_t DiskForData(std::uint64_t stripe, std::uint32_t u) const;

  /// Which disk holds P / Q for stripe `s` (RAID-5/6 only).
  std::uint32_t PDisk(std::uint64_t stripe) const;
  std::uint32_t QDisk(std::uint64_t stripe) const;  // RAID-6 only

  /// Role of `disk`'s unit within stripe `s`.
  UnitRole RoleOf(std::uint64_t stripe, std::uint32_t disk) const;

  /// Split a linear data-block address into (stripe, data_unit, offset).
  struct Address {
    std::uint64_t stripe;
    std::uint32_t data_unit;
    std::uint32_t offset_blocks;  // within the unit
  };
  Address Split(std::uint64_t data_block) const;

  /// Disk LBA of the start of stripe `s` (same on every member disk).
  std::uint64_t StripeLba(std::uint64_t stripe) const {
    return stripe * unit_blocks_;
  }

 private:
  RaidLevel level_;
  std::uint32_t width_;
  std::uint32_t unit_blocks_;
};

}  // namespace nlss::raid
