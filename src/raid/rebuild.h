// Distributed rebuild engine (paper §2.4, §6.3): rebuild work is split into
// chunks of stripes and spread across the controller cluster's workers.  If
// a controller (worker) dies mid-rebuild, its in-flight chunk is re-queued
// and the rebuild "automatically continues on other available controllers".
//
// Reconstruction compute (XOR / Reed-Solomon) is charged to the worker's
// compute resource, so rebuild speed scales with live controllers until the
// member disks saturate — exactly the behaviour experiment E4 measures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "obs/trace.h"
#include "raid/group.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace nlss::raid {

struct RebuildConfig {
  std::uint32_t chunk_stripes = 64;
  double xor_ns_per_byte = 0.5;  // controller reconstruction engine rate
};

class RebuildEngine {
 public:
  RebuildEngine(sim::Engine& engine, RebuildConfig config = {});

  /// Register a controller's rebuild worker; `compute` may be nullptr
  /// (infinitely fast compute).  Returns the worker id.
  int AddWorker(sim::Resource* compute);

  /// Failure injection / recovery.  Killing a worker re-queues its chunk.
  void SetWorkerAlive(int worker, bool alive);
  bool IsWorkerAlive(int worker) const { return workers_[worker].alive; }

  /// Start rebuilding `disk_index` of `group`.  The disk must have been
  /// Replace()d; this calls BeginRebuild/FinishRebuild on the group.
  /// `on_done(true)` fires when every stripe has been rebuilt.
  void Rebuild(RaidGroup& group, std::uint32_t disk_index,
               std::function<void(bool)> on_done);

  /// Chunks completed by each worker (shows rebuild distribution).
  std::vector<std::uint64_t> ChunksByWorker() const;

  std::size_t ActiveJobs() const { return jobs_.size(); }

  /// Root-trace each rebuild job as "raid.rebuild" (background work is
  /// otherwise invisible in traces).  Pass nullptr to detach.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Job {
    RaidGroup* group;
    std::uint32_t disk_index;
    std::deque<std::uint64_t> pending_chunks;  // first stripe of each chunk
    std::uint64_t chunks_outstanding = 0;
    std::uint64_t chunks_total = 0;
    std::uint64_t chunks_done = 0;
    bool failed = false;
    std::function<void(bool)> on_done;
    obs::TraceContext root;  // "raid.rebuild" span covering the whole job
    /// Invariant bookkeeping (Debug only): chunks already completed, to
    /// prove rebuild never re-does or re-queues written work.
    std::set<std::uint64_t> completed_chunks;
  };
  struct Worker {
    sim::Resource* compute = nullptr;
    bool alive = true;
    bool busy = false;
    std::uint64_t chunks_done = 0;
    const void* last_job = nullptr;  // affinity hint; identity only
  };

  void Dispatch();
  void DoDispatch();
  void RunChunk(int worker, const std::shared_ptr<Job>& job,
                std::uint64_t first_stripe);
  void RunStripe(int worker, const std::shared_ptr<Job>& job,
                 std::uint64_t first_stripe, std::uint64_t stripe,
                 std::uint64_t end_stripe);
  void ChunkFinished(int worker, const std::shared_ptr<Job>& job,
                     bool completed, std::uint64_t first_stripe);
  void MaybeCompleteJob(const std::shared_ptr<Job>& job);

  sim::Engine& engine_;
  RebuildConfig config_;
  std::vector<Worker> workers_;
  std::vector<std::shared_ptr<Job>> jobs_;
  std::size_t next_job_rr_ = 0;  // round-robin fairness across jobs
  bool dispatch_pending_ = false;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace nlss::raid
