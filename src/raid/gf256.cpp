#include "raid/gf256.h"

#include <cassert>

namespace nlss::raid {
namespace {

// RAID-6 polynomial 0x11D, generator 2.
struct GfTables {
  std::array<std::uint8_t, 512> exp{};  // doubled to avoid mod in Mul
  std::array<std::uint8_t, 256> log{};

  constexpr GfTables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

constexpr GfTables kGf{};

}  // namespace

std::uint8_t Gf256::Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kGf.exp[kGf.log[a] + kGf.log[b]];
}

std::uint8_t Gf256::Div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return kGf.exp[(kGf.log[a] + 255 - kGf.log[b]) % 255];
}

std::uint8_t Gf256::Inv(std::uint8_t a) {
  assert(a != 0);
  return kGf.exp[255 - kGf.log[a]];
}

std::uint8_t Gf256::Exp(unsigned power) { return kGf.exp[power % 255]; }

std::uint8_t Gf256::Pow(std::uint8_t base, unsigned power) {
  if (base == 0) return power == 0 ? 1 : 0;
  return kGf.exp[(static_cast<unsigned>(kGf.log[base]) * power) % 255];
}

void XorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  std::size_t i = 0;
  // Word-at-a-time main loop; tails byte-wise.
  for (; i + 8 <= dst.size(); i += 8) {
    std::uint64_t d, s;
    __builtin_memcpy(&d, dst.data() + i, 8);
    __builtin_memcpy(&s, src.data() + i, 8);
    d ^= s;
    __builtin_memcpy(dst.data() + i, &d, 8);
  }
  for (; i < dst.size(); ++i) dst[i] ^= src[i];
}

void GfMulInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
               std::uint8_t coeff) {
  assert(dst.size() == src.size());
  if (coeff == 0) return;
  if (coeff == 1) {
    XorInto(dst, src);
    return;
  }
  // Per-coefficient 256-entry product table amortizes the log/exp lookups.
  std::array<std::uint8_t, 256> table;
  for (int v = 0; v < 256; ++v) {
    table[v] = Gf256::Mul(static_cast<std::uint8_t>(v), coeff);
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= table[src[i]];
}

void GfScale(std::span<std::uint8_t> dst, std::uint8_t coeff) {
  if (coeff == 1) return;
  std::array<std::uint8_t, 256> table;
  for (int v = 0; v < 256; ++v) {
    table[v] = Gf256::Mul(static_cast<std::uint8_t>(v), coeff);
  }
  for (auto& b : dst) b = table[b];
}

}  // namespace nlss::raid
