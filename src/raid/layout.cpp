#include "raid/layout.h"

namespace nlss::raid {

const char* RaidLevelName(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0: return "RAID-0";
    case RaidLevel::kRaid1: return "RAID-1";
    case RaidLevel::kRaid5: return "RAID-5";
    case RaidLevel::kRaid6: return "RAID-6";
  }
  return "?";
}

Layout::Layout(RaidLevel level, std::uint32_t width, std::uint32_t unit_blocks)
    : level_(level), width_(width), unit_blocks_(unit_blocks) {
  assert(unit_blocks_ > 0);
  switch (level_) {
    case RaidLevel::kRaid0: assert(width_ >= 1); break;
    case RaidLevel::kRaid1: assert(width_ >= 2); break;
    case RaidLevel::kRaid5: assert(width_ >= 3); break;
    case RaidLevel::kRaid6: assert(width_ >= 4); break;
  }
}

std::uint32_t Layout::DataUnitsPerStripe() const {
  switch (level_) {
    case RaidLevel::kRaid0: return width_;
    case RaidLevel::kRaid1: return 1;
    case RaidLevel::kRaid5: return width_ - 1;
    case RaidLevel::kRaid6: return width_ - 2;
  }
  return 0;
}

std::uint64_t Layout::DataCapacityBlocks(
    std::uint64_t disk_capacity_blocks) const {
  const std::uint64_t stripes = disk_capacity_blocks / unit_blocks_;
  return stripes * DataBlocksPerStripe();
}

std::uint32_t Layout::PDisk(std::uint64_t stripe) const {
  assert(level_ == RaidLevel::kRaid5 || level_ == RaidLevel::kRaid6);
  if (level_ == RaidLevel::kRaid5) {
    // Left-symmetric: parity rotates from the last disk backwards.
    return width_ - 1 - static_cast<std::uint32_t>(stripe % width_);
  }
  // RAID-6: P sits immediately "before" Q in the rotation.
  return (QDisk(stripe) + width_ - 1) % width_;
}

std::uint32_t Layout::QDisk(std::uint64_t stripe) const {
  assert(level_ == RaidLevel::kRaid6);
  return width_ - 1 - static_cast<std::uint32_t>(stripe % width_);
}

std::uint32_t Layout::DiskForData(std::uint64_t stripe,
                                  std::uint32_t u) const {
  assert(u < DataUnitsPerStripe());
  switch (level_) {
    case RaidLevel::kRaid0:
      return u;
    case RaidLevel::kRaid1:
      return 0;  // canonical copy; group reads any live mirror
    case RaidLevel::kRaid5:
      return (PDisk(stripe) + 1 + u) % width_;
    case RaidLevel::kRaid6:
      return (QDisk(stripe) + 1 + u) % width_;
  }
  return 0;
}

UnitRole Layout::RoleOf(std::uint64_t stripe, std::uint32_t disk) const {
  assert(disk < width_);
  switch (level_) {
    case RaidLevel::kRaid0:
      return UnitRole{UnitRole::kData, disk};
    case RaidLevel::kRaid1:
      // Every mirror holds data unit 0.
      return UnitRole{UnitRole::kData, 0};
    case RaidLevel::kRaid5: {
      const std::uint32_t p = PDisk(stripe);
      if (disk == p) return UnitRole{UnitRole::kParityP, 0};
      return UnitRole{UnitRole::kData, (disk + width_ - p - 1) % width_};
    }
    case RaidLevel::kRaid6: {
      const std::uint32_t q = QDisk(stripe);
      const std::uint32_t p = PDisk(stripe);
      if (disk == q) return UnitRole{UnitRole::kParityQ, 0};
      if (disk == p) return UnitRole{UnitRole::kParityP, 0};
      return UnitRole{UnitRole::kData, (disk + width_ - q - 1) % width_};
    }
  }
  return {};
}

Layout::Address Layout::Split(std::uint64_t data_block) const {
  const std::uint32_t dbs = DataBlocksPerStripe();
  Address a;
  a.stripe = data_block / dbs;
  const std::uint32_t r = static_cast<std::uint32_t>(data_block % dbs);
  a.data_unit = r / unit_blocks_;
  a.offset_blocks = r % unit_blocks_;
  return a;
}

}  // namespace nlss::raid
