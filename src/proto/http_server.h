// HTTP export running directly on the controller blades (paper §8: "an
// HTTP engine could run entirely on the controller blade").  GET serves
// file content straight from the storage system — optionally striped over
// several blades for large responses — with Range support for partial
// content.  No user code executes on the controllers: only this fixed
// engine.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fs/filesystem.h"
#include "obs/hub.h"

namespace nlss::proto {

struct HttpRequest {
  std::string method;                 // "GET" / "HEAD"
  std::string path;
  std::optional<std::uint64_t> range_begin;
  std::optional<std::uint64_t> range_end;  // inclusive, per RFC
};

struct HttpResponse {
  int status = 500;
  std::string reason;
  util::Bytes body;
  std::uint64_t content_length = 0;
  std::string headers;  // rendered header block
};

/// Parse the request line + headers of a textual HTTP/1.0 request.
/// Returns nullopt on malformed input.
std::optional<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Render a response head ("HTTP/1.0 200 OK\r\n...").
std::string RenderHttpHead(const HttpResponse& r);

class HttpServer {
 public:
  explicit HttpServer(fs::FileSystem& fs) : fs_(fs) {}

  using Callback = std::function<void(HttpResponse)>;

  /// Serve a parsed request.
  void Handle(const HttpRequest& request, Callback cb);

  /// Serve a raw request string (parse + handle).
  void HandleRaw(const std::string& raw, Callback cb);

  /// Trace requests as kProto root traces ("proto.http.get"); the context
  /// propagates through the filesystem into the controller/cache/disk
  /// stack, so /traces shows the full blade-side path of an HTTP GET.
  /// Pass nullptr to detach.
  void AttachObs(obs::Hub* hub) { hub_ = hub; }

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t bytes_served() const { return bytes_; }

 private:
  void Respond(Callback& cb, HttpResponse r, obs::TraceContext ctx = {});

  fs::FileSystem& fs_;
  obs::Hub* hub_ = nullptr;
  std::uint64_t served_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace nlss::proto
