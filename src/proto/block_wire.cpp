#include "proto/block_wire.h"

#include "util/crc32c.h"

namespace nlss::proto {
namespace {

constexpr std::uint32_t kMagic = 0x4E4C5353;  // "NLSS"

}  // namespace

util::Bytes EncodePdu(const BlockPdu& pdu) {
  util::ByteWriter w;
  w.U32(kMagic);
  w.U8(static_cast<std::uint8_t>(pdu.op));
  w.U8(pdu.status);
  w.U16(0);  // reserved
  w.U64(pdu.session);
  w.U32(pdu.lun);
  w.U64(pdu.lba);
  w.U32(pdu.blocks);
  w.U32(pdu.task_tag);
  w.U32(static_cast<std::uint32_t>(pdu.data.size()));
  // Header digest over everything so far.
  const std::uint32_t hdr_crc = util::Crc32c(w.data());
  w.U32(hdr_crc);
  if (!pdu.data.empty()) {
    w.Raw(pdu.data);
    w.U32(util::Crc32c(pdu.data));
  }
  return w.Take();
}

std::optional<BlockPdu> DecodePdu(std::span<const std::uint8_t> wire) {
  try {
    util::ByteReader r(wire);
    BlockPdu pdu;
    if (r.U32() != kMagic) return std::nullopt;
    pdu.op = static_cast<WireOp>(r.U8());
    pdu.status = r.U8();
    (void)r.U16();
    pdu.session = r.U64();
    pdu.lun = r.U32();
    pdu.lba = r.U64();
    pdu.blocks = r.U32();
    pdu.task_tag = r.U32();
    const std::uint32_t data_len = r.U32();
    const std::uint32_t hdr_crc = r.U32();
    const std::size_t header_bytes = wire.size() - r.remaining() - 4;
    if (util::Crc32c(wire.subspan(0, header_bytes)) != hdr_crc) {
      return std::nullopt;
    }
    if (data_len > 0) {
      pdu.data = r.Raw(data_len);
      const std::uint32_t data_crc = r.U32();
      if (util::Crc32c(pdu.data) != data_crc) return std::nullopt;
    }
    if (!r.Done()) return std::nullopt;  // trailing garbage
    return pdu;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace nlss::proto
