// File access protocol export (paper §4: "accessed from a host using ...
// NFS, CIFS, or DAFS").  An NFS-flavoured server over the blade-resident
// parallel file system: mounts are authenticated, writes require the
// "writer" role, and every operation is auditable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "fs/filesystem.h"
#include "security/audit.h"
#include "security/auth.h"

namespace nlss::proto {

class FileServer {
 public:
  using MountId = std::uint64_t;

  FileServer(fs::FileSystem& fs, security::AuthService& auth,
             security::AuditLog& audit);

  /// Root request traces start here when a hub is attached: file reads and
  /// writes become "proto.file.*" traces (subject to sampling).
  void AttachObs(obs::Hub* hub);

  /// Authenticate and mount a subtree.  Requires the "reader" role.
  std::optional<MountId> Mount(const std::string& user,
                               const std::string& password,
                               const std::string& export_root = "/");
  void Unmount(MountId mount);

  // Namespace (relative to the mount's export root).
  fs::Status Create(MountId mount, const std::string& path,
                    const fs::FilePolicy& policy = {});
  fs::Status Mkdir(MountId mount, const std::string& path);
  fs::Status Remove(MountId mount, const std::string& path);
  std::vector<std::string> List(MountId mount, const std::string& path) const;
  const fs::Inode* GetAttr(MountId mount, const std::string& path) const;
  fs::Status SetPolicy(MountId mount, const std::string& path,
                       const fs::FilePolicy& policy);

  // Data.
  void Read(MountId mount, const std::string& path, std::uint64_t offset,
            std::uint64_t length, fs::FileSystem::ReadCallback cb);
  void Write(MountId mount, const std::string& path, std::uint64_t offset,
             std::span<const std::uint8_t> data,
             fs::FileSystem::WriteCallback cb);

 private:
  struct MountState {
    std::string user;
    std::string token;
    std::string root;  // export root, normalized without trailing slash
  };

  const MountState* Validate(MountId id) const;
  std::string Abs(const MountState& m, const std::string& rel) const;
  bool CanWrite(const MountState& m) const;

  fs::FileSystem& fs_;
  security::AuthService& auth_;
  security::AuditLog& audit_;
  obs::Hub* hub_ = nullptr;
  obs::Counter* reads_total_ = nullptr;
  obs::Counter* writes_total_ = nullptr;
  std::map<MountId, MountState> mounts_;
  MountId next_mount_ = 1;
};

}  // namespace nlss::proto
