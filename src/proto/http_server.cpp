#include "proto/http_server.h"

#include <charconv>
#include <sstream>

namespace nlss::proto {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

std::optional<HttpRequest> ParseHttpRequest(const std::string& raw) {
  std::istringstream in(raw);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  HttpRequest req;
  std::istringstream req_line(line);
  std::string version;
  if (!(req_line >> req.method >> req.path >> version)) return std::nullopt;
  if (req.method != "GET" && req.method != "HEAD") return std::nullopt;
  if (version.rfind("HTTP/", 0) != 0) return std::nullopt;
  if (req.path.empty() || req.path.front() != '/') return std::nullopt;

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = ToLower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(value.begin());
    if (key == "range" && value.rfind("bytes=", 0) == 0) {
      const std::string spec = value.substr(6);
      const std::size_t dash = spec.find('-');
      if (dash == std::string::npos) return std::nullopt;
      std::uint64_t begin = 0;
      const auto b = spec.substr(0, dash);
      if (!b.empty()) {
        std::from_chars(b.data(), b.data() + b.size(), begin);
        req.range_begin = begin;
      }
      const auto e = spec.substr(dash + 1);
      if (!e.empty()) {
        std::uint64_t end = 0;
        std::from_chars(e.data(), e.data() + e.size(), end);
        req.range_end = end;
      }
    }
  }
  return req;
}

std::string RenderHttpHead(const HttpResponse& r) {
  std::ostringstream out;
  out << "HTTP/1.0 " << r.status << ' ' << r.reason << "\r\n"
      << "Server: nlss-blade\r\n"
      << "Content-Length: " << r.content_length << "\r\n"
      << r.headers << "\r\n";
  return out.str();
}

void HttpServer::Respond(Callback& cb, HttpResponse r, obs::TraceContext ctx) {
  ++served_;
  bytes_ += r.body.size();
  if (ctx.sampled()) {
    ctx.tracer->Annotate(ctx, "status=" + std::to_string(r.status));
    ctx.tracer->EndTrace(ctx, r.status < 400);
  }
  cb(std::move(r));
}

void HttpServer::Handle(const HttpRequest& request, Callback cb) {
  obs::TraceContext ctx;
  if (hub_ != nullptr) {
    ctx = hub_->tracer().StartTrace(
        obs::Layer::kProto,
        request.method == "HEAD" ? "proto.http.head" : "proto.http.get");
  }
  const fs::Inode* inode = fs_.Stat(request.path);
  if (inode == nullptr) {
    HttpResponse r;
    r.status = 404;
    r.reason = "Not Found";
    Respond(cb, std::move(r), ctx);
    return;
  }
  if (inode->type != fs::FileType::kFile) {
    HttpResponse r;
    r.status = 403;
    r.reason = "Forbidden";
    Respond(cb, std::move(r), ctx);
    return;
  }

  std::uint64_t begin = 0;
  std::uint64_t end = inode->size == 0 ? 0 : inode->size - 1;
  const bool ranged = request.range_begin.has_value() ||
                      request.range_end.has_value();
  if (request.range_begin.has_value()) begin = *request.range_begin;
  if (request.range_end.has_value()) end = std::min(end, *request.range_end);
  if (ranged && (begin > end || begin >= inode->size)) {
    HttpResponse r;
    r.status = 416;
    r.reason = "Range Not Satisfiable";
    Respond(cb, std::move(r), ctx);
    return;
  }
  const std::uint64_t length = inode->size == 0 ? 0 : end - begin + 1;

  HttpResponse head;
  head.status = ranged ? 206 : 200;
  head.reason = ranged ? "Partial Content" : "OK";
  head.content_length = length;
  if (ranged) {
    head.headers = "Content-Range: bytes " + std::to_string(begin) + "-" +
                   std::to_string(end) + "/" + std::to_string(inode->size) +
                   "\r\n";
  }

  if (request.method == "HEAD" || length == 0) {
    Respond(cb, std::move(head), ctx);
    return;
  }

  auto shared_cb = std::make_shared<Callback>(std::move(cb));
  fs_.Read(
      request.path, begin, length,
      [this, head = std::move(head), shared_cb, ctx](
          fs::Status st, util::Bytes data) mutable {
        if (st != fs::Status::kOk) {
          HttpResponse err;
          err.status = 500;
          err.reason = "Internal Server Error";
          Respond(*shared_cb, std::move(err), ctx);
          return;
        }
        head.body = std::move(data);
        Respond(*shared_cb, std::move(head), ctx);
      },
      ctx);
}

void HttpServer::HandleRaw(const std::string& raw, Callback cb) {
  const auto request = ParseHttpRequest(raw);
  if (!request.has_value()) {
    HttpResponse r;
    r.status = 400;
    r.reason = "Bad Request";
    Respond(cb, std::move(r));
    return;
  }
  Handle(*request, std::move(cb));
}

}  // namespace nlss::proto
