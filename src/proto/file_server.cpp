#include "proto/file_server.h"

namespace nlss::proto {

FileServer::FileServer(fs::FileSystem& fs, security::AuthService& auth,
                       security::AuditLog& audit)
    : fs_(fs), auth_(auth), audit_(audit) {}

std::optional<FileServer::MountId> FileServer::Mount(
    const std::string& user, const std::string& password,
    const std::string& export_root) {
  const auto token = auth_.Login(user, password);
  if (!token.has_value() || !auth_.HasRole(user, "reader")) {
    audit_.Record(user, "mount-denied", "root=" + export_root);
    return std::nullopt;
  }
  std::string root = export_root;
  while (root.size() > 1 && root.back() == '/') root.pop_back();
  if (root == "/") root.clear();
  const MountId id = next_mount_++;
  mounts_[id] = MountState{user, *token, root};
  audit_.Record(user, "mount", "root=" + export_root);
  return id;
}

void FileServer::Unmount(MountId mount) { mounts_.erase(mount); }

const FileServer::MountState* FileServer::Validate(MountId id) const {
  auto it = mounts_.find(id);
  if (it == mounts_.end()) return nullptr;
  if (!auth_.Verify(it->second.token).has_value()) return nullptr;
  return &it->second;
}

std::string FileServer::Abs(const MountState& m, const std::string& rel) const {
  if (rel.empty() || rel == "/") return m.root.empty() ? "/" : m.root;
  return m.root + (rel.front() == '/' ? rel : "/" + rel);
}

bool FileServer::CanWrite(const MountState& m) const {
  return auth_.HasRole(m.user, "writer");
}

fs::Status FileServer::Create(MountId mount, const std::string& path,
                              const fs::FilePolicy& policy) {
  const MountState* m = Validate(mount);
  if (m == nullptr) return fs::Status::kInvalidArgument;
  if (!CanWrite(*m)) return fs::Status::kInvalidArgument;
  return fs_.Create(Abs(*m, path), policy);
}

fs::Status FileServer::Mkdir(MountId mount, const std::string& path) {
  const MountState* m = Validate(mount);
  if (m == nullptr || !CanWrite(*m)) return fs::Status::kInvalidArgument;
  return fs_.Mkdir(Abs(*m, path));
}

fs::Status FileServer::Remove(MountId mount, const std::string& path) {
  const MountState* m = Validate(mount);
  if (m == nullptr || !CanWrite(*m)) return fs::Status::kInvalidArgument;
  audit_.Record(m->user, "remove", Abs(*m, path));
  return fs_.Unlink(Abs(*m, path));
}

std::vector<std::string> FileServer::List(MountId mount,
                                          const std::string& path) const {
  const MountState* m = Validate(mount);
  if (m == nullptr) return {};
  return fs_.List(Abs(*m, path));
}

const fs::Inode* FileServer::GetAttr(MountId mount,
                                     const std::string& path) const {
  const MountState* m = Validate(mount);
  if (m == nullptr) return nullptr;
  return fs_.Stat(Abs(*m, path));
}

fs::Status FileServer::SetPolicy(MountId mount, const std::string& path,
                                 const fs::FilePolicy& policy) {
  const MountState* m = Validate(mount);
  if (m == nullptr || !CanWrite(*m)) return fs::Status::kInvalidArgument;
  audit_.Record(m->user, "set-policy", Abs(*m, path));
  return fs_.SetPolicy(Abs(*m, path), policy);
}

void FileServer::AttachObs(obs::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) {
    reads_total_ = writes_total_ = nullptr;
    return;
  }
  reads_total_ = &hub_->metrics().counter("nlss_proto_file_reads_total",
                                          "File-protocol read operations");
  writes_total_ = &hub_->metrics().counter("nlss_proto_file_writes_total",
                                           "File-protocol write operations");
}

void FileServer::Read(MountId mount, const std::string& path,
                      std::uint64_t offset, std::uint64_t length,
                      fs::FileSystem::ReadCallback cb) {
  const MountState* m = Validate(mount);
  if (m == nullptr) {
    fs_.system().engine().Schedule(0, [cb = std::move(cb)] {
      cb(fs::Status::kInvalidArgument, {});
    });
    return;
  }
  if (reads_total_ != nullptr) reads_total_->Increment();
  obs::TraceContext ctx;
  if (hub_ != nullptr) {
    ctx = hub_->tracer().StartTrace(obs::Layer::kProto, "proto.file.read");
  }
  fs_.Read(Abs(*m, path), offset, length,
           [ctx, cb = std::move(cb)](fs::Status st, util::Bytes data) {
             if (ctx.sampled()) {
               ctx.tracer->EndTrace(ctx, st == fs::Status::kOk);
             }
             cb(st, std::move(data));
           },
           ctx);
}

void FileServer::Write(MountId mount, const std::string& path,
                       std::uint64_t offset,
                       std::span<const std::uint8_t> data,
                       fs::FileSystem::WriteCallback cb) {
  const MountState* m = Validate(mount);
  if (m == nullptr || !CanWrite(*m)) {
    fs_.system().engine().Schedule(0, [cb = std::move(cb)] {
      cb(fs::Status::kInvalidArgument);
    });
    return;
  }
  if (writes_total_ != nullptr) writes_total_->Increment();
  obs::TraceContext ctx;
  if (hub_ != nullptr) {
    ctx = hub_->tracer().StartTrace(obs::Layer::kProto, "proto.file.write");
  }
  fs_.Write(Abs(*m, path), offset, data,
            [ctx, cb = std::move(cb)](fs::Status st) {
              if (ctx.sampled()) {
                ctx.tracer->EndTrace(ctx, st == fs::Status::kOk);
              }
              cb(st);
            },
            ctx);
}

}  // namespace nlss::proto
