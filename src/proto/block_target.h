// Block protocol export (paper §1/§8: SAN / iSCSI-style access "managed
// from a common pool").  Hosts log in with credentials, see only the LUNs
// masked to them, and issue block reads/writes that ride the host fabric
// into the cache cluster.  Data digests use CRC32C, as iSCSI does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "controller/system.h"
#include "qos/tenant.h"
#include "security/audit.h"
#include "security/auth.h"
#include "security/control.h"
#include "security/lun_mask.h"
#include "util/crc32c.h"

namespace nlss::proto {

enum class BlockStatus : std::uint8_t {
  kOk,
  kAuthFailed,
  kAccessDenied,
  kInvalidSession,
  kInvalidArgument,
  kIoError,
};

const char* BlockStatusName(BlockStatus s);

class BlockTarget {
 public:
  using SessionId = std::uint64_t;

  BlockTarget(controller::StorageSystem& system, security::AuthService& auth,
              security::LunMasking& masking, security::CommandPolicy& policy,
              security::AuditLog& audit);

  /// Resolve tenant identity at login (QoS): sessions opened after this
  /// carry the user's tenant, so their block I/O is scheduled under it.
  void AttachQos(qos::TenantRegistry* registry) { qos_registry_ = registry; }

  /// Root request traces start here when a hub is attached: every block
  /// read/write becomes a "proto.block.*" trace (subject to sampling).
  void AttachObs(obs::Hub* hub);

  /// Authenticated login from a host node; returns a session handle.
  std::optional<SessionId> Login(net::NodeId host,
                                 const std::string& initiator,
                                 const std::string& user,
                                 const std::string& password);
  void Logout(SessionId session);

  /// REPORT LUNS: only volumes masked to this initiator.
  std::vector<std::uint32_t> ReportLuns(SessionId session) const;

  using ReadCallback =
      std::function<void(BlockStatus, util::Bytes data, std::uint32_t crc)>;
  using WriteCallback = std::function<void(BlockStatus)>;

  void Read(SessionId session, std::uint32_t volume, std::uint64_t lba,
            std::uint32_t blocks, ReadCallback cb);
  void Write(SessionId session, std::uint32_t volume, std::uint64_t lba,
             std::span<const std::uint8_t> data, WriteCallback cb);

  /// In-band management command attempt (port = the session's initiator
  /// port name); demonstrates the §5.2 lockdown.
  BlockStatus TrySnapshot(SessionId session, std::uint32_t volume);

  std::size_t active_sessions() const { return sessions_.size(); }

  /// Tenant of an open session (kAutoTenant if unknown session or no
  /// registry attached) — exposed for tests and management tooling.
  qos::TenantId SessionTenant(SessionId session) const;

 private:
  struct Session {
    net::NodeId host;
    std::string initiator;
    std::string user;
    std::string token;
    qos::TenantId tenant = qos::kAutoTenant;
  };

  const Session* Validate(SessionId id) const;

  controller::StorageSystem& system_;
  security::AuthService& auth_;
  security::LunMasking& masking_;
  security::CommandPolicy& policy_;
  security::AuditLog& audit_;
  qos::TenantRegistry* qos_registry_ = nullptr;
  obs::Hub* hub_ = nullptr;
  obs::Counter* reads_total_ = nullptr;
  obs::Counter* writes_total_ = nullptr;
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
};

}  // namespace nlss::proto
