// Wire encoding for the block protocol (iSCSI-flavoured, paper §1/§8):
// fixed header with opcode, LUN, LBA, lengths and a CRC32C header digest,
// followed by an optional data segment with its own CRC32C data digest —
// the digests RFC 3720 specifies.  Used to carry block commands over IP
// host links and tested against corruption.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace nlss::proto {

enum class WireOp : std::uint8_t {
  kLoginRequest = 0x03,
  kLoginResponse = 0x23,
  kScsiRead = 0x01,
  kScsiWrite = 0x05,
  kScsiResponse = 0x21,
  kReportLuns = 0x0A,
  kLogoutRequest = 0x06,
};

struct BlockPdu {
  WireOp op = WireOp::kScsiRead;
  std::uint64_t session = 0;
  std::uint32_t lun = 0;
  std::uint64_t lba = 0;
  std::uint32_t blocks = 0;     // transfer length for reads
  std::uint32_t task_tag = 0;   // request/response matching
  std::uint8_t status = 0;      // responses
  util::Bytes data;             // write payload / read result / login fields

  friend bool operator==(const BlockPdu&, const BlockPdu&) = default;
};

/// Serialize with header + data digests.
util::Bytes EncodePdu(const BlockPdu& pdu);

/// Parse and verify digests; nullopt on truncation or digest mismatch.
std::optional<BlockPdu> DecodePdu(std::span<const std::uint8_t> wire);

/// Size of the fixed header (including the header digest).
inline constexpr std::size_t kPduHeaderBytes = 48;

}  // namespace nlss::proto
