#include "proto/block_target.h"

namespace nlss::proto {

const char* BlockStatusName(BlockStatus s) {
  switch (s) {
    case BlockStatus::kOk: return "ok";
    case BlockStatus::kAuthFailed: return "auth failed";
    case BlockStatus::kAccessDenied: return "access denied";
    case BlockStatus::kInvalidSession: return "invalid session";
    case BlockStatus::kInvalidArgument: return "invalid argument";
    case BlockStatus::kIoError: return "I/O error";
  }
  return "?";
}

BlockTarget::BlockTarget(controller::StorageSystem& system,
                         security::AuthService& auth,
                         security::LunMasking& masking,
                         security::CommandPolicy& policy,
                         security::AuditLog& audit)
    : system_(system),
      auth_(auth),
      masking_(masking),
      policy_(policy),
      audit_(audit) {}

void BlockTarget::AttachObs(obs::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) {
    reads_total_ = writes_total_ = nullptr;
    return;
  }
  reads_total_ = &hub_->metrics().counter("nlss_proto_block_reads_total",
                                          "Block-protocol read commands");
  writes_total_ = &hub_->metrics().counter("nlss_proto_block_writes_total",
                                           "Block-protocol write commands");
}

std::optional<BlockTarget::SessionId> BlockTarget::Login(
    net::NodeId host, const std::string& initiator, const std::string& user,
    const std::string& password) {
  const auto token = auth_.Login(user, password);
  if (!token.has_value()) {
    audit_.Record(user, "block-login-failed", "initiator=" + initiator);
    return std::nullopt;
  }
  const SessionId id = next_session_++;
  // QoS tenant identity is fixed at login time (paper-style: a lab's hosts
  // authenticate as that lab's users).
  const qos::TenantId tenant = qos_registry_ != nullptr
                                   ? qos_registry_->ResolveUser(user)
                                   : qos::kAutoTenant;
  sessions_[id] = Session{host, initiator, user, *token, tenant};
  audit_.Record(user, "block-login", "initiator=" + initiator);
  return id;
}

qos::TenantId BlockTarget::SessionTenant(SessionId session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? qos::kAutoTenant : it->second.tenant;
}

void BlockTarget::Logout(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  audit_.Record(it->second.user, "block-logout",
                "initiator=" + it->second.initiator);
  sessions_.erase(it);
}

const BlockTarget::Session* BlockTarget::Validate(SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  // Tokens expire; a stale session is invalid even if still in the table.
  if (!auth_.Verify(it->second.token).has_value()) return nullptr;
  return &it->second;
}

std::vector<std::uint32_t> BlockTarget::ReportLuns(SessionId session) const {
  const Session* s = Validate(session);
  if (s == nullptr) return {};
  return masking_.VisibleTo(s->initiator);
}

void BlockTarget::Read(SessionId session, std::uint32_t volume,
                       std::uint64_t lba, std::uint32_t blocks,
                       ReadCallback cb) {
  const Session* s = Validate(session);
  if (s == nullptr) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(BlockStatus::kInvalidSession, {}, 0);
    });
    return;
  }
  if (!masking_.Visible(s->initiator, volume)) {
    audit_.Record(s->user, "block-read-denied",
                  "vol=" + std::to_string(volume));
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(BlockStatus::kAccessDenied, {}, 0);
    });
    return;
  }
  const std::uint32_t bs = system_.pool().block_size();
  if (reads_total_ != nullptr) reads_total_->Increment();
  obs::TraceContext ctx;
  if (hub_ != nullptr) {
    ctx = hub_->tracer().StartTrace(obs::Layer::kProto, "proto.block.read");
  }
  system_.Read(
      s->host, volume, lba * bs, blocks * bs,
      [ctx, cb = std::move(cb)](bool ok, util::Bytes data) {
        if (ctx.sampled()) ctx.tracer->EndTrace(ctx, ok);
        if (!ok) {
          cb(BlockStatus::kIoError, {}, 0);
          return;
        }
        const std::uint32_t crc = util::Crc32c(data);
        cb(BlockStatus::kOk, std::move(data), crc);
      },
      /*priority=*/0, s->tenant, ctx);
}

void BlockTarget::Write(SessionId session, std::uint32_t volume,
                        std::uint64_t lba,
                        std::span<const std::uint8_t> data, WriteCallback cb) {
  const Session* s = Validate(session);
  if (s == nullptr) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(BlockStatus::kInvalidSession);
    });
    return;
  }
  if (!masking_.Visible(s->initiator, volume)) {
    audit_.Record(s->user, "block-write-denied",
                  "vol=" + std::to_string(volume));
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(BlockStatus::kAccessDenied);
    });
    return;
  }
  if (data.empty() || data.size() % system_.pool().block_size() != 0) {
    system_.engine().Schedule(0, [cb = std::move(cb)] {
      cb(BlockStatus::kInvalidArgument);
    });
    return;
  }
  const std::uint32_t bs = system_.pool().block_size();
  if (writes_total_ != nullptr) writes_total_->Increment();
  obs::TraceContext ctx;
  if (hub_ != nullptr) {
    ctx = hub_->tracer().StartTrace(obs::Layer::kProto, "proto.block.write");
  }
  system_.Write(
      s->host, volume, lba * bs, data,
      [ctx, cb = std::move(cb)](bool ok) {
        if (ctx.sampled()) ctx.tracer->EndTrace(ctx, ok);
        cb(ok ? BlockStatus::kOk : BlockStatus::kIoError);
      },
      s->tenant, ctx);
}

BlockStatus BlockTarget::TrySnapshot(SessionId session, std::uint32_t volume) {
  const Session* s = Validate(session);
  if (s == nullptr) return BlockStatus::kInvalidSession;
  if (!masking_.Visible(s->initiator, volume)) {
    return BlockStatus::kAccessDenied;
  }
  if (!policy_.AllowedInBand(s->initiator, security::Command::kSnapshot)) {
    audit_.Record(s->user, "snapshot-denied",
                  "in-band disabled on " + s->initiator);
    return BlockStatus::kAccessDenied;
  }
  system_.volume(volume).CreateSnapshot();
  audit_.Record(s->user, "snapshot", "vol=" + std::to_string(volume));
  return BlockStatus::kOk;
}

}  // namespace nlss::proto
