#include "geo/volume_replication.h"

#include <memory>

#include "util/units.h"

namespace nlss::geo {

ReplicatedBacking::ReplicatedBacking(sim::Engine& engine, net::Fabric& fabric,
                                     cache::BackingStore& local,
                                     net::NodeId local_gateway,
                                     cache::BackingStore& remote,
                                     net::NodeId remote_gateway, Config config)
    : engine_(engine),
      fabric_(fabric),
      local_(local),
      local_gw_(local_gateway),
      remote_(remote),
      remote_gw_(remote_gateway),
      config_(config) {}

void ReplicatedBacking::ReadBlocks(std::uint64_t block, std::uint32_t count,
                                   ReadCallback cb, obs::TraceContext ctx) {
  local_.ReadBlocks(block, count, std::move(cb), ctx);
}

void ReplicatedBacking::WriteBlocks(std::uint64_t block,
                                    std::span<const std::uint8_t> data,
                                    WriteCallback cb, obs::TraceContext ctx) {
  if (config_.synchronous) {
    // Local and remote writes in parallel; ack after both (one WAN round
    // trip dominates).  The remote leg gets a geo-layer span so the WAN
    // round trip is attributed to this layer in trace breakdowns.
    auto shared_cb = std::make_shared<WriteCallback>(std::move(cb));
    auto remaining = std::make_shared<int>(2);
    auto all_ok = std::make_shared<bool>(true);
    auto arrive = [shared_cb, remaining, all_ok](bool ok) {
      *all_ok = *all_ok && ok;
      if (--*remaining == 0) (*shared_cb)(*all_ok);
    };
    local_.WriteBlocks(block, data, arrive, ctx);
    const obs::TraceContext geo_span =
        obs::StartSpan(ctx, obs::Layer::kGeo, "geo.remote_write");
    auto remote_arrive = [geo_span, arrive](bool ok) {
      obs::EndSpan(geo_span);
      arrive(ok);
    };
    auto payload = std::make_shared<util::Bytes>(data.begin(), data.end());
    fabric_.Send(
        local_gw_, remote_gw_, payload->size(),
        [this, block, payload, remote_arrive, geo_span] {
          remote_.WriteBlocks(
              block, *payload,
              [this, remote_arrive, geo_span](bool ok) {
                ++replicated_writes_;
                // Remote ack crosses back.
                fabric_.Send(
                    remote_gw_, local_gw_, config_.ctrl_msg_bytes,
                    [remote_arrive, ok] { remote_arrive(ok); },
                    [remote_arrive] { remote_arrive(false); }, geo_span);
              },
              geo_span);
        },
        [remote_arrive] { remote_arrive(false); }, geo_span);
    return;
  }
  // Asynchronous: ack after the local write; queue the remote copy (the
  // queue outlives the request, so the shipment gets its own root span in
  // Pump rather than riding on this request's trace).
  queue_.push_back(Update{block, util::Bytes(data.begin(), data.end())});
  pending_bytes_ += data.size();
  local_.WriteBlocks(block, data, std::move(cb), ctx);
  if (!pumping_) {
    pumping_ = true;
    Pump();
  }
}

void ReplicatedBacking::Pump() {
  if (queue_.empty() || primary_failed_) {
    pumping_ = false;
    CheckDrained();
    return;
  }
  // Head stays queued until applied remotely (in-flight counts as exposed).
  auto update = std::make_shared<Update>(queue_.front());
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    ctx = tracer_->StartTrace(obs::Layer::kGeo, "geo.replicate");
    if (ctx.sampled()) {
      tracer_->Annotate(ctx, "block=" + std::to_string(update->block) +
                                 " bytes=" +
                                 std::to_string(update->data.size()));
    }
  }
  fabric_.Send(
      local_gw_, remote_gw_, update->data.size(),
      [this, update, ctx] {
        remote_.WriteBlocks(
            update->block, update->data,
            [this, ctx](bool ok) {
              if (ctx.sampled()) ctx.tracer->EndTrace(ctx, ok);
              ++replicated_writes_;
              if (!queue_.empty()) {
                pending_bytes_ -= queue_.front().data.size();
                queue_.pop_front();
              }
              Pump();
            },
            ctx);
      },
      [this, ctx] {
        if (ctx.sampled()) ctx.tracer->EndTrace(ctx, false);
        // WAN down: back off and retry.
        engine_.Schedule(10 * util::kNsPerMs, [this] { Pump(); });
      },
      ctx);
}

void ReplicatedBacking::CheckDrained() {
  if (!queue_.empty() || pumping_) return;
  auto waiters = std::move(drain_waiters_);
  drain_waiters_.clear();
  for (auto& w : waiters) engine_.Schedule(0, std::move(w));
}

void ReplicatedBacking::Drain(std::function<void()> cb) {
  drain_waiters_.push_back(std::move(cb));
  CheckDrained();
}

std::uint64_t ReplicatedBacking::FailPrimary() {
  primary_failed_ = true;
  const std::uint64_t lost = pending_bytes_;
  queue_.clear();
  pending_bytes_ = 0;
  return lost;
}

}  // namespace nlss::geo
