#include "geo/geo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace nlss::geo {
namespace {

struct Join {
  Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;
  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

double DistanceKm(const Location& a, const Location& b) {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

Site::Site(sim::Engine& engine, net::Fabric& fabric, std::string name,
           controller::SystemConfig config, Location location)
    : name_(std::move(name)), location_(location) {
  config.name = name_;
  system_ = std::make_unique<controller::StorageSystem>(engine, fabric,
                                                        std::move(config));
  fs_ = std::make_unique<fs::FileSystem>(*system_);
  // The WAN gateway hangs off the site switch with a fat local link.
  gateway_ = fabric.AddNode(name_ + "-gw");
  fabric.Connect(gateway_, system_->switch_node(),
                 net::LinkProfile::Backplane());
}

GeoCluster::GeoCluster(sim::Engine& engine, net::Fabric& fabric)
    : GeoCluster(engine, fabric, Config()) {}

GeoCluster::GeoCluster(sim::Engine& engine, net::Fabric& fabric, Config config)
    : engine_(engine), fabric_(fabric), config_(config) {}

SiteId GeoCluster::AddSite(const std::string& name,
                           controller::SystemConfig config,
                           Location location) {
  sites_.push_back(std::make_unique<Site>(engine_, fabric_, name,
                                          std::move(config), location));
  return static_cast<SiteId>(sites_.size() - 1);
}

void GeoCluster::ConnectSites(SiteId a, SiteId b,
                              const net::LinkProfile& wan) {
  fabric_.Connect(sites_[a]->gateway(), sites_[b]->gateway(), wan);
}

void GeoCluster::Ship(SiteId from, SiteId to, std::uint64_t bytes,
                      std::function<void()> delivered,
                      std::function<void()> dropped) {
  fabric_.Send(sites_[from]->gateway(), sites_[to]->gateway(), bytes,
               std::move(delivered), std::move(dropped));
}

// --- Namespace ---------------------------------------------------------------

fs::Status GeoCluster::Mkdir(const std::string& path) {
  fs::Status last = fs::Status::kOk;
  for (auto& site : sites_) {
    if (!site->alive()) continue;
    const fs::Status st = site->filesystem().Mkdir(path);
    if (st != fs::Status::kOk && st != fs::Status::kExists) last = st;
  }
  return last;
}

void GeoCluster::ChooseReplicas(const std::string& path, GeoFile& f) {
  f.replicas.clear();
  f.replicas.insert(f.home);
  f.sync_target = kNoSite;
  if (!f.policy.geo_replicate || f.policy.geo_sites <= 1) return;

  // Rank other live sites by distance from home, honoring min distance.
  struct Candidate {
    SiteId site;
    double distance;
  };
  std::vector<Candidate> candidates;
  for (SiteId s = 0; s < sites_.size(); ++s) {
    if (s == f.home || !sites_[s]->alive()) continue;
    const double d = DistanceKm(sites_[f.home]->location(),
                                sites_[s]->location());
    if (d < static_cast<double>(f.policy.geo_min_distance_km)) continue;
    candidates.push_back({s, d});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.distance < b.distance;
            });
  for (const auto& c : candidates) {
    if (f.replicas.size() >= f.policy.geo_sites) break;
    f.replicas.insert(c.site);
    if (f.policy.geo_sync && f.sync_target == kNoSite) {
      f.sync_target = c.site;  // nearest replica is the synchronous one
    }
  }
  (void)path;
}

fs::Status GeoCluster::Create(const std::string& path, SiteId home,
                              const fs::FilePolicy& policy) {
  assert(home < sites_.size());
  if (files_.count(path) > 0) return fs::Status::kExists;
  if (!sites_[home]->alive()) return fs::Status::kInvalidArgument;
  // Create the file in every live site's local FS so replicated data and
  // migrated chunks have a landing place.
  for (auto& site : sites_) {
    if (!site->alive()) continue;
    const fs::Status st = site->filesystem().Create(path, policy);
    if (st != fs::Status::kOk && st != fs::Status::kExists) return st;
  }
  GeoFile f;
  f.policy = policy;
  f.home = home;
  ChooseReplicas(path, f);
  files_[path] = std::move(f);
  return fs::Status::kOk;
}

fs::Status GeoCluster::SetPolicy(const std::string& path,
                                 const fs::FilePolicy& policy) {
  auto it = files_.find(path);
  if (it == files_.end()) return fs::Status::kNotFound;
  it->second.policy = policy;
  ChooseReplicas(path, it->second);
  for (auto& site : sites_) {
    if (site->alive()) site->filesystem().SetPolicy(path, policy);
  }
  return fs::Status::kOk;
}

SiteId GeoCluster::HomeOf(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? kNoSite : it->second.home;
}

std::set<SiteId> GeoCluster::ReplicasOf(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? std::set<SiteId>{} : it->second.replicas;
}

// --- Writes ---------------------------------------------------------------------

void GeoCluster::ApplyRemoteWrite(SiteId target, const std::string& path,
                                  std::uint64_t offset,
                                  const util::Bytes& data,
                                  std::function<void(bool)> cb) {
  if (!sites_[target]->alive()) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false); });
    return;
  }
  sites_[target]->filesystem().Write(path, offset, data,
                                     [cb = std::move(cb)](fs::Status st) {
                                       cb(st == fs::Status::kOk);
                                     });
}

void GeoCluster::HomeWriteAndReplicate(const std::string& path,
                                       std::uint64_t offset, util::Bytes data,
                                       WriteCallback cb) {
  GeoFile& f = files_.at(path);
  const SiteId home = f.home;
  auto shared_data = std::make_shared<util::Bytes>(std::move(data));

  sites_[home]->filesystem().Write(
      path, offset, *shared_data,
      [this, path, offset, home, shared_data,
       cb = std::move(cb)](fs::Status st) mutable {
        if (st != fs::Status::kOk) {
          cb(st);
          return;
        }
        GeoFile& f = files_.at(path);
        f.size = std::max(f.size, offset + shared_data->size());

        // Invalidate stale migration caches at non-replica sites.
        const std::uint64_t c0 = offset / config_.migrate_chunk_bytes;
        const std::uint64_t c1 =
            (offset + shared_data->size() - 1) / config_.migrate_chunk_bytes;
        for (auto& [site, chunks] : f.cached_chunks) {
          if (f.replicas.count(site) > 0) continue;
          for (std::uint64_t c = c0; c <= c1; ++c) chunks.erase(c);
        }

        // Replicate per policy: the sync target holds the ack; the rest go
        // through the in-order async queues.
        std::vector<SiteId> sync_targets, async_targets;
        for (const SiteId r : f.replicas) {
          if (r == home || !sites_[r]->alive()) continue;
          if (f.policy.geo_sync && r == f.sync_target) {
            sync_targets.push_back(r);
          } else {
            async_targets.push_back(r);
          }
        }
        for (const SiteId t : async_targets) {
          EnqueueAsync(home, t, AsyncUpdate{path, offset, *shared_data});
        }
        if (sync_targets.empty()) {
          cb(fs::Status::kOk);
          return;
        }
        auto join = std::make_shared<Join>(
            static_cast<int>(sync_targets.size()),
            [cb = std::move(cb)](bool ok) {
              cb(ok ? fs::Status::kOk : fs::Status::kIoError);
            });
        for (const SiteId t : sync_targets) {
          Ship(home, t, shared_data->size(),
               [this, t, path, offset, shared_data, home, join] {
                 ApplyRemoteWrite(
                     t, path, offset, *shared_data, [this, t, home, join](bool ok) {
                       if (!ok) {
                         join->Arrive(false);
                         return;
                       }
                       // Ack back over the WAN.
                       Ship(t, home, config_.ctrl_msg_bytes,
                            [join] { join->Arrive(true); },
                            [join] { join->Arrive(false); });
                     });
               },
               [join] { join->Arrive(false); });
        }
      });
}

void GeoCluster::Write(SiteId via, const std::string& path,
                       std::uint64_t offset,
                       std::span<const std::uint8_t> data, WriteCallback cb) {
  auto it = files_.find(path);
  if (it == files_.end() || !it->second.available) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(fs::Status::kNotFound); });
    return;
  }
  GeoFile& f = it->second;
  util::Bytes copy(data.begin(), data.end());
  if (via == f.home) {
    HomeWriteAndReplicate(path, offset, std::move(copy), std::move(cb));
    return;
  }
  // Forward to the home site over the WAN; ack returns the same way.
  auto shared = std::make_shared<util::Bytes>(std::move(copy));
  auto shared_cb = std::make_shared<WriteCallback>(std::move(cb));
  const SiteId home = f.home;
  Ship(via, home, shared->size(),
       [this, via, home, path, offset, shared, shared_cb] {
         HomeWriteAndReplicate(
             path, offset, std::move(*shared),
             [this, via, home, shared_cb](fs::Status st) {
               Ship(home, via, config_.ctrl_msg_bytes,
                    [shared_cb, st] { (*shared_cb)(st); },
                    [shared_cb] { (*shared_cb)(fs::Status::kIoError); });
             });
       },
       [shared_cb] { (*shared_cb)(fs::Status::kIoError); });
}

// --- Async queues ------------------------------------------------------------------

void GeoCluster::EnqueueAsync(SiteId from, SiteId to, AsyncUpdate update) {
  AsyncQueue& q = async_[{from, to}];
  q.bytes += update.data.size();
  q.q.push_back(std::move(update));
  if (!q.draining) {
    q.draining = true;
    PumpQueue(from, to);
  }
}

void GeoCluster::PumpQueue(SiteId from, SiteId to) {
  AsyncQueue& q = async_[{from, to}];
  if (q.q.empty()) {
    q.draining = false;
    CheckDrained();
    return;
  }
  if (!sites_[from]->alive()) {
    // The source site died: its un-shipped updates are lost (counted by
    // FailSite); stop pumping.
    q.draining = false;
    CheckDrained();
    return;
  }
  // The head stays queued until it is applied at the target: un-shipped
  // AND in-flight updates both count as RPO exposure if the source dies.
  auto update = std::make_shared<AsyncUpdate>(q.q.front());
  // Each shipment attempt is a background root span (layer kGeo) — async
  // replication never rides on the originating write's trace.
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    ctx = tracer_->StartTrace(obs::Layer::kGeo, "geo.replicate");
    if (ctx.sampled()) {
      tracer_->Annotate(ctx, "path=" + update->path + " bytes=" +
                                 std::to_string(update->data.size()));
    }
  }
  Ship(from, to, update->data.size(),
       [this, from, to, update, ctx] {
         ApplyRemoteWrite(to, update->path, update->offset, update->data,
                          [this, from, to, update, ctx](bool) {
                            if (ctx.sampled()) ctx.tracer->EndTrace(ctx, true);
                            AsyncQueue& q2 = async_[{from, to}];
                            if (!q2.q.empty() &&
                                q2.q.front().path == update->path &&
                                q2.q.front().offset == update->offset) {
                              q2.bytes -= q2.q.front().data.size();
                              q2.q.pop_front();
                            }
                            PumpQueue(from, to);
                          });
       },
       [this, from, to, ctx] {
         if (ctx.sampled()) ctx.tracer->EndTrace(ctx, false);
         // Route down: back off and retry (stops if the source has died).
         engine_.Schedule(10 * util::kNsPerMs,
                          [this, from, to] { PumpQueue(from, to); });
       });
}

std::uint64_t GeoCluster::PendingAsyncBytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, q] : async_) total += q.bytes;
  return total;
}

std::uint64_t GeoCluster::PendingAsyncBytesFrom(SiteId src) const {
  std::uint64_t total = 0;
  for (const auto& [key, q] : async_) {
    if (key.first == src) total += q.bytes;
  }
  return total;
}

void GeoCluster::CheckDrained() {
  for (const auto& [key, q] : async_) {
    if (!q.q.empty() || q.draining) return;
  }
  auto waiters = std::move(drain_waiters_);
  drain_waiters_.clear();
  for (auto& w : waiters) engine_.Schedule(0, std::move(w));
}

void GeoCluster::DrainAsync(std::function<void()> cb) {
  drain_waiters_.push_back(std::move(cb));
  CheckDrained();
}

// --- Reads -------------------------------------------------------------------------

std::uint64_t GeoCluster::ChunkCount(const GeoFile& f) const {
  return (f.size + config_.migrate_chunk_bytes - 1) /
         config_.migrate_chunk_bytes;
}

void GeoCluster::FetchChunks(SiteId via, const std::string& path,
                             std::vector<std::uint64_t> chunks,
                             std::function<void(bool)> cb) {
  if (chunks.empty()) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(true); });
    return;
  }
  GeoFile& f = files_.at(path);
  const SiteId home = f.home;
  auto join = std::make_shared<Join>(static_cast<int>(chunks.size()),
                                     std::move(cb));
  for (const std::uint64_t c : chunks) {
    const std::uint64_t off =
        c * static_cast<std::uint64_t>(config_.migrate_chunk_bytes);
    const std::uint64_t len = std::min<std::uint64_t>(
        config_.migrate_chunk_bytes, f.size > off ? f.size - off : 0);
    if (len == 0) {
      files_.at(path).cached_chunks[via].insert(c);
      engine_.Schedule(0, [join] { join->Arrive(true); });
      continue;
    }
    // Control hop to home, then the home reads and ships the chunk back.
    Ship(via, home, config_.ctrl_msg_bytes,
         [this, via, home, path, off, len, c, join] {
           sites_[home]->filesystem().Read(
               path, off, len,
               [this, via, home, path, off, c, join](fs::Status st,
                                                     util::Bytes data) {
                 if (st != fs::Status::kOk) {
                   join->Arrive(false);
                   return;
                 }
                 auto payload = std::make_shared<util::Bytes>(std::move(data));
                 Ship(home, via, payload->size(),
                      [this, via, path, off, c, payload, join] {
                        // Land the chunk in the local FS copy.
                        sites_[via]->filesystem().Write(
                            path, off, *payload,
                            [this, via, path, c, join](fs::Status st2) {
                              if (st2 == fs::Status::kOk) {
                                files_.at(path).cached_chunks[via].insert(c);
                              }
                              join->Arrive(st2 == fs::Status::kOk);
                            });
                      },
                      [join] { join->Arrive(false); });
               });
         },
         [join] { join->Arrive(false); });
  }
}

void GeoCluster::MaybePrefetch(SiteId via, const std::string& path) {
  if (!config_.prefetch) return;
  GeoFile& f = files_.at(path);
  const auto& cached = f.cached_chunks[via];
  std::vector<std::uint64_t> missing;
  const std::uint64_t n = ChunkCount(f);
  for (std::uint64_t c = 0; c < n; ++c) {
    if (cached.count(c) == 0) missing.push_back(c);
  }
  if (missing.empty()) return;
  FetchChunks(via, path, std::move(missing), [](bool) {});
}

void GeoCluster::MaybePromote(SiteId via, const std::string& path) {
  if (!config_.auto_promote) return;
  GeoFile& f = files_.at(path);
  if (f.replicas.count(via) > 0) return;
  if (f.reads_by_site[via] < config_.hot_promote_reads) return;
  // Promote: fetch everything, then register as a full replica so future
  // writes keep this copy current.
  std::vector<std::uint64_t> missing;
  const auto& cached = f.cached_chunks[via];
  for (std::uint64_t c = 0; c < ChunkCount(f); ++c) {
    if (cached.count(c) == 0) missing.push_back(c);
  }
  FetchChunks(via, path, std::move(missing), [this, via, path](bool ok) {
    if (!ok) return;
    GeoFile& f = files_.at(path);
    f.replicas.insert(via);
  });
}

void GeoCluster::Read(SiteId via, const std::string& path,
                      std::uint64_t offset, std::uint64_t length,
                      ReadCallback cb) {
  auto it = files_.find(path);
  if (it == files_.end() || !it->second.available) {
    engine_.Schedule(0, [cb = std::move(cb)] {
      cb(fs::Status::kNotFound, {});
    });
    return;
  }
  GeoFile& f = it->second;
  if (!sites_[via]->alive()) {
    engine_.Schedule(0, [cb = std::move(cb)] {
      cb(fs::Status::kIoError, {});
    });
    return;
  }
  ++f.reads_by_site[via];

  // Local service when this site holds a full replica.
  if (f.replicas.count(via) > 0) {
    sites_[via]->filesystem().Read(path, offset, length, std::move(cb));
    return;
  }

  // Otherwise serve from the local migration cache, fetching missing
  // chunks from the home site first (first-touch WAN cost, §7.1).
  if (length == 0 || offset >= f.size) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(fs::Status::kOk, {}); });
    return;
  }
  length = std::min(length, f.size - offset);
  const std::uint64_t c0 = offset / config_.migrate_chunk_bytes;
  const std::uint64_t c1 =
      (offset + length - 1) / config_.migrate_chunk_bytes;
  std::vector<std::uint64_t> missing;
  const auto& cached = f.cached_chunks[via];
  for (std::uint64_t c = c0; c <= c1; ++c) {
    if (cached.count(c) == 0) missing.push_back(c);
  }
  auto shared_cb = std::make_shared<ReadCallback>(std::move(cb));
  FetchChunks(via, path, std::move(missing),
              [this, via, path, offset, length, shared_cb](bool ok) {
                if (!ok) {
                  (*shared_cb)(fs::Status::kIoError, {});
                  return;
                }
                sites_[via]->filesystem().Read(
                    path, offset, length,
                    [shared_cb](fs::Status st, util::Bytes data) {
                      (*shared_cb)(st, std::move(data));
                    });
                // Background: pull the rest of the file and consider
                // promoting this site to a full replica.
                MaybePrefetch(via, path);
                MaybePromote(via, path);
              });
}

// --- Disaster recovery ------------------------------------------------------------

void GeoCluster::FailSite(SiteId s) {
  Site& site = *sites_[s];
  site.set_alive(false);
  // Take the whole site's fabric presence down.
  fabric_.SetNodeUp(site.gateway(), false);
  fabric_.SetNodeUp(site.system().switch_node(), false);
  for (std::uint32_t c = 0; c < site.system().controller_count(); ++c) {
    fabric_.SetNodeUp(site.system().controller_node(c), false);
  }

  // Un-shipped async updates originating at the dead site are gone.
  for (auto& [key, q] : async_) {
    if (key.first != s) continue;
    losses_.lost_async_updates += q.q.size();
    losses_.lost_async_bytes += q.bytes;
    q.q.clear();
    q.bytes = 0;
  }

  // Fail files homed at s over to a surviving replica.
  for (auto& [path, f] : files_) {
    f.replicas.erase(s);
    f.cached_chunks.erase(s);
    if (f.home != s) continue;
    SiteId next = kNoSite;
    double best = 0;
    for (const SiteId r : f.replicas) {
      if (!sites_[r]->alive()) continue;
      const double d =
          DistanceKm(sites_[s]->location(), sites_[r]->location());
      if (next == kNoSite || d < best) {
        next = r;
        best = d;
      }
    }
    if (next == kNoSite) {
      f.available = false;
      ++losses_.unavailable_files;
      continue;
    }
    f.home = next;
    if (f.policy.geo_sync) {
      // Re-pick the sync target among the remaining replicas.
      f.sync_target = kNoSite;
      double nearest = 0;
      for (const SiteId r : f.replicas) {
        if (r == next || !sites_[r]->alive()) continue;
        const double d = DistanceKm(sites_[next]->location(),
                                    sites_[r]->location());
        if (f.sync_target == kNoSite || d < nearest) {
          f.sync_target = r;
          nearest = d;
        }
      }
    }
  }
}

}  // namespace nlss::geo
