// Geographically distributed storage (paper §7, Figure 3).
//
// A GeoCluster joins several Sites — each a full single-site StorageSystem
// plus FileSystem — into one "metadata center" with a single data image:
//
//   * Every file has a home site and, per its FilePolicy, a set of replica
//     sites chosen by distance (nearest first, honoring min-distance).
//   * Writes execute at the home site; with geo_sync the nearest replica is
//     updated synchronously (the write waits for the WAN round trip) and
//     farther replicas asynchronously; without it all replication is
//     asynchronous via in-order per-link queues (§6.2: "synchronously
//     replicated to a center close by, then asynchronously to further
//     distances").
//   * Reads from non-replica sites fetch the touched chunks over the WAN on
//     first access and prefetch the rest of the file in the background, so
//     later reads run at local speed (§7.1 distributed data access).
//   * Frequently-read files are automatically promoted to full replicas at
//     the reading site (§7.1 "recognize files that are commonly accessed at
//     multiple locations").
//   * Site failure promotes a surviving replica to home; synchronously
//     replicated data survives with zero loss, asynchronous data loses at
//     most the queued window (real-time disaster recovery, §6.2/§7).
//
// All WAN traffic crosses the shared net::Fabric between site gateway
// nodes, so replication cost, RTT sensitivity, and link saturation are
// measurable (experiments E7, E8, E9, E12).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "controller/system.h"
#include "fs/filesystem.h"
#include "net/fabric.h"
#include "obs/trace.h"

namespace nlss::geo {

using SiteId = std::uint32_t;
inline constexpr SiteId kNoSite = ~0u;

struct Location {
  double x_km = 0;
  double y_km = 0;
};

double DistanceKm(const Location& a, const Location& b);

/// One lab site: a full storage system + blade-resident file system + a WAN
/// gateway node.
class Site {
 public:
  Site(sim::Engine& engine, net::Fabric& fabric, std::string name,
       controller::SystemConfig config, Location location);

  const std::string& name() const { return name_; }
  const Location& location() const { return location_; }
  controller::StorageSystem& system() { return *system_; }
  fs::FileSystem& filesystem() { return *fs_; }
  net::NodeId gateway() const { return gateway_; }
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

 private:
  std::string name_;
  Location location_;
  std::unique_ptr<controller::StorageSystem> system_;
  std::unique_ptr<fs::FileSystem> fs_;
  net::NodeId gateway_;
  bool alive_ = true;
};

class GeoCluster {
 public:
  struct Config {
    std::uint32_t migrate_chunk_bytes = 256 * util::KiB;
    bool prefetch = true;              // background fetch of remaining chunks
    std::uint32_t hot_promote_reads = 3;  // reads before full replication
    bool auto_promote = true;
    std::uint32_t ctrl_msg_bytes = 256;
  };

  GeoCluster(sim::Engine& engine, net::Fabric& fabric);
  GeoCluster(sim::Engine& engine, net::Fabric& fabric, Config config);

  /// Create a site; the caller then links sites with ConnectSites.
  SiteId AddSite(const std::string& name, controller::SystemConfig config,
                 Location location);
  void ConnectSites(SiteId a, SiteId b, const net::LinkProfile& wan);
  Site& site(SiteId s) { return *sites_[s]; }
  std::size_t site_count() const { return sites_.size(); }

  // --- Global namespace ------------------------------------------------------
  fs::Status Mkdir(const std::string& path);
  fs::Status Create(const std::string& path, SiteId home,
                    const fs::FilePolicy& policy = {});
  fs::Status SetPolicy(const std::string& path, const fs::FilePolicy& policy);
  bool Exists(const std::string& path) const {
    return files_.count(path) > 0;
  }
  SiteId HomeOf(const std::string& path) const;
  std::set<SiteId> ReplicasOf(const std::string& path) const;

  // --- Data plane ---------------------------------------------------------------
  using ReadCallback = fs::FileSystem::ReadCallback;
  using WriteCallback = fs::FileSystem::WriteCallback;

  void Write(SiteId via, const std::string& path, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb);
  void Read(SiteId via, const std::string& path, std::uint64_t offset,
            std::uint64_t length, ReadCallback cb);

  // --- Asynchronous replication control ------------------------------------------
  /// Bytes queued but not yet shipped (the RPO exposure).
  std::uint64_t PendingAsyncBytes() const;
  std::uint64_t PendingAsyncBytesFrom(SiteId src) const;
  /// cb fires once every queue is empty.
  void DrainAsync(std::function<void()> cb);

  // --- Disaster recovery ------------------------------------------------------------
  /// Fail a whole site: its fabric nodes go down, queued async updates from
  /// it are lost, and each file homed there fails over to a surviving
  /// replica (files without replicas become unavailable).
  void FailSite(SiteId s);

  struct LossReport {
    std::uint64_t lost_async_updates = 0;
    std::uint64_t lost_async_bytes = 0;
    std::uint64_t unavailable_files = 0;
  };
  const LossReport& losses() const { return losses_; }

  const Config& config() const { return config_; }

  /// Root-trace each async replication shipment as a "geo.replicate" span
  /// (layer kGeo).  Pass nullptr to detach.
  void AttachObs(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct GeoFile {
    fs::FilePolicy policy;
    SiteId home = 0;
    std::uint64_t size = 0;
    std::set<SiteId> replicas;               // full replicas (incl. home)
    SiteId sync_target = kNoSite;            // nearest replica when geo_sync
    // Partial migration caches: per site, fetched chunk indices.
    std::map<SiteId, std::set<std::uint64_t>> cached_chunks;
    std::map<SiteId, std::uint32_t> reads_by_site;
    bool available = true;
  };

  struct AsyncUpdate {
    std::string path;
    std::uint64_t offset;
    util::Bytes data;
  };
  struct AsyncQueue {
    std::deque<AsyncUpdate> q;
    std::uint64_t bytes = 0;
    bool draining = false;
  };

  /// WAN transfer between site gateways.
  void Ship(SiteId from, SiteId to, std::uint64_t bytes,
            std::function<void()> delivered, std::function<void()> dropped);

  void ChooseReplicas(const std::string& path, GeoFile& f);
  void ApplyRemoteWrite(SiteId target, const std::string& path,
                        std::uint64_t offset, const util::Bytes& data,
                        std::function<void(bool)> cb);
  void HomeWriteAndReplicate(const std::string& path, std::uint64_t offset,
                             util::Bytes data, WriteCallback cb);
  void EnqueueAsync(SiteId from, SiteId to, AsyncUpdate update);
  void PumpQueue(SiteId from, SiteId to);
  void CheckDrained();

  void FetchChunks(SiteId via, const std::string& path,
                   std::vector<std::uint64_t> chunks,
                   std::function<void(bool)> cb);
  void MaybePrefetch(SiteId via, const std::string& path);
  void MaybePromote(SiteId via, const std::string& path);

  std::uint64_t ChunkCount(const GeoFile& f) const;

  sim::Engine& engine_;
  net::Fabric& fabric_;
  Config config_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::map<std::string, GeoFile> files_;
  std::map<std::pair<SiteId, SiteId>, AsyncQueue> async_;
  std::vector<std::function<void()>> drain_waiters_;
  LossReport losses_;
  obs::Tracer* tracer_ = nullptr;  // roots "geo.replicate" background spans
};

}  // namespace nlss::geo
