// Virtual-disk-level geographic replication (paper §6.2: "when the file
// system was not used, replication could be specified for the entire
// virtual disk", and §7.2: "the remote copy resides within a pool... would
// remove the restriction of copies being the same size").
//
// ReplicatedBacking slots between the cache and a local volume: reads are
// local; every write that reaches the backing store is also applied to a
// remote site's (demand-mapped, independently sized) volume across the WAN
// — synchronously (the write waits for the remote ack) or asynchronously
// via an in-order queue whose depth is the RPO exposure.
//
// Because it sits *below* the write-back cache, replication traffic is
// flush-granular: coalesced rewrites cross the WAN once.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "cache/backing.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace nlss::geo {

class ReplicatedBacking final : public cache::BackingStore {
 public:
  struct Config {
    bool synchronous = false;
    std::uint32_t ctrl_msg_bytes = 256;
  };

  /// `local` serves reads and primary writes; `remote` (typically a volume
  /// in another site's pool — any size ≥ local) receives the copies over
  /// the WAN between the two gateway nodes.
  ReplicatedBacking(sim::Engine& engine, net::Fabric& fabric,
                    cache::BackingStore& local, net::NodeId local_gateway,
                    cache::BackingStore& remote, net::NodeId remote_gateway,
                    Config config);

  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {}) override;
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext ctx = {}) override;
  std::uint64_t CapacityBlocks() const override {
    return local_.CapacityBlocks();
  }
  std::uint32_t block_size() const override { return local_.block_size(); }

  /// Async-queue depth in bytes (the RPO exposure; 0 when synchronous).
  std::uint64_t PendingBytes() const { return pending_bytes_; }

  /// cb runs once the async queue is empty.
  void Drain(std::function<void()> cb);

  /// Simulate loss of the primary: un-shipped queue entries are dropped
  /// and counted; returns the lost byte count.
  std::uint64_t FailPrimary();

  std::uint64_t replicated_writes() const { return replicated_writes_; }

  /// Root-trace each async shipment as a "geo.replicate" span (layer kGeo)
  /// — the queue outlives the originating request, so shipped copies are
  /// otherwise invisible in traces.  Pass nullptr to detach.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Update {
    std::uint64_t block;
    util::Bytes data;
  };

  void Pump();
  void CheckDrained();

  sim::Engine& engine_;
  net::Fabric& fabric_;
  cache::BackingStore& local_;
  net::NodeId local_gw_;
  cache::BackingStore& remote_;
  net::NodeId remote_gw_;
  Config config_;
  std::deque<Update> queue_;
  std::uint64_t pending_bytes_ = 0;
  bool pumping_ = false;
  bool primary_failed_ = false;
  std::uint64_t replicated_writes_ = 0;
  std::vector<std::function<void()>> drain_waiters_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace nlss::geo
