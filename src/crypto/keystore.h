// Key management for the encryption layers (paper §5): one master key per
// deployment, per-tenant and per-volume data keys derived via HMAC so that
// no tenant key reveals another's, and transport keys for inter-site links.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace nlss::crypto {

/// Derived key material: two AES-256 keys (XTS data + tweak) or one CTR key.
struct VolumeKeys {
  std::array<std::uint8_t, 32> data_key;
  std::array<std::uint8_t, 32> tweak_key;
};

class KeyStore {
 public:
  explicit KeyStore(std::span<const std::uint8_t> master_key);
  explicit KeyStore(std::string_view master_passphrase);

  /// Deterministically derive the at-rest keys for a volume of a tenant.
  VolumeKeys DeriveVolumeKeys(const std::string& tenant,
                              std::uint64_t volume_id) const;

  /// Derive a transport (CTR) key for a site-to-site or host link.
  std::array<std::uint8_t, 32> DeriveTransportKey(
      const std::string& endpoint_a, const std::string& endpoint_b) const;

  /// Rotate the master key; previously derived keys become invalid.
  void Rotate(std::span<const std::uint8_t> new_master);

  std::uint32_t generation() const { return generation_; }

 private:
  Digest256 Derive(const std::string& label) const;

  std::vector<std::uint8_t> master_;
  std::uint32_t generation_ = 0;
};

}  // namespace nlss::crypto
