// AES-128/256 block cipher plus the two modes the storage system uses:
//   * CTR  — in-flight (transmission) encryption of message payloads.
//   * XTS  — at-rest encryption of disk blocks, tweaked by block address so
//            identical plaintext blocks encrypt differently per location.
//
// Software implementation (byte-oriented, constexpr-generated tables).
// Correctness is pinned to FIPS-197 / NIST test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace nlss::crypto {

class Aes {
 public:
  /// key.size() must be 16 (AES-128) or 32 (AES-256).
  explicit Aes(std::span<const std::uint8_t> key);

  void EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void DecryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_;                                  // 10 or 14
  std::array<std::uint8_t, 16 * 15> round_keys_{};  // up to 14+1 round keys
};

/// AES-CTR: encrypt/decrypt `data` in place (CTR is an involution).
/// `iv` is the 16-byte initial counter block; the low 64 bits increment.
void CtrCrypt(const Aes& aes, const std::uint8_t iv[16],
              std::span<std::uint8_t> data);

/// AES-XTS over one logical sector.  `data` must be a multiple of 16 bytes
/// (storage blocks always are).  `key1` encrypts data, `key2` the tweak.
void XtsEncrypt(const Aes& key1, const Aes& key2, std::uint64_t sector,
                std::span<std::uint8_t> data);
void XtsDecrypt(const Aes& key1, const Aes& key2, std::uint64_t sector,
                std::span<std::uint8_t> data);

}  // namespace nlss::crypto
