#include "crypto/aes.h"

#include <cassert>
#include <cstring>

namespace nlss::crypto {
namespace {

// ---- GF(2^8) arithmetic and constexpr table generation (FIPS-197) ----

constexpr std::uint8_t XTime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0x00));
}

constexpr std::uint8_t GMul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = XTime(a);
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};

  constexpr SboxTables() {
    // Build via the multiplicative generator 3 (log/antilog tables).
    std::array<std::uint8_t, 256> exp{};
    std::array<std::uint8_t, 256> log{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = x;
      log[x] = static_cast<std::uint8_t>(i);
      x = static_cast<std::uint8_t>(x ^ XTime(x));  // multiply by 3
    }
    exp[255] = exp[0];
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t inv =
          (i == 0) ? 0 : exp[255 - log[static_cast<std::uint8_t>(i)]];
      // Affine transform: inv ^ rotl(inv,1..4) ^ 0x63.
      std::uint8_t s = inv;
      std::uint8_t r = static_cast<std::uint8_t>(inv ^ 0x63);
      for (int j = 0; j < 4; ++j) {
        s = static_cast<std::uint8_t>((s << 1) | (s >> 7));
        r ^= s;
      }
      sbox[i] = r;
      inv_sbox[r] = static_cast<std::uint8_t>(i);
    }
  }
};

constexpr SboxTables kTables{};

constexpr std::uint8_t Sbox(std::uint8_t b) { return kTables.sbox[b]; }
constexpr std::uint8_t InvSbox(std::uint8_t b) { return kTables.inv_sbox[b]; }

// T-tables for the fast encryption path: Te0[x] packs one column of
// SubBytes+MixColumns; Te1..Te3 are byte rotations of Te0.
struct TeTables {
  std::array<std::uint32_t, 256> t0{}, t1{}, t2{}, t3{};

  constexpr TeTables() {
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t s = kTables.sbox[i];
      const std::uint8_t s2 = XTime(s);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      const std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                              (static_cast<std::uint32_t>(s) << 16) |
                              (static_cast<std::uint32_t>(s) << 8) | s3;
      t0[i] = w;
      t1[i] = (w >> 8) | (w << 24);
      t2[i] = (w >> 16) | (w << 16);
      t3[i] = (w >> 24) | (w << 8);
    }
  }
};

constexpr TeTables kTe{};

// State layout: state[r + 4*c], matching FIPS-197 (bytes fill columns).

void AddRoundKey(std::uint8_t s[16], const std::uint8_t rk[16]) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

void SubBytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = Sbox(s[i]);
}

void InvSubBytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = InvSbox(s[i]);
}

void ShiftRows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      t[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    }
  }
  std::memcpy(s, t, 16);
}

void InvShiftRows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      t[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
    }
  }
  std::memcpy(s, t, 16);
}

void MixColumns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(XTime(a0) ^ XTime(a1) ^ a1 ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ XTime(a1) ^ XTime(a2) ^ a2 ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ XTime(a2) ^ XTime(a3) ^ a3);
    col[3] = static_cast<std::uint8_t>(XTime(a0) ^ a0 ^ a1 ^ a2 ^ XTime(a3));
  }
}

void InvMixColumns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GMul(a0, 0x0E) ^ GMul(a1, 0x0B) ^ GMul(a2, 0x0D) ^ GMul(a3, 0x09);
    col[1] = GMul(a0, 0x09) ^ GMul(a1, 0x0E) ^ GMul(a2, 0x0B) ^ GMul(a3, 0x0D);
    col[2] = GMul(a0, 0x0D) ^ GMul(a1, 0x09) ^ GMul(a2, 0x0E) ^ GMul(a3, 0x0B);
    col[3] = GMul(a0, 0x0B) ^ GMul(a1, 0x0D) ^ GMul(a2, 0x09) ^ GMul(a3, 0x0E);
  }
}

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key) {
  assert(key.size() == 16 || key.size() == 32);
  const int nk = static_cast<int>(key.size() / 4);  // words in key
  rounds_ = nk + 6;                                 // 10 or 14
  const int total_words = 4 * (rounds_ + 1);

  auto word = [&](int i) -> std::uint8_t* { return round_keys_.data() + 4 * i; };
  std::memcpy(round_keys_.data(), key.data(), key.size());

  std::uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, word(i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(Sbox(temp[1]) ^ rcon);
      temp[1] = Sbox(temp[2]);
      temp[2] = Sbox(temp[3]);
      temp[3] = Sbox(t0);
      rcon = XTime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (int j = 0; j < 4; ++j) temp[j] = Sbox(temp[j]);
    }
    for (int j = 0; j < 4; ++j) {
      word(i)[j] = static_cast<std::uint8_t>(word(i - nk)[j] ^ temp[j]);
    }
  }
}

void Aes::EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const {
  // T-table fast path: four table lookups per column per round.
  auto load_be = [](const std::uint8_t* p) -> std::uint32_t {
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
  };
  auto rk = [this](int word) -> std::uint32_t {
    const std::uint8_t* p = round_keys_.data() + 4 * word;
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
  };
  std::uint32_t w0 = load_be(in) ^ rk(0);
  std::uint32_t w1 = load_be(in + 4) ^ rk(1);
  std::uint32_t w2 = load_be(in + 8) ^ rk(2);
  std::uint32_t w3 = load_be(in + 12) ^ rk(3);
  for (int round = 1; round < rounds_; ++round) {
    const std::uint32_t t0 = kTe.t0[w0 >> 24] ^ kTe.t1[(w1 >> 16) & 0xFF] ^
                             kTe.t2[(w2 >> 8) & 0xFF] ^ kTe.t3[w3 & 0xFF] ^
                             rk(4 * round);
    const std::uint32_t t1 = kTe.t0[w1 >> 24] ^ kTe.t1[(w2 >> 16) & 0xFF] ^
                             kTe.t2[(w3 >> 8) & 0xFF] ^ kTe.t3[w0 & 0xFF] ^
                             rk(4 * round + 1);
    const std::uint32_t t2 = kTe.t0[w2 >> 24] ^ kTe.t1[(w3 >> 16) & 0xFF] ^
                             kTe.t2[(w0 >> 8) & 0xFF] ^ kTe.t3[w1 & 0xFF] ^
                             rk(4 * round + 2);
    const std::uint32_t t3 = kTe.t0[w3 >> 24] ^ kTe.t1[(w0 >> 16) & 0xFF] ^
                             kTe.t2[(w1 >> 8) & 0xFF] ^ kTe.t3[w2 & 0xFF] ^
                             rk(4 * round + 3);
    w0 = t0;
    w1 = t1;
    w2 = t2;
    w3 = t3;
  }
  // Final round: SubBytes + ShiftRows only.
  auto final_word = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, int word) -> std::uint32_t {
    return ((static_cast<std::uint32_t>(Sbox(a >> 24)) << 24) |
            (static_cast<std::uint32_t>(Sbox((b >> 16) & 0xFF)) << 16) |
            (static_cast<std::uint32_t>(Sbox((c >> 8) & 0xFF)) << 8) |
            Sbox(d & 0xFF)) ^
           rk(word);
  };
  const std::uint32_t o0 = final_word(w0, w1, w2, w3, 4 * rounds_);
  const std::uint32_t o1 = final_word(w1, w2, w3, w0, 4 * rounds_ + 1);
  const std::uint32_t o2 = final_word(w2, w3, w0, w1, 4 * rounds_ + 2);
  const std::uint32_t o3 = final_word(w3, w0, w1, w2, 4 * rounds_ + 3);
  auto store_be = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
  };
  store_be(out, o0);
  store_be(out + 4, o1);
  store_be(out + 8, o2);
  store_be(out + 12, o3);
}

void Aes::DecryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, round_keys_.data() + 16 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    InvShiftRows(s);
    InvSubBytes(s);
    AddRoundKey(s, round_keys_.data() + 16 * round);
    InvMixColumns(s);
  }
  InvShiftRows(s);
  InvSubBytes(s);
  AddRoundKey(s, round_keys_.data());
  std::memcpy(out, s, 16);
}

void CtrCrypt(const Aes& aes, const std::uint8_t iv[16],
              std::span<std::uint8_t> data) {
  std::uint8_t counter[16];
  std::memcpy(counter, iv, 16);
  std::uint8_t keystream[16];
  std::size_t off = 0;
  while (off < data.size()) {
    aes.EncryptBlock(counter, keystream);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= keystream[i];
    off += n;
    // Increment the low 64 bits (big-endian within the block tail).
    for (int i = 15; i >= 8; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

namespace {

void GfDouble(std::uint8_t t[16]) {
  // Multiply the 128-bit tweak by x in GF(2^128) with the XTS polynomial.
  std::uint8_t carry = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t next_carry = static_cast<std::uint8_t>(t[i] >> 7);
    t[i] = static_cast<std::uint8_t>((t[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) t[0] ^= 0x87;
}

template <typename BlockFn>
void XtsProcess(const Aes& key2, std::uint64_t sector,
                std::span<std::uint8_t> data, BlockFn&& block_fn) {
  assert(data.size() % 16 == 0);
  std::uint8_t tweak[16] = {};
  for (int i = 0; i < 8; ++i) {
    tweak[i] = static_cast<std::uint8_t>(sector >> (8 * i));
  }
  std::uint8_t t[16];
  key2.EncryptBlock(tweak, t);
  for (std::size_t off = 0; off < data.size(); off += 16) {
    std::uint8_t buf[16];
    for (int i = 0; i < 16; ++i) buf[i] = data[off + i] ^ t[i];
    block_fn(buf, buf);
    for (int i = 0; i < 16; ++i) data[off + i] = buf[i] ^ t[i];
    GfDouble(t);
  }
}

}  // namespace

void XtsEncrypt(const Aes& key1, const Aes& key2, std::uint64_t sector,
                std::span<std::uint8_t> data) {
  XtsProcess(key2, sector, data,
             [&](const std::uint8_t* in, std::uint8_t* out) {
               key1.EncryptBlock(in, out);
             });
}

void XtsDecrypt(const Aes& key1, const Aes& key2, std::uint64_t sector,
                std::span<std::uint8_t> data) {
  XtsProcess(key2, sector, data,
             [&](const std::uint8_t* in, std::uint8_t* out) {
               key1.DecryptBlock(in, out);
             });
}

}  // namespace nlss::crypto
