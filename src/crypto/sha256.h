// SHA-256 and HMAC-SHA-256 (FIPS 180-4 / RFC 2104).  Used for
// authentication tokens, key derivation, and end-to-end content digests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace nlss::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(std::span<const std::uint8_t> data);
  void Update(std::string_view s);

  /// Finalize and return the digest.  The object must not be reused after.
  Digest256 Finish();

  /// One-shot convenience.
  static Digest256 Hash(std::span<const std::uint8_t> data);
  static Digest256 Hash(std::string_view s);

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA-256 over `data` with `key`.
Digest256 HmacSha256(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> data);
Digest256 HmacSha256(std::string_view key, std::string_view data);

/// Hex encoding for digests (diagnostics, audit log entries).
std::string ToHex(std::span<const std::uint8_t> data);

}  // namespace nlss::crypto
