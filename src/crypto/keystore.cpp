#include "crypto/keystore.h"

#include <algorithm>
#include <cstring>

namespace nlss::crypto {

KeyStore::KeyStore(std::span<const std::uint8_t> master_key)
    : master_(master_key.begin(), master_key.end()) {}

KeyStore::KeyStore(std::string_view master_passphrase) {
  // Stretch the passphrase through SHA-256 (a stand-in for a real KDF).
  const Digest256 d = Sha256::Hash(master_passphrase);
  master_.assign(d.begin(), d.end());
}

Digest256 KeyStore::Derive(const std::string& label) const {
  return HmacSha256(std::span<const std::uint8_t>(master_),
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(label.data()),
                        label.size()));
}

VolumeKeys KeyStore::DeriveVolumeKeys(const std::string& tenant,
                                      std::uint64_t volume_id) const {
  const std::string base =
      "vol/" + tenant + "/" + std::to_string(volume_id) + "/g" +
      std::to_string(generation_);
  VolumeKeys keys{};
  const Digest256 dk = Derive(base + "/data");
  const Digest256 tk = Derive(base + "/tweak");
  std::copy(dk.begin(), dk.end(), keys.data_key.begin());
  std::copy(tk.begin(), tk.end(), keys.tweak_key.begin());
  return keys;
}

std::array<std::uint8_t, 32> KeyStore::DeriveTransportKey(
    const std::string& endpoint_a, const std::string& endpoint_b) const {
  // Order-independent so both ends derive the same key.
  const std::string lo = std::min(endpoint_a, endpoint_b);
  const std::string hi = std::max(endpoint_a, endpoint_b);
  const Digest256 d =
      Derive("link/" + lo + "/" + hi + "/g" + std::to_string(generation_));
  std::array<std::uint8_t, 32> out{};
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

void KeyStore::Rotate(std::span<const std::uint8_t> new_master) {
  master_.assign(new_master.begin(), new_master.end());
  ++generation_;
}

}  // namespace nlss::crypto
