#include "qos/tenant.h"

namespace nlss::qos {

const char* ServiceClassName(ServiceClass c) {
  switch (c) {
    case ServiceClass::kGold: return "gold";
    case ServiceClass::kSilver: return "silver";
    case ServiceClass::kBronze: return "bronze";
  }
  return "?";
}

std::optional<ServiceClass> ServiceClassFromName(const std::string& name) {
  if (name == "gold") return ServiceClass::kGold;
  if (name == "silver") return ServiceClass::kSilver;
  if (name == "bronze") return ServiceClass::kBronze;
  return std::nullopt;
}

TenantRegistry::TenantRegistry() {
  // Class defaults: gold is latency-sensitive (large share, deep queue),
  // bronze is scavenger-grade.  Rates default to uncapped; deployments set
  // caps per class where they want hard ceilings.
  specs_[static_cast<int>(ServiceClass::kGold)] =
      ClassSpec{8, 0, 32ull << 20, 128, 2000, 256};
  specs_[static_cast<int>(ServiceClass::kSilver)] =
      ClassSpec{4, 0, 16ull << 20, 64, 500, 64};
  specs_[static_cast<int>(ServiceClass::kBronze)] =
      ClassSpec{1, 0, 8ull << 20, 32, 50, 8};

  tenants_.push_back(Tenant{kDefaultTenant, "default", ServiceClass::kSilver});
  by_name_["default"] = kDefaultTenant;
}

TenantId TenantRegistry::Register(const std::string& name, ServiceClass cls) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    tenants_[it->second].cls = cls;
    return it->second;
  }
  const TenantId id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(Tenant{id, name, cls});
  by_name_[name] = id;
  return id;
}

void TenantRegistry::BindUser(const std::string& user, TenantId tenant) {
  by_user_[user] = tenant;
}

void TenantRegistry::BindVolume(std::uint32_t volume, TenantId tenant) {
  by_volume_[volume] = tenant;
}

TenantId TenantRegistry::ResolveUser(const std::string& user) const {
  auto it = by_user_.find(user);
  return it == by_user_.end() ? kDefaultTenant : it->second;
}

TenantId TenantRegistry::ResolveVolume(std::uint32_t volume) const {
  auto it = by_volume_.find(volume);
  return it == by_volume_.end() ? kDefaultTenant : it->second;
}

std::optional<TenantId> TenantRegistry::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const Tenant& TenantRegistry::tenant(TenantId id) const {
  if (id >= tenants_.size()) return tenants_[kDefaultTenant];
  return tenants_[id];
}

bool TenantRegistry::SetClassWeight(ServiceClass c, std::uint32_t weight) {
  if (weight == 0) return false;
  specs_[static_cast<int>(c)].weight = weight;
  return true;
}

}  // namespace nlss::qos
