// Per-tenant SLO tracking: end-to-end latency histograms, queue-wait
// histograms, delivered-throughput counters, and admission rejections.
// The management plane serves these as JSON (mgmt::AdminHttp /qos) and the
// benchmarks print them as util::Table rows.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "qos/tenant.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace nlss::qos {

class SloTracker {
 public:
  explicit SloTracker(sim::Engine& engine) : engine_(engine) {}

  struct TenantStats {
    std::uint64_t ops = 0;       // completed (ok or error)
    std::uint64_t errors = 0;
    std::uint64_t rejected = 0;  // admission-control rejections
    std::uint64_t bytes = 0;     // delivered (successful ops only)
    std::uint64_t hedges = 0;       // hedge-budget grants
    std::uint64_t hedges_shed = 0;  // hedges denied (budget / pressure)
    util::Histogram latency;     // submit -> completion, ns
    util::Histogram queue_wait;  // submit -> dispatch, ns
  };

  void OnReject(TenantId t) { ++stats_[t].rejected; }
  void OnHedge(TenantId t, bool granted) {
    granted ? ++stats_[t].hedges : ++stats_[t].hedges_shed;
  }
  void OnDispatch(TenantId t, sim::Tick wait_ns) {
    stats_[t].queue_wait.Record(wait_ns);
  }
  void OnComplete(TenantId t, std::uint64_t bytes, bool ok,
                  sim::Tick latency_ns);

  const TenantStats& stats(TenantId t) const;
  const std::map<TenantId, TenantStats>& all() const { return stats_; }

  /// Delivered MB/s over the window since the last Reset().
  double DeliveredMBps(TenantId t) const;

  /// Clear counters and restart the throughput window at engine.now().
  void Reset();

  /// Paper-style ASCII table, one row per tenant.
  std::string TableString(const TenantRegistry& registry) const;

 private:
  sim::Engine& engine_;
  sim::Tick window_start_ = 0;
  std::map<TenantId, TenantStats> stats_;
};

}  // namespace nlss::qos
