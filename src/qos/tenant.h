// Tenant registry for the QoS subsystem (multi-tenant performance
// isolation).  The paper's shared national-lab pool serves many labs from
// one set of controller blades; the registry names those labs (tenants),
// assigns each a service class (gold/silver/bronze), and binds protocol
// sessions (by user) and volumes (by id) to tenants so every I/O entering
// a blade can be attributed and scheduled.
//
// Class specs — WFQ weight, token-bucket rate/burst, per-blade queue-depth
// cap — are runtime-mutable (the management plane reconfigures weights
// without disturbing in-flight I/O; changes apply to newly queued requests).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nlss::qos {

using TenantId = std::uint32_t;

/// Tenant 0 always exists: traffic with no binding lands here.
inline constexpr TenantId kDefaultTenant = 0;

/// Sentinel for "not specified": resolve from the volume binding instead.
inline constexpr TenantId kAutoTenant = 0xFFFFFFFFu;

enum class ServiceClass : std::uint8_t { kGold = 0, kSilver = 1, kBronze = 2 };
inline constexpr int kServiceClasses = 3;

const char* ServiceClassName(ServiceClass c);
std::optional<ServiceClass> ServiceClassFromName(const std::string& name);

/// Per-class scheduling parameters shared by every tenant of the class.
struct ClassSpec {
  std::uint32_t weight = 1;              // WFQ share (relative)
  std::uint64_t rate_bytes_per_sec = 0;  // token-bucket rate; 0 = uncapped
  std::uint64_t burst_bytes = 8ull << 20;
  std::uint32_t max_queue_depth = 64;    // per-tenant, per-blade admission cap
  // Hedge budget: speculative duplicate attempts (host read/write hedging
  // via Scheduler::TryHedge) the class may spend, per tenant.  Hedges are
  // pure overhead when the system is loaded, so unlike the byte bucket a
  // zero rate means "may not hedge", and hedges are shed first under
  // admission pressure — a bronze tenant's hedges can't eat gold headroom.
  std::uint64_t hedge_rate_per_sec = 200;  // hedges/sec; 0 = no hedging
  std::uint64_t hedge_burst = 32;          // bucket depth, in hedges
};

struct Tenant {
  TenantId id = kDefaultTenant;
  std::string name;
  ServiceClass cls = ServiceClass::kSilver;
};

class TenantRegistry {
 public:
  TenantRegistry();

  /// Register a tenant; names are unique (re-registering a name returns the
  /// existing id and updates its class).
  TenantId Register(const std::string& name, ServiceClass cls);

  /// Bind a protocol user (block-target login identity) to a tenant.
  void BindUser(const std::string& user, TenantId tenant);
  /// Bind a volume id to a tenant (requests with kAutoTenant resolve here).
  void BindVolume(std::uint32_t volume, TenantId tenant);

  /// Unknown users/volumes resolve to the default tenant.
  TenantId ResolveUser(const std::string& user) const;
  TenantId ResolveVolume(std::uint32_t volume) const;
  std::optional<TenantId> FindByName(const std::string& name) const;

  /// Unknown or kAutoTenant ids clamp to the default tenant.
  const Tenant& tenant(TenantId id) const;
  const std::vector<Tenant>& tenants() const { return tenants_; }
  std::size_t size() const { return tenants_.size(); }

  const ClassSpec& spec(ServiceClass c) const {
    return specs_[static_cast<int>(c)];
  }
  void SetClassSpec(ServiceClass c, const ClassSpec& s) {
    specs_[static_cast<int>(c)] = s;
  }
  /// Runtime weight reconfiguration (management plane); rejects weight 0.
  bool SetClassWeight(ServiceClass c, std::uint32_t weight);
  const ClassSpec& SpecFor(TenantId id) const { return spec(tenant(id).cls); }

 private:
  std::vector<Tenant> tenants_;
  std::map<std::string, TenantId> by_name_;
  std::map<std::string, TenantId> by_user_;
  std::map<std::uint32_t, TenantId> by_volume_;
  ClassSpec specs_[kServiceClasses];
};

}  // namespace nlss::qos
