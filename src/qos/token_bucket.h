// Deterministic token bucket for per-tenant rate capping.
//
// Tokens are bytes; they accrue at `rate` bytes per simulated second up to
// `burst`.  All arithmetic is integer (128-bit intermediates) against the
// DES clock, so refill timing is exact and bit-reproducible — there is no
// background refill event; the bucket folds elapsed ticks in lazily and the
// scheduler asks EligibleAt() to plant a single wake-up when it must wait.
//
// Ops larger than one burst are admitted when the bucket is at least
// `burst` full and charged their full cost (the balance goes negative),
// which enforces the long-run rate exactly for any op size.
#pragma once

#include <cstdint>

#include "sim/engine.h"

namespace nlss::qos {

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes);

  /// Reconfigure in place; the current balance is clamped to the new burst.
  void Configure(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes);

  /// True if `cost` can be taken at `now` without waiting.
  bool CanTake(std::uint64_t cost, sim::Tick now);

  /// Take `cost` tokens at `now`; returns false (taking nothing) if the
  /// bucket is not yet eligible.  Uncapped buckets (rate 0) always succeed.
  bool TryTake(std::uint64_t cost, sim::Tick now);

  /// Earliest tick >= now at which TryTake(cost) will succeed.
  sim::Tick EligibleAt(std::uint64_t cost, sim::Tick now);

  std::uint64_t rate() const { return rate_; }
  std::uint64_t burst() const { return burst_; }
  /// Current balance (after folding in time up to `now`); negative = debt.
  std::int64_t BalanceAt(sim::Tick now);

 private:
  void Refill(sim::Tick now);
  /// Ops can never need more than one full burst at once.
  std::int64_t Need(std::uint64_t cost) const;

  std::uint64_t rate_ = 0;   // bytes per simulated second; 0 = uncapped
  std::uint64_t burst_ = 0;  // max balance in bytes
  std::int64_t tokens_ = 0;
  std::uint64_t frac_ns_ = 0;  // sub-token remainder, in byte-nanoseconds
  sim::Tick last_ = 0;
  bool initialized_ = false;   // first Configure() fills the bucket
};

}  // namespace nlss::qos
