#include "qos/wfq.h"

#include <algorithm>

#include "check/invariant.h"

namespace nlss::qos {

void FairQueue::Push(QueuedOp op, std::uint32_t weight) {
  weight = std::max<std::uint32_t>(weight, 1);
  Flow& flow = flows_[op.tenant];
  op.start_vt = std::max(vt_, flow.last_finish);
  op.finish_vt = op.start_vt + op.cost * kVtScale / weight;
  NLSS_INVARIANT(kQos, op.start_vt >= flow.last_start,
                 "tenant %u start tag regressed: start=%llu last_start=%llu",
                 static_cast<unsigned>(op.tenant),
                 static_cast<unsigned long long>(op.start_vt),
                 static_cast<unsigned long long>(flow.last_start));
  NLSS_INVARIANT(kQos, op.finish_vt >= op.start_vt,
                 "finish tag before start tag: finish=%llu start=%llu",
                 static_cast<unsigned long long>(op.finish_vt),
                 static_cast<unsigned long long>(op.start_vt));
  flow.last_start = op.start_vt;
  flow.last_finish = op.finish_vt;
  flow.q.push_back(std::move(op));
  ++size_;
}

std::optional<QueuedOp> FairQueue::PopEligible(
    const std::function<bool(TenantId, std::uint64_t cost)>& eligible) {
  Flow* best = nullptr;
  std::uint64_t best_start = 0;
  for (auto& [tenant, flow] : flows_) {
    if (flow.q.empty()) continue;
    const QueuedOp& head = flow.q.front();
    if (!eligible(tenant, head.cost)) continue;
    if (best == nullptr || head.start_vt < best_start) {
      best = &flow;
      best_start = head.start_vt;
    }
  }
  if (best == nullptr) return std::nullopt;
  QueuedOp op = std::move(best->q.front());
  best->q.pop_front();
  --size_;
  const std::uint64_t prev_vt [[maybe_unused]] = vt_;
  vt_ = std::max(vt_, op.start_vt);
  NLSS_INVARIANT(kQos, vt_ >= prev_vt,
                 "virtual time regressed: vt=%llu prev=%llu",
                 static_cast<unsigned long long>(vt_),
                 static_cast<unsigned long long>(prev_vt));
  return op;
}

void FairQueue::ForEachHead(
    const std::function<void(TenantId, std::uint64_t cost)>& fn) const {
  for (const auto& [tenant, flow] : flows_) {
    if (!flow.q.empty()) fn(tenant, flow.q.front().cost);
  }
}

std::size_t FairQueue::TenantDepth(TenantId t) const {
  auto it = flows_.find(t);
  return it == flows_.end() ? 0 : it->second.q.size();
}

}  // namespace nlss::qos
