#include "qos/token_bucket.h"

#include <algorithm>

#include "check/invariant.h"
#include "util/units.h"

namespace nlss::qos {

TokenBucket::TokenBucket(std::uint64_t rate_bytes_per_sec,
                         std::uint64_t burst_bytes) {
  Configure(rate_bytes_per_sec, burst_bytes);
}

void TokenBucket::Configure(std::uint64_t rate_bytes_per_sec,
                            std::uint64_t burst_bytes) {
  rate_ = rate_bytes_per_sec;
  burst_ = burst_bytes;
  if (!initialized_) {
    tokens_ = static_cast<std::int64_t>(burst_);  // buckets start full
    initialized_ = true;
  }
  tokens_ = std::min(tokens_, static_cast<std::int64_t>(burst_));
}

void TokenBucket::Refill(sim::Tick now) {
  if (now <= last_) return;
  const sim::Tick delta = now - last_;
  last_ = now;
  if (rate_ == 0) return;
  const unsigned __int128 acc =
      static_cast<unsigned __int128>(delta) * rate_ + frac_ns_;
  const std::uint64_t add =
      static_cast<std::uint64_t>(acc / util::kNsPerSec);
  frac_ns_ = static_cast<std::uint64_t>(acc % util::kNsPerSec);
  tokens_ += static_cast<std::int64_t>(add);
  if (tokens_ >= static_cast<std::int64_t>(burst_)) {
    tokens_ = static_cast<std::int64_t>(burst_);
    frac_ns_ = 0;  // a full bucket does not bank fractional tokens
  }
  NLSS_INVARIANT(kQos, tokens_ <= static_cast<std::int64_t>(burst_),
                 "bucket overfilled: tokens=%lld burst=%llu",
                 static_cast<long long>(tokens_),
                 static_cast<unsigned long long>(burst_));
}

std::int64_t TokenBucket::Need(std::uint64_t cost) const {
  return static_cast<std::int64_t>(std::min(cost, burst_));
}

bool TokenBucket::CanTake(std::uint64_t cost, sim::Tick now) {
  if (rate_ == 0) return true;
  Refill(now);
  return tokens_ >= Need(cost);
}

bool TokenBucket::TryTake(std::uint64_t cost, sim::Tick now) {
  if (rate_ == 0) return true;
  Refill(now);
  if (tokens_ < Need(cost)) return false;
  tokens_ -= static_cast<std::int64_t>(cost);
  // Over-burst ops legally drive the balance negative, but debt is bounded
  // by the over-burst amount (admission required >= Need(cost) tokens).
  NLSS_INVARIANT(kQos,
                 tokens_ >= Need(cost) - static_cast<std::int64_t>(cost),
                 "bucket debt exceeds over-burst bound: tokens=%lld "
                 "cost=%llu burst=%llu",
                 static_cast<long long>(tokens_),
                 static_cast<unsigned long long>(cost),
                 static_cast<unsigned long long>(burst_));
  return true;
}

sim::Tick TokenBucket::EligibleAt(std::uint64_t cost, sim::Tick now) {
  if (rate_ == 0) return now;
  Refill(now);
  const std::int64_t need = Need(cost);
  if (tokens_ >= need) return now;
  const unsigned __int128 deficit_ns =
      static_cast<unsigned __int128>(need - tokens_) * util::kNsPerSec;
  const unsigned __int128 wait =
      (deficit_ns - frac_ns_ + rate_ - 1) / rate_;
  return now + static_cast<sim::Tick>(wait);
}

std::int64_t TokenBucket::BalanceAt(sim::Tick now) {
  Refill(now);
  return rate_ == 0 ? static_cast<std::int64_t>(burst_) : tokens_;
}

}  // namespace nlss::qos
