// Start-time weighted fair queuing (SFQ) over per-tenant flows.
//
// One FairQueue orders the admitted-but-not-yet-dispatched requests of a
// single controller blade.  Each tenant is a flow; a request of cost c
// (bytes) from a flow with weight w gets tags
//
//   start  = max(virtual_time, flow.last_finish)
//   finish = start + c * kVtScale / w
//
// and dispatch picks the smallest start tag (ties broken by tenant id, so
// runs are deterministic).  Virtual time advances to the start tag of the
// request being dispatched.  Over any backlogged interval, each flow's
// dispatched bytes converge to its weight share — the classic SFQ result —
// without any notion of wall-clock time, so the queue is bit-reproducible.
//
// Weight changes apply to requests queued after the change.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "obs/trace.h"
#include "qos/tenant.h"
#include "sim/engine.h"

namespace nlss::qos {

struct QueuedOp {
  TenantId tenant = kDefaultTenant;
  std::uint64_t cost = 0;       // bytes
  sim::Tick submitted = 0;
  /// Dispatch thunk: must call `done(ok)` exactly once on completion.
  std::function<void(std::function<void(bool)>)> launch;
  /// Open "qos.queue" span covering the time spent queued (if sampled).
  obs::TraceContext span;
  std::uint64_t start_vt = 0;
  std::uint64_t finish_vt = 0;
};

class FairQueue {
 public:
  /// Fixed-point scale for virtual time (cost * kVtScale / weight).
  static constexpr std::uint64_t kVtScale = 1 << 16;

  void Push(QueuedOp op, std::uint32_t weight);

  /// Pop the op with the smallest start tag among flows whose head passes
  /// `eligible` (token-bucket gate).  Returns nullopt if nothing passes.
  std::optional<QueuedOp> PopEligible(
      const std::function<bool(TenantId, std::uint64_t cost)>& eligible);

  /// Visit each flow's head (for computing the earliest token eligibility).
  void ForEachHead(
      const std::function<void(TenantId, std::uint64_t cost)>& fn) const;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t TenantDepth(TenantId t) const;
  std::uint64_t virtual_time() const { return vt_; }

 private:
  struct Flow {
    std::deque<QueuedOp> q;
    std::uint64_t last_finish = 0;
    std::uint64_t last_start = 0;  // invariant: start tags monotone per flow
  };

  std::map<TenantId, Flow> flows_;  // ordered: deterministic scans
  std::uint64_t vt_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nlss::qos
