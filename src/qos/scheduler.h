// Tenant-aware I/O scheduler and admission controller.
//
// One Scheduler sits between the host-facing entry points and the
// controller blades (controller::StorageSystem::AttachQos).  Each blade
// gets a bounded WFQ of admitted requests plus a dispatch-concurrency
// limit; each tenant gets a token bucket (rate cap) and a per-blade
// queue-depth cap.  The flow of a request:
//
//   Submit ──admission──> FairQueue ──tokens+WFQ order──> launch(...)
//      │         │                                            │
//      │         └─ reject (bounded queue / depth cap):       └─ done(ok):
//      │            caller fails the op; the host multipath      next WFQ
//      │            retry provides the backpressure delay        dispatch
//
// All waiting is DES-scheduled on sim::Engine (a single wake-up event is
// planted at the earliest token-eligibility tick when every queued head is
// throttled), so runs remain bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "qos/slo.h"
#include "qos/tenant.h"
#include "qos/token_bucket.h"
#include "qos/wfq.h"
#include "sim/engine.h"

namespace nlss::qos {

class Scheduler {
 public:
  struct Config {
    /// Requests dispatched downstream concurrently, per blade.  Small
    /// values give the WFQ control over ordering; large values approach
    /// FIFO passthrough.
    std::uint32_t max_in_service_per_blade = 2;
    /// Bounded per-blade queue (admission control).
    std::uint32_t max_queue_per_blade = 256;
  };

  Scheduler(sim::Engine& engine, TenantRegistry& registry,
            std::uint32_t blades)
      : Scheduler(engine, registry, blades, Config()) {}
  Scheduler(sim::Engine& engine, TenantRegistry& registry,
            std::uint32_t blades, Config config);

  /// Dispatch thunk: invoked when the request wins dispatch; must call
  /// `done(ok)` exactly once when the downstream I/O completes.
  using Launch = std::function<void(std::function<void(bool)> done)>;

  /// Admit a request of `cost_bytes` for `tenant` bound to `blade`.
  /// Returns false (and drops `launch`) when admission control rejects it:
  /// the blade queue is full or the tenant is over its queue-depth cap.
  /// A sampled `ctx` gets a "qos.queue" span covering admission-to-dispatch
  /// (the queue-wait component of the trace breakdown).
  bool Submit(std::uint32_t blade, TenantId tenant, std::uint64_t cost_bytes,
              Launch launch, obs::TraceContext ctx = {});

  /// Hedge-budget gate: may `tenant` spend one speculative duplicate
  /// attempt against `blade` right now?  Charges the tenant's hedge
  /// token bucket (ClassSpec::hedge_rate_per_sec / hedge_burst) on grant.
  /// Hedges are shed first under admission pressure: when the blade's
  /// queue is half full (firm requests already waiting), every hedge is
  /// denied regardless of budget.  The attempt itself still rides the
  /// normal Submit admission path.
  bool TryHedge(std::uint32_t blade, TenantId tenant);

  TenantRegistry& registry() { return registry_; }
  const TenantRegistry& registry() const { return registry_; }
  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }
  const Config& config() const { return config_; }
  std::uint32_t blades() const {
    return static_cast<std::uint32_t>(blades_.size());
  }

  std::size_t QueueDepth(std::uint32_t blade) const {
    return blades_[blade].queue.size();
  }
  std::uint32_t InService(std::uint32_t blade) const {
    return blades_[blade].in_service;
  }

 private:
  struct Blade {
    FairQueue queue;
    std::uint32_t in_service = 0;
    bool wakeup_pending = false;
    sim::Tick wakeup_at = 0;
  };

  void TryDispatch(std::uint32_t blade);
  void ScheduleWakeup(std::uint32_t blade, sim::Tick at);
  TokenBucket& BucketFor(TenantId t);
  TokenBucket& HedgeBucketFor(TenantId t);

  sim::Engine& engine_;
  TenantRegistry& registry_;
  Config config_;
  std::vector<Blade> blades_;
  std::map<TenantId, TokenBucket> buckets_;
  /// Hedge budgets: tokens are hedge attempts (cost 1), not bytes.
  std::map<TenantId, TokenBucket> hedge_buckets_;
  SloTracker slo_;
};

}  // namespace nlss::qos
