#include "qos/scheduler.h"

#include <cassert>
#include <limits>
#include <memory>

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::qos {
namespace {

// Race-detector keys.  Admission contends per blade queue; hedge budget
// contends per tenant bucket.  Outcome-dependent modes: an accepted
// submit / granted hedge records kCommute (same-outcome peers commute —
// stable-tag heap insert, token decrement with budget to spare), a
// refusal records kRead (it observed the boundary and mutated nothing).
// A mixed same-tick pair is precisely an order-decided boundary: who got
// the last queue slot / the last hedge token.  Ordering *within* the WFQ
// heap is timing, not state, and is covered by the perturbation digests.
inline std::uint64_t BladeKey(std::uint32_t blade) {
  return check::AccessKey(0x0B1Dull, blade);
}
inline std::uint64_t HedgeKey(TenantId tenant) {
  return check::AccessKey(0x4ED6ull, tenant);
}

}  // namespace

Scheduler::Scheduler(sim::Engine& engine, TenantRegistry& registry,
                     std::uint32_t blades, Config config)
    : engine_(engine),
      registry_(registry),
      config_(config),
      blades_(blades),
      slo_(engine) {
  assert(blades >= 1);
  assert(config_.max_in_service_per_blade >= 1);
}

TokenBucket& Scheduler::BucketFor(TenantId t) {
  TokenBucket& bucket = buckets_[t];
  // Track runtime spec changes: reconfigure when the class parameters
  // moved (Configure is a no-op on the balance when nothing changed).
  const ClassSpec& spec = registry_.SpecFor(t);
  if (bucket.rate() != spec.rate_bytes_per_sec ||
      bucket.burst() != spec.burst_bytes) {
    bucket.Configure(spec.rate_bytes_per_sec, spec.burst_bytes);
  }
  return bucket;
}

TokenBucket& Scheduler::HedgeBucketFor(TenantId t) {
  TokenBucket& bucket = hedge_buckets_[t];
  const ClassSpec& spec = registry_.SpecFor(t);
  if (bucket.rate() != spec.hedge_rate_per_sec ||
      bucket.burst() != spec.hedge_burst) {
    bucket.Configure(spec.hedge_rate_per_sec, spec.hedge_burst);
  }
  return bucket;
}

bool Scheduler::TryHedge(std::uint32_t blade, TenantId tenant) {
  Blade& b = blades_.at(blade);
  const Tenant& t = registry_.tenant(tenant);  // clamps unknown ids
  const ClassSpec& spec = registry_.spec(t.cls);
  // A hedge is a duplicate of work already admitted; unlike the byte
  // bucket, a zero hedge rate means the class may not hedge at all.
  if (spec.hedge_rate_per_sec == 0) {
    // Static config, not a contended boundary: no access tag.
    slo_.OnHedge(t.id, false);
    return false;
  }
  // Shed first under admission pressure: with the blade queue half full,
  // speculative duplicates only deepen the backlog firm requests are
  // already waiting in.
  if (b.queue.size() * 2 >= config_.max_queue_per_blade) {
    NLSS_ACCESS(kQos, BladeKey(blade), kRead);
    slo_.OnHedge(t.id, false);
    return false;
  }
  const sim::Tick now = engine_.now();
  TokenBucket& bucket = HedgeBucketFor(t.id);
  if (!bucket.TryTake(1, now)) {
    NLSS_ACCESS(kQos, HedgeKey(t.id), kRead);
    slo_.OnHedge(t.id, false);
    return false;
  }
  NLSS_ACCESS(kQos, HedgeKey(t.id), kCommute);
  // Hedge spend never exceeds budget: a grant cannot overdraw the bucket
  // (cost 1 <= hedge_burst, and TryTake refuses when ineligible).
  NLSS_INVARIANT(kQos, bucket.BalanceAt(now) >= -1,
                 "hedge budget overdrawn for tenant %u", t.id);
  slo_.OnHedge(t.id, true);
  return true;
}

bool Scheduler::Submit(std::uint32_t blade, TenantId tenant,
                       std::uint64_t cost_bytes, Launch launch,
                       obs::TraceContext ctx) {
  Blade& b = blades_.at(blade);
  const Tenant& t = registry_.tenant(tenant);  // clamps unknown ids
  const ClassSpec& spec = registry_.spec(t.cls);
  if (b.queue.size() >= config_.max_queue_per_blade ||
      b.queue.TenantDepth(t.id) >= spec.max_queue_depth) {
    // At a full queue, WHICH same-tick submit waits is arbitrary by
    // design: every refusal hands the op back to a caller that owns the
    // retry (the unchecked-status lint forbids discarding this bool), so
    // either order converges.  Commute, not read — the admission margin
    // is capacity arbitration, not state observation.
    NLSS_ACCESS(kQos, BladeKey(blade), kCommute);
    slo_.OnReject(t.id);
    return false;
  }
  NLSS_ACCESS(kQos, BladeKey(blade), kCommute);
  QueuedOp op;
  op.tenant = t.id;
  op.cost = cost_bytes;
  op.submitted = engine_.now();
  op.launch = std::move(launch);
  op.span = obs::StartSpan(ctx, obs::Layer::kQos, "qos.queue");
  b.queue.Push(std::move(op), spec.weight);
  TryDispatch(blade);
  return true;
}

void Scheduler::TryDispatch(std::uint32_t blade) {
  Blade& b = blades_[blade];
  const sim::Tick now = engine_.now();
  while (b.in_service < config_.max_in_service_per_blade &&
         !b.queue.empty()) {
    auto op = b.queue.PopEligible([&](TenantId t, std::uint64_t cost) {
      return BucketFor(t).CanTake(cost, now);
    });
    if (!op.has_value()) {
      // Every queued head is token-throttled: plant one wake-up at the
      // earliest eligibility tick (DES-scheduled refill).
      sim::Tick earliest = std::numeric_limits<sim::Tick>::max();
      b.queue.ForEachHead([&](TenantId t, std::uint64_t cost) {
        earliest = std::min(earliest, BucketFor(t).EligibleAt(cost, now));
      });
      if (earliest != std::numeric_limits<sim::Tick>::max()) {
        ScheduleWakeup(blade, earliest);
      }
      return;
    }
    const bool took = BucketFor(op->tenant).TryTake(op->cost, now);
    assert(took);
    (void)took;
    ++b.in_service;
    slo_.OnDispatch(op->tenant, now - op->submitted);
    // The queue-wait span closes at dispatch: everything downstream is
    // service time in other layers' spans.
    obs::EndSpan(op->span);
    auto launch = std::move(op->launch);
    const TenantId tenant = op->tenant;
    const std::uint64_t cost = op->cost;
    const sim::Tick submitted = op->submitted;
    auto done_called = std::make_shared<bool>(false);
    launch([this, blade, tenant, cost, submitted, done_called](bool ok) {
      assert(!*done_called && "QoS completion signalled twice");
      if (*done_called) return;
      *done_called = true;
      Blade& bb = blades_[blade];
      --bb.in_service;
      slo_.OnComplete(tenant, cost, ok, engine_.now() - submitted);
      TryDispatch(blade);
    });
  }
}

void Scheduler::ScheduleWakeup(std::uint32_t blade, sim::Tick at) {
  Blade& b = blades_[blade];
  if (b.wakeup_pending && b.wakeup_at <= at) return;
  b.wakeup_pending = true;
  b.wakeup_at = at;
  engine_.ScheduleAt(at, [this, blade, at] {
    Blade& bb = blades_[blade];
    if (bb.wakeup_pending && bb.wakeup_at == at) bb.wakeup_pending = false;
    TryDispatch(blade);
  });
}

}  // namespace nlss::qos
