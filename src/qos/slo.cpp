#include "qos/slo.h"

#include "util/table.h"
#include "util/units.h"

namespace nlss::qos {

void SloTracker::OnComplete(TenantId t, std::uint64_t bytes, bool ok,
                            sim::Tick latency_ns) {
  TenantStats& s = stats_[t];
  ++s.ops;
  if (ok) {
    s.bytes += bytes;
  } else {
    ++s.errors;
  }
  s.latency.Record(latency_ns);
}

const SloTracker::TenantStats& SloTracker::stats(TenantId t) const {
  static const TenantStats kEmpty;
  auto it = stats_.find(t);
  return it == stats_.end() ? kEmpty : it->second;
}

double SloTracker::DeliveredMBps(TenantId t) const {
  return util::ThroughputMBps(stats(t).bytes, engine_.now() - window_start_);
}

void SloTracker::Reset() {
  stats_.clear();
  window_start_ = engine_.now();
}

std::string SloTracker::TableString(const TenantRegistry& registry) const {
  util::Table table({"tenant", "class", "ops", "rejected", "MB/s",
                     "p50 lat (us)", "p99 lat (us)", "p99 wait (us)"});
  for (const auto& [id, s] : stats_) {
    const Tenant& t = registry.tenant(id);
    table.AddRow({t.name, ServiceClassName(t.cls), util::Table::Cell(s.ops),
                  util::Table::Cell(s.rejected),
                  util::Table::Cell(DeliveredMBps(id), 1),
                  util::Table::Cell(s.latency.Percentile(0.5) / 1000.0, 0),
                  util::Table::Cell(s.latency.Percentile(0.99) / 1000.0, 0),
                  util::Table::Cell(s.queue_wait.Percentile(0.99) / 1000.0,
                                    0)});
  }
  return table.ToString();
}

}  // namespace nlss::qos
