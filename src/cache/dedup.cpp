#include "cache/dedup.h"

#include <utility>

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::cache {
namespace {

/// Race-detector key for a write id: contention is per logical write
/// (original vs hedge copies, payload vs cancel).
inline std::uint64_t RaceKey(const WriteId& id) {
  return check::AccessKey(check::AccessKey(0xDED0ull, id.writer), id.seq);
}

}  // namespace

void WriteDedupIndex::Prune(Writer& w) {
  const auto end = w.entries.lower_bound(w.settled);
  for (auto it = w.entries.begin(); it != end;) {
    it = w.entries.erase(it);
    ++stats_.pruned;
  }
}

bool WriteDedupIndex::Begin(const WriteId& id, Waiter waiter) {
  if (!id.valid()) return true;  // unattributed legacy traffic: no dedup
  Writer& w = writers_[id.writer];
  if (id.settled > w.settled) {
    w.settled = id.settled;
    Prune(w);
  }
  // A settled seq can never arrive again: the cursor only advances once
  // every attempt of the op has resolved (acked, failed, or dropped).
  NLSS_INVARIANT(kCache, id.seq >= w.settled || w.entries.count(id.seq) != 0,
                 "write (%u,%llu) arrived below settled cursor %llu",
                 id.writer, static_cast<unsigned long long>(id.seq),
                 static_cast<unsigned long long>(w.settled));
  auto [it, inserted] = w.entries.try_emplace(id.seq);
  Entry& e = it->second;
  if (inserted) {
    // First arrival claims the apply.  Outcome-dependent mode: the winning
    // insert commutes with other winners (distinct seqs), while a same-tick
    // duplicate records kRead below — a mixed pair is exactly the case
    // where arrival order decided who applies.
    NLSS_ACCESS(kCache, RaceKey(id), kCommute);
    ++stats_.applies;
    return true;
  }
  NLSS_ACCESS(kCache, RaceKey(id), kRead);
  switch (e.state) {
    case State::kInFlight:
      // Original application still running somewhere in the cluster; ack
      // this duplicate when it completes.
      ++stats_.dedup_hits;
      e.waiters.push_back(std::move(waiter));
      return false;
    case State::kApplied:
      ++stats_.dedup_hits;
      if (waiter) waiter(e.ok);
      return false;
    case State::kCancelled:
      // The writer reported this op failed before the payload landed: a
      // ghost write.  Drop it so the read-back matches the failed outcome.
      ++stats_.ghost_writes;
      if (waiter) waiter(false);
      return false;
  }
  return false;  // unreachable
}

void WriteDedupIndex::Complete(const WriteId& id, bool ok) {
  if (!id.valid()) return;
  NLSS_ACCESS(kCache, RaceKey(id), kWrite);
  Writer& w = writers_[id.writer];
  const auto it = w.entries.find(id.seq);
  NLSS_INVARIANT(kCache, it != w.entries.end(),
                 "completion for write (%u,%llu) with no admitted entry",
                 id.writer, static_cast<unsigned long long>(id.seq));
  if (it == w.entries.end()) return;
  Entry& e = it->second;
  if (ok) {
    ++e.applies;
    if (e.applies > 1) ++stats_.double_applies;
    NLSS_INVARIANT(kCache, e.applies <= 1,
                   "write (%u,%llu) applied %u times", id.writer,
                   static_cast<unsigned long long>(id.seq), e.applies);
  }
  if (e.state == State::kCancelled) {
    // Cancel raced the application: the data landed after the writer
    // declared failure.  Keep the tombstone (later copies still drop);
    // the race itself is what the ghost-write counter exists to expose.
    if (ok) ++stats_.late_cancels;
    return;
  }
  if (!ok) {
    // Failed application: forget it so a re-drive applies fresh.
    auto waiters = std::move(e.waiters);
    w.entries.erase(it);
    for (Waiter& f : waiters) {
      if (f) f(false);
    }
    return;
  }
  e.state = State::kApplied;
  e.ok = true;
  auto waiters = std::move(e.waiters);
  e.waiters.clear();
  for (Waiter& f : waiters) {
    if (f) f(true);
  }
}

void WriteDedupIndex::Cancel(const WriteId& id) {
  if (!id.valid()) return;
  NLSS_ACCESS(kCache, RaceKey(id), kWrite);
  ++stats_.cancels;
  Writer& w = writers_[id.writer];
  auto [it, inserted] = w.entries.try_emplace(id.seq);
  Entry& e = it->second;
  if (inserted) {
    // Tombstone ahead of any arrival: the payload is still in the fabric.
    e.state = State::kCancelled;
    return;
  }
  switch (e.state) {
    case State::kInFlight: {
      // Application in progress: mark it; Complete() records the race.
      e.state = State::kCancelled;
      auto waiters = std::move(e.waiters);
      e.waiters.clear();
      for (Waiter& f : waiters) {
        if (f) f(false);
      }
      break;
    }
    case State::kApplied:
      // Already applied before the writer gave up — an unavoidable late
      // cancel (the write IS in the image; the writer reported failure).
      ++stats_.late_cancels;
      break;
    case State::kCancelled:
      break;
  }
}

WriteState WriteDedupIndex::Lookup(const WriteId& id) const {
  if (!id.valid()) return WriteState::kUnknown;
  const auto wit = writers_.find(id.writer);
  if (wit == writers_.end()) return WriteState::kUnknown;
  const auto eit = wit->second.entries.find(id.seq);
  if (eit == wit->second.entries.end()) return WriteState::kUnknown;
  switch (eit->second.state) {
    case State::kInFlight:
      return WriteState::kInFlight;
    case State::kApplied:
      return WriteState::kApplied;
    case State::kCancelled:
      return WriteState::kCancelled;
  }
  return WriteState::kUnknown;  // unreachable
}

std::size_t WriteDedupIndex::entries() const {
  std::size_t n = 0;
  for (const auto& [writer, w] : writers_) n += w.entries.size();
  return n;
}

}  // namespace nlss::cache
