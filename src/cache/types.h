// Shared identifiers for the distributed cache layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace nlss::cache {

/// Identifies one cache page: (volume, page index within volume).
struct PageKey {
  std::uint32_t volume = 0;
  std::uint64_t page = 0;

  friend bool operator==(const PageKey&, const PageKey&) = default;
  friend auto operator<=>(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const {
    // splitmix-style mix of the two fields.
    std::uint64_t x = (static_cast<std::uint64_t>(k.volume) << 48) ^ k.page;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

using ControllerId = std::uint32_t;
inline constexpr ControllerId kNoController = ~0u;

}  // namespace nlss::cache
