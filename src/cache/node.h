// CacheNode: one controller blade's local page cache — frames, LRU
// replacement, pinning.  All coherence decisions live in CacheCluster;
// this class only manages local frame storage.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "cache/dedup.h"
#include "cache/types.h"
#include "util/bytes.h"

namespace nlss::cache {

class CacheNode {
 public:
  struct Frame {
    util::Bytes data;
    bool dirty = false;
    bool busy = false;      // operation (fill/flush) in progress: not evictable
    bool is_replica = false;  // N-way replication copy held for a peer
    ControllerId replica_owner = kNoController;  // valid when is_replica
    std::uint64_t dirty_epoch = 0;  // bumped per write; guards stale flushes
    std::uint8_t priority = 0;  // retention priority (paper §4): evict low first
    // WriteId of the attributed write that last dirtied this frame (invalid
    // for legacy unattributed traffic).  The flush coalescer carries it as
    // the representative (writer, seq) for each page of a merged back-end
    // write, so dedup cancel/ghost-write accounting stays auditable after
    // pages from different writers ride one backing write.
    WriteId last_write;
  };

  explicit CacheNode(std::uint64_t capacity_pages)
      : capacity_pages_(capacity_pages) {}

  /// Lookup; returns nullptr on miss.  Does not touch LRU.
  Frame* Find(const PageKey& key);
  const Frame* Find(const PageKey& key) const;

  /// Move to MRU position.
  void Touch(const PageKey& key);

  /// Insert a new frame (key must be absent).  Caller must have made room.
  Frame& Emplace(const PageKey& key);

  void Erase(const PageKey& key);

  bool Full() const { return frames_.size() >= capacity_pages_; }
  std::size_t size() const { return frames_.size(); }
  std::uint64_t capacity_pages() const { return capacity_pages_; }

  /// LRU-order victim that is neither busy nor a pinned replica.  With
  /// `require_clean`, dirty frames are skipped too (the cluster evicts
  /// clean frames immediately and schedules flushes for dirty ones).
  /// nullopt if nothing qualifies.
  std::optional<PageKey> ChooseVictim(bool require_clean) const;

  /// Drop every frame (controller failure).
  void Clear();

  /// Iterate frames (directory rebuild, replica promotion).  Walks the LRU
  /// list rather than the hash map so visit order is deterministic — the
  /// callbacks feed directory state and therefore the digest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const PageKey& key : lru_) fn(key, frames_.find(key)->second.frame);
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (const PageKey& key : lru_) fn(key, frames_.find(key)->second.frame);
  }

 private:
  struct Entry {
    Frame frame;
    std::list<PageKey>::iterator lru_it;
  };

  std::uint64_t capacity_pages_;
  std::unordered_map<PageKey, Entry, PageKeyHash> frames_;
  std::list<PageKey> lru_;  // front = LRU, back = MRU
};

}  // namespace nlss::cache
