// TierHook: the cache cluster's view of the storage-tier placement engine
// (src/tier).  The interface lives on the cache side so the link layering
// stays acyclic: nlss::tier implements it (and may call back into the
// cluster's public API), while nlss::cache only ever sees this abstract
// hook.  A null hook (the default) keeps the cluster's behavior — and
// every existing digest — bit-identical to the untiered build.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/backing.h"
#include "cache/dedup.h"
#include "cache/node.h"
#include "cache/types.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace nlss::cache {

/// Per-page metadata the flush path hands the tier with a write-back run:
/// the dirty epoch orders the run against concurrent rewrites, the write
/// id keeps the exactly-once audit trail attached to the data.
struct TierPageSnap {
  PageKey key;
  std::uint64_t dirty_epoch = 0;
  WriteId wid;
};

class TierHook {
 public:
  virtual ~TierHook() = default;

  /// Demand read that reached the backing path (no DRAM copy anywhere).
  /// Returns true when the flash tier absorbed the read — `cb` then fires
  /// with the page after the modeled flash access.  False: the caller
  /// falls through to the disk backing store (cb untouched).
  virtual bool TierRead(ControllerId ctrl, const PageKey& key,
                        BackingStore::ReadCallback cb,
                        obs::TraceContext ctx) = 0;

  /// Offer a contiguous dirty write-back run (one backing write's worth of
  /// pages, `data` holds them in order).  Returns true when the flash tier
  /// absorbed the write-back — `cb(true)` fires once the run is durable in
  /// flash, and the tier owns moving it to disk later.  False: the caller
  /// writes to the disk backing store itself.
  virtual bool TierWriteBack(ControllerId ctrl,
                             const std::vector<TierPageSnap>& pages,
                             const util::Bytes& data,
                             BackingStore::WriteCallback cb,
                             obs::TraceContext ctx) = 0;

  /// A clean primary frame is being evicted from DRAM; the tier may spill
  /// the data to flash (warm page) or let it fall through to disk (cold).
  virtual void OnCleanEvict(ControllerId ctrl, const PageKey& key,
                            const util::Bytes& data) = 0;

  /// A disk read completed for a page the tier did not hold: admission /
  /// promotion decision point (heat-gated copy into flash).
  virtual void OnDiskRead(ControllerId ctrl, const PageKey& key,
                          const util::Bytes& data) = 0;

  /// Every page-granular cache access (hit or miss) — feeds the heat
  /// tracker and paces the cooling scans.
  virtual void OnAccess(ControllerId ctrl, const PageKey& key,
                        bool write) = 0;

  /// Heat-aware replacement: pick the coldest evictable clean frame at
  /// `ctrl` (never busy / dirty / replica).  nullopt falls back to the
  /// node's plain LRU choice.
  virtual std::optional<PageKey> PickVictim(ControllerId ctrl,
                                            const CacheNode& node) = 0;

  /// Demote every dirty flash page to disk; cb(true) once the flash tier
  /// holds no dirty data (FlushAll's durability contract).
  virtual void DrainDirty(std::function<void(bool)> cb) = 0;
};

}  // namespace nlss::cache
