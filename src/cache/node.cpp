#include "cache/node.h"

#include <cassert>

namespace nlss::cache {

CacheNode::Frame* CacheNode::Find(const PageKey& key) {
  auto it = frames_.find(key);
  return it == frames_.end() ? nullptr : &it->second.frame;
}

const CacheNode::Frame* CacheNode::Find(const PageKey& key) const {
  auto it = frames_.find(key);
  return it == frames_.end() ? nullptr : &it->second.frame;
}

void CacheNode::Touch(const PageKey& key) {
  auto it = frames_.find(key);
  if (it == frames_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second.lru_it);
}

CacheNode::Frame& CacheNode::Emplace(const PageKey& key) {
  assert(frames_.find(key) == frames_.end());
  lru_.push_back(key);
  auto& entry = frames_[key];
  entry.lru_it = std::prev(lru_.end());
  return entry.frame;
}

void CacheNode::Erase(const PageKey& key) {
  auto it = frames_.find(key);
  if (it == frames_.end()) return;
  lru_.erase(it->second.lru_it);
  frames_.erase(it);
}

std::optional<PageKey> CacheNode::ChooseVictim(bool require_clean) const {
  // Among evictable frames, take the lowest retention priority; ties break
  // by LRU order (the scan is in LRU order, so the first frame seen at the
  // winning priority is the least recently used one).
  std::optional<PageKey> best;
  int best_priority = 256;
  for (const PageKey& key : lru_) {
    const auto it = frames_.find(key);
    const Frame& f = it->second.frame;
    if (f.busy) continue;
    if (f.is_replica) continue;  // replicas are pinned until flushed
    if (require_clean && f.dirty) continue;
    if (f.priority < best_priority) {
      best_priority = f.priority;
      best = key;
      if (best_priority == 0) break;  // cannot do better
    }
  }
  return best;
}

void CacheNode::Clear() {
  frames_.clear();
  lru_.clear();
}

}  // namespace nlss::cache
