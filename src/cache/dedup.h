// Blade-side write idempotency (exactly-once server-side application).
//
// A retried or hedged host write can reach the blades more than once —
// on a different blade, after the host already gave up, or after the host
// already accepted another attempt's ack.  The host-side callback-once
// guard makes completion exactly-once for the *caller*; this index makes
// application exactly-once for the *data image*.
//
// Every attributed write carries a WriteId: a per-writer monotonic
// sequence stamped by the host initiator (or the blade-resident file
// system).  The blades share one coherent index — the same trick that
// lets any blade serve any cached page lets any blade see any in-flight
// write — so a re-drive that lands on a *different* blade still
// deduplicates:
//
//   Begin(id)  ── fresh:      caller applies, then Complete(id, ok)
//              ── in flight:  absorbed; the waiter is acked when the
//                             original application completes
//              ── applied:    absorbed; acked immediately with the
//                             recorded outcome
//              ── cancelled:  ghost write — the writer already reported
//                             this op failed; the stale payload is
//                             dropped, never applied
//
// The index is bounded by a watermark: each WriteId piggybacks the
// writer's settled cursor (every seq below it has completed *and* has no
// attempt still in flight anywhere), and entries below the cursor are
// pruned on arrival.  No background GC, no wall clock — fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace nlss::cache {

/// Idempotency token for one logical write.  `writer` is allocated by the
/// system (one per initiator / file system instance), `seq` is per-writer
/// monotonic starting at 1.  A default-constructed id is invalid and marks
/// unattributed legacy traffic (never deduplicated).
struct WriteId {
  std::uint32_t writer = 0;
  std::uint64_t seq = 0;
  /// Writer's settled cursor: every seq < settled is complete with all of
  /// its attempts resolved, so the blades may forget it.
  std::uint64_t settled = 0;

  bool valid() const { return writer != 0 && seq != 0; }
};

/// Externally visible lifecycle state of one write id (see Lookup).
enum class WriteState : std::uint8_t {
  kUnknown,    // never seen, or already pruned below the settled cursor
  kInFlight,   // an application admitted by Begin is still running
  kApplied,    // applied exactly once; outcome recorded
  kCancelled,  // writer reported failure; tombstoned against late arrivals
};

class WriteDedupIndex {
 public:
  struct Stats {
    std::uint64_t applies = 0;       // fresh applications admitted
    std::uint64_t dedup_hits = 0;    // duplicates absorbed without re-apply
    std::uint64_t double_applies = 0;  // must stay 0 (invariant-checked)
    std::uint64_t ghost_writes = 0;  // payloads dropped: writer reported failure
    std::uint64_t cancels = 0;       // cancel marks received from writers
    std::uint64_t late_cancels = 0;  // cancel raced an application in progress
    std::uint64_t pruned = 0;        // entries retired below the settled cursor
  };

  /// Outcome sink for one arrival; invoked exactly once with the write's
  /// recorded result (possibly synchronously from Begin).
  using Waiter = std::function<void(bool)>;

  /// Admit one arrival of `id`.  Returns true when the caller must apply
  /// the data and report via Complete(id, ok); returns false when the
  /// arrival was absorbed — the index owns `waiter` and delivers the
  /// original application's outcome (false for ghost writes).
  bool Begin(const WriteId& id, Waiter waiter);

  /// Report the outcome of an application admitted by Begin.  A failed
  /// application is forgotten so a later re-drive can apply fresh.
  void Complete(const WriteId& id, bool ok);

  /// Writer-side abandon: the op was reported failed to the caller, so any
  /// copy of it still in flight must not change the data image.  Leaves a
  /// tombstone that drops late arrivals (counted as ghost writes) until
  /// the writer's settled cursor passes the seq.
  void Cancel(const WriteId& id);

  const Stats& stats() const { return stats_; }
  std::size_t entries() const;

  /// Audit query: lifecycle state of `id` as the index currently records
  /// it.  Used by the cache flush coalescer's invariants — a frame dirtied
  /// by a cancelled write id may only exist when the cancel demonstrably
  /// raced the application (late_cancels > 0).
  WriteState Lookup(const WriteId& id) const;

 private:
  enum class State : std::uint8_t { kInFlight, kApplied, kCancelled };
  struct Entry {
    State state = State::kInFlight;
    bool ok = false;             // recorded outcome once kApplied
    std::uint32_t applies = 0;   // successful applications (invariant: <= 1)
    std::vector<Waiter> waiters; // duplicates awaiting the original outcome
  };
  struct Writer {
    std::uint64_t settled = 1;  // every seq < settled is prunable
    std::map<std::uint64_t, Entry> entries;  // ordered: prune is a range erase
  };

  void Prune(Writer& w);

  std::map<std::uint32_t, Writer> writers_;
  Stats stats_;
};

}  // namespace nlss::cache
