#include "cache/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::cache {
namespace {

/// Race-detector key for a page: every NLSS_ACCESS in the cache layer keys
/// on the page identity, the unit the directory protocol serializes on.
inline std::uint64_t RaceKey(const PageKey& key) {
  return PageKeyHash{}(key);
}

struct Join {
  Join(int n, std::function<void(bool)> done)
      : remaining(n), on_done(std::move(done)) {}
  int remaining;
  bool ok = true;
  std::function<void(bool)> on_done;
  void Arrive(bool success) {
    ok = ok && success;
    if (--remaining == 0) on_done(ok);
  }
};

}  // namespace

CacheCluster::CacheCluster(sim::Engine& engine, net::Fabric& fabric,
                           std::vector<net::NodeId> controller_nodes,
                           Config config)
    : engine_(engine), fabric_(fabric), config_(config) {
  assert(!controller_nodes.empty());
  assert(config_.replication >= 1);
  for (std::size_t i = 0; i < controller_nodes.size(); ++i) {
    ctrls_.push_back(std::make_unique<Controller>(
        controller_nodes[i], config_.node_capacity_pages, engine_));
    live_.push_back(static_cast<ControllerId>(i));
  }
  dir_.resize(ctrls_.size());
  extra_.resize(ctrls_.size());
}

void CacheCluster::RegisterVolume(std::uint32_t volume, BackingStore* backing) {
  assert(backing != nullptr);
  assert(config_.page_bytes % backing->block_size() == 0);
  volumes_[volume] = backing;
}

ControllerId CacheCluster::HomeOf(const PageKey& key) const {
  assert(!live_.empty());
  return live_[PageKeyHash{}(key) % live_.size()];
}

std::uint32_t CacheCluster::PageBlocks(std::uint32_t volume) const {
  return config_.page_bytes / volumes_.at(volume)->block_size();
}

void CacheCluster::Msg(ControllerId from, ControllerId to, std::uint64_t bytes,
                       std::function<void()> delivered, Failure on_drop,
                       obs::TraceContext ctx) {
  fabric_.Send(ctrls_[from]->node, ctrls_[to]->node, bytes,
               std::move(delivered), std::move(on_drop), ctx);
}

net::Fabric::Outbound CacheCluster::Out(ControllerId from, ControllerId to,
                                        std::uint64_t bytes,
                                        std::function<void()> delivered,
                                        Failure on_drop,
                                        obs::TraceContext ctx) {
  return net::Fabric::Outbound{.src = ctrls_[from]->node,
                               .dst = ctrls_[to]->node,
                               .bytes = bytes,
                               .on_delivered = std::move(delivered),
                               .on_dropped = std::move(on_drop),
                               .ctx = ctx};
}

// --- Directory entry serialization ------------------------------------------

void CacheCluster::AcquireEntry(ControllerId home, const PageKey& key,
                                std::function<void()> fn) {
  DirEntry& e = dir_[home][key];
  if (e.busy) {
    e.waiters.push_back(std::move(fn));
  } else {
    e.busy = true;
    engine_.Schedule(0, std::move(fn));
  }
}

void CacheCluster::ReleaseEntry(ControllerId home, const PageKey& key) {
  auto it = dir_[home].find(key);
  if (it == dir_[home].end()) return;
  DirEntry& e = it->second;
  if (!e.busy) return;  // tolerated: stale release after directory rebuild
  if (!e.waiters.empty()) {
    auto next = std::move(e.waiters.front());
    e.waiters.pop_front();
    engine_.Schedule(0, std::move(next));
    return;
  }
  e.busy = false;
  if (e.owner == kNoController && e.sharers.empty()) {
    dir_[home].erase(it);
  }
}

// --- Frame bookkeeping -------------------------------------------------------

CacheCluster::FrameExtra& CacheCluster::Extra(ControllerId ctrl,
                                              const PageKey& key) {
  return extra_[ctrl][key];
}

void CacheCluster::EraseExtra(ControllerId ctrl, const PageKey& key) {
  extra_[ctrl].erase(key);
}

bool CacheCluster::DirtyElsewhere(ControllerId except,
                                  const PageKey& key) const {
  for (std::size_t c = 0; c < ctrls_.size(); ++c) {
    if (static_cast<ControllerId>(c) == except || !ctrls_[c]->alive) continue;
    const CacheNode::Frame* f = ctrls_[c]->cache.Find(key);
    if (f != nullptr && f->dirty && !f->is_replica) return true;
  }
  return false;
}

void CacheCluster::EnsureRoom(ControllerId ctrl) {
  CacheNode& cache = ctrls_[ctrl]->cache;
  while (cache.Full()) {
    // Prefer clean victims: evict immediately.  With a tier attached the
    // victim is the coldest clean frame (tracked heat) instead of plain
    // LRU, and its data is offered to the flash tier on the way out.
    std::optional<PageKey> victim;
    if (tier_ != nullptr) victim = tier_->PickVictim(ctrl, cache);
    if (!victim) victim = cache.ChooseVictim(/*require_clean=*/true);
    if (victim) {
      if (tier_ != nullptr) {
        const CacheNode::Frame* vf = cache.Find(*victim);
        if (vf != nullptr) tier_->OnCleanEvict(ctrl, *victim, vf->data);
      }
      // Local frame lifecycle, keyed per controller: the victim was
      // re-checked clean in THIS event (atomic), and a clean frame is
      // never the sole copy, so erasing it commutes with directory-
      // serialized content traffic on the page.  Only another touch of
      // this controller's frame table for the page would conflict.
      NLSS_ACCESS(kCache, check::AccessKey(ctrl, RaceKey(*victim)), kWrite);
      cache.Erase(*victim);
      EraseExtra(ctrl, *victim);
      ++ctrls_[ctrl]->stats.evictions;
      continue;
    }
    // Otherwise kick a write-back of the LRU dirty frame and allow a
    // temporary overcommit; the frame becomes evictable once clean.
    if (auto dirty = cache.ChooseVictim(/*require_clean=*/false)) {
      FlushPage(ctrl, *dirty);
    }
    break;
  }
}

CacheNode::Frame& CacheCluster::InstallFrame(ControllerId ctrl,
                                             const PageKey& key,
                                             util::Bytes data) {
  CacheNode& cache = ctrls_[ctrl]->cache;
  CacheNode::Frame* f = cache.Find(key);
  if (f == nullptr) {
    EnsureRoom(ctrl);
    f = &cache.Emplace(key);
  }
  f->data = std::move(data);
  cache.Touch(key);
  return *f;
}

// --- Backing I/O -------------------------------------------------------------

void CacheCluster::ReadFromBacking(ControllerId ctrl, PageKey key,
                                   BackingStore::ReadCallback cb,
                                   obs::TraceContext ctx) {
  // Flash tier sits in front of the disk backing store: a tier hit serves
  // the page at NVMe latency and never touches the FC feed or the disks.
  // (cb is passed by value; on a miss the hook leaves it unconsumed.)
  if (tier_ != nullptr && tier_->TierRead(ctrl, key, cb, ctx)) return;
  BackingStore* vol = volumes_.at(key.volume);
  const std::uint32_t pb = PageBlocks(key.volume);
  const std::uint64_t block = key.page * pb;
  if (block >= vol->CapacityBlocks()) {
    engine_.Schedule(0, [cb = std::move(cb), this] {
      cb(true, util::Bytes(config_.page_bytes, 0));
    });
    return;
  }
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(pb, vol->CapacityBlocks() - block));
  vol->ReadBlocks(block, count,
                  [this, ctrl, key, cb = std::move(cb)](
                      bool ok, util::Bytes data) mutable {
                    if (ok && data.size() < config_.page_bytes) {
                      data.resize(config_.page_bytes, 0);
                    }
                    // Promotion-on-reheat decision point: the tier may
                    // admit a hot disk-read page into flash.
                    if (ok && tier_ != nullptr) {
                      tier_->OnDiskRead(ctrl, key, data);
                    }
                    if (!ok || config_.fc_ns_per_byte <= 0.0) {
                      cb(ok, std::move(data));
                      return;
                    }
                    // Disk->blade transfer over the controller's FC feed.
                    const sim::Tick done = ctrls_[ctrl]->fc.AcquireBytes(
                        data.size(), config_.fc_ns_per_byte);
                    engine_.ScheduleAt(done, [cb = std::move(cb),
                                              data = std::move(data)]() mutable {
                      cb(true, std::move(data));
                    });
                  },
                  ctx);
}

void CacheCluster::WriteToBacking(ControllerId ctrl, PageKey key,
                                  const util::Bytes& data,
                                  BackingStore::WriteCallback cb,
                                  obs::TraceContext ctx) {
  BackingStore* vol = volumes_.at(key.volume);
  const std::uint64_t block = key.page * PageBlocks(key.volume);
  if (block >= vol->CapacityBlocks()) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(true); });
    return;
  }
  // `data` may span several pages (flush coalescing): the block count is
  // derived from the payload, clamped to capacity like single-page writes.
  const std::uint64_t data_blocks = data.size() / vol->block_size();
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(data_blocks, vol->CapacityBlocks() - block));
  ++ctrls_[ctrl]->stats.backing_writes;
  auto issue = [vol, block, count, ctx,
                snapshot = util::Bytes(
                    data.begin(),
                    data.begin() + static_cast<std::ptrdiff_t>(
                                       static_cast<std::size_t>(count) *
                                       vol->block_size())),
                cb = std::move(cb)]() mutable {
    vol->WriteBlocks(block, snapshot, std::move(cb), ctx);
  };
  if (config_.fc_ns_per_byte <= 0.0) {
    issue();
    return;
  }
  const sim::Tick done = ctrls_[ctrl]->fc.AcquireBytes(
      static_cast<std::uint64_t>(count) * vol->block_size(),
      config_.fc_ns_per_byte);
  engine_.ScheduleAt(done, std::move(issue));
}

// --- Flush -------------------------------------------------------------------

void CacheCluster::FlushPage(ControllerId ctrl, PageKey key,
                             std::function<void(bool)> cb) {
  Controller& c = *ctrls_[ctrl];
  CacheNode::Frame* f = c.cache.Find(key);
  if (f == nullptr || !f->dirty) {
    if (cb) engine_.Schedule(0, [cb = std::move(cb)] { cb(true); });
    return;
  }
  FrameExtra& ex = Extra(ctrl, key);
  if (ex.flushing) {
    // Chain behind the in-flight flush, then re-check dirtiness.
    ex.flush_waiters.push_back([this, ctrl, key, cb = std::move(cb)]() mutable {
      FlushPage(ctrl, key, std::move(cb));
    });
    return;
  }
  FlushRun(ctrl, BuildFlushRun(ctrl, key), std::move(cb));
}

std::vector<PageKey> CacheCluster::BuildFlushRun(ControllerId ctrl,
                                                 const PageKey& seed) {
  std::vector<PageKey> run{seed};
  if (config_.coalesce_pages <= 1) return run;
  // A neighbor may ride the run when it would be flushable on its own:
  // dirty primary copy, not mid-operation, and not already being flushed.
  auto flushable = [&](const PageKey& k) {
    const CacheNode::Frame* f = ctrls_[ctrl]->cache.Find(k);
    if (f == nullptr || !f->dirty || f->busy || f->is_replica) return false;
    const auto it = extra_[ctrl].find(k);
    return it == extra_[ctrl].end() || !it->second.flushing;
  };
  for (std::uint64_t p = seed.page + 1;
       run.size() < config_.coalesce_pages &&
       flushable(PageKey{seed.volume, p});
       ++p) {
    run.push_back(PageKey{seed.volume, p});
  }
  std::uint64_t lo = seed.page;
  while (lo > 0 && run.size() < config_.coalesce_pages &&
         flushable(PageKey{seed.volume, lo - 1})) {
    --lo;
    run.insert(run.begin(), PageKey{seed.volume, lo});
  }
  return run;
}

void CacheCluster::FlushRun(ControllerId ctrl, std::vector<PageKey> run,
                            std::function<void(bool)> cb) {
  Controller& c = *ctrls_[ctrl];
  struct PageSnap {
    PageKey key;
    std::uint64_t epoch = 0;
    WriteId wid;  // representative (writer, seq) flushed for this page
  };
  auto snaps = std::make_shared<std::vector<PageSnap>>();
  util::Bytes data;
  data.reserve(run.size() * config_.page_bytes);
  for (std::size_t i = 0; i < run.size(); ++i) {
    const PageKey& k = run[i];
    NLSS_INVARIANT(kCache,
                   k.volume == run.front().volume &&
                       k.page == run.front().page + i,
                   "coalesced flush run not contiguous at index %zu", i);
    CacheNode::Frame* f = c.cache.Find(k);
    // Ghost-write audit: a frame dirtied by a cancelled write id can only
    // exist when the cancel demonstrably raced the application (counted
    // as a late cancel) — a cancel that arrived first must have dropped
    // the payload before it ever reached the write-back path.
    if (dedup_ != nullptr && f->last_write.valid()) {
      NLSS_INVARIANT(kCache,
                     dedup_->Lookup(f->last_write) != WriteState::kCancelled ||
                         dedup_->stats().late_cancels > 0,
                     "flushing page dirtied by cancelled write (%u,%llu)",
                     f->last_write.writer,
                     static_cast<unsigned long long>(f->last_write.seq));
    }
    // The snapshot pins the frame (busy) and fixes which epoch this flush
    // settles.  Epoch-guarded domain: a same-tick content write lands
    // before the snapshot (flushed now) or after it (epoch bump → redo at
    // settle) — both orders leave the same durable state.  Two snapshots
    // of one page would be a real conflict and share this key.
    NLSS_ACCESS(kCache, check::EpochGuardedKey(RaceKey(k)), kWrite);
    Extra(ctrl, k).flushing = true;
    f->busy = true;
    snaps->push_back(PageSnap{k, f->dirty_epoch, f->last_write});
    data.insert(data.end(), f->data.begin(), f->data.end());
  }
  if (run.size() > 1) {
    ++c.stats.coalesced_runs;
    c.stats.coalesced_pages += run.size();
  }
  // Background write-backs get their own root span — they never ride on a
  // request trace, so without this they are invisible in the trace view.
  obs::TraceContext flush_ctx;
  if (tracer_ != nullptr) {
    flush_ctx = tracer_->StartTrace(obs::Layer::kOther, "cache.flush");
    if (flush_ctx.sampled()) {
      tracer_->Annotate(flush_ctx, "ctrl=" + std::to_string(ctrl));
      if (snaps->size() > 1) {
        // Representative (writer, seq) range the merged write covers, so
        // a trace of a coalesced flush stays attributable to host writes.
        std::uint64_t lo = 0, hi = 0;
        std::uint32_t writer = 0;
        for (const PageSnap& s : *snaps) {
          if (!s.wid.valid()) continue;
          if (lo == 0 || s.wid.seq < lo) lo = s.wid.seq;
          if (s.wid.seq > hi) hi = s.wid.seq;
          writer = s.wid.writer;
        }
        tracer_->Annotate(flush_ctx,
                          "coalesced=" + std::to_string(snaps->size()) +
                              " writer=" + std::to_string(writer) + " seq=[" +
                              std::to_string(lo) + "," + std::to_string(hi) +
                              "]");
      }
    }
  }
  // Charge the owning controller's data engine for the write-back.
  const sim::Tick compute_done =
      c.compute.AcquireBytes(data.size(), config_.serve_ns_per_byte);
  engine_.ScheduleAt(compute_done, [this, ctrl, flush_ctx, snaps,
                                    data = std::move(data),
                                    cb = std::move(cb)]() mutable {
    // Settling is identical whether the run landed on disk or was absorbed
    // by the flash tier: either way the data is durable below DRAM, so the
    // replicas release and the frames go clean (epoch-checked).
    std::function<void(bool)> settle = [this, ctrl, snaps, flush_ctx,
                                        cb = std::move(cb)](bool ok) mutable {
      Controller& c = *ctrls_[ctrl];
      std::vector<PageKey> redo;
      for (const PageSnap& s : *snaps) {
        const PageKey key = s.key;
        // Epoch-guarded: the dirty_epoch check below re-validates the
        // snapshot, so settling converges whether a same-tick content
        // write runs before (redo) or after (re-dirty) this event.  Only
        // a second GUARDED transition on the same page is a race.
        NLSS_ACCESS(kCache, check::EpochGuardedKey(RaceKey(key)), kWrite);
        CacheNode::Frame* f = c.cache.Find(key);
        FrameExtra& ex = Extra(ctrl, key);
        ++c.stats.flushes;
        bool still_dirty = false;
        if (f != nullptr) {
          if (ok && f->dirty_epoch == s.epoch) {
            // Flush-ordering: an unchanged dirty epoch means no write
            // landed since the snapshot, so the representative id the run
            // carried must still be the frame's — a write id that moved
            // without an epoch bump would mark data clean that the dedup
            // index still accounts as unflushed.
            NLSS_INVARIANT(kCache,
                           f->last_write.writer == s.wid.writer &&
                               f->last_write.seq == s.wid.seq,
                           "frame write id changed without a dirty-epoch "
                           "bump (page %llu)",
                           static_cast<unsigned long long>(key.page));
            f->dirty = false;
            // Release the N-way replicas now that the data is on disk —
            // one batched fabric send for the whole replica set.
            std::vector<net::Fabric::Outbound> releases;
            for (const ControllerId site : ex.replica_sites) {
              if (!ctrls_[site]->alive) continue;
              releases.push_back(Out(
                  ctrl, site, config_.ctrl_msg_bytes,
                  [this, site, key, ctrl] {
                    CacheNode::Frame* rf = ctrls_[site]->cache.Find(key);
                    if (rf != nullptr && rf->is_replica &&
                        rf->replica_owner == ctrl) {
                      ctrls_[site]->cache.Erase(key);
                      EraseExtra(site, key);
                    }
                  }));
            }
            if (!releases.empty()) fabric_.SendBatch(std::move(releases));
            ex.replica_sites.clear();
          } else if (f->dirty) {
            still_dirty = true;  // re-written during the flush, or I/O error
          }
          f->busy = false;
        }
        ex.flushing = false;
        auto waiters = std::move(ex.flush_waiters);
        ex.flush_waiters.clear();
        engine_.ScheduleBatch(0, waiters);
        if (still_dirty) redo.push_back(key);
      }
      if (flush_ctx.sampled()) {
        flush_ctx.tracer->EndTrace(flush_ctx, ok && redo.empty());
      }
      if (redo.empty()) {
        if (cb) cb(ok);
        return;
      }
      // Pages re-written mid-flight go around again; cb follows them.
      auto join = std::make_shared<Join>(
          static_cast<int>(redo.size()),
          [cb = std::move(cb)](bool all_ok) {
            if (cb) cb(all_ok);
          });
      for (const PageKey& key : redo) {
        FlushPage(ctrl, key, [join](bool r) { join->Arrive(r); });
      }
    };
    if (tier_ != nullptr) {
      std::vector<TierPageSnap> tier_snaps;
      tier_snaps.reserve(snaps->size());
      for (const PageSnap& s : *snaps) {
        tier_snaps.push_back(TierPageSnap{s.key, s.epoch, s.wid});
      }
      if (tier_->TierWriteBack(ctrl, tier_snaps, data, settle, flush_ctx)) {
        return;
      }
    }
    WriteToBacking(ctrl, snaps->front().key, data, std::move(settle),
                   flush_ctx);
  });
}

void CacheCluster::FlushAll(WriteCallback cb) {
  // With a tier attached, DRAM write-backs may have been absorbed by
  // flash; FlushAll's durability contract ("every dirty page on backing")
  // extends through the tier, so drain dirty flash pages to disk after
  // the DRAM pass settles.
  WriteCallback finish = [this, cb = std::move(cb)](bool ok) {
    if (tier_ == nullptr) {
      cb(ok);
      return;
    }
    tier_->DrainDirty([cb, ok](bool drained) { cb(ok && drained); });
  };
  std::vector<std::pair<ControllerId, PageKey>> dirty;
  for (const ControllerId c : live_) {
    ctrls_[c]->cache.ForEach([&](const PageKey& key,
                                 const CacheNode::Frame& f) {
      if (f.dirty) dirty.emplace_back(c, key);
    });
  }
  if (dirty.empty()) {
    engine_.Schedule(0, [finish = std::move(finish)] { finish(true); });
    return;
  }
  auto join = std::make_shared<Join>(static_cast<int>(dirty.size()),
                                     std::move(finish));
  for (const auto& [c, key] : dirty) {
    FlushPage(c, key, [join](bool ok) { join->Arrive(ok); });
  }
}

// --- Fetch / invalidate / replicate ------------------------------------------

void CacheCluster::FetchCurrent(ControllerId via, PageKey key,
                                std::function<void(bool, util::Bytes)> cb,
                                obs::TraceContext ctx) {
  const ControllerId home = HomeOf(key);
  DirEntry& e = dir_[home][key];
  ControllerId source = kNoController;
  if (e.owner != kNoController && ctrls_[e.owner]->alive && e.owner != via) {
    source = e.owner;
  } else {
    for (const ControllerId s : e.sharers) {
      if (s != via && ctrls_[s]->alive) {
        source = s;
        break;
      }
    }
  }

  auto shared_cb = std::make_shared<std::function<void(bool, util::Bytes)>>(
      std::move(cb));

  auto backing_path = [this, via, home, key, shared_cb, ctx]() mutable {
    ReadFromBacking(
        home, key,
        [this, via, home, shared_cb, ctx](bool ok,
                                          util::Bytes data) mutable {
          if (!ok) {
            (*shared_cb)(false, {});
            return;
          }
          const sim::Tick done = ctrls_[home]->compute.AcquireBytes(
              config_.page_bytes, config_.serve_ns_per_byte);
          ctrls_[home]->stats.bytes_served += config_.page_bytes;
          engine_.ScheduleAt(done, [this, via, home, data = std::move(data),
                                    shared_cb, ctx]() mutable {
            if (home == via) {
              (*shared_cb)(true, std::move(data));
              return;
            }
            auto shared_data = std::make_shared<util::Bytes>(std::move(data));
            Msg(home, via, config_.page_bytes,
                [shared_data, shared_cb] {
                  (*shared_cb)(true, std::move(*shared_data));
                },
                [shared_cb] { (*shared_cb)(false, {}); }, ctx);
          });
        },
        ctx);
  };

  if (source == kNoController) {
    backing_path();
    return;
  }

  // Control hop home->source, then data hop source->via.  A sampled request
  // gets a coherence-forward span covering both hops plus the source's
  // data-engine time.
  const obs::TraceContext fwd =
      obs::StartSpan(ctx, obs::Layer::kCache, "cache.forward");
  Msg(home, source, config_.ctrl_msg_bytes,
      [this, via, source, key, shared_cb, backing_path, fwd]() mutable {
        CacheNode::Frame* f = ctrls_[source]->cache.Find(key);
        if (f == nullptr) {
          obs::EndSpan(fwd);
          backing_path();  // frame evicted while the request was in flight
          return;
        }
        const sim::Tick done = ctrls_[source]->compute.AcquireBytes(
            config_.page_bytes, config_.serve_ns_per_byte);
        ctrls_[source]->stats.bytes_served += config_.page_bytes;
        auto data = std::make_shared<util::Bytes>(f->data);
        engine_.ScheduleAt(done, [this, source, via, data, shared_cb, fwd] {
          Msg(source, via, config_.page_bytes,
              [data, shared_cb, fwd] {
                obs::EndSpan(fwd);
                (*shared_cb)(true, std::move(*data));
              },
              [shared_cb, fwd] {
                obs::EndSpan(fwd);
                (*shared_cb)(false, {});
              },
              fwd);
        });
      },
      [shared_cb, fwd] {
        obs::EndSpan(fwd);
        (*shared_cb)(false, {});
      },
      fwd);
}

void CacheCluster::InvalidateHolders(ControllerId except, PageKey key,
                                     std::function<void()> done,
                                     obs::TraceContext ctx) {
  const ControllerId home = HomeOf(key);
  DirEntry& e = dir_[home][key];
  std::vector<ControllerId> holders;
  if (e.owner != kNoController && e.owner != except &&
      ctrls_[e.owner]->alive) {
    holders.push_back(e.owner);
  }
  for (const ControllerId s : e.sharers) {
    if (s != except && ctrls_[s]->alive) holders.push_back(s);
  }
  e.owner = kNoController;
  e.sharers.clear();
  if (holders.empty()) {
    engine_.Schedule(0, std::move(done));
    return;
  }
  auto join = std::make_shared<Join>(
      static_cast<int>(holders.size()),
      [done = std::move(done)](bool) { done(); });

  for (const ControllerId h : holders) {
    Msg(home, h, config_.ctrl_msg_bytes,
        [this, h, home, key, join, ctx] {
          // Local invalidation at h.  Deferred while a flush is in flight
          // so the on-disk image never goes backwards in time.
          std::function<void()> inv = [this, h, home, key, join, ctx] {
            CacheNode::Frame* f = ctrls_[h]->cache.Find(key);
            if (f != nullptr) {
              FrameExtra& ex = Extra(h, key);
              if (ex.flushing) {
                ex.flush_waiters.push_back([this, h, home, key, join, ctx] {
                  // Retry the invalidation after the flush completes.
                  CacheNode::Frame* f2 = ctrls_[h]->cache.Find(key);
                  if (f2 != nullptr) {
                    DropFrameWithReplicas(h, key);
                  }
                  Msg(h, home, config_.ctrl_msg_bytes,
                      [join] { join->Arrive(true); },
                      [join] { join->Arrive(true); }, ctx);
                });
                return;
              }
              DropFrameWithReplicas(h, key);
            }
            ++ctrls_[h]->stats.invalidations_received;
            Msg(h, home, config_.ctrl_msg_bytes,
                [join] { join->Arrive(true); },
                [join] { join->Arrive(true); }, ctx);
          };
          inv();
        },
        [join] { join->Arrive(true); }, ctx);
  }
}

void CacheCluster::DropFrameWithReplicas(ControllerId ctrl,
                                         const PageKey& key) {
  FrameExtra& ex = Extra(ctrl, key);
  // Unpin any replicas this (former) owner parked on peers.
  for (const ControllerId site : ex.replica_sites) {
    if (!ctrls_[site]->alive) continue;
    Msg(ctrl, site, config_.ctrl_msg_bytes,
        [this, site, key, ctrl] {
          CacheNode::Frame* rf = ctrls_[site]->cache.Find(key);
          if (rf != nullptr && rf->is_replica && rf->replica_owner == ctrl) {
            ctrls_[site]->cache.Erase(key);
            EraseExtra(site, key);
          }
        },
        nullptr);
  }
  ctrls_[ctrl]->cache.Erase(key);
  EraseExtra(ctrl, key);
}

void CacheCluster::ReplicateDirty(ControllerId owner_ctrl, PageKey key,
                                  std::uint32_t replication,
                                  std::function<void()> done,
                                  obs::TraceContext ctx) {
  // If an eviction-triggered flush already landed this page, replication
  // would pin copies nobody will ever release — skip it.
  {
    CacheNode::Frame* f = ctrls_[owner_ctrl]->cache.Find(key);
    if (f == nullptr || !f->dirty) {
      engine_.Schedule(0, std::move(done));
      return;
    }
  }
  // Pick the next N-1 live controllers after the owner, ring order.
  std::vector<ControllerId> targets;
  if (replication > 1 && live_.size() > 1) {
    const auto it = std::find(live_.begin(), live_.end(), owner_ctrl);
    std::size_t pos = it == live_.end()
                          ? 0
                          : static_cast<std::size_t>(it - live_.begin());
    for (std::size_t k = 1;
         k < live_.size() && targets.size() + 1 < replication; ++k) {
      const ControllerId t = live_[(pos + k) % live_.size()];
      if (t != owner_ctrl) targets.push_back(t);
    }
  }
  FrameExtra& ex = Extra(owner_ctrl, key);
  // Unpin replicas at sites no longer targeted (membership changes).
  for (const ControllerId old : ex.replica_sites) {
    if (std::find(targets.begin(), targets.end(), old) != targets.end()) {
      continue;
    }
    if (!ctrls_[old]->alive) continue;
    Msg(owner_ctrl, old, config_.ctrl_msg_bytes,
        [this, old, key, owner_ctrl] {
          CacheNode::Frame* rf = ctrls_[old]->cache.Find(key);
          if (rf != nullptr && rf->is_replica &&
              rf->replica_owner == owner_ctrl) {
            ctrls_[old]->cache.Erase(key);
            EraseExtra(old, key);
          }
        },
        nullptr);
  }
  ex.replica_sites = targets;
  if (targets.empty()) {
    engine_.Schedule(0, std::move(done));
    return;
  }
  CacheNode::Frame* f = ctrls_[owner_ctrl]->cache.Find(key);
  assert(f != nullptr);
  auto data = std::make_shared<util::Bytes>(f->data);
  auto join = std::make_shared<Join>(
      static_cast<int>(targets.size()),
      [done = std::move(done)](bool) { done(); });
  std::vector<net::Fabric::Outbound> copies;
  copies.reserve(targets.size());
  for (const ControllerId t : targets) {
    copies.push_back(Out(
        owner_ctrl, t, config_.page_bytes,
        [this, t, key, owner_ctrl, data, join, ctx] {
          CacheNode::Frame& rf = InstallFrame(t, key, *data);
          rf.is_replica = true;
          rf.replica_owner = owner_ctrl;
          rf.dirty = false;
          Msg(t, owner_ctrl, config_.ctrl_msg_bytes,
              [join] { join->Arrive(true); },
              [join] { join->Arrive(true); }, ctx);
        },
        [join] { join->Arrive(false); }, ctx));
  }
  fabric_.SendBatch(std::move(copies));
}

// --- GETS / GETX --------------------------------------------------------------

void CacheCluster::HandleGetS(ControllerId via, PageKey key,
                              std::uint8_t priority,
                              std::function<void(bool, util::Bytes)> cb,
                              obs::TraceContext ctx) {
  const ControllerId home = HomeOf(key);
  auto finish = [this, via, home, key, priority, cb = std::move(cb)](
                    bool ok, util::Bytes data) mutable {
    if (ok) {
      CacheNode::Frame& f = InstallFrame(via, key, std::move(data));
      f.priority = std::max(f.priority, priority);
      DirEntry& e = dir_[home][key];
      if (e.owner != via) e.sharers.insert(via);
      ReleaseEntry(home, key);
      cb(true, f.data);
    } else {
      ReleaseEntry(home, key);
      cb(false, {});
    }
  };
  // Classify hit type for stats before fetching.
  {
    DirEntry& e = dir_[home][key];
    const bool someone_has_it =
        (e.owner != kNoController && ctrls_[e.owner]->alive) ||
        std::any_of(e.sharers.begin(), e.sharers.end(), [&](ControllerId s) {
          return s != via && ctrls_[s]->alive;
        });
    if (someone_has_it) {
      ++ctrls_[via]->stats.remote_hits;
      obs::Annotate(ctx, "remote_hit");
    } else {
      ++ctrls_[via]->stats.misses;
      obs::Annotate(ctx, "miss");
    }
  }
  FetchCurrent(via, key, std::move(finish), ctx);
}

void CacheCluster::HandleGetX(ControllerId via, PageKey key,
                              std::uint32_t offset, util::Bytes data,
                              std::uint32_t replication, std::uint8_t priority,
                              WriteCallback cb, obs::TraceContext ctx,
                              WriteId wid) {
  const ControllerId home = HomeOf(key);
  const bool full_page =
      offset == 0 && data.size() == config_.page_bytes;

  auto fail = [this, home, key, cb](const char*) {
    ReleaseEntry(home, key);
    cb(false);
  };

  // Step 3 onwards, once we know the page's base content.
  auto apply = [this, via, home, key, offset, data = std::move(data),
                replication, priority, cb, ctx, wid,
                fail](util::Bytes base) mutable {
    InvalidateHolders(
        via, key,
        [this, via, home, key, offset, data = std::move(data), replication,
         priority, cb, ctx, wid, base = std::move(base)]() mutable {
          CacheNode::Frame& f = InstallFrame(via, key, std::move(base));
          std::memcpy(f.data.data() + offset, data.data(), data.size());
          f.priority = std::max(f.priority, priority);
          f.dirty = true;
          f.is_replica = false;
          f.replica_owner = kNoController;
          ++f.dirty_epoch;
          // Every write moves the representative id with the epoch —
          // including invalid ids from unattributed legacy traffic, so a
          // stale (writer, seq) never outlives the data it described.
          f.last_write = wid;
          DirEntry& e = dir_[home][key];
          // Holders were just invalidated: the new owner must be the only
          // node carrying this page dirty, and ownership transfer only
          // moves forward in simulated time.
          NLSS_INVARIANT(kCache, !DirtyElsewhere(via, key),
                         "page dirty on two nodes (new owner %u)",
                         static_cast<unsigned>(via));
          NLSS_INVARIANT(kCache, engine_.now() >= e.owner_since,
                         "ownership transfer went backwards: now=%llu "
                         "owner_since=%llu",
                         static_cast<unsigned long long>(engine_.now()),
                         static_cast<unsigned long long>(e.owner_since));
          e.owner = via;
          e.owner_since = engine_.now();
          e.sharers.clear();
          ctrls_[via]->stats.bytes_served += data.size();
          const sim::Tick done = ctrls_[via]->compute.AcquireBytes(
              data.size(), config_.serve_ns_per_byte);
          engine_.ScheduleAt(done, [this, via, home, key, replication, cb,
                                    ctx] {
            ReplicateDirty(
                via, key, replication,
                [this, via, home, key, cb] {
                  ReleaseEntry(home, key);
                  cb(true);
                  // Write-back: flush after the configured aging delay.  The
                  // page may be re-written or flushed by eviction pressure
                  // meanwhile; FlushPage no-ops if it finds the frame clean.
                  if (config_.flush_delay_ns == 0) {
                    FlushPage(via, key);
                  } else {
                    engine_.Schedule(config_.flush_delay_ns, [this, via, key] {
                      if (ctrls_[via]->alive) FlushPage(via, key);
                    });
                  }
                },
                ctx);
          });
        },
        ctx);
  };

  CacheNode::Frame* f_via = ctrls_[via]->cache.Find(key);
  if (f_via != nullptr) {
    // Current content already present locally (shared, owned, or replica —
    // replicas always carry the owner's latest write).
    apply(f_via->data);
    return;
  }
  if (full_page) {
    apply(util::Bytes(config_.page_bytes, 0));
    return;
  }
  FetchCurrent(
      via, key,
      [apply = std::move(apply), fail](bool ok, util::Bytes base) mutable {
        if (!ok) {
          fail("fetch");
          return;
        }
        apply(std::move(base));
      },
      ctx);
}

// --- Page-level API -----------------------------------------------------------

void CacheCluster::MaybeReadahead(ControllerId via, PageKey key) {
  if (config_.readahead_pages == 0) return;
  const BackingStore* vol = volumes_.at(key.volume);
  const std::uint64_t last_page =
      (vol->CapacityBytes() + config_.page_bytes - 1) / config_.page_bytes;
  for (std::uint32_t i = 1; i <= config_.readahead_pages; ++i) {
    const PageKey next{key.volume, key.page + i};
    if (next.page >= last_page) break;
    if (ctrls_[via]->cache.Find(next) != nullptr) continue;
    if (readahead_inflight_.count(next) > 0) continue;
    readahead_inflight_[next] = true;
    ReadPage(via, next,
             [this, next](bool, util::Bytes) {
               readahead_inflight_.erase(next);
             },
             /*demand=*/false);
  }
}

void CacheCluster::ReadPage(ControllerId via, PageKey key,
                            std::function<void(bool, util::Bytes)> cb,
                            bool demand, std::uint8_t priority,
                            obs::TraceContext ctx) {
  Controller& c = *ctrls_[via];
  if (!c.alive) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false, {}); });
    return;
  }
  ++c.stats.ops;
  if (tier_ != nullptr) tier_->OnAccess(via, key, /*write=*/false);
  // Per-page span: holds the hit/miss classification, ends when the page is
  // delivered.
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kCache, "cache.page");
  CacheNode::Frame* f = c.cache.Find(key);
  if (f != nullptr) {
    // Local hit serves the frame synchronously in this event; order vs any
    // same-tick mutation of the page decides which data is returned.
    NLSS_ACCESS(kCache, RaceKey(key), kRead);
    ++c.stats.local_hits;
    obs::Annotate(span, "local_hit");
    c.stats.bytes_served += config_.page_bytes;
    c.cache.Touch(key);
    f->priority = std::max(f->priority, priority);
    util::Bytes copy = f->data;
    const sim::Tick compute_done =
        c.compute.AcquireBytes(config_.page_bytes, config_.serve_ns_per_byte);
    const sim::Tick when =
        std::max(compute_done, engine_.now() + config_.local_access_ns);
    engine_.ScheduleAt(when, [cb = std::move(cb), span,
                              copy = std::move(copy)]() mutable {
      obs::EndSpan(span);
      cb(true, std::move(copy));
    });
    return;
  }
  if (demand) MaybeReadahead(via, key);
  const ControllerId home = HomeOf(key);
  auto shared_cb = std::make_shared<std::function<void(bool, util::Bytes)>>(
      [span, cb = std::move(cb)](bool ok, util::Bytes data) mutable {
        obs::EndSpan(span);
        cb(ok, std::move(data));
      });
  Msg(via, home, config_.ctrl_msg_bytes,
      [this, via, home, key, priority, shared_cb, span] {
        // GetS arrival at the home: this is where the directory decides the
        // order of contending ops (AcquireEntry grants in arrival order).
        NLSS_ACCESS(kCache, RaceKey(key), kRead);
        AcquireEntry(home, key, [this, via, key, priority, shared_cb, span] {
          HandleGetS(via, key, priority,
                     [shared_cb](bool ok, util::Bytes data) {
                       (*shared_cb)(ok, std::move(data));
                     },
                     span);
        });
      },
      [shared_cb] { (*shared_cb)(false, {}); }, span);
}

void CacheCluster::WritePage(ControllerId via, PageKey key,
                             std::uint32_t offset, util::Bytes data,
                             std::uint32_t replication, std::uint8_t priority,
                             WriteCallback cb, obs::TraceContext ctx,
                             WriteId wid) {
  Controller& c = *ctrls_[via];
  if (!c.alive) {
    engine_.Schedule(0, [cb = std::move(cb)] { cb(false); });
    return;
  }
  assert(offset + data.size() <= config_.page_bytes);
  ++c.stats.ops;
  if (tier_ != nullptr) tier_->OnAccess(via, key, /*write=*/true);
  const ControllerId home = HomeOf(key);
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kCache, "cache.page");
  auto shared_cb = std::make_shared<WriteCallback>(
      [span, cb = std::move(cb)](bool ok) mutable {
        obs::EndSpan(span);
        cb(ok);
      });
  auto shared_data = std::make_shared<util::Bytes>(std::move(data));
  Msg(via, home, config_.ctrl_msg_bytes,
      [this, via, home, key, offset, replication, priority, shared_cb,
       shared_data, span, wid] {
        // GetX arrival: a same-tick unrelated read or write of this page
        // would see before- or after-image depending on queue order.
        NLSS_ACCESS(kCache, RaceKey(key), kWrite);
        AcquireEntry(home, key,
                     [this, via, key, offset, replication, priority,
                      shared_cb, shared_data, span, wid] {
          HandleGetX(via, key, offset, std::move(*shared_data), replication,
                     priority, [shared_cb](bool ok) { (*shared_cb)(ok); },
                     span, wid);
        });
      },
      [shared_cb] { (*shared_cb)(false); }, span);
}

// --- Byte-level API -------------------------------------------------------------

void CacheCluster::Read(ControllerId via, std::uint32_t volume,
                        std::uint64_t offset, std::uint32_t length,
                        ReadCallback cb, std::uint8_t priority,
                        obs::TraceContext ctx) {
  assert(length > 0);
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kCache, "cache.read");
  const std::uint32_t pb = config_.page_bytes;
  auto result = std::make_shared<util::Bytes>(length, 0);
  struct Piece {
    PageKey key;
    std::uint32_t in_page;
    std::uint32_t len;
    std::size_t out;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = offset;
  std::uint32_t left = length;
  std::size_t out = 0;
  while (left > 0) {
    const std::uint64_t page = cur / pb;
    const std::uint32_t in_page = static_cast<std::uint32_t>(cur % pb);
    const std::uint32_t n = std::min(left, pb - in_page);
    pieces.push_back(Piece{PageKey{volume, page}, in_page, n, out});
    cur += n;
    left -= n;
    out += n;
  }
  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [result, span, cb = std::move(cb)](bool ok) {
        obs::EndSpan(span);
        cb(ok, ok ? std::move(*result) : util::Bytes{});
      });
  for (const Piece& p : pieces) {
    ReadPage(
        via, p.key,
        [p, result, join](bool ok, util::Bytes page) {
          if (ok) {
            std::memcpy(result->data() + p.out, page.data() + p.in_page,
                        p.len);
          }
          join->Arrive(ok);
        },
        /*demand=*/true, priority, span);
  }
}

void CacheCluster::Write(ControllerId via, std::uint32_t volume,
                         std::uint64_t offset,
                         std::span<const std::uint8_t> data, WriteCallback cb,
                         std::uint8_t priority, obs::TraceContext ctx,
                         WriteId wid) {
  WriteWithReplication(via, volume, offset, data, config_.replication,
                       std::move(cb), priority, ctx, wid);
}

void CacheCluster::WriteWithReplication(ControllerId via, std::uint32_t volume,
                                        std::uint64_t offset,
                                        std::span<const std::uint8_t> data,
                                        std::uint32_t replication,
                                        WriteCallback cb,
                                        std::uint8_t priority,
                                        obs::TraceContext ctx, WriteId wid) {
  assert(!data.empty());
  const obs::TraceContext span =
      obs::StartSpan(ctx, obs::Layer::kCache, "cache.write");
  const std::uint32_t pb = config_.page_bytes;
  struct Piece {
    PageKey key;
    std::uint32_t in_page;
    std::size_t src;
    std::uint32_t len;
  };
  std::vector<Piece> pieces;
  std::uint64_t cur = offset;
  std::size_t src = 0;
  std::size_t left = data.size();
  while (left > 0) {
    const std::uint64_t page = cur / pb;
    const std::uint32_t in_page = static_cast<std::uint32_t>(cur % pb);
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::size_t>(left, pb - in_page));
    pieces.push_back(Piece{PageKey{volume, page}, in_page, src, n});
    cur += n;
    src += n;
    left -= n;
  }
  auto join = std::make_shared<Join>(
      static_cast<int>(pieces.size()),
      [span, cb = std::move(cb)](bool ok) {
        obs::EndSpan(span);
        cb(ok);
      });
  for (const Piece& p : pieces) {
    util::Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(p.src),
                      data.begin() + static_cast<std::ptrdiff_t>(p.src + p.len));
    WritePage(via, p.key, p.in_page, std::move(chunk), replication, priority,
              [join](bool ok) { join->Arrive(ok); }, span, wid);
  }
}

// --- Tier support -------------------------------------------------------------

void CacheCluster::TierBackingWrite(ControllerId ctrl, const PageKey& key,
                                    const util::Bytes& data,
                                    BackingStore::WriteCallback cb,
                                    obs::TraceContext ctx) {
  WriteToBacking(ctrl, key, data, std::move(cb), ctx);
}

bool CacheCluster::StealCleanFrame(ControllerId ctrl, const PageKey& key,
                                   util::Bytes* out) {
  Controller& c = *ctrls_[ctrl];
  if (!c.alive) return false;
  CacheNode::Frame* f = c.cache.Find(key);
  if (f == nullptr || f->dirty || f->busy || f->is_replica) return false;
  NLSS_ACCESS(kCache, RaceKey(key), kWrite);
  *out = std::move(f->data);
  c.cache.Erase(key);
  EraseExtra(ctrl, key);
  ++c.stats.evictions;
  return true;
}

// --- Failure & recovery -----------------------------------------------------------

void CacheCluster::FailController(ControllerId ctrl) {
  Controller& c = *ctrls_[ctrl];
  c.alive = false;
  fabric_.SetNodeUp(c.node, false);
  c.cache.Clear();
  extra_[ctrl].clear();
  dir_[ctrl].clear();
  live_.erase(std::remove(live_.begin(), live_.end(), ctrl), live_.end());
}

void CacheCluster::CrashController(ControllerId ctrl) {
  Controller& c = *ctrls_[ctrl];
  fabric_.SetNodeUp(c.node, false);
  c.cache.Clear();
  extra_[ctrl].clear();
  // alive and live_ deliberately untouched: the cluster has not noticed.
}

void CacheCluster::ReviveController(ControllerId ctrl) {
  Controller& c = *ctrls_[ctrl];
  // Legal after FailController (alive=false) OR CrashController (alive
  // still true — the cluster never noticed — but the fabric node is down).
  NLSS_INVARIANT(kCache, !c.alive || !fabric_.IsNodeUp(c.node),
                 "reviving controller %u that is alive and reachable",
                 static_cast<unsigned>(ctrl));
  c.alive = true;
  c.cache.Clear();
  extra_[ctrl].clear();
  dir_[ctrl].clear();
  fabric_.SetNodeUp(c.node, true);
}

void CacheCluster::Recover() {
  live_.clear();
  for (std::size_t i = 0; i < ctrls_.size(); ++i) {
    if (ctrls_[i]->alive) live_.push_back(static_cast<ControllerId>(i));
  }
  assert(!live_.empty());
  for (auto& shard : dir_) shard.clear();

  // Pass 1: re-register every primary frame from surviving caches.
  for (const ControllerId c : live_) {
    ctrls_[c]->cache.ForEach([&](const PageKey& key,
                                 const CacheNode::Frame& f) {
      if (f.is_replica) return;
      DirEntry& e = dir_[HomeOf(key)][key];
      if (f.dirty) {
        e.owner = c;
      } else {
        e.sharers.insert(c);
      }
    });
  }

  // Pass 2: find replicas orphaned by dead owners.  Ordered map: pass 3
  // promotes owners and issues flushes in iteration order, which must not
  // depend on hash layout.
  std::map<PageKey, std::vector<ControllerId>> orphans;
  for (const ControllerId c : live_) {
    ctrls_[c]->cache.ForEach([&](const PageKey& key,
                                 const CacheNode::Frame& f) {
      if (f.is_replica && !ctrls_[f.replica_owner]->alive) {
        orphans[key].push_back(c);
      }
    });
  }

  // Pass 3: promote one replica per orphaned page to dirty owner; the rest
  // stay pinned under the new owner until its flush lands.
  for (auto& [key, holders] : orphans) {
    DirEntry& e = dir_[HomeOf(key)][key];
    if (e.owner != kNoController) {
      // A live owner exists (ownership moved just before the crash): the
      // orphaned replicas are stale; drop them.
      for (const ControllerId h : holders) {
        ctrls_[h]->cache.Erase(key);
        EraseExtra(h, key);
      }
      continue;
    }
    const ControllerId promoted = holders.front();
    CacheNode::Frame* f = ctrls_[promoted]->cache.Find(key);
    assert(f != nullptr);
    // Promotion is an ownership transfer too: the dead owner's page must
    // not be dirty anywhere else among the survivors.
    NLSS_INVARIANT(kCache, !DirtyElsewhere(promoted, key),
                   "orphan promotion found page dirty on another node "
                   "(promoted %u)",
                   static_cast<unsigned>(promoted));
    f->is_replica = false;
    f->replica_owner = kNoController;
    f->dirty = true;
    ++f->dirty_epoch;
    NLSS_INVARIANT(kCache, engine_.now() >= e.owner_since,
                   "recover ownership transfer went backwards: now=%llu "
                   "owner_since=%llu",
                   static_cast<unsigned long long>(engine_.now()),
                   static_cast<unsigned long long>(e.owner_since));
    e.owner = promoted;
    e.owner_since = engine_.now();
    e.sharers.erase(promoted);
    FrameExtra& ex = Extra(promoted, key);
    ex.replica_sites.assign(holders.begin() + 1, holders.end());
    for (const ControllerId h : ex.replica_sites) {
      CacheNode::Frame* rf = ctrls_[h]->cache.Find(key);
      if (rf != nullptr) rf->replica_owner = promoted;
    }
    FlushPage(promoted, key);
  }
}

// --- Introspection -------------------------------------------------------------------

CacheCluster::Stats CacheCluster::Totals() const {
  Stats t;
  for (const auto& c : ctrls_) {
    t.ops += c->stats.ops;
    t.local_hits += c->stats.local_hits;
    t.remote_hits += c->stats.remote_hits;
    t.misses += c->stats.misses;
    t.bytes_served += c->stats.bytes_served;
    t.flushes += c->stats.flushes;
    t.evictions += c->stats.evictions;
    t.invalidations_received += c->stats.invalidations_received;
    t.backing_writes += c->stats.backing_writes;
    t.coalesced_runs += c->stats.coalesced_runs;
    t.coalesced_pages += c->stats.coalesced_pages;
  }
  return t;
}

std::uint64_t CacheCluster::DirtyPages() const {
  std::uint64_t n = 0;
  for (const auto& c : ctrls_) {
    c->cache.ForEach([&](const PageKey&, const CacheNode::Frame& f) {
      if (f.dirty) ++n;
    });
  }
  return n;
}

std::uint64_t CacheCluster::CachedPages() const {
  std::uint64_t n = 0;
  for (const auto& c : ctrls_) n += c->cache.size();
  return n;
}

std::vector<double> CacheCluster::LoadByController() const {
  std::vector<double> loads;
  loads.reserve(ctrls_.size());
  for (const auto& c : ctrls_) {
    loads.push_back(static_cast<double>(c->stats.bytes_served));
  }
  return loads;
}

}  // namespace nlss::cache
