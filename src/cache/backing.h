// BackingStore: the block-device abstraction beneath the cache.  The virt
// layer's volumes implement it (mapping through extent tables to RAID
// groups); tests use the in-memory and RAID-direct adapters below.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "obs/trace.h"
#include "raid/group.h"
#include "util/bytes.h"

namespace nlss::cache {

class BackingStore {
 public:
  using ReadCallback = std::function<void(bool ok, util::Bytes data)>;
  using WriteCallback = std::function<void(bool ok)>;

  virtual ~BackingStore() = default;

  virtual void ReadBlocks(std::uint64_t block, std::uint32_t count,
                          ReadCallback cb, obs::TraceContext ctx = {}) = 0;
  virtual void WriteBlocks(std::uint64_t block,
                           std::span<const std::uint8_t> data,
                           WriteCallback cb, obs::TraceContext ctx = {}) = 0;
  virtual std::uint64_t CapacityBlocks() const = 0;
  virtual std::uint32_t block_size() const = 0;

  std::uint64_t CapacityBytes() const {
    return CapacityBlocks() * block_size();
  }
};

/// Direct adapter over a RaidGroup (no virtualization layer).
class RaidBacking final : public BackingStore {
 public:
  explicit RaidBacking(raid::RaidGroup& group) : group_(group) {}

  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext ctx = {}) override {
    group_.ReadBlocks(block, count, std::move(cb), ctx);
  }
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext ctx = {}) override {
    group_.WriteBlocks(block, data, std::move(cb), ctx);
  }
  std::uint64_t CapacityBlocks() const override {
    return group_.DataCapacityBlocks();
  }
  std::uint32_t block_size() const override { return group_.block_size(); }

 private:
  raid::RaidGroup& group_;
};

/// Zero-latency in-memory store for unit tests.
class MemBacking final : public BackingStore {
 public:
  MemBacking(sim::Engine& engine, std::uint64_t capacity_blocks,
             std::uint32_t block_size = 4096)
      : engine_(engine),
        capacity_blocks_(capacity_blocks),
        block_size_(block_size),
        data_(capacity_blocks * block_size, 0) {}

  // Effects and counters apply at simulated *completion* time, so a write
  // issued before a crash but still "in flight" has not yet reached the
  // medium — matching real disk semantics.
  void ReadBlocks(std::uint64_t block, std::uint32_t count, ReadCallback cb,
                  obs::TraceContext = {}) override {
    engine_.Schedule(latency_ns_, [this, block, count,
                                   cb = std::move(cb)]() mutable {
      ++reads_;
      util::Bytes out(
          data_.begin() + static_cast<std::ptrdiff_t>(block * block_size_),
          data_.begin() +
              static_cast<std::ptrdiff_t>((block + count) * block_size_));
      cb(true, std::move(out));
    });
  }
  void WriteBlocks(std::uint64_t block, std::span<const std::uint8_t> data,
                   WriteCallback cb, obs::TraceContext = {}) override {
    util::Bytes copy(data.begin(), data.end());
    engine_.Schedule(latency_ns_, [this, block, copy = std::move(copy),
                                   cb = std::move(cb)]() mutable {
      ++writes_;
      std::copy(copy.begin(), copy.end(),
                data_.begin() + static_cast<std::ptrdiff_t>(block * block_size_));
      cb(true);
    });
  }
  std::uint64_t CapacityBlocks() const override { return capacity_blocks_; }
  std::uint32_t block_size() const override { return block_size_; }

  void set_latency(sim::Tick ns) { latency_ns_ = ns; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  const util::Bytes& raw() const { return data_; }

 private:
  sim::Engine& engine_;
  std::uint64_t capacity_blocks_;
  std::uint32_t block_size_;
  util::Bytes data_;
  sim::Tick latency_ns_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace nlss::cache
