// CacheCluster: the paper's pooled, coherent, distributed write-back cache
// (§2.2, §6.1, §6.3).
//
// Every controller blade contributes a CacheNode to one cluster-wide pool.
// Coherence is directory-based: each page has a *home* controller (hash of
// the page over the live set) whose directory entry serializes conflicting
// operations and tracks the owner (dirty/exclusive holder) and sharers.
//
//   read  miss -> GETS to home -> data forwarded from owner/sharer cache,
//                 or read from the backing store (RAID) by the home.
//   write      -> GETX to home -> current content fetched if partial,
//                 all other holders invalidated, requester becomes owner,
//                 the dirty page is replicated into N-1 peer caches
//                 (paper §6.1 N-way replication) before the write is acked,
//                 then asynchronously flushed to the backing store; the
//                 replicas are unpinned once the flush lands.
//
// Controller failure drops that node's cache; Recover() rebuilds every
// directory shard from the surviving caches and promotes orphaned replicas
// to dirty owners, so committed writes survive up to N-1 failures.
//
// All inter-controller traffic crosses the net::Fabric (the paper's
// "network as backplane"), so bandwidth and latency effects are real.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/backing.h"
#include "cache/dedup.h"
#include "cache/node.h"
#include "cache/tierhook.h"
#include "cache/types.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "util/units.h"

namespace nlss::cache {

class CacheCluster {
 public:
  struct Config {
    std::uint32_t page_bytes = 64 * util::KiB;
    std::uint64_t node_capacity_pages = 1024;
    std::uint32_t replication = 2;      // N-way total copies of dirty data
    sim::Tick local_access_ns = 2000;   // cache-hit service latency
    std::uint32_t ctrl_msg_bytes = 128; // coherence control message size
    double serve_ns_per_byte = 0.2;     // controller data engine (~5 GB/s)
    sim::Tick flush_delay_ns = 0;       // write-back aging before flushing
    // Disk-side Fibre Channel feed per blade (paper: 2 x 2 Gb/s).  All of a
    // controller's backing-store traffic serializes through this resource.
    // 0 disables the FC bandwidth model.
    double fc_ns_per_byte = 0.0;
    // Sequential readahead: on a demand miss, also fetch the next N pages
    // (paper §4 "storage prefetch operations").  0 disables.
    std::uint32_t readahead_pages = 0;
    // Small-write coalescing in the write-back path (E17): when a dirty
    // page is flushed, up to this many adjacent dirty pages of the same
    // volume on the same blade ride the same back-end write, so a stream
    // of small writes costs one large RAID write instead of one per page.
    // <= 1 disables (every page flushes alone).
    std::uint32_t coalesce_pages = 1;
  };

  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t flushes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations_received = 0;
    // Back-end (cache -> backing store) write ops actually issued.  With
    // coalescing, several flushed pages share one backing write, so this
    // is the number the E17 small-file-ingest claim is measured on.
    std::uint64_t backing_writes = 0;
    std::uint64_t coalesced_runs = 0;   // backing writes covering > 1 page
    std::uint64_t coalesced_pages = 0;  // pages that rode a multi-page run
  };

  using ReadCallback = std::function<void(bool ok, util::Bytes data)>;
  using WriteCallback = std::function<void(bool ok)>;

  /// `controller_nodes` are fabric nodes of the controller blades (already
  /// connected to each other / to switches by the caller).
  CacheCluster(sim::Engine& engine, net::Fabric& fabric,
               std::vector<net::NodeId> controller_nodes, Config config);

  /// Attach a volume's backing store.  Volume ids are caller-chosen.
  void RegisterVolume(std::uint32_t volume, BackingStore* backing);

  /// Byte-granular cached I/O, entering the cluster at controller `via`.
  /// `priority` is the per-file cache retention priority (paper §4):
  /// higher-priority pages are evicted last.
  void Read(ControllerId via, std::uint32_t volume, std::uint64_t offset,
            std::uint32_t length, ReadCallback cb, std::uint8_t priority = 0,
            obs::TraceContext ctx = {});
  /// `wid` (when valid) stamps the dirtied frames as the representative
  /// (writer, seq) the flush coalescer reports for the pages of a merged
  /// back-end write; invalid = legacy unattributed traffic.
  void Write(ControllerId via, std::uint32_t volume, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb,
             std::uint8_t priority = 0, obs::TraceContext ctx = {},
             WriteId wid = {});

  /// Override the replication factor for a single write (per-file policy
  /// support, paper §4): 1 = no peer copies.
  void WriteWithReplication(ControllerId via, std::uint32_t volume,
                            std::uint64_t offset,
                            std::span<const std::uint8_t> data,
                            std::uint32_t replication, WriteCallback cb,
                            std::uint8_t priority = 0,
                            obs::TraceContext ctx = {}, WriteId wid = {});

  /// Flush every dirty page to backing; cb(true) when clean.
  void FlushAll(WriteCallback cb);

  /// Fail a controller: its cache contents vanish, its fabric node goes
  /// down.  Call Recover() afterwards to restore coherence service.
  void FailController(ControllerId ctrl);

  /// Sudden crash: the blade vanishes from the fabric and loses its cache,
  /// but the cluster has NOT noticed yet (alive stays true; operations
  /// involving it fail via dropped messages).  A failure detector is
  /// expected to observe the silence and call FailController + Recover.
  void CrashController(ControllerId ctrl);

  /// Rebuild directories from surviving caches and promote orphaned
  /// replicas of dead owners to dirty pages (then flush them).
  void Recover();

  /// Root-trace background flush write-backs as "cache.flush" spans.
  /// Pass nullptr to detach.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach the cluster-wide write idempotency index (owned by the
  /// StorageSystem) so the flush coalescer can audit the representative
  /// write ids of the pages it merges.  Pass nullptr to detach.
  void SetDedupIndex(const WriteDedupIndex* dedup) { dedup_ = dedup; }

  /// Attach the storage-tier placement engine (src/tier): demand misses
  /// consult the flash tier before disk, write-backs and clean evictions
  /// are offered to it, and victim choice turns heat-aware.  Pass nullptr
  /// to detach (default: behavior identical to the untiered build).
  void AttachTier(TierHook* tier) { tier_ = tier; }
  TierHook* tier() const { return tier_; }

  // --- Tier support (called by the tier::TierManager) -----------------------
  /// Raw backing write for the tier's flash->disk demotion pipeline:
  /// charges the blade's FC feed and counts a backing write, but touches
  /// no cache state and is never re-offered to the tier.
  void TierBackingWrite(ControllerId ctrl, const PageKey& key,
                        const util::Bytes& data, BackingStore::WriteCallback cb,
                        obs::TraceContext ctx = {});
  /// Cooling-phase eviction: if `key` at `ctrl` is a clean, idle, primary
  /// frame, move its data into `*out`, erase the frame, and count an
  /// eviction.  Returns false (no state change) otherwise.
  bool StealCleanFrame(ControllerId ctrl, const PageKey& key,
                       util::Bytes* out);

  /// Return a failed controller to service with an empty cache (replaced
  /// or upgraded blade).  Call Recover() afterwards to rebalance homes.
  void ReviveController(ControllerId ctrl);

  // --- Introspection ------------------------------------------------------
  std::size_t controller_count() const { return ctrls_.size(); }
  std::size_t live_count() const { return live_.size(); }
  bool IsAlive(ControllerId c) const { return ctrls_[c]->alive; }
  const Stats& stats(ControllerId c) const { return ctrls_[c]->stats; }
  Stats Totals() const;
  sim::Resource& compute(ControllerId c) { return ctrls_[c]->compute; }
  sim::Resource& fc(ControllerId c) { return ctrls_[c]->fc; }
  std::uint64_t DirtyPages() const;
  std::uint64_t CachedPages() const;
  /// Per-controller bytes served (hot-spot imbalance input).
  std::vector<double> LoadByController() const;
  const Config& config() const { return config_; }
  CacheNode& node(ControllerId c) { return ctrls_[c]->cache; }

 private:
  struct Controller {
    net::NodeId node;
    CacheNode cache;
    sim::Resource compute;
    sim::Resource fc;  // disk-side Fibre Channel bandwidth
    bool alive = true;
    Stats stats;
    Controller(net::NodeId n, std::uint64_t cap, sim::Engine& e)
        : node(n), cache(cap), compute(e), fc(e) {}
  };

  struct DirEntry {
    ControllerId owner = kNoController;
    std::set<ControllerId> sharers;
    bool busy = false;
    std::deque<std::function<void()>> waiters;
    sim::Tick owner_since = 0;  // invariant: ownership transfer is monotone
  };

  struct FrameExtra {
    // Cluster-side bookkeeping for dirty frames, keyed (ctrl, page).
    std::vector<ControllerId> replica_sites;
    bool flushing = false;
    std::vector<std::function<void()>> flush_waiters;
  };

  using Failure = std::function<void()>;

  ControllerId HomeOf(const PageKey& key) const;
  std::uint32_t PageBlocks(std::uint32_t volume) const;

  /// Fabric send between controllers with explicit failure path.
  void Msg(ControllerId from, ControllerId to, std::uint64_t bytes,
           std::function<void()> delivered, Failure on_drop,
           obs::TraceContext ctx = {});

  /// Build one element of a Fabric::SendBatch group (controller ids mapped
  /// to fabric nodes).  Used by the replica fan-outs so a whole group of
  /// controller messages enters the event queue in one batched insertion.
  net::Fabric::Outbound Out(ControllerId from, ControllerId to,
                            std::uint64_t bytes,
                            std::function<void()> delivered,
                            Failure on_drop = nullptr,
                            obs::TraceContext ctx = {});

  /// Serialize per-page operations through the home directory entry.
  void AcquireEntry(ControllerId home, const PageKey& key,
                    std::function<void()> fn);
  void ReleaseEntry(ControllerId home, const PageKey& key);

  /// Make room and insert/overwrite a frame with `data`.
  CacheNode::Frame& InstallFrame(ControllerId ctrl, const PageKey& key,
                                 util::Bytes data);
  void EnsureRoom(ControllerId ctrl);

  // Protocol steps (home side).
  void HandleGetS(ControllerId via, PageKey key, std::uint8_t priority,
                  std::function<void(bool, util::Bytes)> cb,
                  obs::TraceContext ctx = {});
  void HandleGetX(ControllerId via, PageKey key, std::uint32_t offset,
                  util::Bytes data, std::uint32_t replication,
                  std::uint8_t priority, WriteCallback cb,
                  obs::TraceContext ctx = {}, WriteId wid = {});
  /// Deliver current page content to `via` from owner/sharer/backing.
  /// Does NOT register `via` anywhere.  cb(false) on unrecoverable miss.
  void FetchCurrent(ControllerId via, PageKey key,
                    std::function<void(bool, util::Bytes)> cb,
                    obs::TraceContext ctx = {});
  void InvalidateHolders(ControllerId except, PageKey key,
                         std::function<void()> done,
                         obs::TraceContext ctx = {});
  /// Erase a frame at `ctrl` and unpin any replicas it parked on peers.
  void DropFrameWithReplicas(ControllerId ctrl, const PageKey& key);
  void ReplicateDirty(ControllerId owner_ctrl, PageKey key,
                      std::uint32_t replication, std::function<void()> done,
                      obs::TraceContext ctx = {});

  /// Backing I/O issued by controller `ctrl` (charges its FC feed).
  void ReadFromBacking(ControllerId ctrl, PageKey key,
                       BackingStore::ReadCallback cb,
                       obs::TraceContext ctx = {});
  void WriteToBacking(ControllerId ctrl, PageKey key, const util::Bytes& data,
                      BackingStore::WriteCallback cb,
                      obs::TraceContext ctx = {});

  /// Asynchronous write-back of a dirty page.  With coalescing enabled
  /// (Config::coalesce_pages > 1) adjacent dirty pages of the same volume
  /// on the same blade are merged into the same back-end write.
  void FlushPage(ControllerId ctrl, PageKey key,
                 std::function<void(bool)> cb = nullptr);
  /// Contiguous run of flushable pages around `seed` (always contains it),
  /// sorted by page index and capped at Config::coalesce_pages.
  std::vector<PageKey> BuildFlushRun(ControllerId ctrl, const PageKey& seed);
  /// Write one contiguous run of dirty pages back as a single backing
  /// write, then settle each page individually (epoch check, replica
  /// release, waiters, re-flush when re-dirtied mid-flight).
  void FlushRun(ControllerId ctrl, std::vector<PageKey> run,
                std::function<void(bool)> cb);

  /// Page-granular entry points used by Read/Write.
  void ReadPage(ControllerId via, PageKey key,
                std::function<void(bool, util::Bytes)> cb,
                bool demand = true, std::uint8_t priority = 0,
                obs::TraceContext ctx = {});
  /// Kick sequential readahead after a demand miss on `key`.
  void MaybeReadahead(ControllerId via, PageKey key);
  void WritePage(ControllerId via, PageKey key, std::uint32_t offset,
                 util::Bytes data, std::uint32_t replication,
                 std::uint8_t priority, WriteCallback cb,
                 obs::TraceContext ctx = {}, WriteId wid = {});

  FrameExtra& Extra(ControllerId ctrl, const PageKey& key);
  void EraseExtra(ControllerId ctrl, const PageKey& key);

  /// True if any live controller other than `except` holds `key` dirty as
  /// a primary (non-replica) frame.  Invariant probe: the coherence
  /// protocol must never let a page be dirty on two nodes.
  bool DirtyElsewhere(ControllerId except, const PageKey& key) const;

  sim::Engine& engine_;
  net::Fabric& fabric_;
  Config config_;
  std::vector<std::unique_ptr<Controller>> ctrls_;
  std::vector<ControllerId> live_;
  // dir_[home] holds the directory shard for pages homed at `home`.
  std::vector<std::unordered_map<PageKey, DirEntry, PageKeyHash>> dir_;
  std::unordered_map<std::uint32_t, BackingStore*> volumes_;
  // Extra per-frame metadata (replica sites, flush state), keyed per ctrl.
  std::vector<std::unordered_map<PageKey, FrameExtra, PageKeyHash>> extra_;
  // Readahead fetches currently in flight (suppresses duplicates).
  std::unordered_map<PageKey, bool, PageKeyHash> readahead_inflight_;
  obs::Tracer* tracer_ = nullptr;  // roots "cache.flush" background spans
  // Audit-only view of the write idempotency index (null when detached).
  const WriteDedupIndex* dedup_ = nullptr;
  // Storage-tier placement engine (null when detached).
  TierHook* tier_ = nullptr;
};

}  // namespace nlss::cache
