#include "host/path.h"

#include "check/invariant.h"

namespace nlss::host {

const char* PathStateName(PathState s) {
  switch (s) {
    case PathState::kUp:
      return "up";
    case PathState::kHalfOpen:
      return "half-open";
    case PathState::kDown:
      return "down";
  }
  return "?";
}

bool PathHealth::Available(sim::Tick now) const {
  switch (state_) {
    case PathState::kUp:
      return true;
    case PathState::kHalfOpen:
      return trial_outstanding_ == 0;
    case PathState::kDown:
      return now >= down_since_ + config_.breaker_reset_ns &&
             trial_outstanding_ == 0;
  }
  return false;
}

void PathHealth::OnIssue(sim::Tick now) {
  (void)now;
  ++outstanding_;
  if (state_ != PathState::kUp) ++trial_outstanding_;
}

void PathHealth::OnSuccess(sim::Tick service_ns) {
  if (outstanding_ > 0) --outstanding_;
  if (trial_outstanding_ > 0) --trial_outstanding_;
  consecutive_errors_ = 0;
  SetState(PathState::kUp);  // trial success closes the breaker
  latency_.Record(service_ns);
  const auto s = static_cast<double>(service_ns);
  ewma_ns_ = ewma_ns_ == 0.0
                 ? s
                 : config_.ewma_alpha * s +
                       (1.0 - config_.ewma_alpha) * ewma_ns_;
}

void PathHealth::OnError(sim::Tick now) {
  if (outstanding_ > 0) --outstanding_;
  if (trial_outstanding_ > 0) --trial_outstanding_;
  ++consecutive_errors_;
  if (state_ != PathState::kUp || consecutive_errors_ >= config_.breaker_threshold) {
    // A failed trial, or enough consecutive errors, (re)opens the breaker.
    MarkDown(now);
  }
}

void PathHealth::OnAbandoned() {
  if (outstanding_ > 0) --outstanding_;
  if (trial_outstanding_ > 0) --trial_outstanding_;
}

void PathHealth::MarkDown(sim::Tick now) {
  // Always restart the reset clock: a failed trial must not leave the
  // breaker immediately re-eligible.
  down_since_ = now;
  SetState(PathState::kDown);
}

void PathHealth::ProbeOk() {
  if (state_ == PathState::kDown) SetState(PathState::kHalfOpen);
}

void PathHealth::SetState(PathState next) {
  if (next == state_) return;
  NLSS_INVARIANT(kHost,
                 !(state_ == PathState::kUp && next == PathState::kHalfOpen),
                 "illegal breaker transition %s -> %s",
                 PathStateName(state_), PathStateName(next));
  state_ = next;
}

}  // namespace nlss::host
