#include "host/initiator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "check/invariant.h"
#include "check/race.h"

namespace nlss::host {

Initiator::Initiator(controller::StorageSystem& system, const std::string& name,
                     InitiatorConfig config)
    : system_(system),
      engine_(system.engine()),
      name_(name),
      config_(config),
      node_(system.AttachHost(name)),
      rng_(config.seed),
      writer_id_(system.AllocWriterId()) {
  const std::uint32_t blades = system_.controller_count();
  paths_.reserve(blades);
  for (std::uint32_t b = 0; b < blades; ++b) {
    paths_.emplace_back(b, config_.path);
  }
  probe_misses_.assign(blades, 0);
  active_.resize(blades);
}

void Initiator::Start() {
  if (running_) return;
  running_ = true;
  if (config_.heartbeat_interval_ns > 0) {
    engine_.Schedule(config_.heartbeat_interval_ns,
                     [this] { HeartbeatTick(); });
  }
}

std::size_t Initiator::UpPaths() const {
  std::size_t n = 0;
  for (const PathHealth& p : paths_) {
    if (p.state() == PathState::kUp) ++n;
  }
  return n;
}

void Initiator::Read(controller::VolumeId vol, std::uint64_t offset,
                     std::uint32_t length, ReadCallback cb,
                     std::uint8_t priority, qos::TenantId tenant) {
  auto op = std::make_shared<Op>();
  op->id = next_op_++;
  op->is_read = true;
  op->vol = vol;
  op->offset = offset;
  op->length = length;
  op->priority = priority;
  op->tenant = tenant;
  op->rcb = std::move(cb);
  ++stats_.reads;
  Submit(std::move(op));
}

void Initiator::Write(controller::VolumeId vol, std::uint64_t offset,
                      std::span<const std::uint8_t> data, WriteCallback cb,
                      qos::TenantId tenant) {
  auto op = std::make_shared<Op>();
  op->id = next_op_++;
  op->is_read = false;
  op->vol = vol;
  op->offset = offset;
  op->length = static_cast<std::uint32_t>(data.size());
  op->payload = std::make_shared<util::Bytes>(data.begin(), data.end());
  op->wid = cache::WriteId{writer_id_, next_write_seq_, 0};
  unsettled_writes_.insert(next_write_seq_);
  ++next_write_seq_;
  op->tenant = tenant;
  op->wcb = std::move(cb);
  ++stats_.writes;
  Submit(std::move(op));
}

std::uint64_t Initiator::SettledUpTo() const {
  return unsettled_writes_.empty() ? next_write_seq_
                                   : *unsettled_writes_.begin();
}

void Initiator::MaybeSettleWrite(const OpPtr& op) {
  NLSS_INVARIANT(kHost, op->resolved_attempts <= op->issued_attempts,
                 "op %llu resolved %u attempts but issued only %u",
                 static_cast<unsigned long long>(op->id),
                 op->resolved_attempts, op->issued_attempts);
  if (op->is_read || !op->done) return;
  if (op->resolved_attempts < op->issued_attempts) return;
  // Done and fully drained: no copy of this write remains in the fabric,
  // so the blades may forget it.  The next write's id carries the
  // advanced cursor to the index.
  unsettled_writes_.erase(op->wid.seq);
}

void Initiator::Submit(OpPtr op) {
  const sim::Tick now = engine_.now();
  op->start = now;
  if (config_.retry.op_deadline_ns > 0) {
    op->deadline = now + config_.retry.op_deadline_ns;
  }
  if (hub_ != nullptr) {
    op->root = hub_->tracer().StartTrace(
        obs::Layer::kHost, op->is_read ? "host.read" : "host.write");
  }
  const int path = SelectPath(-1, now);
  if (path < 0) {
    HandleFailure(op, -1);
    return;
  }
  op->first_path = path;
  IssueAttempt(op, path, /*is_hedge=*/false);
  ArmHedge(op, path);
}

int Initiator::SelectPath(int exclude, sim::Tick now) const {
  if (config_.pin_path >= 0) {
    const auto pin = static_cast<std::size_t>(config_.pin_path);
    if (pin < paths_.size() && paths_[pin].Available(now)) {
      return config_.pin_path;
    }
    return -1;
  }
  const int n = static_cast<int>(paths_.size());
  if (config_.policy == InitiatorConfig::Policy::kRoundRobin) {
    for (int k = 0; k < n; ++k) {
      const int i = static_cast<int>((rr_next_ + k) % n);
      if (i == exclude || !paths_[i].Available(now)) continue;
      rr_next_ = static_cast<std::uint32_t>(i + 1) % n;
      return i;
    }
    return -1;
  }
  int best = -1;
  double best_score = std::numeric_limits<double>::max();
  for (int i = 0; i < n; ++i) {
    if (i == exclude || !paths_[i].Available(now)) continue;
    const double score =
        config_.policy == InitiatorConfig::Policy::kLeastOutstanding
            ? static_cast<double>(paths_[i].outstanding())
            : paths_[i].Score();
    if (score < best_score) {  // strict: ties go to the lowest index
      best_score = score;
      best = i;
    }
  }
  return best;
}

void Initiator::IssueAttempt(const OpPtr& op, int path, bool is_hedge) {
  const sim::Tick now = engine_.now();
  const std::uint32_t attempt = op->next_attempt++;
  op->inflight[attempt] = Attempt{path, is_hedge};
  ++op->issued_attempts;
  if (!is_hedge) op->last_path = path;
  paths_[path].OnIssue(now);
  active_[path][op->id] = op;
  ++stats_.attempts;
  if (is_hedge) ++stats_.hedges;

  obs::TraceContext ctx =
      obs::StartSpan(op->root, obs::Layer::kHost,
                     is_hedge ? "host.hedge" : "host.attempt");
  if (ctx.sampled()) {
    ctx.tracer->Annotate(ctx, "path=" + std::to_string(path));
  }

  engine_.Schedule(config_.retry.request_timeout_ns,
                   [this, op, attempt] { OnAttemptTimeout(op, attempt); });

  const auto blade = static_cast<cache::ControllerId>(paths_[path].blade());
  if (op->is_read) {
    system_.ReadVia(
        node_, blade, op->vol, op->offset, op->length,
        [this, op, attempt, path, now, ctx, is_hedge](bool ok,
                                                      util::Bytes data) {
          obs::EndSpan(ctx);
          ++op->resolved_attempts;
          OnAttemptResult(op, attempt, path, now, ok, std::move(data),
                          is_hedge);
        },
        op->priority, op->tenant, ctx);
  } else {
    // Each attempt carries the write id plus the current settled cursor,
    // piggybacking dedup-index pruning on the data path.
    cache::WriteId wid = op->wid;
    wid.settled = SettledUpTo();
    system_.WriteVia(
        node_, blade, op->vol, op->offset,
        std::span<const std::uint8_t>(*op->payload), wid,
        [this, op, attempt, path, now, ctx, is_hedge](bool ok) {
          obs::EndSpan(ctx);
          ++op->resolved_attempts;
          OnAttemptResult(op, attempt, path, now, ok, {}, is_hedge);
          MaybeSettleWrite(op);
        },
        op->priority, op->tenant, ctx);
  }
}

sim::Tick Initiator::HedgeDelay(int path) const {
  const PathHealth& p = paths_[static_cast<std::size_t>(path)];
  if (p.samples() < config_.hedge_min_samples) {
    return config_.hedge_max_delay_ns;  // cold path: hedge conservatively
  }
  return std::clamp(p.LatencyQuantile(config_.hedge_quantile),
                    config_.hedge_min_delay_ns, config_.hedge_max_delay_ns);
}

void Initiator::ArmHedge(const OpPtr& op, int primary_path) {
  const bool enabled =
      op->is_read ? config_.hedged_reads : config_.hedged_writes;
  if (!enabled || config_.pin_path >= 0 || paths_.size() < 2) {
    return;
  }
  engine_.Schedule(HedgeDelay(primary_path), [this, op] {
    // Fire only while exactly the primary attempt is still pending.
    if (op->done || op->hedged || op->inflight.empty() ||
        op->redrive_pending) {
      return;
    }
    const int primary = op->inflight.begin()->second.path;
    const int alt = SelectPath(primary, engine_.now());
    if (alt < 0) return;
    // Per-tenant hedge budget: a hedge is speculative spend, so it asks
    // the QoS layer first (token bucket + shed-under-pressure).  Without
    // a scheduler attached, hedging is unbudgeted as before.
    if (qos::Scheduler* q = system_.qos()) {
      const auto blade =
          static_cast<std::uint32_t>(paths_[static_cast<std::size_t>(alt)]
                                         .blade());
      if (!q->TryHedge(blade, system_.ResolveTenant(op->vol, op->tenant))) {
        ++stats_.hedges_denied;
        return;
      }
    }
    op->hedged = true;
    IssueAttempt(op, alt, /*is_hedge=*/true);
  });
}

void Initiator::OnAttemptResult(const OpPtr& op, std::uint32_t attempt,
                                int path, sim::Tick t0, bool ok,
                                util::Bytes data, bool is_hedge) {
  const sim::Tick now = engine_.now();
  const auto it = op->inflight.find(attempt);
  const bool tracked = it != op->inflight.end();
  if (tracked) {
    op->inflight.erase(it);
    active_[path].erase(op->id);
    if (ok) {
      const PathState prev = paths_[path].state();
      paths_[path].OnSuccess(now - t0);
      if (prev != PathState::kUp && paths_[path].state() == PathState::kUp) {
        TracePathEvent(path, "reset");  // trial success closed the breaker
      }
    } else {
      paths_[path].OnError(now);
    }
    // Hedge accounting: every hedge attempt terminates exactly once as a
    // win or a loss.  Wins are counted below; any other tracked ending is
    // a loss here, and untracked endings (timeout, path-down abandonment)
    // were counted when the attempt was erased — so after a drain
    // hedges == hedge_wins + hedge_losses holds.
    if (is_hedge && !(ok && !op->done)) ++stats_.hedge_losses;
  } else if (ok) {
    // Reply landed after the attempt timed out (or its path was declared
    // down).  The operation DID apply server-side.
    ++stats_.late_acks;
    if (!op->done) {
      // Idempotency guard: complete the op from the late ack; the pending
      // backoff re-drive sees op->done and stands down, so the write is
      // applied exactly once.
      FinishOp(op, true, std::move(data));
      return;
    }
  }
  if (op->done) return;
  if (!tracked) return;  // stale failure: the timeout already re-drove it
  if (ok) {
    if (is_hedge) ++stats_.hedge_wins;
    FinishOp(op, true, std::move(data));
    return;
  }
  HandleFailure(op, path);
}

void Initiator::OnAttemptTimeout(const OpPtr& op, std::uint32_t attempt) {
  const auto it = op->inflight.find(attempt);
  if (it == op->inflight.end()) return;  // already resolved
  const int path = it->second.path;
  if (it->second.hedge) ++stats_.hedge_losses;  // gave up on this hedge
  op->inflight.erase(it);
  active_[path].erase(op->id);
  ++stats_.timeouts;
  paths_[path].OnError(engine_.now());
  if (op->done) return;
  HandleFailure(op, path);
}

void Initiator::HandleFailure(const OpPtr& op, int failed_path) {
  if (op->done) return;
  if (!op->inflight.empty()) return;  // a racing attempt may still win
  const sim::Tick now = engine_.now();
  if (failed_path >= 0) {
    ++op->failures;
  } else {
    // No path was up, so nothing reached a wire: don't charge the attempt
    // budget — with a deadline set the op rides out the blackout and
    // completes once a path returns.  Without a deadline, no-path rounds
    // are bounded like attempts so a permanent blackout still terminates.
    ++op->no_path_rounds;
    ++stats_.no_path_failures;
  }
  const bool exhausted =
      op->failures >= config_.retry.max_attempts ||
      (op->deadline == 0 && op->no_path_rounds >= config_.retry.max_attempts);
  if (exhausted || (op->deadline != 0 && now >= op->deadline)) {
    FinishOp(op, false, {});
    return;
  }
  ++stats_.retries;
  op->redrive_pending = true;
  const sim::Tick delay =
      BackoffDelay(config_.retry, op->failures + op->no_path_rounds, rng_);
  engine_.Schedule(delay, [this, op, failed_path] {
    if (op->done) {
      ++stats_.suppressed_redrives;  // late ack beat the re-drive
      return;
    }
    op->redrive_pending = false;
    const sim::Tick t = engine_.now();
    int p = failed_path >= 0 ? SelectPath(failed_path, t) : -1;
    if (p < 0) p = SelectPath(-1, t);
    if (p < 0) {
      HandleFailure(op, -1);
      return;
    }
    if (p != failed_path) ++stats_.failovers;
    IssueAttempt(op, p, /*is_hedge=*/false);
  });
}

std::uint64_t Initiator::RaceKey(std::uint64_t op_id) const {
  // FNV-1a of the host name: a stable per-host salt with no pointer
  // identity in it (pointer-derived keys would not be run-reproducible).
  std::uint64_t salt = 0xcbf29ce484222325ull;
  for (const char c : name_) {
    salt ^= static_cast<unsigned char>(c);
    salt *= 0x100000001b3ull;
  }
  return check::AccessKey(salt, op_id);
}

void Initiator::FinishOp(const OpPtr& op, bool ok, util::Bytes data) {
  if (op->done) return;
  NLSS_ACCESS(kHost, RaceKey(op->id), kWrite);
  NLSS_INVARIANT(kHost, !op->callback_fired,
                 "op %llu completing a second time",
                 static_cast<unsigned long long>(op->id));
  op->callback_fired = true;
  op->done = true;
  const sim::Tick latency = engine_.now() - op->start;
  if (ok) {
    ++stats_.ok;
    if (op->is_read) {
      stats_.bytes_read += data.size();
      if (read_latency_ns_ != nullptr) read_latency_ns_->Record(latency);
    } else {
      stats_.bytes_written += op->length;
      if (write_latency_ns_ != nullptr) write_latency_ns_->Record(latency);
    }
  } else {
    ++stats_.failed;
    if (!op->is_read) {
      // Reporting this write failed: cancel it at the blades so a stale
      // copy still in the fabric is dropped instead of applying later
      // (ghost-write protection).  The tombstone prunes once we settle.
      ++stats_.write_cancels;
      system_.CancelWrite(op->wid);
    }
  }
  if (op->root.sampled()) op->root.tracer->EndTrace(op->root, ok);
  if (!op->is_read) MaybeSettleWrite(op);
  if (op->is_read) {
    if (op->rcb) op->rcb(ok, std::move(data));
  } else {
    if (op->wcb) op->wcb(ok);
  }
}

void Initiator::MarkPathDown(int path) {
  const sim::Tick now = engine_.now();
  PathHealth& p = paths_[static_cast<std::size_t>(path)];
  if (p.state() != PathState::kDown) {
    ++stats_.path_down_events;
    TracePathEvent(path, "trip");
  }
  p.MarkDown(now);
  // Abandon this path's in-flight attempts and re-drive their ops
  // immediately — don't wait out the per-attempt timeout.
  auto victims = std::move(active_[path]);
  active_[path].clear();
  for (auto& [id, op] : victims) {
    for (auto it = op->inflight.begin(); it != op->inflight.end();) {
      if (it->second.path == path) {
        // An abandoned hedge still terminated: count the loss so
        // hedges == hedge_wins + hedge_losses survives path-down events.
        if (it->second.hedge) ++stats_.hedge_losses;
        it = op->inflight.erase(it);
        p.OnAbandoned();
      } else {
        ++it;
      }
    }
    if (op->done || !op->inflight.empty() || op->redrive_pending) continue;
    ++stats_.path_down_redrives;
    op->redrive_pending = true;
    engine_.Schedule(0, [this, op, path] {
      // Same-tick chain racing the op's completion events: which side runs
      // first decides suppressed-redrive vs failover accounting, so both
      // outcomes write op state for the detector to adjudicate.
      NLSS_ACCESS(kHost, RaceKey(op->id), kWrite);
      if (op->done) {
        ++stats_.suppressed_redrives;
        return;
      }
      op->redrive_pending = false;
      int np = SelectPath(path, engine_.now());
      if (np < 0) np = SelectPath(-1, engine_.now());
      if (np < 0) {
        HandleFailure(op, -1);
        return;
      }
      if (np != path) ++stats_.failovers;
      IssueAttempt(op, np, /*is_hedge=*/false);
    });
  }
}

void Initiator::HeartbeatTick() {
  if (!running_) return;
  for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
    ProbePath(i);
  }
  engine_.Schedule(config_.heartbeat_interval_ns, [this] { HeartbeatTick(); });
}

void Initiator::ProbePath(int path) {
  ++stats_.probes;
  const auto blade = paths_[static_cast<std::size_t>(path)].blade();
  const net::NodeId blade_node = system_.controller_node(blade);
  auto answered = std::make_shared<bool>(false);
  const auto miss = [this, path, answered] {
    if (*answered) return;
    *answered = true;
    OnProbeMiss(path);
  };
  engine_.Schedule(config_.probe_timeout_ns, miss);
  system_.fabric().Send(
      node_, blade_node, config_.probe_bytes,
      [this, path, blade, blade_node, answered, miss] {
        // Probe reached the blade; only a live controller echoes it.
        if (!system_.cache().IsAlive(blade)) return;  // timeout -> miss
        system_.fabric().Send(
            blade_node, node_, config_.probe_bytes,
            [this, path, answered] {
              if (*answered) return;
              *answered = true;
              OnProbeOk(path);
            },
            miss);
      },
      miss);
}

void Initiator::OnProbeOk(int path) {
  probe_misses_[static_cast<std::size_t>(path)] = 0;
  PathHealth& p = paths_[static_cast<std::size_t>(path)];
  const bool was_down = p.state() == PathState::kDown;
  p.ProbeOk();
  if (was_down && p.state() == PathState::kHalfOpen) {
    TracePathEvent(path, "half-open");
  }
}

void Initiator::TracePathEvent(int path, const char* event) {
  if (hub_ == nullptr) return;
  obs::TraceContext ctx =
      hub_->tracer().StartTrace(obs::Layer::kHost, "host.path");
  if (!ctx.sampled()) return;
  ctx.tracer->Annotate(ctx, "host=" + name_ +
                                " path=" + std::to_string(path) +
                                " event=" + event);
  ctx.tracer->EndTrace(ctx, true);
}

void Initiator::OnProbeMiss(int path) {
  ++stats_.probe_misses;
  auto& misses = probe_misses_[static_cast<std::size_t>(path)];
  ++misses;
  if (misses >= config_.heartbeat_miss_threshold &&
      paths_[static_cast<std::size_t>(path)].state() != PathState::kDown) {
    MarkPathDown(path);
  }
}

void Initiator::AttachObs(obs::Hub* hub) {
  hub_ = hub;
  if (hub == nullptr) {
    read_latency_ns_ = nullptr;
    write_latency_ns_ = nullptr;
    return;
  }
  obs::Registry& m = hub->metrics();
  const obs::Labels host = {{"host", name_}};
  m.AddCallback(
      "nlss_host_reads_total", "Host initiator read ops",
      [this] { return static_cast<double>(stats_.reads); }, host);
  m.AddCallback(
      "nlss_host_writes_total", "Host initiator write ops",
      [this] { return static_cast<double>(stats_.writes); }, host);
  m.AddCallback(
      "nlss_host_failed_total", "Host ops failed after all retries",
      [this] { return static_cast<double>(stats_.failed); }, host);
  m.AddCallback(
      "nlss_host_attempts_total", "Attempts issued (including hedges)",
      [this] { return static_cast<double>(stats_.attempts); }, host);
  m.AddCallback(
      "nlss_host_retries_total", "Backoff re-drives",
      [this] { return static_cast<double>(stats_.retries); }, host);
  m.AddCallback(
      "nlss_host_timeouts_total", "Per-attempt timeouts",
      [this] { return static_cast<double>(stats_.timeouts); }, host);
  m.AddCallback(
      "nlss_host_failovers_total", "Re-drives that switched path",
      [this] { return static_cast<double>(stats_.failovers); }, host);
  m.AddCallback(
      "nlss_host_hedges_total", "Hedged (speculative duplicate) attempts",
      [this] { return static_cast<double>(stats_.hedges); }, host);
  m.AddCallback(
      "nlss_host_hedge_wins_total", "Hedges that beat the primary",
      [this] { return static_cast<double>(stats_.hedge_wins); }, host);
  m.AddCallback(
      "nlss_host_hedge_losses_total",
      "Hedges that lost, timed out, or were abandoned",
      [this] { return static_cast<double>(stats_.hedge_losses); }, host);
  m.AddCallback(
      "nlss_host_hedges_denied_total", "Hedges refused by the QoS budget",
      [this] { return static_cast<double>(stats_.hedges_denied); }, host);
  m.AddCallback(
      "nlss_host_write_cancels_total",
      "Failed writes cancelled at the blades",
      [this] { return static_cast<double>(stats_.write_cancels); }, host);
  m.AddCallback(
      "nlss_host_probes_total", "Heartbeat probes sent",
      [this] { return static_cast<double>(stats_.probes); }, host);
  m.AddCallback(
      "nlss_host_path_down_events_total", "Paths declared down",
      [this] { return static_cast<double>(stats_.path_down_events); }, host);
  m.AddCallback(
      "nlss_host_up_paths", "Paths currently in the kUp state",
      [this] { return static_cast<double>(UpPaths()); }, host);
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const obs::Labels pl = {{"host", name_}, {"path", std::to_string(i)}};
    const PathHealth* p = &paths_[i];
    m.AddCallback(
        "nlss_host_path_ewma_ns", "EWMA service time per path",
        [p] { return p->ewma_ns(); }, pl);
    m.AddCallback(
        "nlss_host_path_outstanding", "In-flight attempts per path",
        [p] { return static_cast<double>(p->outstanding()); }, pl);
    m.AddCallback(
        "nlss_host_path_state", "Path state (0 up, 1 half-open, 2 down)",
        [p] { return static_cast<double>(p->state()); }, pl);
  }
  read_latency_ns_ = &m.histogram("nlss_host_read_latency_ns",
                                  "End-to-end host read latency", host);
  write_latency_ns_ = &m.histogram("nlss_host_write_latency_ns",
                                   "End-to-end host write latency", host);
}

}  // namespace nlss::host
