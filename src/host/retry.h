// Deterministic retry/timeout/backoff policy for the host initiator.
//
// Exponential backoff with multiplicative jitter drawn from the caller's
// seeded RNG stream: two runs with the same seed produce bit-identical
// delay sequences (the DES clock supplies time, the RNG supplies jitter,
// nothing touches wall-clock or global state).
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "util/rng.h"
#include "util/units.h"

namespace nlss::host {

struct RetryPolicy {
  /// Total attempts per op, including the first (hedges excluded).
  std::uint32_t max_attempts = 4;
  /// Per-attempt timeout: an attempt with no reply by then is abandoned
  /// and re-driven (the reply, if it ever lands, is handled by the
  /// idempotency guard).
  sim::Tick request_timeout_ns = 50 * util::kNsPerMs;
  /// Whole-op deadline from first issue; 0 = no deadline.
  sim::Tick op_deadline_ns = 0;
  /// Backoff before retry k (1-based): base * multiplier^(k-1), capped.
  sim::Tick backoff_base_ns = 200 * util::kNsPerUs;
  double backoff_multiplier = 2.0;
  sim::Tick backoff_max_ns = 20 * util::kNsPerMs;
  /// Multiplicative jitter fraction in [0,1): the delay is drawn uniformly
  /// from [d*(1-jitter), d*(1+jitter)).
  double jitter = 0.5;
};

/// Backoff delay before retry `retry_index` (1-based).  Deterministic in
/// (policy, retry_index, rng stream position).
sim::Tick BackoffDelay(const RetryPolicy& policy, std::uint32_t retry_index,
                       util::Rng& rng);

}  // namespace nlss::host
