// Per-path health tracking for the host initiator stack.
//
// One PathHealth instance shadows each host->blade session: an EWMA of
// observed service time (path selection weight), a full latency histogram
// (hedging delay quantiles), and a consecutive-error circuit breaker with
// half-open probing.  A path declared dead by the heartbeat (or tripped by
// the breaker) stops receiving regular traffic; it re-enters service
// through a half-open trial — one request at a time — and closes back to
// kUp on the first trial success.
//
// All state is driven from the DES clock and the initiator's seeded RNG,
// so failover behaviour is bit-reproducible.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "util/stats.h"
#include "util/units.h"

namespace nlss::host {

enum class PathState : std::uint8_t {
  kUp,        // healthy, in the selection set
  kHalfOpen,  // probing: one trial request at a time
  kDown,      // breaker open / heartbeat-declared dead
};
const char* PathStateName(PathState s);

struct PathConfig {
  /// EWMA smoothing for observed service time (higher = more reactive).
  double ewma_alpha = 0.2;
  /// Consecutive errors that trip the breaker to kDown.
  std::uint32_t breaker_threshold = 3;
  /// After this long in kDown with no successful heartbeat probe, traffic
  /// may half-open the breaker itself (fallback when heartbeats are off).
  sim::Tick breaker_reset_ns = 100 * util::kNsPerMs;
};

class PathHealth {
 public:
  PathHealth(std::uint32_t blade, PathConfig config)
      : blade_(blade), config_(config) {}

  std::uint32_t blade() const { return blade_; }
  PathState state() const { return state_; }
  std::uint32_t outstanding() const { return outstanding_; }
  double ewma_ns() const { return ewma_ns_; }
  std::uint64_t samples() const { return latency_.count(); }
  const util::Histogram& latency() const { return latency_; }
  std::uint32_t consecutive_errors() const { return consecutive_errors_; }

  /// Usable for a new request now?  kUp always; kDown once breaker_reset_ns
  /// has elapsed (the request becomes the half-open trial); kHalfOpen only
  /// while no trial is in flight.
  bool Available(sim::Tick now) const;

  /// Selection weight: EWMA service time scaled by queue depth (an
  /// unmeasured path scores 0 so every path gets warmed).
  double Score() const { return ewma_ns_ * (1.0 + outstanding_); }

  /// Hedge delay source: latency quantile in [0,1].
  sim::Tick LatencyQuantile(double q) const { return latency_.Percentile(q); }

  // --- Request accounting ---------------------------------------------------
  void OnIssue(sim::Tick now);
  void OnSuccess(sim::Tick service_ns);
  void OnError(sim::Tick now);
  /// Attempt abandoned without a verdict from this path's point of view
  /// (late hedge loser bookkeeping): outstanding-- only.
  void OnAbandoned();

  // --- External state changes ----------------------------------------------
  /// Heartbeat-declared death (or forced by tests).
  void MarkDown(sim::Tick now);
  /// A heartbeat probe succeeded while down: allow half-open trials.
  void ProbeOk();

 private:
  /// All breaker transitions funnel through here so legality is checked in
  /// one place: kUp never jumps straight to kHalfOpen (half-open only
  /// exists as a recovery stage out of kDown).
  void SetState(PathState next);

  std::uint32_t blade_;
  PathConfig config_;
  PathState state_ = PathState::kUp;
  std::uint32_t outstanding_ = 0;
  std::uint32_t trial_outstanding_ = 0;
  std::uint32_t consecutive_errors_ = 0;
  double ewma_ns_ = 0.0;
  util::Histogram latency_;
  sim::Tick down_since_ = 0;
};

}  // namespace nlss::host
