#include "host/retry.h"

#include <algorithm>
#include <cmath>

namespace nlss::host {

sim::Tick BackoffDelay(const RetryPolicy& policy, std::uint32_t retry_index,
                       util::Rng& rng) {
  if (retry_index == 0) retry_index = 1;
  double d = static_cast<double>(policy.backoff_base_ns) *
             std::pow(policy.backoff_multiplier,
                      static_cast<double>(retry_index - 1));
  d = std::min(d, static_cast<double>(policy.backoff_max_ns));
  // Always draw, so the jitter stream position depends only on how many
  // delays were computed — not on the jitter setting.
  const double u = rng.NextDouble();
  if (policy.jitter > 0.0) {
    d *= 1.0 - policy.jitter + 2.0 * policy.jitter * u;
  }
  return static_cast<sim::Tick>(std::llround(std::max(d, 0.0)));
}

}  // namespace nlss::host
