// Host initiator stack: multipath sessions, deterministic retry, and
// hedged reads (paper §2.1's "powerful device drivers", grown into a real
// client).
//
// An Initiator owns one host fabric node and a session ("path") to every
// controller blade.  Each request:
//
//   select path ──issue──> StorageSystem::ReadVia/WriteVia (explicit blade)
//        │                        │
//        │   per-attempt timeout ─┤─ error/timeout: backoff (seeded
//        │                        │  jitter) then re-drive on another path
//        │   hedge timer ─────────┤─ reads AND writes: after the path's
//        │                        │  tracked latency quantile, duplicate
//        │                        │  to a second blade; first reply wins
//        │                        │  (per-tenant budget via qos::TryHedge)
//        └─ heartbeat probes: a silent blade is declared down after N
//           misses; its in-flight requests re-drive immediately and the
//           path re-enters service through half-open trials
//
// Writes are exactly-once end to end.  Host-side, each op completes its
// callback exactly once (a late ack arriving after the attempt timed out
// completes the op and suppresses the pending re-drive).  Server-side,
// every write is stamped with a per-host monotonic WriteId that the
// blades deduplicate on (cache::WriteDedupIndex), so overlapping
// re-drives and hedges never double-apply, and a write reported failed
// is cancelled at the blades so a stale in-fabric copy can't apply later
// (ghost-write protection).  The dedup index is pruned by a settled
// cursor piggybacked on subsequent writes: a seq settles once its op is
// done and every attempt it ever issued has resolved.
//
// Everything is driven by the DES clock and one forked seeded RNG, so two
// same-seed runs — including hedge races, backoff jitter, and failover —
// are bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "controller/system.h"
#include "host/path.h"
#include "host/retry.h"
#include "obs/hub.h"

namespace nlss::meta {
class Client;
}  // namespace nlss::meta

namespace nlss::host {

struct InitiatorConfig {
  enum class Policy {
    kRoundRobin,        // spread over available paths
    kLeastOutstanding,  // fewest in-flight requests
    kEwmaWeighted,      // lowest EWMA-latency x queue-depth score
  };
  Policy policy = Policy::kEwmaWeighted;
  RetryPolicy retry;
  PathConfig path;
  /// >= 0: single-path host (no failover) — the baseline in E15.
  int pin_path = -1;

  // --- Hedging --------------------------------------------------------------
  bool hedged_reads = true;
  /// Safe because blades deduplicate on the write id: the losing copy is
  /// absorbed, never applied twice.
  bool hedged_writes = true;
  /// Hedge fires after the issuing path's latency quantile...
  double hedge_quantile = 0.9;
  /// ...clamped to [min, max]; before min_samples observations the path
  /// hedges at max (conservative while cold).
  sim::Tick hedge_min_delay_ns = 100 * util::kNsPerUs;
  sim::Tick hedge_max_delay_ns = 50 * util::kNsPerMs;
  std::uint64_t hedge_min_samples = 32;

  // --- Heartbeat path-down detection ---------------------------------------
  /// Probe interval (0 disables heartbeats; breaker still works).
  sim::Tick heartbeat_interval_ns = 50 * util::kNsPerMs;
  std::uint32_t heartbeat_miss_threshold = 3;
  sim::Tick probe_timeout_ns = 20 * util::kNsPerMs;
  std::uint32_t probe_bytes = 64;

  /// Seed for the backoff-jitter RNG stream (independent of workloads).
  std::uint64_t seed = 0x05707aceULL;
};

struct InitiatorStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t attempts = 0;   // issued, including hedges
  std::uint64_t retries = 0;    // backoff re-drives
  std::uint64_t timeouts = 0;   // per-attempt timeouts
  std::uint64_t failovers = 0;  // re-drive landed on a different path
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  /// Loser/timed-out/abandoned hedge attempts.  Every hedge terminates
  /// exactly once as a win or a loss: hedges == hedge_wins + hedge_losses
  /// once all attempts have drained.
  std::uint64_t hedge_losses = 0;
  std::uint64_t hedges_denied = 0;  // qos::TryHedge refused the budget
  std::uint64_t write_cancels = 0;  // failed writes cancelled at the blades
  std::uint64_t path_down_redrives = 0;
  std::uint64_t late_acks = 0;           // timed-out attempt acked later
  std::uint64_t suppressed_redrives = 0; // guard: redrive found op done
  std::uint64_t probes = 0;
  std::uint64_t probe_misses = 0;
  std::uint64_t path_down_events = 0;
  std::uint64_t no_path_failures = 0;
};

class Initiator {
 public:
  using ReadCallback = controller::StorageSystem::ReadCallback;
  using WriteCallback = controller::StorageSystem::WriteCallback;

  /// Attaches a host node named `name` to the system's fabric and opens a
  /// path to every controller blade.
  Initiator(controller::StorageSystem& system, const std::string& name,
            InitiatorConfig config = {});

  /// Start/stop the heartbeat prober (no-op when interval is 0).
  void Start();
  void Stop() { running_ = false; }

  /// Register host metrics (labelled by host/path) and start tracing ops
  /// as kHost root spans.  Pass nullptr to detach.
  void AttachObs(obs::Hub* hub);

  /// Attach this host's dentry/path-resolution cache (a meta::Client
  /// registered with the sharded metadata service).  Namespace resolves
  /// issued by workloads on this host go through it; the service pushes
  /// coherence invalidations back.  Pass nullptr to detach.
  void AttachMeta(meta::Client* meta) { meta_ = meta; }
  meta::Client* meta() const { return meta_; }

  void Read(controller::VolumeId vol, std::uint64_t offset,
            std::uint32_t length, ReadCallback cb, std::uint8_t priority = 0,
            qos::TenantId tenant = qos::kAutoTenant);
  void Write(controller::VolumeId vol, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb,
             qos::TenantId tenant = qos::kAutoTenant);

  // --- Introspection ---------------------------------------------------------
  net::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  std::size_t path_count() const { return paths_.size(); }
  const PathHealth& path(std::size_t i) const { return paths_[i]; }
  const InitiatorStats& stats() const { return stats_; }
  std::size_t UpPaths() const;
  const InitiatorConfig& config() const { return config_; }
  /// Force a path down (tests / operator action).
  void ForcePathDown(std::size_t i) { MarkPathDown(static_cast<int>(i)); }

 private:
  /// Race-detector key for an op: op ids are per-initiator counters, so two
  /// hosts running in lockstep hold colliding ids for independent ops; salt
  /// with the host name like meta::Client does for its directory keys.
  std::uint64_t RaceKey(std::uint64_t op_id) const;

  struct Attempt {
    int path = -1;
    bool hedge = false;
  };
  struct Op {
    std::uint64_t id = 0;
    bool is_read = true;
    controller::VolumeId vol = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::shared_ptr<util::Bytes> payload;  // writes
    cache::WriteId wid;                    // writes: blade-side dedup token
    std::uint8_t priority = 0;
    qos::TenantId tenant = qos::kAutoTenant;
    ReadCallback rcb;
    WriteCallback wcb;
    obs::TraceContext root;
    sim::Tick start = 0;
    sim::Tick deadline = 0;  // 0 = none
    bool done = false;
    bool callback_fired = false;  // invariant: completion exactly once
    bool redrive_pending = false;
    bool hedged = false;
    std::uint32_t failures = 0;        // attempts that reached a wire and failed
    std::uint32_t no_path_rounds = 0;  // re-drive rounds with no path up
    std::uint32_t issued_attempts = 0;    // attempts handed to the system
    std::uint32_t resolved_attempts = 0;  // attempt callbacks received
    int first_path = -1;
    int last_path = -1;
    std::uint32_t next_attempt = 1;
    std::map<std::uint32_t, Attempt> inflight;  // attempt id -> where/why
  };
  using OpPtr = std::shared_ptr<Op>;

  void Submit(OpPtr op);
  /// Pick an available path (policy-driven); `exclude` < 0 to allow all.
  /// Returns -1 when no path qualifies.
  int SelectPath(int exclude, sim::Tick now) const;
  void IssueAttempt(const OpPtr& op, int path, bool is_hedge);
  void ArmHedge(const OpPtr& op, int primary_path);
  void OnAttemptResult(const OpPtr& op, std::uint32_t attempt, int path,
                       sim::Tick t0, bool ok, util::Bytes data, bool is_hedge);
  void OnAttemptTimeout(const OpPtr& op, std::uint32_t attempt);
  void HandleFailure(const OpPtr& op, int failed_path);
  void FinishOp(const OpPtr& op, bool ok, util::Bytes data);
  sim::Tick HedgeDelay(int path) const;
  /// Settled cursor: every write seq below this is done with all of its
  /// attempts resolved, so the blades may prune it from the dedup index.
  std::uint64_t SettledUpTo() const;
  /// Retire op's seq from the unsettled set once it is done AND every
  /// issued attempt has resolved (no copy of it remains in the fabric).
  void MaybeSettleWrite(const OpPtr& op);

  void MarkPathDown(int path);
  /// Root "host.path" span recording a breaker transition (trip /
  /// half-open / reset) so path flaps are visible in traces.
  void TracePathEvent(int path, const char* event);
  void HeartbeatTick();
  void ProbePath(int path);
  void OnProbeOk(int path);
  void OnProbeMiss(int path);

  controller::StorageSystem& system_;
  sim::Engine& engine_;
  std::string name_;
  InitiatorConfig config_;
  net::NodeId node_;
  std::vector<PathHealth> paths_;
  std::vector<std::uint32_t> probe_misses_;
  /// Ops with an attempt in flight on each path (for crash re-drive);
  /// std::map for deterministic iteration.
  std::vector<std::map<std::uint64_t, OpPtr>> active_;
  util::Rng rng_;
  InitiatorStats stats_;
  std::uint64_t next_op_ = 1;
  // Write idempotency: per-host monotonic (writer_id_, seq) stamps, plus
  // the unsettled set backing the piggybacked prune cursor.
  std::uint32_t writer_id_ = 0;
  std::uint64_t next_write_seq_ = 1;
  std::set<std::uint64_t> unsettled_writes_;
  mutable std::uint32_t rr_next_ = 0;
  bool running_ = false;
  obs::Hub* hub_ = nullptr;
  meta::Client* meta_ = nullptr;
  util::Histogram* read_latency_ns_ = nullptr;
  util::Histogram* write_latency_ns_ = nullptr;
};

}  // namespace nlss::host
