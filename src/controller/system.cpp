#include "controller/system.h"

#include <cassert>

#include "check/invariant.h"
#include "meta/service.h"

namespace nlss::controller {

StorageSystem::StorageSystem(sim::Engine& engine, net::Fabric& fabric,
                             SystemConfig config)
    : engine_(engine), fabric_(fabric), config_(std::move(config)) {
  assert(config_.controllers >= 1);

  // Host-side switch and controller blades; full backplane mesh between
  // blades plus a host-side FC link from the switch to every blade.
  switch_node_ = fabric_.AddNode(config_.name + "-switch");
  for (std::uint32_t i = 0; i < config_.controllers; ++i) {
    const net::NodeId n =
        fabric_.AddNode(config_.name + "-ctrl" + std::to_string(i));
    fabric_.Connect(switch_node_, n, config_.host_link);
    for (const net::NodeId prev : controller_nodes_) {
      fabric_.Connect(prev, n, config_.backplane);
    }
    controller_nodes_.push_back(n);
  }

  // Disk farms and RAID groups (each group on its own shelf).
  for (std::uint32_t g = 0; g < config_.raid_groups; ++g) {
    farms_.push_back(std::make_unique<disk::DiskFarm>(
        engine_, config_.disk_profile, config_.disks_per_group,
        config_.name + "-g" + std::to_string(g) + "-d"));
    std::vector<disk::Disk*> disks;
    for (std::size_t i = 0; i < farms_[g]->size(); ++i) {
      disks.push_back(&farms_[g]->at(i));
    }
    raid::RaidGroup::Config rc;
    rc.level = config_.raid_level;
    rc.unit_blocks = config_.raid_unit_blocks;
    groups_.push_back(
        std::make_unique<raid::RaidGroup>(engine_, std::move(disks), rc));
  }

  std::vector<raid::RaidGroup*> group_ptrs;
  for (const auto& g : groups_) group_ptrs.push_back(g.get());
  pool_ = std::make_unique<virt::StoragePool>(std::move(group_ptrs),
                                              config_.extent_blocks);

  cache_ = std::make_unique<cache::CacheCluster>(engine_, fabric_,
                                                 controller_nodes_,
                                                 config_.cache);
  // The flush coalescer audits the representative write ids of the pages
  // it merges against the idempotency index (ghost-write invariants).
  cache_->SetDedupIndex(&dedup_);
  if (config_.tier.enabled) {
    tier_ = std::make_unique<tier::TierManager>(engine_, *cache_,
                                                config_.tier);
    tier_->SetDedupIndex(&dedup_);
    cache_->AttachTier(tier_.get());
  }
  rebuild_ = std::make_unique<raid::RebuildEngine>(engine_);
  for (std::uint32_t i = 0; i < config_.controllers; ++i) {
    rebuild_->AddWorker(&cache_->compute(i));
  }
  chargeback_ = std::make_unique<virt::ChargeBack>(engine_);
  outstanding_.assign(config_.controllers, 0);
}

StorageSystem::~StorageSystem() = default;

net::NodeId StorageSystem::AttachHost(const std::string& name) {
  const net::NodeId host = fabric_.AddNode(name);
  fabric_.Connect(host, switch_node_, config_.host_link);
  return host;
}

VolumeId StorageSystem::CreateVolume(const std::string& tenant,
                                     std::uint64_t bytes, bool preallocate) {
  const std::uint32_t bs = pool_->block_size();
  const std::uint64_t blocks = (bytes + bs - 1) / bs;
  const VolumeId id = static_cast<VolumeId>(volumes_.size());
  volumes_.push_back(std::make_unique<virt::DemandMappedVolume>(
      engine_, *pool_, blocks, tenant, id));
  if (preallocate) {
    const bool ok = volumes_.back()->Preallocate();
    assert(ok && "pool too small for preallocated volume");
    (void)ok;
  }
  cache_->RegisterVolume(id, volumes_.back().get());
  chargeback_->Track(volumes_.back().get());
  if (qos_ != nullptr) {
    const auto t = qos_->registry().FindByName(tenant);
    if (t.has_value()) qos_->registry().BindVolume(id, *t);
  }
  return id;
}

cache::ControllerId StorageSystem::PickController(VolumeId vol) {
  switch (config_.balancing) {
    case Balancing::kStaticByVolume: {
      // Traditional LUN ownership; fall over to the next blade if dead.
      for (std::uint32_t k = 0; k < config_.controllers; ++k) {
        const cache::ControllerId c = (vol + k) % config_.controllers;
        if (cache_->IsAlive(c)) return c;
      }
      return 0;
    }
    case Balancing::kLeastBusy: {
      cache::ControllerId best = 0;
      std::uint32_t best_load = ~0u;
      for (std::uint32_t c = 0; c < config_.controllers; ++c) {
        if (!cache_->IsAlive(c)) continue;
        if (outstanding_[c] < best_load) {
          best_load = outstanding_[c];
          best = c;
        }
      }
      return best;
    }
    case Balancing::kRoundRobin:
    default: {
      for (std::uint32_t k = 0; k < config_.controllers; ++k) {
        const cache::ControllerId c =
            (rr_next_ + k) % config_.controllers;
        if (cache_->IsAlive(c)) {
          rr_next_ = (c + 1) % config_.controllers;
          return c;
        }
      }
      return 0;
    }
  }
}

qos::TenantId StorageSystem::ResolveTenant(VolumeId vol,
                                           qos::TenantId hint) const {
  if (hint != qos::kAutoTenant) return hint;
  if (qos_ == nullptr) return qos::kDefaultTenant;
  return qos_->registry().ResolveVolume(vol);
}

void StorageSystem::AttachQos(qos::Scheduler* qos) {
  qos_ = qos;
  if (tier_ != nullptr) {
    // Demotion batches ride admission as their own background tenant so
    // tier traffic queues behind foreground classes.
    tier_->AttachQos(qos_, qos_ == nullptr
                               ? qos::kDefaultTenant
                               : qos_->registry().Register(
                                     "tier", qos::ServiceClass::kBronze));
  }
  if (qos_ == nullptr) return;
  // Bind existing volumes by tenant name so auto-resolution works for
  // volumes created before the scheduler was attached.
  for (VolumeId id = 0; id < volumes_.size(); ++id) {
    const auto t = qos_->registry().FindByName(volumes_[id]->tenant());
    if (t.has_value()) qos_->registry().BindVolume(id, *t);
  }
  RegisterQosMetrics();
}

void StorageSystem::RegisterQosMetrics() {
  if (hub_ == nullptr || qos_ == nullptr) return;
  obs::Registry& m = hub_->metrics();
  // One labelled series per tenant known at attach time, alongside the
  // flat aggregates (a single Prometheus scrape covers the whole
  // multi-tenant story).  Values pull from the SLO tracker at render time.
  for (const qos::Tenant& t : qos_->registry().tenants()) {
    const qos::TenantId id = t.id;
    const obs::Labels labels = {{"tenant", t.name}};
    m.AddCallback(
        "nlss_qos_ops_total", "Ops completed through QoS admission",
        [this, id] {
          return qos_ == nullptr ? 0.0 : double(qos_->slo().stats(id).ops);
        },
        labels);
    m.AddCallback(
        "nlss_qos_rejected_total", "Admission-control rejections",
        [this, id] {
          return qos_ == nullptr ? 0.0
                                 : double(qos_->slo().stats(id).rejected);
        },
        labels);
    m.AddCallback(
        "nlss_qos_bytes_total", "Bytes completed through QoS admission",
        [this, id] {
          return qos_ == nullptr ? 0.0 : double(qos_->slo().stats(id).bytes);
        },
        labels);
    m.AddCallback(
        "nlss_qos_hedges_total", "Hedge-budget grants (TryHedge)",
        [this, id] {
          return qos_ == nullptr ? 0.0 : double(qos_->slo().stats(id).hedges);
        },
        labels);
    m.AddCallback(
        "nlss_qos_hedges_shed_total",
        "Hedges denied by budget or admission pressure",
        [this, id] {
          return qos_ == nullptr ? 0.0
                                 : double(qos_->slo().stats(id).hedges_shed);
        },
        labels);
  }
}

void StorageSystem::AttachObs(obs::Hub* hub) {
  hub_ = hub;
  // Background work (flush write-backs, rebuild jobs) roots its own spans.
  cache_->SetTracer(hub_ == nullptr ? nullptr : &hub_->tracer());
  rebuild_->SetTracer(hub_ == nullptr ? nullptr : &hub_->tracer());
  if (tier_ != nullptr) {
    tier_->SetTracer(hub_ == nullptr ? nullptr : &hub_->tracer());
    tier_->AttachObs(hub_);
  }
  if (hub_ == nullptr) {
    reads_total_ = writes_total_ = io_failures_total_ = nullptr;
    read_latency_ns_ = write_latency_ns_ = nullptr;
    return;
  }
  obs::Registry& m = hub_->metrics();
  reads_total_ = &m.counter("nlss_controller_reads_total",
                            "Host/blade read requests entered");
  writes_total_ = &m.counter("nlss_controller_writes_total",
                             "Host/blade write requests entered");
  io_failures_total_ = &m.counter("nlss_controller_io_failures_total",
                                  "Requests that completed with an error");
  read_latency_ns_ = &m.histogram("nlss_controller_read_latency_ns",
                                  "End-to-end read latency incl. retries");
  write_latency_ns_ = &m.histogram("nlss_controller_write_latency_ns",
                                   "End-to-end write latency incl. retries");
  // Pull-gauges bridging the existing per-module stats structs; values are
  // read at render time so no double bookkeeping happens on the hot path.
  m.AddCallback("nlss_cache_ops_total", "Cache page operations",
                [this] { return double(cache_->Totals().ops); });
  m.AddCallback("nlss_cache_local_hits_total", "Pages served from local cache",
                [this] { return double(cache_->Totals().local_hits); });
  m.AddCallback("nlss_cache_remote_hits_total",
                "Pages forwarded from a peer cache",
                [this] { return double(cache_->Totals().remote_hits); });
  m.AddCallback("nlss_cache_misses_total", "Pages read from backing store",
                [this] { return double(cache_->Totals().misses); });
  m.AddCallback("nlss_cache_bytes_served_total", "Bytes served by the cache",
                [this] { return double(cache_->Totals().bytes_served); });
  m.AddCallback("nlss_cache_flushes_total", "Dirty-page write-backs",
                [this] { return double(cache_->Totals().flushes); });
  m.AddCallback("nlss_cache_evictions_total", "Frames evicted",
                [this] { return double(cache_->Totals().evictions); });
  m.AddCallback("nlss_cache_dirty_pages", "Dirty pages currently cached",
                [this] { return double(cache_->DirtyPages()); });
  m.AddCallback("nlss_cache_cached_pages", "Pages currently cached",
                [this] { return double(cache_->CachedPages()); });
  m.AddCallback("nlss_host_write_dedup_hits_total",
                "Duplicate write arrivals absorbed by the blade-side index",
                [this] { return double(dedup_.stats().dedup_hits); });
  m.AddCallback("nlss_host_ghost_writes_total",
                "Writes dropped at the blade after the writer reported failure",
                [this] { return double(dedup_.stats().ghost_writes); });
  m.AddCallback("nlss_write_dedup_entries",
                "Live entries in the write idempotency index",
                [this] { return double(dedup_.entries()); });
  m.AddCallback("nlss_fabric_bytes_carried_total",
                "Bytes carried by all fabric links",
                [this] { return double(fabric_.TotalBytesCarried()); });
  m.AddCallback("nlss_fabric_dropped_total",
                "Messages dropped (down node/link, no handler)",
                [this] { return double(fabric_.dropped()); });
  m.AddCallback("nlss_qos_ops_total", "Ops completed through QoS admission",
                [this] {
                  if (qos_ == nullptr) return 0.0;
                  std::uint64_t n = 0;  // exact: FP sums are order-sensitive
                  for (const auto& [t, s] : qos_->slo().all()) n += s.ops;
                  return double(n);
                });
  m.AddCallback("nlss_qos_rejected_total", "Admission-control rejections",
                [this] {
                  if (qos_ == nullptr) return 0.0;
                  std::uint64_t n = 0;
                  for (const auto& [t, s] : qos_->slo().all()) {
                    n += s.rejected;
                  }
                  return double(n);
                });
  RegisterQosMetrics();
}

obs::TraceContext StorageSystem::StartOp(obs::TraceContext ctx,
                                         const char* name, VolumeId vol,
                                         bool* root) {
  *root = false;
  const std::string tenant =
      vol < volumes_.size() ? volumes_[vol]->tenant() : std::string();
  if (ctx.sampled()) {
    ctx = obs::StartSpan(ctx, obs::Layer::kController, name);
    if (!tenant.empty()) ctx.tracer->SetTenant(ctx, tenant);
    return ctx;
  }
  if (hub_ == nullptr) return {};
  ctx = hub_->tracer().StartTrace(obs::Layer::kController, name, tenant);
  *root = ctx.sampled();
  return ctx;
}

void StorageSystem::Read(net::NodeId host, VolumeId vol, std::uint64_t offset,
                         std::uint32_t length, ReadCallback cb,
                         std::uint8_t priority, qos::TenantId tenant,
                         obs::TraceContext ctx) {
  if (reads_total_ != nullptr) reads_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.read", vol, &root);
  const sim::Tick t0 = engine_.now();
  // Host-driver multipathing: re-issue via another blade on failure.
  auto attempt = std::make_shared<std::function<void(std::uint32_t)>>();
  auto shared_cb = std::make_shared<ReadCallback>(
      [this, t0, ctx, root, cb = std::move(cb)](bool ok, util::Bytes data) {
        if (read_latency_ns_ != nullptr) {
          read_latency_ns_->Record(engine_.now() - t0);
          if (!ok) io_failures_total_->Increment();
        }
        if (root) {
          ctx.tracer->EndTrace(ctx, ok);
        } else {
          obs::EndSpan(ctx);
        }
        cb(ok, std::move(data));
      });
  *attempt = [this, host, vol, offset, length, priority, tenant, shared_cb,
              attempt, ctx](std::uint32_t retries_left) {
    ReadOnce(host, PickController(vol), vol, offset, length, priority, tenant,
             [this, shared_cb, attempt, retries_left](bool ok,
                                                      util::Bytes data) {
               if (ok || retries_left == 0) {
                 (*shared_cb)(ok, std::move(data));
                 return;
               }
               engine_.Schedule(config_.retry_delay_ns,
                                [attempt, retries_left] {
                                  (*attempt)(retries_left - 1);
                                });
             },
             ctx);
  };
  (*attempt)(config_.io_retries);
}

void StorageSystem::ReadVia(net::NodeId host, cache::ControllerId via,
                            VolumeId vol, std::uint64_t offset,
                            std::uint32_t length, ReadCallback cb,
                            std::uint8_t priority, qos::TenantId tenant,
                            obs::TraceContext ctx) {
  if (reads_total_ != nullptr) reads_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.read", vol, &root);
  const sim::Tick t0 = engine_.now();
  ReadOnce(host, via, vol, offset, length, priority, tenant,
           [this, t0, ctx, root, cb = std::move(cb)](bool ok,
                                                     util::Bytes data) {
             if (read_latency_ns_ != nullptr) {
               read_latency_ns_->Record(engine_.now() - t0);
               if (!ok) io_failures_total_->Increment();
             }
             if (root) {
               ctx.tracer->EndTrace(ctx, ok);
             } else {
               obs::EndSpan(ctx);
             }
             cb(ok, std::move(data));
           },
           ctx);
}

void StorageSystem::WriteVia(net::NodeId host, cache::ControllerId via,
                             VolumeId vol, std::uint64_t offset,
                             std::span<const std::uint8_t> data,
                             cache::WriteId wid, WriteCallback cb,
                             std::uint8_t priority, qos::TenantId tenant,
                             obs::TraceContext ctx) {
  // The host initiator re-drives and hedges through this entry: every
  // write must be attributed so the blades can deduplicate it.
  NLSS_INVARIANT(kCache, wid.valid(),
                 "WriteVia without a write id (vol %u offset %llu)", vol,
                 static_cast<unsigned long long>(offset));
  if (writes_total_ != nullptr) writes_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.write", vol, &root);
  const sim::Tick t0 = engine_.now();
  auto payload = std::make_shared<util::Bytes>(data.begin(), data.end());
  WriteOnce(host, via, vol, offset, std::move(payload),
            config_.cache.replication, priority, tenant, wid,
            [this, t0, ctx, root, cb = std::move(cb)](bool ok) {
              if (write_latency_ns_ != nullptr) {
                write_latency_ns_->Record(engine_.now() - t0);
                if (!ok) io_failures_total_->Increment();
              }
              if (root) {
                ctx.tracer->EndTrace(ctx, ok);
              } else {
                obs::EndSpan(ctx);
              }
              cb(ok);
            },
            ctx);
}

void StorageSystem::ReadOnce(net::NodeId host, cache::ControllerId ctrl,
                             VolumeId vol, std::uint64_t offset,
                             std::uint32_t length, std::uint8_t priority,
                             qos::TenantId tenant, ReadCallback cb,
                             obs::TraceContext ctx) {
  auto shared_cb = std::make_shared<ReadCallback>(std::move(cb));
  // The blade attempt, parameterized on the QoS completion hook (`done` is
  // a no-op when no scheduler is attached).
  auto issue = [this, host, ctrl, vol, offset, length, priority, shared_cb,
                ctx](std::function<void(bool)> done) {
    ++outstanding_[ctrl];
    // Request command to the blade (small), response data to the host.
    fabric_.Send(
        host, controller_nodes_[ctrl], config_.cache.ctrl_msg_bytes,
        [this, host, ctrl, vol, offset, length, priority, shared_cb, done,
         ctx] {
          cache_->Read(
              ctrl, vol, offset, length,
              [this, host, ctrl, shared_cb, done, ctx](bool ok,
                                                       util::Bytes data) {
                --outstanding_[ctrl];
                if (!ok) {
                  done(false);
                  (*shared_cb)(false, {});
                  return;
                }
                auto payload = std::make_shared<util::Bytes>(std::move(data));
                fabric_.Send(
                    controller_nodes_[ctrl], host, payload->size(),
                    [shared_cb, payload, done] {
                      done(true);
                      (*shared_cb)(true, std::move(*payload));
                    },
                    [shared_cb, done] {
                      done(false);
                      (*shared_cb)(false, {});
                    },
                    ctx);
              },
              priority, ctx);
        },
        [this, ctrl, shared_cb, done] {
          --outstanding_[ctrl];
          done(false);
          (*shared_cb)(false, {});
        },
        ctx);
  };
  if (qos_ != nullptr) {
    if (!qos_->Submit(ctrl, ResolveTenant(vol, tenant), length,
                      std::move(issue), ctx)) {
      // Admission rejected (backpressure): fail the attempt; the multipath
      // retry loop re-submits after retry_delay_ns.
      engine_.Schedule(0, [shared_cb] { (*shared_cb)(false, {}); });
    }
    return;
  }
  issue([](bool) {});
}

void StorageSystem::Write(net::NodeId host, VolumeId vol, std::uint64_t offset,
                          std::span<const std::uint8_t> data, WriteCallback cb,
                          qos::TenantId tenant, obs::TraceContext ctx) {
  WriteReplicated(host, vol, offset, data, config_.cache.replication,
                  std::move(cb), 0, tenant, ctx);
}

void StorageSystem::WriteReplicated(net::NodeId host, VolumeId vol,
                                    std::uint64_t offset,
                                    std::span<const std::uint8_t> data,
                                    std::uint32_t replication,
                                    WriteCallback cb, std::uint8_t priority,
                                    qos::TenantId tenant,
                                    obs::TraceContext ctx) {
  if (writes_total_ != nullptr) writes_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.write", vol, &root);
  const sim::Tick t0 = engine_.now();
  auto payload = std::make_shared<util::Bytes>(data.begin(), data.end());
  auto attempt = std::make_shared<std::function<void(std::uint32_t)>>();
  auto outer_cb = std::make_shared<WriteCallback>(
      [this, t0, ctx, root, cb = std::move(cb)](bool ok) {
        if (write_latency_ns_ != nullptr) {
          write_latency_ns_->Record(engine_.now() - t0);
          if (!ok) io_failures_total_->Increment();
        }
        if (root) {
          ctx.tracer->EndTrace(ctx, ok);
        } else {
          obs::EndSpan(ctx);
        }
        cb(ok);
      });
  *attempt = [this, host, vol, offset, payload, replication, priority, tenant,
              outer_cb, attempt, ctx](std::uint32_t retries_left) {
    // Legacy driver loop: unattributed ({} write id, no dedup).  Safe by
    // construction — each retry rewrites the identical payload at the
    // identical offset and the loop never overlaps attempts.
    WriteOnce(host, PickController(vol), vol, offset, payload, replication,
              priority, tenant, cache::WriteId{},
              [this, outer_cb, attempt, retries_left](bool ok) {
                if (ok || retries_left == 0) {
                  (*outer_cb)(ok);
                  return;
                }
                engine_.Schedule(config_.retry_delay_ns,
                                 [attempt, retries_left] {
                                   (*attempt)(retries_left - 1);
                                 });
              },
              ctx);
  };
  (*attempt)(config_.io_retries);
}

void StorageSystem::WriteOnce(net::NodeId host, cache::ControllerId ctrl,
                              VolumeId vol, std::uint64_t offset,
                              std::shared_ptr<util::Bytes> payload,
                              std::uint32_t replication, std::uint8_t priority,
                              qos::TenantId tenant, cache::WriteId wid,
                              WriteCallback cb, obs::TraceContext ctx) {
  auto shared_cb = std::make_shared<WriteCallback>(std::move(cb));
  auto issue = [this, host, ctrl, vol, offset, replication, priority, payload,
                wid, shared_cb, ctx](std::function<void(bool)> done) {
    ++outstanding_[ctrl];
    // Data travels host -> blade, then the ack returns blade -> host.
    fabric_.Send(
        host, controller_nodes_[ctrl], payload->size(),
        [this, host, ctrl, vol, offset, replication, priority, payload, wid,
         shared_cb, done, ctx] {
          // Shared continuation: duplicates absorbed by the dedup index
          // ride it too, so every arrival acks (and releases its QoS
          // slot) exactly once.
          auto outcome = [this, host, ctrl, shared_cb, done, ctx](bool ok) {
            --outstanding_[ctrl];
            if (!ok) {
              done(false);
              (*shared_cb)(false);
              return;
            }
            fabric_.Send(
                controller_nodes_[ctrl], host, config_.cache.ctrl_msg_bytes,
                [shared_cb, done] {
                  done(true);
                  (*shared_cb)(true);
                },
                [shared_cb, done] {
                  done(false);
                  (*shared_cb)(false);
                },
                ctx);
          };
          // Payload has landed on the blade: consult the cluster-wide
          // idempotency index before touching the data image.
          if (!dedup_.Begin(wid, outcome)) return;
          cache_->WriteWithReplication(
              ctrl, vol, offset, *payload, replication,
              [this, wid, outcome](bool ok) {
                dedup_.Complete(wid, ok);
                outcome(ok);
              },
              priority, ctx, wid);
        },
        [this, ctrl, shared_cb, done] {
          --outstanding_[ctrl];
          done(false);
          (*shared_cb)(false);
        },
        ctx);
  };
  if (qos_ != nullptr) {
    if (!qos_->Submit(ctrl, ResolveTenant(vol, tenant), payload->size(),
                      std::move(issue), ctx)) {
      engine_.Schedule(0, [shared_cb] { (*shared_cb)(false); });
    }
    return;
  }
  issue([](bool) {});
}

void StorageSystem::BladeRead(cache::ControllerId via, VolumeId vol,
                              std::uint64_t offset, std::uint32_t length,
                              std::uint8_t priority, qos::TenantId tenant,
                              ReadCallback cb, obs::TraceContext ctx) {
  if (reads_total_ != nullptr) reads_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.read", vol, &root);
  const sim::Tick t0 = engine_.now();
  auto shared_cb = std::make_shared<ReadCallback>(
      [this, t0, ctx, root, cb = std::move(cb)](bool ok, util::Bytes data) {
        if (read_latency_ns_ != nullptr) {
          read_latency_ns_->Record(engine_.now() - t0);
          if (!ok) io_failures_total_->Increment();
        }
        if (root) {
          ctx.tracer->EndTrace(ctx, ok);
        } else {
          obs::EndSpan(ctx);
        }
        cb(ok, std::move(data));
      });
  auto issue = [this, via, vol, offset, length, priority, shared_cb,
                ctx](std::function<void(bool)> done) {
    cache_->Read(
        via, vol, offset, length,
        [shared_cb, done](bool ok, util::Bytes data) {
          done(ok);
          (*shared_cb)(ok, std::move(data));
        },
        priority, ctx);
  };
  if (qos_ != nullptr) {
    if (!qos_->Submit(via, ResolveTenant(vol, tenant), length,
                      std::move(issue), ctx)) {
      engine_.Schedule(0, [shared_cb] { (*shared_cb)(false, {}); });
    }
    return;
  }
  issue([](bool) {});
}

void StorageSystem::BladeWrite(cache::ControllerId via, VolumeId vol,
                               std::uint64_t offset,
                               std::span<const std::uint8_t> data,
                               std::uint32_t replication,
                               std::uint8_t priority, qos::TenantId tenant,
                               cache::WriteId wid, WriteCallback cb,
                               obs::TraceContext ctx) {
  // No bare writes: blade-entry writes must be attributed so retried or
  // duplicated submissions stay exactly-once (tools/nlss_lint enforces
  // the call-site shape; this checks the id is actually populated).
  NLSS_INVARIANT(kCache, wid.valid(),
                 "BladeWrite without a write id (vol %u offset %llu)", vol,
                 static_cast<unsigned long long>(offset));
  if (writes_total_ != nullptr) writes_total_->Increment();
  bool root = false;
  ctx = StartOp(ctx, "controller.write", vol, &root);
  const sim::Tick t0 = engine_.now();
  // Own the payload: dispatch may be deferred past the caller's buffer.
  auto payload = std::make_shared<util::Bytes>(data.begin(), data.end());
  auto shared_cb = std::make_shared<WriteCallback>(
      [this, t0, ctx, root, cb = std::move(cb)](bool ok) {
        if (write_latency_ns_ != nullptr) {
          write_latency_ns_->Record(engine_.now() - t0);
          if (!ok) io_failures_total_->Increment();
        }
        if (root) {
          ctx.tracer->EndTrace(ctx, ok);
        } else {
          obs::EndSpan(ctx);
        }
        cb(ok);
      });
  auto issue = [this, via, vol, offset, replication, priority, payload, wid,
                shared_cb, ctx](std::function<void(bool)> done) {
    auto outcome = [shared_cb, done](bool ok) {
      done(ok);
      (*shared_cb)(ok);
    };
    if (!dedup_.Begin(wid, outcome)) return;
    cache_->WriteWithReplication(
        via, vol, offset, *payload, replication,
        [this, wid, outcome](bool ok) {
          dedup_.Complete(wid, ok);
          outcome(ok);
        },
        priority, ctx, wid);
  };
  if (qos_ != nullptr) {
    if (!qos_->Submit(via, ResolveTenant(vol, tenant), payload->size(),
                      std::move(issue), ctx)) {
      engine_.Schedule(0, [shared_cb] { (*shared_cb)(false); });
    }
    return;
  }
  issue([](bool) {});
}

void StorageSystem::FailController(std::uint32_t i) {
  cache_->FailController(i);
  rebuild_->SetWorkerAlive(static_cast<int>(i), false);
  if (meta_ != nullptr) meta_->OnBladeDown(i);
}

void StorageSystem::ReviveController(std::uint32_t i) {
  cache_->ReviveController(i);
  rebuild_->SetWorkerAlive(static_cast<int>(i), true);
  if (meta_ != nullptr) meta_->OnBladeUp(i);
}

void StorageSystem::FailAndRebuildDisk(std::uint32_t g, std::uint32_t d,
                                       std::function<void(bool)> on_done) {
  groups_[g]->disk(d).Fail();
  groups_[g]->RefreshMemberStates();
  groups_[g]->disk(d).Replace();
  rebuild_->Rebuild(*groups_[g], d, std::move(on_done));
}

}  // namespace nlss::controller
