// StorageSystem: one-site assembly of the paper's architecture.
//
// Builds the full stack — disk farms, RAID groups, storage pool, demand-
// mapped volumes, controller blades with coherent pooled cache, fabric
// topology (hosts -> FC switch -> controller mesh) — and exposes host-level
// I/O entry points with pluggable load balancing across blades.
//
//   host ---FC---> [switch] ---FC---> controller blade (cache cluster)
//                                        |  backplane mesh (coherence)
//                                        |  FC feed -> RAID -> disk farm
//
// This is the object examples and benchmarks instantiate; the geo layer
// deploys one per site.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cluster.h"
#include "cache/dedup.h"
#include "disk/disk.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "qos/scheduler.h"
#include "raid/group.h"
#include "raid/rebuild.h"
#include "sim/engine.h"
#include "tier/manager.h"
#include "virt/chargeback.h"
#include "virt/pool.h"
#include "virt/volume.h"

namespace nlss::meta {
class MetaService;
}  // namespace nlss::meta

namespace nlss::controller {

using VolumeId = std::uint32_t;

enum class Balancing {
  kRoundRobin,     // spread requests over all live blades (the paper's mode)
  kLeastBusy,      // pick the blade with the lowest outstanding-op count
  kStaticByVolume  // traditional LUN ownership: volume -> fixed blade
};

struct SystemConfig {
  std::string name = "site";
  std::uint32_t controllers = 4;
  std::uint32_t raid_groups = 4;
  std::uint32_t disks_per_group = 5;
  raid::RaidLevel raid_level = raid::RaidLevel::kRaid5;
  std::uint32_t raid_unit_blocks = 16;
  disk::DiskProfile disk_profile;
  std::uint32_t extent_blocks = 256;  // 1 MiB pool extents
  cache::CacheCluster::Config cache;
  // Flash tier between DRAM and disk (E19).  Disabled by default so the
  // untiered stack keeps bit-identical digests.
  tier::Config tier;
  net::LinkProfile host_link = net::LinkProfile::FibreChannel2G();
  net::LinkProfile backplane = net::LinkProfile::Backplane();
  Balancing balancing = Balancing::kRoundRobin;
  // Host-driver multipathing (paper §2.1 "powerful device drivers"): failed
  // requests are retried via another blade after a short delay.
  std::uint32_t io_retries = 2;
  sim::Tick retry_delay_ns = 1 * util::kNsPerMs;
};

class StorageSystem {
 public:
  StorageSystem(sim::Engine& engine, net::Fabric& fabric, SystemConfig config);
  ~StorageSystem();

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  // --- Topology -------------------------------------------------------------
  /// Add a host: creates a fabric node linked to the host-side switch.
  net::NodeId AttachHost(const std::string& name);
  net::NodeId switch_node() const { return switch_node_; }
  net::NodeId controller_node(std::uint32_t i) const {
    return controller_nodes_[i];
  }

  // --- Volumes ----------------------------------------------------------------
  VolumeId CreateVolume(const std::string& tenant, std::uint64_t bytes,
                        bool preallocate = false);
  virt::DemandMappedVolume& volume(VolumeId id) { return *volumes_[id]; }
  std::size_t volume_count() const { return volumes_.size(); }

  // --- Host I/O ----------------------------------------------------------------
  using ReadCallback = cache::CacheCluster::ReadCallback;
  using WriteCallback = cache::CacheCluster::WriteCallback;

  /// Cached I/O from `host`, routed to a blade by the balancing policy.
  /// Timing includes the host->blade and blade->host fabric transfers.
  /// `priority` is the cache retention priority (per-file policy, §4).
  /// `tenant` attributes the request for QoS scheduling; kAutoTenant
  /// resolves via the volume binding when a scheduler is attached.
  /// An unsampled `ctx` with an attached obs::Hub starts a new root trace
  /// here; a sampled one (protocol layer started it) gets a child span.
  void Read(net::NodeId host, VolumeId vol, std::uint64_t offset,
            std::uint32_t length, ReadCallback cb, std::uint8_t priority = 0,
            qos::TenantId tenant = qos::kAutoTenant,
            obs::TraceContext ctx = {});
  void Write(net::NodeId host, VolumeId vol, std::uint64_t offset,
             std::span<const std::uint8_t> data, WriteCallback cb,
             qos::TenantId tenant = qos::kAutoTenant,
             obs::TraceContext ctx = {});

  /// Same, with per-request replication/priority overrides (per-file
  /// policies).
  void WriteReplicated(net::NodeId host, VolumeId vol, std::uint64_t offset,
                       std::span<const std::uint8_t> data,
                       std::uint32_t replication, WriteCallback cb,
                       std::uint8_t priority = 0,
                       qos::TenantId tenant = qos::kAutoTenant,
                       obs::TraceContext ctx = {});

  /// Single-attempt host I/O via an explicitly chosen blade: the entry the
  /// host initiator stack (src/host) uses once its multipath layer has
  /// picked a path.  No driver retry loop — path selection, timeout,
  /// backoff, and re-drive all live with the caller.  Timing includes both
  /// host<->blade fabric legs, and the request rides the QoS admission
  /// path like any other host I/O.
  void ReadVia(net::NodeId host, cache::ControllerId via, VolumeId vol,
               std::uint64_t offset, std::uint32_t length, ReadCallback cb,
               std::uint8_t priority = 0,
               qos::TenantId tenant = qos::kAutoTenant,
               obs::TraceContext ctx = {});
  /// Writes entering here carry a WriteId (AllocWriterId + per-writer
  /// monotonic seq): the blades deduplicate on it, so timeout re-drives,
  /// path-down re-drives, hedges, and late acks apply exactly once
  /// server-side.
  void WriteVia(net::NodeId host, cache::ControllerId via, VolumeId vol,
                std::uint64_t offset, std::span<const std::uint8_t> data,
                cache::WriteId wid, WriteCallback cb,
                std::uint8_t priority = 0,
                qos::TenantId tenant = qos::kAutoTenant,
                obs::TraceContext ctx = {});

  /// Controller-local cached I/O (no host fabric legs): the entry the
  /// parallel file system uses once it has picked a blade.  Rides the same
  /// QoS admission path as host I/O.
  void BladeRead(cache::ControllerId via, VolumeId vol, std::uint64_t offset,
                 std::uint32_t length, std::uint8_t priority,
                 qos::TenantId tenant, ReadCallback cb,
                 obs::TraceContext ctx = {});
  void BladeWrite(cache::ControllerId via, VolumeId vol, std::uint64_t offset,
                  std::span<const std::uint8_t> data,
                  std::uint32_t replication, std::uint8_t priority,
                  qos::TenantId tenant, cache::WriteId wid, WriteCallback cb,
                  obs::TraceContext ctx = {});

  // --- Write idempotency (exactly-once server-side) -------------------------
  /// Allocate a writer id for WriteId stamping (one per initiator / fs).
  std::uint32_t AllocWriterId() { return next_writer_id_++; }
  /// Writer-side abandon: the op was reported failed, so any copy still in
  /// the fabric must not change the data image (ghost-write protection).
  void CancelWrite(const cache::WriteId& wid) { dedup_.Cancel(wid); }
  const cache::WriteDedupIndex& write_dedup() const { return dedup_; }

  /// Expose blade selection for components (streaming, protocols).
  cache::ControllerId PickController(VolumeId vol);

  /// Map a request to its QoS tenant (explicit id, else volume binding).
  /// Public so the host initiator can attribute hedge-budget decisions.
  qos::TenantId ResolveTenant(VolumeId vol, qos::TenantId hint) const;

  // --- QoS (multi-tenant performance isolation) ------------------------------
  /// Attach a tenant-aware admission/scheduling layer.  Existing volumes
  /// whose tenant name matches a registered QoS tenant are bound to it.
  /// Pass nullptr to detach (I/O reverts to FIFO admission).
  void AttachQos(qos::Scheduler* qos);
  qos::Scheduler* qos() const { return qos_; }

  // --- Observability -----------------------------------------------------------
  /// Attach a tracing + metrics hub.  Registers callback gauges bridging
  /// the cache/fabric/QoS stats and starts tracing host I/O (per the hub's
  /// sampling config).  Pass nullptr to detach.
  void AttachObs(obs::Hub* hub);
  obs::Hub* obs_hub() const { return hub_; }

  // --- Metadata (sharded namespace service) ----------------------------------
  /// Attach the sharded metadata service.  The controller owns the shard
  /// map's blade placement: blade failure/revival notifications are
  /// forwarded so shards remap off dead blades.  Pass nullptr to detach.
  void AttachMeta(meta::MetaService* meta) { meta_ = meta; }
  meta::MetaService* meta() const { return meta_; }

  // --- Storage tiering (heat-tracked DRAM -> flash -> disk, E19) -------------
  /// Present when SystemConfig::tier.enabled; null otherwise.
  tier::TierManager* tier() { return tier_.get(); }
  const tier::TierManager* tier() const { return tier_.get(); }

  // --- Failure / maintenance ------------------------------------------------------
  void FailController(std::uint32_t i);
  /// Sudden crash the cluster has not yet noticed (pair with a
  /// HeartbeatMonitor, or call RecoverCluster after FailController).
  void CrashController(std::uint32_t i) { cache_->CrashController(i); }
  void ReviveController(std::uint32_t i);
  void RecoverCluster() { cache_->Recover(); }
  /// Fail disk `d` of group `g`, replace it, and rebuild across blades.
  void FailAndRebuildDisk(std::uint32_t g, std::uint32_t d,
                          std::function<void(bool)> on_done);

  // --- Components --------------------------------------------------------------
  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  cache::CacheCluster& cache() { return *cache_; }
  virt::StoragePool& pool() { return *pool_; }
  raid::RaidGroup& group(std::uint32_t g) { return *groups_[g]; }
  std::uint32_t group_count() const {
    return static_cast<std::uint32_t>(groups_.size());
  }
  raid::RebuildEngine& rebuild() { return *rebuild_; }
  virt::ChargeBack& chargeback() { return *chargeback_; }
  const SystemConfig& config() const { return config_; }
  std::uint32_t controller_count() const { return config_.controllers; }

  /// Outstanding host ops per controller (for kLeastBusy and diagnostics).
  const std::vector<std::uint32_t>& outstanding() const { return outstanding_; }

 private:
  /// Single attempts against an explicit blade (no retry); the public
  /// entry points wrap these with the host-driver multipath retry loop or
  /// expose them directly (ReadVia/WriteVia).
  void ReadOnce(net::NodeId host, cache::ControllerId ctrl, VolumeId vol,
                std::uint64_t offset, std::uint32_t length,
                std::uint8_t priority, qos::TenantId tenant, ReadCallback cb,
                obs::TraceContext ctx = {});
  void WriteOnce(net::NodeId host, cache::ControllerId ctrl, VolumeId vol,
                 std::uint64_t offset, std::shared_ptr<util::Bytes> payload,
                 std::uint32_t replication, std::uint8_t priority,
                 qos::TenantId tenant, cache::WriteId wid, WriteCallback cb,
                 obs::TraceContext ctx = {});
  /// Register the labelled per-tenant QoS series (idempotent; called from
  /// AttachObs and AttachQos so attach order doesn't matter).
  void RegisterQosMetrics();
  /// Root-or-child span entry: starts a trace when `ctx` is inert and a hub
  /// is attached; otherwise opens a controller child span.  Sets *root.
  obs::TraceContext StartOp(obs::TraceContext ctx, const char* name,
                            VolumeId vol, bool* root);
  sim::Engine& engine_;
  net::Fabric& fabric_;
  SystemConfig config_;

  net::NodeId switch_node_ = net::kInvalidNode;
  std::vector<net::NodeId> controller_nodes_;
  std::vector<std::unique_ptr<disk::DiskFarm>> farms_;
  std::vector<std::unique_ptr<raid::RaidGroup>> groups_;
  std::unique_ptr<virt::StoragePool> pool_;
  std::unique_ptr<cache::CacheCluster> cache_;
  std::unique_ptr<tier::TierManager> tier_;
  std::unique_ptr<raid::RebuildEngine> rebuild_;
  std::unique_ptr<virt::ChargeBack> chargeback_;
  std::vector<std::unique_ptr<virt::DemandMappedVolume>> volumes_;
  std::uint32_t rr_next_ = 0;
  std::vector<std::uint32_t> outstanding_;
  // One cluster-wide dedup index: the coherent backplane that lets any
  // blade serve any page also lets any blade see any in-flight write, so
  // a re-drive landing on a different blade still deduplicates.
  cache::WriteDedupIndex dedup_;
  std::uint32_t next_writer_id_ = 1;
  qos::Scheduler* qos_ = nullptr;
  obs::Hub* hub_ = nullptr;
  meta::MetaService* meta_ = nullptr;
  // Hot-path instruments (owned by the hub's registry; null when detached).
  obs::Counter* reads_total_ = nullptr;
  obs::Counter* writes_total_ = nullptr;
  obs::Counter* io_failures_total_ = nullptr;
  util::Histogram* read_latency_ns_ = nullptr;
  util::Histogram* write_latency_ns_ = nullptr;
};

}  // namespace nlss::controller
