#include "controller/heartbeat.h"

namespace nlss::controller {

HeartbeatMonitor::HeartbeatMonitor(StorageSystem& system, Config config)
    : system_(system), config_(config) {
  misses_.assign(system_.controller_count(), 0);
}

cache::ControllerId HeartbeatMonitor::MonitorBlade() const {
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    if (system_.cache().IsAlive(c)) return c;
  }
  return 0;
}

void HeartbeatMonitor::Start() {
  if (running_) return;
  running_ = true;
  Tick();
}

void HeartbeatMonitor::Tick() {
  if (!running_) return;
  const cache::ControllerId monitor = MonitorBlade();
  for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
    if (c == monitor || !system_.cache().IsAlive(c)) continue;
    // Probe + ack round trip; a drop in either direction counts a miss.
    system_.fabric().Send(
        system_.controller_node(monitor), system_.controller_node(c), 64,
        [this, monitor, c] {
          system_.fabric().Send(
              system_.controller_node(c), system_.controller_node(monitor),
              64, [this, c] { misses_[c] = 0; },
              [this, c] { ++misses_[c]; });
        },
        [this, c] { ++misses_[c]; });
  }
  system_.engine().Schedule(config_.interval_ns, [this, monitor] {
    if (!running_) return;
    // Evaluate after the probes had a full interval to complete.
    for (std::uint32_t c = 0; c < system_.controller_count(); ++c) {
      if (c == monitor || !system_.cache().IsAlive(c)) continue;
      if (misses_[c] >= config_.miss_threshold) {
        ++detections_;
        misses_[c] = 0;
        system_.FailController(c);
        system_.RecoverCluster();
      }
    }
    Tick();
  });
}

}  // namespace nlss::controller
