// High-speed link driving (paper §2.3 and Figure 1): a single large read is
// striped round-robin over several controller blades, each fed by its own
// Fibre Channel disk-side links; the blades take turns pushing segments out
// of a shared high-speed (e.g. 10 GbE) port, which delivers them to the
// client strictly in order.
//
// The port's egress link is the hard ceiling (10 Gb/s); each blade's feed
// tops out at its FC rate (2 x 2 Gb/s), so stream rate ~= min(10, 4 * k)
// Gb/s with k blades — exactly the curve experiment E2 reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "controller/system.h"
#include "net/fabric.h"

namespace nlss::controller {

class HighSpeedPort {
 public:
  struct Config {
    std::uint32_t segment_bytes = 512 * util::KiB;  // stripe granule
    std::uint32_t window_per_blade = 2;  // outstanding segments per blade
    net::LinkProfile egress = net::LinkProfile::TenGbE();
    net::LinkProfile blade_to_port = net::LinkProfile::Backplane();
  };

  struct StreamResult {
    bool ok = false;
    std::uint64_t bytes = 0;
    sim::Tick elapsed_ns = 0;
    double Gbps() const {
      return util::ThroughputGbps(bytes, elapsed_ns);
    }
  };

  /// Creates the port node, links every participating blade to it, and a
  /// client node behind the egress link.
  HighSpeedPort(StorageSystem& system, std::vector<cache::ControllerId> blades,
                Config config);

  /// Stream volume[offset, offset+length) to the client; segments are
  /// assigned blades[i % k] and delivered in order.
  void Stream(VolumeId vol, std::uint64_t offset, std::uint64_t length,
              std::function<void(StreamResult)> done);

  net::NodeId port_node() const { return port_node_; }
  net::NodeId client_node() const { return client_node_; }

 private:
  struct StreamState {
    VolumeId vol = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t total_segments = 0;
    std::uint64_t next_to_issue = 0;
    std::uint64_t next_to_deliver = 0;   // in-order egress cursor
    std::uint64_t delivered_bytes = 0;
    std::map<std::uint64_t, std::uint64_t> arrived;  // seq -> bytes at port
    sim::Tick start = 0;
    bool failed = false;
    std::uint64_t outstanding = 0;
    std::function<void(StreamResult)> done;
  };

  std::uint32_t SegBytes(const StreamState& s, std::uint64_t seq) const;
  void IssueMore(const std::shared_ptr<StreamState>& s);
  void IssueSegment(const std::shared_ptr<StreamState>& s, std::uint64_t seq,
                    cache::ControllerId blade, std::uint32_t attempt);
  void SegmentAtPort(const std::shared_ptr<StreamState>& s, std::uint64_t seq,
                     std::uint64_t bytes);
  void PumpEgress(const std::shared_ptr<StreamState>& s);
  void MaybeFinish(const std::shared_ptr<StreamState>& s);

  StorageSystem& system_;
  std::vector<cache::ControllerId> blades_;
  Config config_;
  net::NodeId port_node_;
  net::NodeId client_node_;
};

}  // namespace nlss::controller
