#include "controller/highspeed.h"

#include <algorithm>
#include <cassert>

namespace nlss::controller {

HighSpeedPort::HighSpeedPort(StorageSystem& system,
                             std::vector<cache::ControllerId> blades,
                             Config config)
    : system_(system), blades_(std::move(blades)), config_(config) {
  assert(!blades_.empty());
  net::Fabric& fabric = system_.fabric();
  port_node_ = fabric.AddNode("hs-port");
  client_node_ = fabric.AddNode("hs-client");
  for (const cache::ControllerId b : blades_) {
    fabric.Connect(system_.controller_node(b), port_node_,
                   config_.blade_to_port);
  }
  fabric.Connect(port_node_, client_node_, config_.egress);
}

std::uint32_t HighSpeedPort::SegBytes(const StreamState& s,
                                      std::uint64_t seq) const {
  const std::uint64_t begin = seq * config_.segment_bytes;
  const std::uint64_t end =
      std::min<std::uint64_t>(begin + config_.segment_bytes, s.length);
  return static_cast<std::uint32_t>(end - begin);
}

void HighSpeedPort::Stream(VolumeId vol, std::uint64_t offset,
                           std::uint64_t length,
                           std::function<void(StreamResult)> done) {
  auto s = std::make_shared<StreamState>();
  s->vol = vol;
  s->offset = offset;
  s->length = length;
  s->total_segments =
      (length + config_.segment_bytes - 1) / config_.segment_bytes;
  s->start = system_.engine().now();
  s->done = std::move(done);
  if (s->total_segments == 0) {
    system_.engine().Schedule(0, [this, s] { MaybeFinish(s); });
    return;
  }
  IssueMore(s);
}

void HighSpeedPort::IssueMore(const std::shared_ptr<StreamState>& s) {
  const std::uint64_t window =
      static_cast<std::uint64_t>(blades_.size()) * config_.window_per_blade;
  while (!s->failed && s->next_to_issue < s->total_segments &&
         s->outstanding < window) {
    const std::uint64_t seq = s->next_to_issue++;
    ++s->outstanding;
    IssueSegment(s, seq, blades_[seq % blades_.size()], 0);
  }
}

void HighSpeedPort::IssueSegment(const std::shared_ptr<StreamState>& s,
                                 std::uint64_t seq, cache::ControllerId blade,
                                 std::uint32_t attempt) {
  const std::uint32_t bytes = SegBytes(*s, seq);
  const std::uint64_t seg_off =
      s->offset + seq * static_cast<std::uint64_t>(config_.segment_bytes);
  // On blade failure, rotate the segment to the next live blade: the
  // stream rides through maintenance and controller loss (paper §6.3).
  auto retry = [this, s, seq, attempt](cache::ControllerId failed_blade) {
    if (attempt + 1 >= static_cast<std::uint32_t>(blades_.size()) + 1) {
      s->failed = true;
      --s->outstanding;
      MaybeFinish(s);
      return;
    }
    cache::ControllerId next = failed_blade;
    for (std::size_t k = 1; k <= blades_.size(); ++k) {
      const cache::ControllerId candidate =
          blades_[(std::find(blades_.begin(), blades_.end(), failed_blade) -
                   blades_.begin() + k) %
                  blades_.size()];
      if (system_.cache().IsAlive(candidate)) {
        next = candidate;
        break;
      }
    }
    IssueSegment(s, seq, next, attempt + 1);
  };
  // The blade reads its segment through the coherent cache (charging its
  // compute + FC feed), then ships it to the shared port.
  system_.cache().Read(
      blade, s->vol, seg_off, bytes,
      [this, s, seq, blade, bytes, retry](bool ok, util::Bytes) {
        if (!ok) {
          retry(blade);
          return;
        }
        system_.fabric().Send(
            system_.controller_node(blade), port_node_, bytes,
            [this, s, seq, bytes] { SegmentAtPort(s, seq, bytes); },
            [retry, blade] { retry(blade); });
      });
}

void HighSpeedPort::SegmentAtPort(const std::shared_ptr<StreamState>& s,
                                  std::uint64_t seq, std::uint64_t bytes) {
  s->arrived[seq] = bytes;
  PumpEgress(s);
}

void HighSpeedPort::PumpEgress(const std::shared_ptr<StreamState>& s) {
  // Emit consecutive ready segments over the egress link, in order.
  while (true) {
    auto it = s->arrived.find(s->next_to_deliver);
    if (it == s->arrived.end()) return;
    const std::uint64_t bytes = it->second;
    s->arrived.erase(it);
    ++s->next_to_deliver;
    system_.fabric().Send(
        port_node_, client_node_, bytes,
        [this, s, bytes] {
          s->delivered_bytes += bytes;
          --s->outstanding;
          IssueMore(s);
          MaybeFinish(s);
        },
        [this, s] {
          s->failed = true;
          --s->outstanding;
          MaybeFinish(s);
        });
  }
}

void HighSpeedPort::MaybeFinish(const std::shared_ptr<StreamState>& s) {
  if (s->done == nullptr) return;
  const bool complete =
      s->next_to_deliver == s->total_segments && s->outstanding == 0;
  const bool aborted = s->failed && s->outstanding == 0;
  if (!complete && !aborted) return;
  StreamResult r;
  r.ok = !s->failed;
  r.bytes = s->delivered_bytes;
  r.elapsed_ns = system_.engine().now() - s->start;
  auto done = std::move(s->done);
  s->done = nullptr;
  done(r);
}

}  // namespace nlss::controller
