// Heartbeat failure detector: the cluster-availability machinery behind the
// paper's §6.3 "if any given portion of the system failed, access to data
// would continue through remaining portions" — modelled on the VAX Cluster
// lineage the paper cites.
//
// The lowest-id live blade acts as the monitor: every interval it probes
// its peers over the fabric.  A peer that misses `miss_threshold`
// consecutive probes is declared dead: the detector fails it out of the
// cache cluster and runs recovery (directory rebuild + replica promotion),
// after which I/O continues without operator action.  If the monitor blade
// itself dies, the next-lowest live blade takes over (probes simply start
// originating there on the following tick).
#pragma once

#include <cstdint>
#include <vector>

#include "controller/system.h"

namespace nlss::controller {

class HeartbeatMonitor {
 public:
  struct Config {
    sim::Tick interval_ns = 50 * util::kNsPerMs;
    std::uint32_t miss_threshold = 3;
  };

  explicit HeartbeatMonitor(StorageSystem& system)
      : HeartbeatMonitor(system, Config()) {}
  HeartbeatMonitor(StorageSystem& system, Config config);

  void Start();
  void Stop() { running_ = false; }

  std::uint32_t detections() const { return detections_; }
  bool running() const { return running_; }

 private:
  void Tick();
  cache::ControllerId MonitorBlade() const;

  StorageSystem& system_;
  Config config_;
  bool running_ = false;
  std::vector<std::uint32_t> misses_;
  std::uint32_t detections_ = 0;
};

}  // namespace nlss::controller
