#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/keystore.h"
#include "fs/filesystem.h"
#include "proto/block_target.h"
#include "qos/scheduler.h"
#include "qos/slo.h"
#include "qos/tenant.h"
#include "qos/token_bucket.h"
#include "qos/wfq.h"
#include "security/audit.h"
#include "security/auth.h"
#include "security/control.h"
#include "security/lun_mask.h"
#include "sim/engine.h"
#include "util/units.h"

namespace nlss::qos {
namespace {

// --- Token bucket ----------------------------------------------------------

TEST(TokenBucketTest, RefillTimingIsExact) {
  sim::Engine engine;
  TokenBucket bucket(1000, 500);  // 1000 B/s, 500 B burst; starts full

  EXPECT_TRUE(bucket.TryTake(500, engine.now()));
  EXPECT_FALSE(bucket.TryTake(1, engine.now()));

  // 1 byte at 1000 B/s = exactly 1 ms.
  EXPECT_EQ(bucket.EligibleAt(1, engine.now()), 1 * util::kNsPerMs);
  EXPECT_FALSE(bucket.TryTake(1, 1 * util::kNsPerMs - 1));
  EXPECT_TRUE(bucket.TryTake(1, 1 * util::kNsPerMs));

  // Sub-token remainders accumulate: after spending the byte, the next
  // byte is again exactly 1 ms out.
  EXPECT_EQ(bucket.EligibleAt(1, 1 * util::kNsPerMs), 2 * util::kNsPerMs);
}

TEST(TokenBucketTest, BucketCapsAtBurstAndUncappedAlwaysPasses) {
  TokenBucket bucket(1000, 500);
  // Idle for 10 s: balance saturates at the burst, not 10000.
  EXPECT_EQ(bucket.BalanceAt(10 * util::kNsPerSec), 500);

  TokenBucket uncapped(0, 0);
  EXPECT_TRUE(uncapped.TryTake(1ull << 40, 0));
}

TEST(TokenBucketTest, OversizedOpChargedInFullViaDebt) {
  TokenBucket bucket(1000, 500);
  // A 2000-byte op needs only a full (500) bucket to go, but is charged
  // all 2000 bytes: balance goes to -1500, enforcing the long-run rate.
  EXPECT_TRUE(bucket.TryTake(2000, 0));
  EXPECT_EQ(bucket.BalanceAt(0), -1500);
  // Paying off the debt plus a full refill takes (1500+500)/1000 s = 2 s.
  EXPECT_EQ(bucket.EligibleAt(500, 0), 2 * util::kNsPerSec);
}

// --- WFQ ordering ------------------------------------------------------------

TEST(FairQueueTest, UnequalWeightsShareByWeight) {
  FairQueue q;
  const TenantId a = 1, b = 2;
  // 6 ops each, equal cost; weight 2 vs 1.
  for (int i = 0; i < 6; ++i) {
    q.Push(QueuedOp{a, 100, 0, nullptr, 0, 0}, 2);
    q.Push(QueuedOp{b, 100, 0, nullptr, 0, 0}, 1);
  }
  auto always = [](TenantId, std::uint64_t) { return true; };
  std::vector<TenantId> order;
  int a_in_first_six = 0;
  for (int i = 0; i < 12; ++i) {
    auto op = q.PopEligible(always);
    ASSERT_TRUE(op.has_value());
    order.push_back(op->tenant);
    if (i < 6 && op->tenant == a) ++a_in_first_six;
  }
  EXPECT_TRUE(q.empty());
  // Over the backlogged prefix, A is dispatched ~2x as often as B.
  EXPECT_EQ(a_in_first_six, 4);
  // Deterministic: equal start tags break ties by tenant id.
  EXPECT_EQ(order.front(), a);
}

TEST(FairQueueTest, ThrottledFlowDoesNotBlockOthers) {
  FairQueue q;
  q.Push(QueuedOp{1, 100, 0, nullptr, 0, 0}, 1);
  q.Push(QueuedOp{2, 100, 0, nullptr, 0, 0}, 1);
  // Tenant 1 is token-starved: eligible() rejects it.
  auto op = q.PopEligible(
      [](TenantId t, std::uint64_t) { return t != 1; });
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->tenant, 2u);
  EXPECT_EQ(q.TenantDepth(1), 1u);
}

// --- Scheduler: DES-scheduled refill ---------------------------------------

TEST(SchedulerTest, ThrottledDispatchWakesAtExactRefillTick) {
  sim::Engine engine;
  TenantRegistry registry;
  const TenantId bronze = registry.Register("bronze-lab", ServiceClass::kBronze);
  ClassSpec spec = registry.spec(ServiceClass::kBronze);
  spec.rate_bytes_per_sec = 1000;
  spec.burst_bytes = 500;
  registry.SetClassSpec(ServiceClass::kBronze, spec);

  Scheduler qos(engine, registry, 1);
  std::vector<sim::Tick> dispatched;
  auto issue = [&] {
    ASSERT_TRUE(qos.Submit(0, bronze, 500, [&](std::function<void(bool)> done) {
      dispatched.push_back(engine.now());
      done(true);
    }));
  };
  issue();  // burst: immediate
  issue();  // waits a full 500-byte refill = 0.5 s
  issue();  // another 0.5 s behind that
  engine.Run();
  ASSERT_EQ(dispatched.size(), 3u);
  EXPECT_EQ(dispatched[0], 0u);
  EXPECT_EQ(dispatched[1], util::kNsPerSec / 2);
  EXPECT_EQ(dispatched[2], util::kNsPerSec);
}

// --- Scheduler: admission control / backpressure -----------------------------

TEST(SchedulerTest, BoundedBladeQueueRejects) {
  sim::Engine engine;
  TenantRegistry registry;
  const TenantId t = registry.Register("lab", ServiceClass::kGold);
  Scheduler::Config cfg;
  cfg.max_in_service_per_blade = 1;
  cfg.max_queue_per_blade = 3;
  Scheduler qos(engine, registry, 2, cfg);

  // Park one op in service (its done is held), then fill the queue.
  std::function<void(bool)> parked_done;
  ASSERT_TRUE(qos.Submit(0, t, 100, [&](std::function<void(bool)> done) {
    parked_done = std::move(done);
  }));
  engine.Run();
  ASSERT_TRUE(parked_done);

  int launched = 0;
  auto launch = [&](std::function<void(bool)> done) {
    ++launched;
    done(true);
  };
  EXPECT_TRUE(qos.Submit(0, t, 100, launch));
  EXPECT_TRUE(qos.Submit(0, t, 100, launch));
  EXPECT_TRUE(qos.Submit(0, t, 100, launch));
  EXPECT_FALSE(qos.Submit(0, t, 100, launch));  // queue bound hit
  EXPECT_EQ(qos.slo().stats(t).rejected, 1u);
  // Other blades are unaffected.
  EXPECT_TRUE(qos.Submit(1, t, 100, launch));

  // Completing the parked op drains the queue in order.
  parked_done(true);
  engine.Run();
  EXPECT_EQ(launched, 4);
  EXPECT_EQ(qos.QueueDepth(0), 0u);
}

TEST(SchedulerTest, PerTenantDepthCapIsolatesTenants) {
  sim::Engine engine;
  TenantRegistry registry;
  const TenantId hog = registry.Register("hog", ServiceClass::kBronze);
  const TenantId vip = registry.Register("vip", ServiceClass::kGold);
  ClassSpec spec = registry.spec(ServiceClass::kBronze);
  spec.max_queue_depth = 2;
  registry.SetClassSpec(ServiceClass::kBronze, spec);
  Scheduler::Config cfg;
  cfg.max_in_service_per_blade = 1;
  cfg.max_queue_per_blade = 100;
  Scheduler qos(engine, registry, 1, cfg);

  std::function<void(bool)> parked_done;
  ASSERT_TRUE(qos.Submit(0, vip, 1, [&](std::function<void(bool)> done) {
    parked_done = std::move(done);
  }));
  auto noop = [](std::function<void(bool)> done) { done(true); };
  EXPECT_TRUE(qos.Submit(0, hog, 1, noop));
  EXPECT_TRUE(qos.Submit(0, hog, 1, noop));
  // The hog is over its own cap...
  EXPECT_FALSE(qos.Submit(0, hog, 1, noop));
  EXPECT_EQ(qos.slo().stats(hog).rejected, 1u);
  // ...but the gold tenant still gets in (blade queue has room).
  EXPECT_TRUE(qos.Submit(0, vip, 1, noop));
  parked_done(true);
  engine.Run();
}

// --- Scheduler: weight share end to end ------------------------------------

TEST(SchedulerTest, BackloggedTenantsShareByConfiguredWeights) {
  sim::Engine engine;
  TenantRegistry registry;
  const TenantId a = registry.Register("a", ServiceClass::kGold);    // w=8
  const TenantId b = registry.Register("b", ServiceClass::kBronze);  // w=1
  Scheduler::Config cfg;
  cfg.max_in_service_per_blade = 1;
  cfg.max_queue_per_blade = 1000;
  Scheduler qos(engine, registry, 1, cfg);

  // Closed loops: each tenant keeps 8 equal-cost ops queued; service takes
  // a fixed 1 us downstream.
  std::uint64_t done_a = 0, done_b = 0;
  std::function<void(TenantId)> submit = [&](TenantId t) {
    EXPECT_TRUE(qos.Submit(0, t, 1000, [&, t](std::function<void(bool)> done) {
      engine.Schedule(1 * util::kNsPerUs, [&, t, done] {
        (t == a ? done_a : done_b) += 1;
        done(true);
        if (engine.now() < 10 * util::kNsPerMs) submit(t);
      });
    })) << "closed-loop submit rejected despite deep queue";
  };
  for (int i = 0; i < 8; ++i) {
    submit(a);
    submit(b);
  }
  engine.Run();
  ASSERT_GT(done_b, 0u);
  const double ratio = static_cast<double>(done_a) / done_b;
  EXPECT_NEAR(ratio, 8.0, 8.0 * 0.10);  // within 10% of the 8:1 weights
}

// --- Tenant resolution: session login and FilePolicy -------------------------

class QosStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller::SystemConfig config;
    config.disk_profile.capacity_blocks = 16 * 1024;
    fabric_ = std::make_unique<net::Fabric>(engine_);
    system_ = std::make_unique<controller::StorageSystem>(engine_, *fabric_,
                                                          config);
    auth_ = std::make_unique<security::AuthService>(engine_, keys_);
    audit_ = std::make_unique<security::AuditLog>(engine_);
    auth_->AddUser("alice", "pw", {"reader", "writer"});
    host_ = system_->AttachHost("client");

    gold_ = registry_.Register("oltp-lab", ServiceClass::kGold);
    bronze_ = registry_.Register("scan-lab", ServiceClass::kBronze);
    registry_.BindUser("alice", gold_);
    qos_ = std::make_unique<Scheduler>(engine_, registry_,
                                       system_->controller_count());
    system_->AttachQos(qos_.get());
  }

  sim::Engine engine_;
  crypto::KeyStore keys_{std::string_view("pw-master")};
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<controller::StorageSystem> system_;
  std::unique_ptr<security::AuthService> auth_;
  std::unique_ptr<security::AuditLog> audit_;
  net::NodeId host_ = net::kInvalidNode;
  TenantRegistry registry_;
  std::unique_ptr<Scheduler> qos_;
  TenantId gold_ = kDefaultTenant;
  TenantId bronze_ = kDefaultTenant;
};

TEST_F(QosStackTest, BlockSessionLoginCarriesTenantToSlo) {
  security::LunMasking mask;
  security::CommandPolicy policy;
  proto::BlockTarget target(*system_, *auth_, mask, policy, *audit_);
  target.AttachQos(&registry_);
  const auto vol = system_->CreateVolume("t", 16 * util::MiB);
  mask.Allow("host-a", vol);

  const auto session = target.Login(host_, "host-a", "alice", "pw");
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(target.SessionTenant(*session), gold_);

  util::Bytes data(4096, 0xAB);
  proto::BlockStatus ws = proto::BlockStatus::kIoError;
  target.Write(*session, vol, 0, data, [&](proto::BlockStatus s) { ws = s; });
  engine_.Run();
  EXPECT_EQ(ws, proto::BlockStatus::kOk);

  proto::BlockStatus rs = proto::BlockStatus::kIoError;
  target.Read(*session, vol, 0, 1,
              [&](proto::BlockStatus s, util::Bytes, std::uint32_t) {
                rs = s;
              });
  engine_.Run();
  EXPECT_EQ(rs, proto::BlockStatus::kOk);

  // Both ops were attributed to alice's tenant, not the default.
  EXPECT_EQ(qos_->slo().stats(gold_).ops, 2u);
  EXPECT_EQ(qos_->slo().stats(kDefaultTenant).ops, 0u);
}

TEST_F(QosStackTest, FilePolicyRoutesFsIoToTenant) {
  fs::FileSystem fsys(*system_);
  fs::FilePolicy policy;
  policy.qos_tenant = bronze_;
  ASSERT_EQ(fsys.Create("/scan.dat", policy), fs::Status::kOk);

  util::Bytes data(64 * util::KiB, 0x5C);
  fs::Status ws = fs::Status::kIoError;
  fsys.Write("/scan.dat", 0, data, [&](fs::Status s) { ws = s; });
  engine_.Run();
  EXPECT_EQ(ws, fs::Status::kOk);

  fs::Status rs = fs::Status::kIoError;
  fsys.Read("/scan.dat", 0, data.size(), [&](fs::Status s, util::Bytes) {
    rs = s;
  });
  engine_.Run();
  EXPECT_EQ(rs, fs::Status::kOk);

  const auto& stats = qos_->slo().stats(bronze_);
  EXPECT_GE(stats.ops, 2u);
  EXPECT_GT(stats.bytes, 0u);
  // The policy survives a metadata round trip.
  fs::FileSystem copy(*system_);
  ASSERT_EQ(copy.LoadMetadata(fsys.SerializeMetadata()), fs::Status::kOk);
  ASSERT_NE(copy.Stat("/scan.dat"), nullptr);
  EXPECT_EQ(copy.Stat("/scan.dat")->policy.qos_tenant, bronze_);
}

}  // namespace
}  // namespace nlss::qos
