#include <gtest/gtest.h>

#include <set>

#include "raid/gf256.h"
#include "raid/layout.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace nlss::raid {
namespace {

TEST(Gf256, MulBasics) {
  EXPECT_EQ(Gf256::Mul(0, 77), 0);
  EXPECT_EQ(Gf256::Mul(77, 0), 0);
  EXPECT_EQ(Gf256::Mul(1, 77), 77);
  EXPECT_EQ(Gf256::Mul(2, 0x80), 0x1D);  // overflow reduces by 0x11D
}

TEST(Gf256, MulCommutativeAssociative) {
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.Below(256));
    const auto b = static_cast<std::uint8_t>(rng.Below(256));
    const auto c = static_cast<std::uint8_t>(rng.Below(256));
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over XOR (field addition).
    EXPECT_EQ(Gf256::Mul(a, static_cast<std::uint8_t>(b ^ c)),
              Gf256::Mul(a, b) ^ Gf256::Mul(a, c));
  }
}

TEST(Gf256, InverseProperty) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = Gf256::Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, DivInvertsMul) {
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.Below(256));
    const auto b = static_cast<std::uint8_t>(rng.Range(1, 255));
    EXPECT_EQ(Gf256::Div(Gf256::Mul(a, b), b), a);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  std::set<std::uint8_t> seen;
  for (unsigned i = 0; i < 255; ++i) seen.insert(Gf256::Exp(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(Gf256::Exp(0), 1);
  EXPECT_EQ(Gf256::Exp(255), 1);  // wraps
}

TEST(Gf256, BufferKernels) {
  util::Bytes a(1000), b(1000);
  util::FillPattern(a, 1);
  util::FillPattern(b, 2);
  util::Bytes x = a;
  XorInto(x, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i], a[i] ^ b[i]);
  }
  // GfMulInto with coeff 1 == XorInto.
  util::Bytes y = a;
  GfMulInto(y, b, 1);
  EXPECT_EQ(y, x);
  // GfMulInto general case, element-wise check.
  util::Bytes z = a;
  GfMulInto(z, b, 0x53);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_EQ(z[i], a[i] ^ Gf256::Mul(b[i], 0x53));
  }
  // GfScale.
  util::Bytes w = a;
  GfScale(w, 0x7);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i], Gf256::Mul(a[i], 0x7));
  }
}

// --- Layout property tests ---------------------------------------------

struct LayoutCase {
  RaidLevel level;
  std::uint32_t width;
};

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutPropertyTest, RolesPartitionEveryStripe) {
  const auto [level, width] = GetParam();
  const Layout layout(level, width, 16);
  for (std::uint64_t s = 0; s < 4 * width; ++s) {
    std::set<std::uint32_t> data_indices;
    unsigned p_count = 0, q_count = 0;
    for (std::uint32_t d = 0; d < width; ++d) {
      const UnitRole role = layout.RoleOf(s, d);
      switch (role.kind) {
        case UnitRole::kData:
          EXPECT_LT(role.data_index, layout.DataUnitsPerStripe());
          if (level != RaidLevel::kRaid1) {
            EXPECT_TRUE(data_indices.insert(role.data_index).second)
                << "duplicate data index in stripe " << s;
          }
          break;
        case UnitRole::kParityP: ++p_count; break;
        case UnitRole::kParityQ: ++q_count; break;
      }
    }
    switch (level) {
      case RaidLevel::kRaid0:
      case RaidLevel::kRaid1:
        EXPECT_EQ(p_count, 0u);
        EXPECT_EQ(q_count, 0u);
        break;
      case RaidLevel::kRaid5:
        EXPECT_EQ(p_count, 1u);
        EXPECT_EQ(q_count, 0u);
        EXPECT_EQ(data_indices.size(), width - 1);
        break;
      case RaidLevel::kRaid6:
        EXPECT_EQ(p_count, 1u);
        EXPECT_EQ(q_count, 1u);
        EXPECT_EQ(data_indices.size(), width - 2);
        break;
    }
  }
}

TEST_P(LayoutPropertyTest, DiskForDataMatchesRoleOf) {
  const auto [level, width] = GetParam();
  const Layout layout(level, width, 8);
  if (level == RaidLevel::kRaid1) return;  // mirrors: all disks hold unit 0
  for (std::uint64_t s = 0; s < 3 * width; ++s) {
    for (std::uint32_t u = 0; u < layout.DataUnitsPerStripe(); ++u) {
      const std::uint32_t d = layout.DiskForData(s, u);
      const UnitRole role = layout.RoleOf(s, d);
      EXPECT_EQ(role.kind, UnitRole::kData);
      EXPECT_EQ(role.data_index, u);
    }
  }
}

TEST_P(LayoutPropertyTest, SplitRoundtrips) {
  const auto [level, width] = GetParam();
  const Layout layout(level, width, 8);
  const std::uint32_t dbs = layout.DataBlocksPerStripe();
  for (std::uint64_t blk = 0; blk < 10 * dbs; blk += 3) {
    const auto a = layout.Split(blk);
    EXPECT_EQ(a.stripe * dbs + a.data_unit * layout.unit_blocks() +
                  a.offset_blocks,
              blk);
    EXPECT_LT(a.data_unit, layout.DataUnitsPerStripe());
    EXPECT_LT(a.offset_blocks, layout.unit_blocks());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, LayoutPropertyTest,
    ::testing::Values(LayoutCase{RaidLevel::kRaid0, 1},
                      LayoutCase{RaidLevel::kRaid0, 4},
                      LayoutCase{RaidLevel::kRaid1, 2},
                      LayoutCase{RaidLevel::kRaid1, 3},
                      LayoutCase{RaidLevel::kRaid5, 3},
                      LayoutCase{RaidLevel::kRaid5, 5},
                      LayoutCase{RaidLevel::kRaid5, 8},
                      LayoutCase{RaidLevel::kRaid6, 4},
                      LayoutCase{RaidLevel::kRaid6, 6},
                      LayoutCase{RaidLevel::kRaid6, 10}),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      return std::string(RaidLevelName(info.param.level) + 5) + "w" +
             std::to_string(info.param.width);
    });

TEST(Layout, ParityRotatesAcrossAllDisks) {
  const Layout layout(RaidLevel::kRaid5, 5, 16);
  std::set<std::uint32_t> parity_disks;
  for (std::uint64_t s = 0; s < 5; ++s) parity_disks.insert(layout.PDisk(s));
  EXPECT_EQ(parity_disks.size(), 5u) << "parity must rotate over every disk";
}

TEST(Layout, Raid6PAndQDistinct) {
  const Layout layout(RaidLevel::kRaid6, 6, 16);
  for (std::uint64_t s = 0; s < 12; ++s) {
    EXPECT_NE(layout.PDisk(s), layout.QDisk(s));
  }
}

TEST(Layout, CapacityMath) {
  const Layout r5(RaidLevel::kRaid5, 5, 16);
  // 1024 blocks/disk, 16-block units -> 64 stripes * 4 data units * 16.
  EXPECT_EQ(r5.DataCapacityBlocks(1024), 64u * 4 * 16);
  const Layout r1(RaidLevel::kRaid1, 3, 16);
  EXPECT_EQ(r1.DataCapacityBlocks(1024), 1024u);
  const Layout r0(RaidLevel::kRaid0, 4, 16);
  EXPECT_EQ(r0.DataCapacityBlocks(1024), 4096u);
}

TEST(Layout, FaultToleranceValues) {
  EXPECT_EQ(FaultTolerance(RaidLevel::kRaid0, 4), 0u);
  EXPECT_EQ(FaultTolerance(RaidLevel::kRaid1, 3), 2u);
  EXPECT_EQ(FaultTolerance(RaidLevel::kRaid5, 5), 1u);
  EXPECT_EQ(FaultTolerance(RaidLevel::kRaid6, 8), 2u);
}

}  // namespace
}  // namespace nlss::raid
