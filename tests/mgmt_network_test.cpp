#include <gtest/gtest.h>

#include <memory>

#include "crypto/keystore.h"
#include "mgmt/mgmt_network.h"
#include "sim/engine.h"

namespace nlss::mgmt {
namespace {

class MgmtNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller::SystemConfig config;
    config.controllers = 3;
    config.raid_groups = 2;
    config.disk_profile.capacity_blocks = 8 * 1024;
    fabric_ = std::make_unique<net::Fabric>(engine_);
    system_ = std::make_unique<controller::StorageSystem>(engine_, *fabric_,
                                                          config);
    auth_ = std::make_unique<security::AuthService>(engine_, keys_);
    audit_ = std::make_unique<security::AuditLog>(engine_);
    alerts_ = std::make_unique<AlertManager>(engine_);
    auth_->AddUser("ops", "pw", {"admin"});
    admin_ = std::make_unique<AdminHttp>(*system_, *auth_, *alerts_, *audit_);
    mgmt_net_ = std::make_unique<ManagementNetwork>(*system_, *admin_);
    station_ = mgmt_net_->AddStation("noc-console");
    token_ = *auth_->Login("ops", "pw");
  }

  proto::HttpResponse Get(const std::string& path) {
    proto::HttpResponse resp;
    bool fired = false;
    mgmt_net_->Request(station_,
                       "GET " + path + " HTTP/1.0\r\nAuthorization: " +
                           token_ + "\r\n\r\n",
                       [&](proto::HttpResponse r) {
                         resp = std::move(r);
                         fired = true;
                       });
    engine_.Run();
    EXPECT_TRUE(fired);
    return resp;
  }

  sim::Engine engine_;
  crypto::KeyStore keys_{std::string_view("k")};
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<controller::StorageSystem> system_;
  std::unique_ptr<security::AuthService> auth_;
  std::unique_ptr<security::AuditLog> audit_;
  std::unique_ptr<AlertManager> alerts_;
  std::unique_ptr<AdminHttp> admin_;
  std::unique_ptr<ManagementNetwork> mgmt_net_;
  net::NodeId station_ = net::kInvalidNode;
  std::string token_;
};

TEST_F(MgmtNetworkTest, StatusOverManagementNetwork) {
  const auto resp = Get("/status");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(std::string(resp.body.begin(), resp.body.end())
                .find("\"controllers\""),
            std::string::npos);
}

TEST_F(MgmtNetworkTest, SurvivesHostFabricOutage) {
  // Figure 2's whole point: kill the host-side switch; management lives on.
  fabric_->SetNodeUp(system_->switch_node(), false);
  const auto resp = Get("/status");
  EXPECT_EQ(resp.status, 200)
      << "out-of-band management must not depend on the host fabric";
}

TEST_F(MgmtNetworkTest, ManagementIsolatedFromHostNetwork) {
  // A host node must have no route to the management switch: the networks
  // only share the blade hardware, not links.
  const auto host = system_->AttachHost("compromised-host");
  EXPECT_EQ(fabric_->HopCount(host, mgmt_net_->mgmt_switch()),
            static_cast<std::size_t>(-1))
      << "host fabric must not reach the management network";
}

TEST_F(MgmtNetworkTest, UnavailableWhenAllBladesDead) {
  for (std::uint32_t c = 0; c < system_->controller_count(); ++c) {
    system_->FailController(c);
  }
  proto::HttpResponse resp;
  mgmt_net_->Request(station_, "GET /status HTTP/1.0\r\nAuthorization: " +
                                   token_ + "\r\n\r\n",
                     [&](proto::HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 503);
}

TEST_F(MgmtNetworkTest, AuthStillEnforcedOutOfBand) {
  proto::HttpResponse resp;
  mgmt_net_->Request(station_, "GET /status HTTP/1.0\r\n\r\n",
                     [&](proto::HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 401) << "out-of-band does not mean unauthenticated";
}

}  // namespace
}  // namespace nlss::mgmt
