#include <gtest/gtest.h>

#include "disk/disk.h"
#include "sim/engine.h"
#include "util/bytes.h"

namespace nlss::disk {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  DiskProfile profile;  // defaults

  std::unique_ptr<Disk> MakeDisk() {
    return std::make_unique<Disk>(engine, profile, "d0");
  }
};

TEST_F(DiskTest, UnwrittenBlocksReadZero) {
  auto d = MakeDisk();
  util::Bytes got;
  d->Read(10, 2, [&](bool ok, util::Bytes data) {
    EXPECT_TRUE(ok);
    got = std::move(data);
  });
  engine.Run();
  ASSERT_EQ(got.size(), 2u * profile.block_size);
  for (auto b : got) EXPECT_EQ(b, 0);
}

TEST_F(DiskTest, WriteThenReadRoundtrip) {
  auto d = MakeDisk();
  util::Bytes data(3 * profile.block_size);
  util::FillPattern(data, 5);
  bool wrote = false;
  d->Write(100, data, [&](bool ok) { wrote = ok; });
  engine.Run();
  EXPECT_TRUE(wrote);
  util::Bytes got;
  d->Read(100, 3, [&](bool, util::Bytes b) { got = std::move(b); });
  engine.Run();
  EXPECT_EQ(got, data);
}

TEST_F(DiskTest, PartialOverlapReads) {
  auto d = MakeDisk();
  util::Bytes data(2 * profile.block_size);
  util::FillPattern(data, 7);
  d->Write(50, data, [](bool) {});
  engine.Run();
  util::Bytes got;
  d->Read(51, 1, [&](bool, util::Bytes b) { got = std::move(b); });
  engine.Run();
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         data.begin() + profile.block_size));
}

TEST_F(DiskTest, RandomAccessPaysSeek) {
  auto d = MakeDisk();
  sim::Tick t_random = 0;
  // A full-stroke seek costs well above the average seek time.
  d->Read(profile.capacity_blocks - 1, 1,
          [&](bool, util::Bytes) { t_random = engine.now(); });
  engine.Run();
  EXPECT_GE(t_random, profile.avg_seek_ns + profile.half_rotation_ns);
}

TEST_F(DiskTest, SeekCostScalesWithDistance) {
  // Short strides (slightly out-of-order streaming) must cost far less
  // than full-stroke seeks: the a + b*sqrt(d) curve.
  auto measure = [&](std::uint64_t from, std::uint64_t to) {
    auto d = MakeDisk();
    sim::Engine& e = engine;
    sim::Tick t0 = 0, t1 = 0;
    d->Read(from, 1, [&](bool, util::Bytes) { t0 = e.now(); });
    engine.Run();
    d->Read(to, 1, [&](bool, util::Bytes) { t1 = e.now(); });
    engine.Run();
    return t1 - t0;
  };
  const sim::Tick near = measure(0, 32);  // skip 31 blocks
  const sim::Tick far = measure(0, profile.capacity_blocks - 2);
  EXPECT_LT(near, 3 * util::kNsPerMs);
  EXPECT_GT(far, 6 * util::kNsPerMs);
  EXPECT_LT(4 * near, far);
}

TEST_F(DiskTest, SequentialAccessSkipsSeek) {
  auto d = MakeDisk();
  // First access seeks; the follow-on at the next LBA is sequential.
  sim::Tick t1 = 0, t2 = 0;
  d->Read(0, 1, [&](bool, util::Bytes) { t1 = engine.now(); });
  engine.Run();
  d->Read(1, 1, [&](bool, util::Bytes) { t2 = engine.now(); });
  engine.Run();
  const sim::Tick transfer_only = t2 - t1;
  EXPECT_LT(transfer_only, profile.avg_seek_ns)
      << "sequential access must not pay the seek penalty";
}

TEST_F(DiskTest, FifoQueueing) {
  auto d = MakeDisk();
  sim::Tick t1 = 0, t2 = 0;
  d->Read(0, 1, [&](bool, util::Bytes) { t1 = engine.now(); });
  d->Read(1, 1, [&](bool, util::Bytes) { t2 = engine.now(); });
  engine.Run();
  EXPECT_GT(t2, t1);
}

TEST_F(DiskTest, FailedDiskRejectsIo) {
  auto d = MakeDisk();
  d->Fail();
  bool read_ok = true, write_ok = true;
  d->Read(0, 1, [&](bool ok, util::Bytes) { read_ok = ok; });
  util::Bytes data(profile.block_size);
  d->Write(0, data, [&](bool ok) { write_ok = ok; });
  engine.Run();
  EXPECT_FALSE(read_ok);
  EXPECT_FALSE(write_ok);
}

TEST_F(DiskTest, FailureMidFlightFailsOutstandingIo) {
  auto d = MakeDisk();
  bool ok = true;
  d->Read(0, 1, [&](bool r, util::Bytes) { ok = r; });
  d->Fail();  // before the simulated completion
  engine.Run();
  EXPECT_FALSE(ok);
}

TEST_F(DiskTest, ReplaceGivesFreshZeroedDrive) {
  auto d = MakeDisk();
  util::Bytes data(profile.block_size);
  util::FillPattern(data, 1);
  d->Write(0, data, [](bool) {});
  engine.Run();
  d->Fail();
  d->Replace();
  EXPECT_FALSE(d->failed());
  util::Bytes got;
  d->Read(0, 1, [&](bool ok, util::Bytes b) {
    EXPECT_TRUE(ok);
    got = std::move(b);
  });
  engine.Run();
  for (auto b : got) EXPECT_EQ(b, 0);
}

TEST_F(DiskTest, TrimZeroesBlocks) {
  auto d = MakeDisk();
  util::Bytes data(profile.block_size);
  util::FillPattern(data, 2);
  d->Write(7, data, [](bool) {});
  engine.Run();
  EXPECT_EQ(d->store().allocated_blocks(), 1u);
  d->Trim(7, 1);
  EXPECT_EQ(d->store().allocated_blocks(), 0u);
}

TEST_F(DiskTest, StatsTracked) {
  auto d = MakeDisk();
  util::Bytes data(profile.block_size);
  d->Write(0, data, [](bool) {});
  d->Read(0, 1, [](bool, util::Bytes) {});
  engine.Run();
  EXPECT_EQ(d->stats().writes, 1u);
  EXPECT_EQ(d->stats().reads, 1u);
  EXPECT_EQ(d->stats().bytes_written, profile.block_size);
  EXPECT_EQ(d->stats().bytes_read, profile.block_size);
  EXPECT_GT(d->stats().busy_ns, 0u);
}

TEST_F(DiskTest, SequentialThroughputNearMediaRate) {
  auto d = MakeDisk();
  const std::uint32_t blocks_per_io = 256;  // 1 MiB
  std::uint64_t done_bytes = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    d->Read(i * blocks_per_io, blocks_per_io, [&](bool ok, util::Bytes b) {
      EXPECT_TRUE(ok);
      done_bytes += b.size();
    });
  }
  engine.Run();
  const double mbps = util::ThroughputMBps(done_bytes, engine.now());
  // Media rate is 60 MB/s; sequential stream should get close (one seek).
  EXPECT_GT(mbps, 55.0);
  EXPECT_LE(mbps, 61.0);
}

TEST(DiskFarm, CapacityAndIdentity) {
  sim::Engine engine;
  DiskProfile p;
  DiskFarm farm(engine, p, 8, "shelf0-");
  EXPECT_EQ(farm.size(), 8u);
  EXPECT_EQ(farm.TotalCapacityBytes(), 8 * p.capacity_bytes());
  EXPECT_EQ(farm.at(3).name(), "shelf0-3");
}

}  // namespace
}  // namespace nlss::disk
