// ISSUE 9: the DES determinism race detector and the schedule-perturbation
// harness, validated against each other.
//
//   - Detector semantics: same-tick accesses to one (subsystem, key) from
//     causally unrelated events conflict per the Read/Write/Commute
//     matrix; ancestor chains and cross-tick accesses never do.
//   - Racy fixture: a deliberately order-dependent toy both trips the
//     detector AND flips its digest under schedule perturbation — the
//     two-sided proof that a conflict is exactly the condition under
//     which perturbation can change an outcome.
//   - Digest stability: the real stack (E17 workload shapes, and a
//     crash-revive checkpoint burst) produces the SAME digest under
//     different perturbation seeds — the property the instrumentation
//     pass exists to guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <memory>
#include <string>
#include <vector>

#include "check/race.h"
#include "controller/system.h"
#include "host/initiator.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/crc32c.h"
#include "util/units.h"
#include "workload/workload.h"

namespace nlss::check {
namespace {

#if NLSS_INVARIANTS_ENABLED

// Engine + non-aborting detector, pinned to FIFO order so the recorded
// prior/later attribution is reproducible under any NLSS_PERTURB env.
struct DetectorBed {
  sim::Engine engine;
  RaceDetector det;
  DetectorBed() {
    det.set_report_violations(false);
    engine.SetPerturbation(0);
    engine.AttachRaceDetector(&det);
  }
  void At(sim::Tick tick, AccessMode mode, std::uint64_t key = 42) {
    engine.ScheduleAt(tick, [mode, key] {
      RaceDetector::Record(Subsystem::kOther, key, mode, __FILE__, __LINE__);
    });
  }
};

TEST(RaceDetector, UnrelatedSameTickWritesConflict) {
  DetectorBed b;
  b.At(10, AccessMode::kWrite);
  b.At(10, AccessMode::kWrite);
  b.engine.Run();
  ASSERT_EQ(b.det.conflicts().size(), 1u);
  const RaceDetector::Conflict& c = b.det.conflicts()[0];
  EXPECT_EQ(c.subsystem, Subsystem::kOther);
  EXPECT_EQ(c.key, 42u);
  EXPECT_EQ(c.tick, 10u);
  EXPECT_NE(c.prior.event, c.later.event);
}

TEST(RaceDetector, ConflictMatrix) {
  // Read-Read and Commute-Commute are the only safe same-tick pairs.
  const struct {
    AccessMode a,
        b;
    bool conflicts;
  } kCases[] = {
      {AccessMode::kRead, AccessMode::kRead, false},
      {AccessMode::kCommute, AccessMode::kCommute, false},
      {AccessMode::kWrite, AccessMode::kWrite, true},
      {AccessMode::kRead, AccessMode::kWrite, true},
      {AccessMode::kWrite, AccessMode::kRead, true},
      {AccessMode::kRead, AccessMode::kCommute, true},
      {AccessMode::kCommute, AccessMode::kRead, true},
      {AccessMode::kWrite, AccessMode::kCommute, true},
      {AccessMode::kCommute, AccessMode::kWrite, true},
  };
  for (const auto& cs : kCases) {
    DetectorBed b;
    b.At(10, cs.a);
    b.At(10, cs.b);
    b.engine.Run();
    EXPECT_EQ(!b.det.conflicts().empty(), cs.conflicts)
        << AccessModeName(cs.a) << " vs " << AccessModeName(cs.b);
  }
}

TEST(RaceDetector, AncestorChainIsNeverFlagged) {
  DetectorBed b;
  b.engine.ScheduleAt(10, [&b] {
    RaceDetector::Record(Subsystem::kOther, 7, AccessMode::kWrite, __FILE__,
                         __LINE__);
    // Child and grandchild on the SAME tick: causally ordered, so the
    // queue can never run them before their parent.
    b.engine.Schedule(0, [&b] {
      RaceDetector::Record(Subsystem::kOther, 7, AccessMode::kWrite,
                           __FILE__, __LINE__);
      b.engine.Schedule(0, [] {
        RaceDetector::Record(Subsystem::kOther, 7, AccessMode::kWrite,
                             __FILE__, __LINE__);
      });
    });
  });
  b.engine.Run();
  EXPECT_TRUE(b.det.conflicts().empty());
  EXPECT_EQ(b.det.accesses(), 3u);
}

TEST(RaceDetector, SiblingsOfOneParentStillConflict) {
  // Causal ancestry is a chain, not a family: two children of the same
  // parent are NOT ordered against each other.
  DetectorBed b;
  b.engine.ScheduleAt(10, [&b] {
    b.engine.Schedule(0, [] {
      RaceDetector::Record(Subsystem::kOther, 9, AccessMode::kWrite,
                           __FILE__, __LINE__);
    });
    b.engine.Schedule(0, [] {
      RaceDetector::Record(Subsystem::kOther, 9, AccessMode::kWrite,
                           __FILE__, __LINE__);
    });
  });
  b.engine.Run();
  EXPECT_EQ(b.det.conflicts().size(), 1u);
}

TEST(RaceDetector, DifferentTicksAndKeysDoNotConflict) {
  DetectorBed b;
  b.At(10, AccessMode::kWrite, 1);
  b.At(20, AccessMode::kWrite, 1);  // different tick
  b.At(10, AccessMode::kWrite, 2);  // different key
  b.engine.Run();
  EXPECT_TRUE(b.det.conflicts().empty());
}

TEST(RaceDetector, AccessOutsideAnyEventIsIgnored) {
  DetectorBed b;
  // Set-up code between Run() calls: ordered by program text, not by the
  // queue — never race material.
  RaceDetector::Record(Subsystem::kOther, 5, AccessMode::kWrite, __FILE__,
                       __LINE__);
  b.At(10, AccessMode::kWrite, 5);
  b.engine.Run();
  EXPECT_TRUE(b.det.conflicts().empty());
  EXPECT_EQ(b.det.accesses(), 1u);  // only the in-event access counted
}

TEST(RaceDetector, DescribeNamesTheSites) {
  DetectorBed b;
  b.At(10, AccessMode::kWrite);
  b.At(10, AccessMode::kRead);
  b.engine.Run();
  ASSERT_EQ(b.det.conflicts().size(), 1u);
  const std::string d = RaceDetector::Describe(b.det.conflicts()[0]);
  EXPECT_NE(d.find("race_test"), std::string::npos) << d;
  EXPECT_NE(d.find(SubsystemName(Subsystem::kOther)), std::string::npos)
      << d;
}

TEST(RaceDetector, ResetDropsState) {
  DetectorBed b;
  b.At(10, AccessMode::kWrite);
  b.At(10, AccessMode::kWrite);
  b.engine.Run();
  EXPECT_FALSE(b.det.conflicts().empty());
  b.det.Reset();
  EXPECT_TRUE(b.det.conflicts().empty());
  EXPECT_EQ(b.det.accesses(), 0u);
}

#endif  // NLSS_INVARIANTS_ENABLED

// --- The racy fixture: detector and perturbation agree -----------------------

/// Deliberately order-dependent: N unrelated same-tick events each
/// last-writer-win a shared slot, folding every intermediate value into a
/// digest.  FIFO makes any single seed reproducible, but the digest is a
/// function of the same-tick ORDER — exactly what correct code must never
/// be.
std::uint64_t RacyDigest(std::uint64_t perturb_seed) {
  sim::Engine e;
  e.SetPerturbation(perturb_seed);
  int slot = 0;
  std::uint64_t digest = 0;
  for (int i = 1; i <= 8; ++i) {
    e.Schedule(10, [&, i] {
      slot = i;
      digest = digest * 31 + static_cast<std::uint64_t>(slot);
    });
  }
  e.Run();
  return digest;
}

/// The commuting twin: same events, but each one bumps a counter and the
/// digest is taken from the FINAL state only — order-insensitive by
/// construction, so every perturbation seed must agree.
std::uint64_t CommutingDigest(std::uint64_t perturb_seed) {
  sim::Engine e;
  e.SetPerturbation(perturb_seed);
  std::uint64_t counter = 0;
  for (int i = 1; i <= 8; ++i) {
    e.Schedule(10, [&counter, i] { counter += static_cast<std::uint64_t>(i); });
  }
  e.Run();
  return counter;
}

TEST(PerturbationFixture, RacyFixtureFlipsDigestAcrossSeeds) {
  // Same seed, same digest — perturbation never breaks reproducibility.
  EXPECT_EQ(RacyDigest(0), RacyDigest(0));
  EXPECT_EQ(RacyDigest(3), RacyDigest(3));
  // Some seed must expose the order dependence.
  const std::uint64_t fifo = RacyDigest(0);
  bool flipped = false;
  for (std::uint64_t s = 1; s <= 16 && !flipped; ++s) {
    flipped = RacyDigest(s) != fifo;
  }
  EXPECT_TRUE(flipped)
      << "8 same-tick events, 16 seeds: perturbation must reorder them";
}

TEST(PerturbationFixture, CommutingFixtureIsSeedInvariant) {
  const std::uint64_t fifo = CommutingDigest(0);
  for (std::uint64_t s = 1; s <= 16; ++s) {
    EXPECT_EQ(CommutingDigest(s), fifo) << "seed " << s;
  }
}

#if NLSS_INVARIANTS_ENABLED
TEST(PerturbationFixture, DetectorFlagsTheRacyFixtureOnly) {
  // The same two fixtures, tagged: the racy one conflicts (Write/Write),
  // the commuting one is clean (Commute/Commute) — detector verdicts
  // predict the digest behavior above.
  {
    DetectorBed b;
    for (int i = 0; i < 4; ++i) b.At(10, AccessMode::kWrite);
    b.engine.Run();
    EXPECT_FALSE(b.det.conflicts().empty());
  }
  {
    DetectorBed b;
    for (int i = 0; i < 4; ++i) b.At(10, AccessMode::kCommute);
    b.engine.Run();
    EXPECT_TRUE(b.det.conflicts().empty());
  }
}
#endif  // NLSS_INVARIANTS_ENABLED

// --- Digest stability of the real stack across perturbation seeds ------------

struct PerturbBed {
  sim::Engine engine;
  std::unique_ptr<net::Fabric> fabric;
  std::unique_ptr<controller::StorageSystem> system;
  std::unique_ptr<obs::Hub> hub;
  std::vector<std::unique_ptr<host::Initiator>> owners;
  std::vector<host::Initiator*> inits;
  controller::VolumeId vol = 0;

  PerturbBed(std::uint64_t perturb_seed, std::uint32_t hosts,
             std::uint64_t vol_bytes) {
    engine.SetPerturbation(perturb_seed);  // before any event is scheduled
    fabric = std::make_unique<net::Fabric>(engine);
    controller::SystemConfig sc;
    sc.disk_profile.capacity_blocks = 32 * 1024;
    sc.cache.replication = 2;
    system = std::make_unique<controller::StorageSystem>(engine, *fabric, sc);
    hub = std::make_unique<obs::Hub>(engine);
    system->AttachObs(hub.get());
    vol = system->CreateVolume("physics", vol_bytes);
    for (std::uint32_t h = 0; h < hosts; ++h) {
      host::InitiatorConfig hc;
      hc.policy = host::InitiatorConfig::Policy::kRoundRobin;
      hc.seed = 1000 + h;
      owners.push_back(std::make_unique<host::Initiator>(
          *system, "h" + std::to_string(h), hc));
      owners.back()->AttachObs(hub.get());
      inits.push_back(owners.back().get());
    }
  }
};

/// What perturbation must NOT change vs what it legitimately may.
///
/// Same-tick reordering shifts per-op timing: queued resources (disk
/// service, link serialization) serve same-tick arrivals in execution
/// order, and every order of causally unrelated arrivals is a valid
/// serialization.  So `timeline` (the full trace + metrics digest) is only
/// required to be reproducible for a FIXED seed, while `state` — every
/// byte of the volume read back, op outcomes, and the exactly-once
/// counters — must be identical across ALL seeds.  A state divergence
/// means some same-tick pair does not commute: a determinism race.
struct RunDigest {
  std::uint32_t state = 0;
  std::uint32_t timeline = 0;
};

void FoldU64(std::uint32_t& crc, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  crc = util::Crc32c(crc, std::span<const std::uint8_t>(b, 8));
}

RunDigest FinishAndDigest(PerturbBed& bed, std::uint64_t vol_bytes,
                          const workload::PhaseResult& r) {
  RunDigest d;
  d.timeline = bed.hub->Digest();

  bool flushed = false;
  bed.system->cache().FlushAll([&flushed](bool) { flushed = true; });
  bed.engine.Run();
  EXPECT_TRUE(flushed);

  const std::uint32_t chunk = 256 * util::KiB;
  for (std::uint64_t off = 0; off < vol_bytes; off += chunk) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk, vol_bytes - off));
    bool ok = false;
    bed.inits[0]->Read(bed.vol, off, n, [&](bool rd, util::Bytes data) {
      ok = rd;
      d.state = util::Crc32c(
          d.state, std::span<const std::uint8_t>(data.data(), data.size()));
    });
    bed.engine.Run();
    EXPECT_TRUE(ok) << "readback at " << off;
  }
  FoldU64(d.state, r.ops);
  FoldU64(d.state, r.ok);
  FoldU64(d.state, r.failed);
  FoldU64(d.state, r.bytes);
  FoldU64(d.state, bed.system->write_dedup().stats().double_applies);
  FoldU64(d.state, bed.system->write_dedup().stats().ghost_writes);
  return d;
}

RunDigest ShapeDigest(workload::Shape shape, std::uint64_t perturb_seed) {
  const workload::FileSet fs{0, 32, 4 * util::KiB};
  PerturbBed bed(perturb_seed, 2, fs.TotalBytes());

  workload::Trace trace;
  std::uint64_t vol_bytes = fs.TotalBytes();
  switch (shape) {
    case workload::Shape::kMetadataStorm:
      trace = MetadataStorm(workload::StormSpec{fs, 2, 96}, 5);
      break;
    case workload::Shape::kSmallFileIngest:
      trace = SmallFileIngest(workload::IngestSpec{fs, 2, 96}, 5);
      break;
    case workload::Shape::kSharedLibBroadcast:
      trace = SharedLibBroadcast(workload::BroadcastSpec{fs, 2, 96}, 5);
      break;
    case workload::Shape::kCheckpointBurst: {
      const workload::FileSet ck{0, 2, 128 * util::KiB};
      trace = CheckpointBurst(workload::BurstSpec{ck, 2, 32 * util::KiB}, 5);
      vol_bytes = ck.TotalBytes();
      break;
    }
  }
  workload::Runner runner(bed.engine, bed.inits, bed.vol, {}, bed.hub.get());
  const workload::PhaseResult r = runner.Play(trace);
  EXPECT_EQ(r.failed, 0u) << workload::ShapeName(shape);
  return FinishAndDigest(bed, vol_bytes, r);
}

TEST(PerturbationDigest, E17ShapesStateIsSeedInvariant) {
  // The tentpole property: with every same-tick contention point either
  // causally chained, commutative, or detector-adjudicated, the end state
  // of a full workload phase must not depend on the same-tick tie-break.
  for (const workload::Shape shape :
       {workload::Shape::kMetadataStorm, workload::Shape::kSmallFileIngest,
        workload::Shape::kSharedLibBroadcast,
        workload::Shape::kCheckpointBurst}) {
    const RunDigest d1 = ShapeDigest(shape, 1);
    const RunDigest d2 = ShapeDigest(shape, 2);
    EXPECT_EQ(d1.state, d2.state)
        << workload::ShapeName(shape)
        << ": end state depends on same-tick order — determinism race";
  }
}

TEST(PerturbationDigest, SameSeedIsFullyReproducible) {
  // A fixed perturbation seed is still a deterministic schedule: even the
  // full timeline digest (traces + latency metrics) must be bit-identical
  // between two runs of the same seed.
  const RunDigest a = ShapeDigest(workload::Shape::kSmallFileIngest, 7);
  const RunDigest b = ShapeDigest(workload::Shape::kSmallFileIngest, 7);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.timeline, b.timeline);
}

RunDigest CrashReviveDigest(std::uint64_t perturb_seed) {
  const workload::FileSet fs{0, 2, 1 * util::MiB};
  PerturbBed bed(perturb_seed, 2, fs.TotalBytes());

  // Fail a blade mid-burst, recover while streams are still running:
  // path-down re-drives, revives, and flush settles are the same-tick
  // heaviest paths in the stack.
  bed.engine.Schedule(5 * util::kNsPerMs,
                      [&bed] { bed.system->FailController(1); });
  bed.engine.Schedule(60 * util::kNsPerMs,
                      [&bed] { bed.system->RecoverCluster(); });

  const workload::Trace trace =
      CheckpointBurst(workload::BurstSpec{fs, 2, 128 * util::KiB}, 13);
  workload::Runner runner(bed.engine, bed.inits, bed.vol, {}, bed.hub.get());
  const workload::PhaseResult r = runner.Play(trace);
  EXPECT_EQ(r.ops, trace.ops.size());
  EXPECT_EQ(bed.system->write_dedup().stats().double_applies, 0u);
  return FinishAndDigest(bed, fs.TotalBytes(), r);
}

TEST(PerturbationDigest, CrashReviveStateIsSeedInvariant) {
  const RunDigest d1 = CrashReviveDigest(1);
  const RunDigest d2 = CrashReviveDigest(2);
  EXPECT_EQ(d1.state, d2.state)
      << "crash-revive end state depends on same-tick order";
}

}  // namespace
}  // namespace nlss::check
