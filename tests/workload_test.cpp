// Trace-shaped workload subsystem (E17): generator determinism, the
// open-burst batched prefetcher, the small-write flush coalescer
// (merge correctness + flush ordering under rewrite), crash-mid-burst
// digest determinism, and per-tenant QoS caps under a metadata storm.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/backing.h"
#include "cache/cluster.h"
#include "controller/system.h"
#include "host/initiator.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "qos/scheduler.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "workload/workload.h"

namespace nlss::workload {
namespace {

util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
  util::Bytes b(n);
  util::FillPattern(b, seed);
  return b;
}

bool SameOps(const Trace& a, const Trace& b) {
  if (a.ops.size() != b.ops.size()) return false;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    const TraceOp& x = a.ops[i];
    const TraceOp& y = b.ops[i];
    if (x.at != y.at || x.host != y.host || x.kind != y.kind ||
        x.file != y.file || x.offset != y.offset || x.length != y.length) {
      return false;
    }
  }
  return true;
}

// --- Generators --------------------------------------------------------------

TEST(WorkloadGenerators, SameSeedSameTrace) {
  const FileSet fs{0, 64, 4 * util::KiB};
  StormSpec storm{fs, 3, 200};
  IngestSpec ingest{fs, 3, 100};
  BroadcastSpec bc{fs, 3, 100};
  BurstSpec burst{FileSet{0, 3, 256 * util::KiB}, 3, 64 * util::KiB};
  EXPECT_TRUE(SameOps(MetadataStorm(storm, 42), MetadataStorm(storm, 42)));
  EXPECT_TRUE(SameOps(SmallFileIngest(ingest, 42),
                      SmallFileIngest(ingest, 42)));
  EXPECT_TRUE(SameOps(SharedLibBroadcast(bc, 42),
                      SharedLibBroadcast(bc, 42)));
  EXPECT_TRUE(SameOps(CheckpointBurst(burst, 42),
                      CheckpointBurst(burst, 42)));
  // Seeds drive the jitter / popularity draws, so traces must differ.
  EXPECT_FALSE(SameOps(MetadataStorm(storm, 42), MetadataStorm(storm, 43)));
  EXPECT_FALSE(SameOps(SharedLibBroadcast(bc, 42),
                       SharedLibBroadcast(bc, 43)));
}

TEST(WorkloadGenerators, ShapesAreWellFormed) {
  const FileSet fs{0, 64, 4 * util::KiB};
  const Trace storm = MetadataStorm(StormSpec{fs, 4, 300}, 7);
  EXPECT_EQ(storm.ops.size(), 4u * 300u);
  for (const TraceOp& op : storm.ops) {
    EXPECT_EQ(op.kind, TraceOp::Kind::kOpen);
    EXPECT_LT(op.file, fs.count);
  }

  // Ingest streams stay inside each host's partition.
  const Trace ingest = SmallFileIngest(IngestSpec{fs, 4, 50}, 7);
  const std::uint64_t partition = (fs.count / 4) * fs.file_bytes;
  for (const TraceOp& op : ingest.ops) {
    const std::uint64_t pos = fs.OffsetOf(op.file) + op.offset;
    EXPECT_GE(pos, op.host * partition);
    EXPECT_LT(pos + op.length, (op.host + 1) * partition + fs.file_bytes);
  }

  // A checkpoint covers its host's file exactly once, in order.
  const FileSet ck{0, 4, 512 * util::KiB};
  const Trace burst = CheckpointBurst(BurstSpec{ck, 4, 128 * util::KiB}, 7);
  std::vector<std::uint64_t> covered(4, 0);
  for (const TraceOp& op : burst.ops) {
    EXPECT_EQ(op.file, op.host);
    EXPECT_EQ(op.offset, covered[op.host]);
    covered[op.host] += op.length;
  }
  for (std::uint64_t c : covered) EXPECT_EQ(c, ck.file_bytes);
}

// --- Flush coalescer (direct CacheCluster) -----------------------------------

struct CoalesceRun {
  std::uint64_t backing_writes = 0;
  std::uint64_t coalesced_runs = 0;
  util::Bytes image;
};

// Dirty `pages` adjacent pages on ONE controller (blade affinity is what
// the coalescer needs), drain, and report how the flush hit the backing.
CoalesceRun RunAdjacentDirty(std::uint32_t coalesce_pages,
                             std::uint32_t pages) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  std::vector<net::NodeId> nodes{fabric.AddNode("ctrl0")};
  cache::CacheCluster::Config config;
  config.replication = 1;
  config.flush_delay_ns = 5 * util::kNsPerMs;
  config.coalesce_pages = coalesce_pages;
  cache::CacheCluster cluster(engine, fabric, nodes, config);
  cache::MemBacking backing(engine, 4096);
  cluster.RegisterVolume(1, &backing);

  // Issue every write before draining so the whole span is dirty when the
  // aged flush fires — the coalescer's raw material.
  const std::uint32_t page = config.page_bytes;
  for (std::uint32_t p = 0; p < pages; ++p) {
    cluster.Write(0, 1, static_cast<std::uint64_t>(p) * page,
                  Pattern(page, 100 + p), [](bool ok) { EXPECT_TRUE(ok); },
                  /*priority=*/0, {}, cache::WriteId{1, p + 1});
  }
  engine.Run();
  bool flushed = false;
  cluster.FlushAll([&](bool ok) { flushed = ok; });
  engine.Run();
  EXPECT_TRUE(flushed);

  CoalesceRun out;
  out.backing_writes = backing.writes();
  out.coalesced_runs = cluster.Totals().coalesced_runs;
  out.image.assign(backing.raw().begin(),
                   backing.raw().begin() + pages * page);
  return out;
}

TEST(FlushCoalescer, MergesAdjacentDirtyPages) {
  const CoalesceRun plain = RunAdjacentDirty(/*coalesce_pages=*/1, 16);
  const CoalesceRun coal = RunAdjacentDirty(/*coalesce_pages=*/8, 16);
  EXPECT_EQ(plain.backing_writes, 16u) << "per-page flush writes every page";
  EXPECT_EQ(plain.coalesced_runs, 0u);
  EXPECT_LE(coal.backing_writes, 4u)
      << "16 adjacent dirty pages at coalesce=8 should flush in a few runs";
  EXPECT_GT(coal.coalesced_runs, 0u);
  EXPECT_EQ(plain.image, coal.image)
      << "coalescing must not change what reaches the backing store";
  for (std::uint32_t p = 0; p < 16; ++p) {
    util::Bytes got(coal.image.begin() + p * 64 * util::KiB,
                    coal.image.begin() + (p + 1) * 64 * util::KiB);
    EXPECT_TRUE(util::CheckPattern(got, 100 + p)) << "page " << p;
  }
}

TEST(FlushCoalescer, RewriteDuringInFlightRunReachesBacking) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  std::vector<net::NodeId> nodes{fabric.AddNode("ctrl0")};
  cache::CacheCluster::Config config;
  config.replication = 1;
  config.flush_delay_ns = 2 * util::kNsPerMs;
  config.coalesce_pages = 8;
  cache::CacheCluster cluster(engine, fabric, nodes, config);
  cache::MemBacking backing(engine, 4096);
  backing.set_latency(20 * util::kNsPerMs);  // flush runs stay in flight
  cluster.RegisterVolume(1, &backing);

  const std::uint32_t page = config.page_bytes;
  for (std::uint32_t p = 0; p < 8; ++p) {
    cluster.Write(0, 1, static_cast<std::uint64_t>(p) * page,
                  Pattern(page, 200 + p), [](bool) {},
                  /*priority=*/0, {}, cache::WriteId{1, p + 1});
  }
  // Let the aged flush issue its coalesced run (in flight for 20 ms), then
  // rewrite a page in the middle of that run before it lands.
  engine.RunFor(5 * util::kNsPerMs);
  const util::Bytes rewrite = Pattern(page, 999);
  bool acked = false;
  cluster.Write(0, 1, 3ull * page, rewrite, [&](bool ok) { acked = ok; },
                /*priority=*/0, {}, cache::WriteId{1, 9});
  engine.Run();
  ASSERT_TRUE(acked);
  bool flushed = false;
  cluster.FlushAll([&](bool ok) { flushed = ok; });
  engine.Run();
  ASSERT_TRUE(flushed);
  EXPECT_EQ(cluster.DirtyPages(), 0u);

  // The rewrite (dirty-epoch bump) must win over the stale in-flight run.
  for (std::uint32_t p = 0; p < 8; ++p) {
    util::Bytes got(backing.raw().begin() + p * page,
                    backing.raw().begin() + (p + 1) * page);
    if (p == 3) {
      EXPECT_EQ(got, rewrite) << "in-flight coalesced run must not clobber "
                                 "a newer write";
    } else {
      EXPECT_TRUE(util::CheckPattern(got, 200 + p)) << "page " << p;
    }
  }
}

// --- Full-stack fixtures -----------------------------------------------------

struct StackBed {
  sim::Engine engine;
  net::Fabric fabric{engine};
  std::unique_ptr<controller::StorageSystem> system;
  obs::Hub hub{engine};
  std::vector<std::unique_ptr<host::Initiator>> owners;
  std::vector<host::Initiator*> inits;
  controller::VolumeId vol = 0;
  std::uint64_t vol_bytes = 0;

  StackBed(std::uint32_t hosts, std::uint64_t bytes, std::uint64_t seed,
           const char* tenant = "physics")
      : vol_bytes(bytes) {
    controller::SystemConfig sc;
    sc.disk_profile.capacity_blocks = 32 * 1024;
    sc.cache.replication = 2;
    system = std::make_unique<controller::StorageSystem>(engine, fabric, sc);
    system->AttachObs(&hub);
    vol = system->CreateVolume(tenant, vol_bytes);
    for (std::uint32_t h = 0; h < hosts; ++h) {
      host::InitiatorConfig hc;
      hc.policy = host::InitiatorConfig::Policy::kRoundRobin;
      hc.seed = seed + h;
      owners.push_back(std::make_unique<host::Initiator>(
          *system, "h" + std::to_string(h), hc));
      owners.back()->AttachObs(&hub);
      inits.push_back(owners.back().get());
    }
  }

  void Preload() {
    util::Bytes buf(1 * util::MiB);
    for (std::uint64_t off = 0; off < vol_bytes; off += buf.size()) {
      const std::uint64_t n =
          std::min<std::uint64_t>(buf.size(), vol_bytes - off);
      util::FillPattern(buf, off);
      bool ok = false;
      inits[0]->Write(vol, off, std::span<const std::uint8_t>(buf.data(), n),
                      [&](bool r) { ok = r; });
      engine.Run();
      ASSERT_TRUE(ok) << "preload at " << off;
    }
  }
};

// --- Batched prefetch --------------------------------------------------------

TEST(OpenBurstPrefetch, StormOpensAreStagedByBatchedReads) {
  const FileSet fs{0, 128, 4 * util::KiB};
  StackBed bed(2, fs.TotalBytes(), 11);
  bed.Preload();

  StormSpec spec{fs, 2, 384};
  const Trace trace = MetadataStorm(spec, 11);

  RunnerConfig rc;
  rc.prefetch.enabled = true;
  rc.prefetch.batch_files = 32;
  rc.prefetch.lookahead_files = 64;
  Runner runner(bed.engine, bed.inits, bed.vol, rc, &bed.hub);
  const PhaseResult r = runner.Play(trace);

  EXPECT_EQ(r.ops, 2u * 384u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.prefetch.bursts, 0u) << "the open-burst detector must arm";
  EXPECT_GT(r.prefetch.hits, r.ops / 2)
      << "most opens should be served from staged batches";
  EXPECT_LT(r.prefetch.batched_reads, r.ops / 8)
      << "batching must amortize many opens per back-end read";
  EXPECT_EQ(r.prefetch.failed_batches, 0u);
}

// --- Crash mid-burst: two runs, one digest -----------------------------------

std::uint32_t CrashMidBurstDigest(std::uint64_t seed) {
  const FileSet fs{0, 2, 2 * util::MiB};
  StackBed bed(2, fs.TotalBytes(), seed);
  bed.Preload();

  // Fail a blade while both checkpoint streams are in flight; recover
  // while they are still running.  Retry + multipath must absorb it.
  bed.engine.Schedule(5 * util::kNsPerMs,
                      [&] { bed.system->FailController(1); });
  bed.engine.Schedule(60 * util::kNsPerMs,
                      [&] { bed.system->RecoverCluster(); });

  const Trace trace =
      CheckpointBurst(BurstSpec{fs, 2, 256 * util::KiB}, seed);
  Runner runner(bed.engine, bed.inits, bed.vol, {}, &bed.hub);
  const PhaseResult r = runner.Play(trace);
  EXPECT_EQ(r.ops, trace.ops.size());

  bool flushed = false;
  bed.system->cache().FlushAll([&](bool) { flushed = true; });
  bed.engine.Run();
  EXPECT_TRUE(flushed);
  // Exactly-once must hold through the crash and the re-driven writes.
  EXPECT_EQ(bed.system->write_dedup().stats().double_applies, 0u);
  EXPECT_EQ(bed.system->write_dedup().stats().ghost_writes, 0u);
  return bed.hub.Digest();
}

TEST(WorkloadDeterminism, CrashMidBurstDigestIdentical) {
  EXPECT_EQ(CrashMidBurstDigest(21), CrashMidBurstDigest(21));
}

// --- Metadata storm under per-tenant QoS caps --------------------------------

TEST(WorkloadQos, StormRespectsTenantRateCap) {
  const FileSet fs{0, 128, 4 * util::KiB};
  StackBed bed(2, fs.TotalBytes(), 31, "storm-lab");

  qos::TenantRegistry registry;
  const auto bronze = registry.Register("storm-lab",
                                        qos::ServiceClass::kBronze);
  qos::ClassSpec spec = registry.spec(qos::ServiceClass::kBronze);
  spec.rate_bytes_per_sec = 4ull << 20;  // 4 MB/s: far below offered load
  spec.burst_bytes = 256 * util::KiB;
  registry.SetClassSpec(qos::ServiceClass::kBronze, spec);
  qos::Scheduler qos(bed.engine, registry, bed.system->controller_count());
  bed.system->AttachQos(&qos);  // rebinds existing volumes by tenant name
  ASSERT_EQ(registry.ResolveVolume(bed.vol), bronze)
      << "volume must auto-bind to its tenant";
  bed.Preload();
  qos.slo().Reset();  // throughput window starts at the storm, not preload

  StormSpec sspec{fs, 2, 600};
  const Trace trace = MetadataStorm(sspec, 31);
  Runner runner(bed.engine, bed.inits, bed.vol, {}, &bed.hub);
  const PhaseResult r = runner.Play(trace);

  const auto& stats = qos.slo().stats(bronze);
  EXPECT_GT(stats.ops, 0u) << "storm reads must be billed to the tenant";
  const double delivered = qos.slo().DeliveredMBps(bronze);
  EXPECT_GT(delivered, 0.5);
  EXPECT_LE(delivered, 5.0)
      << "token bucket must hold the storm to its class rate";
  // The cap stretches the storm: elapsed is at least bytes / rate.
  const double min_elapsed_ms =
      static_cast<double>(r.bytes) / (4.0 * 1024 * 1024) * 1000.0;
  EXPECT_GE(static_cast<double>(r.elapsed) / 1e6, 0.8 * min_elapsed_ms);
}

}  // namespace
}  // namespace nlss::workload
