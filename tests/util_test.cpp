#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/bytes.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace nlss::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 10000; ++i) ++seen[rng.Below(8)];
  EXPECT_EQ(seen.size(), 8u);
  for (const auto& [v, count] : seen) {
    EXPECT_GT(count, 1000) << "value " << v << " underrepresented";
    EXPECT_LT(count, 1500) << "value " << v << " overrepresented";
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(1);
  ZipfGenerator z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(1);
  ZipfGenerator z(1000, 0.99);
  std::vector<int> counts(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Next(rng)];
  // Rank 0 should dominate, and the top 10 should hold a large share.
  EXPECT_GT(counts[0], counts[10]);
  const int top10 = std::accumulate(counts.begin(), counts.begin() + 10, 0);
  EXPECT_GT(top10, n / 4);
}

TEST(Zipf, AllValuesInRange) {
  Rng rng(9);
  ZipfGenerator z(37, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(rng), 37u);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_NEAR(h.Mean(), 200.0, 0.01);
}

TEST(Histogram, PercentileBoundedRelativeError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  // Log-bucketed histogram with 5 sub-bucket bits: <= ~3.2% relative error.
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = q * 100000.0;
    const double approx = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(approx / exact, 1.0, 0.05) << "quantile " << q;
  }
}

TEST(Histogram, PercentileEdges) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Percentile(0.0), 42u);
  EXPECT_EQ(h.Percentile(1.0), 42u);
  Histogram empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ZeroValue) {
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
}

TEST(Histogram, ZeroCountRecordIsNoOp) {
  Histogram h;
  h.Record(42, 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(Histogram, EmptyPercentileAndMergeOfEmpty) {
  Histogram empty;
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(empty.Percentile(q), 0u) << "quantile " << q;
  }
  Histogram h;
  h.Record(7);
  h.Merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(Histogram, MergeRenormalizesAcrossBucketResolutions) {
  Histogram coarse(2), fine(8);
  for (std::uint64_t v = 1; v <= 10000; ++v) fine.Record(v);
  coarse.Record(5);
  coarse.Merge(fine);
  // Aggregates are exact regardless of geometry.
  EXPECT_EQ(coarse.count(), 10001u);
  EXPECT_EQ(coarse.min(), 1u);
  EXPECT_EQ(coarse.max(), 10000u);
  EXPECT_NEAR(coarse.Mean(), (10000.0 * 10001.0 / 2.0 + 5.0) / 10001.0, 0.01);
  // Percentiles degrade to the destination's resolution but stay sane.
  EXPECT_NEAR(static_cast<double>(coarse.Percentile(0.5)) / 5000.0, 1.0, 0.5);
  EXPECT_LE(coarse.Percentile(1.0), 10000u);

  // And the other direction: coarse source into a fine destination must
  // never report beyond the true max.
  Histogram fine2(8);
  Histogram coarse2(2);
  coarse2.Record(1000);
  fine2.Merge(coarse2);
  EXPECT_EQ(fine2.count(), 1u);
  EXPECT_LE(fine2.Percentile(1.0), 1000u);
}

TEST(RunningStat, WelfordMatchesDirect) {
  RunningStat s;
  const std::vector<double> xs = {3, 7, 7, 19, 24, 1, 0.5};
  for (double x : xs) s.Record(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.Mean(), mean, 1e-9);
  EXPECT_NEAR(s.Variance(), var, 1e-9);
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 24.0);
}

TEST(Imbalance, BalancedIsOne) {
  const Imbalance r = ComputeImbalance({5, 5, 5, 5});
  EXPECT_NEAR(r.peak_to_mean, 1.0, 1e-9);
  EXPECT_NEAR(r.coeff_of_variation, 0.0, 1e-9);
}

TEST(Imbalance, HotSpotDetected) {
  const Imbalance r = ComputeImbalance({100, 1, 1, 1, 1});
  EXPECT_GT(r.peak_to_mean, 4.0);
  EXPECT_GT(r.coeff_of_variation, 1.0);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors.
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  std::vector<std::uint8_t> inc(32);
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(Crc32c(inc), 0x46DD794Eu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  FillPattern(data, 77);
  const std::uint32_t oneshot = Crc32c(data);
  std::uint32_t crc = 0;
  // CRC32C incremental use: feed prefix then suffix.
  crc = Crc32c(crc, std::span(data).subspan(0, 333));
  // Note: our API finalizes each call, so incremental means pre-inverted
  // chaining; verify at least that recomputation is stable.
  EXPECT_EQ(oneshot, Crc32c(data));
  (void)crc;
}

TEST(Pattern, FillAndCheckRoundtrip) {
  Bytes buf(4096);
  FillPattern(buf, 123);
  EXPECT_TRUE(CheckPattern(buf, 123));
  EXPECT_FALSE(CheckPattern(buf, 124));
  buf[100] ^= 1;
  EXPECT_FALSE(CheckPattern(buf, 123));
}

TEST(Pattern, UnalignedLength) {
  Bytes buf(13);
  FillPattern(buf, 5);
  EXPECT_TRUE(CheckPattern(buf, 5));
}

TEST(ByteRw, Roundtrip) {
  ByteWriter w;
  w.U8(7);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFULL);
  w.Str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.Done());
}

TEST(ByteRw, UnderrunThrows) {
  ByteWriter w;
  w.U16(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.U16(), 1);
  EXPECT_THROW(r.U8(), std::out_of_range);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerNs(8.0), 1.0);
  EXPECT_DOUBLE_EQ(BytesPerNsToGbps(1.0), 8.0);
  EXPECT_NEAR(ThroughputGbps(1250, 1000), 10.0, 1e-9);  // 1250 B/us = 10 Gb/s
  EXPECT_NEAR(ThroughputMBps(1'000'000, kNsPerSec), 1.0, 1e-9);
}

TEST(Table, RendersAligned) {
  Table t({"col", "value"});
  t.AddRow({"a", Table::Cell(1.5)});
  t.AddRow({"long-name", Table::Cell(std::uint64_t{42})});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

}  // namespace
}  // namespace nlss::util
