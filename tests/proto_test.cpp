#include <gtest/gtest.h>

#include <memory>

#include "crypto/keystore.h"
#include "proto/block_target.h"
#include "proto/block_wire.h"
#include "proto/file_server.h"
#include "proto/http_server.h"
#include "sim/engine.h"
#include "util/bytes.h"

namespace nlss::proto {
namespace {

class ProtoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller::SystemConfig config;
    config.disk_profile.capacity_blocks = 16 * 1024;
    fabric_ = std::make_unique<net::Fabric>(engine_);
    system_ = std::make_unique<controller::StorageSystem>(engine_, *fabric_,
                                                          config);
    auth_ = std::make_unique<security::AuthService>(engine_, keys_);
    audit_ = std::make_unique<security::AuditLog>(engine_);
    auth_->AddUser("alice", "pw", {"reader", "writer"});
    auth_->AddUser("bob", "pw", {"reader"});
    host_ = system_->AttachHost("client");
  }

  util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
    util::Bytes b(n);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  crypto::KeyStore keys_{std::string_view("pw-master")};
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<controller::StorageSystem> system_;
  std::unique_ptr<security::AuthService> auth_;
  std::unique_ptr<security::AuditLog> audit_;
  net::NodeId host_ = net::kInvalidNode;
};

TEST_F(ProtoTest, BlockTargetLoginAndMaskedIo) {
  security::LunMasking mask;
  security::CommandPolicy policy;
  BlockTarget target(*system_, *auth_, mask, policy, *audit_);
  const auto vol0 = system_->CreateVolume("t", 16 * util::MiB);
  const auto vol1 = system_->CreateVolume("t", 16 * util::MiB);
  mask.Allow("host-a", vol0);

  EXPECT_FALSE(target.Login(host_, "host-a", "alice", "bad").has_value());
  const auto session = target.Login(host_, "host-a", "alice", "pw");
  ASSERT_TRUE(session.has_value());

  EXPECT_EQ(target.ReportLuns(*session), std::vector<std::uint32_t>{vol0});

  // Write+read the visible LUN.
  const auto data = Pattern(64 * util::KiB, 1);
  BlockStatus wst = BlockStatus::kIoError;
  target.Write(*session, vol0, 0, data, [&](BlockStatus s) { wst = s; });
  engine_.Run();
  ASSERT_EQ(wst, BlockStatus::kOk);
  BlockStatus rst = BlockStatus::kIoError;
  util::Bytes got;
  std::uint32_t crc = 0;
  target.Read(*session, vol0, 0, 16,
              [&](BlockStatus s, util::Bytes d, std::uint32_t c) {
                rst = s;
                got = std::move(d);
                crc = c;
              });
  engine_.Run();
  ASSERT_EQ(rst, BlockStatus::kOk);
  EXPECT_EQ(got, data);
  EXPECT_EQ(crc, util::Crc32c(data));

  // The masked LUN is invisible.
  BlockStatus denied = BlockStatus::kOk;
  target.Read(*session, vol1, 0, 1,
              [&](BlockStatus s, util::Bytes, std::uint32_t) { denied = s; });
  engine_.Run();
  EXPECT_EQ(denied, BlockStatus::kAccessDenied);
  EXPECT_TRUE(audit_->VerifyChain());
}

TEST_F(ProtoTest, BlockTargetSessionInvalidAfterLogout) {
  security::LunMasking mask;
  security::CommandPolicy policy;
  BlockTarget target(*system_, *auth_, mask, policy, *audit_);
  const auto vol = system_->CreateVolume("t", util::MiB);
  mask.Allow("h", vol);
  const auto session = *target.Login(host_, "h", "alice", "pw");
  target.Logout(session);
  BlockStatus st = BlockStatus::kOk;
  target.Read(session, vol, 0, 1,
              [&](BlockStatus s, util::Bytes, std::uint32_t) { st = s; });
  engine_.Run();
  EXPECT_EQ(st, BlockStatus::kInvalidSession);
}

TEST_F(ProtoTest, BlockTargetInBandSnapshotLockdown) {
  security::LunMasking mask;
  security::CommandPolicy policy;
  BlockTarget target(*system_, *auth_, mask, policy, *audit_);
  const auto vol = system_->CreateVolume("t", util::MiB);
  mask.Allow("h", vol);
  const auto session = *target.Login(host_, "h", "alice", "pw");
  // Snapshot allowed in-band by default.
  EXPECT_EQ(target.TrySnapshot(session, vol), BlockStatus::kOk);
  // Lock it down on this port.
  policy.DisableInBand("h", security::Command::kSnapshot);
  EXPECT_EQ(target.TrySnapshot(session, vol), BlockStatus::kAccessDenied);
}

TEST_F(ProtoTest, FileServerRolesEnforced) {
  fs::FileSystem fs(*system_);
  FileServer server(fs, *auth_, *audit_);
  const auto rw = server.Mount("alice", "pw");
  ASSERT_TRUE(rw.has_value());
  const auto ro = server.Mount("bob", "pw");
  ASSERT_TRUE(ro.has_value());
  EXPECT_FALSE(server.Mount("alice", "wrong").has_value());

  ASSERT_EQ(server.Mkdir(*rw, "/data"), fs::Status::kOk);
  ASSERT_EQ(server.Create(*rw, "/data/f"), fs::Status::kOk);
  const auto payload = Pattern(100000, 2);
  fs::Status wst = fs::Status::kIoError;
  server.Write(*rw, "/data/f", 0, payload, [&](fs::Status s) { wst = s; });
  engine_.Run();
  ASSERT_EQ(wst, fs::Status::kOk);

  // Reader can read but not write.
  fs::Status rst = fs::Status::kIoError;
  util::Bytes got;
  server.Read(*ro, "/data/f", 0, payload.size(),
              [&](fs::Status s, util::Bytes d) {
                rst = s;
                got = std::move(d);
              });
  engine_.Run();
  ASSERT_EQ(rst, fs::Status::kOk);
  EXPECT_EQ(got, payload);
  fs::Status denied = fs::Status::kOk;
  server.Write(*ro, "/data/f", 0, payload, [&](fs::Status s) { denied = s; });
  engine_.Run();
  EXPECT_NE(denied, fs::Status::kOk);
  EXPECT_EQ(server.Remove(*ro, "/data/f"), fs::Status::kInvalidArgument);
}

TEST_F(ProtoTest, FileServerExportRootScopesPaths) {
  fs::FileSystem fs(*system_);
  FileServer server(fs, *auth_, *audit_);
  ASSERT_EQ(fs.Mkdir("/projects"), fs::Status::kOk);
  ASSERT_EQ(fs.Mkdir("/projects/fusion"), fs::Status::kOk);
  const auto mount = server.Mount("alice", "pw", "/projects/fusion");
  ASSERT_TRUE(mount.has_value());
  ASSERT_EQ(server.Create(*mount, "/run1.dat"), fs::Status::kOk);
  EXPECT_TRUE(fs.Exists("/projects/fusion/run1.dat"))
      << "paths must resolve under the export root";
}

TEST(BlockWire, PduRoundtrip) {
  BlockPdu pdu;
  pdu.op = WireOp::kScsiWrite;
  pdu.session = 0xDEADBEEFCAFEULL;
  pdu.lun = 7;
  pdu.lba = 123456789;
  pdu.blocks = 16;
  pdu.task_tag = 42;
  pdu.data.resize(8192);
  util::FillPattern(pdu.data, 1);
  const util::Bytes wire = EncodePdu(pdu);
  const auto decoded = DecodePdu(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, pdu);
}

TEST(BlockWire, NoDataPdu) {
  BlockPdu pdu;
  pdu.op = WireOp::kReportLuns;
  pdu.session = 1;
  pdu.task_tag = 9;
  const auto decoded = DecodePdu(EncodePdu(pdu));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, pdu);
}

TEST(BlockWire, HeaderCorruptionDetected) {
  BlockPdu pdu;
  pdu.op = WireOp::kScsiRead;
  pdu.lba = 100;
  util::Bytes wire = EncodePdu(pdu);
  wire[9] ^= 0x01;  // flip a bit inside the header
  EXPECT_FALSE(DecodePdu(wire).has_value());
}

TEST(BlockWire, DataCorruptionDetected) {
  BlockPdu pdu;
  pdu.op = WireOp::kScsiWrite;
  pdu.data.resize(4096);
  util::FillPattern(pdu.data, 2);
  util::Bytes wire = EncodePdu(pdu);
  wire[wire.size() - 10] ^= 0x01;  // flip a payload bit
  EXPECT_FALSE(DecodePdu(wire).has_value());
}

TEST(BlockWire, TruncationAndGarbageRejected) {
  BlockPdu pdu;
  pdu.op = WireOp::kScsiWrite;
  pdu.data.resize(1024);
  util::Bytes wire = EncodePdu(pdu);
  EXPECT_FALSE(DecodePdu(std::span(wire).subspan(0, 20)).has_value());
  wire.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(DecodePdu(wire).has_value());
  util::Bytes junk(64, 0xAB);
  EXPECT_FALSE(DecodePdu(junk).has_value());
}

TEST_F(ProtoTest, HttpParse) {
  const auto req = ParseHttpRequest("GET /data/file.bin HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/data/file.bin");
  EXPECT_FALSE(req->range_begin.has_value());

  const auto ranged = ParseHttpRequest(
      "GET /f HTTP/1.1\r\nHost: x\r\nRange: bytes=100-199\r\n\r\n");
  ASSERT_TRUE(ranged.has_value());
  EXPECT_EQ(*ranged->range_begin, 100u);
  EXPECT_EQ(*ranged->range_end, 199u);

  EXPECT_FALSE(ParseHttpRequest("POST /f HTTP/1.0\r\n\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequest("garbage").has_value());
}

TEST_F(ProtoTest, HttpGetServesFileContent) {
  fs::FileSystem fs(*system_);
  HttpServer http(fs);
  ASSERT_EQ(fs.Create("/movie.bin"), fs::Status::kOk);
  const auto data = Pattern(500000, 3);
  fs::Status wst = fs::Status::kIoError;
  fs.Write("/movie.bin", 0, data, [&](fs::Status s) { wst = s; });
  engine_.Run();
  ASSERT_EQ(wst, fs::Status::kOk);

  HttpResponse resp;
  http.HandleRaw("GET /movie.bin HTTP/1.0\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, data);
  EXPECT_EQ(resp.content_length, data.size());
  const std::string head = RenderHttpHead(resp);
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(ProtoTest, HttpRangeRequests) {
  fs::FileSystem fs(*system_);
  HttpServer http(fs);
  ASSERT_EQ(fs.Create("/f"), fs::Status::kOk);
  const auto data = Pattern(10000, 4);
  fs.Write("/f", 0, data, [](fs::Status) {});
  engine_.Run();

  HttpResponse resp;
  http.HandleRaw("GET /f HTTP/1.0\r\nRange: bytes=1000-1999\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 206);
  ASSERT_EQ(resp.body.size(), 1000u);
  EXPECT_TRUE(std::equal(resp.body.begin(), resp.body.end(),
                         data.begin() + 1000));
  EXPECT_NE(resp.headers.find("Content-Range: bytes 1000-1999/10000"),
            std::string::npos);

  // Unsatisfiable range.
  http.HandleRaw("GET /f HTTP/1.0\r\nRange: bytes=99999-\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 416);
}

TEST_F(ProtoTest, HttpErrors) {
  fs::FileSystem fs(*system_);
  HttpServer http(fs);
  ASSERT_EQ(fs.Mkdir("/dir"), fs::Status::kOk);
  HttpResponse resp;
  http.HandleRaw("GET /missing HTTP/1.0\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 404);
  http.HandleRaw("GET /dir HTTP/1.0\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 403);
  http.HandleRaw("bogus\r\n\r\n", [&](HttpResponse r) { resp = std::move(r); });
  EXPECT_EQ(resp.status, 400);
}

TEST_F(ProtoTest, HttpHeadOmitsBody) {
  fs::FileSystem fs(*system_);
  HttpServer http(fs);
  ASSERT_EQ(fs.Create("/f"), fs::Status::kOk);
  fs.Write("/f", 0, Pattern(5000, 5), [](fs::Status) {});
  engine_.Run();
  HttpResponse resp;
  http.HandleRaw("HEAD /f HTTP/1.0\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_length, 5000u);
  EXPECT_TRUE(resp.body.empty());
}

TEST_F(ProtoTest, HttpGetPropagatesTraceContext) {
  fs::FileSystem fs(*system_);
  HttpServer http(fs);
  obs::Hub hub(engine_);
  system_->AttachObs(&hub);
  http.AttachObs(&hub);
  ASSERT_EQ(fs.Create("/traced.bin"), fs::Status::kOk);
  fs.Write("/traced.bin", 0, Pattern(200000, 9), [](fs::Status) {});
  engine_.Run();

  HttpResponse resp;
  http.HandleRaw("GET /traced.bin HTTP/1.0\r\n\r\n",
                 [&](HttpResponse r) { resp = std::move(r); });
  engine_.Run();
  ASSERT_EQ(resp.status, 200);

  // The GET is one root trace whose context flowed through the filesystem
  // into the controller stack: deeper-layer spans hang off the same trace.
  const obs::FinishedTrace* get_trace = nullptr;
  for (const auto& t : hub.tracer().recent()) {
    if (t.name == "proto.http.get") get_trace = &t;
  }
  ASSERT_NE(get_trace, nullptr) << hub.tracer().Dump();
  EXPECT_TRUE(get_trace->ok);
  bool saw_controller = false, saw_status_note = false;
  for (const auto& s : get_trace->spans) {
    if (s.layer == obs::Layer::kController) saw_controller = true;
    if (s.note.find("status=200") != std::string::npos) {
      saw_status_note = true;
    }
  }
  EXPECT_TRUE(saw_controller)
      << "controller span must be a child of the HTTP trace";
  EXPECT_TRUE(saw_status_note);
  EXPECT_GT(get_trace->duration(), 0u);

  // A 404 finishes the trace as not-ok.
  http.HandleRaw("GET /nosuch HTTP/1.0\r\n\r\n", [](HttpResponse) {});
  engine_.Run();
  bool saw_failed = false;
  for (const auto& t : hub.tracer().recent()) {
    if (t.name == "proto.http.get" && !t.ok) saw_failed = true;
  }
  EXPECT_TRUE(saw_failed);
}

}  // namespace
}  // namespace nlss::proto
