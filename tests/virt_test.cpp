#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "disk/disk.h"
#include "raid/group.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "virt/chargeback.h"
#include "virt/pool.h"
#include "virt/volume.h"

namespace nlss::virt {
namespace {

class VirtTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kExtentBlocks = 64;  // 256 KiB extents

  void SetUp() override {
    disk::DiskProfile profile;
    profile.capacity_blocks = 8192;  // 32 MiB per disk
    for (int g = 0; g < 2; ++g) {
      farms_.push_back(std::make_unique<disk::DiskFarm>(engine_, profile, 4,
                                                        "g" + std::to_string(g)));
      std::vector<disk::Disk*> disks;
      for (std::size_t i = 0; i < farms_[g]->size(); ++i) {
        disks.push_back(&farms_[g]->at(i));
      }
      raid::RaidGroup::Config config;
      config.level = raid::RaidLevel::kRaid5;
      config.unit_blocks = 8;
      groups_.push_back(std::make_unique<raid::RaidGroup>(
          engine_, std::move(disks), config));
    }
    pool_ = std::make_unique<StoragePool>(
        std::vector<raid::RaidGroup*>{groups_[0].get(), groups_[1].get()},
        kExtentBlocks);
  }

  std::unique_ptr<DemandMappedVolume> MakeVolume(std::uint64_t blocks,
                                                 const std::string& tenant = "t") {
    return std::make_unique<DemandMappedVolume>(engine_, *pool_, blocks,
                                                tenant, next_id_++);
  }

  bool Write(DemandMappedVolume& v, std::uint64_t block,
             const util::Bytes& data) {
    bool ok = false, fired = false;
    v.WriteBlocks(block, data, [&](bool r) {
      ok = r;
      fired = true;
    });
    engine_.Run();
    EXPECT_TRUE(fired);
    return ok;
  }

  std::pair<bool, util::Bytes> Read(DemandMappedVolume& v, std::uint64_t block,
                                    std::uint32_t count) {
    bool ok = false;
    util::Bytes out;
    v.ReadBlocks(block, count, [&](bool r, util::Bytes d) {
      ok = r;
      out = std::move(d);
    });
    engine_.Run();
    return {ok, std::move(out)};
  }

  util::Bytes Pattern(std::uint32_t blocks, std::uint64_t seed) {
    util::Bytes b(static_cast<std::size_t>(blocks) * 4096);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  std::vector<std::unique_ptr<disk::DiskFarm>> farms_;
  std::vector<std::unique_ptr<raid::RaidGroup>> groups_;
  std::unique_ptr<StoragePool> pool_;
  std::uint64_t next_id_ = 1;
};

TEST_F(VirtTest, PoolAllocateFreeCycle) {
  const auto total = pool_->TotalExtents();
  EXPECT_GT(total, 0u);
  auto e = pool_->Allocate();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(pool_->FreeExtents(), total - 1);
  pool_->Free(*e);
  EXPECT_EQ(pool_->FreeExtents(), total);
}

TEST_F(VirtTest, PoolExhaustion) {
  std::vector<PhysExtent> held;
  while (auto e = pool_->Allocate()) held.push_back(*e);
  EXPECT_EQ(held.size(), pool_->TotalExtents());
  EXPECT_FALSE(pool_->Allocate().has_value());
  for (const auto& e : held) pool_->Free(e);
}

TEST_F(VirtTest, PoolNeverDoubleAllocates) {
  // Property: random alloc/free sequences never hand out an extent twice.
  util::Rng rng(123);
  std::set<std::pair<std::uint32_t, std::uint64_t>> held;
  std::vector<PhysExtent> held_list;
  for (int op = 0; op < 5000; ++op) {
    if (held_list.empty() || rng.Chance(0.55)) {
      const auto e = pool_->Allocate();
      if (!e) continue;
      ASSERT_TRUE(held.insert({e->group, e->extent}).second)
          << "double allocation of group " << e->group << " extent "
          << e->extent;
      held_list.push_back(*e);
    } else {
      const std::size_t i = rng.Below(held_list.size());
      pool_->Free(held_list[i]);
      held.erase({held_list[i].group, held_list[i].extent});
      held_list[i] = held_list.back();
      held_list.pop_back();
    }
    ASSERT_EQ(pool_->AllocatedExtents(), held.size());
  }
}

TEST_F(VirtTest, FreshAllocationsInterleaveGroups) {
  // Consecutive allocations must rotate across RAID groups so sequential
  // volume traffic stripes over every group's disks.
  const auto a = pool_->Allocate();
  const auto b = pool_->Allocate();
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->group, b->group);
}

TEST_F(VirtTest, UnwrittenVolumeReadsZeroWithoutAllocating) {
  auto v = MakeVolume(10000);
  auto [ok, data] = Read(*v, 1234, 10);
  ASSERT_TRUE(ok);
  for (auto b : data) EXPECT_EQ(b, 0);
  EXPECT_EQ(v->MappedExtents(), 0u);
  EXPECT_EQ(v->AllocatedBytes(), 0u);
}

TEST_F(VirtTest, WriteAllocatesOnDemandOnly) {
  auto v = MakeVolume(10000);
  ASSERT_TRUE(Write(*v, 0, Pattern(4, 1)));
  EXPECT_EQ(v->MappedExtents(), 1u);
  // Another write in the same extent: no new allocation.
  ASSERT_TRUE(Write(*v, 10, Pattern(4, 2)));
  EXPECT_EQ(v->MappedExtents(), 1u);
  // A write in a distant extent: one more.
  ASSERT_TRUE(Write(*v, 5000, Pattern(4, 3)));
  EXPECT_EQ(v->MappedExtents(), 2u);
}

TEST_F(VirtTest, RoundtripAcrossExtents) {
  auto v = MakeVolume(10000);
  const auto data = Pattern(3 * kExtentBlocks + 7, 42);
  ASSERT_TRUE(Write(*v, 50, data));
  auto [ok, got] = Read(*v, 50, 3 * kExtentBlocks + 7);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(VirtTest, FirstTouchDoesNotLeakStaleData) {
  // Write data into extent, trim it (freeing the extent), then allocate it
  // again via another volume: unwritten parts must read zero.
  auto v1 = MakeVolume(kExtentBlocks);
  ASSERT_TRUE(Write(*v1, 0, Pattern(kExtentBlocks, 9)));
  bool trimmed = false;
  v1->Trim(0, kExtentBlocks, [&](bool ok) { trimmed = ok; });
  engine_.Run();
  ASSERT_TRUE(trimmed);

  auto v2 = MakeVolume(kExtentBlocks);
  ASSERT_TRUE(Write(*v2, 0, Pattern(1, 10)));  // 1 block only
  auto [ok, got] = Read(*v2, 1, kExtentBlocks - 1);
  ASSERT_TRUE(ok);
  for (auto b : got) EXPECT_EQ(b, 0) << "stale data leaked from freed extent";
}

TEST_F(VirtTest, TrimFreesFullExtentsAndZeroesPartials) {
  auto v = MakeVolume(4 * kExtentBlocks);
  ASSERT_TRUE(Write(*v, 0, Pattern(4 * kExtentBlocks, 5)));
  EXPECT_EQ(v->MappedExtents(), 4u);
  const auto free_before = pool_->FreeExtents();
  // Trim extent 1 entirely plus half of extent 2.
  bool ok = false;
  v->Trim(kExtentBlocks, kExtentBlocks + kExtentBlocks / 2,
          [&](bool r) { ok = r; });
  engine_.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(v->MappedExtents(), 3u);
  EXPECT_EQ(pool_->FreeExtents(), free_before + 1);
  // Extent 1 reads zeros; extent 2's first half zeros, second half intact.
  auto [ok1, e1] = Read(*v, kExtentBlocks, kExtentBlocks);
  ASSERT_TRUE(ok1);
  for (auto b : e1) EXPECT_EQ(b, 0);
  auto [ok2, e2] = Read(*v, 0, 4 * kExtentBlocks);
  ASSERT_TRUE(ok2);
  const auto full = Pattern(4 * kExtentBlocks, 5);
  // Second half of extent 2 must still match.
  const std::size_t tail_start =
      (2 * kExtentBlocks + kExtentBlocks / 2) * 4096ull;
  EXPECT_TRUE(std::equal(e2.begin() + tail_start, e2.end(),
                         full.begin() + tail_start));
}

TEST_F(VirtTest, OutOfSpaceFailsWrite) {
  // One volume eats the whole pool; the next write fails.
  auto hog = MakeVolume(pool_->TotalExtents() * kExtentBlocks);
  ASSERT_TRUE(hog->Preallocate());
  auto v = MakeVolume(1000);
  EXPECT_FALSE(Write(*v, 0, Pattern(1, 1)));
}

TEST_F(VirtTest, PreallocateMapsEverything) {
  auto v = MakeVolume(10 * kExtentBlocks);
  ASSERT_TRUE(v->Preallocate());
  EXPECT_EQ(v->MappedExtents(), 10u);
  EXPECT_EQ(v->AllocatedBytes(), 10ull * kExtentBlocks * 4096);
}

TEST_F(VirtTest, ThinBeatsFatProvisioning) {
  // The E5 story in miniature: 8 thin volumes at 10% fill fit where fat
  // provisioning would exhaust the pool.
  const std::uint64_t volume_blocks = pool_->TotalExtents() * kExtentBlocks / 4;
  std::vector<std::unique_ptr<DemandMappedVolume>> thin;
  for (int i = 0; i < 8; ++i) {
    thin.push_back(MakeVolume(volume_blocks, "tenant" + std::to_string(i)));
    // Fill 10%.
    ASSERT_TRUE(Write(*thin.back(), 0,
                      Pattern(static_cast<std::uint32_t>(volume_blocks / 10),
                              i)));
  }
  // 8 thin volumes of total virtual size 2x the pool fit comfortably.
  EXPECT_LT(pool_->AllocatedExtents(), pool_->TotalExtents() / 2);
}

TEST_F(VirtTest, ResizeIsFree) {
  auto v = MakeVolume(100);
  ASSERT_TRUE(Write(*v, 0, Pattern(1, 1)));
  const auto allocated = v->AllocatedBytes();
  v->Resize(1'000'000);
  EXPECT_EQ(v->AllocatedBytes(), allocated);
  ASSERT_TRUE(Write(*v, 999'000, Pattern(1, 2)));
  auto [ok, got] = Read(*v, 999'000, 1);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::CheckPattern(got, 2));
}

TEST_F(VirtTest, SnapshotPreservesPointInTime) {
  auto v = MakeVolume(4 * kExtentBlocks);
  const auto original = Pattern(2 * kExtentBlocks, 11);
  ASSERT_TRUE(Write(*v, 0, original));
  const SnapshotId snap = v->CreateSnapshot();

  const auto updated = Pattern(kExtentBlocks, 12);
  ASSERT_TRUE(Write(*v, 0, updated));

  // Volume sees new data; snapshot sees old.
  auto [ok_live, live] = Read(*v, 0, kExtentBlocks);
  ASSERT_TRUE(ok_live);
  EXPECT_TRUE(std::equal(live.begin(), live.end(), updated.begin()));

  bool ok_snap = false;
  util::Bytes snap_data;
  v->ReadSnapshotBlocks(snap, 0, 2 * kExtentBlocks,
                        [&](bool r, util::Bytes d) {
                          ok_snap = r;
                          snap_data = std::move(d);
                        });
  engine_.Run();
  ASSERT_TRUE(ok_snap);
  EXPECT_EQ(snap_data, original);
}

TEST_F(VirtTest, SnapshotSharesUntouchedExtents) {
  auto v = MakeVolume(8 * kExtentBlocks);
  ASSERT_TRUE(Write(*v, 0, Pattern(8 * kExtentBlocks, 13)));
  const auto allocated_before = pool_->AllocatedExtents();
  const SnapshotId snap = v->CreateSnapshot();
  // Snapshot itself costs nothing.
  EXPECT_EQ(pool_->AllocatedExtents(), allocated_before);
  // Touch one extent: exactly one COW copy.
  ASSERT_TRUE(Write(*v, 0, Pattern(1, 14)));
  EXPECT_EQ(pool_->AllocatedExtents(), allocated_before + 1);
  EXPECT_EQ(v->cow_copies(), 1u);
  v->DeleteSnapshot(snap);
  // Old extent of the COW'd pair is freed; shared ones return to single-ref.
  EXPECT_EQ(pool_->AllocatedExtents(), allocated_before);
}

TEST_F(VirtTest, DeleteSnapshotReleasesExtents) {
  auto v = MakeVolume(4 * kExtentBlocks);
  ASSERT_TRUE(Write(*v, 0, Pattern(4 * kExtentBlocks, 15)));
  const SnapshotId snap = v->CreateSnapshot();
  // Rewrite everything: 4 COW copies, doubling allocation.
  ASSERT_TRUE(Write(*v, 0, Pattern(4 * kExtentBlocks, 16)));
  const auto with_snap = pool_->AllocatedExtents();
  v->DeleteSnapshot(snap);
  EXPECT_EQ(pool_->AllocatedExtents(), with_snap - 4);
}

TEST_F(VirtTest, MultipleSnapshotsIndependent) {
  auto v = MakeVolume(kExtentBlocks);
  ASSERT_TRUE(Write(*v, 0, Pattern(kExtentBlocks, 20)));
  const SnapshotId s1 = v->CreateSnapshot();
  ASSERT_TRUE(Write(*v, 0, Pattern(kExtentBlocks, 21)));
  const SnapshotId s2 = v->CreateSnapshot();
  ASSERT_TRUE(Write(*v, 0, Pattern(kExtentBlocks, 22)));

  auto read_snap = [&](SnapshotId id) {
    util::Bytes out;
    v->ReadSnapshotBlocks(id, 0, kExtentBlocks,
                          [&](bool, util::Bytes d) { out = std::move(d); });
    engine_.Run();
    return out;
  };
  EXPECT_TRUE(util::CheckPattern(read_snap(s1), 20));
  EXPECT_TRUE(util::CheckPattern(read_snap(s2), 21));
  auto [ok, live] = Read(*v, 0, kExtentBlocks);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::CheckPattern(live, 22));
}

TEST_F(VirtTest, RandomizedVolumeMatchesModel) {
  auto v = MakeVolume(6 * kExtentBlocks);
  util::Rng rng(99);
  util::Bytes model(6 * kExtentBlocks * 4096ull, 0);
  for (int op = 0; op < 80; ++op) {
    const std::uint64_t blk = rng.Below(6 * kExtentBlocks - 1);
    const std::uint32_t n = static_cast<std::uint32_t>(
        rng.Range(1, std::min<std::uint64_t>(6 * kExtentBlocks - blk, 96)));
    if (rng.Chance(0.45)) {
      const auto data = Pattern(n, rng.Next());
      ASSERT_TRUE(Write(*v, blk, data));
      std::copy(data.begin(), data.end(), model.begin() + blk * 4096);
    } else if (rng.Chance(0.15)) {
      bool ok = false;
      v->Trim(blk, n, [&](bool r) { ok = r; });
      engine_.Run();
      ASSERT_TRUE(ok);
      std::fill(model.begin() + blk * 4096, model.begin() + (blk + n) * 4096,
                0);
    } else {
      auto [ok, got] = Read(*v, blk, n);
      ASSERT_TRUE(ok);
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             model.begin() + blk * 4096))
          << "mismatch at op " << op;
    }
  }
}

TEST_F(VirtTest, ChargeBackBillsActualUsage) {
  ChargeBack cb(engine_);
  auto thin = MakeVolume(1000 * kExtentBlocks, "thin-tenant");
  auto fat = MakeVolume(100 * kExtentBlocks, "fat-tenant");
  ASSERT_TRUE(fat->Preallocate());
  cb.Track(thin.get());
  cb.Track(fat.get());
  cb.Sample();
  ASSERT_TRUE(Write(*thin, 0, Pattern(kExtentBlocks, 1)));  // 1 extent
  engine_.RunFor(10 * util::kNsPerSec);
  cb.Sample();
  const double thin_bill = cb.ByteSeconds("thin-tenant");
  const double fat_bill = cb.ByteSeconds("fat-tenant");
  EXPECT_GT(fat_bill, thin_bill * 50)
      << "fat provisioning pays for its slack";
  const auto report = cb.Report();
  EXPECT_EQ(report.size(), 2u);
}

}  // namespace
}  // namespace nlss::virt
