#include <gtest/gtest.h>

#include "cache/backing.h"
#include "geo/volume_replication.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "util/bytes.h"

namespace nlss::geo {
namespace {

class VolumeReplicationTest : public ::testing::Test {
 protected:
  void Build(bool synchronous, double wan_gbps = 1.0,
             sim::Tick one_way = 10 * util::kNsPerMs) {
    local_gw_ = fabric_.AddNode("local-gw");
    remote_gw_ = fabric_.AddNode("remote-gw");
    fabric_.Connect(local_gw_, remote_gw_,
                    net::LinkProfile::Wan(one_way, wan_gbps));
    local_ = std::make_unique<cache::MemBacking>(engine_, 4096);
    remote_ = std::make_unique<cache::MemBacking>(engine_, 8192);  // bigger!
    ReplicatedBacking::Config config;
    config.synchronous = synchronous;
    repl_ = std::make_unique<ReplicatedBacking>(
        engine_, fabric_, *local_, local_gw_, *remote_, remote_gw_, config);
  }

  util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
    util::Bytes b(n);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  net::NodeId local_gw_ = 0, remote_gw_ = 0;
  std::unique_ptr<cache::MemBacking> local_, remote_;
  std::unique_ptr<ReplicatedBacking> repl_;
};

TEST_F(VolumeReplicationTest, SyncWritesLandBothSidesBeforeAck) {
  Build(/*synchronous=*/true);
  const auto data = Pattern(64 * 1024, 1);
  bool acked = false;
  repl_->WriteBlocks(16, data, [&](bool ok) { acked = ok; });
  engine_.Run();
  ASSERT_TRUE(acked);
  // Both media hold the data.
  EXPECT_TRUE(std::equal(data.begin(), data.end(),
                         local_->raw().begin() + 16 * 4096));
  EXPECT_TRUE(std::equal(data.begin(), data.end(),
                         remote_->raw().begin() + 16 * 4096));
  EXPECT_EQ(repl_->PendingBytes(), 0u);
}

TEST_F(VolumeReplicationTest, SyncAckPaysWanRoundTrip) {
  Build(/*synchronous=*/true, 1.0, 10 * util::kNsPerMs);
  sim::Tick acked = 0;
  repl_->WriteBlocks(0, Pattern(4096, 2), [&](bool) {
    acked = engine_.now();
  });
  engine_.Run();
  EXPECT_GE(acked, 20 * util::kNsPerMs) << "must wait out the round trip";
}

TEST_F(VolumeReplicationTest, AsyncAcksLocallyThenConverges) {
  Build(/*synchronous=*/false);
  const auto data = Pattern(256 * 1024, 3);
  bool acked = false;
  sim::Tick acked_at = 0;
  repl_->WriteBlocks(0, data, [&](bool) {
    acked = true;
    acked_at = engine_.now();
  });
  engine_.RunFor(5 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  EXPECT_LT(acked_at, 5 * util::kNsPerMs) << "async ack must not wait the WAN";
  EXPECT_GT(repl_->PendingBytes(), 0u);
  bool drained = false;
  repl_->Drain([&] { drained = true; });
  engine_.Run();
  ASSERT_TRUE(drained);
  EXPECT_EQ(repl_->PendingBytes(), 0u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), remote_->raw().begin()));
}

TEST_F(VolumeReplicationTest, AsyncAppliesInOrder) {
  Build(/*synchronous=*/false);
  // Two overlapping writes: the remote must end at the second version.
  const auto v1 = Pattern(64 * 1024, 4);
  const auto v2 = Pattern(64 * 1024, 5);
  repl_->WriteBlocks(0, v1, [](bool) {});
  repl_->WriteBlocks(0, v2, [](bool) {});
  bool drained = false;
  repl_->Drain([&] { drained = true; });
  engine_.Run();
  ASSERT_TRUE(drained);
  EXPECT_TRUE(std::equal(v2.begin(), v2.end(), remote_->raw().begin()));
  EXPECT_EQ(repl_->replicated_writes(), 2u);
}

TEST_F(VolumeReplicationTest, PrimaryFailureLosesOnlyQueuedTail) {
  Build(/*synchronous=*/false, /*wan_gbps=*/0.1);  // slow WAN
  const auto a = Pattern(512 * 1024, 6);
  const auto b = Pattern(512 * 1024, 7);
  repl_->WriteBlocks(0, a, [](bool) {});
  bool drained = false;
  repl_->Drain([&] { drained = true; });
  engine_.Run();
  ASSERT_TRUE(drained);  // first write fully shipped
  repl_->WriteBlocks(256, b, [](bool) {});
  engine_.RunFor(util::kNsPerMs);  // b still (mostly) queued
  const std::uint64_t lost = repl_->FailPrimary();
  EXPECT_GT(lost, 0u) << "the async tail is the RPO";
  engine_.Run();
  // The remote still has the first write intact — bounded loss.
  EXPECT_TRUE(std::equal(a.begin(), a.end(), remote_->raw().begin()));
}

TEST_F(VolumeReplicationTest, ReadsAreLocalOnly) {
  Build(/*synchronous=*/false);
  const auto data = Pattern(64 * 1024, 8);
  repl_->WriteBlocks(0, data, [](bool) {});
  bool drained = false;
  repl_->Drain([&] { drained = true; });
  engine_.Run();
  ASSERT_TRUE(drained);
  const auto wan_before = fabric_.StatsFor(local_gw_, remote_gw_).bytes;
  util::Bytes got;
  bool ok = false;
  repl_->ReadBlocks(0, 16, [&](bool r, util::Bytes d) {
    ok = r;
    got = std::move(d);
  });
  engine_.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
  EXPECT_EQ(fabric_.StatsFor(local_gw_, remote_gw_).bytes, wan_before)
      << "reads must not touch the WAN";
}

TEST_F(VolumeReplicationTest, WanFlapRetriesUntilDelivered) {
  Build(/*synchronous=*/false);
  fabric_.SetLinkUp(local_gw_, remote_gw_, false);
  const auto data = Pattern(128 * 1024, 9);
  bool acked = false;
  repl_->WriteBlocks(0, data, [&](bool ok) { acked = ok; });
  engine_.RunFor(100 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  EXPECT_GT(repl_->PendingBytes(), 0u) << "stuck behind the dead WAN";
  fabric_.SetLinkUp(local_gw_, remote_gw_, true);
  bool drained = false;
  repl_->Drain([&] { drained = true; });
  engine_.Run();
  ASSERT_TRUE(drained);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), remote_->raw().begin()));
}

TEST_F(VolumeReplicationTest, DifferentSizedRemotePoolWorks) {
  // Paper §7.2: "remove the restriction of copies being the same size".
  Build(/*synchronous=*/true);
  EXPECT_GT(remote_->CapacityBlocks(), local_->CapacityBlocks());
  const auto data = Pattern(4096, 10);
  bool ok = false;
  repl_->WriteBlocks(local_->CapacityBlocks() - 1, data,
                     [&](bool r) { ok = r; });
  engine_.Run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace nlss::geo
