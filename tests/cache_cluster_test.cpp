#include <gtest/gtest.h>

#include <memory>

#include "cache/backing.h"
#include "cache/cluster.h"
#include "check/race.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace nlss::cache {
namespace {

constexpr std::uint32_t kVol = 1;

class ClusterTest : public ::testing::Test {
 protected:
  void Build(std::size_t n_controllers, CacheCluster::Config config = {},
             std::uint64_t backing_blocks = 16384) {
    fabric_ = std::make_unique<net::Fabric>(engine_);
    std::vector<net::NodeId> nodes;
    for (std::size_t i = 0; i < n_controllers; ++i) {
      nodes.push_back(fabric_->AddNode("ctrl" + std::to_string(i)));
    }
    // Full mesh over the controller backplane.
    for (std::size_t i = 0; i < n_controllers; ++i) {
      for (std::size_t j = i + 1; j < n_controllers; ++j) {
        fabric_->Connect(nodes[i], nodes[j], net::LinkProfile::Backplane());
      }
    }
    cluster_ = std::make_unique<CacheCluster>(engine_, *fabric_, nodes, config);
    backing_ = std::make_unique<MemBacking>(engine_, backing_blocks);
    cluster_->RegisterVolume(kVol, backing_.get());
  }

  bool Write(ControllerId via, std::uint64_t offset, const util::Bytes& data) {
    bool ok = false, fired = false;
    cluster_->Write(via, kVol, offset, data, [&](bool r) {
      ok = r;
      fired = true;
    });
    engine_.Run();
    EXPECT_TRUE(fired);
    return ok;
  }

  std::pair<bool, util::Bytes> Read(ControllerId via, std::uint64_t offset,
                                    std::uint32_t len) {
    bool ok = false, fired = false;
    util::Bytes out;
    cluster_->Read(via, kVol, offset, len, [&](bool r, util::Bytes d) {
      ok = r;
      out = std::move(d);
      fired = true;
    });
    engine_.Run();
    EXPECT_TRUE(fired);
    return {ok, std::move(out)};
  }

  bool FlushAll() {
    bool ok = false;
    cluster_->FlushAll([&](bool r) { ok = r; });
    engine_.Run();
    return ok;
  }

  util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
    util::Bytes b(n);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<MemBacking> backing_;
};

TEST_F(ClusterTest, WriteReadRoundtripSameController) {
  Build(4);
  const auto data = Pattern(100000, 7);
  ASSERT_TRUE(Write(0, 5000, data));
  auto [ok, got] = Read(0, 5000, 100000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(ClusterTest, WriteVisibleFromEveryController) {
  Build(4);
  const auto data = Pattern(70000, 9);
  ASSERT_TRUE(Write(1, 0, data));
  for (ControllerId c = 0; c < 4; ++c) {
    auto [ok, got] = Read(c, 0, 70000);
    ASSERT_TRUE(ok) << "controller " << c;
    EXPECT_EQ(got, data) << "controller " << c;
  }
}

TEST_F(ClusterTest, SequentialWritesFromDifferentControllersCohere) {
  Build(3);
  const auto a = Pattern(64 * 1024, 1);
  const auto b = Pattern(64 * 1024, 2);
  ASSERT_TRUE(Write(0, 0, a));
  ASSERT_TRUE(Write(1, 0, b));  // must invalidate 0's copy
  auto [ok, got] = Read(2, 0, 64 * 1024);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, b);
  auto [ok0, got0] = Read(0, 0, 64 * 1024);
  ASSERT_TRUE(ok0);
  EXPECT_EQ(got0, b) << "controller 0 must not see its stale copy";
}

TEST_F(ClusterTest, PartialPageWriteMergesWithExisting) {
  Build(2);
  const auto base = Pattern(64 * 1024, 3);
  ASSERT_TRUE(Write(0, 0, base));
  const auto patch = Pattern(100, 4);
  ASSERT_TRUE(Write(1, 1000, patch));
  auto [ok, got] = Read(0, 0, 64 * 1024);
  ASSERT_TRUE(ok);
  util::Bytes expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 1000);
  EXPECT_EQ(got, expect);
}

TEST_F(ClusterTest, ReadMissGoesToBackingExactlyOnce) {
  Build(4);
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 5)));
  ASSERT_TRUE(FlushAll());
  const auto before = backing_->reads();
  auto r1 = Read(2, 0, 64 * 1024);
  ASSERT_TRUE(r1.first);
  // Controller 0 still caches the page -> served from peer cache, not disk.
  EXPECT_EQ(backing_->reads(), before)
      << "remote cache hit must not touch the backing store";
  auto r2 = Read(2, 0, 64 * 1024);
  ASSERT_TRUE(r2.first);
  EXPECT_EQ(backing_->reads(), before) << "local hit must not touch backing";
}

TEST_F(ClusterTest, HitClassificationStats) {
  Build(3);
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 6)));
  ASSERT_TRUE(FlushAll());
  // ctrl 0 holds the page; a read via ctrl1 is a remote hit, then local.
  Read(1, 0, 1024);
  EXPECT_EQ(cluster_->stats(1).remote_hits, 1u);
  Read(1, 0, 1024);
  EXPECT_EQ(cluster_->stats(1).local_hits, 1u);
  // An untouched page is a miss.
  Read(2, 10 * 64 * 1024, 1024);
  EXPECT_EQ(cluster_->stats(2).misses, 1u);
}

TEST_F(ClusterTest, WriteAckPrecedesDiskWrite) {
  Build(2);
  backing_->set_latency(10 * util::kNsPerMs);  // slow disk
  bool acked = false;
  const auto data = Pattern(64 * 1024, 8);
  cluster_->Write(0, kVol, 0, data, [&](bool ok) { acked = ok; });
  // Run long enough for replication but shorter than the disk latency.
  engine_.RunFor(5 * util::kNsPerMs);
  EXPECT_TRUE(acked) << "write-back caching must ack before the disk write";
  EXPECT_EQ(backing_->writes(), 0u);
  engine_.Run();
  EXPECT_EQ(backing_->writes(), 1u) << "async flush must eventually land";
}

TEST_F(ClusterTest, FlushAllPersistsEverything) {
  Build(4);
  const auto d0 = Pattern(64 * 1024, 10);
  const auto d1 = Pattern(30000, 11);
  ASSERT_TRUE(Write(0, 0, d0));
  ASSERT_TRUE(Write(3, 200000, d1));
  ASSERT_TRUE(FlushAll());
  EXPECT_EQ(cluster_->DirtyPages(), 0u);
  // Verify backing content directly.
  EXPECT_TRUE(std::equal(d0.begin(), d0.end(), backing_->raw().begin()));
  EXPECT_TRUE(std::equal(d1.begin(), d1.end(),
                         backing_->raw().begin() + 200000));
}

TEST_F(ClusterTest, NWayReplicationPinsCopies) {
  CacheCluster::Config config;
  config.replication = 3;
  Build(4, config);
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 12)));
  // Before flush completes... count replica frames.  Write() ran the engine
  // to completion, so flush already landed and replicas were unpinned.
  // Use a slow backing to observe the pinned window instead.
  backing_->set_latency(50 * util::kNsPerMs);
  bool acked = false;
  cluster_->Write(1, kVol, 1 * 64 * 1024, Pattern(64 * 1024, 13),
                  [&](bool) { acked = true; });
  engine_.RunFor(10 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  std::size_t replicas = 0;
  for (ControllerId c = 0; c < 4; ++c) {
    cluster_->node(c).ForEach([&](const PageKey&, const CacheNode::Frame& f) {
      if (f.is_replica) ++replicas;
    });
  }
  EXPECT_EQ(replicas, 2u) << "N=3 means two pinned peer copies";
  engine_.Run();  // flush lands
  replicas = 0;
  for (ControllerId c = 0; c < 4; ++c) {
    cluster_->node(c).ForEach([&](const PageKey&, const CacheNode::Frame& f) {
      if (f.is_replica) ++replicas;
    });
  }
  EXPECT_EQ(replicas, 0u) << "replicas must be unpinned after the flush";
}

TEST_F(ClusterTest, DirtyDataSurvivesOwnerFailure) {
  CacheCluster::Config config;
  config.replication = 2;
  config.flush_delay_ns = 200 * util::kNsPerMs;  // flush never issues pre-crash
  Build(4, config);
  backing_->set_latency(100 * util::kNsPerMs);
  const auto data = Pattern(64 * 1024, 14);
  bool acked = false;
  cluster_->Write(0, kVol, 0, data, [&](bool ok) { acked = ok; });
  engine_.RunFor(10 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  EXPECT_EQ(backing_->writes(), 0u);

  // Owner dies with the only primary copy of the dirty page.
  cluster_->FailController(0);
  cluster_->Recover();
  backing_->set_latency(0);
  ASSERT_TRUE(FlushAll());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), backing_->raw().begin()))
      << "the promoted replica must flush the acked write";
  // And the data must be readable through any surviving controller.
  auto [ok, got] = Read(2, 0, 64 * 1024);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(ClusterTest, ReplicationOneLosesDataOnFailure) {
  CacheCluster::Config config;
  config.replication = 1;  // no peer copies: the paper's warning case
  config.flush_delay_ns = 100 * util::kNsPerMs;  // write-back aging window
  Build(3, config);
  backing_->set_latency(100 * util::kNsPerMs);
  const auto data = Pattern(64 * 1024, 15);
  bool acked = false;
  cluster_->Write(0, kVol, 0, data, [&](bool ok) { acked = ok; });
  engine_.RunFor(10 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  cluster_->FailController(0);
  cluster_->Recover();
  backing_->set_latency(0);
  ASSERT_TRUE(FlushAll());
  // The write was acked but never hit disk and no replica existed.
  EXPECT_FALSE(std::equal(data.begin(), data.end(), backing_->raw().begin()))
      << "replication=1 cannot survive an owner failure";
}

TEST_F(ClusterTest, SurvivesNMinusOneFailures) {
  CacheCluster::Config config;
  config.replication = 3;
  config.flush_delay_ns = 500 * util::kNsPerMs;
  Build(5, config);
  backing_->set_latency(200 * util::kNsPerMs);
  const auto data = Pattern(64 * 1024, 16);
  bool acked = false;
  cluster_->Write(2, kVol, 0, data, [&](bool ok) { acked = ok; });
  engine_.RunFor(20 * util::kNsPerMs);
  ASSERT_TRUE(acked);
  // Kill the owner and one replica holder (N-1 = 2 failures).
  cluster_->FailController(2);
  cluster_->FailController(3);
  cluster_->Recover();
  backing_->set_latency(0);
  ASSERT_TRUE(FlushAll());
  auto [ok, got] = Read(0, 0, 64 * 1024);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(ClusterTest, EvictionWritesBackAndDataRemainsCorrect) {
  CacheCluster::Config config;
  config.node_capacity_pages = 8;  // tiny caches force constant eviction
  Build(2, config);
  // Write 64 pages (4 MiB), far beyond the 16-page pooled capacity.
  for (std::uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(Write(p % 2, p * 64 * 1024, Pattern(64 * 1024, 100 + p)));
  }
  ASSERT_TRUE(FlushAll());
  EXPECT_GT(cluster_->Totals().evictions, 0u);
  for (std::uint64_t p = 0; p < 64; ++p) {
    auto [ok, got] = Read((p + 1) % 2, p * 64 * 1024, 64 * 1024);
    ASSERT_TRUE(ok) << "page " << p;
    EXPECT_TRUE(util::CheckPattern(got, 100 + p)) << "page " << p;
  }
}

TEST_F(ClusterTest, PooledCacheExceedsSingleNodeCapacity) {
  CacheCluster::Config config;
  config.node_capacity_pages = 8;
  Build(4, config);
  // Read 24 distinct pages through different controllers: the pool (32
  // pages) holds them even though one node (8 pages) could not.
  for (std::uint64_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(Write(p % 4, p * 64 * 1024, Pattern(64 * 1024, p)));
  }
  ASSERT_TRUE(FlushAll());
  EXPECT_GT(cluster_->CachedPages(), config.node_capacity_pages);
  const auto before = backing_->reads();
  for (std::uint64_t p = 0; p < 24; ++p) {
    auto [ok, got] = Read(p % 4, p * 64 * 1024, 1024);
    ASSERT_TRUE(ok);
  }
  EXPECT_EQ(backing_->reads(), before)
      << "the whole working set fits in the pooled cache";
}

TEST_F(ClusterTest, RandomizedCoherenceAgainstFlatModel) {
  CacheCluster::Config config;
  config.node_capacity_pages = 16;
  Build(4, config);
  util::Rng rng(777);
  const std::uint64_t span = 48 * 64 * 1024;  // 48 pages, > pool capacity
  util::Bytes model(span, 0);
  for (int op = 0; op < 300; ++op) {
    const ControllerId via = static_cast<ControllerId>(rng.Below(4));
    const std::uint64_t off = rng.Below(span - 1);
    const std::uint32_t len = static_cast<std::uint32_t>(
        rng.Range(1, std::min<std::uint64_t>(span - off, 200000)));
    if (rng.Chance(0.5)) {
      util::Bytes data(len);
      util::FillPattern(data, rng.Next());
      ASSERT_TRUE(Write(via, off, data)) << "op " << op;
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
    } else {
      auto [ok, got] = Read(via, off, len);
      ASSERT_TRUE(ok) << "op " << op;
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             model.begin() + static_cast<std::ptrdiff_t>(off)))
          << "coherence violation at op " << op << " off " << off;
    }
  }
  ASSERT_TRUE(FlushAll());
  EXPECT_TRUE(std::equal(model.begin(), model.end(), backing_->raw().begin()));
}

TEST_F(ClusterTest, ConcurrentMixedOpsEventuallyConsistent) {
  // Issue overlapping reads/writes without draining the engine in between:
  // exercises directory-entry queueing.  This input is DELIBERATELY racy —
  // four unrelated hosts write the same page concurrently, so which write
  // wins is a function of queue order.  Pin a non-aborting race detector:
  // the raciness is the fixture, and the detector seeing it through the
  // full stack is part of what this test asserts.  The oracle below checks
  // coherence (all controllers agree), which holds in ANY order.
  Build(4);
  check::RaceDetector det;
  det.set_report_violations(false);
  engine_.AttachRaceDetector(&det);
  const std::uint32_t page = 64 * 1024;
  for (int round = 0; round < 10; ++round) {
    for (ControllerId c = 0; c < 4; ++c) {
      cluster_->Write(c, kVol, 0,
                      Pattern(page, 1000 + round * 4 + c), [](bool) {});
      cluster_->Read(c, kVol, 0, page, [](bool, util::Bytes) {});
    }
  }
  engine_.Run();
#if NLSS_INVARIANTS_ENABLED
  EXPECT_FALSE(det.conflicts().empty())
      << "unrelated same-page writes must be visible to the race detector";
#endif
  engine_.AttachRaceDetector(nullptr);  // flush/readback below is race-free
  ASSERT_TRUE(FlushAll());
  // Directory serialization means the last-acquired write wins; all
  // controllers must agree on whatever that was.
  auto [ok0, got0] = Read(0, 0, page);
  ASSERT_TRUE(ok0);
  for (ControllerId c = 1; c < 4; ++c) {
    auto [ok, got] = Read(c, 0, page);
    ASSERT_TRUE(ok);
    EXPECT_EQ(got, got0);
  }
}

TEST_F(ClusterTest, ReplicationClampsToLiveControllers) {
  CacheCluster::Config config;
  config.replication = 8;  // more than the cluster size
  Build(3, config);
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 20))) << "must clamp, not hang";
}

TEST_F(ClusterTest, FailedControllerRejectsIo) {
  Build(3);
  cluster_->FailController(1);
  cluster_->Recover();
  bool ok = true;
  cluster_->Write(1, kVol, 0, Pattern(1024, 1), [&](bool r) { ok = r; });
  engine_.Run();
  EXPECT_FALSE(ok);
  // Other controllers still work.
  EXPECT_TRUE(Write(0, 0, Pattern(1024, 2)));
}

TEST_F(ClusterTest, RetentionPriorityOverridesLru) {
  // Paper §4: per-file metadata can "override cache retention priorities".
  CacheCluster::Config config;
  config.node_capacity_pages = 4;
  Build(1, config);
  // Write a high-priority page first (it becomes the LRU candidate)...
  bool ok = false;
  cluster_->Write(0, kVol, 0, Pattern(64 * 1024, 1),
                  [&](bool r) { ok = r; }, /*priority=*/5);
  engine_.Run();
  ASSERT_TRUE(ok);
  ASSERT_TRUE(FlushAll());
  // ...then stream enough priority-0 pages to force evictions.
  for (std::uint64_t p = 1; p <= 12; ++p) {
    Read(0, p * 64 * 1024, 1024);
  }
  // The high-priority page must still be resident: reading it causes no
  // new backing read.
  const auto before = backing_->reads();
  auto [ok2, got] = Read(0, 0, 1024);
  ASSERT_TRUE(ok2);
  EXPECT_EQ(backing_->reads(), before)
      << "high-priority page must survive LRU pressure";
  EXPECT_GT(cluster_->Totals().evictions, 0u);
}

TEST_F(ClusterTest, PriorityRaisedByLaterAccess) {
  CacheCluster::Config config;
  config.node_capacity_pages = 4;
  Build(1, config);
  // Install at priority 0, then read at priority 3: max wins.
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 1)));
  ASSERT_TRUE(FlushAll());
  bool ok = false;
  cluster_->Read(0, kVol, 0, 1024,
                 [&](bool r, util::Bytes) { ok = r; }, /*priority=*/3);
  engine_.Run();
  ASSERT_TRUE(ok);
  const CacheNode::Frame* f = cluster_->node(0).Find(PageKey{kVol, 0});
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->priority, 3);
}

TEST_F(ClusterTest, HotPageStaysCachedUnderLru) {
  CacheCluster::Config config;
  config.node_capacity_pages = 4;
  Build(1, config);
  ASSERT_TRUE(Write(0, 0, Pattern(64 * 1024, 30)));
  ASSERT_TRUE(FlushAll());
  const auto before = backing_->reads();
  // Touch the hot page between streams of cold pages.
  for (std::uint64_t p = 1; p < 20; ++p) {
    Read(0, p * 64 * 1024, 1024);
    Read(0, 0, 1024);  // keep page 0 hot
  }
  const auto cold_reads = backing_->reads() - before;
  // Page 0 must never have been refetched: every cold page missed once.
  EXPECT_EQ(cold_reads, 19u);
}

}  // namespace
}  // namespace nlss::cache
