#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "disk/disk.h"
#include "raid/group.h"
#include "raid/rebuild.h"
#include "sim/engine.h"
#include "util/bytes.h"

namespace nlss::raid {
namespace {

class RebuildTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kWidth = 5;

  void SetUp() override {
    profile_.capacity_blocks = 2048;
    farm_ = std::make_unique<disk::DiskFarm>(engine_, profile_, kWidth);
    std::vector<disk::Disk*> disks;
    for (std::size_t i = 0; i < farm_->size(); ++i) {
      disks.push_back(&farm_->at(i));
    }
    RaidGroup::Config config;
    config.level = RaidLevel::kRaid5;
    config.unit_blocks = 8;
    group_ = std::make_unique<RaidGroup>(engine_, std::move(disks), config);

    // Seed data across the whole group.
    data_.resize(group_->DataCapacityBlocks() * 4096ull);
    util::FillPattern(data_, 2024);
    bool ok = false;
    group_->WriteBlocks(0, data_, [&](bool r) { ok = r; });
    engine_.Run();
    ASSERT_TRUE(ok);
  }

  void FailAndReplace(std::uint32_t disk) {
    group_->disk(disk).Fail();
    group_->RefreshMemberStates();
    group_->disk(disk).Replace();
  }

  bool VerifyAllData() {
    bool ok = false;
    util::Bytes got;
    group_->ReadBlocks(0, static_cast<std::uint32_t>(group_->DataCapacityBlocks()),
                       [&](bool r, util::Bytes b) {
                         ok = r;
                         got = std::move(b);
                       });
    engine_.Run();
    return ok && got == data_;
  }

  sim::Engine engine_;
  disk::DiskProfile profile_;
  std::unique_ptr<disk::DiskFarm> farm_;
  std::unique_ptr<RaidGroup> group_;
  util::Bytes data_;
};

TEST_F(RebuildTest, SingleWorkerRebuildCompletes) {
  FailAndReplace(2);
  RebuildEngine rebuild(engine_);
  rebuild.AddWorker(nullptr);
  bool done = false, ok = false;
  rebuild.Rebuild(*group_, 2, [&](bool r) {
    done = true;
    ok = r;
  });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(group_->member_state(2), RaidGroup::MemberState::kLive);
  EXPECT_TRUE(VerifyAllData());
}

TEST_F(RebuildTest, RebuiltDiskSurvivesSubsequentFailure) {
  FailAndReplace(0);
  RebuildEngine rebuild(engine_);
  rebuild.AddWorker(nullptr);
  bool ok = false;
  rebuild.Rebuild(*group_, 0, [&](bool r) { ok = r; });
  engine_.Run();
  ASSERT_TRUE(ok);
  // Kill another disk: redundancy must have been fully restored.
  group_->disk(4).Fail();
  EXPECT_TRUE(VerifyAllData());
}

TEST_F(RebuildTest, WorkDistributesAcrossWorkers) {
  FailAndReplace(1);
  RebuildEngine rebuild(engine_, RebuildConfig{.chunk_stripes = 16,
                                               .xor_ns_per_byte = 0.5});
  std::vector<sim::Resource> computes;
  computes.reserve(4);
  for (int i = 0; i < 4; ++i) computes.emplace_back(engine_);
  for (int i = 0; i < 4; ++i) rebuild.AddWorker(&computes[i]);
  bool ok = false;
  rebuild.Rebuild(*group_, 1, [&](bool r) { ok = r; });
  engine_.Run();
  ASSERT_TRUE(ok);
  const auto chunks = rebuild.ChunksByWorker();
  const std::uint64_t total =
      std::accumulate(chunks.begin(), chunks.end(), std::uint64_t{0});
  EXPECT_EQ(total, group_->StripeCount() / 16);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(chunks[i], 0u) << "worker " << i << " did no rebuild work";
  }
  EXPECT_TRUE(VerifyAllData());
}

TEST_F(RebuildTest, WorkerFailureMidRebuildContinuesOnOthers) {
  FailAndReplace(3);
  RebuildEngine rebuild(engine_, RebuildConfig{.chunk_stripes = 8,
                                               .xor_ns_per_byte = 0.5});
  sim::Resource c0(engine_), c1(engine_);
  const int w0 = rebuild.AddWorker(&c0);
  rebuild.AddWorker(&c1);
  bool done = false, ok = false;
  rebuild.Rebuild(*group_, 3, [&](bool r) {
    done = true;
    ok = r;
  });
  // Let the rebuild get partway, then kill worker 0.
  engine_.RunFor(50 * util::kNsPerMs);
  EXPECT_FALSE(done);
  rebuild.SetWorkerAlive(w0, false);
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(VerifyAllData());
  // The dead worker must not have completed everything.
  const auto chunks = rebuild.ChunksByWorker();
  EXPECT_GT(chunks[1], 0u);
}

TEST_F(RebuildTest, AllWorkersDeadPausesUntilRevival) {
  FailAndReplace(2);
  RebuildEngine rebuild(engine_, RebuildConfig{.chunk_stripes = 8});
  sim::Resource c0(engine_);
  const int w0 = rebuild.AddWorker(&c0);
  bool done = false;
  rebuild.Rebuild(*group_, 2, [&](bool) { done = true; });
  engine_.RunFor(10 * util::kNsPerMs);
  rebuild.SetWorkerAlive(w0, false);
  engine_.Run();
  EXPECT_FALSE(done) << "rebuild cannot finish with no live workers";
  rebuild.SetWorkerAlive(w0, true);
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(VerifyAllData());
}

// The paper's distribution claim is about spreading rebuild load across the
// cluster: with several groups rebuilding at once, more controller workers
// finish the whole batch faster.  (Within a *single* group, extra workers
// mostly add disk seek thrash — the member disks are the bottleneck.)
TEST(RebuildScaling, MoreWorkersFinishMultipleGroupsFaster) {
  auto run_with_workers = [](int n_workers) -> sim::Tick {
    sim::Engine engine;
    disk::DiskProfile profile;
    profile.capacity_blocks = 2048;
    constexpr int kGroups = 4;
    std::vector<std::unique_ptr<disk::DiskFarm>> farms;
    std::vector<std::unique_ptr<RaidGroup>> groups;
    for (int g = 0; g < kGroups; ++g) {
      farms.push_back(std::make_unique<disk::DiskFarm>(engine, profile, 5));
      std::vector<disk::Disk*> disks;
      for (std::size_t i = 0; i < farms[g]->size(); ++i) {
        disks.push_back(&farms[g]->at(i));
      }
      RaidGroup::Config config;
      config.level = RaidLevel::kRaid5;
      config.unit_blocks = 8;
      groups.push_back(
          std::make_unique<RaidGroup>(engine, std::move(disks), config));
      util::Bytes data(groups[g]->DataCapacityBlocks() * 4096ull);
      util::FillPattern(data, g);
      bool ok = false;
      groups[g]->WriteBlocks(0, data, [&](bool r) { ok = r; });
      engine.Run();
      EXPECT_TRUE(ok);
      groups[g]->disk(0).Fail();
      groups[g]->RefreshMemberStates();
      groups[g]->disk(0).Replace();
    }
    const sim::Tick start = engine.now();
    RebuildEngine rebuild(engine, RebuildConfig{.chunk_stripes = 8,
                                                .xor_ns_per_byte = 2.0});
    std::vector<std::unique_ptr<sim::Resource>> computes;
    for (int i = 0; i < n_workers; ++i) {
      computes.push_back(std::make_unique<sim::Resource>(engine));
      rebuild.AddWorker(computes.back().get());
    }
    int done = 0;
    for (int g = 0; g < kGroups; ++g) {
      rebuild.Rebuild(*groups[g], 0, [&](bool ok) { done += ok ? 1 : 0; });
    }
    engine.Run();
    EXPECT_EQ(done, kGroups);
    return engine.now() - start;
  };
  const sim::Tick t1 = run_with_workers(1);
  const sim::Tick t4 = run_with_workers(4);
  EXPECT_LT(t4, t1) << "distributed rebuild across groups must be faster";
  EXPECT_LT(static_cast<double>(t4), 0.6 * static_cast<double>(t1));
}

TEST_F(RebuildTest, ConcurrentJobsShareWorkers) {
  // Build a second group and rebuild both at once.
  disk::DiskFarm farm2(engine_, profile_, kWidth);
  std::vector<disk::Disk*> disks2;
  for (std::size_t i = 0; i < farm2.size(); ++i) disks2.push_back(&farm2.at(i));
  RaidGroup::Config config;
  config.level = RaidLevel::kRaid5;
  config.unit_blocks = 8;
  RaidGroup group2(engine_, std::move(disks2), config);
  util::Bytes d2(group2.DataCapacityBlocks() * 4096ull);
  util::FillPattern(d2, 5);
  bool seeded = false;
  group2.WriteBlocks(0, d2, [&](bool r) { seeded = r; });
  engine_.Run();
  ASSERT_TRUE(seeded);

  FailAndReplace(1);
  group2.disk(2).Fail();
  group2.RefreshMemberStates();
  group2.disk(2).Replace();

  RebuildEngine rebuild(engine_, RebuildConfig{.chunk_stripes = 16});
  sim::Resource c0(engine_), c1(engine_);
  rebuild.AddWorker(&c0);
  rebuild.AddWorker(&c1);
  int done = 0;
  rebuild.Rebuild(*group_, 1, [&](bool ok) { done += ok ? 1 : 0; });
  rebuild.Rebuild(group2, 2, [&](bool ok) { done += ok ? 1 : 0; });
  EXPECT_EQ(rebuild.ActiveJobs(), 2u);
  engine_.Run();
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(VerifyAllData());
}

}  // namespace
}  // namespace nlss::raid
