#include <gtest/gtest.h>

#include <memory>

#include "fs/filesystem.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace nlss::fs {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller::SystemConfig config;
    config.disk_profile.capacity_blocks = 16 * 1024;
    fabric_ = std::make_unique<net::Fabric>(engine_);
    system_ = std::make_unique<controller::StorageSystem>(engine_, *fabric_,
                                                          config);
    fs_ = std::make_unique<FileSystem>(*system_);
  }

  Status Write(const std::string& path, std::uint64_t off,
               const util::Bytes& data) {
    Status st = Status::kIoError;
    fs_->Write(path, off, data, [&](Status s) { st = s; });
    engine_.Run();
    return st;
  }

  std::pair<Status, util::Bytes> Read(const std::string& path,
                                      std::uint64_t off, std::uint64_t len) {
    Status st = Status::kIoError;
    util::Bytes out;
    fs_->Read(path, off, len, [&](Status s, util::Bytes d) {
      st = s;
      out = std::move(d);
    });
    engine_.Run();
    return {st, std::move(out)};
  }

  util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
    util::Bytes b(n);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<controller::StorageSystem> system_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(FsTest, CreateWriteReadRoundtrip) {
  ASSERT_EQ(fs_->Create("/data.bin"), Status::kOk);
  const auto data = Pattern(3 * util::MiB + 12345, 1);
  ASSERT_EQ(Write("/data.bin", 0, data), Status::kOk);
  auto [st, got] = Read("/data.bin", 0, data.size());
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(got, data);
  EXPECT_EQ(fs_->Stat("/data.bin")->size, data.size());
}

TEST_F(FsTest, DirectoryTreeOperations) {
  EXPECT_EQ(fs_->Mkdir("/projects"), Status::kOk);
  EXPECT_EQ(fs_->Mkdir("/projects/fusion"), Status::kOk);
  EXPECT_EQ(fs_->Create("/projects/fusion/run1.dat"), Status::kOk);
  EXPECT_EQ(fs_->Create("/projects/fusion/run2.dat"), Status::kOk);
  EXPECT_TRUE(fs_->Exists("/projects/fusion/run1.dat"));
  const auto names = fs_->List("/projects/fusion");
  EXPECT_EQ(names.size(), 2u);
  EXPECT_EQ(fs_->Mkdir("/projects"), Status::kExists);
  EXPECT_EQ(fs_->Create("/missing/x"), Status::kNotFound);
  EXPECT_EQ(fs_->Rmdir("/projects/fusion"), Status::kNotEmpty);
  EXPECT_EQ(fs_->Unlink("/projects/fusion/run1.dat"), Status::kOk);
  EXPECT_EQ(fs_->Unlink("/projects/fusion/run2.dat"), Status::kOk);
  EXPECT_EQ(fs_->Rmdir("/projects/fusion"), Status::kOk);
  EXPECT_FALSE(fs_->Exists("/projects/fusion"));
}

TEST_F(FsTest, RenameMovesFiles) {
  ASSERT_EQ(fs_->Mkdir("/a"), Status::kOk);
  ASSERT_EQ(fs_->Mkdir("/b"), Status::kOk);
  ASSERT_EQ(fs_->Create("/a/f"), Status::kOk);
  const auto data = Pattern(100000, 2);
  ASSERT_EQ(Write("/a/f", 0, data), Status::kOk);
  ASSERT_EQ(fs_->Rename("/a/f", "/b/g"), Status::kOk);
  EXPECT_FALSE(fs_->Exists("/a/f"));
  auto [st, got] = Read("/b/g", 0, data.size());
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(got, data);
}

TEST_F(FsTest, SparseWriteAndShortRead) {
  ASSERT_EQ(fs_->Create("/sparse"), Status::kOk);
  const auto data = Pattern(1000, 3);
  ASSERT_EQ(Write("/sparse", 5 * util::MiB, data), Status::kOk);
  EXPECT_EQ(fs_->Stat("/sparse")->size, 5 * util::MiB + 1000);
  // A hole reads back as zeros.
  auto [st, hole] = Read("/sparse", 1 * util::MiB, 1000);
  ASSERT_EQ(st, Status::kOk);
  for (auto b : hole) EXPECT_EQ(b, 0);
  // Reading past EOF truncates.
  auto [st2, tail] = Read("/sparse", 5 * util::MiB, 100000);
  ASSERT_EQ(st2, Status::kOk);
  EXPECT_EQ(tail.size(), 1000u);
  EXPECT_EQ(tail, data);
}

TEST_F(FsTest, OverwriteInMiddle) {
  ASSERT_EQ(fs_->Create("/f"), Status::kOk);
  const auto base = Pattern(2 * util::MiB, 4);
  ASSERT_EQ(Write("/f", 0, base), Status::kOk);
  const auto patch = Pattern(333, 5);
  ASSERT_EQ(Write("/f", 1 * util::MiB - 100, patch), Status::kOk);
  auto [st, got] = Read("/f", 0, base.size());
  ASSERT_EQ(st, Status::kOk);
  util::Bytes expect = base;
  std::copy(patch.begin(), patch.end(),
            expect.begin() + util::MiB - 100);
  EXPECT_EQ(got, expect);
}

TEST_F(FsTest, TruncateShrinksAndFreesChunks) {
  ASSERT_EQ(fs_->Create("/big"), Status::kOk);
  ASSERT_EQ(Write("/big", 0, Pattern(4 * util::MiB, 6)), Status::kOk);
  const auto chunks_before = fs_->AllocatedChunks();
  Status st = Status::kIoError;
  fs_->Truncate("/big", 1 * util::MiB, [&](Status s) { st = s; });
  engine_.Run();
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(fs_->Stat("/big")->size, 1 * util::MiB);
  EXPECT_LT(fs_->AllocatedChunks(), chunks_before);
}

TEST_F(FsTest, UnlinkReleasesPhysicalSpace) {
  ASSERT_EQ(fs_->Create("/tmp1"), Status::kOk);
  ASSERT_EQ(Write("/tmp1", 0, Pattern(8 * util::MiB, 7)), Status::kOk);
  bool flushed = false;
  system_->cache().FlushAll([&](bool) { flushed = true; });
  engine_.Run();
  ASSERT_TRUE(flushed);
  const auto allocated_before = system_->pool().AllocatedExtents();
  ASSERT_EQ(fs_->Unlink("/tmp1"), Status::kOk);
  engine_.Run();  // let the trims run
  EXPECT_LT(system_->pool().AllocatedExtents(), allocated_before);
}

TEST_F(FsTest, PerFilePolicies) {
  FilePolicy critical;
  critical.cache_replication = 3;
  critical.geo_replicate = true;
  critical.geo_sync = true;
  ASSERT_EQ(fs_->Create("/critical.db", critical), Status::kOk);
  FilePolicy scratch;
  scratch.cache_replication = 1;
  ASSERT_EQ(fs_->Create("/scratch.tmp", scratch), Status::kOk);

  EXPECT_EQ(fs_->Stat("/critical.db")->policy.cache_replication, 3u);
  EXPECT_TRUE(fs_->Stat("/critical.db")->policy.geo_sync);
  EXPECT_EQ(fs_->Stat("/scratch.tmp")->policy.cache_replication, 1u);

  // Policies are dynamic (paper: "dynamically set on a file by file basis").
  FilePolicy upgraded = scratch;
  upgraded.cache_replication = 2;
  ASSERT_EQ(fs_->SetPolicy("/scratch.tmp", upgraded), Status::kOk);
  EXPECT_EQ(fs_->Stat("/scratch.tmp")->policy.cache_replication, 2u);
}

TEST_F(FsTest, MetadataSerializationRoundtrip) {
  ASSERT_EQ(fs_->Mkdir("/d"), Status::kOk);
  FilePolicy p;
  p.cache_replication = 3;
  p.geo_replicate = true;
  p.geo_sites = 3;
  p.raid_override = raid::RaidLevel::kRaid6;
  ASSERT_EQ(fs_->Create("/d/f", p), Status::kOk);
  const auto data = Pattern(100000, 8);
  ASSERT_EQ(Write("/d/f", 0, data), Status::kOk);

  const util::Bytes blob = fs_->SerializeMetadata();
  // Wipe the namespace by loading into a fresh FS bound to the same system
  // volume contents (same volume id ordering).
  ASSERT_EQ(fs_->LoadMetadata(blob), Status::kOk);
  ASSERT_TRUE(fs_->Exists("/d/f"));
  const Inode* inode = fs_->Stat("/d/f");
  EXPECT_EQ(inode->size, data.size());
  EXPECT_EQ(inode->policy.cache_replication, 3u);
  EXPECT_TRUE(inode->policy.geo_replicate);
  ASSERT_TRUE(inode->policy.raid_override.has_value());
  EXPECT_EQ(*inode->policy.raid_override, raid::RaidLevel::kRaid6);
  auto [st, got] = Read("/d/f", 0, data.size());
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(got, data);
}

TEST_F(FsTest, LoadRejectsGarbage) {
  const util::Bytes junk = Pattern(64, 1);
  EXPECT_EQ(fs_->LoadMetadata(junk), Status::kInvalidArgument);
  // FS still usable.
  EXPECT_EQ(fs_->Create("/ok"), Status::kOk);
}

TEST_F(FsTest, ForEachFileWalksTree) {
  ASSERT_EQ(fs_->Mkdir("/x"), Status::kOk);
  ASSERT_EQ(fs_->Mkdir("/x/y"), Status::kOk);
  ASSERT_EQ(fs_->Create("/x/a"), Status::kOk);
  ASSERT_EQ(fs_->Create("/x/y/b"), Status::kOk);
  ASSERT_EQ(fs_->Create("/c"), Status::kOk);
  std::vector<std::string> paths;
  fs_->ForEachFile([&](const std::string& path, const Inode&) {
    paths.push_back(path);
  });
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths, (std::vector<std::string>{"/c", "/x/a", "/x/y/b"}));
}

TEST_F(FsTest, QuotaBlocksGrowthButAllowsReuse) {
  FileSystem::Config config;
  config.quota_bytes = 4 * util::MiB;  // 4 chunks
  FileSystem fs(*system_, config);
  ASSERT_EQ(fs.Create("/a"), Status::kOk);
  Status st = Status::kIoError;
  fs.Write("/a", 0, Pattern(3 * util::MiB, 1), [&](Status s) { st = s; });
  engine_.Run();
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(fs.UsedBytes(), 3 * util::MiB);
  // A write that would exceed the quota fails cleanly.
  fs.Write("/a", 3 * util::MiB, Pattern(2 * util::MiB, 2),
           [&](Status s) { st = s; });
  engine_.Run();
  EXPECT_EQ(st, Status::kNoSpace);
  // Overwrites within allocated space still work.
  fs.Write("/a", 0, Pattern(util::MiB, 3), [&](Status s) { st = s; });
  engine_.Run();
  EXPECT_EQ(st, Status::kOk);
  // Deleting frees quota for others.
  ASSERT_EQ(fs.Unlink("/a"), Status::kOk);
  ASSERT_EQ(fs.Create("/b"), Status::kOk);
  fs.Write("/b", 0, Pattern(4 * util::MiB, 4), [&](Status s) { st = s; });
  engine_.Run();
  EXPECT_EQ(st, Status::kOk);
  // Quota can be raised online.
  fs.SetQuota(8 * util::MiB);
  fs.Write("/b", 4 * util::MiB, Pattern(2 * util::MiB, 5),
           [&](Status s) { st = s; });
  engine_.Run();
  EXPECT_EQ(st, Status::kOk);
}

TEST_F(FsTest, RandomizedFileContentsMatchModel) {
  ASSERT_EQ(fs_->Create("/rand"), Status::kOk);
  util::Rng rng(55);
  const std::uint64_t span = 4 * util::MiB;
  util::Bytes model(span, 0);
  std::uint64_t model_size = 0;
  for (int op = 0; op < 40; ++op) {
    const std::uint64_t off = rng.Below(span - 1);
    const std::uint64_t len =
        rng.Range(1, std::min<std::uint64_t>(span - off, 500000));
    if (rng.Chance(0.6)) {
      util::Bytes data(len);
      util::FillPattern(data, rng.Next());
      ASSERT_EQ(Write("/rand", off, data), Status::kOk);
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
      model_size = std::max(model_size, off + len);
    } else {
      auto [st, got] = Read("/rand", off, len);
      ASSERT_EQ(st, Status::kOk);
      const std::uint64_t expect_len =
          off >= model_size ? 0 : std::min(len, model_size - off);
      ASSERT_EQ(got.size(), expect_len);
      EXPECT_TRUE(std::equal(got.begin(), got.end(),
                             model.begin() + static_cast<std::ptrdiff_t>(off)))
          << "op " << op;
    }
  }
}

}  // namespace
}  // namespace nlss::fs
