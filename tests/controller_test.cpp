#include <gtest/gtest.h>

#include <memory>

#include "controller/highspeed.h"
#include "controller/system.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"

namespace nlss::controller {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  void Build(SystemConfig config = {}) {
    // Small disks keep rebuild-related tests fast.
    config.disk_profile.capacity_blocks = 16 * 1024;  // 64 MiB per disk
    fabric_ = std::make_unique<net::Fabric>(engine_);
    system_ = std::make_unique<StorageSystem>(engine_, *fabric_, config);
    host_ = system_->AttachHost("host0");
  }

  bool Write(VolumeId vol, std::uint64_t off, const util::Bytes& data) {
    bool ok = false, fired = false;
    system_->Write(host_, vol, off, data, [&](bool r) {
      ok = r;
      fired = true;
    });
    engine_.Run();
    EXPECT_TRUE(fired);
    return ok;
  }

  std::pair<bool, util::Bytes> Read(VolumeId vol, std::uint64_t off,
                                    std::uint32_t len) {
    bool ok = false;
    util::Bytes out;
    system_->Read(host_, vol, off, len, [&](bool r, util::Bytes d) {
      ok = r;
      out = std::move(d);
    });
    engine_.Run();
    return {ok, std::move(out)};
  }

  util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
    util::Bytes b(n);
    util::FillPattern(b, seed);
    return b;
  }

  sim::Engine engine_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<StorageSystem> system_;
  net::NodeId host_ = net::kInvalidNode;
};

TEST_F(SystemTest, EndToEndRoundtrip) {
  Build();
  const VolumeId vol = system_->CreateVolume("physics", 64 * util::MiB);
  const auto data = Pattern(1 * util::MiB, 1);
  ASSERT_TRUE(Write(vol, 12345, data));
  auto [ok, got] = Read(vol, 12345, 1 * util::MiB);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(SystemTest, MultipleVolumesIsolated) {
  Build();
  const VolumeId a = system_->CreateVolume("physics", 16 * util::MiB);
  const VolumeId b = system_->CreateVolume("biology", 16 * util::MiB);
  ASSERT_TRUE(Write(a, 0, Pattern(100000, 1)));
  ASSERT_TRUE(Write(b, 0, Pattern(100000, 2)));
  auto [ok_a, got_a] = Read(a, 0, 100000);
  auto [ok_b, got_b] = Read(b, 0, 100000);
  ASSERT_TRUE(ok_a && ok_b);
  EXPECT_TRUE(util::CheckPattern(got_a, 1));
  EXPECT_TRUE(util::CheckPattern(got_b, 2));
}

TEST_F(SystemTest, RoundRobinSpreadsLoad) {
  SystemConfig config;
  config.controllers = 4;
  Build(config);
  const VolumeId vol = system_->CreateVolume("t", 64 * util::MiB);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(Write(vol, i * 64 * util::KiB, Pattern(64 * util::KiB, i)));
  }
  std::uint64_t min_ops = ~0ull, max_ops = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const auto ops = system_->cache().stats(c).ops;
    min_ops = std::min(min_ops, ops);
    max_ops = std::max(max_ops, ops);
  }
  EXPECT_GT(min_ops, 0u);
  EXPECT_LE(max_ops, min_ops + 12) << "round robin must spread entry load";
}

TEST_F(SystemTest, StaticBalancingConcentratesLoad) {
  SystemConfig config;
  config.controllers = 4;
  config.balancing = Balancing::kStaticByVolume;
  Build(config);
  const VolumeId vol = system_->CreateVolume("t", 64 * util::MiB);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(Write(vol, i * 64 * util::KiB, Pattern(64 * util::KiB, i)));
  }
  // All entry ops land on the volume's owner blade.
  int with_ops = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    if (system_->cache().stats(c).ops > 0) ++with_ops;
  }
  EXPECT_EQ(with_ops, 1);
}

TEST_F(SystemTest, SurvivesControllerFailure) {
  SystemConfig config;
  config.controllers = 4;
  config.cache.replication = 2;
  Build(config);
  const VolumeId vol = system_->CreateVolume("t", 32 * util::MiB);
  const auto data = Pattern(256 * util::KiB, 5);
  ASSERT_TRUE(Write(vol, 0, data));
  system_->FailController(1);
  system_->RecoverCluster();
  auto [ok, got] = Read(vol, 0, 256 * util::KiB);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(SystemTest, DiskFailureTransparentAndRebuilds) {
  Build();
  const VolumeId vol = system_->CreateVolume("t", 32 * util::MiB);
  const auto data = Pattern(2 * util::MiB, 7);
  ASSERT_TRUE(Write(vol, 0, data));

  bool rebuilt = false;
  system_->FailAndRebuildDisk(0, 2, [&](bool ok) { rebuilt = ok; });
  // Reads continue during the rebuild.
  auto [ok, got] = Read(vol, 0, 2 * util::MiB);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
  engine_.Run();
  EXPECT_TRUE(rebuilt);
}

TEST_F(SystemTest, WritePolicyReplicationOverride) {
  SystemConfig config;
  config.cache.replication = 2;
  config.cache.flush_delay_ns = 500 * util::kNsPerMs;
  Build(config);
  const VolumeId vol = system_->CreateVolume("t", 32 * util::MiB);
  // Critical file: 3-way; scratch file: 1-way (no copies).
  bool ok = false;
  system_->WriteReplicated(host_, vol, 0, Pattern(64 * util::KiB, 1), 3,
                           [&](bool r) { ok = r; });
  // Run past the ack but not past the delayed write-back flush.
  engine_.RunFor(100 * util::kNsPerMs);
  ASSERT_TRUE(ok);
  std::size_t replicas = 0;
  for (std::uint32_t c = 0; c < system_->controller_count(); ++c) {
    system_->cache().node(c).ForEach(
        [&](const cache::PageKey&, const cache::CacheNode::Frame& f) {
          if (f.is_replica) ++replicas;
        });
  }
  EXPECT_EQ(replicas, 2u);
}

TEST_F(SystemTest, ChargebackIntegration) {
  Build();
  const VolumeId vol = system_->CreateVolume("physics", 64 * util::MiB);
  (void)vol;
  system_->chargeback().Sample();
  ASSERT_TRUE(Write(vol, 0, Pattern(4 * util::MiB, 1)));
  bool flushed = false;
  system_->cache().FlushAll([&](bool) { flushed = true; });
  engine_.Run();
  ASSERT_TRUE(flushed);
  engine_.RunFor(util::kNsPerSec);
  system_->chargeback().Sample();
  EXPECT_GT(system_->chargeback().ByteSeconds("physics"), 0.0);
}

TEST_F(SystemTest, HighSpeedPortStreamsInOrderAtFullRate) {
  SystemConfig config;
  config.controllers = 4;
  config.cache.node_capacity_pages = 4096;
  Build(config);
  const VolumeId vol = system_->CreateVolume("media", 128 * util::MiB);
  // Preload 32 MiB so the stream reads from cache (tests the port path,
  // not the disks).
  const std::uint64_t len = 32 * util::MiB;
  for (std::uint64_t off = 0; off < len; off += 4 * util::MiB) {
    ASSERT_TRUE(Write(vol, off, Pattern(4 * util::MiB, off)));
  }

  HighSpeedPort::Config pc;
  HighSpeedPort port(*system_, {0, 1, 2, 3}, pc);
  HighSpeedPort::StreamResult result;
  bool fired = false;
  port.Stream(vol, 0, len, [&](HighSpeedPort::StreamResult r) {
    result = r;
    fired = true;
  });
  engine_.Run();
  ASSERT_TRUE(fired);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, len);
  // Egress is 10 GbE; with 4 cached blades the stream should come close.
  EXPECT_GT(result.Gbps(), 7.0);
  EXPECT_LE(result.Gbps(), 10.5);
}

TEST_F(SystemTest, HighSpeedPortSingleBladeIsSlower) {
  SystemConfig config;
  config.controllers = 4;
  config.cache.node_capacity_pages = 4096;
  // Enable the FC feed model: ~4 Gb/s per blade.
  config.cache.fc_ns_per_byte = 1.0 / util::GbpsToBytesPerNs(4.0);
  Build(config);
  const VolumeId vol = system_->CreateVolume("media", 64 * util::MiB);
  const std::uint64_t len = 8 * util::MiB;
  ASSERT_TRUE(Write(vol, 0, Pattern(len, 3)));
  bool flushed = false;
  system_->cache().FlushAll([&](bool) { flushed = true; });
  engine_.Run();
  ASSERT_TRUE(flushed);

  auto run_stream = [&](std::vector<cache::ControllerId> blades) {
    HighSpeedPort port(*system_, blades, {});
    HighSpeedPort::StreamResult result;
    port.Stream(vol, 0, len, [&](HighSpeedPort::StreamResult r) {
      result = r;
    });
    engine_.Run();
    return result;
  };
  // Note: after the first stream the data is cache-resident, so use cold
  // volumes per measurement would be ideal; here relative ordering of a
  // cached stream through 1 vs 4 blades still shows the compute/FC limits.
  const auto r4 = run_stream({0, 1, 2, 3});
  const auto r1 = run_stream({0});
  ASSERT_TRUE(r4.ok);
  ASSERT_TRUE(r1.ok);
  EXPECT_GT(r4.Gbps(), r1.Gbps()) << "striping over blades must be faster";
}

TEST_F(SystemTest, RandomizedEndToEnd) {
  SystemConfig config;
  config.controllers = 3;
  Build(config);
  const std::uint64_t size = 16 * util::MiB;
  const VolumeId vol = system_->CreateVolume("t", size);
  util::Rng rng(4242);
  util::Bytes model(size, 0);
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t off = rng.Below(size - 1);
    const std::uint32_t len = static_cast<std::uint32_t>(
        rng.Range(1, std::min<std::uint64_t>(size - off, 300000)));
    if (rng.Chance(0.5)) {
      util::Bytes data(len);
      util::FillPattern(data, rng.Next());
      ASSERT_TRUE(Write(vol, off, data));
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(off));
    } else {
      auto [ok, got] = Read(vol, off, len);
      ASSERT_TRUE(ok);
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             model.begin() + static_cast<std::ptrdiff_t>(off)))
          << "mismatch at op " << op;
    }
  }
}

}  // namespace
}  // namespace nlss::controller
