#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace nlss::crypto {
namespace {

std::vector<std::uint8_t> FromHex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  auto nib = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    return static_cast<std::uint8_t>(c - 'A' + 10);
  };
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nib(hex[i]) << 4) | nib(hex[i + 1])));
  }
  return out;
}

TEST(Aes, Fips197Aes128Vector) {
  // FIPS-197 Appendix C.1.
  const auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  const auto pt = FromHex("00112233445566778899aabbccddeeff");
  const auto expect = FromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
  std::uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(Aes, Fips197Aes256Vector) {
  // FIPS-197 Appendix C.3.
  const auto key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto pt = FromHex("00112233445566778899aabbccddeeff");
  const auto expect = FromHex("8ea2b7ca516745bfeafc49904b496089");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
  std::uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(Aes, Sp80038aCtrVector) {
  // NIST SP 800-38A F.5.1 (AES-128 CTR).
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto data = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const auto expect = FromHex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  Aes aes(key);
  CtrCrypt(aes, iv.data(), data);
  EXPECT_EQ(data, expect);
}

TEST(Aes, CtrIsInvolution) {
  util::Rng rng(1);
  util::Bytes data(1000);
  util::FillPattern(data, 9);
  const util::Bytes orig = data;
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes aes(key);
  CtrCrypt(aes, iv.data(), data);
  EXPECT_NE(data, orig);
  CtrCrypt(aes, iv.data(), data);
  EXPECT_EQ(data, orig);
}

TEST(Aes, XtsRoundtripAndSectorDependence) {
  const auto k1 = FromHex(
      "1111111111111111111111111111111111111111111111111111111111111111");
  const auto k2 = FromHex(
      "2222222222222222222222222222222222222222222222222222222222222222");
  Aes key1(k1), key2(k2);
  util::Bytes block(4096);
  util::FillPattern(block, 44);
  const util::Bytes orig = block;

  util::Bytes sector0 = block;
  XtsEncrypt(key1, key2, 0, sector0);
  util::Bytes sector1 = block;
  XtsEncrypt(key1, key2, 1, sector1);
  EXPECT_NE(sector0, sector1) << "same data at different sectors must differ";

  XtsDecrypt(key1, key2, 0, sector0);
  EXPECT_EQ(sector0, orig);
  XtsDecrypt(key1, key2, 1, sector1);
  EXPECT_EQ(sector1, orig);
}

TEST(Aes, XtsIeee1619Vector) {
  // IEEE 1619-2007 XTS-AES-128, Vector 4 (sector 0, 512 bytes 00..ff x2).
  const auto k1 = FromHex("27182818284590452353602874713526");
  const auto k2 = FromHex("31415926535897932384626433832795");
  util::Bytes data(512);
  for (int i = 0; i < 512; ++i) data[i] = static_cast<std::uint8_t>(i);
  Aes key1(k1), key2(k2);
  XtsEncrypt(key1, key2, 0, data);
  // First 16 bytes of the expected ciphertext.
  const auto head = FromHex("27a7479befa1d476489f308cd4cfa6e2");
  EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
  // And it must roundtrip.
  XtsDecrypt(key1, key2, 0, data);
  for (int i = 0; i < 512; ++i) {
    ASSERT_EQ(data[i], static_cast<std::uint8_t>(i));
  }
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(ToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      ToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Bytes data(7777);
  util::FillPattern(data, 3);
  Sha256 h;
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 1000u}) {
    h.Update(std::span(data).subspan(off, chunk));
    off += chunk;
  }
  h.Update(std::span(data).subspan(off));
  EXPECT_EQ(h.Finish(), Sha256::Hash(data));
}

TEST(Hmac, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  const auto key = FromHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  EXPECT_EQ(ToHex(HmacSha256(key, FromHex("4869205468657265"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // RFC 4231 test case 2 ("Jefe", "what do ya want for nothing?").
  EXPECT_EQ(ToHex(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyHashedFirst) {
  const std::string long_key(200, 'k');
  const auto d1 = HmacSha256(long_key, "data");
  const auto key_digest = Sha256::Hash(long_key);
  const auto d2 = HmacSha256(
      std::span<const std::uint8_t>(key_digest.data(), key_digest.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("data"), 4));
  EXPECT_EQ(d1, d2);
}

TEST(KeyStore, DerivationDeterministicAndIsolated) {
  KeyStore ks("lab-master-passphrase");
  const VolumeKeys a1 = ks.DeriveVolumeKeys("physics", 1);
  const VolumeKeys a2 = ks.DeriveVolumeKeys("physics", 1);
  EXPECT_EQ(a1.data_key, a2.data_key);
  EXPECT_EQ(a1.tweak_key, a2.tweak_key);
  const VolumeKeys b = ks.DeriveVolumeKeys("biology", 1);
  EXPECT_NE(a1.data_key, b.data_key);
  const VolumeKeys c = ks.DeriveVolumeKeys("physics", 2);
  EXPECT_NE(a1.data_key, c.data_key);
  EXPECT_NE(a1.data_key, a1.tweak_key);
}

TEST(KeyStore, TransportKeySymmetric) {
  KeyStore ks("pw");
  EXPECT_EQ(ks.DeriveTransportKey("site-a", "site-b"),
            ks.DeriveTransportKey("site-b", "site-a"));
  EXPECT_NE(ks.DeriveTransportKey("site-a", "site-b"),
            ks.DeriveTransportKey("site-a", "site-c"));
}

TEST(KeyStore, RotationInvalidatesKeys) {
  KeyStore ks("pw");
  const VolumeKeys before = ks.DeriveVolumeKeys("t", 1);
  const std::vector<std::uint8_t> new_master(32, 0x42);
  ks.Rotate(new_master);
  EXPECT_EQ(ks.generation(), 1u);
  const VolumeKeys after = ks.DeriveVolumeKeys("t", 1);
  EXPECT_NE(before.data_key, after.data_key);
}

}  // namespace
}  // namespace nlss::crypto
