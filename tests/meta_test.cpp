// Sharded metadata service (E18): ordered dentry index vs a reference
// model, shard-map routing determinism + rebalance, ordered listing /
// range scans, the host dentry cache's coherence under rename/unlink
// racing a cached resolve, metadata ops under QoS admission, the mgmt
// /meta report, and crash-mid-storm two-run digest determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant.h"
#include "controller/system.h"
#include "host/initiator.h"
#include "meta/btree.h"
#include "meta/client.h"
#include "meta/service.h"
#include "mgmt/admin_http.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "qos/scheduler.h"
#include "security/auth.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "workload/workload.h"

namespace nlss::meta {
namespace {

/// Deterministic splitmix64 step — seeded key streams for the index model
/// test without touching any global RNG.
std::uint64_t Mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// --- Ordered dentry index vs std::map reference model ------------------------

TEST(DentryIndex, MatchesMapReferenceModel) {
  DentryIndex index;
  std::map<std::string, Dentry> model;
  std::uint64_t rng = 0xE18;

  for (int round = 0; round < 4000; ++round) {
    const std::uint64_t r = Mix(rng);
    const std::string name = "f" + std::to_string(r % 500);
    if ((r >> 32) % 3 == 0) {
      // Erase: both sides must agree on presence.
      EXPECT_EQ(index.Erase(name), model.erase(name) > 0) << name;
    } else {
      Dentry d{/*ino=*/r | 1, /*is_dir=*/(r & 2) != 0};
      const bool inserted = model.emplace(name, d).second;
      EXPECT_EQ(index.Insert(name, d), inserted) << name;
    }
    if (round % 512 == 0) {
      ASSERT_TRUE(index.Validate());
    }
  }

  ASSERT_TRUE(index.Validate());
  ASSERT_EQ(index.size(), model.size());

  // Point lookups agree, including misses.
  for (int i = 0; i < 500; ++i) {
    const std::string name = "f" + std::to_string(i);
    const Dentry* got = index.Find(name);
    const auto it = model.find(name);
    ASSERT_EQ(got != nullptr, it != model.end()) << name;
    if (got != nullptr) {
      EXPECT_EQ(got->ino, it->second.ino);
      EXPECT_EQ(got->is_dir, it->second.is_dir);
    }
  }

  // ForEach visits exactly the model's entries in lexicographic order.
  std::vector<std::string> walked;
  index.ForEach([&](const std::string& n, const Dentry& d) {
    walked.push_back(n);
    EXPECT_EQ(d.ino, model.at(n).ino);
  });
  std::vector<std::string> expect;
  for (const auto& [n, d] : model) expect.push_back(n);
  EXPECT_EQ(walked, expect);

  // Range scans equal the sorted reference slice, at several cursors.
  for (const char* from : {"", "f0", "f25", "f333", "f499", "zzz"}) {
    const auto got = index.Scan(from, 7);
    std::vector<std::string> want;
    for (auto it = model.lower_bound(from);
         it != model.end() && want.size() < 7; ++it) {
      want.push_back(it->first);
    }
    ASSERT_EQ(got.size(), want.size()) << "from=" << from;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i]) << "from=" << from;
    }
  }
  // limit == 0: the whole tail.
  EXPECT_EQ(index.Scan("", 0).size(), model.size());

  // Drain completely; the empty tree must still validate.
  for (const auto& [n, d] : model) EXPECT_TRUE(index.Erase(n));
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.Validate());
}

// --- Shard-map routing -------------------------------------------------------

TEST(ShardMap, RoutingIsDeterministicAcrossInstances) {
  sim::Engine engine_a;
  sim::Engine engine_b;
  ServiceConfig cfg;
  cfg.shards = 8;
  MetaService a(engine_a, cfg);
  MetaService b(engine_b, cfg);
  for (std::uint32_t d = 0; d < 64; ++d) {
    const std::string dir = "/d" + std::to_string(d);
    ASSERT_EQ(a.BootstrapMkdir(dir), Status::kOk);
    ASSERT_EQ(b.BootstrapMkdir(dir), Status::kOk);
  }
  bool spread = false;
  for (DirId id = kRootDir; id <= kRootDir + 64; ++id) {
    ASSERT_EQ(a.ShardOf(id), b.ShardOf(id)) << "dir " << id;
    ASSERT_LT(a.ShardOf(id), cfg.shards);
    if (a.ShardOf(id) != a.ShardOf(kRootDir)) spread = true;
  }
  EXPECT_TRUE(spread) << "the hash must not pile every directory on one shard";
}

TEST(ShardMap, MoveDirectoryRebalancesRoutingAndRecord) {
  sim::Engine engine;
  ServiceConfig cfg;
  cfg.shards = 4;
  MetaService service(engine, cfg);
  ASSERT_EQ(service.BootstrapMkdir("/proj"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/proj/data"), Status::kOk);

  // Find /proj's DirId through a resolve.
  DirId proj = 0;
  service.Resolve("/proj", [&](Status st, Dentry d) {
    ASSERT_EQ(st, Status::kOk);
    ASSERT_TRUE(d.is_dir);
    proj = d.ino;
  });
  engine.Run();
  ASSERT_NE(proj, 0u);

  const ShardId before = service.ShardOf(proj);
  const ShardId target = (before + 1) % cfg.shards;
  EXPECT_EQ(service.MoveDirectory(proj, target), Status::kOk);
  EXPECT_EQ(service.ShardOf(proj), target);
  EXPECT_EQ(service.stats().moved_dirs, 1u);

  // The moved directory still serves lookups from its new shard.
  Status st{};
  service.Resolve("/proj/data", [&](Status s, Dentry) { st = s; });
  engine.Run();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_GT(service.shard(target).ops(), 0u);
}

TEST(ShardMap, BladeFailureRemapsPlacementNotRouting) {
  sim::Engine engine;
  ServiceConfig cfg;
  cfg.shards = 8;
  cfg.blades = 4;
  MetaService service(engine, cfg);
  ASSERT_EQ(service.BootstrapMkdir("/a"), Status::kOk);

  std::vector<ShardId> routing;
  for (DirId id = kRootDir; id <= kRootDir + 1; ++id) {
    routing.push_back(service.ShardOf(id));
  }
  const std::uint64_t epoch0 = service.map_epoch();

  service.OnBladeDown(1);
  EXPECT_GT(service.map_epoch(), epoch0);
  EXPECT_GT(service.stats().remaps, 0u);
  for (ShardId s = 0; s < cfg.shards; ++s) {
    EXPECT_NE(service.BladeOf(s), 1u) << "shard " << s;
  }
  // Directory -> shard routing is untouched: only placement moved.
  for (DirId id = kRootDir; id <= kRootDir + 1; ++id) {
    EXPECT_EQ(service.ShardOf(id), routing[id - kRootDir]);
  }
  // Ops still complete with the blade down.
  Status st{};
  service.Resolve("/a", [&](Status s, Dentry) { st = s; });
  engine.Run();
  EXPECT_EQ(st, Status::kOk);

  const std::uint64_t epoch1 = service.map_epoch();
  service.OnBladeUp(1);
  EXPECT_GT(service.map_epoch(), epoch1);
  bool blade1_used = false;
  for (ShardId s = 0; s < cfg.shards; ++s) {
    if (service.BladeOf(s) == 1u) blade1_used = true;
  }
  EXPECT_TRUE(blade1_used) << "revived blade must take shards back";
}

// --- Ordered listing ---------------------------------------------------------

TEST(MetaService, ListAndRangeScanMatchSortedReference) {
  sim::Engine engine;
  MetaService service(engine);
  ASSERT_EQ(service.BootstrapMkdir("/dir"), Status::kOk);
  // Insert in a deliberately non-sorted order.
  std::vector<std::string> names;
  std::uint64_t rng = 7;
  for (int i = 0; i < 200; ++i) {
    names.push_back("e" + std::to_string(Mix(rng) % 100000));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::vector<std::string> shuffled = names;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[Mix(rng) % i]);
  }
  for (const std::string& n : shuffled) {
    ASSERT_EQ(service.BootstrapCreate("/dir/" + n), Status::kOk);
  }

  std::vector<std::string> listed;
  service.List("/dir", [&](Status st, std::vector<std::string> got) {
    ASSERT_EQ(st, Status::kOk);
    listed = std::move(got);
  });
  engine.Run();
  EXPECT_EQ(listed, names) << "List must return B-tree (lexicographic) order";

  const std::string cursor = names[names.size() / 2];
  std::vector<std::string> page;
  service.RangeScan("/dir", cursor, 10,
                    [&](Status st, std::vector<std::pair<std::string, Dentry>>
                            got) {
                      ASSERT_EQ(st, Status::kOk);
                      for (auto& [n, d] : got) page.push_back(n);
                    });
  engine.Run();
  std::vector<std::string> want;
  for (auto it = std::lower_bound(names.begin(), names.end(), cursor);
       it != names.end() && want.size() < 10; ++it) {
    want.push_back(*it);
  }
  EXPECT_EQ(page, want);
}

// --- Host dentry cache coherence ---------------------------------------------

TEST(DentryCache, WarmResolveIsAFullHitServedLocally) {
  sim::Engine engine;
  MetaService service(engine);
  Client client(service, "c0");
  ASSERT_EQ(service.BootstrapMkdir("/d"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d/f"), Status::kOk);

  Status st{};
  client.Resolve("/d/f", [&](Status s, Dentry) { st = s; });
  engine.Run();
  ASSERT_EQ(st, Status::kOk);
  EXPECT_EQ(client.stats().misses, 1u);
  const sim::Tick cold_end = engine.now();

  st = Status::kNotFound;
  client.Resolve("/d/f", [&](Status s, Dentry) { st = s; });
  engine.Run();
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(client.stats().full_hits, 1u);
  EXPECT_EQ(engine.now() - cold_end, client.config().local_hit_ns)
      << "a warm hit must not visit any shard";
  EXPECT_DOUBLE_EQ(client.HitRate(), 0.5);
}

// The coherence race the cache must win: a rename's apply (and its
// synchronous invalidation push) lands at t0 + hop + mutate; a cached
// resolve issued just before that is a full hit whose serve timer fires
// just after — the entry is gone by serve time, so the hit must fall back
// to a fresh walk and return the new truth, never the stale dentry.
TEST(DentryCache, RenameRacingCachedResolveNeverServesStale) {
  sim::Engine engine;
  MetaService service(engine);
  Client client(service, "c0");
  ASSERT_EQ(service.BootstrapMkdir("/d0"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d0/f"), Status::kOk);

  const std::uint64_t evals0 =
      check::Registry::Instance().evaluations(check::Subsystem::kMeta);
  const std::uint64_t viols0 =
      check::Registry::Instance().violations(check::Subsystem::kMeta);

  Status st{};
  client.Resolve("/d0/f", [&](Status s, Dentry) { st = s; });
  engine.Run();
  ASSERT_EQ(st, Status::kOk);

  // "/d0" -> "/t0" is a single-component rename: no walk steps, so the
  // mutation applies exactly hop + mutate after issue.
  const sim::Tick t0 = engine.now() + 1000;
  const sim::Tick apply =
      service.config().hop_ns + service.config().mutate_cost_ns;
  ASSERT_GT(apply, client.config().local_hit_ns)
      << "recipe needs the hit-serve window to fit before the apply";

  bool renamed = false;
  engine.ScheduleAt(t0, [&] {
    service.Rename("/d0", "/t0", [&](Status s) {
      renamed = (s == Status::kOk);
    });
  });
  // Issue the cached resolve so its local-hit timer fires just AFTER the
  // rename applies: hit taken at t0+apply-200, served at t0+apply+200.
  Status raced{};
  bool raced_done = false;
  engine.ScheduleAt(t0 + apply - client.config().local_hit_ns / 2, [&] {
    client.Resolve("/d0/f", [&](Status s, Dentry) {
      raced = s;
      raced_done = true;
    });
  });
  engine.Run();

  ASSERT_TRUE(renamed);
  ASSERT_TRUE(raced_done);
  EXPECT_EQ(raced, Status::kNotFound)
      << "the raced hit must re-walk and see the rename, not serve stale";
  EXPECT_EQ(client.stats().full_hits, 1u) << "the race WAS taken as a hit";
  EXPECT_EQ(client.stats().revalidation_fallbacks, 1u);
  EXPECT_GT(client.stats().dropped_entries, 0u);

  // The new truth resolves, and the old path stays gone.
  Status fresh{};
  client.Resolve("/t0/f", [&](Status s, Dentry) { fresh = s; });
  engine.Run();
  EXPECT_EQ(fresh, Status::kOk);

  if (check::kEnabled) {
    EXPECT_GT(check::Registry::Instance().evaluations(check::Subsystem::kMeta),
              evals0);
    EXPECT_EQ(check::Registry::Instance().violations(check::Subsystem::kMeta),
              viols0);
  }
}

TEST(DentryCache, UnlinkInvalidatesCachedEntry) {
  sim::Engine engine;
  MetaService service(engine);
  Client client(service, "c0");
  ASSERT_EQ(service.BootstrapMkdir("/d"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d/f"), Status::kOk);

  Status st{};
  client.Resolve("/d/f", [&](Status s, Dentry) { st = s; });
  engine.Run();
  ASSERT_EQ(st, Status::kOk);
  ASSERT_GT(client.cached_entries(), 0u);

  bool unlinked = false;
  service.Unlink("/d/f", [&](Status s) { unlinked = (s == Status::kOk); });
  engine.Run();
  ASSERT_TRUE(unlinked);
  EXPECT_GT(client.stats().dropped_entries, 0u)
      << "the unlink push must drop the cached path";

  st = Status::kOk;
  client.Resolve("/d/f", [&](Status s, Dentry) { st = s; });
  engine.Run();
  EXPECT_EQ(st, Status::kNotFound);

  // Recreate under the same name: the cache must serve the NEW inode.
  Ino fresh_ino = 0;
  service.Create("/d/f", [&](Status s, Ino ino) {
    ASSERT_EQ(s, Status::kOk);
    fresh_ino = ino;
  });
  engine.Run();
  Ino resolved = 0;
  client.Resolve("/d/f", [&](Status s, Dentry d) {
    ASSERT_EQ(s, Status::kOk);
    resolved = d.ino;
  });
  engine.Run();
  EXPECT_EQ(resolved, fresh_ino);
}

TEST(DentryCache, CapacityZeroBypassesAndLruEvicts) {
  sim::Engine engine;
  MetaService service(engine);
  ClientConfig off;
  off.capacity = 0;
  Client bypass(service, "off", off);
  ClientConfig tiny;
  tiny.capacity = 4;
  Client lru(service, "tiny", tiny);
  ASSERT_EQ(service.BootstrapMkdir("/d"), Status::kOk);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(service.BootstrapCreate("/d/f" + std::to_string(i)), Status::kOk);
  }

  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 8; ++i) {
      bypass.Resolve("/d/f" + std::to_string(i), [](Status s, Dentry) {
        EXPECT_EQ(s, Status::kOk);
      });
      lru.Resolve("/d/f" + std::to_string(i), [](Status s, Dentry) {
        EXPECT_EQ(s, Status::kOk);
      });
      engine.Run();
    }
  }
  EXPECT_EQ(bypass.cached_entries(), 0u);
  EXPECT_EQ(bypass.stats().full_hits, 0u);
  EXPECT_LE(lru.cached_entries(), tiny.capacity);
  EXPECT_GT(lru.stats().evictions, 0u);
}

// Root delegation (E18a): a client holds a version-stamped full copy of
// "/" and serves every walk's first component — including authoritative
// negatives — locally, instead of serializing all cold walks on the root
// directory's shard.  The copy must drop the instant the root changes.
TEST(DentryCache, RootDelegationServesRootStepsLocally) {
  sim::Engine engine;
  MetaService service(engine);
  Client client(service, "c0");
  ASSERT_EQ(service.BootstrapMkdir("/d"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d/f1"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d/f2"), Status::kOk);

  // Two concurrent cold resolves: the first requests the grant, the
  // second joins the in-flight fetch — exactly one DelegateDirectory.
  Status s1{}, s2{};
  client.Resolve("/d/f1", [&](Status s, Dentry) { s1 = s; });
  client.Resolve("/d/f2", [&](Status s, Dentry) { s2 = s; });
  engine.Run();
  ASSERT_EQ(s1, Status::kOk);
  ASSERT_EQ(s2, Status::kOk);
  EXPECT_EQ(client.stats().delegation_grants, 1u);
  EXPECT_EQ(client.stats().delegation_joins, 1u);
  EXPECT_EQ(client.stats().delegation_hits, 2u)
      << "both walks' root steps must serve from the copy";

  // A name absent from the root copy is an authoritative negative: no
  // shard visit (zero LookupSteps), answered in one local-hit delay.
  const std::uint64_t steps0 = client.stats().steps;
  const sim::Tick t0 = engine.now();
  Status missing{};
  client.Resolve("/nope", [&](Status s, Dentry) { missing = s; });
  engine.Run();
  EXPECT_EQ(missing, Status::kNotFound);
  EXPECT_EQ(client.stats().steps, steps0)
      << "a delegated negative must not visit any shard";
  EXPECT_EQ(engine.now() - t0, client.config().local_hit_ns);

  // Renaming a root entry bumps "/"'s version: the grant drops and the
  // next walk re-fetches a copy that holds the new truth.
  bool renamed = false;
  service.Rename("/d", "/e", [&](Status s) { renamed = (s == Status::kOk); });
  engine.Run();
  ASSERT_TRUE(renamed);
  EXPECT_EQ(client.stats().delegation_drops, 1u);

  Status fresh{}, stale{};
  client.Resolve("/e/f1", [&](Status s, Dentry) { fresh = s; });
  engine.Run();
  client.Resolve("/d/f1", [&](Status s, Dentry) { stale = s; });
  engine.Run();
  EXPECT_EQ(fresh, Status::kOk);
  EXPECT_EQ(stale, Status::kNotFound);
  EXPECT_EQ(client.stats().delegation_grants, 2u);

  // With delegation off, the same walks issue root LookupSteps.
  ClientConfig off;
  off.root_delegation = false;
  Client plain(service, "c1", off);
  Status ps{};
  plain.Resolve("/e/f1", [&](Status s, Dentry) { ps = s; });
  engine.Run();
  EXPECT_EQ(ps, Status::kOk);
  EXPECT_EQ(plain.stats().delegation_grants, 0u);
  EXPECT_EQ(plain.stats().steps, 2u);
}

// --- Metadata under QoS admission --------------------------------------------

TEST(MetaQos, RejectedOpsRetryToCompletion) {
  sim::Engine engine;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.blades = 2;
  MetaService service(engine, cfg);
  ASSERT_EQ(service.BootstrapMkdir("/ing"), Status::kOk);

  qos::TenantRegistry registry;
  const auto tenant = registry.Register("meta-lab", qos::ServiceClass::kGold);
  qos::ClassSpec spec = registry.spec(qos::ServiceClass::kGold);
  spec.max_queue_depth = 2;  // force admission rejections under the burst
  registry.SetClassSpec(qos::ServiceClass::kGold, spec);
  qos::Scheduler qos(engine, registry, cfg.blades);
  service.AttachQos(&qos, tenant);

  std::uint64_t ok = 0;
  const int kOps = 64;
  for (int i = 0; i < kOps; ++i) {
    service.Create("/ing/c" + std::to_string(i), [&](Status s, Ino) {
      if (s == Status::kOk) ++ok;
    });
  }
  engine.Run();
  EXPECT_EQ(ok, static_cast<std::uint64_t>(kOps))
      << "every rejected op must retry until admitted";
  EXPECT_GT(service.stats().qos_rejects, 0u)
      << "the burst must actually trip admission control";
}

// --- mgmt: GET /meta ---------------------------------------------------------

TEST(MetaMgmt, AdminHttpMetaReport) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  controller::SystemConfig sc;
  sc.disk_profile.capacity_blocks = 16 * 1024;
  sc.cache.replication = 2;
  controller::StorageSystem system(engine, fabric, sc);

  crypto::KeyStore keys(std::string_view("m"));
  security::AuthService auth(engine, keys);
  security::AuditLog audit(engine);
  mgmt::AlertManager alerts(engine);
  auth.AddUser("root", "pw", {"admin"});
  mgmt::AdminHttp admin(system, auth, alerts, audit);
  const auto token = *auth.Login("root", "pw");
  const auto get = [&](const std::string& path) {
    return admin.Handle("GET " + path + " HTTP/1.0\r\nAuthorization: " +
                        token + "\r\n\r\n");
  };

  // Without a meta service attached: 404.
  EXPECT_EQ(get("/meta").status, 404);

  MetaService service(engine);
  Client client(service, "c0");
  admin.AttachMeta(&service);
  ASSERT_EQ(service.BootstrapMkdir("/d"), Status::kOk);
  ASSERT_EQ(service.BootstrapCreate("/d/f"), Status::kOk);
  for (int i = 0; i < 2; ++i) {
    client.Resolve("/d/f", [](Status s, Dentry) { EXPECT_EQ(s, Status::kOk); });
    engine.Run();
  }

  const auto r = get("/meta");
  ASSERT_EQ(r.status, 200);
  const std::string body(r.body.begin(), r.body.end());
  EXPECT_NE(body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(body.find("\"map_epoch\":"), std::string::npos);
  EXPECT_NE(body.find("\"dentry_cache\":{"), std::string::npos);
  EXPECT_NE(body.find("\"hit_rate\":0.5"), std::string::npos)
      << "one miss + one hit must report as 0.5: " << body;
  EXPECT_NE(body.find("\"clients\":1"), std::string::npos);
}

// --- Crash mid-storm: two runs, one digest -----------------------------------

std::uint32_t CrashMidStormDigest(std::uint64_t seed) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  obs::Hub hub(engine);
  controller::SystemConfig sc;
  sc.disk_profile.capacity_blocks = 16 * 1024;
  sc.cache.replication = 2;
  controller::StorageSystem system(engine, fabric, sc);
  system.AttachObs(&hub);

  const workload::FileSet fs{0, 128, 4 * util::KiB};
  const controller::VolumeId vol = system.CreateVolume("lab", fs.TotalBytes());

  ServiceConfig mc;
  mc.shards = 4;
  MetaService service(engine, mc);
  service.AttachObs(&hub);
  workload::PopulateMetaNamespace(service, fs, /*files_per_dir=*/16);

  std::vector<std::unique_ptr<host::Initiator>> owners;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<host::Initiator*> inits;
  for (std::uint32_t h = 0; h < 2; ++h) {
    host::InitiatorConfig hc;
    hc.policy = host::InitiatorConfig::Policy::kRoundRobin;
    hc.seed = seed + h;
    owners.push_back(std::make_unique<host::Initiator>(
        system, "h" + std::to_string(h), hc));
    owners.back()->AttachObs(&hub);
    clients.push_back(
        std::make_unique<Client>(service, "mc" + std::to_string(h)));
    owners.back()->AttachMeta(clients.back().get());
    inits.push_back(owners.back().get());
  }

  // Preload the volume so storm header reads hit valid data.
  {
    util::Bytes buf(64 * util::KiB);
    for (std::uint64_t off = 0; off < fs.TotalBytes(); off += buf.size()) {
      util::FillPattern(buf, off);
      bool ok = false;
      inits[0]->Write(vol, off,
                      std::span<const std::uint8_t>(buf.data(), buf.size()),
                      [&](bool r) { ok = r; });
      engine.Run();
      EXPECT_TRUE(ok);
    }
  }

  // Fail a data blade AND remap the metadata shards mid-storm, recover
  // both while opens are still in flight.
  engine.Schedule(2 * util::kNsPerMs, [&] {
    system.FailController(1);
    service.OnBladeDown(1);
  });
  engine.Schedule(20 * util::kNsPerMs, [&] {
    system.RecoverCluster();
    service.OnBladeUp(1);
  });

  workload::StormSpec spec{fs, 2, 256};
  spec.read_bytes = 4 * util::KiB;
  const workload::Trace trace = workload::MetadataStorm(spec, seed);
  workload::RunnerConfig rc;
  rc.meta_files_per_dir = 16;
  workload::Runner runner(engine, inits, vol, rc, &hub);
  const workload::PhaseResult r = runner.Play(trace);
  EXPECT_EQ(r.ops, trace.ops.size());
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.meta_resolves, r.ops)
      << "every storm open must route through the dentry cache";
  EXPECT_GT(r.meta_hits, 0u);
  return hub.Digest();
}

TEST(MetaDeterminism, CrashMidStormDigestIdentical) {
  const std::uint64_t viols0 =
      check::Registry::Instance().violations(check::Subsystem::kMeta);
  EXPECT_EQ(CrashMidStormDigest(18), CrashMidStormDigest(18));
  EXPECT_EQ(check::Registry::Instance().violations(check::Subsystem::kMeta),
            viols0);
}

}  // namespace
}  // namespace nlss::meta
