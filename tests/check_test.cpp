// Runtime invariant subsystem (src/check): macro semantics, registry
// accounting, violation capture, obs export, and an integration pass
// proving every instrumented subsystem family actually evaluates checks
// under a failure-heavy workload — with zero violations.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "check/invariant.h"
#include "controller/system.h"
#include "geo/geo.h"
#include "host/initiator.h"
#include "net/fabric.h"
#include "obs/hub.h"
#include "qos/scheduler.h"
#include "sim/engine.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/units.h"

namespace nlss::check {
namespace {

constexpr std::array<Subsystem, 5> kInstrumented = {
    Subsystem::kSim, Subsystem::kCache, Subsystem::kQos, Subsystem::kHost,
    Subsystem::kRaid};

util::Bytes Pattern(std::size_t n, std::uint64_t seed) {
  util::Bytes b(n);
  util::FillPattern(b, seed);
  return b;
}

TEST(Check, SubsystemNames) {
  EXPECT_STREQ(SubsystemName(Subsystem::kSim), "sim");
  EXPECT_STREQ(SubsystemName(Subsystem::kCache), "cache");
  EXPECT_STREQ(SubsystemName(Subsystem::kQos), "qos");
  EXPECT_STREQ(SubsystemName(Subsystem::kHost), "host");
  EXPECT_STREQ(SubsystemName(Subsystem::kRaid), "raid");
  EXPECT_STREQ(SubsystemName(Subsystem::kMeta), "meta");
  EXPECT_STREQ(SubsystemName(Subsystem::kOther), "other");
}

TEST(Check, MacroCountsEvaluationsWhenEnabled) {
  Registry& r = Registry::Instance();
  const std::uint64_t before = r.evaluations(Subsystem::kOther);
  NLSS_INVARIANT(kOther, 1 + 1 == 2);
  NLSS_INVARIANT(kOther, true, "with context %d", 7);
  const std::uint64_t delta = r.evaluations(Subsystem::kOther) - before;
  if (kEnabled) {
    EXPECT_EQ(delta, 2u);
  } else {
    EXPECT_EQ(delta, 0u);  // Release: the macro compiles to nothing
  }
}

TEST(Check, ViolationReachesHandlerWithContext) {
  if (!kEnabled) GTEST_SKIP() << "invariants compiled out in this build";
  Registry& r = Registry::Instance();
  const std::uint64_t before = r.violations(Subsystem::kOther);
  Violation got;
  int fired = 0;
  auto prev = r.SetHandler([&](const Violation& v) {
    got = v;
    ++fired;
  });
  const int answer = 43;
  (void)answer;  // referenced only through the macro, absent when disabled
  NLSS_INVARIANT(kOther, answer == 42, "ctx=%d", answer);
  r.SetHandler(std::move(prev));

  ASSERT_EQ(fired, 1);
  EXPECT_EQ(got.subsystem, Subsystem::kOther);
  EXPECT_NE(std::string(got.expr).find("answer == 42"), std::string::npos);
  EXPECT_EQ(got.message, "ctx=43");
  EXPECT_NE(std::string(got.file).find("check_test"), std::string::npos);
  EXPECT_GT(got.line, 0);
  EXPECT_EQ(r.violations(Subsystem::kOther) - before, 1u);
}

TEST(Check, FormatArgumentsOnlyEvaluatedOnFailure) {
  if (!kEnabled) GTEST_SKIP() << "invariants compiled out in this build";
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return 1;
  };
  (void)expensive;  // referenced only through the macro, absent when disabled
  NLSS_INVARIANT(kOther, true, "never formatted %d", expensive());
  EXPECT_EQ(calls, 0);
}

TEST(Check, HubExportsPerSubsystemDeltas) {
  // Burn some global evaluations BEFORE the hub exists; the hub must
  // baseline them away so exported values reflect only post-construction
  // work (two same-seed runs in one process stay digest-identical).
  NLSS_INVARIANT(kOther, true);
  NLSS_INVARIANT(kOther, true);

  sim::Engine engine;
  obs::Hub hub(engine);
  std::string text = hub.metrics().PrometheusText();
  for (int i = 0; i < kSubsystemCount; ++i) {
    const auto s = static_cast<Subsystem>(i);
    const std::string series = std::string("nlss_check_evaluations_total{") +
                               "subsystem=\"" + SubsystemName(s) + "\"} 0";
    EXPECT_NE(text.find(series), std::string::npos)
        << "missing zeroed series for " << SubsystemName(s) << " in:\n"
        << text;
  }

  NLSS_INVARIANT(kOther, true);
  text = hub.metrics().PrometheusText();
  const std::string other =
      "nlss_check_evaluations_total{subsystem=\"other\"} ";
  const auto pos = text.find(other);
  ASSERT_NE(pos, std::string::npos);
  const char after = text[pos + other.size()];
  if (kEnabled) {
    EXPECT_EQ(after, '1') << "expected a delta of exactly 1";
  } else {
    EXPECT_EQ(after, '0');
  }
}

// --- Integration: the whole stack evaluates invariants, violating none ---

struct StackResult {
  std::uint32_t digest = 0;
  std::string dump;
  std::string metrics;
  sim::Tick final_now = 0;
};

/// Failure-heavy seeded workload touching every instrumented subsystem:
/// host initiator traffic through qos admission into the coherent cache,
/// a forced path trip, FlushAll, a controller failure + recovery, and a
/// disk fail + distributed rebuild.
StackResult RunFailureWorkload(std::uint64_t seed) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  controller::SystemConfig config;
  config.disk_profile.capacity_blocks = 16 * 1024;
  config.cache.replication = 2;
  controller::StorageSystem system(engine, fabric, config);

  qos::TenantRegistry registry;
  registry.Register("lab-a", qos::ServiceClass::kGold);
  registry.Register("lab-b", qos::ServiceClass::kBronze);
  // Cap bronze so the token-bucket arithmetic (and its invariants) runs.
  qos::ClassSpec bronze = registry.spec(qos::ServiceClass::kBronze);
  bronze.rate_bytes_per_sec = 200 * util::MiB;
  bronze.burst_bytes = 1 * util::MiB;
  registry.SetClassSpec(qos::ServiceClass::kBronze, bronze);
  qos::Scheduler qos(engine, registry, system.controller_count());
  system.AttachQos(&qos);

  obs::Tracer::Config tcfg;
  tcfg.seed = seed ^ 0x0b5e7ace;
  obs::Hub hub(engine, tcfg);
  system.AttachObs(&hub);

  host::Initiator init(system, "h0");
  init.AttachObs(&hub);

  const auto vol_a = system.CreateVolume("lab-a", 8 * util::MiB);
  const auto vol_b = system.CreateVolume("lab-b", 8 * util::MiB);

  util::Rng rng(seed);
  util::Bytes buf(64 * util::KiB);
  for (int op = 0; op < 32; ++op) {
    const auto vol = (rng.Next() & 1) != 0 ? vol_a : vol_b;
    const std::uint64_t off =
        (rng.Next() % (8 * util::MiB / buf.size())) * buf.size();
    if ((rng.Next() % 2) == 0) {
      util::FillPattern(buf, off ^ seed);
      init.Write(vol, off, buf, [](bool) {});
    } else {
      init.Read(vol, off, static_cast<std::uint32_t>(buf.size()),
                [](bool, util::Bytes) {});
    }
    if ((op % 4) == 3) engine.Run();
  }
  engine.Run();

  // Breaker trip + eventual reset through retried traffic.
  init.ForcePathDown(1);
  init.Write(vol_a, 0, Pattern(64 * util::KiB, 99), [](bool) {});
  engine.Run();

  // Flush everything, then lose a controller and recover coherence.
  system.cache().FlushAll([](bool) {});
  engine.Run();
  system.FailController(1);
  system.RecoverCluster();
  init.Read(vol_a, 0, 64 * util::KiB, [](bool, util::Bytes) {});
  engine.Run();

  // Disk failure -> distributed rebuild across surviving controllers.
  bool rebuilt = false;
  system.FailAndRebuildDisk(0, 2, [&](bool ok) { rebuilt = ok; });
  engine.Run();
  EXPECT_TRUE(rebuilt);

  StackResult r;
  r.digest = hub.Digest();
  r.dump = hub.tracer().Dump();
  r.metrics = hub.metrics().PrometheusText();
  r.final_now = engine.now();
  return r;
}

TEST(CheckIntegration, EveryInstrumentedSubsystemEvaluatesWithNoViolations) {
  if (!kEnabled) GTEST_SKIP() << "invariants compiled out in this build";
  Registry& r = Registry::Instance();
  std::array<std::uint64_t, kSubsystemCount> eval_before{};
  std::array<std::uint64_t, kSubsystemCount> viol_before{};
  for (int i = 0; i < kSubsystemCount; ++i) {
    eval_before[i] = r.evaluations(static_cast<Subsystem>(i));
    viol_before[i] = r.violations(static_cast<Subsystem>(i));
  }

  RunFailureWorkload(7);

  for (const Subsystem s : kInstrumented) {
    const int i = static_cast<int>(s);
    EXPECT_GT(r.evaluations(s), eval_before[i])
        << "no invariant evaluated in subsystem " << SubsystemName(s);
    EXPECT_EQ(r.violations(s), viol_before[i])
        << "invariant violated in subsystem " << SubsystemName(s);
  }
}

TEST(CheckIntegration, FailureWorkloadDigestIsDeterministic) {
  // The invariant instrumentation (and its metric export) must not
  // introduce run-order dependence: two same-seed runs — including flush
  // write-backs, recovery promotion, and rebuild — digest identically.
  const StackResult a = RunFailureWorkload(11);
  const StackResult b = RunFailureWorkload(11);
  EXPECT_EQ(a.final_now, b.final_now) << "simulated time diverged";
  EXPECT_EQ(a.dump, b.dump);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(CheckIntegration, BackgroundWorkGetsRootTraces) {
  const StackResult r = RunFailureWorkload(13);
  EXPECT_NE(r.dump.find("cache.flush"), std::string::npos)
      << "flush write-backs should root their own spans";
  EXPECT_NE(r.dump.find("raid.rebuild"), std::string::npos)
      << "rebuild jobs should root their own spans";
}

TEST(CheckIntegration, GeoAsyncReplicationGetsRootTrace) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  geo::GeoCluster cluster(engine, fabric, {});
  obs::Hub hub(engine);
  cluster.AttachObs(&hub.tracer());

  controller::SystemConfig sc;
  sc.controllers = 2;
  sc.raid_groups = 2;
  sc.disk_profile.capacity_blocks = 16 * 1024;
  const auto west = cluster.AddSite("west", sc, geo::Location{0, 0});
  const auto east = cluster.AddSite("east", sc, geo::Location{4000, 0});
  cluster.ConnectSites(west, east,
                       net::LinkProfile::Wan(20 * util::kNsPerMs, 1.0));

  fs::FilePolicy p;
  p.geo_replicate = true;
  p.geo_sync = false;
  p.geo_sites = 2;
  ASSERT_EQ(cluster.Create("/log", west, p), fs::Status::kOk);
  bool wrote = false;
  cluster.Write(west, "/log", 0, Pattern(128 * util::KiB, 5),
                [&](fs::Status st) { wrote = st == fs::Status::kOk; });
  engine.Run();
  ASSERT_TRUE(wrote);
  bool drained = false;
  cluster.DrainAsync([&] { drained = true; });
  engine.Run();
  ASSERT_TRUE(drained);

  EXPECT_NE(hub.tracer().Dump().find("geo.replicate"), std::string::npos)
      << "async geo shipments should root their own spans";
}

TEST(CheckIntegration, BreakerTransitionsAreTraced) {
  sim::Engine engine;
  net::Fabric fabric(engine);
  controller::SystemConfig config;
  config.disk_profile.capacity_blocks = 16 * 1024;
  controller::StorageSystem system(engine, fabric, config);
  obs::Hub hub(engine);
  system.AttachObs(&hub);
  host::Initiator init(system, "h0");
  init.AttachObs(&hub);

  init.ForcePathDown(0);
  engine.Run();

  // The trip is a zero-duration root trace; it lands in the recent ring.
  bool traced = false;
  for (const auto& t : hub.tracer().recent()) {
    if (t.name == "host.path" && !t.spans.empty() &&
        t.spans[0].note.find("event=trip") != std::string::npos) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced) << "breaker trip should emit a host.path trace";
}

}  // namespace
}  // namespace nlss::check
